#include "telemetry/collector.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fvdf::telemetry {

const std::array<const char*, kPeLinks> kLinkNames = {"ramp", "north", "east",
                                                      "south", "west"};

const char* to_string(Level level) {
  switch (level) {
  case Level::Off: return "off";
  case Level::Metrics: return "metrics";
  case Level::Trace: return "trace";
  }
  return "?";
}

FabricCollector::FabricCollector(Level level, SamplingConfig sampling)
    : level_(level), sampling_(sampling) {
  FVDF_CHECK_MSG(sampling_.pe_stride >= 1, "pe_stride must be >= 1");
  FVDF_CHECK_MSG(sampling_.event_sample_period >= 1,
                 "event_sample_period must be >= 1");
}

void FabricCollector::bind(i64 width, i64 height, u32 shard_count) {
  FVDF_CHECK(width >= 1 && height >= 1 && shard_count >= 1);
  width_ = width;
  height_ = height;
  total_cycles_ = 0;
  finalized_ = false;
  activity_.assign(static_cast<std::size_t>(width * height), PeActivity{});
  shards_.clear();
  shards_.resize(shard_count);
  marks_.clear();
  progress_.clear();
  spans_.clear();
  task_cycles_.clear();
}

void FabricCollector::finalize(f64 total_cycles) {
  FVDF_CHECK_MSG(bound(), "finalize() before bind()");
  FVDF_CHECK_MSG(!finalized_, "collector already finalized");
  finalized_ = true;
  total_cycles_ = total_cycles;

  // Concatenate shard streams in shard-id order, then stable-sort by
  // (pe, t): each PE's marks all come from its single owning shard, whose
  // stream is already in emission order, so ties keep that order and the
  // result is a thread-count-independent total order.
  std::size_t mark_count = 0, progress_count = 0;
  for (const ShardSlot& slot : shards_) {
    mark_count += slot.phases.size();
    progress_count += slot.progress.size();
  }
  marks_.reserve(mark_count);
  progress_.reserve(progress_count);
  for (ShardSlot& slot : shards_) {
    marks_.insert(marks_.end(), slot.phases.begin(), slot.phases.end());
    progress_.insert(progress_.end(), slot.progress.begin(), slot.progress.end());
    task_cycles_.merge(slot.task_cycles);
    slot.phases.clear();
    slot.phases.shrink_to_fit();
    slot.progress.clear();
  }
  std::stable_sort(marks_.begin(), marks_.end(),
                   [](const PhaseMark& a, const PhaseMark& b) {
                     if (a.pe != b.pe) return a.pe < b.pe;
                     return a.t < b.t;
                   });
  std::stable_sort(progress_.begin(), progress_.end(),
                   [](const ProgressSample& a, const ProgressSample& b) {
                     return a.iteration < b.iteration;
                   });

  // Build per-PE spans: implicit Setup from t=0, last phase runs to the
  // end of the simulation, adjacent same-phase marks coalesce.
  spans_.clear();
  std::size_t i = 0;
  while (i < marks_.size()) {
    const i64 pe = marks_[i].pe;
    f64 cursor = 0;
    u8 phase = static_cast<u8>(Phase::Setup);
    for (; i < marks_.size() && marks_[i].pe == pe; ++i) {
      const PhaseMark& mark = marks_[i];
      if (mark.phase == phase) continue; // coalesce
      const f64 t = std::min(std::max(mark.t, cursor), total_cycles_);
      if (t > cursor) spans_.push_back(PhaseSpan{pe, phase, cursor, t});
      cursor = t;
      phase = mark.phase;
    }
    if (total_cycles_ > cursor || spans_.empty() || spans_.back().pe != pe)
      spans_.push_back(PhaseSpan{pe, phase, cursor, total_cycles_});
  }
}

std::array<f64, kNumPhases> FabricCollector::phase_cycles(i64 pe_index) const {
  FVDF_CHECK_MSG(finalized_, "phase_cycles() before finalize()");
  std::array<f64, kNumPhases> totals{};
  for (const PhaseSpan& span : spans_) {
    if (span.pe != pe_index) continue;
    totals[span.phase] += span.end - span.begin;
  }
  return totals;
}

} // namespace fvdf::telemetry
