#pragma once
// Sharded fabric telemetry collector.
//
// The fabric's parallel engine partitions the PE grid into spatial shards
// whose boundaries depend only on the geometry (see wse/fabric.hpp), and
// during a window each shard touches only its own rows' state. The
// collector mirrors that discipline: per-PE activity cells are written
// exclusively by the owning shard, and append-only streams (phase marks,
// progress samples) plus histograms live in per-shard slots that
// finalize() merges in shard-id order. Every merged artifact is therefore
// bitwise identical at any --sim-threads value — the same argument that
// makes FabricStats and the trace stream deterministic.
//
// This header deliberately depends only on common/ so that wse can link
// against it from below; all fabric-specific typing (directions, colors)
// is reduced to small integers at the call sites.

#include <array>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "telemetry/phase.hpp"

namespace fvdf::telemetry {

enum class Level : u8 {
  Off = 0,     // collector ignored; fabric hot paths see a null pointer
  Metrics = 1, // per-PE/per-link activity, phase spans, progress, histograms
  Trace = 2,   // Metrics + sampled raw fabric events in the Chrome trace
};

const char* to_string(Level level);

struct SamplingConfig {
  /// Record phase marks only for PEs with x % pe_stride == 0 &&
  /// y % pe_stride == 0 (PE (0,0) — the reference timeline — is always
  /// sampled). 1 = every PE.
  u32 pe_stride = 1;
  /// Keep every Nth raw fabric event at Level::Trace. 1 = all.
  u32 event_sample_period = 1;
};

/// Outbound-link slots per PE: [0] is the ramp (self-injection), [1..4]
/// the cardinal links in the fabric's N, E, S, W order.
constexpr u32 kPeLinks = 5;
extern const std::array<const char*, kPeLinks> kLinkNames;

/// Per-PE activity cell, written only by the PE's owning shard.
struct PeActivity {
  std::array<u64, kPeLinks> tx_words{};    // words pushed out each link
  std::array<u64, kPeLinks> tx_messages{}; // wavelet batches per link
  u64 rx_words = 0;     // words landed in this PE's memory via the ramp
  u64 stalls = 0;       // flits parked by backpressure at this router
  f64 stall_cycles = 0; // total park time of released flits
  u64 tasks = 0;        // task activations executed
  f64 busy_cycles = 0;  // sum of task durations (dispatch to return)

  /// Words leaving on cardinal links only — the traffic this PE put on
  /// the fabric (ramp injections excluded; they never cross a link).
  u64 fabric_tx_words() const {
    return tx_words[1] + tx_words[2] + tx_words[3] + tx_words[4];
  }
};

struct PhaseMark {
  f64 t = 0;
  i64 pe = 0;
  u8 phase = 0;
};

struct ProgressSample {
  f64 t = 0;
  u64 iteration = 0;
  f64 value = 0; // residual r^T r at that iteration
};

/// One contiguous phase interval on one PE's timeline (finalize product).
struct PhaseSpan {
  i64 pe = 0;
  u8 phase = 0;
  f64 begin = 0;
  f64 end = 0;
};

class FabricCollector {
public:
  explicit FabricCollector(Level level = Level::Metrics,
                           SamplingConfig sampling = {});

  Level level() const { return level_; }
  bool enabled() const { return level_ != Level::Off; }
  const SamplingConfig& sampling() const { return sampling_; }

  // --- fabric-side interface (called by wse::Fabric) -----------------------

  /// Sizes the per-PE table and shard slots; called by Fabric::set_telemetry.
  /// Rebinding resets all collected data.
  void bind(i64 width, i64 height, u32 shard_count);
  bool bound() const { return width_ > 0; }

  PeActivity& activity(i64 pe_index) {
    return activity_[static_cast<std::size_t>(pe_index)];
  }

  bool samples_pe(i64 pe_index) const {
    if (sampling_.pe_stride <= 1) return true;
    const i64 stride = sampling_.pe_stride;
    return (pe_index % width_) % stride == 0 && (pe_index / width_) % stride == 0;
  }

  void mark_phase(u32 shard, i64 pe_index, u8 phase, f64 t) {
    shards_[shard].phases.push_back(PhaseMark{t, pe_index, phase});
  }

  /// Progress samples are recorded from the reference PE (index 0) only.
  void note_progress(u32 shard, i64 pe_index, u64 iteration, f64 value, f64 t) {
    if (pe_index != 0) return;
    shards_[shard].progress.push_back(ProgressSample{t, iteration, value});
  }

  void observe_task_cycles(u32 shard, f64 cycles) {
    shards_[shard].task_cycles.add(cycles);
  }

  // --- host-side interface (after the run) ---------------------------------

  /// Merges shard streams deterministically and computes phase spans.
  /// Idempotent only in the sense that re-finalizing after more data is an
  /// error; call exactly once per run.
  void finalize(f64 total_cycles);
  bool finalized() const { return finalized_; }

  i64 width() const { return width_; }
  i64 height() const { return height_; }
  f64 total_cycles() const { return total_cycles_; }
  const std::vector<PeActivity>& activities() const { return activity_; }
  const std::vector<PhaseMark>& phase_marks() const { return marks_; }
  const std::vector<ProgressSample>& progress() const { return progress_; }
  const StreamingHistogram& task_cycles() const { return task_cycles_; }

  /// Per-PE phase spans: each sampled PE's timeline is fully covered from
  /// cycle 0 (implicit Setup) to total_cycles (the last phase extends to
  /// the end of the run), with adjacent same-phase marks coalesced.
  const std::vector<PhaseSpan>& spans() const { return spans_; }

  /// Total cycles per phase over `pe`'s spans. By construction the array
  /// sums to total_cycles (up to f64 rounding in the summation).
  std::array<f64, kNumPhases> phase_cycles(i64 pe_index) const;

private:
  // Cache-line aligned: adjacent slots are written concurrently by the
  // fabric engine's worker threads (one slot per shard), and an unpadded
  // array would put two shards' append cursors on one line.
  struct alignas(64) ShardSlot {
    std::vector<PhaseMark> phases;
    std::vector<ProgressSample> progress;
    StreamingHistogram task_cycles;
  };

  Level level_;
  SamplingConfig sampling_;
  i64 width_ = 0;
  i64 height_ = 0;
  f64 total_cycles_ = 0;
  bool finalized_ = false;
  std::vector<PeActivity> activity_;
  std::vector<ShardSlot> shards_;
  // finalize() products:
  std::vector<PhaseMark> marks_;
  std::vector<ProgressSample> progress_;
  std::vector<PhaseSpan> spans_;
  StreamingHistogram task_cycles_;
};

} // namespace fvdf::telemetry
