#pragma once
// Named metrics registry: counters, gauges and cycle histograms.
//
// Mutation is sharded: every metric owns one slot per shard (the fabric's
// spatial shards, or any caller-defined partition), writers touch only
// their shard's slot, and reads merge slots in shard-id order — so merged
// values are bitwise identical at any thread count, provided each shard's
// write sequence is itself deterministic (true for the fabric engine by
// construction). Metric ids are registered up front; the hot path is an
// indexed array bump with no hashing or locking.

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace fvdf::telemetry {

class JsonWriter;

class MetricsRegistry {
public:
  explicit MetricsRegistry(u32 shard_count = 1);

  u32 shard_count() const { return shard_count_; }

  /// Registration (before the measured region; not thread-safe).
  /// Re-registering a name returns the existing id.
  u32 counter(const std::string& name);
  u32 gauge(const std::string& name);
  u32 histogram(const std::string& name, u32 subbucket_bits = 5);

  /// Shard-local mutation (safe from the shard's worker thread).
  void add(u32 shard, u32 counter_id, u64 delta);
  void observe(u32 shard, u32 histogram_id, f64 value);
  /// Gauges are host-side scalars (set once, unsharded).
  void set(u32 gauge_id, f64 value);

  /// Deterministic merged reads.
  u64 counter_value(u32 counter_id) const;
  f64 gauge_value(u32 gauge_id) const;
  StreamingHistogram histogram_value(u32 histogram_id) const;

  /// Serializes every metric, sorted by name within each kind:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// mean, min, max, p50, p95, p99}}}.
  void write_json(JsonWriter& writer) const;

private:
  struct Counter {
    std::string name;
    std::vector<u64> shard_values; // one per shard
  };
  struct Gauge {
    std::string name;
    f64 value = 0;
  };
  struct Histogram {
    std::string name;
    std::vector<StreamingHistogram> shard_values;
  };

  u32 shard_count_;
  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<Histogram> histograms_;
};

} // namespace fvdf::telemetry
