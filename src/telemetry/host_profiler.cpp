#include "telemetry/host_profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "common/error.hpp"
#include "telemetry/json.hpp"

namespace fvdf::telemetry {

namespace {

constexpr const char* kSchema = "fvdf.telemetry.host_profile/2";

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  FVDF_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  FVDF_CHECK_MSG(out.good(), "short write to " << path);
}

} // namespace

void HostProfiler::begin_run(u32 workers, u32 shards, u32 threads_requested) {
  timelines_.assign(workers, HostWorkerTimeline{});
  shards_.assign(shards, HostShardStats{});
  samplers_.assign(shards, HostPcSampler{});
  for (HostPcSampler& s : samplers_) s.reset(config_.pc_sample_period);
  lookahead_.clear();
  tile_rows_ = 0;
  tile_cols_ = 0;
  tile_rects_.clear();
  annotations_.clear();
  threads_requested_ = threads_requested;
  rounds_ = 0;
  wall_seconds_ = 0;
  total_busy_seconds_ = 0;
  crit_seconds_ = 0;
  bound_seconds_.fill(0);
  total_events_ = 0;
  crit_events_ = 0;
  bound_events_.fill(0);
  began_ = true;
  ended_ = false;
  t0_ = std::chrono::steady_clock::now();
  for (u32 w = 0; w < workers; ++w)
    timelines_[w].reset(w == 0 ? HostState::Drive : HostState::Park,
                        config_.max_intervals_per_worker);
}

void HostProfiler::end_run() {
  if (!began_ || ended_) return;
  ended_ = true;
  wall_seconds_ = now();
  // Workers > 0 are parked (or joining the final barrier the caller already
  // passed through); closing their open Park interval from here is the
  // single-writer hand-off the class comment documents.
  for (HostWorkerTimeline& timeline : timelines_) timeline.close(wall_seconds_);
}

void HostProfiler::accumulate_round() {
  ++rounds_;
  f64 round_total = 0;
  f64 round_max = 0;
  f64 ev_total = 0;
  f64 ev_max = 0;
  for (HostShardStats& shard : shards_) {
    round_total += shard.last_round_busy_seconds;
    round_max = std::max(round_max, shard.last_round_busy_seconds);
    const f64 ev = static_cast<f64>(shard.last_round_events);
    ev_total += ev;
    ev_max = std::max(ev_max, ev);
    shard.last_round_busy_seconds = 0;
    shard.last_round_events = 0;
  }
  total_busy_seconds_ += round_total;
  crit_seconds_ += round_max;
  total_events_ += ev_total;
  crit_events_ += ev_max;
  for (std::size_t i = 0; i < kBoundThreads.size(); ++i) {
    const f64 t = static_cast<f64>(kBoundThreads[i]);
    bound_seconds_[i] += std::max(round_max, round_total / t);
    bound_events_[i] += std::max(ev_max, ev_total / t);
  }
}

void HostProfiler::annotate_program(const void* key, std::string name,
                                    std::vector<std::string> ops,
                                    std::vector<std::string> phases) {
  for (Annotation& a : annotations_)
    if (a.key == key) {
      a.name = std::move(name);
      a.ops = std::move(ops);
      a.phases = std::move(phases);
      return;
    }
  annotations_.push_back(
      Annotation{key, std::move(name), std::move(ops), std::move(phases)});
}

const HostProfiler::Annotation*
HostProfiler::annotation_for(const void* key) const {
  for (const Annotation& a : annotations_)
    if (a.key == key) return &a;
  return nullptr;
}

namespace {

f64 bound_at(const std::array<f64, kBoundThreads.size()>& folded, f64 total,
             u32 threads) {
  if (total <= 0) return 1;
  // Nearest ladder entry at or below `threads` (the fold is monotone in T,
  // so clamping down stays a valid upper bound on achievable speedup).
  std::size_t pick = 0;
  for (std::size_t i = 0; i < kBoundThreads.size(); ++i)
    if (kBoundThreads[i] <= threads) pick = i;
  const f64 denom = folded[pick];
  return denom > 0 ? total / denom : 1;
}

} // namespace

f64 HostProfiler::max_speedup_bound(u32 threads) const {
  return bound_at(bound_seconds_, total_busy_seconds_, threads);
}

f64 HostProfiler::max_event_speedup_bound(u32 threads) const {
  return bound_at(bound_events_, total_events_, threads);
}

f64 HostProfiler::max_speedup_unbounded() const {
  if (total_busy_seconds_ <= 0 || crit_seconds_ <= 0) return 1;
  return total_busy_seconds_ / crit_seconds_;
}

std::string HostProfiler::host_profile_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", kSchema);
  w.kv("captured", captured());
  w.kv("workers", workers());
  w.kv("shards", shards());
  w.kv("threads_requested", threads_requested_);
  w.kv("rounds", rounds_);
  w.kv("wall_seconds", wall_seconds_);
  w.kv("pc_sample_period", config_.pc_sample_period);
  w.kv("tile_rows", tile_rows_);
  w.kv("tile_cols", tile_cols_);

  w.key("worker_timelines").begin_array();
  for (u32 i = 0; i < workers(); ++i) {
    const HostWorkerTimeline& t = timelines_[i];
    w.begin_object();
    w.kv("worker", i);
    w.key("seconds").begin_object();
    f64 accounted = 0;
    for (u32 s = 0; s < kNumHostStates; ++s) {
      w.kv(to_string(static_cast<HostState>(s)),
           t.total(static_cast<HostState>(s)));
      accounted += t.total(static_cast<HostState>(s));
    }
    w.end_object();
    w.kv("accounted_seconds", accounted); // == wall_seconds by construction
    const f64 busy = t.total(HostState::Run) + t.total(HostState::Merge) +
                     t.total(HostState::Drive);
    w.kv("utilization", wall_seconds_ > 0 ? busy / wall_seconds_ : 0.0);
    w.kv("intervals_dropped", t.dropped());
    w.key("intervals").begin_array();
    for (const HostInterval& iv : t.intervals()) {
      w.begin_array();
      w.value(to_string(iv.state));
      w.value(iv.begin);
      w.value(iv.end);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("shard_stalls").begin_array();
  for (u32 i = 0; i < shards(); ++i) {
    const HostShardStats& s = shards_[i];
    w.begin_object();
    w.kv("shard", i);
    if (tile_cols_ > 0) {
      w.kv("tile_row", i / tile_cols_);
      w.kv("tile_col", i % tile_cols_);
    }
    if (i < tile_rects_.size()) {
      const HostTileRect& r = tile_rects_[i];
      w.kv("row_begin", r.row_begin);
      w.kv("row_end", r.row_end);
      w.kv("col_begin", r.col_begin);
      w.kv("col_end", r.col_end);
    }
    w.kv("rounds_worked", s.rounds_worked);
    w.kv("rounds_window_limited", s.rounds_window_limited);
    w.kv("rounds_backpressure", s.rounds_backpressure);
    w.kv("rounds_starved", s.rounds_starved);
    w.kv("events", s.events);
    w.kv("inbound_events", s.inbound_events);
    w.kv("outbound_events", s.outbound_events);
    w.kv("busy_seconds", s.busy_seconds);
    w.end_object();
  }
  w.end_array();

  w.key("lookahead").begin_array();
  for (const HostLookaheadEdge& e : lookahead_) {
    w.begin_object();
    w.kv("from", e.from);
    w.kv("to", e.to);
    w.kv("dir", static_cast<u32>(e.dir));
    w.kv("crosses", e.crosses);
    w.kv("min_batch_cycles", e.min_batch_cycles);
    w.end_object();
  }
  w.end_array();

  // Merge the per-shard samplers into one histogram per program key, then
  // emit per-program sample totals and a top-32 hot-spot table joined with
  // the analysis-layer annotations.
  struct Merged {
    const void* key = nullptr;
    std::vector<u64> counts;
    u64 total = 0;
  };
  std::vector<Merged> merged;
  for (const HostPcSampler& sampler : samplers_) {
    for (const HostPcSampler::ProgramCounts& p : sampler.programs()) {
      Merged* m = nullptr;
      for (Merged& cand : merged)
        if (cand.key == p.key) m = &cand;
      if (m == nullptr) {
        merged.push_back(Merged{p.key, {}, 0});
        m = &merged.back();
      }
      if (m->counts.size() < p.counts.size()) m->counts.resize(p.counts.size(), 0);
      for (std::size_t pc = 0; pc < p.counts.size(); ++pc) {
        m->counts[pc] += p.counts[pc];
        m->total += p.counts[pc];
      }
    }
  }
  // Address order is allocation order and would flap run to run; name order
  // keeps the document stable for humans and the schema check.
  std::stable_sort(merged.begin(), merged.end(),
                   [&](const Merged& a, const Merged& b) {
                     const Annotation* an = annotation_for(a.key);
                     const Annotation* bn = annotation_for(b.key);
                     const std::string& na = an ? an->name : std::string{};
                     const std::string& nb = bn ? bn->name : std::string{};
                     if (na != nb) return na < nb;
                     return a.total > b.total;
                   });

  w.key("programs").begin_array();
  for (const Merged& m : merged) {
    const Annotation* a = annotation_for(m.key);
    w.begin_object();
    w.kv("program", a != nullptr ? a->name.c_str() : "?");
    w.kv("samples", m.total);
    w.kv("code_words", static_cast<u64>(m.counts.size()));
    w.end_object();
  }
  w.end_array();

  struct Hot {
    const Merged* program = nullptr;
    u32 pc = 0;
    u64 samples = 0;
  };
  std::vector<Hot> hot;
  for (const Merged& m : merged)
    for (std::size_t pc = 0; pc < m.counts.size(); ++pc)
      if (m.counts[pc] > 0)
        hot.push_back(Hot{&m, static_cast<u32>(pc), m.counts[pc]});
  std::stable_sort(hot.begin(), hot.end(),
                   [](const Hot& a, const Hot& b) { return a.samples > b.samples; });
  if (hot.size() > 32) hot.resize(32);

  w.key("hotspots").begin_array();
  for (const Hot& h : hot) {
    const Annotation* a = annotation_for(h.program->key);
    const auto label = [&](const std::vector<std::string>& v) {
      return a != nullptr && h.pc < v.size() ? v[h.pc].c_str() : "?";
    };
    w.begin_object();
    w.kv("program", a != nullptr ? a->name.c_str() : "?");
    w.kv("pc", h.pc);
    w.kv("op", a != nullptr ? label(a->ops) : "?");
    w.kv("phase", a != nullptr ? label(a->phases) : "?");
    w.kv("samples", h.samples);
    w.end_object();
  }
  w.end_array();

  w.key("critical_path").begin_object();
  w.kv("total_busy_seconds", total_busy_seconds_);
  w.kv("critical_path_seconds", crit_seconds_);
  w.kv("max_speedup_unbounded", max_speedup_unbounded());
  w.key("bounds").begin_array();
  for (u32 threads : kBoundThreads) {
    w.begin_object();
    w.kv("threads", threads);
    w.kv("max_speedup", max_speedup_bound(threads));
    w.end_object();
  }
  w.end_array();
  w.kv("total_events", total_events_);
  w.kv("critical_path_events", crit_events_);
  w.key("event_bounds").begin_array();
  for (u32 threads : kBoundThreads) {
    w.begin_object();
    w.kv("threads", threads);
    w.kv("max_speedup", max_event_speedup_bound(threads));
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.end_object();
  return w.take();
}

std::string HostProfiler::chrome_trace_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (u32 i = 0; i < workers(); ++i) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", u64{1});
    w.kv("tid", static_cast<u64>(i));
    w.key("args").begin_object();
    w.kv("name", i == 0 ? "worker 0 (driver)" : "worker");
    w.end_object();
    w.end_object();
    for (const HostInterval& iv : timelines_[i].intervals()) {
      if (iv.state == HostState::Park) continue; // idle gaps read themselves
      w.begin_object();
      w.kv("name", to_string(iv.state));
      w.kv("ph", "X");
      w.kv("pid", u64{1});
      w.kv("tid", static_cast<u64>(i));
      w.kv("ts", iv.begin * 1e6);
      w.kv("dur", (iv.end - iv.begin) * 1e6);
      w.end_object();
    }
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.take();
}

std::vector<std::string> HostProfiler::write(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  const auto emit = [&](const char* file, const std::string& body) {
    std::string path = dir + "/" + file;
    write_file(path, body);
    paths.push_back(std::move(path));
  };
  emit("host_profile.json", host_profile_json());
  emit("host_trace.json", chrome_trace_json());
  return paths;
}

void HostProfiler::print_summary(std::ostream& os,
                                 u32 threads_of_interest) const {
  if (!captured()) {
    os << "host profile: nothing captured (profiler not attached to a run,"
          " or telemetry hooks compiled out)\n";
    return;
  }
  const u32 t_headline =
      threads_of_interest != 0 ? threads_of_interest : workers();
  os << "host profile: " << workers() << " worker(s) over " << shards()
     << " shard(s), " << rounds_ << " round(s), wall "
     << wall_seconds_ << " s\n";
  const auto pct = [&](f64 seconds) {
    return wall_seconds_ > 0 ? 100.0 * seconds / wall_seconds_ : 0.0;
  };
  for (u32 i = 0; i < workers(); ++i) {
    const HostWorkerTimeline& t = timelines_[i];
    os << "  worker " << i << ":";
    for (u32 s = 0; s < kNumHostStates; ++s) {
      const HostState state = static_cast<HostState>(s);
      char buf[16];
      std::snprintf(buf, sizeof buf, "%5.1f%%", pct(t.total(state)));
      os << "  " << to_string(state) << " " << buf;
    }
    if (t.dropped() > 0) os << "  (+" << t.dropped() << " intervals dropped)";
    os << "\n";
  }
  u64 worked = 0;
  u64 limited = 0;
  u64 backpressure = 0;
  u64 starved = 0;
  for (const HostShardStats& s : shards_) {
    worked += s.rounds_worked;
    limited += s.rounds_window_limited;
    backpressure += s.rounds_backpressure;
    starved += s.rounds_starved;
  }
  const f64 shard_rounds =
      static_cast<f64>(worked + limited + backpressure + starved);
  if (shard_rounds > 0) {
    const auto spct = [&](u64 n) {
      return 100.0 * static_cast<f64>(n) / shard_rounds;
    };
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "  stalls: worked %.1f%%  window-limited %.1f%%  "
                  "backpressure %.1f%%  starved %.1f%% (of %.0f shard-rounds)",
                  spct(worked), spct(limited), spct(backpressure),
                  spct(starved), shard_rounds);
    os << buf << "\n";
  }
  // Per-tile breakdown (only meaningful once the engine reported its
  // layout; a single tile repeats the aggregate line above).
  if (tile_cols_ > 0 && shards() > 1) {
    for (u32 i = 0; i < shards(); ++i) {
      const HostShardStats& s = shards_[i];
      const f64 total = static_cast<f64>(s.rounds_total());
      const auto tpct = [&](u64 n) {
        return total > 0 ? 100.0 * static_cast<f64>(n) / total : 0.0;
      };
      char row[192];
      std::snprintf(row, sizeof row,
                    "  tile (%u,%u): worked %5.1f%%  window %5.1f%%  "
                    "backpr %5.1f%%  starved %5.1f%%  events %llu  busy %.4f s",
                    i / tile_cols_, i % tile_cols_, tpct(s.rounds_worked),
                    tpct(s.rounds_window_limited), tpct(s.rounds_backpressure),
                    tpct(s.rounds_starved),
                    static_cast<unsigned long long>(s.events), s.busy_seconds);
      os << row << "\n";
    }
  }
  char bound[160];
  std::snprintf(bound, sizeof bound,
                "critical-path bound: max speedup %.2fx at %u threads "
                "(%.2fx unbounded; work %.4f s, critical path %.4f s; "
                "event-balance %.2fx at %u threads)",
                max_speedup_bound(t_headline), t_headline,
                max_speedup_unbounded(), total_busy_seconds_, crit_seconds_,
                max_event_speedup_bound(t_headline), t_headline);
  os << bound << "\n";
}

} // namespace fvdf::telemetry
