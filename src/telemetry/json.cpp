#include "telemetry/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace fvdf::telemetry {

// --- writer ----------------------------------------------------------------

void JsonWriter::prefix() {
  if (stack_.empty()) return;
  if (stack_.back() < 0) {
    stack_.back() = -stack_.back(); // value completes the pending key
    return;
  }
  if (stack_.back() > 0) out_.push_back(',');
  ++stack_.back();
}

void JsonWriter::raw(std::string_view text) { out_.append(text); }

JsonWriter& JsonWriter::begin_object() {
  prefix();
  out_.push_back('{');
  stack_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  FVDF_CHECK_MSG(!stack_.empty() && stack_.back() >= 0, "unbalanced end_object");
  stack_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix();
  out_.push_back('[');
  stack_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  FVDF_CHECK_MSG(!stack_.empty() && stack_.back() >= 0, "unbalanced end_array");
  stack_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  FVDF_CHECK_MSG(!stack_.empty(), "key outside object");
  if (stack_.back() > 0) out_.push_back(',');
  ++stack_.back();
  out_.push_back('"');
  raw(json_escape(name));
  raw("\":");
  stack_.back() = -stack_.back(); // next emission is this key's value
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  prefix();
  out_.push_back('"');
  raw(json_escape(text));
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::value(bool boolean) {
  prefix();
  raw(boolean ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(f64 number) {
  prefix();
  if (!std::isfinite(number)) { // JSON has no inf/nan
    raw("null");
    return *this;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), number);
  FVDF_CHECK(res.ec == std::errc{});
  raw(std::string_view(buf, static_cast<std::size_t>(res.ptr - buf)));
  return *this;
}

JsonWriter& JsonWriter::value(u64 number) {
  prefix();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), number);
  raw(std::string_view(buf, static_cast<std::size_t>(res.ptr - buf)));
  return *this;
}

JsonWriter& JsonWriter::value(i64 number) {
  prefix();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), number);
  raw(std::string_view(buf, static_cast<std::size_t>(res.ptr - buf)));
  return *this;
}

std::string JsonWriter::take() {
  FVDF_CHECK_MSG(stack_.empty(), "take() with open containers");
  std::string result;
  result.swap(out_);
  return result;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out.push_back(c);
      }
    }
  }
  return out;
}

// --- validator -------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& reason) {
    if (error.empty())
      error = "offset " + std::to_string(pos) + ": " + reason;
    return false;
  }

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return fail("invalid literal");
    pos += word.size();
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') return fail("expected string");
    ++pos;
    while (!eof()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char");
      if (c == '\\') {
        if (eof()) break;
        const char esc = text[pos++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(text[pos])))
              return fail("bad \\u escape");
            ++pos;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return fail("bad escape");
        }
      }
    }
    return fail("unterminated string");
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("expected digit");
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    return true;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos;
    if (eof()) return fail("truncated number");
    if (peek() == '0') {
      ++pos;
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > 256) return fail("nesting too deep");
    skip_ws();
    if (eof()) return fail("expected value");
    switch (peek()) {
    case '{': return object(depth);
    case '[': return array(depth);
    case '"': return string();
    case 't': return literal("true");
    case 'f': return literal("false");
    case 'n': return literal("null");
    default: return number();
    }
  }

  bool object(int depth) {
    ++pos; // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':'");
      ++pos;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(int depth) {
    ++pos; // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      return true;
    }
    for (;;) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }
};

} // namespace

bool validate_json(std::string_view text, std::string* error) {
  Parser parser{text, 0, {}};
  bool ok = parser.value(0);
  if (ok) {
    parser.skip_ws();
    if (!parser.eof()) ok = parser.fail("trailing garbage");
  }
  if (!ok && error) *error = parser.error;
  return ok;
}

} // namespace fvdf::telemetry
