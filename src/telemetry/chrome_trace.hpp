#pragma once
// Chrome trace-event JSON exporter (Perfetto / chrome://tracing).
//
// Emits the classic trace-event format: one complete ("X") event per
// phase span, one instant ("i") event per sampled raw fabric event, plus
// metadata records naming the process and per-PE tracks. Timestamps are
// the simulator's cycle counts written into the `ts`/`dur` microsecond
// fields — a cycle reads as a microsecond in the UI, which keeps the
// numbers exact and human-meaningful (divide by the clock to get real
// time; see docs/observability.md).

#include <string>
#include <vector>

#include "telemetry/collector.hpp"

namespace fvdf::telemetry {

/// A raw fabric event sampled for the trace (Level::Trace). `name` must
/// point at a string with static storage duration (the fabric's
/// to_string(TraceEvent) tables qualify).
struct SimEventSample {
  const char* name = "";
  f64 t = 0;
  i64 x = 0;
  i64 y = 0;
  u32 color = 0;
  u32 words = 0;
};

/// Serializes phase spans (+ optional raw events) as one JSON object:
/// {"traceEvents": [...], "displayTimeUnit": "ms", ...}. Deterministic:
/// events are written in span order, then sample order.
std::string chrome_trace_json(const FabricCollector& collector,
                              const std::vector<SimEventSample>& events);

} // namespace fvdf::telemetry
