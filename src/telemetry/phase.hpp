#pragma once
// Solver phase taxonomy for device-side span attribution.
//
// The paper's Table II explains per-kernel cost by splitting a CG
// iteration into halo exchange, flux/SpMV, local dot products, the
// whole-fabric all-reduce and the axpy vector updates. Device programs
// report transitions between these phases through PeContext::mark_phase
// (see wse/program.hpp); the fabric timestamps each mark with the PE's
// task-local cycle cursor and the telemetry layer turns the per-PE mark
// streams into non-overlapping spans.

#include "common/types.hpp"

namespace fvdf::telemetry {

enum class Phase : u8 {
  Setup = 0, // program init, router configuration, upload
  Halo,      // Table-I halo exchange of the active column
  Flux,      // matrix-free flux accumulation (the SpMV substitute)
  LocalDot,  // PE-local dot products feeding a reduction
  AllReduce, // whole-fabric all-reduce (Sec. III-C)
  Axpy,      // vector updates: residual/solution/direction axpys
  Check,     // scalar control flow: iteration/threshold checks
  Done,      // results published, PE halted (drain tail)
  kCount
};

constexpr u32 kNumPhases = static_cast<u32>(Phase::kCount);

inline const char* to_string(Phase phase) {
  switch (phase) {
  case Phase::Setup: return "setup";
  case Phase::Halo: return "halo";
  case Phase::Flux: return "flux";
  case Phase::LocalDot: return "local_dot";
  case Phase::AllReduce: return "all_reduce";
  case Phase::Axpy: return "axpy";
  case Phase::Check: return "check";
  case Phase::Done: return "done";
  case Phase::kCount: break;
  }
  return "?";
}

} // namespace fvdf::telemetry
