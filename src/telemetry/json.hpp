#pragma once
// Minimal deterministic JSON writer + validator for telemetry exports.
//
// The writer emits keys in exactly the order the caller provides them and
// formats floating-point values with shortest-round-trip std::to_chars, so
// a given data set serializes to bitwise-identical bytes on every run and
// thread count — the property the telemetry determinism tests compare.
// The validator is a strict recursive-descent parser used by tests and
// tools to prove emitted documents are well-formed (the CI smoke job
// additionally runs them through `python3 -m json.tool`).

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace fvdf::telemetry {

class JsonWriter {
public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next value/begin_* call supplies its value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool boolean);
  JsonWriter& value(f64 number);
  JsonWriter& value(u64 number);
  JsonWriter& value(i64 number);
  JsonWriter& value(u32 number) { return value(static_cast<u64>(number)); }
  JsonWriter& value(i32 number) { return value(static_cast<i64>(number)); }

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& kv(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  /// Finishes and returns the document. The writer is left empty.
  std::string take();

private:
  void prefix();
  void raw(std::string_view text);

  std::string out_;
  // One entry per open container: number of elements emitted so far;
  // negative flags "a key was just written, next emission is its value".
  std::vector<i64> stack_;
};

/// Escapes a string for inclusion in a JSON document (no quotes added).
std::string json_escape(std::string_view text);

/// Strict well-formedness check (RFC 8259 grammar, no extensions).
/// Returns true when `text` is exactly one valid JSON value; on failure
/// fills `error` (if non-null) with a byte offset and reason.
bool validate_json(std::string_view text, std::string* error = nullptr);

} // namespace fvdf::telemetry
