#pragma once
// One telemetry session = one instrumented fabric run.
//
// The session owns the sharded FabricCollector the fabric writes into, a
// host-side MetricsRegistry for caller-defined metrics, and the sampled
// raw-event buffer; after the run, finalize() freezes everything and the
// export methods serialize the bundle:
//
//   metrics_json()      counters, per-phase cycle totals, histograms
//   chrome_trace_json() phase spans + sampled events, Perfetto-loadable
//   progress_json()     residual history with per-iteration timings
//   write_bundle(dir)   all of the above + PPM/CSV heatmaps + link CSV
//
// Every export is deterministic: identical runs — including runs at
// different --sim-threads — serialize to identical bytes.
//
// Wiring (done by core::solve_dataflow* when DataflowConfig::telemetry is
// set, or by hand around a raw Fabric):
//
//   telemetry::Session session({telemetry::Level::Trace});
//   fabric.set_telemetry(&session.collector());
//   fabric.set_trace(session.trace_sink_adapter());   // Level::Trace only
//   auto run = fabric.run();
//   session.finalize(telemetry::RunInfo{run.cycles, ...});

#include <array>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/registry.hpp"

namespace fvdf::telemetry {

struct TelemetryConfig {
  Level level = Level::Metrics;
  SamplingConfig sampling{};
};

/// Fabric-run summary handed to finalize(); mirrors wse::FabricStats
/// without depending on it (telemetry sits below wse in the link order).
struct RunInfo {
  f64 total_cycles = 0;
  f64 seconds = 0;
  u64 messages_sent = 0;
  u64 wavelet_hops = 0;
  u64 word_hops = 0;
  u64 words_delivered = 0;
  u64 words_dropped = 0;
  u64 control_wavelets = 0;
  u64 tasks_run = 0;
  u64 events_processed = 0;
  u64 flits_stalled = 0;
  u64 iterations = 0; // solver iterations; 0 when not applicable
  bool converged = false;
};

class Session {
public:
  explicit Session(TelemetryConfig config = {});

  const TelemetryConfig& config() const { return config_; }
  FabricCollector& collector() { return collector_; }
  const FabricCollector& collector() const { return collector_; }
  MetricsRegistry& registry() { return registry_; }

  /// Feeds one raw fabric event (already deterministically ordered by the
  /// fabric's trace merge). Applies event_sample_period; ignored below
  /// Level::Trace. `name` must have static storage duration.
  void record_event(const char* name, f64 t, i64 x, i64 y, u32 color, u32 words);

  /// Freezes the session. Call exactly once, after the fabric run.
  void finalize(const RunInfo& info);
  bool finalized() const { return finalized_; }
  const RunInfo& run_info() const { return info_; }
  const std::vector<SimEventSample>& events() const { return events_; }

  /// Per-phase cycle totals on the reference PE (0,0); sums to
  /// RunInfo::total_cycles by construction.
  std::array<f64, kNumPhases> reference_phase_cycles() const;

  std::string metrics_json() const;
  std::string chrome_trace_json() const;
  std::string progress_json() const;

  /// Writes metrics.json, trace.json, progress.json, the four heatmap
  /// PPM+CSV pairs and links.csv into `dir` (created if absent). Returns
  /// the paths written.
  std::vector<std::string> write_bundle(const std::string& dir) const;

private:
  TelemetryConfig config_;
  FabricCollector collector_;
  MetricsRegistry registry_;
  std::vector<SimEventSample> events_;
  u64 event_counter_ = 0;
  RunInfo info_{};
  bool finalized_ = false;
  // Finalize products (deterministic row-major accumulation over PEs):
  StreamingHistogram pe_busy_cycles_;
  StreamingHistogram pe_tx_words_;
  StreamingHistogram pe_stall_cycles_;
};

} // namespace fvdf::telemetry
