#pragma once
// Host-side execution profiler for the parallel fabric engine.
//
// PR 3's telemetry observes the *simulated fabric* — deterministically, so
// the bundle is bitwise identical at any thread count. This profiler
// observes the *simulator*: where each worker thread's wall time went
// (window processing / merge / barrier wait / futex park), why each shard's
// rounds stalled (lookahead-window-limited vs work-starved vs cross-shard
// backpressure, counted against the ChannelLookahead table actually
// installed), which bytecode pcs the interpreter burned its time in, and —
// from the per-round per-shard busy times — a critical-path bound on the
// speedup any worker count could possibly achieve on this workload.
//
// Determinism contract: the profiler only ever *reads* host clocks and
// writes to its own storage; it never feeds anything back into the engine.
// Solve results, cycle counts, ledgers and the deterministic telemetry
// bundle are bitwise identical with the profiler attached or not (tested in
// tests/test_wse_parallel.cpp). Its own output is wall-clock data and is
// intentionally NOT deterministic — it lives in a separate host_profile
// bundle, never inside the device bundle.
//
// Threading contract (the lock-free part): every mutable slot has exactly
// one writer between barriers —
//   * WorkerTimeline w      written only by worker w, and only between its
//                           wake and its final barrier arrival of a round;
//   * ShardStats s          written only by the worker that owns shard s
//                           (phase A classification, phase B resolution);
//   * PcSampler s           written only by shard s's worker inside
//                           process_window;
//   * round accumulators    written only by the driver (worker 0) between
//                           rounds.
// The engine's sense-reversing round barrier orders every worker write
// before every driver read (the same happens-before edge the trace merge
// already relies on), so no atomics appear anywhere in this file. For
// workers > 0 the trailing per-round barrier cannot be timed from inside
// (the thread parks right after arriving), so it is folded into the next
// Park interval; worker 0 returns through the barrier and accounts it
// exactly.
//
// Everything in the engine hot path compiles out under -DFVDF_TELEMETRY=OFF
// (the hooks sit behind FVDF_TELEMETRY_DISABLED in wse/); this class always
// compiles, and captured() reports false when no engine ever called
// begin_run().

#include <array>
#include <chrono>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fvdf::telemetry {

/// What a worker thread is doing at an instant of host wall time.
enum class HostState : u8 {
  Park = 0, // parked on the pool futex between rounds (workers > 0; also
            // absorbs those workers' trailing round barrier — see above)
  Run,      // phase A: processing its shards' event windows
  Barrier,  // waiting at a sense-reversing round barrier
  Merge,    // phase B: draining inbound channels + recomputing bounds
  Drive,    // between-round driver work on worker 0 (horizons, trace
            // flush, round accumulation)
  kCount
};

constexpr u32 kNumHostStates = static_cast<u32>(HostState::kCount);

inline const char* to_string(HostState state) {
  switch (state) {
  case HostState::Park: return "park";
  case HostState::Run: return "run";
  case HostState::Barrier: return "barrier";
  case HostState::Merge: return "merge";
  case HostState::Drive: return "drive";
  case HostState::kCount: break;
  }
  return "?";
}

/// One contiguous span of one worker's wall time. Seconds since the
/// profiler's begin_run epoch.
struct HostInterval {
  f64 begin = 0;
  f64 end = 0;
  HostState state = HostState::Park;
};

/// Interval timeline of one worker thread. enter() is a state transition:
/// it closes the current interval at `now` and opens the next, so by
/// construction the recorded intervals are sorted, non-overlapping and
/// gap-free from t0 to the final close(). Per-state totals stay exact even
/// after the interval buffer hits its cap (long runs only lose detail,
/// never attribution).
class alignas(64) HostWorkerTimeline {
public:
  void reset(HostState initial, std::size_t max_intervals) {
    state_ = initial;
    cursor_ = 0;
    intervals_.clear();
    totals_.fill(0);
    dropped_ = 0;
    cap_ = max_intervals;
  }

  void enter(HostState next, f64 now) {
    close(now);
    state_ = next;
  }

  /// Closes the open interval at `now` without changing state.
  void close(f64 now) {
    if (now <= cursor_) return; // zero-width: nothing to record
    totals_[static_cast<std::size_t>(state_)] += now - cursor_;
    if (intervals_.size() < cap_)
      intervals_.push_back(HostInterval{cursor_, now, state_});
    else
      ++dropped_;
    cursor_ = now;
  }

  HostState state() const { return state_; }
  const std::vector<HostInterval>& intervals() const { return intervals_; }
  const std::array<f64, kNumHostStates>& totals() const { return totals_; }
  f64 total(HostState s) const { return totals_[static_cast<std::size_t>(s)]; }
  u64 dropped() const { return dropped_; }

private:
  HostState state_ = HostState::Park;
  f64 cursor_ = 0;
  std::vector<HostInterval> intervals_;
  std::array<f64, kNumHostStates> totals_{};
  u64 dropped_ = 0;
  std::size_t cap_ = 0;
};

/// Per-shard stall attribution. Every engine round classifies every shard
/// into exactly one of four bins, so the four round counters always sum to
/// the run's round count:
///   worked          the window admitted events and the shard processed them
///   starved         the shard's event heap was empty (no local work exists)
///   backpressure    the lookahead window closed the shard out, and inbound
///                   cross-shard traffic did arrive at the merge — the shard
///                   was genuinely waiting on its neighbor's channel
///   window_limited  the window closed the shard out but nothing arrived —
///                   the installed ChannelLookahead table was conservative
struct alignas(64) HostShardStats {
  u64 rounds_worked = 0;
  u64 rounds_window_limited = 0;
  u64 rounds_backpressure = 0;
  u64 rounds_starved = 0;
  u64 events = 0;          // events processed across all windows
  u64 inbound_events = 0;  // merged in from neighbor channels
  u64 outbound_events = 0; // published into neighbor channels
  f64 busy_seconds = 0;    // wall spent inside process_window
  // Phase-A scratch for the driver's round accumulation and the phase-B
  // limited/backpressure resolution:
  f64 last_round_busy_seconds = 0;
  u64 last_round_events = 0;
  bool pending_limited = false;

  u64 rounds_total() const {
    return rounds_worked + rounds_window_limited + rounds_backpressure +
           rounds_starved;
  }
};

/// Countdown pc sampler the bytecode interpreter ticks once per
/// instruction (wse/bytecode_interp.hpp instantiates a sampling variant of
/// the dispatch loop only when a profiler is attached). Programs are
/// keyed by address — PEs with coinciding lowering sites share one
/// immutable bc::Program, so a fabric holds only a handful of distinct
/// keys; names and per-pc phase labels are joined in post-run annotation.
class alignas(64) HostPcSampler {
public:
  struct ProgramCounts {
    const void* key = nullptr;
    std::vector<u64> counts; // per pc
  };

  u32 countdown = 0; // decremented by the interpreter; 0 disables
  u32 period = 0;

  void reset(u32 sample_period) {
    // The interpreter pre-decrements, so 0 would wrap; clamp to every-instr.
    period = sample_period == 0 ? 1 : sample_period;
    countdown = period;
    programs_.clear();
    last_ = nullptr;
  }

  void record(const void* key, std::size_t code_size, u32 pc) {
    if (last_ == nullptr || last_->key != key) {
      last_ = nullptr;
      for (ProgramCounts& p : programs_)
        if (p.key == key) last_ = &p;
      if (last_ == nullptr) {
        programs_.push_back(ProgramCounts{key, std::vector<u64>(code_size, 0)});
        last_ = &programs_.back();
      }
    }
    if (pc < last_->counts.size()) ++last_->counts[pc];
  }

  const std::vector<ProgramCounts>& programs() const { return programs_; }

private:
  std::vector<ProgramCounts> programs_;
  ProgramCounts* last_ = nullptr; // cache: tasks rarely switch programs
};

/// Static lookahead-table snapshot exported alongside the stall bins so the
/// attribution can be read against the windows actually installed (mirrors
/// wse::ChannelLookahead without depending on it — telemetry links below
/// wse). One entry per *directed* tile-boundary edge: wavelets leaving
/// shard `from` through cardinal side `dir` (N=0, E=1, S=2, W=3) into
/// shard `to`.
struct HostLookaheadEdge {
  u32 from = 0;
  u32 to = 0;
  u8 dir = 0;
  bool crosses = true;
  f64 min_batch_cycles = 0;
};

/// The PE rectangle a tile shard owns — the engine's layout, exported so
/// stall attribution can be printed per tile (mirrors Fabric::TileRect
/// without depending on wse).
struct HostTileRect {
  i64 row_begin = 0;
  i64 row_end = 0;
  i64 col_begin = 0;
  i64 col_end = 0;
};

struct HostProfilerConfig {
  u32 pc_sample_period = 64;            // instructions per pc sample
  std::size_t max_intervals_per_worker = 1u << 15; // detail cap (totals exact)
};

/// Thread counts the critical-path bound is evaluated at. The per-round
/// accumulation max(longest shard, total/T) cannot be reconstructed for
/// arbitrary T after the fact, so the interesting ladder is folded during
/// the run; infinity (the pure critical path) is always available.
constexpr std::array<u32, 6> kBoundThreads{1, 2, 4, 8, 16, 32};

class HostProfiler {
public:
  explicit HostProfiler(HostProfilerConfig config = {}) : config_(config) {}

  // --- engine-facing (wse::Fabric / wse::FabricWorkerPool) ---------------

  /// Arms the profiler for one fabric run: resets all storage, sizes the
  /// per-worker / per-shard slots and starts the wall clock. Worker 0
  /// opens in Drive, workers > 0 in Park.
  void begin_run(u32 workers, u32 shards, u32 threads_requested);

  /// Stops the wall clock and closes every worker's open interval (safe:
  /// workers write nothing while parked, and the caller holds the
  /// round-barrier happens-before edge). Idempotent.
  void end_run();

  /// Seconds since begin_run on a monotonic clock.
  f64 now() const {
    return std::chrono::duration<f64>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

  HostWorkerTimeline& timeline(u32 worker) { return timelines_[worker]; }
  HostShardStats& shard(u32 shard) { return shards_[shard]; }
  HostPcSampler& pc_sampler(u32 shard) { return samplers_[shard]; }

  void set_lookahead(std::vector<HostLookaheadEdge> edges) {
    lookahead_ = std::move(edges);
  }

  /// Records the engine's tile layout (tile grid dimensions and each
  /// shard's PE rectangle, row-major shard ids) for per-tile attribution.
  void set_layout(u32 tile_rows, u32 tile_cols,
                  std::vector<HostTileRect> rects) {
    tile_rows_ = tile_rows;
    tile_cols_ = tile_cols;
    tile_rects_ = std::move(rects);
  }

  /// Driver-only, once per engine round after the round's final barrier:
  /// folds each shard's last_round busy time into the critical-path
  /// accumulators.
  void accumulate_round();

  // --- post-run annotation (analysis layer) ------------------------------

  /// Attaches name and per-pc labels to a sampled program key. `ops` and
  /// `phases` are indexed by pc; short vectors read as "?" past the end.
  void annotate_program(const void* key, std::string name,
                        std::vector<std::string> ops,
                        std::vector<std::string> phases);

  // --- results -----------------------------------------------------------

  bool captured() const { return began_; }
  u32 workers() const { return static_cast<u32>(timelines_.size()); }
  u32 shards() const { return static_cast<u32>(shards_.size()); }
  u32 threads_requested() const { return threads_requested_; }
  u64 rounds() const { return rounds_; }
  f64 wall_seconds() const { return wall_seconds_; }
  const HostWorkerTimeline& worker_timeline(u32 w) const {
    return timelines_[w];
  }
  const HostShardStats& shard_stats(u32 s) const { return shards_[s]; }
  u32 tile_rows() const { return tile_rows_; }
  u32 tile_cols() const { return tile_cols_; }
  const std::vector<HostTileRect>& tile_rects() const { return tile_rects_; }

  f64 total_busy_seconds() const { return total_busy_seconds_; }
  f64 critical_path_seconds() const { return crit_seconds_; }

  /// Max achievable speedup at `threads` workers implied by the per-round
  /// shard busy profile: total work over sum_r max(longest shard in round
  /// r, round work / threads). Exact at the kBoundThreads ladder; other
  /// values clamp to the nearest entry below. Returns 1 when nothing was
  /// captured.
  f64 max_speedup_bound(u32 threads) const;
  /// Same bound computed over event counts instead of wall seconds — the
  /// workload-intrinsic balance, independent of per-event host cost.
  f64 max_event_speedup_bound(u32 threads) const;
  /// total work / critical path: the T -> infinity limit.
  f64 max_speedup_unbounded() const;

  // --- export ------------------------------------------------------------

  /// The host-profile document ("fvdf.telemetry.host_profile/2"):
  /// worker timelines + per-state totals, per-shard stall attribution, the
  /// lookahead table, the bytecode hot-spot table and the critical-path
  /// bounds.
  std::string host_profile_json() const;

  /// Chrome trace-event document of the worker timelines (one tid per
  /// worker), loadable in Perfetto next to the device trace.
  std::string chrome_trace_json() const;

  /// Writes host_profile.json + host_trace.json into `dir` (created if
  /// absent); returns the paths written.
  std::vector<std::string> write(const std::string& dir) const;

  /// Human-readable utilization / stall / bound summary. `threads_of_interest`
  /// picks the headline bound row (0 = the run's worker count).
  void print_summary(std::ostream& os, u32 threads_of_interest = 0) const;

private:
  struct Annotation {
    const void* key = nullptr;
    std::string name;
    std::vector<std::string> ops;
    std::vector<std::string> phases;
  };

  const Annotation* annotation_for(const void* key) const;

  HostProfilerConfig config_;
  std::chrono::steady_clock::time_point t0_{};
  std::vector<HostWorkerTimeline> timelines_;
  std::vector<HostShardStats> shards_;
  std::vector<HostPcSampler> samplers_;
  std::vector<HostLookaheadEdge> lookahead_;
  u32 tile_rows_ = 0; // 0 until set_layout
  u32 tile_cols_ = 0;
  std::vector<HostTileRect> tile_rects_;
  std::vector<Annotation> annotations_;
  u32 threads_requested_ = 0;
  u64 rounds_ = 0;
  f64 wall_seconds_ = 0;
  // Critical-path folds (driver-only writes):
  f64 total_busy_seconds_ = 0;
  f64 crit_seconds_ = 0;
  std::array<f64, kBoundThreads.size()> bound_seconds_{};
  f64 total_events_ = 0;
  f64 crit_events_ = 0;
  std::array<f64, kBoundThreads.size()> bound_events_{};
  bool began_ = false;
  bool ended_ = false;
};

} // namespace fvdf::telemetry
