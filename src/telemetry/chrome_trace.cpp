#include "telemetry/chrome_trace.hpp"

#include "common/error.hpp"
#include "telemetry/json.hpp"

namespace fvdf::telemetry {

namespace {

constexpr i64 kPhasePid = 0; // phase-span tracks, one per sampled PE
constexpr i64 kEventPid = 1; // raw fabric events

void write_thread_meta(JsonWriter& w, i64 pid, i64 tid, const std::string& name) {
  w.begin_object();
  w.kv("name", "thread_name");
  w.kv("ph", "M");
  w.kv("pid", pid);
  w.kv("tid", tid);
  w.key("args").begin_object();
  w.kv("name", name);
  w.end_object();
  w.end_object();
}

void write_process_meta(JsonWriter& w, i64 pid, const std::string& name) {
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", pid);
  w.kv("tid", i64{0});
  w.key("args").begin_object();
  w.kv("name", name);
  w.end_object();
  w.end_object();
}

} // namespace

std::string chrome_trace_json(const FabricCollector& collector,
                              const std::vector<SimEventSample>& events) {
  FVDF_CHECK_MSG(collector.finalized(), "chrome_trace_json before finalize()");
  const i64 width = collector.width();

  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.kv("source", "fvdf fabric telemetry");
  w.kv("time_unit", "cycles (written as trace microseconds)");
  w.kv("fabric_width", width);
  w.kv("fabric_height", collector.height());
  w.kv("total_cycles", collector.total_cycles());
  w.end_object();

  w.key("traceEvents").begin_array();
  write_process_meta(w, kPhasePid, "fabric phases");
  if (!events.empty()) write_process_meta(w, kEventPid, "fabric events");

  // Thread metadata for every PE that has spans, in PE order (spans are
  // PE-major after finalize).
  i64 last_meta_pe = -1;
  for (const PhaseSpan& span : collector.spans()) {
    if (span.pe == last_meta_pe) continue;
    last_meta_pe = span.pe;
    const i64 x = span.pe % width, y = span.pe / width;
    write_thread_meta(w, kPhasePid, span.pe,
                      "PE (" + std::to_string(x) + "," + std::to_string(y) + ")");
  }

  for (const PhaseSpan& span : collector.spans()) {
    w.begin_object();
    w.kv("name", to_string(static_cast<Phase>(span.phase)));
    w.kv("cat", "phase");
    w.kv("ph", "X");
    w.kv("ts", span.begin);
    w.kv("dur", span.end - span.begin);
    w.kv("pid", kPhasePid);
    w.kv("tid", span.pe);
    w.end_object();
  }

  for (const SimEventSample& event : events) {
    w.begin_object();
    w.kv("name", event.name);
    w.kv("cat", "fabric");
    w.kv("ph", "i");
    w.kv("s", "t"); // thread-scoped instant
    w.kv("ts", event.t);
    w.kv("pid", kEventPid);
    w.kv("tid", event.y * width + event.x);
    w.key("args").begin_object();
    w.kv("color", event.color);
    w.kv("words", event.words);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

} // namespace fvdf::telemetry
