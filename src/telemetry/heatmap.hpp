#pragma once
// Per-PE and per-link heatmap exporters.
//
// Turns the collector's per-PE activity table into ScalarImage rasters
// (one pixel per PE) written as PPM + CSV through common/image — the same
// pipeline that renders Fig. 5 — plus a per-link CSV with one row per
// (PE, outbound link). These are the spatial views behind the paper's
// utilization arguments: traffic hot spots trace the all-reduce spine
// along the right column, stall maps show backpressure, and the occupancy
// map is per-PE compute utilization.

#include <string>
#include <vector>

#include "common/image.hpp"
#include "telemetry/collector.hpp"

namespace fvdf::telemetry {

struct HeatmapBundle {
  ScalarImage traffic_words;   // outbound words on cardinal links, per PE
  ScalarImage stall_cycles;    // total backpressure park time, per PE
  ScalarImage occupancy;       // busy_cycles / total_cycles, per PE in [0,1]
  ScalarImage delivered_words; // words landed in PE memory
};

/// Builds all four rasters from a finalized collector.
HeatmapBundle build_heatmaps(const FabricCollector& collector);

/// Writes every raster as `<dir>/heatmap_<name>.ppm` + `.csv` (PPM via the
/// viridis-like colormap, CSV as "x,y,value" rows). Returns the file
/// names written, in a fixed order.
std::vector<std::string> write_heatmaps(const HeatmapBundle& bundle,
                                        const std::string& dir);

/// Writes `path` as "x,y,link,words,messages" rows covering every PE's
/// five outbound slots (ramp + N/E/S/W), in row-major PE order — integers
/// only, so the bytes are platform-stable goldens.
void write_link_csv(const FabricCollector& collector, const std::string& path);

/// The per-link table serialized to a string (what write_link_csv writes).
std::string link_csv(const FabricCollector& collector);

} // namespace fvdf::telemetry
