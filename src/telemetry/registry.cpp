#include "telemetry/registry.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/json.hpp"

namespace fvdf::telemetry {

MetricsRegistry::MetricsRegistry(u32 shard_count) : shard_count_(shard_count) {
  FVDF_CHECK(shard_count >= 1);
}

u32 MetricsRegistry::counter(const std::string& name) {
  for (u32 i = 0; i < counters_.size(); ++i)
    if (counters_[i].name == name) return i;
  counters_.push_back(Counter{name, std::vector<u64>(shard_count_, 0)});
  return static_cast<u32>(counters_.size() - 1);
}

u32 MetricsRegistry::gauge(const std::string& name) {
  for (u32 i = 0; i < gauges_.size(); ++i)
    if (gauges_[i].name == name) return i;
  gauges_.push_back(Gauge{name, 0.0});
  return static_cast<u32>(gauges_.size() - 1);
}

u32 MetricsRegistry::histogram(const std::string& name, u32 subbucket_bits) {
  for (u32 i = 0; i < histograms_.size(); ++i)
    if (histograms_[i].name == name) return i;
  histograms_.push_back(Histogram{
      name, std::vector<StreamingHistogram>(shard_count_,
                                            StreamingHistogram(subbucket_bits))});
  return static_cast<u32>(histograms_.size() - 1);
}

void MetricsRegistry::add(u32 shard, u32 counter_id, u64 delta) {
  counters_[counter_id].shard_values[shard] += delta;
}

void MetricsRegistry::observe(u32 shard, u32 histogram_id, f64 value) {
  histograms_[histogram_id].shard_values[shard].add(value);
}

void MetricsRegistry::set(u32 gauge_id, f64 value) {
  gauges_[gauge_id].value = value;
}

u64 MetricsRegistry::counter_value(u32 counter_id) const {
  u64 total = 0;
  for (const u64 v : counters_[counter_id].shard_values) total += v;
  return total;
}

f64 MetricsRegistry::gauge_value(u32 gauge_id) const {
  return gauges_[gauge_id].value;
}

StreamingHistogram MetricsRegistry::histogram_value(u32 histogram_id) const {
  const Histogram& h = histograms_[histogram_id];
  StreamingHistogram merged(h.shard_values.front().subbucket_bits());
  for (const StreamingHistogram& shard : h.shard_values) merged.merge(shard);
  return merged;
}

void MetricsRegistry::write_json(JsonWriter& writer) const {
  // Sorted by name so the document layout is independent of registration
  // order.
  std::vector<u32> order;

  writer.begin_object();
  writer.key("counters").begin_object();
  order.resize(counters_.size());
  for (u32 i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](u32 a, u32 b) {
    return counters_[a].name < counters_[b].name;
  });
  for (const u32 id : order) writer.kv(counters_[id].name, counter_value(id));
  writer.end_object();

  writer.key("gauges").begin_object();
  order.resize(gauges_.size());
  for (u32 i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](u32 a, u32 b) {
    return gauges_[a].name < gauges_[b].name;
  });
  for (const u32 id : order) writer.kv(gauges_[id].name, gauge_value(id));
  writer.end_object();

  writer.key("histograms").begin_object();
  order.resize(histograms_.size());
  for (u32 i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](u32 a, u32 b) {
    return histograms_[a].name < histograms_[b].name;
  });
  for (const u32 id : order) {
    const StreamingHistogram merged = histogram_value(id);
    writer.key(histograms_[id].name).begin_object();
    writer.kv("count", static_cast<u64>(merged.count()));
    writer.kv("sum", merged.sum());
    writer.kv("mean", merged.mean());
    writer.kv("min", merged.min());
    writer.kv("max", merged.max());
    writer.kv("p50", merged.p50());
    writer.kv("p95", merged.p95());
    writer.kv("p99", merged.p99());
    writer.end_object();
  }
  writer.end_object();
  writer.end_object();
}

} // namespace fvdf::telemetry
