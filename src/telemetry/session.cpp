#include "telemetry/session.hpp"

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/json.hpp"

namespace fvdf::telemetry {

namespace {

void write_histogram_summary(JsonWriter& w, const StreamingHistogram& h) {
  w.begin_object();
  w.kv("count", static_cast<u64>(h.count()));
  w.kv("sum", h.sum());
  w.kv("mean", h.mean());
  w.kv("min", h.min());
  w.kv("max", h.max());
  w.kv("p50", h.p50());
  w.kv("p95", h.p95());
  w.kv("p99", h.p99());
  w.end_object();
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream file(path, std::ios::binary);
  FVDF_CHECK_MSG(file, "cannot open " << path);
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  FVDF_CHECK_MSG(file.good(), "write failed: " << path);
}

} // namespace

Session::Session(TelemetryConfig config)
    : config_(config), collector_(config.level, config.sampling) {}

void Session::record_event(const char* name, f64 t, i64 x, i64 y, u32 color,
                           u32 words) {
  if (config_.level < Level::Trace) return;
  if (event_counter_++ % config_.sampling.event_sample_period != 0) return;
  events_.push_back(SimEventSample{name, t, x, y, color, words});
}

void Session::finalize(const RunInfo& info) {
  FVDF_CHECK_MSG(!finalized_, "session already finalized");
  finalized_ = true;
  info_ = info;
  collector_.finalize(info.total_cycles);

  for (const PeActivity& pe : collector_.activities()) {
    pe_busy_cycles_.add(pe.busy_cycles);
    pe_tx_words_.add(static_cast<f64>(pe.fabric_tx_words()));
    pe_stall_cycles_.add(pe.stall_cycles);
  }
}

std::array<f64, kNumPhases> Session::reference_phase_cycles() const {
  FVDF_CHECK_MSG(finalized_, "reference_phase_cycles before finalize()");
  return collector_.phase_cycles(0);
}

std::string Session::metrics_json() const {
  FVDF_CHECK_MSG(finalized_, "metrics_json before finalize()");
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "fvdf.telemetry.metrics/1");
  w.kv("level", to_string(config_.level));

  w.key("fabric").begin_object();
  w.kv("width", collector_.width());
  w.kv("height", collector_.height());
  w.kv("pes", collector_.width() * collector_.height());
  w.end_object();

  w.key("run").begin_object();
  w.kv("total_cycles", info_.total_cycles);
  w.kv("seconds", info_.seconds);
  w.kv("iterations", info_.iterations);
  w.kv("converged", info_.converged);
  w.end_object();

  w.key("stats").begin_object();
  w.kv("messages_sent", info_.messages_sent);
  w.kv("wavelet_hops", info_.wavelet_hops);
  w.kv("word_hops", info_.word_hops);
  w.kv("words_delivered", info_.words_delivered);
  w.kv("words_dropped", info_.words_dropped);
  w.kv("control_wavelets", info_.control_wavelets);
  w.kv("tasks_run", info_.tasks_run);
  w.kv("events_processed", info_.events_processed);
  w.kv("flits_stalled", info_.flits_stalled);
  w.end_object();

  // Per-phase breakdown on the reference PE (0,0): full coverage of the
  // run's timeline, so the cycle totals sum to run.total_cycles.
  const auto phases = collector_.phase_cycles(0);
  f64 phase_sum = 0;
  for (const f64 cycles : phases) phase_sum += cycles;
  w.key("phases").begin_object();
  w.kv("reference_pe", "0,0");
  w.key("cycles").begin_object();
  for (u32 p = 0; p < kNumPhases; ++p)
    w.kv(to_string(static_cast<Phase>(p)), phases[p]);
  w.end_object();
  w.key("share").begin_object();
  for (u32 p = 0; p < kNumPhases; ++p)
    w.kv(to_string(static_cast<Phase>(p)),
         phase_sum > 0 ? phases[p] / phase_sum : 0.0);
  w.end_object();
  w.kv("cycles_total", phase_sum);
  w.end_object();

  w.key("per_pe").begin_object();
  w.key("busy_cycles");
  write_histogram_summary(w, pe_busy_cycles_);
  w.key("tx_words");
  write_histogram_summary(w, pe_tx_words_);
  w.key("stall_cycles");
  write_histogram_summary(w, pe_stall_cycles_);
  w.end_object();

  w.key("task_cycles");
  write_histogram_summary(w, collector_.task_cycles());

  w.key("registry");
  registry_.write_json(w);

  w.end_object();
  return w.take();
}

std::string Session::chrome_trace_json() const {
  FVDF_CHECK_MSG(finalized_, "chrome_trace_json before finalize()");
  return telemetry::chrome_trace_json(collector_, events_);
}

std::string Session::progress_json() const {
  FVDF_CHECK_MSG(finalized_, "progress_json before finalize()");
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "fvdf.telemetry.progress/1");
  w.kv("iterations", info_.iterations);
  w.kv("converged", info_.converged);
  w.key("samples").begin_array();
  f64 prev_t = 0;
  for (const ProgressSample& sample : collector_.progress()) {
    w.begin_object();
    w.kv("iteration", sample.iteration);
    w.kv("cycles", sample.t);
    w.kv("cycles_delta", sample.t - prev_t);
    w.kv("value", sample.value);
    w.end_object();
    prev_t = sample.t;
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::vector<std::string> Session::write_bundle(const std::string& dir) const {
  FVDF_CHECK_MSG(finalized_, "write_bundle before finalize()");
  std::filesystem::create_directories(dir);

  std::vector<std::string> written;
  const auto emit = [&](const std::string& name, const std::string& body) {
    const std::string path = dir + "/" + name;
    write_file(path, body);
    written.push_back(path);
  };
  emit("metrics.json", metrics_json());
  emit("trace.json", chrome_trace_json());
  emit("progress.json", progress_json());

  const HeatmapBundle heatmaps = build_heatmaps(collector_);
  for (std::string& path : write_heatmaps(heatmaps, dir))
    written.push_back(std::move(path));

  const std::string links = dir + "/links.csv";
  write_link_csv(collector_, links);
  written.push_back(links);
  return written;
}

} // namespace fvdf::telemetry
