#include "telemetry/heatmap.hpp"

#include <fstream>

#include "common/error.hpp"

namespace fvdf::telemetry {

namespace {

ScalarImage blank(i64 nx, i64 ny) {
  ScalarImage image;
  image.nx = nx;
  image.ny = ny;
  image.values.assign(static_cast<std::size_t>(nx * ny), 0.0);
  return image;
}

} // namespace

HeatmapBundle build_heatmaps(const FabricCollector& collector) {
  FVDF_CHECK_MSG(collector.finalized(), "build_heatmaps before finalize()");
  const i64 nx = collector.width(), ny = collector.height();
  const f64 total = collector.total_cycles();

  HeatmapBundle bundle{blank(nx, ny), blank(nx, ny), blank(nx, ny), blank(nx, ny)};
  const auto& activities = collector.activities();
  for (std::size_t i = 0; i < activities.size(); ++i) {
    const PeActivity& pe = activities[i];
    bundle.traffic_words.values[i] = static_cast<f64>(pe.fabric_tx_words());
    bundle.stall_cycles.values[i] = pe.stall_cycles;
    bundle.occupancy.values[i] = total > 0 ? pe.busy_cycles / total : 0.0;
    bundle.delivered_words.values[i] = static_cast<f64>(pe.rx_words);
  }
  return bundle;
}

std::vector<std::string> write_heatmaps(const HeatmapBundle& bundle,
                                        const std::string& dir) {
  const std::pair<const char*, const ScalarImage*> maps[] = {
      {"traffic", &bundle.traffic_words},
      {"stall", &bundle.stall_cycles},
      {"occupancy", &bundle.occupancy},
      {"delivered", &bundle.delivered_words},
  };
  std::vector<std::string> written;
  for (const auto& [name, image] : maps) {
    const std::string base = dir + "/heatmap_" + name;
    write_ppm(*image, base + ".ppm");
    write_csv(*image, base + ".csv");
    written.push_back(base + ".ppm");
    written.push_back(base + ".csv");
  }
  return written;
}

std::string link_csv(const FabricCollector& collector) {
  FVDF_CHECK_MSG(collector.finalized(), "link_csv before finalize()");
  std::string out = "x,y,link,words,messages\n";
  const i64 nx = collector.width();
  const auto& activities = collector.activities();
  for (std::size_t i = 0; i < activities.size(); ++i) {
    const i64 x = static_cast<i64>(i) % nx;
    const i64 y = static_cast<i64>(i) / nx;
    for (u32 link = 0; link < kPeLinks; ++link) {
      out += std::to_string(x);
      out.push_back(',');
      out += std::to_string(y);
      out.push_back(',');
      out += kLinkNames[link];
      out.push_back(',');
      out += std::to_string(activities[i].tx_words[link]);
      out.push_back(',');
      out += std::to_string(activities[i].tx_messages[link]);
      out.push_back('\n');
    }
  }
  return out;
}

void write_link_csv(const FabricCollector& collector, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  FVDF_CHECK_MSG(file, "cannot open " << path);
  const std::string body = link_csv(collector);
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  FVDF_CHECK_MSG(file.good(), "write failed: " << path);
}

} // namespace fvdf::telemetry
