#include "gpu/cuda_model.hpp"

#include "common/error.hpp"

namespace fvdf::gpu {

Dim3 grid_for(i64 nx, i64 ny, i64 nz, Dim3 block) {
  FVDF_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  FVDF_CHECK(block.count() >= 1 && block.count() <= 1024);
  Dim3 grid;
  grid.x = static_cast<u32>((nx + block.x - 1) / block.x);
  grid.y = static_cast<u32>((ny + block.y - 1) / block.y);
  grid.z = static_cast<u32>((nz + block.z - 1) / block.z);
  return grid;
}

CudaDevice::CudaDevice(GpuSpec spec, std::size_t host_threads)
    : spec_(std::move(spec)), pool_(host_threads) {}

void CudaDevice::launch(Dim3 grid, Dim3 block, u64 traffic_bytes,
                        const std::function<void(const ThreadCtx&)>& body) {
  FVDF_CHECK_MSG(block.count() <= 1024,
                 "threadblock exceeds the 1024-thread limit: " << block.count());
  ++launches_;
  hbm_bytes_ += traffic_bytes;

  const u64 blocks = grid.count();
  // One pool task per block; threads within a block run sequentially.
  pool_.parallel_for(0, static_cast<std::size_t>(blocks), [&](std::size_t begin,
                                                              std::size_t end) {
    for (std::size_t flat = begin; flat < end; ++flat) {
      ThreadCtx ctx;
      ctx.block_dim = block;
      ctx.grid_dim = grid;
      ctx.block_idx.x = static_cast<u32>(flat % grid.x);
      ctx.block_idx.y = static_cast<u32>((flat / grid.x) % grid.y);
      ctx.block_idx.z = static_cast<u32>(flat / (static_cast<u64>(grid.x) * grid.y));
      for (u32 tz = 0; tz < block.z; ++tz)
        for (u32 ty = 0; ty < block.y; ++ty)
          for (u32 tx = 0; tx < block.x; ++tx) {
            ctx.thread_idx = Dim3{tx, ty, tz};
            body(ctx);
          }
    }
  });
}

f64 CudaDevice::modeled_seconds(const GpuAnalyticModel& model, u64 cells) const {
  return static_cast<f64>(launches_) * model.params().launch_overhead_s +
         static_cast<f64>(hbm_bytes_) / model.effective_bandwidth(cells);
}

void CudaDevice::reset_accounting() {
  launches_ = 0;
  hbm_bytes_ = 0;
  memcpy_bytes_ = 0;
}

} // namespace fvdf::gpu
