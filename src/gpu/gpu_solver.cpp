#include "gpu/gpu_solver.hpp"

#include "common/error.hpp"

namespace fvdf::gpu {

GpuFvSolver::GpuFvSolver(const FlowProblem& problem, GpuSpec spec,
                         std::size_t host_threads)
    : problem_(problem), device_(spec, host_threads),
      sys_(DeviceSystem::upload(device_, problem.discretize<f32>())),
      model_(device_.spec()) {}

GpuSolveResult GpuFvSolver::solve(const GpuSolveConfig& config) {
  model_ = GpuAnalyticModel(device_.spec(), config.model);
  device_.reset_accounting();
  const u64 n = sys_.cells();

  // Device allocations + H2D of the initial pressure.
  const std::vector<f64> p0_host = problem_.initial_pressure();
  std::vector<f32> p0(p0_host.begin(), p0_host.end());
  device_.memcpy_traffic(n * 4);

  std::vector<f32> r(n, 0.0f), x(n, 0.0f), q(n, 0.0f), y(n, 0.0f);

  // Algorithm 1 line 1-2: r0 from the residual kernel, x0 = r0.
  launch_initial_residual(device_, sys_, p0.data(), r.data());
  launch_xpby(device_, r.data(), 0.0f, x.data(), n); // x = r
  f64 rr = launch_dot(device_, r.data(), r.data(), n);

  GpuSolveResult result;
  u64 k = 0;
  bool converged = rr < config.tolerance;
  while (!converged && k < config.max_iterations) {
    launch_jx(device_, sys_, x.data(), q.data());
    const f64 xjx = launch_dot(device_, x.data(), q.data(), n);
    FVDF_CHECK_MSG(xjx > 0.0, "GPU CG: x^T Jx = " << xjx << " not positive");
    const f32 alpha = static_cast<f32>(rr / xjx);
    launch_axpy(device_, alpha, x.data(), y.data(), n);
    launch_axpy(device_, -alpha, q.data(), r.data(), n);
    const f64 rr_next = launch_dot(device_, r.data(), r.data(), n);
    if (rr_next < config.tolerance) {
      converged = true;
      rr = rr_next;
      ++k;
      break;
    }
    const f32 beta = static_cast<f32>(rr_next / rr);
    launch_xpby(device_, r.data(), beta, x.data(), n);
    rr = rr_next;
    ++k;
  }

  result.iterations = k;
  result.converged = converged;
  result.final_rr = rr;
  result.delta = y;
  result.pressure.resize(n);
  for (u64 i = 0; i < n; ++i) result.pressure[i] = p0[i] + y[i];
  device_.memcpy_traffic(n * 4); // D2H of the solution

  result.kernel_launches = device_.kernel_launches();
  result.nominal_hbm_bytes = device_.hbm_traffic_bytes();
  result.modeled_seconds =
      model_.alg1_time(n, std::max<u64>(1, result.iterations));
  return result;
}

GpuSolveResult GpuFvSolver::solve_matrix_based(const GpuSolveConfig& config) {
  model_ = GpuAnalyticModel(device_.spec(), config.model);
  device_.reset_accounting();
  const u64 n = sys_.cells();

  // Assembly happens on the device once per Newton step (the fill cost
  // matrix-free removes); the CSR arrays then drive every apply.
  const DiscreteSystem<f32> host_sys = problem_.discretize<f32>();
  const DeviceCsr csr = assemble_csr(device_, host_sys);

  const std::vector<f64> p0_host = problem_.initial_pressure();
  std::vector<f32> p0(p0_host.begin(), p0_host.end());
  std::vector<f32> r(n, 0.0f), x(n, 0.0f), q(n, 0.0f), y(n, 0.0f);

  launch_initial_residual(device_, sys_, p0.data(), r.data());
  launch_xpby(device_, r.data(), 0.0f, x.data(), n);
  f64 rr = launch_dot(device_, r.data(), r.data(), n);

  GpuSolveResult result;
  u64 k = 0;
  bool converged = rr < config.tolerance || rr == 0.0;
  while (!converged && k < config.max_iterations) {
    launch_spmv(device_, csr, x.data(), q.data());
    const f64 xjx = launch_dot(device_, x.data(), q.data(), n);
    FVDF_CHECK_MSG(xjx > 0.0, "GPU CSR CG: x^T Jx = " << xjx << " not positive");
    const f32 alpha = static_cast<f32>(rr / xjx);
    launch_axpy(device_, alpha, x.data(), y.data(), n);
    launch_axpy(device_, -alpha, q.data(), r.data(), n);
    const f64 rr_next = launch_dot(device_, r.data(), r.data(), n);
    if (rr_next < config.tolerance || rr_next == 0.0) {
      converged = true;
      rr = rr_next;
      ++k;
      break;
    }
    const f32 beta = static_cast<f32>(rr_next / rr);
    launch_xpby(device_, r.data(), beta, x.data(), n);
    rr = rr_next;
    ++k;
  }

  result.iterations = k;
  result.converged = converged;
  result.final_rr = rr;
  result.delta = y;
  result.pressure.resize(n);
  for (u64 i = 0; i < n; ++i) result.pressure[i] = p0[i] + y[i];

  result.kernel_launches = device_.kernel_launches();
  result.nominal_hbm_bytes = device_.hbm_traffic_bytes();
  // Modeled time: the memory-bound analytic model scaled by the measured
  // traffic ratio of CSR vs matrix-free applies.
  const f64 traffic_ratio = static_cast<f64>(nominal_spmv_traffic(csr)) /
                            static_cast<f64>(nominal_jx_traffic(sys_));
  GpuModelParams params = config.model;
  params.bytes_per_cell_jx *= traffic_ratio;
  result.modeled_seconds = GpuAnalyticModel(device_.spec(), params)
                               .alg1_time(n, std::max<u64>(1, result.iterations));
  return result;
}

GpuSolveResult GpuFvSolver::run_jx_only(u64 iterations, const GpuSolveConfig& config) {
  model_ = GpuAnalyticModel(device_.spec(), config.model);
  device_.reset_accounting();
  const u64 n = sys_.cells();
  std::vector<f32> x(n, 1.0f), q(n, 0.0f);
  for (u64 i = 0; i < iterations; ++i) launch_jx(device_, sys_, x.data(), q.data());
  GpuSolveResult result;
  result.iterations = iterations;
  result.kernel_launches = device_.kernel_launches();
  result.nominal_hbm_bytes = device_.hbm_traffic_bytes();
  result.modeled_seconds = model_.alg2_time(n, iterations);
  return result;
}

} // namespace fvdf::gpu
