#include "gpu/kernels.hpp"

#include <cmath>

#include "common/error.hpp"
#include "fv/assembled.hpp"

namespace fvdf::gpu {

DeviceSystem DeviceSystem::upload(CudaDevice& device, const DiscreteSystem<f32>& sys) {
  DeviceSystem out;
  out.nx = sys.nx;
  out.ny = sys.ny;
  out.nz = sys.nz;
  out.lambda = sys.lambda;
  out.tx = sys.tx;
  out.ty = sys.ty;
  out.tz = sys.tz;
  out.dirichlet = sys.dirichlet;
  out.source = sys.source;
  device.memcpy_traffic(sys.data_bytes());
  return out;
}

u64 nominal_jx_traffic(const DeviceSystem& sys) {
  // Ideal cache: x once, q once, lambda once, the three unique face arrays
  // once, mask once: (4 + 4 + 4 + 12 + 1) = 25 bytes/cell.
  return sys.cells() * 25;
}

namespace {

/// The per-thread device function of Sec. IV: fetch the cell, fetch the six
/// neighbors, accumulate the interfacial contributions.
inline f32 jx_cell(const DeviceSystem& sys, const f32* x, i64 cx, i64 cy, i64 cz) {
  const i64 nx = sys.nx, ny = sys.ny, nz = sys.nz;
  const i64 plane = nx * ny;
  const i64 k = (cz * ny + cy) * nx + cx;
  if (sys.dirichlet[static_cast<std::size_t>(k)]) return x[k];

  const f32 xk = x[k];
  const f32 lk = sys.lambda[static_cast<std::size_t>(k)];
  f32 acc = 0.0f;
  auto face = [&](i64 l, f32 ups) {
    acc += ups * 0.5f * (lk + sys.lambda[static_cast<std::size_t>(l)]) * (xk - x[l]);
  };
  if (cx > 0) face(k - 1, sys.tx[static_cast<std::size_t>((cz * ny + cy) * (nx - 1) + cx - 1)]);
  if (cx < nx - 1) face(k + 1, sys.tx[static_cast<std::size_t>((cz * ny + cy) * (nx - 1) + cx)]);
  if (cy > 0) face(k - nx, sys.ty[static_cast<std::size_t>((cz * (ny - 1) + cy - 1) * nx + cx)]);
  if (cy < ny - 1) face(k + nx, sys.ty[static_cast<std::size_t>((cz * (ny - 1) + cy) * nx + cx)]);
  if (cz > 0) face(k - plane, sys.tz[static_cast<std::size_t>(((cz - 1) * ny + cy) * nx + cx)]);
  if (cz < nz - 1) face(k + plane, sys.tz[static_cast<std::size_t>((cz * ny + cy) * nx + cx)]);
  return acc;
}

} // namespace

void launch_jx(CudaDevice& device, const DeviceSystem& sys, const f32* x, f32* q) {
  const Dim3 grid = grid_for(sys.nx, sys.ny, sys.nz);
  device.launch(grid, kPaperBlockDim, nominal_jx_traffic(sys), [&](const ThreadCtx& t) {
    const i64 cx = static_cast<i64>(t.gx());
    const i64 cy = static_cast<i64>(t.gy());
    const i64 cz = static_cast<i64>(t.gz());
    if (cx >= sys.nx || cy >= sys.ny || cz >= sys.nz) return; // guard threads
    q[(cz * sys.ny + cy) * sys.nx + cx] = jx_cell(sys, x, cx, cy, cz);
  });
}

void launch_initial_residual(CudaDevice& device, const DeviceSystem& sys,
                             const f32* p, f32* r) {
  const Dim3 grid = grid_for(sys.nx, sys.ny, sys.nz);
  device.launch(grid, kPaperBlockDim, nominal_jx_traffic(sys), [&](const ThreadCtx& t) {
    const i64 cx = static_cast<i64>(t.gx());
    const i64 cy = static_cast<i64>(t.gy());
    const i64 cz = static_cast<i64>(t.gz());
    if (cx >= sys.nx || cy >= sys.ny || cz >= sys.nz) return;
    const i64 k = (cz * sys.ny + cy) * sys.nx + cx;
    if (sys.dirichlet[static_cast<std::size_t>(k)]) {
      r[k] = 0.0f;
      return;
    }
    r[k] = -jx_cell(sys, p, cx, cy, cz);
    if (!sys.source.empty()) r[k] += sys.source[static_cast<std::size_t>(k)];
  });
}

DeviceCsr assemble_csr(CudaDevice& device, const DiscreteSystem<f32>& sys) {
  // Assembly itself reuses the host CSR builder (the arithmetic is
  // identical on any target); what matters for the ablation is the traffic:
  // the fill pass writes the whole structure once and reads the problem
  // data once.
  const AssembledOperator<f32> host_csr(sys);
  DeviceCsr csr;
  csr.rows = host_csr.size();
  csr.row_ptr = host_csr.row_ptr();
  csr.col_idx = host_csr.col_idx();
  csr.values = host_csr.values();
  device.launch(Dim3{1, 1, 1}, Dim3{1, 1, 1}, csr.bytes() + sys.data_bytes(),
                [](const ThreadCtx&) {});
  return csr;
}

u64 nominal_spmv_traffic(const DeviceCsr& csr) {
  return csr.values.size() * (sizeof(f32) + sizeof(CellIndex) + sizeof(f32)) +
         csr.row_ptr.size() * sizeof(CellIndex) +
         static_cast<u64>(csr.rows) * sizeof(f32);
}

void launch_spmv(CudaDevice& device, const DeviceCsr& csr, const f32* x, f32* q) {
  const u32 block = 256;
  Dim3 grid;
  grid.x = static_cast<u32>((csr.rows + block - 1) / block);
  device.launch(grid, Dim3{block, 1, 1}, nominal_spmv_traffic(csr),
                [&](const ThreadCtx& t) {
                  const u64 row = t.gx();
                  if (row >= static_cast<u64>(csr.rows)) return;
                  f32 acc = 0.0f;
                  for (CellIndex e = csr.row_ptr[row]; e < csr.row_ptr[row + 1]; ++e)
                    acc += csr.values[static_cast<std::size_t>(e)] *
                           x[csr.col_idx[static_cast<std::size_t>(e)]];
                  q[row] = acc;
                });
}

namespace {
Dim3 grid_1d(u64 n, u32 block = 256) {
  Dim3 grid;
  grid.x = static_cast<u32>((n + block - 1) / block);
  return grid;
}
} // namespace

void launch_axpy(CudaDevice& device, f32 a, const f32* x, f32* y, u64 n) {
  const u32 block = 256;
  device.launch(grid_1d(n, block), Dim3{block, 1, 1}, n * 12, [&](const ThreadCtx& t) {
    const u64 i = t.gx();
    if (i < n) y[i] += a * x[i];
  });
}

void launch_xpby(CudaDevice& device, const f32* r, f32 b, f32* x, u64 n) {
  const u32 block = 256;
  device.launch(grid_1d(n, block), Dim3{block, 1, 1}, n * 12, [&](const ThreadCtx& t) {
    const u64 i = t.gx();
    if (i < n) x[i] = r[i] + b * x[i];
  });
}

f64 launch_dot(CudaDevice& device, const f32* a, const f32* b, u64 n) {
  const u32 block = 256;
  const Dim3 grid = grid_1d(n, block);
  std::vector<f32> partials(grid.x, 0.0f);
  // Stage 1: one fp32 partial per block (threads of a block run
  // sequentially in the emulator, standing in for the shared-memory tree).
  device.launch(grid, Dim3{block, 1, 1}, n * 8 + grid.x * 4, [&](const ThreadCtx& t) {
    const u64 i = t.gx();
    if (i < n) partials[t.block_idx.x] += a[i] * b[i];
  });
  // Stage 2: final reduction (small kernel + D2H copy of one scalar).
  f64 total = 0.0;
  device.launch(Dim3{1, 1, 1}, Dim3{1, 1, 1}, partials.size() * 4,
                [&](const ThreadCtx&) {
                  f64 acc = 0.0;
                  for (const f32 partial : partials) acc += partial;
                  total = acc;
                });
  device.memcpy_traffic(8);
  return total;
}

} // namespace fvdf::gpu
