#pragma once
// The CUDA-style kernels of the reference implementation (Sec. IV): a
// matrix-free FV flux kernel where each thread handles one cell of the
// nx x ny x nz box, plus the BLAS-1 kernels and the two-stage dot-product
// reduction CG needs. All kernels follow the paper's memory layout
// (X innermost, Z outermost).

#include <vector>

#include "common/types.hpp"
#include "fv/problem.hpp"
#include "gpu/cuda_model.hpp"

namespace fvdf::gpu {

/// Problem arrays resident "on the device".
struct DeviceSystem {
  i64 nx = 0, ny = 0, nz = 0;
  std::vector<f32> lambda;
  std::vector<f32> tx, ty, tz;
  std::vector<u8> dirichlet;
  std::vector<f32> source; // rate-well column (may be empty)

  u64 cells() const { return static_cast<u64>(nx) * ny * nz; }
  static DeviceSystem upload(CudaDevice& device, const DiscreteSystem<f32>& sys);
};

/// q = J x (same SPD convention as the host operator): each thread fetches
/// its cell and its six neighbors, accumulates the TPFA fluxes, and writes
/// one output (Algorithm 2's loop nest with the outer loop mapped to the
/// thread grid).
void launch_jx(CudaDevice& device, const DeviceSystem& sys, const f32* x, f32* q);

/// r = q_src - J p with exact zeros on Dirichlet rows — the residual
/// kernel that seeds CG (Algorithm 1 line 1), including rate-well sources.
void launch_initial_residual(CudaDevice& device, const DeviceSystem& sys,
                             const f32* p, f32* r);

/// y += a * x.
void launch_axpy(CudaDevice& device, f32 a, const f32* x, f32* y, u64 n);

/// x = r + b * x.
void launch_xpby(CudaDevice& device, const f32* r, f32 b, f32* x, u64 n);

/// Two-stage dot product: per-block partials (stage 1) reduced in a final
/// pass (stage 2). fp32 partials, f64 final accumulation — the usual CUDA
/// reduction structure.
f64 launch_dot(CudaDevice& device, const f32* a, const f32* b, u64 n);

/// Nominal (ideal-cache) HBM traffic of one Jx launch, used for the
/// device-side accounting. The *timing* model's calibrated bytes/cell is
/// larger; see EXPERIMENTS.md.
u64 nominal_jx_traffic(const DeviceSystem& sys);

/// The matrix-*based* baseline (Sec. II-A's contrast): the Jacobian
/// assembled to CSR on the device, applied with one row per thread. Used
/// by the matrix-free ablation to quantify what assembly + explicit
/// storage cost on a GPU.
struct DeviceCsr {
  CellIndex rows = 0;
  std::vector<CellIndex> row_ptr;
  std::vector<CellIndex> col_idx;
  std::vector<f32> values;

  u64 bytes() const {
    return values.size() * sizeof(f32) + col_idx.size() * sizeof(CellIndex) +
           row_ptr.size() * sizeof(CellIndex);
  }
};

/// Assembles the CSR Jacobian on the "device" (charges the fill traffic —
/// the cost the matrix-free approach removes every Newton step).
DeviceCsr assemble_csr(CudaDevice& device, const DiscreteSystem<f32>& sys);

/// y = A x via CSR SpMV, one row per thread.
void launch_spmv(CudaDevice& device, const DeviceCsr& csr, const f32* x, f32* q);

/// Nominal HBM traffic of one SpMV: stream values + column indices +
/// row pointers, gather x, write y.
u64 nominal_spmv_traffic(const DeviceCsr& csr);

} // namespace fvdf::gpu
