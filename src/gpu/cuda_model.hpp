#pragma once
// A CUDA-execution-model emulator (see DESIGN.md substitutions): kernels
// are written against dim3 grids of threadblocks exactly like the paper's
// reference implementation ("we launch GPU threadblock size of 16x8x8,
// where 16 is the innermost dimension"), and each logical thread runs the
// same per-cell body. Blocks are distributed over a host thread pool;
// within a block, threads execute sequentially (the kernels here are
// data-parallel with no intra-block synchronization, so this preserves
// semantics).
//
// Timing is NOT measured from the host execution (a CPU emulating 687M
// threads says nothing about an A100); it comes from the memory-traffic /
// effective-bandwidth model in perf/analytic.hpp, the quantity the paper's
// own roofline identifies as the binding constraint (Fig. 6: memory-bound,
// 78% of peak bandwidth).

#include <functional>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "perf/analytic.hpp"
#include "perf/machine.hpp"

namespace fvdf::gpu {

struct Dim3 {
  u32 x = 1, y = 1, z = 1;
  u64 count() const { return static_cast<u64>(x) * y * z; }
};

/// Thread coordinates handed to a kernel body.
struct ThreadCtx {
  Dim3 block_idx;
  Dim3 thread_idx;
  Dim3 block_dim;
  Dim3 grid_dim;

  /// Global 3D coordinates (blockIdx * blockDim + threadIdx).
  u64 gx() const { return static_cast<u64>(block_idx.x) * block_dim.x + thread_idx.x; }
  u64 gy() const { return static_cast<u64>(block_idx.y) * block_dim.y + thread_idx.y; }
  u64 gz() const { return static_cast<u64>(block_idx.z) * block_dim.z + thread_idx.z; }
};

/// The paper's block shape: 1024 threads, 16 innermost.
inline constexpr Dim3 kPaperBlockDim{16, 8, 8};

/// Grid covering an (nx, ny, nz) cell box with the given block shape.
Dim3 grid_for(i64 nx, i64 ny, i64 nz, Dim3 block = kPaperBlockDim);

class CudaDevice {
public:
  /// `host_threads` sizes the emulation pool (0 = hardware concurrency).
  explicit CudaDevice(GpuSpec spec, std::size_t host_threads = 0);

  const GpuSpec& spec() const { return spec_; }

  /// Launches `body(ctx)` for every thread of the grid. Blocks until the
  /// kernel completes (cudaDeviceSynchronize semantics). Records one
  /// kernel launch and `traffic_bytes` of modeled HBM traffic.
  void launch(Dim3 grid, Dim3 block, u64 traffic_bytes,
              const std::function<void(const ThreadCtx&)>& body);

  /// Models a cudaMemcpy (host<->device): traffic is PCIe/NVLink-side and
  /// excluded from kernel time like the paper's device-only timings, but
  /// counted for completeness.
  void memcpy_traffic(u64 bytes) { memcpy_bytes_ += bytes; }

  // Accumulated accounting.
  u64 kernel_launches() const { return launches_; }
  u64 hbm_traffic_bytes() const { return hbm_bytes_; }
  u64 memcpy_bytes() const { return memcpy_bytes_; }

  /// Modeled device seconds for the accumulated launches/traffic, using
  /// the occupancy-adjusted bandwidth for `cells` resident cells.
  f64 modeled_seconds(const GpuAnalyticModel& model, u64 cells) const;

  void reset_accounting();

private:
  GpuSpec spec_;
  ThreadPool pool_;
  u64 launches_ = 0;
  u64 hbm_bytes_ = 0;
  u64 memcpy_bytes_ = 0;
};

} // namespace fvdf::gpu
