#pragma once
// The GPU reference solver (Sec. IV): CG driven from the host with one
// kernel launch per operation, matrix-free Jx on the device, two-stage dot
// reductions. Functional results come from actually executing the kernels
// (on the emulator); device time comes from the calibrated analytic model.

#include <vector>

#include "common/types.hpp"
#include "fv/problem.hpp"
#include "gpu/cuda_model.hpp"
#include "gpu/kernels.hpp"
#include "perf/analytic.hpp"

namespace fvdf::gpu {

struct GpuSolveConfig {
  u64 max_iterations = 10'000;
  f64 tolerance = 0.0; // epsilon on r^T r (0 = run to max_iterations)
  GpuModelParams model{};
};

struct GpuSolveResult {
  std::vector<f32> pressure;
  std::vector<f32> delta;
  u64 iterations = 0;
  bool converged = false;
  f64 final_rr = 0.0;

  u64 kernel_launches = 0;
  u64 nominal_hbm_bytes = 0;
  f64 modeled_seconds = 0; // analytic-model device time for the CG loop
};

class GpuFvSolver {
public:
  GpuFvSolver(const FlowProblem& problem, GpuSpec spec,
              std::size_t host_threads = 0);

  /// Full CG solve (Algorithm 1).
  GpuSolveResult solve(const GpuSolveConfig& config = {});

  /// Algorithm-2 scaling mode: `iterations` Jx applications, no CG updates.
  GpuSolveResult run_jx_only(u64 iterations, const GpuSolveConfig& config = {});

  /// Matrix-*based* CG (Sec. II-A's contrast): assembles the Jacobian to
  /// CSR on the device (charging the fill traffic) and runs the same CG
  /// loop with SpMV instead of the matrix-free kernel. Same solution,
  /// ~4.8x the HBM traffic per apply — the ablation's device-side data.
  GpuSolveResult solve_matrix_based(const GpuSolveConfig& config = {});

  const CudaDevice& device() const { return device_; }

private:
  const FlowProblem& problem_;
  CudaDevice device_;
  DeviceSystem sys_;
  GpuAnalyticModel model_;
};

} // namespace fvdf::gpu
