#pragma once
// Transient slightly-compressible single-phase flow — the implicit
// (backward-Euler) temporal discretization the paper's Sec. II-A
// describes ("combining a low-order FV scheme with an implicit
// (backward-Euler) temporal discretization"); the paper's experiments run
// the steady incompressible limit, this module adds the time dimension as
// a documented extension.
//
// Discrete system per time step (outflow-oriented residual, SPD):
//   sigma * (p^{n+1} - p^n) + (A p^{n+1})_K = 0     (interior)
//   p^{n+1}_K = p^D                                 (Dirichlet)
// with sigma = phi * c_t * V / dt (accumulation coefficient). The system
// is linear, so each step is one CG/PCG solve of
//   (A + sigma I) delta = -A p^n,   p^{n+1} = p^n + delta.
// sigma I only shifts interior rows; Dirichlet rows stay identity.

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "fv/problem.hpp"
#include "solver/cg.hpp"

namespace fvdf {

struct TransientOptions {
  f64 dt = 1.0;                   // time-step size [s]
  i64 steps = 10;                 // number of backward-Euler steps
  f64 porosity = 0.2;             // phi
  f64 total_compressibility = 1e-2; // c_t
  CgOptions cg{};                 // per-step linear-solve options
  bool jacobi = true;             // Jacobi PCG per step
  bool record_history = false;    // keep every intermediate field

  /// Called after every completed step with the 0-based step index, that
  /// step's linear-iteration count and the updated field p^{step+1}.
  /// Return false to stop stepping early — the result then reports
  /// interrupted=true and carries the state so far. Used for progress
  /// streaming, checkpointing and graceful interruption (serve daemon,
  /// signal-aware drivers).
  std::function<bool(i64 step, u64 iterations, const std::vector<f64>& state)>
      on_step;

  /// Accumulation coefficient sigma = phi * c_t * V / dt.
  f64 sigma(const CartesianMesh3D& mesh) const {
    return porosity * total_compressibility * mesh.cell_volume() / dt;
  }
};

struct TransientResult {
  std::vector<f64> pressure;                   // final field p^N
  std::vector<std::vector<f64>> history;       // p^0..p^N if recorded
  std::vector<u64> iterations_per_step;        // linear iterations per step
  bool all_converged = true;
  i64 steps_completed = 0; // == options.steps unless on_step stopped the run
  bool interrupted = false;
};

/// Runs `steps` backward-Euler steps on the host (f64). The initial field
/// defaults to the problem's initial pressure (BC values + zero interior);
/// pass `initial` to continue from a previous state.
TransientResult solve_transient_host(const FlowProblem& problem,
                                     const TransientOptions& options,
                                     std::vector<f64> initial = {});

} // namespace fvdf
