#pragma once
// BLAS-1 kernels used by the Krylov solvers. Deliberately simple loops:
// on the simulated devices the equivalents are DSD vector instructions
// (Sec. III-E3), and these host versions are the semantics oracle.

#include <cstddef>

#include "common/types.hpp"

namespace fvdf::blas {

/// sum_i x_i * y_i, accumulated in f64 regardless of Real to keep the host
/// oracle's reductions well-conditioned.
template <typename Real> f64 dot(const Real* x, const Real* y, std::size_t n) {
  f64 acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += static_cast<f64>(x[i]) * static_cast<f64>(y[i]);
  return acc;
}

/// y += a * x.
template <typename Real> void axpy(Real a, const Real* x, Real* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

/// y = x + b * y (the CG direction update x_{k+1} = r_{k+1} + beta * x_k).
template <typename Real> void xpby(const Real* x, Real b, Real* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] + b * y[i];
}

/// y = x.
template <typename Real> void copy(const Real* x, Real* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i];
}

/// x = a * x.
template <typename Real> void scale(Real a, Real* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

/// sqrt(dot(x, x)).
template <typename Real> f64 norm2(const Real* x, std::size_t n);

/// max_i |x_i - y_i|.
template <typename Real> f64 max_abs_diff(const Real* x, const Real* y, std::size_t n);

} // namespace fvdf::blas
