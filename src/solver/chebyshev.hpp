#pragma once
// Chebyshev iteration — the reduction-free Krylov alternative to CG.
//
// Motivation straight from the paper's data: Table III shows Algorithm 1's
// device time growing linearly in the fabric perimeter because every CG
// iteration runs two whole-fabric all-reduces (alpha and beta). Chebyshev
// iteration needs *no inner products*: its recurrence coefficients come
// from precomputed spectral bounds, so on the dataflow device the only
// global communication left is an occasional convergence probe. The trade
// is more iterations (Chebyshev is optimal only with exact bounds) — the
// ablation bench quantifies where it wins.
//
// Bounds are estimated with a short Lanczos run whose tridiagonal Ritz
// values bracket the spectrum from the inside; safety factors widen them
// outward (an overestimated lambda_min makes Chebyshev diverge on the
// lowest modes, so the minimum is relaxed generously and a divergence
// guard backs the solver).

#include <cmath>

#include "common/types.hpp"
#include "solver/cg.hpp"

namespace fvdf {

struct SpectralBounds {
  f64 lambda_min = 0;
  f64 lambda_max = 0;
};

/// Lanczos estimate of the extreme eigenvalues of an SPD operator.
/// `steps` Lanczos iterations (20-30 is plenty for bounds); safety factors
/// widen the Ritz interval: returned min = ritz_min * min_safety,
/// max = ritz_max * max_safety.
template <typename Real, typename ApplyFn>
SpectralBounds estimate_spectral_bounds(const ApplyFn& apply, std::size_t n,
                                        std::size_t steps = 24, u64 seed = 1,
                                        f64 min_safety = 0.3, f64 max_safety = 1.05);

struct ChebyshevOptions {
  u64 max_iterations = 50'000;
  f64 tolerance = 1e-10;  // on r^T r, like Algorithm 1's epsilon
  u64 check_every = 16;   // residual-norm probes (the only reductions)
  f64 divergence_factor = 1e8; // abort when r^T r grows by this much
};

/// Solves A y = b from y = 0 with the classical three-term Chebyshev
/// recurrence over [lambda_min, lambda_max]. Returns CgResult for
/// drop-in comparability; `operator_applications` counts A applications
/// and `iterations` the recurrence steps taken.
template <typename Real, typename ApplyFn>
CgResult chebyshev_solve(const ApplyFn& apply, const Real* b, Real* y,
                         std::size_t n, const SpectralBounds& bounds,
                         const ChebyshevOptions& opts = {});

// --- implementation ---

template <typename Real, typename ApplyFn>
SpectralBounds estimate_spectral_bounds(const ApplyFn& apply, std::size_t n,
                                        std::size_t steps, u64 seed,
                                        f64 min_safety, f64 max_safety) {
  FVDF_CHECK(n > 0 && steps >= 2);
  steps = std::min(steps, n);

  // Lanczos with full f64 vectors (host-side setup cost, run once).
  std::vector<f64> q_prev(n, 0.0), q(n), w(n);
  {
    // Deterministic pseudo-random start vector.
    u64 state = seed * 0x9e3779b97f4a7c15ULL + 1;
    f64 norm = 0;
    for (std::size_t i = 0; i < n; ++i) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      q[i] = static_cast<f64>(state % 1000) / 500.0 - 1.0;
      norm += q[i] * q[i];
    }
    norm = std::sqrt(norm);
    for (auto& v : q) v /= norm;
  }

  std::vector<f64> alpha, beta; // T's diagonal and off-diagonal
  std::vector<Real> in(n), out(n);
  // The full Lanczos basis is kept for complete reorthogonalization:
  // without it, orthogonality loss at even modest step counts produces
  // spurious near-zero Ritz values that wreck the lambda_min estimate
  // (steps * n doubles of setup memory, run once on the host).
  std::vector<std::vector<f64>> basis;
  basis.push_back(q);
  f64 beta_prev = 0;
  for (std::size_t j = 0; j < steps; ++j) {
    for (std::size_t i = 0; i < n; ++i) in[i] = static_cast<Real>(q[i]);
    apply(in.data(), out.data());
    for (std::size_t i = 0; i < n; ++i)
      w[i] = static_cast<f64>(out[i]) - beta_prev * q_prev[i];
    f64 a = 0;
    for (std::size_t i = 0; i < n; ++i) a += q[i] * w[i];
    alpha.push_back(a);
    for (std::size_t i = 0; i < n; ++i) w[i] -= a * q[i];
    // Two passes of full reorthogonalization against the whole basis.
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& v : basis) {
        f64 dot = 0;
        for (std::size_t i = 0; i < n; ++i) dot += w[i] * v[i];
        for (std::size_t i = 0; i < n; ++i) w[i] -= dot * v[i];
      }
    }
    f64 b_next = 0;
    for (std::size_t i = 0; i < n; ++i) b_next += w[i] * w[i];
    b_next = std::sqrt(b_next);
    if (j + 1 == steps || b_next < 1e-12) break;
    beta.push_back(b_next);
    q_prev = q;
    for (std::size_t i = 0; i < n; ++i) q[i] = w[i] / b_next;
    basis.push_back(q);
    beta_prev = b_next;
  }

  // Extreme eigenvalues of the symmetric tridiagonal T via Sturm bisection.
  const std::size_t m = alpha.size();
  auto count_below = [&](f64 x) {
    // Number of eigenvalues of T strictly less than x (Sturm sequence).
    int count = 0;
    f64 d = alpha[0] - x;
    if (d < 0) ++count;
    for (std::size_t i = 1; i < m; ++i) {
      const f64 b2 = beta[i - 1] * beta[i - 1];
      d = alpha[i] - x - b2 / (d == 0.0 ? 1e-300 : d);
      if (d < 0) ++count;
    }
    return count;
  };
  // Gershgorin interval of T brackets all Ritz values.
  f64 lo = alpha[0], hi = alpha[0];
  for (std::size_t i = 0; i < m; ++i) {
    const f64 radius = (i > 0 ? std::fabs(beta[i - 1]) : 0.0) +
                       (i + 1 < m ? std::fabs(beta[i]) : 0.0);
    lo = std::min(lo, alpha[i] - radius);
    hi = std::max(hi, alpha[i] + radius);
  }
  auto bisect = [&](int target) {
    f64 a = lo, b = hi + 1e-12;
    for (int it = 0; it < 100; ++it) {
      const f64 mid = 0.5 * (a + b);
      if (count_below(mid) <= target) a = mid;
      else b = mid;
    }
    return 0.5 * (a + b);
  };
  const f64 ritz_min = bisect(0);
  const f64 ritz_max = bisect(static_cast<int>(m) - 1);
  FVDF_CHECK_MSG(ritz_max > 0, "operator does not look positive definite");

  SpectralBounds bounds;
  bounds.lambda_min = std::max(ritz_min * min_safety, 1e-12 * ritz_max);
  bounds.lambda_max = ritz_max * max_safety;
  return bounds;
}

template <typename Real, typename ApplyFn>
CgResult chebyshev_solve(const ApplyFn& apply, const Real* b, Real* y,
                         std::size_t n, const SpectralBounds& bounds,
                         const ChebyshevOptions& opts) {
  FVDF_CHECK(n > 0);
  FVDF_CHECK_MSG(bounds.lambda_max > bounds.lambda_min && bounds.lambda_min > 0,
                 "invalid spectral bounds");
  const f64 theta = 0.5 * (bounds.lambda_max + bounds.lambda_min);
  const f64 delta = 0.5 * (bounds.lambda_max - bounds.lambda_min);
  const f64 sigma = theta / delta;

  std::vector<Real> r(b, b + n);
  std::vector<Real> d(n), ad(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = Real(0);
    d[i] = static_cast<Real>(static_cast<f64>(r[i]) / theta);
  }

  CgResult result;
  const f64 rr0 = blas::dot(r.data(), r.data(), n);
  if (rr0 < opts.tolerance || rr0 == 0.0) {
    result.converged = true;
    result.final_rr = rr0;
    return result;
  }

  f64 rho = 1.0 / sigma;
  u64 k = 0;
  f64 rr = rr0;
  while (k < opts.max_iterations) {
    blas::axpy(Real(1), d.data(), y, n); // y += d
    apply(d.data(), ad.data());
    ++result.operator_applications;
    blas::axpy(Real(-1), ad.data(), r.data(), n); // r -= A d
    const f64 rho_next = 1.0 / (2.0 * sigma - rho);
    // d = (rho_next * rho) d + (2 rho_next / delta) r
    blas::scale(static_cast<Real>(rho_next * rho), d.data(), n);
    blas::axpy(static_cast<Real>(2.0 * rho_next / delta), r.data(), d.data(), n);
    rho = rho_next;
    ++k;

    if (k % opts.check_every == 0 || k == opts.max_iterations) {
      rr = blas::dot(r.data(), r.data(), n);
      if (rr < opts.tolerance || rr == 0.0) {
        result.converged = true;
        break;
      }
      if (rr > opts.divergence_factor * rr0) break; // bounds were wrong
    }
  }
  result.iterations = k;
  result.final_rr = rr;
  return result;
}

} // namespace fvdf
