#include "solver/dense.hpp"

#include <cmath>

#include "common/error.hpp"

namespace fvdf {

void DenseMatrix::apply(const f64* x, f64* y) const {
  for (std::size_t i = 0; i < n_; ++i) {
    f64 acc = 0.0;
    for (std::size_t j = 0; j < n_; ++j) acc += at(i, j) * x[j];
    y[i] = acc;
  }
}

f64 DenseMatrix::symmetry_defect() const {
  f64 worst = 0.0;
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = i + 1; j < n_; ++j)
      worst = std::max(worst, std::fabs(at(i, j) - at(j, i)));
  return worst;
}

std::vector<f64> lu_solve(DenseMatrix a, std::vector<f64> b) {
  const std::size_t n = a.size();
  FVDF_CHECK(b.size() == n);
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    f64 best = std::fabs(a.at(col, col));
    for (std::size_t row = col + 1; row < n; ++row) {
      const f64 mag = std::fabs(a.at(row, col));
      if (mag > best) {
        best = mag;
        pivot = row;
      }
    }
    FVDF_CHECK_MSG(best > 1e-300, "singular matrix at column " << col);
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a.at(col, j), a.at(pivot, j));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const f64 factor = a.at(row, col) / a.at(col, col);
      a.at(row, col) = 0.0;
      if (factor == 0.0) continue;
      for (std::size_t j = col + 1; j < n; ++j) a.at(row, j) -= factor * a.at(col, j);
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<f64> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    f64 acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= a.at(i, j) * x[j];
    x[i] = acc / a.at(i, i);
  }
  return x;
}

bool ldlt_solve(DenseMatrix a, std::vector<f64> b, std::vector<f64>& x) {
  const std::size_t n = a.size();
  FVDF_CHECK(b.size() == n);
  std::vector<f64> d(n, 0.0);

  // In-place LDL^T: strictly-lower part of `a` becomes L (unit diagonal).
  for (std::size_t j = 0; j < n; ++j) {
    f64 dj = a.at(j, j);
    for (std::size_t k = 0; k < j; ++k) dj -= a.at(j, k) * a.at(j, k) * d[k];
    if (dj <= 0.0) return false; // not positive definite
    d[j] = dj;
    for (std::size_t i = j + 1; i < n; ++i) {
      f64 lij = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) lij -= a.at(i, k) * a.at(j, k) * d[k];
      a.at(i, j) = lij / dj;
    }
  }
  // Forward solve L z = b.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < i; ++k) b[i] -= a.at(i, k) * b[k];
  // Diagonal solve.
  for (std::size_t i = 0; i < n; ++i) b[i] /= d[i];
  // Backward solve L^T x = z.
  for (std::size_t i = n; i-- > 0;)
    for (std::size_t k = i + 1; k < n; ++k) b[i] -= a.at(k, i) * b[k];
  x = std::move(b);
  return true;
}

} // namespace fvdf
