#include "solver/blas.hpp"

#include <cmath>

namespace fvdf::blas {

template <typename Real> f64 norm2(const Real* x, std::size_t n) {
  return std::sqrt(dot(x, x, n));
}

template <typename Real> f64 max_abs_diff(const Real* x, const Real* y, std::size_t n) {
  f64 worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const f64 diff = std::fabs(static_cast<f64>(x[i]) - static_cast<f64>(y[i]));
    if (diff > worst) worst = diff;
  }
  return worst;
}

template f64 norm2<f32>(const f32*, std::size_t);
template f64 norm2<f64>(const f64*, std::size_t);
template f64 max_abs_diff<f32>(const f32*, const f32*, std::size_t);
template f64 max_abs_diff<f64>(const f64*, const f64*, std::size_t);

} // namespace fvdf::blas
