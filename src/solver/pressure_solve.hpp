#pragma once
// End-to-end host pressure solve: residual (Eq. 3) -> one Newton step via
// CG on the matrix-free Jacobian (the governing system is linear, so a
// single Newton step converges it) -> updated pressure field. This is the
// oracle every device implementation is validated against.

#include <vector>

#include "common/types.hpp"
#include "fv/problem.hpp"
#include "solver/cg.hpp"

namespace fvdf {

struct PressureSolveResult {
  std::vector<f64> pressure; // converged field, one value per cell
  CgResult cg;               // linear solve statistics
  f64 initial_residual_norm = 0.0;
  f64 final_residual_norm = 0.0; // recomputed from Eq. (3) at the solution
};

/// Solves the single-phase incompressible pressure equation on the host in
/// double precision. `interior_guess` seeds the non-Dirichlet cells.
PressureSolveResult solve_pressure_host(const FlowProblem& problem,
                                        const CgOptions& options = {},
                                        f64 interior_guess = 0.0);

/// Same solve with Jacobi (diagonal) preconditioning — an extension over
/// the paper's plain CG. Convergence is tested on r^T M^-1 r; tolerances
/// are therefore not numerically identical to the plain solve's r^T r.
PressureSolveResult solve_pressure_host_jacobi(const FlowProblem& problem,
                                               const CgOptions& options = {},
                                               f64 interior_guess = 0.0);

/// Same solve carried out in fp32 (the paper's experiment precision), for
/// apples-to-apples comparison with the simulated devices.
struct PressureSolveResultF32 {
  std::vector<f32> pressure;
  CgResult cg;
};
PressureSolveResultF32 solve_pressure_host_f32(const FlowProblem& problem,
                                               const CgOptions& options = {},
                                               f32 interior_guess = 0.0f);

} // namespace fvdf
