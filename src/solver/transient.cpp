#include "solver/transient.hpp"

#include "common/error.hpp"
#include "fv/diagonal.hpp"
#include "fv/operator.hpp"
#include "solver/blas.hpp"

namespace fvdf {

TransientResult solve_transient_host(const FlowProblem& problem,
                                     const TransientOptions& options,
                                     std::vector<f64> initial) {
  FVDF_CHECK(options.steps >= 1 && options.dt > 0);
  const auto& mesh = problem.mesh();
  const auto n = static_cast<std::size_t>(mesh.cell_count());
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const f64 sigma = options.sigma(mesh);

  // Shifted operator (A + sigma I on interior rows; Dirichlet identity).
  auto shifted_apply = [&](const f64* in, f64* out) {
    op.apply(in, out);
    for (std::size_t i = 0; i < n; ++i)
      if (!sys.dirichlet[i]) out[i] += sigma * in[i];
  };

  std::vector<f64> minv;
  if (options.jacobi) {
    minv = jacobian_diagonal(sys);
    for (std::size_t i = 0; i < n; ++i) {
      if (!sys.dirichlet[i]) minv[i] += sigma;
      FVDF_CHECK(minv[i] > 0);
      minv[i] = 1.0 / minv[i];
    }
  }
  auto precond = [&](const f64* in, f64* out) {
    for (std::size_t i = 0; i < n; ++i) out[i] = minv[i] * in[i];
  };

  TransientResult result;
  result.pressure = initial.empty() ? problem.initial_pressure() : std::move(initial);
  FVDF_CHECK(result.pressure.size() == n);
  if (options.record_history) result.history.push_back(result.pressure);

  std::vector<f64> rhs(n), delta(n), q(n);
  for (i64 step = 0; step < options.steps; ++step) {
    // RHS: -(A p^n) on interior rows, 0 on Dirichlet rows (p^n satisfies
    // the BCs, so the accumulation term vanishes at the old state).
    op.apply(result.pressure.data(), q.data());
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = sys.dirichlet[i] ? 0.0 : -q[i];
      if (!sys.source.empty() && !sys.dirichlet[i]) rhs[i] += sys.source[i];
    }

    std::fill(delta.begin(), delta.end(), 0.0);
    const CgResult cg =
        options.jacobi
            ? preconditioned_conjugate_gradient<f64>(shifted_apply, precond,
                                                     rhs.data(), delta.data(), n,
                                                     options.cg)
            : conjugate_gradient<f64>(shifted_apply, rhs.data(), delta.data(), n,
                                      options.cg);
    result.iterations_per_step.push_back(cg.iterations);
    result.all_converged = result.all_converged && cg.converged;

    blas::axpy(1.0, delta.data(), result.pressure.data(), n);
    if (options.record_history) result.history.push_back(result.pressure);
    result.steps_completed = step + 1;
    if (options.on_step &&
        !options.on_step(step, cg.iterations, result.pressure)) {
      result.interrupted = step + 1 < options.steps;
      break;
    }
  }
  return result;
}

} // namespace fvdf
