#pragma once
// Dense direct solver used only as a test oracle and for tiny examples.
// LDL^T (Cholesky-style) factorization for symmetric positive definite
// systems, plus a general partial-pivot LU for robustness checks.

#include <vector>

#include "common/types.hpp"

namespace fvdf {

/// Dense row-major square matrix.
class DenseMatrix {
public:
  DenseMatrix(std::size_t n, f64 fill = 0.0) : n_(n), a_(n * n, fill) {}

  std::size_t size() const { return n_; }
  f64& at(std::size_t row, std::size_t col) { return a_[row * n_ + col]; }
  f64 at(std::size_t row, std::size_t col) const { return a_[row * n_ + col]; }

  /// y = A x.
  void apply(const f64* x, f64* y) const;

  /// Builds the dense matrix of a linear operator by probing with unit
  /// vectors (column j = A e_j). Op: void(const f64*, f64*).
  template <typename Op> static DenseMatrix from_operator(const Op& op, std::size_t n) {
    DenseMatrix out(n);
    std::vector<f64> e(n, 0.0), col(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      e[j] = 1.0;
      op(e.data(), col.data());
      e[j] = 0.0;
      for (std::size_t i = 0; i < n; ++i) out.at(i, j) = col[i];
    }
    return out;
  }

  /// Max |A_ij - A_ji| — symmetry defect.
  f64 symmetry_defect() const;

private:
  std::size_t n_;
  std::vector<f64> a_;
};

/// Solves A x = b by LU with partial pivoting. Throws on (near-)singular A.
std::vector<f64> lu_solve(DenseMatrix a, std::vector<f64> b);

/// Returns true and the solution if A (assumed symmetric) is positive
/// definite; returns false if a non-positive pivot is met.
bool ldlt_solve(DenseMatrix a, std::vector<f64> b, std::vector<f64>& x);

} // namespace fvdf
