#include "solver/pressure_solve.hpp"

#include "fv/diagonal.hpp"
#include "fv/operator.hpp"
#include "fv/residual.hpp"
#include "solver/blas.hpp"

namespace fvdf {

PressureSolveResult solve_pressure_host(const FlowProblem& problem,
                                        const CgOptions& options,
                                        f64 interior_guess) {
  const auto& mesh = problem.mesh();
  const auto n = static_cast<std::size_t>(mesh.cell_count());
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);

  PressureSolveResult result;
  result.pressure = problem.initial_pressure(interior_guess);

  // Newton right-hand side. With the SPD sign convention the interior
  // update system is J * delta = +r(Eq.3) and Dirichlet entries of r are 0
  // because the initial guess satisfies the BCs (see DESIGN.md).
  const std::vector<f64> r = compute_residual(problem, result.pressure);
  result.initial_residual_norm = blas::norm2(r.data(), n);

  std::vector<f64> delta(n, 0.0);
  result.cg = conjugate_gradient<f64>(
      [&](const f64* in, f64* out) { op.apply(in, out); }, r.data(), delta.data(),
      n, options);
  blas::axpy(1.0, delta.data(), result.pressure.data(), n);

  const std::vector<f64> r_final =
      compute_residual(problem, result.pressure);
  result.final_residual_norm = blas::norm2(r_final.data(), n);
  return result;
}

PressureSolveResult solve_pressure_host_jacobi(const FlowProblem& problem,
                                               const CgOptions& options,
                                               f64 interior_guess) {
  const auto& mesh = problem.mesh();
  const auto n = static_cast<std::size_t>(mesh.cell_count());
  const auto sys = problem.discretize<f64>();
  const MatrixFreeOperator<f64> op(sys);
  const std::vector<f64> minv = jacobi_inverse_diagonal(sys);

  PressureSolveResult result;
  result.pressure = problem.initial_pressure(interior_guess);
  const std::vector<f64> r = compute_residual(problem, result.pressure);
  result.initial_residual_norm = blas::norm2(r.data(), n);

  std::vector<f64> delta(n, 0.0);
  result.cg = preconditioned_conjugate_gradient<f64>(
      [&](const f64* in, f64* out) { op.apply(in, out); },
      [&](const f64* in, f64* out) {
        for (std::size_t i = 0; i < n; ++i) out[i] = minv[i] * in[i];
      },
      r.data(), delta.data(), n, options);
  blas::axpy(1.0, delta.data(), result.pressure.data(), n);

  const std::vector<f64> r_final =
      compute_residual(problem, result.pressure);
  result.final_residual_norm = blas::norm2(r_final.data(), n);
  return result;
}

PressureSolveResultF32 solve_pressure_host_f32(const FlowProblem& problem,
                                               const CgOptions& options,
                                               f32 interior_guess) {
  const auto& mesh = problem.mesh();
  const auto n = static_cast<std::size_t>(mesh.cell_count());
  const auto sys = problem.discretize<f32>();
  const MatrixFreeOperator<f32> op(sys);

  PressureSolveResultF32 result;
  const std::vector<f64> p0 = problem.initial_pressure(interior_guess);
  result.pressure.assign(p0.begin(), p0.end());

  const std::vector<f64> r64 = compute_residual(problem, p0);
  std::vector<f32> r(n);
  for (std::size_t i = 0; i < n; ++i) r[i] = static_cast<f32>(r64[i]);

  std::vector<f32> delta(n, 0.0f);
  result.cg = conjugate_gradient<f32>(
      [&](const f32* in, f32* out) { op.apply(in, out); }, r.data(), delta.data(),
      n, options);
  blas::axpy(1.0f, delta.data(), result.pressure.data(), n);
  return result;
}

} // namespace fvdf
