#pragma once
// Conjugate gradient, structured exactly as the paper's Algorithm 1
// (including its naming: `y` is the solution iterate, `x` the search
// direction, and convergence is tested on r^T r against epsilon after the
// solution update). Header-only template over the operator type so the
// same loop runs against the matrix-free operator, the assembled CSR
// operator, and test oracles.

#include <functional>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "solver/blas.hpp"

namespace fvdf {

struct CgOptions {
  u64 max_iterations = 10'000;          // k_max in Algorithm 1
  f64 tolerance = 1e-10;                // epsilon, compared against r^T r
  bool track_history = false;           // record r^T r per iteration
};

struct CgResult {
  bool converged = false;
  u64 iterations = 0;                   // k at loop exit
  f64 final_rr = 0.0;                   // last r^T r observed
  std::vector<f64> rr_history;          // per-iteration r^T r (if tracked)
  u64 operator_applications = 0;        // number of Jx evaluations
};

/// Solves J y = b starting from y = 0. `apply` must be a callable
/// `void(const Real* in, Real* out)` evaluating out = J * in.
///
/// Algorithm 1 line-by-line:
///   1: r_0 from the residual (here: caller passes b = -r as the RHS, so
///      with y_0 = 0 the initial CG residual is b itself)
///   2: x_0 <- r_0
///   5: alpha_k = (r_k, r_k) / (x_k, J x_k)
///   6: y_{k+1} = y_k + alpha_k x_k
///   7: r_{k+1} = r_k - alpha_k J x_k
///   8: exit when (r,r) < eps
///   9: beta_k = (r_{k+1}, r_{k+1}) / (r_k, r_k)
///  10: x_{k+1} = r_{k+1} + beta_k x_k
template <typename Real, typename ApplyFn>
CgResult conjugate_gradient(const ApplyFn& apply, const Real* b, Real* y,
                            std::size_t n, const CgOptions& opts = {}) {
  FVDF_CHECK(n > 0);
  std::vector<Real> r(b, b + n);   // line 1: r_0 = b (y_0 = 0)
  std::vector<Real> x(r);          // line 2: x_0 = r_0
  std::vector<Real> jx(n, Real(0));
  for (std::size_t i = 0; i < n; ++i) y[i] = Real(0);

  CgResult result;
  f64 rr = blas::dot(r.data(), r.data(), n);
  if (opts.track_history) result.rr_history.push_back(rr);
  // Degenerate zero RHS: already solved.
  if (rr < opts.tolerance || rr == 0.0) {
    result.converged = true;
    result.final_rr = rr;
    return result;
  }

  u64 k = 0;
  while (k < opts.max_iterations) {  // line 4
    apply(x.data(), jx.data());
    ++result.operator_applications;
    const f64 xjx = blas::dot(x.data(), jx.data(), n);
    FVDF_CHECK_MSG(xjx > 0.0, "operator is not positive definite along the "
                              "search direction (x^T Jx = " << xjx << ")");
    const Real alpha = static_cast<Real>(rr / xjx);       // line 5
    blas::axpy(alpha, x.data(), y, n);                    // line 6
    blas::axpy(static_cast<Real>(-alpha), jx.data(), r.data(), n); // line 7
    const f64 rr_next = blas::dot(r.data(), r.data(), n);
    if (opts.track_history) result.rr_history.push_back(rr_next);
    if (rr_next < opts.tolerance || rr_next == 0.0) {                       // line 8
      result.converged = true;
      result.final_rr = rr_next;
      result.iterations = k + 1;
      return result;
    }
    const Real beta = static_cast<Real>(rr_next / rr);    // line 9
    blas::xpby(r.data(), beta, x.data(), n);              // line 10
    rr = rr_next;
    ++k;                                                  // line 11
  }
  result.converged = false;
  result.final_rr = rr;
  result.iterations = k;
  return result;
}

/// Preconditioned conjugate gradient (left preconditioning with an SPD
/// M^-1 supplied as `precond`: void(const Real* r, Real* z) computing
/// z = M^-1 r). Same structure as Algorithm 1 with the usual PCG
/// substitutions; convergence is tested on rho = r^T z = ||r||^2_{M^-1}
/// (this keeps the device implementation at two all-reduces per iteration,
/// and the host mirrors it so iteration counts are comparable).
///
/// This is an extension over the paper, which runs plain CG; with
/// precond = identity it reduces exactly to conjugate_gradient.
template <typename Real, typename ApplyFn, typename PrecondFn>
CgResult preconditioned_conjugate_gradient(const ApplyFn& apply,
                                           const PrecondFn& precond, const Real* b,
                                           Real* y, std::size_t n,
                                           const CgOptions& opts = {}) {
  FVDF_CHECK(n > 0);
  std::vector<Real> r(b, b + n);
  std::vector<Real> z(n, Real(0));
  precond(r.data(), z.data());
  std::vector<Real> x(z); // initial direction: x0 = z0
  std::vector<Real> jx(n, Real(0));
  for (std::size_t i = 0; i < n; ++i) y[i] = Real(0);

  CgResult result;
  f64 rho = blas::dot(r.data(), z.data(), n);
  FVDF_CHECK_MSG(rho >= 0.0, "preconditioner is not positive definite");
  if (opts.track_history) result.rr_history.push_back(rho);
  if (rho < opts.tolerance || rho == 0.0) {
    result.converged = true;
    result.final_rr = rho;
    return result;
  }

  u64 k = 0;
  while (k < opts.max_iterations) {
    apply(x.data(), jx.data());
    ++result.operator_applications;
    const f64 xjx = blas::dot(x.data(), jx.data(), n);
    FVDF_CHECK_MSG(xjx > 0.0, "operator lost definiteness (x^T Jx = " << xjx << ")");
    const Real alpha = static_cast<Real>(rho / xjx);
    blas::axpy(alpha, x.data(), y, n);
    blas::axpy(static_cast<Real>(-alpha), jx.data(), r.data(), n);
    precond(r.data(), z.data());
    const f64 rho_next = blas::dot(r.data(), z.data(), n);
    if (opts.track_history) result.rr_history.push_back(rho_next);
    if (rho_next < opts.tolerance || rho_next == 0.0) {
      result.converged = true;
      result.final_rr = rho_next;
      result.iterations = k + 1;
      return result;
    }
    const Real beta = static_cast<Real>(rho_next / rho);
    blas::xpby(z.data(), beta, x.data(), n); // x = z + beta x
    rho = rho_next;
    ++k;
  }
  result.converged = false;
  result.final_rr = rho;
  result.iterations = k;
  return result;
}

} // namespace fvdf
