#pragma once
// Host-side driver for the dataflow FV solver: builds a simulated fabric
// shaped like the mesh's X-Y footprint (one PE per column, Sec. III-A),
// marshals the per-PE columns, runs the fabric to completion, and reads
// the solution back — the moral equivalent of the SDK host program that
// schedules work on the CS-2 ("the server is only used to schedule the
// workload", Sec. V-A).

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "analysis/verifier.hpp"
#include "common/types.hpp"
#include "core/mapping.hpp"
#include "fv/problem.hpp"
#include "perf/opcount.hpp"
#include "solver/chebyshev.hpp"
#include "wse/fabric.hpp"

namespace fvdf::telemetry {
class Session;
class HostProfiler;
}

namespace fvdf::core {

/// Which device-program implementation the solver loads onto the fabric.
/// Both produce bitwise-identical results, residual histories and fabric
/// statistics; Bytecode is the default because the flat instruction stream
/// dispatches without virtual calls or std::function allocations (see
/// docs/simulator.md, "Bytecode ISA"). Legacy keeps the original
/// state-machine programs as an escape hatch and a differential-testing
/// oracle.
enum class SimEngine : u8 {
  Bytecode = 0,
  Legacy,
};

/// Cross-solve artifact reuse for long-lived callers (the serve daemon,
/// transient step loops): one CaseArtifacts shared by every solve of one
/// *identical* solver configuration memoizes the lowered bytecode
/// programs and the planned channel-lookahead tables, so repeat solves
/// skip lowering and lookahead planning. Reuse never changes results:
/// lowering and planning are deterministic, so a cached artifact is
/// byte-identical to the one a fresh solve would rebuild (tested).
///
/// Sharing across *different* scalar configs (tolerance, max_iterations,
/// flux mode, jacobi, diagonal_shift, memory/timing params) is NOT safe —
/// lowered programs embed them as immediates. DataflowConfig::initial_field
/// is uploaded at on_start and never lowered, so solves that differ only
/// in the initial field (the steps of one transient run, repeat service
/// requests) may share artifacts freely.
class ProgramCache; // core/bytecode_program.hpp

struct CaseArtifacts {
  /// Created on first use by solve_dataflow* (ProgramCache is an
  /// implementation detail of the bytecode engine).
  std::shared_ptr<ProgramCache> programs;

  /// Planned lookahead tables keyed by the realized tile grid
  /// (tile_rows, tile_cols) — the layout is a function of geometry and
  /// the ShardGrid override only, so one entry per distinct layout.
  std::mutex mutex;
  std::map<std::pair<u32, u32>, wse::ChannelLookahead> lookahead;
};

struct DataflowConfig {
  FluxMode flux_mode = FluxMode::Fused;
  u64 max_iterations = 10'000;
  f32 tolerance = 0.0f; // epsilon on the global r^T r (0 = run to max)
  bool jx_only = false; // Algorithm-2 scaling mode (halo + flux only)
  // Extensions over the paper's plain-CG kernel:
  bool jacobi_precondition = false; // device-side Jacobi PCG
  f32 diagonal_shift = 0.0f;        // backward-Euler accumulation term
  // Per-cell initial pressure (global layout) overriding the problem's
  // uniform interior guess — the previous time level in transient solves.
  // Must satisfy the Dirichlet values. Empty = use problem defaults.
  std::vector<f64> initial_field;
  wse::TimingParams timing{};
  wse::PeMemoryParams memory{};
  f64 max_cycles = 1e15; // simulation safety net
  // Simulator worker threads (0 = hardware concurrency). Purely a host-side
  // execution knob: results are bitwise identical at any value.
  u32 sim_threads = 1;
  // Simulator shard-layout override ({0,0} = the engine's cost model; see
  // wse::ShardGrid — {0,1} forces the 1D row-strip layout, {1,1} a single
  // serial shard). Host-side execution knob: results are bitwise identical
  // under any layout (tested); benchmarks use it to compare layouts.
  wse::ShardGrid shard_grid{};
  // Device-program implementation; see SimEngine. Host-side execution knob:
  // both engines produce bitwise-identical results.
  SimEngine engine = SimEngine::Bytecode;
  // Run the static fabric verifier (src/analysis/) over the device program
  // before starting the event loop; throws fvdf::Error with the full
  // diagnostic report if any check fails. Costs one extra program
  // instantiation per PE — well under 5% of a solve.
  bool verify_preflight = false;
  // Optional observability: a telemetry session (telemetry/session.hpp)
  // collects per-PE/per-link activity, phase spans and residual history
  // during the run and is finalized before solve_dataflow returns. The
  // caller owns it; nullptr (the default) costs one pointer test per
  // instrumentation site.
  telemetry::Session* telemetry = nullptr;
  // Optional host-side execution profiler (telemetry/host_profiler.hpp):
  // observes the *simulator* — worker timelines, shard stall attribution,
  // bytecode pc hot spots, critical-path speedup bound — over wall-clock
  // time. Caller owns it; attaching it never changes results or the
  // deterministic telemetry bundle. solve_dataflow annotates the sampled
  // programs (analysis::annotate_host_profile) before returning.
  telemetry::HostProfiler* host_profiler = nullptr;
  // Optional cross-solve artifact reuse; see CaseArtifacts for the
  // sharing contract. nullptr = per-solve artifacts (the prior behavior).
  // Never changes results.
  std::shared_ptr<CaseArtifacts> artifacts;
};

struct DataflowResult {
  // Global-layout fields (X innermost, Z outermost), one entry per cell.
  std::vector<f32> delta;    // CG solution (pressure update)
  std::vector<f32> pressure; // p0 + delta

  u64 iterations = 0;
  bool converged = false;
  f32 final_rr = 0.0f;
  // Global r^T r after each device-side reduction, in iteration order —
  // populated only when DataflowConfig::telemetry is attached (the device
  // reports it through PeContext::note_progress on PE (0,0)).
  std::vector<f64> residual_history;

  f64 device_cycles = 0;
  f64 device_seconds = 0;
  wse::FabricStats fabric;
  OpCounters counters; // aggregated over all PEs
};

/// Runs the full device solve. Fabric dimensions = (mesh.nx, mesh.ny);
/// column depth = mesh.nz. Throws fvdf::Error if the column does not fit
/// in PE memory (see core/mapping.hpp for the layout budget).
DataflowResult solve_dataflow(const FlowProblem& problem,
                              const DataflowConfig& config = {});

/// Chebyshev iteration on the device (extension; see solver/chebyshev.hpp):
/// no per-iteration all-reduce — the whole-fabric reduction runs only at
/// the periodic convergence probes, removing the perimeter-proportional
/// cost Table III attributes to CG's dot products. `bounds` must bracket
/// the operator spectrum (host-estimated via estimate_spectral_bounds).
struct ChebyshevDeviceConfig {
  FluxMode flux_mode = FluxMode::Fused;
  u64 max_iterations = 50'000;
  f32 tolerance = 0.0f;
  u32 check_every = 16;
  SpectralBounds bounds{};
  f32 diagonal_shift = 0.0f;
  std::vector<f64> initial_field;
  wse::TimingParams timing{};
  wse::PeMemoryParams memory{};
  f64 max_cycles = 1e15;
  u32 sim_threads = 1;           // see DataflowConfig::sim_threads
  wse::ShardGrid shard_grid{};   // see DataflowConfig::shard_grid
  SimEngine engine = SimEngine::Bytecode; // see DataflowConfig::engine
  bool verify_preflight = false; // see DataflowConfig::verify_preflight
  telemetry::Session* telemetry = nullptr; // see DataflowConfig::telemetry
  telemetry::HostProfiler* host_profiler = nullptr; // see DataflowConfig
  std::shared_ptr<CaseArtifacts> artifacts; // see DataflowConfig::artifacts
};

DataflowResult solve_dataflow_chebyshev(const FlowProblem& problem,
                                        const ChebyshevDeviceConfig& config);

/// Statically verifies the CG (resp. Chebyshev) device program that
/// solve_dataflow would load — route completeness, deadlock freedom,
/// delivery and switch liveness, memory budget — without running the event
/// loop. Returns the full report; never throws on program defects.
analysis::VerifyReport verify_dataflow(const FlowProblem& problem,
                                       const DataflowConfig& config = {});
analysis::VerifyReport verify_dataflow_chebyshev(
    const FlowProblem& problem, const ChebyshevDeviceConfig& config);

/// Channel-lookahead tables for the CG device program a solve would load,
/// computed both ways (see wse::LookaheadSource): from the bytecode's
/// reachable SEND instructions and from the declared manifests alone.
/// The shard layout is the one `config.shard_grid` would produce; with a
/// single shard the tables carry no crossing edges. Exposed for
/// fabric_lint --lookahead and scripts/check_scaling.sh to show that the
/// bytecode-derived windows are never looser than the manifest-derived
/// ones.
struct LookaheadPlan {
  u32 shard_count = 0;
  u32 tile_rows = 1;
  u32 tile_cols = 1;
  wse::ChannelLookahead bytecode;
  wse::ChannelLookahead manifest;
};

LookaheadPlan plan_dataflow_lookahead(const FlowProblem& problem,
                                      const DataflowConfig& config = {});

/// Transient backward-Euler simulation with every linear solve executed on
/// the simulated dataflow device (one `solve_dataflow` per step, with the
/// accumulation term as the device kernel's diagonal shift). Extension
/// over the paper; see solver/transient.hpp for the formulation and the
/// host reference this is validated against.
struct DataflowTransientResult {
  std::vector<f32> pressure;            // final field
  std::vector<u64> iterations_per_step; // device CG iterations per step
  bool all_converged = true;
  f64 total_device_seconds = 0;
  i64 steps_completed = 0; // == steps unless on_step stopped the run
  bool interrupted = false;
};

/// Called after every completed transient step with the 0-based step
/// index and that step's solve result (result.pressure is the state the
/// next step starts from). Return false to stop stepping — the transient
/// result then reports interrupted=true and carries the state so far.
/// Long-running callers (the serve daemon, signal-aware drivers) use
/// this for progress streaming, checkpointing and graceful interruption.
using TransientStepFn = std::function<bool(i64 step, const DataflowResult&)>;

DataflowTransientResult solve_transient_dataflow(const FlowProblem& problem,
                                                 f64 dt, i64 steps, f64 porosity,
                                                 f64 total_compressibility,
                                                 DataflowConfig config = {},
                                                 const TransientStepFn& on_step = {});

/// Builds the per-PE init data for PE (x, y) — exposed for tests. `minv`
/// is the global inverse-diagonal array when Jacobi preconditioning is on
/// (nullptr otherwise). `diagonal_shift` folds the backward-Euler
/// accumulation term into the preconditioner diagonal.
PeInit build_pe_init(const FlowProblem& problem, const DiscreteSystem<f32>& sys,
                     i64 x, i64 y, FluxMode mode,
                     const std::vector<f32>* minv = nullptr,
                     const std::vector<f64>* p0_override = nullptr);

} // namespace fvdf::core
