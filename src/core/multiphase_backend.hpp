#pragma once
// Bridges the two-phase IMPES outer loop to the simulated dataflow device:
// every time step's implicit pressure system — the linear solve the paper
// accelerates — runs on the wafer-scale fabric, with the
// saturation-dependent total mobility folded into the per-PE coefficients.
// This is the full workflow the paper's conclusion points to ("adapting
// the complete set of discretized nonlinear multiphase flow equations to
// the dataflow model").

#include "core/solver.hpp"
#include "multiphase/impes.hpp"

namespace fvdf::core {

/// Returns a PressureBackend that solves each IMPES pressure step with
/// solve_dataflow under `config` (tolerance, flux mode, preconditioning,
/// timing model all apply). `total_device_seconds`, if non-null,
/// accumulates the simulated device time across steps.
multiphase::PressureBackend make_dataflow_pressure_backend(
    DataflowConfig config, f64* total_device_seconds = nullptr);

} // namespace fvdf::core
