#include "core/chebyshev_program.hpp"

#include "common/error.hpp"
#include "core/flux_kernels.hpp"
#include "telemetry/phase.hpp"

namespace fvdf::core {

using wse::Color;
using wse::Dir;
using wse::dsd;
using wse::PeContext;

namespace {
// Chebyshev has no explicit state enum; phases are marked directly at the
// same Table-II granularity the CG program uses.
void mark(PeContext& ctx, telemetry::Phase phase) {
  ctx.mark_phase(static_cast<u8>(phase));
}
} // namespace

ChebyshevPeProgram::ChebyshevPeProgram(ChebyshevPeConfig config)
    : config_(std::move(config)) {
  FVDF_CHECK(config_.nz >= 1);
  FVDF_CHECK_MSG(config_.lambda_max > config_.lambda_min && config_.lambda_min > 0,
                 "Chebyshev needs valid spectral bounds");
  FVDF_CHECK(config_.check_every >= 1);
  theta_ = 0.5f * (config_.lambda_max + config_.lambda_min);
  delta_ = 0.5f * (config_.lambda_max - config_.lambda_min);
  sigma_ = theta_ / delta_;
  rho_ = 1.0f / sigma_;
  // Every halo message carries a full nz-word column; the declared bound
  // feeds the channel-lookahead planner through the manifest.
  halo_.declare_column_words(config_.nz);
}

void ChebyshevPeProgram::on_start(PeContext& ctx) {
  mark(ctx, telemetry::Phase::Setup);
  layout_ = PeLayout::plan(ctx.memory(), config_.nz, config_.mode,
                           static_cast<u32>(config_.init.dirichlet_z.size()),
                           /*jacobi=*/false, !config_.init.source.empty());
  halo_.configure(ctx);
  reduce_.configure(ctx);
  upload_pe_init(ctx, layout_, config_.init, config_.mode, /*jacobi=*/false);

  if (config_.mode == FluxMode::OnTheFly) {
    halo_.start(ctx, dsd(layout_.lambda), dsd(layout_.lh_w), dsd(layout_.lh_e),
                dsd(layout_.lh_s), dsd(layout_.lh_n), nullptr,
                [this](PeContext& c) { start_halo_jx(c); });
    return;
  }
  start_halo_jx(ctx);
}

void ChebyshevPeProgram::on_task(PeContext& ctx, Color color) {
  if (halo_.handles(color)) {
    halo_.on_task(ctx, color);
    return;
  }
  if (reduce_.handles(color)) {
    reduce_.on_task(ctx, color);
    return;
  }
  throw Error("Chebyshev program: unexpected task color " + std::to_string(color));
}

wse::ProgramManifest ChebyshevPeProgram::manifest(wse::PeCoord coord,
                                                  i64 fabric_width,
                                                  i64 fabric_height) const {
  wse::ProgramManifest m = halo_.manifest(coord, fabric_width, fabric_height);
  m |= reduce_.manifest(coord, fabric_width, fabric_height);
  return m;
}

void ChebyshevPeProgram::start_halo_jx(PeContext& ctx) {
  halo_.start(
      ctx, dsd(layout_.x), dsd(layout_.halo_w), dsd(layout_.halo_e),
      dsd(layout_.halo_s), dsd(layout_.halo_n),
      [this](PeContext& c, Dir dir) {
        mark(c, telemetry::Phase::Flux);
        compute_face_flux(c, layout_, config_.mode, dir);
        mark(c, telemetry::Phase::Halo); // back to waiting on the exchange
      },
      [this](PeContext& c) {
        if (init_pass_) {
          after_init_flux(c);
        } else {
          after_iter_flux(c);
        }
      });
  mark(ctx, telemetry::Phase::Flux); // z-flux overlaps the exchange
  compute_z_flux(ctx, layout_, config_.mode);
  mark(ctx, telemetry::Phase::Halo);
}

void ChebyshevPeProgram::after_init_flux(PeContext& ctx) {
  init_pass_ = false;
  auto& e = ctx.dsd();
  mark(ctx, telemetry::Phase::Axpy);
  fix_dirichlet_rows(ctx, layout_);
  // r0 = q_src - J p0 on interior rows, 0 on Dirichlet rows.
  e.fnegs(dsd(layout_.r), dsd(layout_.q));
  if (layout_.source.length != 0)
    e.fadds(dsd(layout_.r), dsd(layout_.r), dsd(layout_.source));
  zero_dirichlet_entries(ctx, layout_, layout_.r);
  // d0 = r0 / theta, living in the x buffer (it is what halos exchange).
  e.fmuls_imm(dsd(layout_.x), dsd(layout_.r), 1.0f / theta_);

  // Initial residual probe: establishes rr0 for the divergence guard.
  mark(ctx, telemetry::Phase::LocalDot);
  const f32 rr_local = e.fdots(dsd(layout_.r), dsd(layout_.r));
  reduce_.start(ctx, rr_local, [this](PeContext& c, f32 total) {
    rr0_ = total;
    rr_ = total;
    mark(c, telemetry::Phase::Check);
    c.note_progress(0, total);
    if (rr_ < config_.tolerance || rr_ == 0.0f) {
      finish(c, /*converged=*/true);
      return;
    }
    start_halo_jx(c); // first iteration's halo of d
  });
}

void ChebyshevPeProgram::after_iter_flux(PeContext& ctx) {
  auto& e = ctx.dsd();
  // q = J d (+ the backward-Euler shift), Dirichlet rows identity.
  mark(ctx, telemetry::Phase::LocalDot);
  if (config_.diagonal_shift != 0.0f)
    e.fmacs_imm(dsd(layout_.q), dsd(layout_.q), dsd(layout_.x),
                config_.diagonal_shift);
  fix_dirichlet_rows(ctx, layout_);

  // y += d;  r -= q;  d = (rho' rho) d + (2 rho'/delta) r.
  mark(ctx, telemetry::Phase::Axpy);
  e.fadds(dsd(layout_.ysol), dsd(layout_.ysol), dsd(layout_.x));
  e.fmacs_imm(dsd(layout_.r), dsd(layout_.r), dsd(layout_.q), -1.0f);
  const f32 rho_next = 1.0f / (e.fmuls_scalar(2.0f, sigma_) - rho_);
  e.fmuls_imm(dsd(layout_.x), dsd(layout_.x), rho_next * rho_);
  e.fmacs_imm(dsd(layout_.x), dsd(layout_.x), dsd(layout_.r),
              2.0f * rho_next / delta_);
  rho_ = rho_next;
  ++k_;
  next_or_probe(ctx);
}

void ChebyshevPeProgram::next_or_probe(PeContext& ctx) {
  const bool probe =
      (k_ % config_.check_every == 0) || k_ >= config_.max_iterations;
  if (!probe) {
    start_halo_jx(ctx);
    return;
  }
  mark(ctx, telemetry::Phase::LocalDot);
  const f32 rr_local = ctx.dsd().fdots(dsd(layout_.r), dsd(layout_.r));
  reduce_.start(ctx, rr_local, [this](PeContext& c, f32 total) {
    rr_ = total;
    mark(c, telemetry::Phase::Check);
    c.note_progress(k_, total);
    if (rr_ < config_.tolerance || rr_ == 0.0f) {
      finish(c, /*converged=*/true);
      return;
    }
    if (k_ >= config_.max_iterations || rr_ > config_.divergence_factor * rr0_) {
      finish(c, /*converged=*/false);
      return;
    }
    start_halo_jx(c);
  });
}

void ChebyshevPeProgram::finish(PeContext& ctx, bool converged) {
  mark(ctx, telemetry::Phase::Done);
  auto& mem = ctx.memory();
  mem.store(layout_.result.offset_words + 0, static_cast<f32>(k_));
  mem.store(layout_.result.offset_words + 1, converged ? 1.0f : 0.0f);
  mem.store(layout_.result.offset_words + 2, rr_);
  ctx.halt();
}

} // namespace fvdf::core
