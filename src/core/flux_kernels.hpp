#pragma once
// The device flux kernel and upload helpers shared by every FV device
// program (the CG state machine and the Chebyshev iteration): the
// z-dimension flux over the local column, the per-face flux fired when a
// halo lands, the Dirichlet row fix-up, and the host-side memcpy of a
// PeInit into a planned layout.

#include "core/mapping.hpp"
#include "core/pe_program.hpp"
#include "wse/bytecode.hpp"
#include "wse/program.hpp"

namespace fvdf::core {

/// Host-style upload of `init` into a planned layout (free of cycle cost,
/// models the SDK memcpy path). Zeroes every solver-state buffer.
void upload_pe_init(wse::PeContext& ctx, const PeLayout& layout, const PeInit& init,
                    FluxMode mode, bool jacobi);

/// q = (vertical part of J) * x — computed while halos are in flight.
/// Initializes q to zero first.
void compute_z_flux(wse::PeContext& ctx, const PeLayout& layout, FluxMode mode);

/// q += (face `dir` part of J) * x, fired from the halo's per-face
/// callback. `dir` is a fabric direction (West/East/South/North).
void compute_face_flux(wse::PeContext& ctx, const PeLayout& layout, FluxMode mode,
                       wse::Dir dir);

/// Overwrites Dirichlet rows of q with x (Eq. 6's identity rows).
void fix_dirichlet_rows(wse::PeContext& ctx, const PeLayout& layout);

/// Zeroes the listed Dirichlet entries of `span`.
void zero_dirichlet_entries(wse::PeContext& ctx, const PeLayout& layout,
                            const wse::MemSpan& span);

// Bytecode mirrors of the kernels above: emit the identical charged
// DsdEngine operation sequence as flat instructions. Kept next to the
// execute-now versions so the two stay in lock-step.

void emit_z_flux(wse::bc::Builder& b, const PeLayout& layout, FluxMode mode);

void emit_face_flux(wse::bc::Builder& b, const PeLayout& layout, FluxMode mode,
                    wse::Dir dir);

void emit_fix_dirichlet_rows(wse::bc::Builder& b, const PeLayout& layout);

void emit_zero_dirichlet_entries(wse::bc::Builder& b, const PeLayout& layout,
                                 const wse::MemSpan& span);

} // namespace fvdf::core
