#pragma once
// The Chebyshev-iteration device program: the reduction-free alternative
// to the CG state machine (see solver/chebyshev.hpp for the motivation —
// Table III's perimeter-proportional all-reduce cost disappears because
// the recurrence coefficients are precomputed scalars every PE evaluates
// identically; the all-reduce only runs for the periodic convergence
// probe).
//
// States: INIT (upload, r0 = q_src - J p0 via the shared flux path,
// d0 = r0 / theta), then an ITERATE loop of halo(d) -> q = J d -> y += d,
// r -= q, d-recurrence, with a REDUCE_RR probe every `check_every`
// iterations, then DONE.

#include "core/mapping.hpp"
#include "csl/allreduce.hpp"
#include "csl/halo.hpp"
#include "wse/program.hpp"

namespace fvdf::core {

struct ChebyshevPeConfig {
  u32 nz = 1;
  FluxMode mode = FluxMode::Fused;
  u64 max_iterations = 50'000;
  f32 tolerance = 0.0f;       // epsilon vs the global r^T r at probes
  u32 check_every = 16;       // iterations between convergence probes
  f32 lambda_min = 0.0f;      // spectral bounds (host-estimated)
  f32 lambda_max = 0.0f;
  f32 divergence_factor = 1e8f;
  f32 diagonal_shift = 0.0f;  // backward-Euler accumulation term
  PeInit init;
};

class ChebyshevPeProgram final : public wse::PeProgram {
public:
  explicit ChebyshevPeProgram(ChebyshevPeConfig config);

  void on_start(wse::PeContext& ctx) override;
  void on_task(wse::PeContext& ctx, wse::Color color) override;
  wse::ProgramManifest manifest(wse::PeCoord coord, i64 fabric_width,
                                i64 fabric_height) const override;

private:
  void start_halo_jx(wse::PeContext& ctx);
  void after_init_flux(wse::PeContext& ctx);
  void after_iter_flux(wse::PeContext& ctx);
  void next_or_probe(wse::PeContext& ctx);
  void finish(wse::PeContext& ctx, bool converged);

  ChebyshevPeConfig config_;
  PeLayout layout_;
  csl::HaloExchange halo_;
  csl::AllReduce reduce_;

  bool init_pass_ = true;
  u64 k_ = 0;
  f32 rr0_ = 0.0f;
  f32 rr_ = 0.0f;
  // Recurrence scalars (identical on every PE, no communication needed).
  f32 theta_ = 0, delta_ = 0, sigma_ = 0, rho_ = 0;
};

} // namespace fvdf::core
