#include "core/multiphase_backend.hpp"

namespace fvdf::core {

multiphase::PressureBackend make_dataflow_pressure_backend(
    DataflowConfig config, f64* total_device_seconds) {
  return [config, total_device_seconds](
             const FlowProblem& problem) -> multiphase::PressureStepResult {
    const DataflowResult solve = solve_dataflow(problem, config);
    if (total_device_seconds) *total_device_seconds += solve.device_seconds;
    multiphase::PressureStepResult result;
    result.pressure.assign(solve.pressure.begin(), solve.pressure.end());
    result.iterations = solve.iterations;
    result.converged = solve.converged;
    return result;
  };
}

} // namespace fvdf::core
