#include "core/validation.hpp"

#include <cmath>
#include <sstream>

#include "fv/residual.hpp"
#include "solver/blas.hpp"
#include "solver/pressure_solve.hpp"

namespace fvdf::core {

std::string ValidationReport::summary() const {
  std::ostringstream os;
  os << "device vs host: max|dp|=" << max_abs_error << ", rel L2=" << rel_l2_error
     << ", device residual (Eq.3) norm=" << host_residual_norm << ", iterations "
     << device_iterations << " (device) / " << host_iterations << " (host)"
     << (device_converged ? "" : " [device NOT converged]");
  return os.str();
}

ValidationReport compare_with_host(const FlowProblem& problem,
                                   const DataflowResult& device,
                                   f64 host_tolerance) {
  CgOptions options;
  options.tolerance = host_tolerance;
  const PressureSolveResult host = solve_pressure_host(problem, options);

  ValidationReport report;
  report.device_iterations = device.iterations;
  report.host_iterations = host.cg.iterations;
  report.device_converged = device.converged;

  const std::size_t n = host.pressure.size();
  f64 num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const f64 diff = static_cast<f64>(device.pressure[i]) - host.pressure[i];
    report.max_abs_error = std::max(report.max_abs_error, std::fabs(diff));
    num += diff * diff;
    den += host.pressure[i] * host.pressure[i];
  }
  report.rel_l2_error = den > 0 ? std::sqrt(num / den) : std::sqrt(num);

  // Independent check: plug the *device* pressure into Eq. (3).
  std::vector<f64> device_pressure(device.pressure.begin(), device.pressure.end());
  const auto residual =
      compute_residual(problem, device_pressure);
  report.host_residual_norm = blas::norm2(residual.data(), residual.size());
  return report;
}

ValidationReport validate_against_host(const FlowProblem& problem,
                                       const DataflowConfig& config,
                                       f64 host_tolerance) {
  const DataflowResult device = solve_dataflow(problem, config);
  return compare_with_host(problem, device, host_tolerance);
}

} // namespace fvdf::core
