#pragma once
// Bytecode-compiled device programs (docs/simulator.md, "Bytecode ISA").
//
// lower_cg / lower_chebyshev translate the 14-state CG machine and the
// Chebyshev iteration — including their csl collectives — into one flat
// wse::bc::Program per PE shape. The BytecodeCgProgram /
// BytecodeChebyshevProgram wrappers are drop-in PeProgram replacements:
// on_start performs the same setup the legacy programs did (plan, route
// configuration, upload) and then enters the interpreter; every later
// task activation is dispatched by the fabric directly into the bytecode
// stream (wse/fabric.cpp's fast path), never through on_task virtual
// dispatch.
//
// Lowering happens eagerly at construction against a probe PeMemory (the
// same allocation sequence on_start later performs against the real
// arena, so embedded offsets agree), which makes manifest() — derived
// from the instruction stream — and bytecode() available to the verifier
// and the lookahead planner before the fabric runs. PEs whose lowering
// inputs coincide (coordinate parity, fabric edges, Dirichlet count)
// share one immutable Program through a mutex-guarded cache.

#include <functional>
#include <memory>
#include <mutex>
#include <map>
#include <tuple>

#include "core/chebyshev_program.hpp"
#include "core/mapping.hpp"
#include "core/pe_program.hpp"
#include "csl/allreduce.hpp"
#include "csl/halo.hpp"
#include "wse/bytecode.hpp"
#include "wse/fabric.hpp"
#include "wse/program.hpp"

namespace fvdf::core {

/// Everything the lowering branches on. Two PEs with equal sites produce
/// byte-identical programs (given one solver config).
struct LoweringSite {
  wse::PeCoord coord{};
  i64 width = 1;
  i64 height = 1;
  PeLayout layout{};
  csl::HaloExchange::Colors halo_colors{};
  csl::AllReduce::Colors reduce_colors{};
  u32 slot_value = 0; // AllReduce scalar slots (word offsets)
  u32 slot_in = 0;
};

std::shared_ptr<const wse::bc::Program> lower_cg(const CgPeConfig& config,
                                                 const LoweringSite& site);

std::shared_ptr<const wse::bc::Program>
lower_chebyshev(const ChebyshevPeConfig& config, const LoweringSite& site);

/// Thread-safe Program cache shared by every PE of one solve (programs are
/// lowered lazily per distinct site shape; on_start runs concurrently
/// across fabric shards).
class ProgramCache {
public:
  using Key = std::tuple<u32, u32, u32>; // (shape bits, dirichlet count, slot)
  using Lower = std::function<std::shared_ptr<const wse::bc::Program>()>;

  static Key key_for(const LoweringSite& site);

  std::shared_ptr<const wse::bc::Program> get_or_lower(const Key& key,
                                                       const Lower& lower);

private:
  std::mutex mutex_;
  std::map<Key, std::shared_ptr<const wse::bc::Program>> programs_;
};

/// Computes the lowering site a PE at `coord` will see: plans the layout
/// against a probe arena with the exact allocation sequence on_start
/// performs, so every embedded offset matches the real run.
LoweringSite plan_site(wse::PeCoord coord, i64 width, i64 height,
                       const wse::PeMemoryParams& mem, u32 nz, FluxMode mode,
                       u32 dirichlet_count, bool jacobi, bool with_source);

class BytecodeCgProgram final : public wse::PeProgram {
public:
  BytecodeCgProgram(CgPeConfig config, wse::PeCoord coord, i64 width,
                    i64 height, const wse::PeMemoryParams& mem,
                    std::shared_ptr<ProgramCache> cache);

  void on_start(wse::PeContext& ctx) override;
  void on_task(wse::PeContext& ctx, wse::Color color) override;
  wse::ProgramManifest manifest(wse::PeCoord coord, i64 fabric_width,
                                i64 fabric_height) const override;
  const wse::bc::Program* bytecode() const override { return program_.get(); }
  wse::bc::VmState* bytecode_state() override { return &vm_; }

private:
  CgPeConfig config_;
  LoweringSite site_;
  csl::HaloExchange halo_;
  csl::AllReduce reduce_;
  std::shared_ptr<const wse::bc::Program> program_;
  wse::bc::VmState vm_;
};

class BytecodeChebyshevProgram final : public wse::PeProgram {
public:
  BytecodeChebyshevProgram(ChebyshevPeConfig config, wse::PeCoord coord,
                           i64 width, i64 height,
                           const wse::PeMemoryParams& mem,
                           std::shared_ptr<ProgramCache> cache);

  void on_start(wse::PeContext& ctx) override;
  void on_task(wse::PeContext& ctx, wse::Color color) override;
  wse::ProgramManifest manifest(wse::PeCoord coord, i64 fabric_width,
                                i64 fabric_height) const override;
  const wse::bc::Program* bytecode() const override { return program_.get(); }
  wse::bc::VmState* bytecode_state() override { return &vm_; }

private:
  ChebyshevPeConfig config_;
  LoweringSite site_;
  csl::HaloExchange halo_;
  csl::AllReduce reduce_;
  std::shared_ptr<const wse::bc::Program> program_;
  wse::bc::VmState vm_;
};

} // namespace fvdf::core
