#pragma once
// Numerical-integrity harness (Sec. V-B): compares the dataflow solution
// against the double-precision host oracle and reports error norms — the
// "compare and numerically validate" step of the paper's evaluation.

#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/solver.hpp"
#include "fv/problem.hpp"

namespace fvdf::core {

struct ValidationReport {
  f64 max_abs_error = 0;     // vs f64 host pressure
  f64 rel_l2_error = 0;      // ||p_df - p_host||_2 / ||p_host||_2
  f64 host_residual_norm = 0; // Eq. (3) residual of the *device* pressure
  u64 device_iterations = 0;
  u64 host_iterations = 0;
  bool device_converged = false;
  std::string summary() const;
};

/// Solves on both the simulated device and the f64 host and compares.
/// `tolerance` is the CG epsilon used for both solves.
ValidationReport validate_against_host(const FlowProblem& problem,
                                       const DataflowConfig& config,
                                       f64 host_tolerance);

/// Compares an already-computed device result against the host oracle.
ValidationReport compare_with_host(const FlowProblem& problem,
                                   const DataflowResult& device,
                                   f64 host_tolerance);

} // namespace fvdf::core
