#include "core/pe_program.hpp"

#include "common/error.hpp"
#include "core/flux_kernels.hpp"
#include "telemetry/phase.hpp"

namespace fvdf::core {

using wse::Color;
using wse::Dir;
using wse::Dsd;
using wse::dsd;
using wse::PeContext;

const char* to_string(CgState state) {
  switch (state) {
  case CgState::Init: return "INIT";
  case CgState::HaloExchange: return "HALO_EXCHANGE";
  case CgState::ComputeJx: return "COMPUTE_JX";
  case CgState::InitResidual: return "INIT_RESIDUAL";
  case CgState::ReduceRr0: return "REDUCE_RR0";
  case CgState::IterCheck: return "ITER_CHECK";
  case CgState::FinalizeJx: return "FINALIZE_JX";
  case CgState::ReduceXjx: return "REDUCE_XJX";
  case CgState::UpdateSolution: return "UPDATE_SOLUTION";
  case CgState::ReduceRr: return "REDUCE_RR";
  case CgState::ThresCheck: return "THRES_CHECK";
  case CgState::UpdateDirection: return "UPDATE_DIRECTION";
  case CgState::LoopIncrement: return "LOOP_INCREMENT";
  case CgState::Done: return "DONE";
  }
  return "?";
}

namespace {

// Table-II attribution of the 14 states. The reduce states mark LocalDot
// because each covers the PE-local fdots feeding the collective; the
// AllReduce span itself starts when csl::AllReduce::start marks it.
telemetry::Phase phase_of(CgState state) {
  using telemetry::Phase;
  switch (state) {
  case CgState::Init: return Phase::Setup;
  case CgState::HaloExchange: return Phase::Halo;
  case CgState::ComputeJx: return Phase::Flux;
  case CgState::InitResidual: return Phase::Axpy;
  case CgState::ReduceRr0: return Phase::LocalDot;
  case CgState::IterCheck: return Phase::Check;
  case CgState::FinalizeJx: return Phase::LocalDot;
  case CgState::ReduceXjx: return Phase::LocalDot;
  case CgState::UpdateSolution: return Phase::Axpy;
  case CgState::ReduceRr: return Phase::LocalDot;
  case CgState::ThresCheck: return Phase::Check;
  case CgState::UpdateDirection: return Phase::Axpy;
  case CgState::LoopIncrement: return Phase::Check;
  case CgState::Done: return Phase::Done;
  }
  return Phase::Setup;
}

} // namespace

void CgPeProgram::enter(PeContext& ctx, CgState state) {
  state_ = state;
  ctx.mark_phase(static_cast<u8>(phase_of(state)));
}

CgPeProgram::CgPeProgram(CgPeConfig config) : config_(std::move(config)) {
  FVDF_CHECK(config_.nz >= 1);
  FVDF_CHECK(config_.init.p0.size() == config_.nz);
  // Every halo message carries a full nz-word column; the declared bound
  // feeds the channel-lookahead planner through the manifest.
  halo_.declare_column_words(config_.nz);
}

Dsd CgPeProgram::z_view() const {
  return config_.jacobi ? dsd(layout_.z) : dsd(layout_.r);
}

void CgPeProgram::apply_preconditioner(PeContext& ctx) {
  if (config_.jacobi) ctx.dsd().fmuls(dsd(layout_.z), dsd(layout_.minv), dsd(layout_.r));
}

void CgPeProgram::on_start(PeContext& ctx) {
  enter(ctx, CgState::Init);
  layout_ = PeLayout::plan(ctx.memory(), config_.nz, config_.mode,
                           static_cast<u32>(config_.init.dirichlet_z.size()),
                           config_.jacobi, !config_.init.source.empty());
  halo_.configure(ctx);
  reduce_.configure(ctx);
  upload(ctx);

  // OnTheFly mode first shares the mobility columns with the four
  // neighbors (one extra exchange, amortized over the whole solve).
  if (config_.mode == FluxMode::OnTheFly) {
    lambda_pass_ = true;
    enter(ctx, CgState::HaloExchange);
    halo_.start(
        ctx, dsd(layout_.lambda), dsd(layout_.lh_w), dsd(layout_.lh_e),
        dsd(layout_.lh_s), dsd(layout_.lh_n), nullptr,
        [this](PeContext& c) {
          lambda_pass_ = false;
          start_halo_jx(c, /*init_pass=*/true);
        });
    return;
  }
  start_halo_jx(ctx, /*init_pass=*/true);
}

void CgPeProgram::on_task(PeContext& ctx, Color color) {
  if (halo_.handles(color)) {
    halo_.on_task(ctx, color);
    return;
  }
  if (reduce_.handles(color)) {
    reduce_.on_task(ctx, color);
    return;
  }
  throw Error("CG program: unexpected task color " + std::to_string(color));
}

wse::ProgramManifest CgPeProgram::manifest(wse::PeCoord coord, i64 fabric_width,
                                           i64 fabric_height) const {
  // The CG state machine communicates exclusively through its two
  // collectives; its lifetime behavior is the union of theirs.
  wse::ProgramManifest m = halo_.manifest(coord, fabric_width, fabric_height);
  m |= reduce_.manifest(coord, fabric_width, fabric_height);
  return m;
}

void CgPeProgram::upload(PeContext& ctx) {
  // Host-side memcpy into the arena (not charged cycles or counts).
  upload_pe_init(ctx, layout_, config_.init, config_.mode, config_.jacobi);
}

void CgPeProgram::start_halo_jx(PeContext& ctx, bool init_pass) {
  init_pass_ = init_pass;
  enter(ctx, CgState::HaloExchange);
  // Start the asynchronous exchange of the active column (p0 in the INIT
  // pass, the search direction x afterwards), then compute the
  // z-dimension fluxes while the fabric moves data (Sec. III-E2 overlap).
  halo_.start(
      ctx, dsd(layout_.x), dsd(layout_.halo_w), dsd(layout_.halo_e),
      dsd(layout_.halo_s), dsd(layout_.halo_n),
      [this](PeContext& c, Dir dir) {
        enter(c, CgState::ComputeJx);
        compute_face_flux(c, dir);
        // Until the next face lands this PE is back to waiting on the
        // exchange; attribute the gap to Halo, not Flux.
        c.mark_phase(static_cast<u8>(telemetry::Phase::Halo));
      },
      [this](PeContext& c) {
        if (config_.jx_only) {
          ++k_;
          iter_check(c);
        } else if (init_pass_) {
          init_residual(c);
        } else {
          finalize_jx(c);
        }
      });
  // The z-dimension flux overlaps the in-flight exchange (Sec. III-E2):
  // Flux while it computes, Halo again for the wait that follows.
  ctx.mark_phase(static_cast<u8>(telemetry::Phase::Flux));
  compute_z_flux(ctx);
  ctx.mark_phase(static_cast<u8>(telemetry::Phase::Halo));
}

void CgPeProgram::compute_z_flux(PeContext& ctx) {
  core::compute_z_flux(ctx, layout_, config_.mode);
}

void CgPeProgram::compute_face_flux(PeContext& ctx, Dir dir) {
  core::compute_face_flux(ctx, layout_, config_.mode, dir);
}

void CgPeProgram::fix_dirichlet_rows(PeContext& ctx) {
  core::fix_dirichlet_rows(ctx, layout_);
}

void CgPeProgram::init_residual(PeContext& ctx) {
  enter(ctx, CgState::InitResidual);
  auto& e = ctx.dsd();
  fix_dirichlet_rows(ctx);
  // Algorithm 1 line 1: r0 = q_src - J p0 on interior rows (the Newton RHS
  // with rate-well sources), exactly 0 on Dirichlet rows (p0 satisfies the
  // BCs by construction).
  e.fnegs(dsd(layout_.r), dsd(layout_.q));
  if (layout_.source.length != 0)
    e.fadds(dsd(layout_.r), dsd(layout_.r), dsd(layout_.source));
  zero_dirichlet_entries(ctx, layout_, layout_.r);
  // Line 2: x0 = r0 (or M^-1 r0 under Jacobi preconditioning).
  apply_preconditioner(ctx);
  e.fmovs(dsd(layout_.x), z_view());

  enter(ctx, CgState::ReduceRr0);
  const f32 rr_local = e.fdots(dsd(layout_.r), z_view());
  reduce_.start(ctx, rr_local, [this](PeContext& c, f32 total) {
    rr_ = total;
    c.note_progress(0, total); // the k = 0 residual
    iter_check(c);
  });
}

void CgPeProgram::iter_check(PeContext& ctx) {
  enter(ctx, CgState::IterCheck);
  if (config_.jx_only) {
    if (k_ >= config_.max_iterations) {
      finish(ctx, /*converged=*/false);
    } else {
      start_halo_jx(ctx, /*init_pass=*/false);
    }
    return;
  }
  // rr == 0 is exact convergence regardless of the tolerance (a further
  // step would divide by zero curvature).
  if (rr_ < config_.tolerance || rr_ == 0.0f) {
    finish(ctx, /*converged=*/true);
    return;
  }
  if (k_ >= config_.max_iterations) {
    finish(ctx, /*converged=*/false);
    return;
  }
  start_halo_jx(ctx, /*init_pass=*/false);
}

void CgPeProgram::finalize_jx(PeContext& ctx) {
  enter(ctx, CgState::FinalizeJx);
  auto& e = ctx.dsd();
  // Backward-Euler accumulation term (transient extension): interior rows
  // of the Jacobian carry an extra shift*I. Dirichlet rows are restored to
  // identity by the fix-up right after.
  if (config_.diagonal_shift != 0.0f)
    e.fmacs_imm(dsd(layout_.q), dsd(layout_.q), dsd(layout_.x),
                config_.diagonal_shift);
  fix_dirichlet_rows(ctx);
  const f32 xjx_local = e.fdots(dsd(layout_.x), dsd(layout_.q));
  enter(ctx, CgState::ReduceXjx);
  reduce_.start(ctx, xjx_local,
                [this](PeContext& c, f32 xjx) { update_solution(c, xjx); });
}

void CgPeProgram::update_solution(PeContext& ctx, f32 xjx) {
  enter(ctx, CgState::UpdateSolution);
  auto& e = ctx.dsd();
  // Line 5: alpha = (r,r) / (x, Jx). A non-positive curvature here means
  // the operator lost definiteness (a programming error, not a data case).
  FVDF_CHECK_MSG(xjx > 0.0f, "x^T Jx = " << xjx << " is not positive");
  const f32 alpha = e.fmuls_scalar(rr_, 1.0f / xjx);
  // Line 6: y += alpha x; line 7: r -= alpha Jx.
  e.fmacs_imm(dsd(layout_.ysol), dsd(layout_.ysol), dsd(layout_.x), alpha);
  e.fmacs_imm(dsd(layout_.r), dsd(layout_.r), dsd(layout_.q), -alpha);
  apply_preconditioner(ctx);

  enter(ctx, CgState::ReduceRr);
  const f32 rr_local = e.fdots(dsd(layout_.r), z_view());
  reduce_.start(ctx, rr_local, [this](PeContext& c, f32 total) {
    rr_new_ = total;
    thres_check(c, total);
  });
}

void CgPeProgram::thres_check(PeContext& ctx, f32 rr_new) {
  enter(ctx, CgState::ThresCheck);
  ctx.note_progress(k_ + 1, rr_new); // the residual of the k+1 iterate
  if (rr_new < config_.tolerance || rr_new == 0.0f) { // Algorithm 1 line 8
    rr_ = rr_new;
    ++k_;
    finish(ctx, /*converged=*/true);
    return;
  }
  update_direction(ctx);
}

void CgPeProgram::update_direction(PeContext& ctx) {
  enter(ctx, CgState::UpdateDirection);
  auto& e = ctx.dsd();
  // Line 9: beta = (r_{k+1}, r_{k+1}) / (r_k, r_k).
  const f32 beta = e.fmuls_scalar(rr_new_, 1.0f / rr_);
  // Line 10: x = r + beta x (z replaces r under preconditioning).
  e.fmuls_imm(dsd(layout_.x), dsd(layout_.x), beta);
  e.fadds(dsd(layout_.x), dsd(layout_.x), z_view());

  enter(ctx, CgState::LoopIncrement);
  rr_ = rr_new_;
  ++k_; // line 11
  iter_check(ctx);
}

void CgPeProgram::finish(PeContext& ctx, bool converged) {
  enter(ctx, CgState::Done);
  auto& mem = ctx.memory();
  mem.store(layout_.result.offset_words + 0, static_cast<f32>(k_));
  mem.store(layout_.result.offset_words + 1, converged ? 1.0f : 0.0f);
  mem.store(layout_.result.offset_words + 2, rr_);
  ctx.halt();
}

} // namespace fvdf::core
