#pragma once
// The matrix-free FV + conjugate-gradient PE program (Sec. III-D).
//
// "Unlike the conventional approach, our implementation of the conjugate
// gradient algorithm on a dataflow architecture utilizes a state machine.
// We have devised 14 states to orchestrate the various steps involved."
// The 14 states here mirror that structure; every conditional of
// Algorithm 1 (the while of line 4 and the if of line 8) is a state
// transition, and all data movement is asynchronous: the flux of a face is
// computed the moment its halo lands (Sec. III-B), and the dot products go
// through the whole-fabric all-reduce (Sec. III-C).

#include "core/mapping.hpp"
#include "csl/allreduce.hpp"
#include "csl/halo.hpp"
#include "wse/program.hpp"

namespace fvdf::core {

/// The 14 states of the device CG driver.
enum class CgState : u8 {
  Init = 0,        //  1. upload + component setup, kick off r0 = -J p0
  HaloExchange,    //  2. Table-I exchange of the active column (p0 or x)
  ComputeJx,       //  3. event-driven flux accumulation (z first, faces on arrival)
  InitResidual,    //  4. r0 = -q, Dirichlet zeros, x0 = r0  (Alg. 1 lines 1-2)
  ReduceRr0,       //  5. all-reduce of r0^T r0
  IterCheck,       //  6. k < k_max?                          (Alg. 1 line 4)
  FinalizeJx,      //  7. Dirichlet rows of q, local x^T Jx
  ReduceXjx,       //  8. all-reduce of x^T Jx                (denominator of line 5)
  UpdateSolution,  //  9. alpha; y += alpha x; r -= alpha Jx  (lines 5-7)
  ReduceRr,        // 10. all-reduce of r^T r
  ThresCheck,      // 11. r^T r < eps?                        (line 8)
  UpdateDirection, // 12. beta; x = r + beta x                (lines 9-10)
  LoopIncrement,   // 13. k = k + 1                           (line 11)
  Done             // 14. publish results, halt
};
constexpr int kNumCgStates = 14;
const char* to_string(CgState state);

/// Per-PE program configuration (identical across PEs except `init`).
struct CgPeConfig {
  u32 nz = 1;
  FluxMode mode = FluxMode::Fused;
  u64 max_iterations = 10'000; // k_max
  f32 tolerance = 0.0f;        // epsilon vs the global r^T r (or r^T z for PCG)
  bool jx_only = false;        // Alg. 2 scaling mode: halo+flux loop only
  // Extensions over the paper's plain-CG kernel:
  bool jacobi = false;         // Jacobi (diagonal) preconditioning
  f32 diagonal_shift = 0.0f;   // adds shift*x to interior rows of Jx — the
                               // accumulation term of a backward-Euler step
  PeInit init;                 // this PE's column data
};

class CgPeProgram final : public wse::PeProgram {
public:
  explicit CgPeProgram(CgPeConfig config);

  void on_start(wse::PeContext& ctx) override;
  void on_task(wse::PeContext& ctx, wse::Color color) override;
  wse::ProgramManifest manifest(wse::PeCoord coord, i64 fabric_width,
                                i64 fabric_height) const override;

  CgState state() const { return state_; }
  const PeLayout& layout() const { return layout_; }

private:
  void upload(wse::PeContext& ctx);
  void start_halo_jx(wse::PeContext& ctx, bool init_pass);
  void compute_z_flux(wse::PeContext& ctx);
  void compute_face_flux(wse::PeContext& ctx, wse::Dir dir);
  void fix_dirichlet_rows(wse::PeContext& ctx);
  void init_residual(wse::PeContext& ctx);
  void iter_check(wse::PeContext& ctx);
  void finalize_jx(wse::PeContext& ctx);
  void update_solution(wse::PeContext& ctx, f32 xjx);
  void thres_check(wse::PeContext& ctx, f32 rr_new);
  void update_direction(wse::PeContext& ctx);
  void finish(wse::PeContext& ctx, bool converged);

  /// Transitions the state machine and reports the matching telemetry
  /// phase (see telemetry/phase.hpp) at the current cycle cursor.
  void enter(wse::PeContext& ctx, CgState state);

  CgPeConfig config_;
  PeLayout layout_;
  csl::HaloExchange halo_;
  csl::AllReduce reduce_;

  // The preconditioned residual's view: z when PCG is on, r itself in
  // plain CG (both dots and the direction update read through it).
  wse::Dsd z_view() const;
  void apply_preconditioner(wse::PeContext& ctx);

  CgState state_ = CgState::Init;
  u64 k_ = 0;
  f32 rr_ = 0.0f;     // current global r^T r (r^T z under PCG)
  f32 rr_new_ = 0.0f; // pending value for the k+1 iterate
  bool init_pass_ = true;
  bool lambda_pass_ = false; // OnTheFly: first halo carries mobilities
};

} // namespace fvdf::core
