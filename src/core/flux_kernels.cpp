#include "core/flux_kernels.hpp"

#include "common/error.hpp"

namespace fvdf::core {

using wse::Dir;
using wse::Dsd;
using wse::dsd;
using wse::PeContext;

void upload_pe_init(PeContext& ctx, const PeLayout& layout, const PeInit& init,
                    FluxMode mode, bool jacobi) {
  auto& mem = ctx.memory();
  auto put = [&](const wse::MemSpan& span, const std::vector<f32>& data) {
    FVDF_CHECK(span.length == data.size());
    for (u32 i = 0; i < span.length; ++i) mem.store(span.offset_words + i, data[i]);
  };
  auto zero = [&](const wse::MemSpan& span) {
    for (u32 i = 0; i < span.length; ++i) mem.store(span.offset_words + i, 0.0f);
  };
  put(layout.cw, init.cw);
  put(layout.ce, init.ce);
  put(layout.cs, init.cs);
  put(layout.cn, init.cn);
  if (layout.nz > 1) put(layout.cz, init.cz);
  if (mode == FluxMode::OnTheFly) {
    put(layout.lambda, init.lambda);
    zero(layout.lh_w);
    zero(layout.lh_e);
    zero(layout.lh_s);
    zero(layout.lh_n);
    zero(layout.scratch2);
  }
  put(layout.x, init.p0); // x carries p0 through the INIT pass
  if (jacobi) {
    put(layout.minv, init.minv);
    zero(layout.z);
  }
  if (!init.source.empty()) put(layout.source, init.source);
  zero(layout.r);
  zero(layout.ysol);
  zero(layout.q);
  zero(layout.d);
  zero(layout.halo_w);
  zero(layout.halo_e);
  zero(layout.halo_s);
  zero(layout.halo_n);
  for (u32 i = 0; i < layout.dirichlet_count; ++i) {
    const u16 z = init.dirichlet_z[i];
    mem.store_byte(layout.dirichlet_list.offset_words + 2 * i,
                   static_cast<u8>(z & 0xff));
    mem.store_byte(layout.dirichlet_list.offset_words + 2 * i + 1,
                   static_cast<u8>(z >> 8));
  }
  zero(layout.result);
}

void compute_z_flux(PeContext& ctx, const PeLayout& layout, FluxMode mode) {
  auto& e = ctx.dsd();
  const u32 nz = layout.nz;
  e.fmovs_imm(dsd(layout.q), 0.0f);
  if (nz == 1) return;

  const Dsd x_lo = dsd(layout.x, 0, nz - 1);
  const Dsd x_hi = dsd(layout.x, 1, nz - 1);
  const Dsd q_lo = dsd(layout.q, 0, nz - 1);
  const Dsd q_hi = dsd(layout.q, 1, nz - 1);
  const Dsd d_lo = dsd(layout.d, 0, nz - 1);
  const Dsd cz = dsd(layout.cz);

  if (mode == FluxMode::Fused) {
    // q[z]   += w_z[z] * (x[z] - x[z+1])    (coupling to the cell below)
    // q[z+1] += w_z[z] * (x[z+1] - x[z])    (and back up, via negation)
    e.fsubs(d_lo, x_lo, x_hi);
    e.fmacs(q_lo, q_lo, cz, d_lo);
    e.fnegs(d_lo, d_lo);
    e.fmacs(q_hi, q_hi, cz, d_lo);
  } else {
    // Mobility averaged on the fly: w = Upsilon_z * 0.5 * (l[z] + l[z+1]).
    const Dsd l_lo = dsd(layout.lambda, 0, nz - 1);
    const Dsd l_hi = dsd(layout.lambda, 1, nz - 1);
    const Dsd s_lo = dsd(layout.scratch2, 0, nz - 1);
    e.fadds(s_lo, l_lo, l_hi);
    e.fmuls_imm(s_lo, s_lo, 0.5f);
    e.fmuls(s_lo, cz, s_lo);
    e.fsubs(d_lo, x_lo, x_hi);
    e.fmacs(q_lo, q_lo, s_lo, d_lo);
    e.fnegs(d_lo, d_lo);
    e.fmacs(q_hi, q_hi, s_lo, d_lo);
  }
}

void compute_face_flux(PeContext& ctx, const PeLayout& layout, FluxMode mode,
                       Dir dir) {
  auto& e = ctx.dsd();
  Dsd coef{}, halo{}, lhalo{};
  switch (dir) {
  case Dir::West: coef = dsd(layout.cw); halo = dsd(layout.halo_w); lhalo = dsd(layout.lh_w); break;
  case Dir::East: coef = dsd(layout.ce); halo = dsd(layout.halo_e); lhalo = dsd(layout.lh_e); break;
  case Dir::South: coef = dsd(layout.cs); halo = dsd(layout.halo_s); lhalo = dsd(layout.lh_s); break;
  case Dir::North: coef = dsd(layout.cn); halo = dsd(layout.halo_n); lhalo = dsd(layout.lh_n); break;
  case Dir::Ramp: throw Error("flux: invalid direction");
  }
  const Dsd x = dsd(layout.x);
  const Dsd q = dsd(layout.q);
  const Dsd d = dsd(layout.d);
  if (mode == FluxMode::Fused) {
    // q += w_dir * (x - halo_dir)
    e.fsubs(d, x, halo);
    e.fmacs(q, q, coef, d);
  } else {
    const Dsd s = dsd(layout.scratch2);
    e.fadds(s, dsd(layout.lambda), lhalo);
    e.fmuls_imm(s, s, 0.5f);
    e.fmuls(s, coef, s);
    e.fsubs(d, x, halo);
    e.fmacs(q, q, s, d);
  }
}

void fix_dirichlet_rows(PeContext& ctx, const PeLayout& layout) {
  // Eq. (6) Dirichlet rows: (Jx)_K = x_K. The lateral/vertical garbage the
  // branch-free kernel accumulated into pinned rows is overwritten here.
  auto& e = ctx.dsd();
  for (u32 i = 0; i < layout.dirichlet_count; ++i) {
    const u32 lo = e.load_byte(layout.dirichlet_list.offset_words + 2 * i);
    const u32 hi = e.load_byte(layout.dirichlet_list.offset_words + 2 * i + 1);
    const u32 z = lo | (hi << 8);
    const f32 xz = e.load(layout.x.offset_words + z);
    e.store(layout.q.offset_words + z, xz);
  }
}

void zero_dirichlet_entries(PeContext& ctx, const PeLayout& layout,
                            const wse::MemSpan& span) {
  auto& e = ctx.dsd();
  for (u32 i = 0; i < layout.dirichlet_count; ++i) {
    const u32 lo = e.load_byte(layout.dirichlet_list.offset_words + 2 * i);
    const u32 hi = e.load_byte(layout.dirichlet_list.offset_words + 2 * i + 1);
    e.store(span.offset_words + (lo | (hi << 8)), 0.0f);
  }
}

// --------------------------------------------------------------------------
// Bytecode mirrors. Each emitter produces the exact charged-op sequence of
// its execute-now counterpart above.
// --------------------------------------------------------------------------

namespace bc = wse::bc;

void emit_z_flux(bc::Builder& b, const PeLayout& layout, FluxMode mode) {
  const u32 nz = layout.nz;
  b.vmovi(b.dsd(dsd(layout.q)), 0.0f);
  if (nz == 1) return;

  const u8 x_lo = b.dsd(dsd(layout.x, 0, nz - 1));
  const u8 x_hi = b.dsd(dsd(layout.x, 1, nz - 1));
  const u8 q_lo = b.dsd(dsd(layout.q, 0, nz - 1));
  const u8 q_hi = b.dsd(dsd(layout.q, 1, nz - 1));
  const u8 d_lo = b.dsd(dsd(layout.d, 0, nz - 1));
  const u8 cz = b.dsd(dsd(layout.cz));

  if (mode == FluxMode::Fused) {
    b.vsub(d_lo, x_lo, x_hi);
    b.vmac(q_lo, q_lo, cz, d_lo);
    b.vneg(d_lo, d_lo);
    b.vmac(q_hi, q_hi, cz, d_lo);
  } else {
    const u8 l_lo = b.dsd(dsd(layout.lambda, 0, nz - 1));
    const u8 l_hi = b.dsd(dsd(layout.lambda, 1, nz - 1));
    const u8 s_lo = b.dsd(dsd(layout.scratch2, 0, nz - 1));
    b.vadd(s_lo, l_lo, l_hi);
    b.vmuli(s_lo, s_lo, 0.5f);
    b.vmul(s_lo, cz, s_lo);
    b.vsub(d_lo, x_lo, x_hi);
    b.vmac(q_lo, q_lo, s_lo, d_lo);
    b.vneg(d_lo, d_lo);
    b.vmac(q_hi, q_hi, s_lo, d_lo);
  }
}

void emit_face_flux(bc::Builder& b, const PeLayout& layout, FluxMode mode,
                    Dir dir) {
  Dsd coef{}, halo{}, lhalo{};
  switch (dir) {
  case Dir::West: coef = dsd(layout.cw); halo = dsd(layout.halo_w); lhalo = dsd(layout.lh_w); break;
  case Dir::East: coef = dsd(layout.ce); halo = dsd(layout.halo_e); lhalo = dsd(layout.lh_e); break;
  case Dir::South: coef = dsd(layout.cs); halo = dsd(layout.halo_s); lhalo = dsd(layout.lh_s); break;
  case Dir::North: coef = dsd(layout.cn); halo = dsd(layout.halo_n); lhalo = dsd(layout.lh_n); break;
  case Dir::Ramp: throw Error("flux: invalid direction");
  }
  const u8 x = b.dsd(dsd(layout.x));
  const u8 q = b.dsd(dsd(layout.q));
  const u8 d = b.dsd(dsd(layout.d));
  const u8 c = b.dsd(coef);
  const u8 h = b.dsd(halo);
  if (mode == FluxMode::Fused) {
    b.vsub(d, x, h);
    b.vmac(q, q, c, d);
  } else {
    const u8 s = b.dsd(dsd(layout.scratch2));
    b.vadd(s, b.dsd(dsd(layout.lambda)), b.dsd(lhalo));
    b.vmuli(s, s, 0.5f);
    b.vmul(s, c, s);
    b.vsub(d, x, h);
    b.vmac(q, q, s, d);
  }
}

void emit_fix_dirichlet_rows(bc::Builder& b, const PeLayout& layout) {
  if (layout.dirichlet_count == 0) return;
  b.fixd(b.dsd(dsd(layout.x)), b.dsd(dsd(layout.q)), layout.dirichlet_count,
         layout.dirichlet_list.offset_words);
}

void emit_zero_dirichlet_entries(bc::Builder& b, const PeLayout& layout,
                                 const wse::MemSpan& span) {
  if (layout.dirichlet_count == 0) return;
  b.zdir(b.dsd(dsd(span)), layout.dirichlet_count,
         layout.dirichlet_list.offset_words);
}

} // namespace fvdf::core
