#include "core/mapping.hpp"

#include "common/error.hpp"

namespace fvdf::core {

const char* to_string(FluxMode mode) {
  switch (mode) {
  case FluxMode::Fused: return "fused";
  case FluxMode::OnTheFly: return "on-the-fly";
  }
  return "?";
}

const char* to_string(LayoutKind kind) {
  switch (kind) {
  case LayoutKind::Optimized: return "optimized (fused coefficients, buffer reuse)";
  case LayoutKind::OnTheFly: return "on-the-fly mobility averaging";
  case LayoutKind::Naive: return "naive (no sharing, duplicated buffers)";
  }
  return "?";
}

PeLayout PeLayout::plan(wse::PeMemory& mem, u32 nz, FluxMode mode,
                        u32 dirichlet_count, bool jacobi, bool with_source) {
  FVDF_CHECK(nz >= 1);
  FVDF_CHECK(dirichlet_count <= nz);
  PeLayout layout;
  layout.nz = nz;
  layout.mode = mode;
  layout.dirichlet_count = dirichlet_count;

  // Allocation order is the contract between device program and host
  // driver — do not reorder without updating both.
  layout.cw = mem.alloc_f32("coef.west", nz);
  layout.ce = mem.alloc_f32("coef.east", nz);
  layout.cs = mem.alloc_f32("coef.south", nz);
  layout.cn = mem.alloc_f32("coef.north", nz);
  if (nz > 1) layout.cz = mem.alloc_f32("coef.z", nz - 1);

  if (mode == FluxMode::OnTheFly) {
    layout.lambda = mem.alloc_f32("mobility", nz);
    layout.lh_w = mem.alloc_f32("mobility.halo_w", nz);
    layout.lh_e = mem.alloc_f32("mobility.halo_e", nz);
    layout.lh_s = mem.alloc_f32("mobility.halo_s", nz);
    layout.lh_n = mem.alloc_f32("mobility.halo_n", nz);
    layout.scratch2 = mem.alloc_f32("scratch.s", nz);
  }

  layout.x = mem.alloc_f32("cg.x", nz);
  layout.r = mem.alloc_f32("cg.r", nz);
  layout.ysol = mem.alloc_f32("cg.y", nz);
  layout.q = mem.alloc_f32("cg.q", nz);
  layout.d = mem.alloc_f32("scratch.d", nz);

  if (jacobi) {
    layout.minv = mem.alloc_f32("pcg.minv", nz);
    layout.z = mem.alloc_f32("pcg.z", nz);
  }
  if (with_source) layout.source = mem.alloc_f32("well.source", nz);

  layout.halo_w = mem.alloc_f32("halo.west", nz);
  layout.halo_e = mem.alloc_f32("halo.east", nz);
  layout.halo_s = mem.alloc_f32("halo.south", nz);
  layout.halo_n = mem.alloc_f32("halo.north", nz);

  if (dirichlet_count > 0)
    layout.dirichlet_list = mem.alloc_bytes("dirichlet.z", 2 * dirichlet_count);

  layout.result = mem.alloc_f32("result", 3);
  return layout;
}

u64 PeLayout::naive_bytes(u32 nz, u32 dirichlet_count) {
  // The straightforward port: six transmissibility arrays (both z-face
  // directions stored), mobility + 4 halos, two scratches, a preserved
  // initial-pressure buffer and a separate initial-residual buffer on top
  // of the OnTheFly solver state.
  const u64 arrays = 6 /*T*/ + 5 /*lambda + halos*/ + 2 /*scratch*/ +
                     4 /*cg state*/ + 4 /*halo*/ + 1 /*p0 copy*/ + 1 /*r0 copy*/;
  return arrays * 4ull * nz + 2ull * dirichlet_count + 3 * 4;
}

FitResult check_fit(LayoutKind kind, u32 nz, u64 capacity_bytes, u64 reserved_bytes,
                    u32 dirichlet_count) {
  FitResult result;
  FVDF_CHECK(reserved_bytes < capacity_bytes);
  result.bytes_available = capacity_bytes - reserved_bytes;
  if (kind == LayoutKind::Naive) {
    result.bytes_needed = PeLayout::naive_bytes(nz, dirichlet_count);
    result.fits = result.bytes_needed <= result.bytes_available;
    return result;
  }
  const FluxMode mode =
      (kind == LayoutKind::Optimized) ? FluxMode::Fused : FluxMode::OnTheFly;
  // Dry-run the real planner (plus the all-reduce component's two scalar
  // slots allocated at configure time).
  try {
    wse::PeMemory probe(capacity_bytes, reserved_bytes);
    (void)PeLayout::plan(probe, nz, mode, dirichlet_count);
    (void)probe.alloc_f32("allreduce.value", 1);
    (void)probe.alloc_f32("allreduce.in", 1);
    result.bytes_needed = probe.used_bytes();
    result.fits = true;
  } catch (const Error&) {
    // Overflow: recompute the need with an oversized probe for reporting.
    wse::PeMemory probe(static_cast<u64>(nz) * 256 + 65536, 0);
    (void)PeLayout::plan(probe, nz, mode, dirichlet_count);
    (void)probe.alloc_f32("allreduce.value", 1);
    (void)probe.alloc_f32("allreduce.in", 1);
    result.bytes_needed = probe.used_bytes();
    result.fits = false;
  }
  return result;
}

u32 max_nz(LayoutKind kind, u64 capacity_bytes, u64 reserved_bytes,
           u32 dirichlet_count) {
  u32 lo = 1, hi = 8192;
  if (!check_fit(kind, lo, capacity_bytes, reserved_bytes, dirichlet_count).fits)
    return 0;
  while (check_fit(kind, hi, capacity_bytes, reserved_bytes, dirichlet_count).fits)
    hi *= 2;
  while (lo + 1 < hi) {
    const u32 mid = lo + (hi - lo) / 2;
    if (check_fit(kind, mid, capacity_bytes, reserved_bytes,
                  std::min(dirichlet_count, mid))
            .fits)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

} // namespace fvdf::core
