#include "core/bytecode_program.hpp"

#include <optional>

#include "common/error.hpp"
#include "core/flux_kernels.hpp"
#include "csl/lowering.hpp"
#include "telemetry/phase.hpp"
#include "wse/bytecode_interp.hpp"

namespace fvdf::core {

using wse::Dir;
using wse::Dsd;
using wse::dsd;
using wse::PeContext;
namespace bc = wse::bc;

namespace {

constexpr u8 kSetup = static_cast<u8>(telemetry::Phase::Setup);
constexpr u8 kHalo = static_cast<u8>(telemetry::Phase::Halo);
constexpr u8 kFlux = static_cast<u8>(telemetry::Phase::Flux);
constexpr u8 kLocalDot = static_cast<u8>(telemetry::Phase::LocalDot);
constexpr u8 kAxpy = static_cast<u8>(telemetry::Phase::Axpy);
constexpr u8 kCheck = static_cast<u8>(telemetry::Phase::Check);
constexpr u8 kDone = static_cast<u8>(telemetry::Phase::Done);

// Register conventions shared by both lowerings (see csl/lowering.hpp for
// the collective registers f0-f3, u0 and the continuation registers):
//   c0  halo done continuation        u0  halo step join
//   c1  all-reduce done continuation  u1  Chebyshev probe countdown
//   f4  rr_      f5  rr_new_ (CG) / rr0_ (Chebyshev)
//   f6  alpha/beta (CG) / rho_ (Chebyshev)
//   f7+ scratch

/// The DONE block shared by both programs: publish {k, converged, rr} to
/// the result scalars (uncharged host-visible stores, like the legacy
/// finish) and halt.
void emit_finish(bc::Builder& b, const PeLayout& layout, f32 converged_flag) {
  b.phase(kDone);
  b.uk2f(7);
  b.rstore(7, layout.result.offset_words + 0);
  b.umovi(7, converged_flag);
  b.rstore(7, layout.result.offset_words + 1);
  b.rstore(4, layout.result.offset_words + 2);
  b.halt();
  b.ret();
}

} // namespace

// ---------------------------------------------------------------------------
// Cache + site planning
// ---------------------------------------------------------------------------

ProgramCache::Key ProgramCache::key_for(const LoweringSite& site) {
  const auto& c = site.coord;
  u32 bits = 0;
  if (c.x % 2 != 0) bits |= 1u;
  if (c.y % 2 != 0) bits |= 2u;
  if (c.x == 0) bits |= 4u;
  if (c.x == site.width - 1) bits |= 8u;
  if (c.y == 0) bits |= 16u;
  if (c.y == site.height - 1) bits |= 32u;
  // dirichlet_count pins the layout shape; slot_value guards against any
  // allocation divergence not already covered by the other components.
  return {bits, site.layout.dirichlet_count, site.slot_value};
}

std::shared_ptr<const bc::Program>
ProgramCache::get_or_lower(const Key& key, const Lower& lower) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = programs_[key];
  if (!slot) slot = lower();
  return slot;
}

LoweringSite plan_site(wse::PeCoord coord, i64 width, i64 height,
                       const wse::PeMemoryParams& mem, u32 nz, FluxMode mode,
                       u32 dirichlet_count, bool jacobi, bool with_source) {
  LoweringSite site;
  site.coord = coord;
  site.width = width;
  site.height = height;
  // Replay on_start's exact allocation sequence (PeLayout::plan, then the
  // AllReduce slots) against a probe arena: the real run's offsets follow
  // deterministically from the same inputs.
  wse::PeMemory probe(mem.capacity_bytes, mem.reserved_bytes);
  site.layout = PeLayout::plan(probe, nz, mode, dirichlet_count, jacobi,
                               with_source);
  site.slot_value = probe.alloc_f32("allreduce.value", 1).offset_words;
  site.slot_in = probe.alloc_f32("allreduce.in", 1).offset_words;
  return site;
}

// ---------------------------------------------------------------------------
// CG lowering
// ---------------------------------------------------------------------------

std::shared_ptr<const bc::Program> lower_cg(const CgPeConfig& config,
                                            const LoweringSite& site) {
  bc::Builder b("cg");
  const PeLayout& L = site.layout;
  const bool otf = config.mode == FluxMode::OnTheFly;

  csl::ReduceEmitter reduce(
      b, site.coord, site.width, site.height,
      {site.reduce_colors, site.slot_value, site.slot_in, /*cont_reg=*/1});

  csl::FaceEmit face = [&config, &L](bc::Builder& bb, Dir dir) {
    bb.phase(kFlux); // enter(ComputeJx)
    emit_face_flux(bb, L, config.mode, dir);
    bb.phase(kHalo); // back to waiting on the exchange
  };
  csl::HaloEmitter main_halo(
      b, site.coord, site.width, site.height,
      {site.halo_colors, dsd(L.x), dsd(L.halo_w), dsd(L.halo_e),
       dsd(L.halo_s), dsd(L.halo_n), face, /*cont_reg=*/0,
       /*pending_ureg=*/0});
  std::optional<csl::HaloEmitter> lambda_halo;
  if (otf) {
    lambda_halo.emplace(
        b, site.coord, site.width, site.height,
        csl::HaloEmitter::Spec{site.halo_colors, dsd(L.lambda), dsd(L.lh_w),
                               dsd(L.lh_e), dsd(L.lh_s), dsd(L.lh_n),
                               /*face=*/nullptr, /*cont_reg=*/0,
                               /*pending_ureg=*/0});
  }

  const u8 dr = b.dsd(dsd(L.r));
  const u8 dq = b.dsd(dsd(L.q));
  const u8 dx = b.dsd(dsd(L.x));
  const u8 dy = b.dsd(dsd(L.ysol));
  const u8 dz = b.dsd(config.jacobi ? dsd(L.z) : dsd(L.r)); // z_view
  const u8 dsrc = L.source.length != 0 ? b.dsd(dsd(L.source)) : 0;
  const u8 dminv = config.jacobi ? b.dsd(dsd(L.minv)) : 0;

  const auto entry = b.make_label();
  const auto main_first = b.make_label(); // OnTheFly: after the lambda pass
  const auto halo_jx = b.make_label();    // start_halo_jx
  const auto first_cont = b.make_label(); // init_residual / jx-pass done
  const auto iter_check = b.make_label();
  const auto after_rr0 = b.make_label();
  const auto after_iter = b.make_label(); // finalize_jx
  const auto after_xjx = b.make_label();  // update_solution
  const auto after_rr = b.make_label();   // thres_check
  const auto conv = b.make_label();
  const auto fin_ok = b.make_label();
  const auto fin_fail = b.make_label();
  const u32 kmax = b.konst(config.max_iterations);

  // --- entry (the post-setup tail of on_start) ---
  b.bind(entry);
  b.set_entry(entry);
  reduce.emit_handler_bindings();
  if (otf) {
    // The mobility columns go around once before the first Jx pass.
    b.phase(kHalo); // enter(HaloExchange)
    b.setc(0, main_first);
    lambda_halo->emit_start();
    b.ret();
    b.bind(main_first);
  }
  b.setc(0, first_cont);
  b.jmp(halo_jx);

  // --- start_halo_jx: launch the exchange, overlap the z-flux ---
  b.bind(halo_jx);
  b.phase(kHalo); // enter(HaloExchange)
  main_halo.emit_start();
  b.phase(kFlux);
  emit_z_flux(b, L, config.mode);
  b.phase(kHalo);
  b.ret();

  if (config.jx_only) {
    // Alg. 2 scaling mode: halo + flux forever, one KINC per pass.
    b.bind(first_cont);
    b.kinc();
    b.bind(iter_check);
    b.phase(kCheck);
    b.jkge(kmax, fin_fail);
    b.setc(0, first_cont);
    b.jmp(halo_jx);
  } else {
    // --- init_residual: r0 = q_src - J p0, x0 = (M^-1) r0 ---
    b.bind(first_cont);
    b.phase(kAxpy);
    emit_fix_dirichlet_rows(b, L);
    b.vneg(dr, dq);
    if (L.source.length != 0) b.vadd(dr, dr, dsrc);
    emit_zero_dirichlet_entries(b, L, L.r);
    if (config.jacobi) b.vmul(b.dsd(dsd(L.z)), dminv, dr);
    b.vmov(dx, dz);
    b.phase(kLocalDot); // enter(ReduceRr0)
    b.vdot(0, dr, dz);
    b.setc(1, after_rr0);
    b.jmp(reduce.start_label());

    b.bind(after_rr0);
    b.movr(4, 0);      // rr_ = total
    b.progress(0, 0);  // the k = 0 residual

    // --- iter_check (Alg. 1 line 4 + exact-convergence guard) ---
    b.bind(iter_check);
    b.phase(kCheck);
    b.jtol(4, config.tolerance, fin_ok);
    b.jkge(kmax, fin_fail);
    b.setc(0, after_iter);
    b.jmp(halo_jx);

    // --- finalize_jx: Dirichlet rows of q, local x^T Jx ---
    b.bind(after_iter);
    b.phase(kLocalDot);
    if (config.diagonal_shift != 0.0f)
      b.vmaci(dq, dq, dx, config.diagonal_shift);
    emit_fix_dirichlet_rows(b, L);
    b.vdot(0, dx, dq);
    b.phase(kLocalDot); // enter(ReduceXjx)
    b.setc(1, after_xjx);
    b.jmp(reduce.start_label());

    // --- update_solution: alpha; y += alpha x; r -= alpha Jx ---
    b.bind(after_xjx);
    b.phase(kAxpy);
    b.chkpos(0);
    b.urcp(6, 0);
    b.smul(6, 4, 6); // alpha = fmuls_scalar(rr_, 1/xjx)
    b.vmacr(dy, dy, dx, 6);
    b.uneg(7, 6);
    b.vmacr(dr, dr, dq, 7);
    if (config.jacobi) b.vmul(b.dsd(dsd(L.z)), dminv, dr);
    b.phase(kLocalDot); // enter(ReduceRr)
    b.vdot(0, dr, dz);
    b.setc(1, after_rr);
    b.jmp(reduce.start_label());

    // --- thres_check (line 8) + update_direction (lines 9-10) ---
    b.bind(after_rr);
    b.movr(5, 0);     // rr_new_
    b.phase(kCheck);
    b.progress(5, 1); // the residual of the k+1 iterate
    b.jtol(5, config.tolerance, conv);
    b.phase(kAxpy);
    b.urcp(6, 4);
    b.smul(6, 5, 6); // beta = fmuls_scalar(rr_new_, 1/rr_)
    b.vmulr(dx, dx, 6);
    b.vadd(dx, dx, dz);
    b.phase(kCheck); // enter(LoopIncrement)
    b.movr(4, 5);
    b.kinc();
    b.jmp(iter_check);

    b.bind(conv);
    b.movr(4, 5);
    b.kinc();
    b.jmp(fin_ok);

    b.bind(fin_ok);
    emit_finish(b, L, 1.0f);
  }
  b.bind(fin_fail);
  emit_finish(b, L, 0.0f);

  main_halo.emit_handlers();
  if (lambda_halo) lambda_halo->emit_handlers();
  reduce.emit_blocks();

  return std::make_shared<const bc::Program>(b.finish());
}

// ---------------------------------------------------------------------------
// Chebyshev lowering
// ---------------------------------------------------------------------------

std::shared_ptr<const bc::Program>
lower_chebyshev(const ChebyshevPeConfig& config, const LoweringSite& site) {
  bc::Builder b("chebyshev");
  const PeLayout& L = site.layout;
  const bool otf = config.mode == FluxMode::OnTheFly;

  // Recurrence scalars, computed exactly as the legacy constructor does.
  const f32 theta = 0.5f * (config.lambda_max + config.lambda_min);
  const f32 delta = 0.5f * (config.lambda_max - config.lambda_min);
  const f32 sigma = theta / delta;
  const f32 rho0 = 1.0f / sigma;

  csl::ReduceEmitter reduce(
      b, site.coord, site.width, site.height,
      {site.reduce_colors, site.slot_value, site.slot_in, /*cont_reg=*/1});

  csl::FaceEmit face = [&config, &L](bc::Builder& bb, Dir dir) {
    bb.phase(kFlux);
    emit_face_flux(bb, L, config.mode, dir);
    bb.phase(kHalo); // back to waiting on the exchange
  };
  csl::HaloEmitter main_halo(
      b, site.coord, site.width, site.height,
      {site.halo_colors, dsd(L.x), dsd(L.halo_w), dsd(L.halo_e),
       dsd(L.halo_s), dsd(L.halo_n), face, /*cont_reg=*/0,
       /*pending_ureg=*/0});
  std::optional<csl::HaloEmitter> lambda_halo;
  if (otf) {
    lambda_halo.emplace(
        b, site.coord, site.width, site.height,
        csl::HaloEmitter::Spec{site.halo_colors, dsd(L.lambda), dsd(L.lh_w),
                               dsd(L.lh_e), dsd(L.lh_s), dsd(L.lh_n),
                               /*face=*/nullptr, /*cont_reg=*/0,
                               /*pending_ureg=*/0});
  }

  const u8 dr = b.dsd(dsd(L.r));
  const u8 dq = b.dsd(dsd(L.q));
  const u8 dx = b.dsd(dsd(L.x));
  const u8 dy = b.dsd(dsd(L.ysol));
  const u8 dsrc = L.source.length != 0 ? b.dsd(dsd(L.source)) : 0;

  const auto entry = b.make_label();
  const auto main_first = b.make_label();
  const auto halo_jx = b.make_label();
  const auto after_init = b.make_label();       // after_init_flux
  const auto after_init_probe = b.make_label();
  const auto after_iter = b.make_label();       // after_iter_flux
  const auto no_mod = b.make_label();           // countdown not expired
  const auto probe = b.make_label();
  const auto after_probe = b.make_label();
  const auto fin_ok = b.make_label();
  const auto fin_fail = b.make_label();
  const u32 kmax = b.konst(config.max_iterations);

  // --- entry ---
  b.bind(entry);
  b.set_entry(entry);
  reduce.emit_handler_bindings();
  b.umovi(9, 2.0f); // constant operand of the charged 2*sigma product
  b.umovi(6, rho0); // rho_
  b.setu(1, config.check_every);
  if (otf) {
    b.setc(0, main_first);
    lambda_halo->emit_start();
    b.ret();
    b.bind(main_first);
  }
  b.setc(0, after_init);
  b.jmp(halo_jx);

  // --- start_halo_jx (no extra phase mark, unlike CG's enter()) ---
  b.bind(halo_jx);
  main_halo.emit_start();
  b.phase(kFlux);
  emit_z_flux(b, L, config.mode);
  b.phase(kHalo);
  b.ret();

  // --- after_init_flux: r0 = q_src - J p0, d0 = r0 / theta ---
  b.bind(after_init);
  b.phase(kAxpy);
  emit_fix_dirichlet_rows(b, L);
  b.vneg(dr, dq);
  if (L.source.length != 0) b.vadd(dr, dr, dsrc);
  emit_zero_dirichlet_entries(b, L, L.r);
  b.vmuli(dx, dr, 1.0f / theta);
  b.phase(kLocalDot);
  b.vdot(0, dr, dr);
  b.setc(1, after_init_probe);
  b.jmp(reduce.start_label());

  b.bind(after_init_probe);
  b.movr(5, 0); // rr0_
  b.movr(4, 0); // rr_
  b.phase(kCheck);
  b.progress(4, 0);
  b.jtol(4, config.tolerance, fin_ok);
  b.setc(0, after_iter);
  b.jmp(halo_jx);

  // --- after_iter_flux: y += d; r -= q; d-recurrence ---
  b.bind(after_iter);
  b.phase(kLocalDot);
  if (config.diagonal_shift != 0.0f)
    b.vmaci(dq, dq, dx, config.diagonal_shift);
  emit_fix_dirichlet_rows(b, L);
  b.phase(kAxpy);
  b.vadd(dy, dy, dx);
  b.vmaci(dr, dr, dq, -1.0f);
  b.smuli(8, 9, sigma);  // charged fmuls_scalar(2.0f, sigma_)
  b.usub(8, 8, 6);
  b.urcp(8, 8);          // rho_next
  b.umul(10, 8, 6);      // rho_next * rho_
  b.vmulr(dx, dx, 10);
  b.umuli(11, 8, 2.0f);  // 2 * rho_next
  b.udivi(11, 11, delta);
  b.vmacr(dx, dx, dr, 11);
  b.movr(6, 8); // rho_ = rho_next
  b.kinc();
  // next_or_probe: k % check_every == 0 (countdown) or k >= max.
  b.decjnz(1, no_mod);
  b.setu(1, config.check_every);
  b.jmp(probe);
  b.bind(no_mod);
  b.jkge(kmax, probe);
  b.setc(0, after_iter);
  b.jmp(halo_jx);

  // --- convergence probe ---
  b.bind(probe);
  b.phase(kLocalDot);
  b.vdot(0, dr, dr);
  b.setc(1, after_probe);
  b.jmp(reduce.start_label());

  b.bind(after_probe);
  b.movr(4, 0); // rr_
  b.phase(kCheck);
  b.progress(4, 0);
  b.jtol(4, config.tolerance, fin_ok);
  b.jkge(kmax, fin_fail);
  b.umuli(7, 5, config.divergence_factor); // divergence_factor * rr0_
  b.jgtr(4, 7, fin_fail);
  b.setc(0, after_iter);
  b.jmp(halo_jx);

  b.bind(fin_ok);
  emit_finish(b, L, 1.0f);
  b.bind(fin_fail);
  emit_finish(b, L, 0.0f);

  main_halo.emit_handlers();
  if (lambda_halo) lambda_halo->emit_handlers();
  reduce.emit_blocks();

  return std::make_shared<const bc::Program>(b.finish());
}

// ---------------------------------------------------------------------------
// PeProgram wrappers
// ---------------------------------------------------------------------------

BytecodeCgProgram::BytecodeCgProgram(CgPeConfig config, wse::PeCoord coord,
                                     i64 width, i64 height,
                                     const wse::PeMemoryParams& mem,
                                     std::shared_ptr<ProgramCache> cache)
    : config_(std::move(config)) {
  FVDF_CHECK(config_.nz >= 1);
  FVDF_CHECK(config_.init.p0.size() == config_.nz);
  site_ = plan_site(coord, width, height, mem, config_.nz, config_.mode,
                    static_cast<u32>(config_.init.dirichlet_z.size()),
                    config_.jacobi, !config_.init.source.empty());
  program_ = cache->get_or_lower(ProgramCache::key_for(site_),
                                 [&] { return lower_cg(config_, site_); });
}

void BytecodeCgProgram::on_start(PeContext& ctx) {
  ctx.mark_phase(kSetup); // enter(Init)
  const PeLayout layout = PeLayout::plan(
      ctx.memory(), config_.nz, config_.mode,
      static_cast<u32>(config_.init.dirichlet_z.size()), config_.jacobi,
      !config_.init.source.empty());
  halo_.configure(ctx);
  reduce_.configure(ctx);
  // The program was lowered against a probe arena; the real allocation
  // sequence just ran and must land every offset in the same place.
  FVDF_CHECK_MSG(layout.x.offset_words == site_.layout.x.offset_words &&
                     reduce_.slot_value().offset_words == site_.slot_value &&
                     reduce_.slot_in().offset_words == site_.slot_in,
                 "bytecode CG program: probe layout diverged from the arena");
  upload_pe_init(ctx, layout, config_.init, config_.mode, config_.jacobi);
  bc::run(ctx, vm_, *program_, program_->entry);
}

void BytecodeCgProgram::on_task(PeContext& ctx, wse::Color color) {
  const u16 pc = vm_.handler[color];
  FVDF_CHECK_MSG(pc != bc::kNoPc, "CG program: unexpected task color "
                                      << static_cast<int>(color));
  bc::run(ctx, vm_, *program_, pc);
}

wse::ProgramManifest BytecodeCgProgram::manifest(wse::PeCoord, i64, i64) const {
  // The instruction stream is the single source of truth.
  return bc::derive_manifest(*program_);
}

BytecodeChebyshevProgram::BytecodeChebyshevProgram(
    ChebyshevPeConfig config, wse::PeCoord coord, i64 width, i64 height,
    const wse::PeMemoryParams& mem, std::shared_ptr<ProgramCache> cache)
    : config_(std::move(config)) {
  FVDF_CHECK(config_.nz >= 1);
  FVDF_CHECK_MSG(config_.lambda_max > config_.lambda_min &&
                     config_.lambda_min > 0,
                 "Chebyshev needs valid spectral bounds");
  FVDF_CHECK(config_.check_every >= 1);
  site_ = plan_site(coord, width, height, mem, config_.nz, config_.mode,
                    static_cast<u32>(config_.init.dirichlet_z.size()),
                    /*jacobi=*/false, !config_.init.source.empty());
  program_ =
      cache->get_or_lower(ProgramCache::key_for(site_),
                          [&] { return lower_chebyshev(config_, site_); });
}

void BytecodeChebyshevProgram::on_start(PeContext& ctx) {
  ctx.mark_phase(kSetup);
  const PeLayout layout = PeLayout::plan(
      ctx.memory(), config_.nz, config_.mode,
      static_cast<u32>(config_.init.dirichlet_z.size()),
      /*jacobi=*/false, !config_.init.source.empty());
  halo_.configure(ctx);
  reduce_.configure(ctx);
  FVDF_CHECK_MSG(layout.x.offset_words == site_.layout.x.offset_words &&
                     reduce_.slot_value().offset_words == site_.slot_value &&
                     reduce_.slot_in().offset_words == site_.slot_in,
                 "bytecode Chebyshev program: probe layout diverged");
  upload_pe_init(ctx, layout, config_.init, config_.mode, /*jacobi=*/false);
  bc::run(ctx, vm_, *program_, program_->entry);
}

void BytecodeChebyshevProgram::on_task(PeContext& ctx, wse::Color color) {
  const u16 pc = vm_.handler[color];
  FVDF_CHECK_MSG(pc != bc::kNoPc, "Chebyshev program: unexpected task color "
                                      << static_cast<int>(color));
  bc::run(ctx, vm_, *program_, pc);
}

wse::ProgramManifest BytecodeChebyshevProgram::manifest(wse::PeCoord, i64,
                                                        i64) const {
  return bc::derive_manifest(*program_);
}

} // namespace fvdf::core
