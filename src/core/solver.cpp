#include "core/solver.hpp"

#include "analysis/host_annotate.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "core/bytecode_program.hpp"
#include "core/chebyshev_program.hpp"
#include "core/pe_program.hpp"
#include "fv/diagonal.hpp"
#include "telemetry/session.hpp"

namespace fvdf::core {

namespace {

// Face coefficient for cell (x,y,z) toward the given fabric direction:
// Upsilon (raw) or Upsilon * lambda_avg (fused). Fabric directions:
// West = x-1, East = x+1, South = y+1, North = y-1 (paper orientation).
struct CoefBuilder {
  const DiscreteSystem<f32>& sys;
  FluxMode mode;

  f32 lateral(i64 x, i64 y, i64 z, i64 dx, i64 dy) const {
    const i64 nx = sys.nx, ny = sys.ny;
    const i64 xn = x + dx, yn = y + dy;
    if (xn < 0 || xn >= nx || yn < 0 || yn >= ny) return 0.0f;
    f32 ups;
    if (dx != 0) {
      const i64 lo_x = std::min(x, xn);
      ups = sys.tx[static_cast<std::size_t>((z * ny + y) * (nx - 1) + lo_x)];
    } else {
      const i64 lo_y = std::min(y, yn);
      ups = sys.ty[static_cast<std::size_t>((z * (ny - 1) + lo_y) * nx + x)];
    }
    if (mode == FluxMode::OnTheFly) return ups;
    const auto k = static_cast<std::size_t>((z * ny + y) * nx + x);
    const auto l = static_cast<std::size_t>((z * ny + yn) * nx + xn);
    return ups * 0.5f * (sys.lambda[k] + sys.lambda[l]);
  }

  f32 vertical(i64 x, i64 y, i64 z) const {
    // Between (x,y,z) and (x,y,z+1).
    const i64 nx = sys.nx, ny = sys.ny;
    const f32 ups = sys.tz[static_cast<std::size_t>((z * ny + y) * nx + x)];
    if (mode == FluxMode::OnTheFly) return ups;
    const auto k = static_cast<std::size_t>((z * ny + y) * nx + x);
    const auto l = static_cast<std::size_t>(((z + 1) * ny + y) * nx + x);
    return ups * 0.5f * (sys.lambda[k] + sys.lambda[l]);
  }
};

} // namespace

PeInit build_pe_init(const FlowProblem& problem, const DiscreteSystem<f32>& sys,
                     i64 x, i64 y, FluxMode mode, const std::vector<f32>* minv,
                     const std::vector<f64>* p0_override) {
  const i64 nx = sys.nx, ny = sys.ny, nz = sys.nz;
  FVDF_CHECK(x >= 0 && x < nx && y >= 0 && y < ny);
  const CoefBuilder coef{sys, mode};

  PeInit init;
  init.cw.resize(static_cast<std::size_t>(nz));
  init.ce.resize(static_cast<std::size_t>(nz));
  init.cs.resize(static_cast<std::size_t>(nz));
  init.cn.resize(static_cast<std::size_t>(nz));
  if (nz > 1) init.cz.resize(static_cast<std::size_t>(nz - 1));
  init.p0.resize(static_cast<std::size_t>(nz));
  if (mode == FluxMode::OnTheFly) init.lambda.resize(static_cast<std::size_t>(nz));
  if (minv) init.minv.resize(static_cast<std::size_t>(nz));
  if (!sys.source.empty()) init.source.resize(static_cast<std::size_t>(nz));

  const std::vector<f64> p0 =
      p0_override ? *p0_override : problem.initial_pressure();
  FVDF_CHECK(p0.size() == static_cast<std::size_t>(sys.cell_count()));
  for (i64 z = 0; z < nz; ++z) {
    const auto zi = static_cast<std::size_t>(z);
    const auto k = static_cast<std::size_t>((z * ny + y) * nx + x);
    init.cw[zi] = coef.lateral(x, y, z, -1, 0);
    init.ce[zi] = coef.lateral(x, y, z, +1, 0);
    init.cs[zi] = coef.lateral(x, y, z, 0, +1); // fabric south = y+1
    init.cn[zi] = coef.lateral(x, y, z, 0, -1); // fabric north = y-1
    if (z < nz - 1) init.cz[zi] = coef.vertical(x, y, z);
    init.p0[zi] = static_cast<f32>(p0[k]);
    if (mode == FluxMode::OnTheFly) init.lambda[zi] = sys.lambda[k];
    if (minv) init.minv[zi] = (*minv)[k];
    if (!sys.source.empty()) init.source[zi] = sys.source[k];
    if (sys.dirichlet[k]) init.dirichlet_z.push_back(static_cast<u16>(z));
  }
  return init;
}

namespace {

// Shared host-side readback: walks every PE, re-plans its layout, and
// copies the solution delta + result scalars out of the arena.
DataflowResult read_back(wse::Fabric& fabric, const wse::Fabric::RunResult& run,
                         const FlowProblem& problem, const DiscreteSystem<f32>& sys,
                         FluxMode flux_mode, bool jacobi,
                         const wse::PeMemoryParams& mem_params,
                         const std::vector<f64>& initial_field) {
  const auto& mesh = problem.mesh();
  const i64 nx = mesh.nx(), ny = mesh.ny(), nz = mesh.nz();

  DataflowResult result;
  result.device_cycles = run.cycles;
  result.device_seconds = fabric.seconds(run.cycles);
  result.fabric = fabric.stats();
  result.counters = fabric.total_counters();

  const auto n = static_cast<std::size_t>(mesh.cell_count());
  result.delta.assign(n, 0.0f);
  result.pressure.assign(n, 0.0f);
  const std::vector<f64> p0 =
      initial_field.empty() ? problem.initial_pressure() : initial_field;

  bool first = true;
  for (i64 y = 0; y < ny; ++y) {
    for (i64 x = 0; x < nx; ++x) {
      u32 dcount = 0;
      for (i64 z = 0; z < nz; ++z)
        if (sys.dirichlet[static_cast<std::size_t>((z * ny + y) * nx + x)]) ++dcount;
      wse::PeMemory probe(mem_params.capacity_bytes, mem_params.reserved_bytes);
      const PeLayout layout = PeLayout::plan(probe, static_cast<u32>(nz), flux_mode,
                                             dcount, jacobi, !sys.source.empty());

      auto& mem = fabric.pe_memory(x, y);
      for (i64 z = 0; z < nz; ++z) {
        const auto k = static_cast<std::size_t>((z * ny + y) * nx + x);
        const f32 dz = mem.load(layout.ysol.offset_words + static_cast<u32>(z));
        result.delta[k] = dz;
        result.pressure[k] = static_cast<f32>(p0[k]) + dz;
      }
      if (first) {
        result.iterations = static_cast<u64>(mem.load(layout.result.offset_words));
        result.converged = mem.load(layout.result.offset_words + 1) != 0.0f;
        result.final_rr = mem.load(layout.result.offset_words + 2);
        first = false;
      }
    }
  }
  return result;
}

// Hooks the session's collector (and, at Level::Trace, its raw-event
// recorder) into the fabric. A session at Level::Off attaches nothing.
void attach_telemetry(wse::Fabric& fabric, telemetry::Session* session) {
  if (session == nullptr) return;
  fabric.set_telemetry(&session->collector());
  if (session->config().level == telemetry::Level::Trace) {
    fabric.set_trace([session](const wse::TraceRecord& record) {
      session->record_event(wse::to_string(record.event), record.cycles,
                            record.at.x, record.at.y, record.color,
                            record.words);
    });
  }
}

// Freezes the session after the run and copies the device-reported
// residual history into the result.
void finalize_telemetry(telemetry::Session* session,
                        const wse::Fabric::RunResult& run,
                        DataflowResult& result) {
  if (session == nullptr || !session->collector().enabled()) return;
  telemetry::RunInfo info;
  info.total_cycles = run.cycles;
  info.seconds = result.device_seconds;
  info.messages_sent = result.fabric.messages_sent;
  info.wavelet_hops = result.fabric.wavelet_hops;
  info.word_hops = result.fabric.word_hops;
  info.words_delivered = result.fabric.words_delivered;
  info.words_dropped = result.fabric.words_dropped;
  info.control_wavelets = result.fabric.control_wavelets;
  info.tasks_run = result.fabric.tasks_run;
  info.events_processed = result.fabric.events_processed;
  info.flits_stalled = result.fabric.flits_stalled;
  info.iterations = result.iterations;
  info.converged = result.converged;
  session->finalize(info);
  result.residual_history.reserve(session->collector().progress().size());
  for (const telemetry::ProgressSample& sample : session->collector().progress())
    result.residual_history.push_back(sample.value);
}

} // namespace

namespace {

/// Host-side state the CG program factory reads from (kept alive by the
/// caller for the factory's lifetime).
struct CgSetup {
  DiscreteSystem<f32> sys;
  std::vector<f32> minv; // Jacobi inverse diagonal; empty when off
  std::vector<f64> p0;   // initial field, materialized once per solve
};

CgSetup prepare_cg(const FlowProblem& problem, const DataflowConfig& config) {
  CgSetup setup{problem.discretize<f32>(), {}, {}};
  // Materialize the initial field once: build_pe_init is called per PE per
  // pass (verify + lookahead + load), and problem.initial_pressure()
  // allocates and fills a full cell-count vector each call.
  setup.p0 = config.initial_field.empty() ? problem.initial_pressure()
                                          : config.initial_field;
  // Jacobi preconditioner diagonal, with the backward-Euler shift folded
  // in (Dirichlet rows have diag 1 and take no shift).
  if (config.jacobi_precondition) {
    setup.minv = jacobian_diagonal(setup.sys);
    for (std::size_t i = 0; i < setup.minv.size(); ++i) {
      if (!setup.sys.dirichlet[i]) setup.minv[i] += config.diagonal_shift;
      FVDF_CHECK_MSG(setup.minv[i] > 0.0f, "non-positive diagonal at cell " << i);
      setup.minv[i] = 1.0f / setup.minv[i];
    }
  }
  return setup;
}

/// The bytecode-program cache a solve's factory hands every PE: the
/// caller's cross-solve CaseArtifacts cache when provided (created there
/// on first use), else a fresh per-solve cache — either way all PEs of a
/// solve share the handful of lowered programs (one per fabric-position
/// shape).
std::shared_ptr<ProgramCache>
solve_program_cache(const std::shared_ptr<CaseArtifacts>& artifacts) {
  if (!artifacts) return std::make_shared<ProgramCache>();
  static std::mutex init_mutex;
  std::lock_guard<std::mutex> lock(init_mutex);
  if (!artifacts->programs) artifacts->programs = std::make_shared<ProgramCache>();
  return artifacts->programs;
}

/// Lookahead planning with the CaseArtifacts memo: the realized tile grid
/// is a function of geometry and the ShardGrid override only, and the
/// planner is deterministic, so a cached table is byte-identical to a
/// fresh plan for the same fabric.
void install_lookahead(wse::Fabric& fabric, const wse::ProgramFactory& factory,
                       const std::shared_ptr<CaseArtifacts>& artifacts) {
  if (fabric.shard_count() <= 1) return;
  if (!artifacts) {
    fabric.set_channel_lookahead(fabric.plan_channel_lookahead(factory));
    return;
  }
  const std::pair<u32, u32> key{fabric.tile_rows(), fabric.tile_cols()};
  {
    std::lock_guard<std::mutex> lock(artifacts->mutex);
    const auto it = artifacts->lookahead.find(key);
    if (it != artifacts->lookahead.end()) {
      fabric.set_channel_lookahead(it->second);
      return;
    }
  }
  wse::ChannelLookahead table = fabric.plan_channel_lookahead(factory);
  fabric.set_channel_lookahead(table);
  std::lock_guard<std::mutex> lock(artifacts->mutex);
  artifacts->lookahead.emplace(key, std::move(table));
}

wse::ProgramFactory cg_factory(const FlowProblem& problem,
                               const DataflowConfig& config,
                               const CgSetup& setup) {
  auto cache = config.engine == SimEngine::Bytecode
                   ? solve_program_cache(config.artifacts)
                   : nullptr;
  return [&problem, &config, &setup,
          cache = std::move(cache)](wse::PeCoord coord)
             -> std::unique_ptr<wse::PeProgram> {
    CgPeConfig pe_config;
    pe_config.nz = static_cast<u32>(problem.mesh().nz());
    pe_config.mode = config.flux_mode;
    pe_config.max_iterations = config.max_iterations;
    pe_config.tolerance = config.tolerance;
    pe_config.jx_only = config.jx_only;
    pe_config.jacobi = config.jacobi_precondition;
    pe_config.diagonal_shift = config.diagonal_shift;
    pe_config.init = build_pe_init(problem, setup.sys, coord.x, coord.y,
                                   config.flux_mode,
                                   config.jacobi_precondition ? &setup.minv
                                                              : nullptr,
                                   &setup.p0);
    if (cache)
      return std::make_unique<BytecodeCgProgram>(
          std::move(pe_config), coord, problem.mesh().nx(),
          problem.mesh().ny(), config.memory, cache);
    return std::make_unique<CgPeProgram>(std::move(pe_config));
  };
}

} // namespace

DataflowResult solve_dataflow(const FlowProblem& problem, const DataflowConfig& config) {
  const auto& mesh = problem.mesh();
  const i64 nx = mesh.nx(), ny = mesh.ny(), nz = mesh.nz();
  FVDF_CHECK_MSG(nz <= 0xffff, "column depth exceeds u16 Dirichlet index range");

  const CgSetup setup = prepare_cg(problem, config);
  const auto& sys = setup.sys;
  const wse::ProgramFactory factory = cg_factory(problem, config, setup);

  wse::Fabric fabric(nx, ny, config.timing, config.memory, config.shard_grid);
  fabric.set_threads(config.sim_threads);
  if (config.verify_preflight) {
    const analysis::VerifyReport report = fabric.verify(factory);
    FVDF_CHECK_MSG(report.ok(),
                   "static verification rejected the CG device program:\n"
                       << report.summary());
  }
  install_lookahead(fabric, factory, config.artifacts);
  attach_telemetry(fabric, config.telemetry);
  fabric.set_host_profiler(config.host_profiler);
  fabric.load(factory);

  const auto run = fabric.run(config.max_cycles);
  if (config.host_profiler != nullptr)
    analysis::annotate_host_profile(*config.host_profiler, fabric);
  FVDF_CHECK_MSG(run.all_halted,
                 "dataflow solve did not complete: " << (run.hit_cycle_limit
                                                             ? "cycle limit hit"
                                                             : "fabric deadlocked"));

  DataflowResult result =
      read_back(fabric, run, problem, sys, config.flux_mode,
                config.jacobi_precondition, config.memory, config.initial_field);
  finalize_telemetry(config.telemetry, run, result);
  FVDF_LOG(Debug) << "dataflow solve: " << result.iterations << " iterations, "
                  << (result.converged ? "converged" : "NOT converged")
                  << ", device time " << result.device_seconds << " s";
  return result;
}

namespace {

/// Host-side state the Chebyshev factory reads from (see CgSetup).
struct ChebSetup {
  DiscreteSystem<f32> sys;
  std::vector<f64> p0;
};

ChebSetup prepare_chebyshev(const FlowProblem& problem,
                            const ChebyshevDeviceConfig& config) {
  ChebSetup setup{problem.discretize<f32>(), {}};
  setup.p0 = config.initial_field.empty() ? problem.initial_pressure()
                                          : config.initial_field;
  return setup;
}

wse::ProgramFactory chebyshev_factory(const FlowProblem& problem,
                                      const ChebyshevDeviceConfig& config,
                                      const ChebSetup& setup) {
  const DiscreteSystem<f32>& sys = setup.sys;
  auto cache = config.engine == SimEngine::Bytecode
                   ? solve_program_cache(config.artifacts)
                   : nullptr;
  return [&problem, &config, &sys, &setup,
          cache = std::move(cache)](wse::PeCoord coord)
             -> std::unique_ptr<wse::PeProgram> {
    ChebyshevPeConfig pe_config;
    pe_config.nz = static_cast<u32>(problem.mesh().nz());
    pe_config.mode = config.flux_mode;
    pe_config.max_iterations = config.max_iterations;
    pe_config.tolerance = config.tolerance;
    pe_config.check_every = config.check_every;
    pe_config.lambda_min = static_cast<f32>(config.bounds.lambda_min);
    pe_config.lambda_max = static_cast<f32>(config.bounds.lambda_max);
    pe_config.diagonal_shift = config.diagonal_shift;
    pe_config.init = build_pe_init(problem, sys, coord.x, coord.y, config.flux_mode,
                                   nullptr, &setup.p0);
    if (cache)
      return std::make_unique<BytecodeChebyshevProgram>(
          std::move(pe_config), coord, problem.mesh().nx(),
          problem.mesh().ny(), config.memory, cache);
    return std::make_unique<ChebyshevPeProgram>(std::move(pe_config));
  };
}

} // namespace

DataflowResult solve_dataflow_chebyshev(const FlowProblem& problem,
                                        const ChebyshevDeviceConfig& config) {
  const auto& mesh = problem.mesh();
  FVDF_CHECK_MSG(mesh.nz() <= 0xffff, "column depth exceeds u16 index range");
  const ChebSetup setup = prepare_chebyshev(problem, config);
  const auto& sys = setup.sys;
  const wse::ProgramFactory factory = chebyshev_factory(problem, config, setup);

  wse::Fabric fabric(mesh.nx(), mesh.ny(), config.timing, config.memory,
                     config.shard_grid);
  fabric.set_threads(config.sim_threads);
  if (config.verify_preflight) {
    const analysis::VerifyReport report = fabric.verify(factory);
    FVDF_CHECK_MSG(
        report.ok(),
        "static verification rejected the Chebyshev device program:\n"
            << report.summary());
  }
  install_lookahead(fabric, factory, config.artifacts);
  attach_telemetry(fabric, config.telemetry);
  fabric.set_host_profiler(config.host_profiler);
  fabric.load(factory);

  const auto run = fabric.run(config.max_cycles);
  if (config.host_profiler != nullptr)
    analysis::annotate_host_profile(*config.host_profiler, fabric);
  FVDF_CHECK_MSG(run.all_halted, "Chebyshev device solve did not complete");
  DataflowResult result =
      read_back(fabric, run, problem, sys, config.flux_mode, /*jacobi=*/false,
                config.memory, config.initial_field);
  finalize_telemetry(config.telemetry, run, result);
  return result;
}

analysis::VerifyReport verify_dataflow(const FlowProblem& problem,
                                       const DataflowConfig& config) {
  const auto& mesh = problem.mesh();
  FVDF_CHECK_MSG(mesh.nz() <= 0xffff, "column depth exceeds u16 index range");
  const CgSetup setup = prepare_cg(problem, config);
  return analysis::verify_program(mesh.nx(), mesh.ny(),
                                  cg_factory(problem, config, setup),
                                  config.memory);
}

LookaheadPlan plan_dataflow_lookahead(const FlowProblem& problem,
                                      const DataflowConfig& config) {
  const auto& mesh = problem.mesh();
  FVDF_CHECK_MSG(mesh.nz() <= 0xffff, "column depth exceeds u16 index range");
  const CgSetup setup = prepare_cg(problem, config);
  const wse::ProgramFactory factory = cg_factory(problem, config, setup);
  wse::Fabric fabric(mesh.nx(), mesh.ny(), config.timing, config.memory,
                     config.shard_grid);
  fabric.set_threads(config.sim_threads);
  LookaheadPlan plan;
  plan.shard_count = static_cast<u32>(fabric.shard_count());
  plan.tile_rows = fabric.tile_rows();
  plan.tile_cols = fabric.tile_cols();
  plan.bytecode =
      fabric.plan_channel_lookahead(factory, wse::LookaheadSource::Bytecode);
  plan.manifest = fabric.plan_channel_lookahead(
      factory, wse::LookaheadSource::ManifestOnly);
  return plan;
}

analysis::VerifyReport verify_dataflow_chebyshev(
    const FlowProblem& problem, const ChebyshevDeviceConfig& config) {
  const auto& mesh = problem.mesh();
  FVDF_CHECK_MSG(mesh.nz() <= 0xffff, "column depth exceeds u16 index range");
  const ChebSetup setup = prepare_chebyshev(problem, config);
  return analysis::verify_program(mesh.nx(), mesh.ny(),
                                  chebyshev_factory(problem, config, setup),
                                  config.memory);
}

DataflowTransientResult solve_transient_dataflow(const FlowProblem& problem,
                                                 f64 dt, i64 steps, f64 porosity,
                                                 f64 total_compressibility,
                                                 DataflowConfig config,
                                                 const TransientStepFn& on_step) {
  FVDF_CHECK(dt > 0 && steps >= 1);
  const f64 sigma =
      porosity * total_compressibility * problem.mesh().cell_volume() / dt;
  config.diagonal_shift = static_cast<f32>(sigma);
  config.jx_only = false;
  // Every step solves the same lowered programs against a new initial
  // field, so the steps of one run always share artifacts — the caller's
  // cross-run cache when provided, else a run-local one.
  if (!config.artifacts) config.artifacts = std::make_shared<CaseArtifacts>();

  DataflowTransientResult result;
  std::vector<f64> state = config.initial_field.empty()
                               ? problem.initial_pressure()
                               : config.initial_field;
  for (i64 step = 0; step < steps; ++step) {
    config.initial_field = state;
    const DataflowResult solve = solve_dataflow(problem, config);
    result.iterations_per_step.push_back(solve.iterations);
    result.all_converged = result.all_converged && solve.converged;
    result.total_device_seconds += solve.device_seconds;
    for (std::size_t i = 0; i < state.size(); ++i)
      state[i] = static_cast<f64>(solve.pressure[i]);
    result.pressure = solve.pressure;
    result.steps_completed = step + 1;
    if (on_step && !on_step(step, solve)) {
      result.interrupted = step + 1 < steps;
      break;
    }
  }
  return result;
}

} // namespace fvdf::core
