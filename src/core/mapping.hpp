#pragma once
// 3D-mesh -> 2D-fabric data mapping and the per-PE memory planner.
//
// Mapping (Sec. III-A, after Jacquelin et al.): cell (x, y, z) lives on
// PE (x, y); a whole Z column resides in one PE's 48 KiB arena. The memory
// planner lays out every device buffer a PE needs and is the single source
// of truth shared by the device program (which allocates through it) and
// the host driver (which dry-runs it to learn upload/readback offsets).
//
// Layouts (the Sec. III-E1 ablation):
//  * Fused (optimized): face coefficients premultiplied on the host,
//    w_f = Upsilon_f * lambda_f_avg -> 5 coefficient arrays, no mobility
//    storage, one scratch buffer. This is the memory-minimal layout that
//    reaches the deepest columns.
//  * OnTheFly: stores raw transmissibilities plus the mobility column and
//    four persistent mobility halos (exchanged once at INIT); the flux
//    kernel averages mobilities every iteration. More FLOPs and more
//    memory — closer to the instruction mix of the paper's Table V.
//  * Naive (planning-only): OnTheFly plus the buffer duplication a
//    straightforward port would keep: both z-face transmissibility
//    directions stored, a separate initial-pressure buffer and a separate
//    residual scratch. Used by the memory ablation to show what buffer
//    reuse buys.

#include <vector>

#include "common/types.hpp"
#include "wse/memory.hpp"

namespace fvdf::core {

enum class FluxMode : u8 {
  Fused,    // premultiplied coefficients (memory-optimal)
  OnTheFly, // mobility averaged on the device every iteration
};

enum class LayoutKind : u8 { Optimized, OnTheFly, Naive };

const char* to_string(FluxMode mode);
const char* to_string(LayoutKind kind);

/// Offsets of every device buffer of the CG PE program. Spans with
/// length 0 are absent in the chosen mode.
struct PeLayout {
  u32 nz = 0;
  FluxMode mode = FluxMode::Fused;

  // Face coefficients: premultiplied w (Fused) or raw Upsilon (OnTheFly).
  wse::MemSpan cw, ce, cs, cn; // lateral, nz each
  wse::MemSpan cz;             // vertical, nz-1 (shared by both z rows)

  // OnTheFly extras.
  wse::MemSpan lambda;                 // own mobility column
  wse::MemSpan lh_w, lh_e, lh_s, lh_n; // neighbor mobility halos
  wse::MemSpan scratch2;               // second scratch (s)

  // Solver state.
  wse::MemSpan x;    // search direction (holds p0 during INIT)
  wse::MemSpan r;    // residual
  wse::MemSpan ysol; // accumulated solution delta (Algorithm 1's y)
  wse::MemSpan q;    // Jx
  wse::MemSpan d;    // scratch difference buffer

  // Jacobi preconditioning (PCG extension; absent in plain-CG layouts).
  wse::MemSpan minv; // inverse Jacobian diagonal
  wse::MemSpan z;    // preconditioned residual M^-1 r

  // Rate-well sources (present only when the problem has any).
  wse::MemSpan source;

  // Halo receive buffers (west/east/south/north neighbor columns).
  wse::MemSpan halo_w, halo_e, halo_s, halo_n;

  // Dirichlet bookkeeping: z indices of pinned cells (u16 little-endian
  // pairs in a byte span) — empty when the column has none.
  wse::MemSpan dirichlet_list; // byte span, 2 bytes per entry
  u32 dirichlet_count = 0;

  // Result/diagnostic scalars readable by the host after DONE:
  // [0]=iterations, [1]=converged flag, [2]=final global rr.
  wse::MemSpan result;

  /// Allocates (or dry-runs) the layout in `mem`. Throws fvdf::Error when
  /// the arena cannot hold it.
  static PeLayout plan(wse::PeMemory& mem, u32 nz, FluxMode mode,
                       u32 dirichlet_count, bool jacobi = false,
                       bool with_source = false);

  /// Bytes the *planning-only* Naive layout would need for a column of
  /// `nz` cells (with `dirichlet_count` pinned cells).
  static u64 naive_bytes(u32 nz, u32 dirichlet_count);
};

/// Planner queries used by the memory ablation (bench/ablation_memory).
struct FitResult {
  bool fits = false;
  u64 bytes_needed = 0;
  u64 bytes_available = 0;
};

FitResult check_fit(LayoutKind kind, u32 nz, u64 capacity_bytes, u64 reserved_bytes,
                    u32 dirichlet_count = 0);

/// Largest column depth the layout supports in a PE arena (binary search
/// over check_fit).
u32 max_nz(LayoutKind kind, u64 capacity_bytes, u64 reserved_bytes,
           u32 dirichlet_count = 0);

/// Per-PE initialization data marshalled by the host driver.
struct PeInit {
  std::vector<f32> cw, ce, cs, cn; // nz each (meaning depends on mode)
  std::vector<f32> cz;             // nz-1
  std::vector<f32> lambda;         // nz (OnTheFly only)
  std::vector<f32> p0;             // initial pressure column
  std::vector<f32> minv;           // inverse diagonal (PCG only)
  std::vector<f32> source;         // rate-well column (empty if none)
  std::vector<u16> dirichlet_z;    // pinned z indices, ascending
};

} // namespace fvdf::core
