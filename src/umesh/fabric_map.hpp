#pragma once
// Mapping arbitrary meshes onto the 2D PE fabric — the planning half of
// the paper's future work ("mapping them efficiently onto a dataflow
// architecture ... data broadcasting strategies to support data movement
// from any cell in the arbitrary-shaped mesh").
//
// A Mapping assigns every cell to a PE of a width x height fabric. The
// quality measures mirror what the structured column mapping optimizes
// implicitly:
//  * load balance            — cells per PE (compute) and bytes per PE
//                              (the 48 KiB wall);
//  * cut faces               — fluxes that need fabric traffic at all;
//  * total hop weight        — sum of Manhattan distances between the
//                              owning PEs of each cut face (wavelet travel);
//  * max remote neighbors    — distinct peer PEs any PE exchanges with
//                              (router/color pressure: the structured
//                              kernel needs exactly 4).
//
// Strategies: contiguous index blocks (the naive port), a Morton
// space-filling curve over cell centroids (locality-aware; reduces to
// column grouping on extruded meshes), and a random shuffle (the
// adversarial baseline).

#include <vector>

#include "common/types.hpp"
#include "umesh/mesh.hpp"

namespace fvdf::umesh {

enum class MappingStrategy : u8 {
  IndexBlocks, // contiguous cell-index ranges, row-major over PEs
  MortonSfc,   // Morton curve over (x, y) centroids, then contiguous ranges
  Random,      // uniform shuffle — the locality-free baseline
};

const char* to_string(MappingStrategy strategy);

struct MappingOptions {
  i64 fabric_width = 4;
  i64 fabric_height = 4;
  u64 pe_memory_budget_bytes = 46 * 1024; // allocatable arena
  u64 bytes_per_cell = 53;                // optimized-layout footprint
  u64 seed = 1;                           // Random strategy only
};

struct Mapping {
  i64 fabric_width = 0;
  i64 fabric_height = 0;
  std::vector<i32> pe_of_cell; // flat PE index (y * width + x) per cell
};

struct MappingReport {
  u64 cells = 0;
  u64 min_cells_per_pe = 0;
  u64 max_cells_per_pe = 0;
  f64 load_imbalance = 0;     // max / average (1.0 = perfect)
  u64 cut_faces = 0;          // faces whose cells live on different PEs
  f64 cut_fraction = 0;       // cut_faces / total faces
  u64 total_hop_weight = 0;   // sum of Manhattan distances over cut faces
  u32 max_remote_neighbors = 0;
  bool fits_memory = true;    // every PE under the byte budget
};

/// Assigns cells to PEs. Throws if the fabric has fewer PEs than 1 or the
/// mesh is empty.
Mapping map_cells(const UnstructuredMesh& mesh, MappingStrategy strategy,
                  const MappingOptions& options);

/// Quality metrics for a mapping.
MappingReport evaluate_mapping(const UnstructuredMesh& mesh, const Mapping& mapping,
                               const MappingOptions& options);

/// Morton interleave of two 16-bit coordinates (exposed for tests).
u32 morton2(u16 x, u16 y);

} // namespace fvdf::umesh
