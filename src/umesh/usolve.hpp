#pragma once
// Matrix-free FV solve on unstructured meshes: the same SPD Jacobian
// convention, residual and CG/PCG as the structured path, driven by a
// face list instead of strided neighbor offsets. The structured solver is
// the oracle (from_cartesian meshes must give identical answers).

#include <vector>

#include "common/types.hpp"
#include "mesh/bc.hpp"
#include "solver/cg.hpp"
#include "umesh/mesh.hpp"

namespace fvdf::umesh {

/// An unstructured flow problem: mesh + per-cell mobility + Dirichlet set
/// (indices are *unstructured* cell ids).
class UFlowProblem {
public:
  UFlowProblem(UnstructuredMesh mesh, std::vector<f64> mobility, DirichletSet bc);

  const UnstructuredMesh& mesh() const { return mesh_; }
  const std::vector<f64>& mobility() const { return mobility_; }
  const DirichletSet& bc() const { return bc_; }

  std::vector<f64> initial_pressure(f64 interior_value = 0.0) const;

private:
  UnstructuredMesh mesh_;
  std::vector<f64> mobility_;
  DirichletSet bc_;
};

/// y = Jx with (Jx)_K = sum_faces T * lambda_avg * (x_K - x_L) on interior
/// cells and identity on Dirichlet cells — one face-list sweep.
class UMatrixFreeOperator {
public:
  explicit UMatrixFreeOperator(const UFlowProblem& problem);

  CellIndex size() const { return n_; }
  void apply(const f64* x, f64* y) const;

  /// Jacobian diagonal (for Jacobi PCG).
  std::vector<f64> diagonal() const;

  /// FV residual (Eq. 3 analogue) at pressure p.
  std::vector<f64> residual(const std::vector<f64>& p) const;

private:
  const UFlowProblem& problem_;
  CellIndex n_;
  std::vector<f64> face_weight_; // T * lambda_avg per face, precomputed
  std::vector<u8> dirichlet_;    // dense mask
};

struct USolveResult {
  std::vector<f64> pressure;
  CgResult cg;
  f64 final_residual_norm = 0;
};

/// End-to-end unstructured pressure solve (single Newton step, CG or
/// Jacobi PCG).
USolveResult solve_pressure_unstructured(const UFlowProblem& problem,
                                         const CgOptions& options = {},
                                         bool jacobi = true);

} // namespace fvdf::umesh
