#pragma once
// Unstructured finite-volume meshes — the paper's stated future work:
// "supporting arbitrary mesh topologies and mapping them efficiently onto
// a dataflow architecture to enable porting of a broader range of FV
// applications."
//
// An UnstructuredMesh is the minimal FV description TPFA needs: a list of
// cells (with volumes and, optionally, centroids for mapping heuristics)
// and a list of interior faces, each carrying the two adjacent cells and
// the precomputed transmissibility. Dirichlet cells are pinned exactly as
// in the structured path. Builders cover:
//  * from_cartesian       — a Cartesian mesh re-expressed as a face list
//                           (the equivalence oracle: results must match
//                           the structured solver bit-for-policy);
//  * from_active_cells    — a Cartesian mesh with inactive cells removed
//                           (real geomodels carve out non-reservoir rock;
//                           the remaining domain is genuinely irregular);
//  * radial_sector        — a structured-in-(r, theta) polar ring grid
//                           whose cell volumes and face areas vary with
//                           radius: a non-Cartesian topology exercising
//                           variable geometry factors.

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "mesh/bc.hpp"
#include "mesh/cartesian.hpp"
#include "mesh/fields.hpp"

namespace fvdf::umesh {

/// One interior face between cells `a` and `b` with its TPFA
/// transmissibility (geometry x harmonic permeability).
struct UFace {
  CellIndex a = 0;
  CellIndex b = 0;
  f64 transmissibility = 0;
};

/// Cell centroid used by mapping heuristics (not by the numerics).
struct Centroid {
  f64 x = 0, y = 0, z = 0;
};

class UnstructuredMesh {
public:
  UnstructuredMesh(CellIndex cells, std::vector<UFace> faces,
                   std::vector<f64> volumes, std::vector<Centroid> centroids = {});

  CellIndex cell_count() const { return cells_; }
  const std::vector<UFace>& faces() const { return faces_; }
  const std::vector<f64>& volumes() const { return volumes_; }
  bool has_centroids() const { return !centroids_.empty(); }
  const std::vector<Centroid>& centroids() const { return centroids_; }

  /// Neighbor count per cell (built lazily, cached).
  const std::vector<u32>& degrees() const;

  /// Largest neighbor count — the fan-in a device mapping must support.
  u32 max_degree() const;

  /// True when the face graph is connected (reducible systems need one
  /// Dirichlet pin per component; the check guards against silent
  /// singularity).
  bool connected() const;

  // --- builders ---
  static UnstructuredMesh from_cartesian(const CartesianMesh3D& mesh,
                                         const CellField<f64>& permeability);

  /// Keeps only cells where `active` is nonzero; returns the mesh plus the
  /// mapping from compact unstructured index to original Cartesian index.
  static UnstructuredMesh from_active_cells(const CartesianMesh3D& mesh,
                                            const CellField<f64>& permeability,
                                            const CellField<u8>& active,
                                            std::vector<CellIndex>* to_cartesian);

  /// Polar ring sector: nr radial shells between r0 and r1, ntheta angular
  /// sectors, nz layers; permeability uniform. Cell volumes grow with
  /// radius and radial face transmissibilities vary per shell.
  static UnstructuredMesh radial_sector(i64 nr, i64 ntheta, i64 nz, f64 r0, f64 r1,
                                        f64 dz, f64 permeability);

private:
  CellIndex cells_;
  std::vector<UFace> faces_;
  std::vector<f64> volumes_;
  std::vector<Centroid> centroids_;
  mutable std::vector<u32> degrees_; // lazy cache
};

} // namespace fvdf::umesh
