#include "umesh/usolve.hpp"

#include "common/error.hpp"
#include "solver/blas.hpp"

namespace fvdf::umesh {

UFlowProblem::UFlowProblem(UnstructuredMesh mesh, std::vector<f64> mobility,
                           DirichletSet bc)
    : mesh_(std::move(mesh)), mobility_(std::move(mobility)), bc_(std::move(bc)) {
  FVDF_CHECK(mobility_.size() == static_cast<std::size_t>(mesh_.cell_count()));
  for (f64 m : mobility_) FVDF_CHECK(m > 0);
  for (const auto& [idx, value] : bc_.sorted())
    FVDF_CHECK_MSG(idx < mesh_.cell_count(), "Dirichlet index out of range");
}

std::vector<f64> UFlowProblem::initial_pressure(f64 interior_value) const {
  std::vector<f64> p(static_cast<std::size_t>(mesh_.cell_count()), interior_value);
  for (const auto& [idx, value] : bc_.sorted())
    p[static_cast<std::size_t>(idx)] = value;
  return p;
}

UMatrixFreeOperator::UMatrixFreeOperator(const UFlowProblem& problem)
    : problem_(problem), n_(problem.mesh().cell_count()) {
  const auto& faces = problem.mesh().faces();
  const auto& mobility = problem.mobility();
  face_weight_.resize(faces.size());
  for (std::size_t f = 0; f < faces.size(); ++f) {
    const UFace& face = faces[f];
    face_weight_[f] = face.transmissibility * 0.5 *
                      (mobility[static_cast<std::size_t>(face.a)] +
                       mobility[static_cast<std::size_t>(face.b)]);
  }
  dirichlet_.assign(static_cast<std::size_t>(n_), 0);
  for (const auto& [idx, value] : problem.bc().sorted())
    dirichlet_[static_cast<std::size_t>(idx)] = 1;
}

void UMatrixFreeOperator::apply(const f64* x, f64* y) const {
  for (CellIndex k = 0; k < n_; ++k) y[k] = 0.0;
  const auto& faces = problem_.mesh().faces();
  // Face sweep: scatter both sides (the SPD symmetric stencil).
  for (std::size_t f = 0; f < faces.size(); ++f) {
    const UFace& face = faces[f];
    const f64 flux = face_weight_[f] * (x[face.a] - x[face.b]);
    y[face.a] += flux;
    y[face.b] -= flux;
  }
  // Dirichlet rows are identity (accumulated garbage overwritten).
  for (CellIndex k = 0; k < n_; ++k)
    if (dirichlet_[static_cast<std::size_t>(k)]) y[k] = x[k];
}

std::vector<f64> UMatrixFreeOperator::diagonal() const {
  std::vector<f64> diag(static_cast<std::size_t>(n_), 0.0);
  const auto& faces = problem_.mesh().faces();
  for (std::size_t f = 0; f < faces.size(); ++f) {
    diag[static_cast<std::size_t>(faces[f].a)] += face_weight_[f];
    diag[static_cast<std::size_t>(faces[f].b)] += face_weight_[f];
  }
  for (CellIndex k = 0; k < n_; ++k)
    if (dirichlet_[static_cast<std::size_t>(k)]) diag[static_cast<std::size_t>(k)] = 1.0;
  return diag;
}

std::vector<f64> UMatrixFreeOperator::residual(const std::vector<f64>& p) const {
  FVDF_CHECK(p.size() == static_cast<std::size_t>(n_));
  std::vector<f64> r(p.size(), 0.0);
  apply(p.data(), r.data());
  for (CellIndex k = 0; k < n_; ++k) {
    if (dirichlet_[static_cast<std::size_t>(k)]) {
      r[k] = p[k] - problem_.bc().value(k);
    } else {
      r[k] = -r[k]; // Eq. (3) orientation: sum of inflow fluxes
    }
  }
  return r;
}

USolveResult solve_pressure_unstructured(const UFlowProblem& problem,
                                         const CgOptions& options, bool jacobi) {
  const UMatrixFreeOperator op(problem);
  const auto n = static_cast<std::size_t>(op.size());

  USolveResult result;
  result.pressure = problem.initial_pressure();

  // Newton RHS: -(A p0) on interior rows, 0 on Dirichlet rows.
  std::vector<f64> rhs(n);
  op.apply(result.pressure.data(), rhs.data());
  for (std::size_t i = 0; i < n; ++i)
    rhs[i] = problem.bc().contains(static_cast<CellIndex>(i)) ? 0.0 : -rhs[i];

  std::vector<f64> delta(n, 0.0);
  const auto apply = [&](const f64* in, f64* out) { op.apply(in, out); };
  if (jacobi) {
    std::vector<f64> minv = op.diagonal();
    for (auto& d : minv) {
      FVDF_CHECK(d > 0);
      d = 1.0 / d;
    }
    result.cg = preconditioned_conjugate_gradient<f64>(
        apply,
        [&](const f64* in, f64* out) {
          for (std::size_t i = 0; i < n; ++i) out[i] = minv[i] * in[i];
        },
        rhs.data(), delta.data(), n, options);
  } else {
    result.cg = conjugate_gradient<f64>(apply, rhs.data(), delta.data(), n, options);
  }
  blas::axpy(1.0, delta.data(), result.pressure.data(), n);

  const auto r = op.residual(result.pressure);
  result.final_residual_norm = blas::norm2(r.data(), r.size());
  return result;
}

} // namespace fvdf::umesh
