#include "umesh/fabric_map.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fvdf::umesh {

const char* to_string(MappingStrategy strategy) {
  switch (strategy) {
  case MappingStrategy::IndexBlocks: return "index blocks";
  case MappingStrategy::MortonSfc: return "Morton SFC";
  case MappingStrategy::Random: return "random shuffle";
  }
  return "?";
}

u32 morton2(u16 x, u16 y) {
  auto spread = [](u32 v) {
    v &= 0xffff;
    v = (v | (v << 8)) & 0x00ff00ff;
    v = (v | (v << 4)) & 0x0f0f0f0f;
    v = (v | (v << 2)) & 0x33333333;
    v = (v | (v << 1)) & 0x55555555;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

Mapping map_cells(const UnstructuredMesh& mesh, MappingStrategy strategy,
                  const MappingOptions& options) {
  FVDF_CHECK(options.fabric_width >= 1 && options.fabric_height >= 1);
  const auto n = static_cast<std::size_t>(mesh.cell_count());
  const auto pes = static_cast<std::size_t>(options.fabric_width * options.fabric_height);

  // Order the cells per strategy, then cut the order into `pes` contiguous
  // near-equal ranges.
  std::vector<CellIndex> order(n);
  std::iota(order.begin(), order.end(), 0);

  switch (strategy) {
  case MappingStrategy::IndexBlocks:
    break; // natural order
  case MappingStrategy::MortonSfc: {
    FVDF_CHECK_MSG(mesh.has_centroids(),
                   "Morton mapping needs cell centroids on the mesh");
    const auto& centroids = mesh.centroids();
    f64 x0 = 1e300, x1 = -1e300, y0 = 1e300, y1 = -1e300;
    for (const Centroid& c : centroids) {
      x0 = std::min(x0, c.x);
      x1 = std::max(x1, c.x);
      y0 = std::min(y0, c.y);
      y1 = std::max(y1, c.y);
    }
    const f64 sx = x1 > x0 ? 65535.0 / (x1 - x0) : 0.0;
    const f64 sy = y1 > y0 ? 65535.0 / (y1 - y0) : 0.0;
    std::vector<u32> key(n);
    for (std::size_t i = 0; i < n; ++i)
      key[i] = morton2(static_cast<u16>((centroids[i].x - x0) * sx),
                       static_cast<u16>((centroids[i].y - y0) * sy));
    std::stable_sort(order.begin(), order.end(),
                     [&](CellIndex a, CellIndex b) {
                       return key[static_cast<std::size_t>(a)] <
                              key[static_cast<std::size_t>(b)];
                     });
    break;
  }
  case MappingStrategy::Random: {
    Rng rng(options.seed);
    for (std::size_t i = n; i > 1; --i)
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    break;
  }
  }

  Mapping mapping;
  mapping.fabric_width = options.fabric_width;
  mapping.fabric_height = options.fabric_height;
  mapping.pe_of_cell.assign(n, 0);
  for (std::size_t rank = 0; rank < n; ++rank) {
    // Ranges of size ceil/floor(n/pes), earlier PEs take the larger ones.
    const std::size_t pe = rank * pes / n;
    mapping.pe_of_cell[static_cast<std::size_t>(order[rank])] = static_cast<i32>(pe);
  }
  return mapping;
}

MappingReport evaluate_mapping(const UnstructuredMesh& mesh, const Mapping& mapping,
                               const MappingOptions& options) {
  const auto n = static_cast<std::size_t>(mesh.cell_count());
  FVDF_CHECK(mapping.pe_of_cell.size() == n);
  const auto pes = static_cast<std::size_t>(mapping.fabric_width * mapping.fabric_height);

  MappingReport report;
  report.cells = n;

  std::vector<u64> cells_per_pe(pes, 0);
  for (i32 pe : mapping.pe_of_cell) {
    FVDF_CHECK(pe >= 0 && static_cast<std::size_t>(pe) < pes);
    ++cells_per_pe[static_cast<std::size_t>(pe)];
  }
  report.min_cells_per_pe = *std::min_element(cells_per_pe.begin(), cells_per_pe.end());
  report.max_cells_per_pe = *std::max_element(cells_per_pe.begin(), cells_per_pe.end());
  const f64 avg = static_cast<f64>(n) / static_cast<f64>(pes);
  report.load_imbalance = static_cast<f64>(report.max_cells_per_pe) / avg;
  report.fits_memory =
      report.max_cells_per_pe * options.bytes_per_cell <= options.pe_memory_budget_bytes;

  std::vector<std::set<i32>> remote(pes);
  auto pe_xy = [&](i32 pe) {
    return std::pair<i64, i64>{pe % mapping.fabric_width, pe / mapping.fabric_width};
  };
  for (const UFace& face : mesh.faces()) {
    const i32 pa = mapping.pe_of_cell[static_cast<std::size_t>(face.a)];
    const i32 pb = mapping.pe_of_cell[static_cast<std::size_t>(face.b)];
    if (pa == pb) continue;
    ++report.cut_faces;
    const auto [ax, ay] = pe_xy(pa);
    const auto [bx, by] = pe_xy(pb);
    report.total_hop_weight +=
        static_cast<u64>(std::llabs(ax - bx) + std::llabs(ay - by));
    remote[static_cast<std::size_t>(pa)].insert(pb);
    remote[static_cast<std::size_t>(pb)].insert(pa);
  }
  report.cut_fraction = mesh.faces().empty()
                            ? 0.0
                            : static_cast<f64>(report.cut_faces) /
                                  static_cast<f64>(mesh.faces().size());
  for (const auto& peers : remote)
    report.max_remote_neighbors =
        std::max(report.max_remote_neighbors, static_cast<u32>(peers.size()));
  return report;
}

} // namespace fvdf::umesh
