#include "umesh/mesh.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "mesh/transmissibility.hpp"

namespace fvdf::umesh {

UnstructuredMesh::UnstructuredMesh(CellIndex cells, std::vector<UFace> faces,
                                   std::vector<f64> volumes,
                                   std::vector<Centroid> centroids)
    : cells_(cells), faces_(std::move(faces)), volumes_(std::move(volumes)),
      centroids_(std::move(centroids)) {
  FVDF_CHECK(cells >= 1);
  FVDF_CHECK(volumes_.size() == static_cast<std::size_t>(cells));
  FVDF_CHECK(centroids_.empty() ||
             centroids_.size() == static_cast<std::size_t>(cells));
  for (const UFace& face : faces_) {
    FVDF_CHECK_MSG(face.a >= 0 && face.a < cells && face.b >= 0 && face.b < cells,
                   "face references cell out of range");
    FVDF_CHECK_MSG(face.a != face.b, "degenerate face (self loop)");
    FVDF_CHECK_MSG(face.transmissibility >= 0, "negative transmissibility");
  }
  for (f64 volume : volumes_) FVDF_CHECK(volume > 0);
}

const std::vector<u32>& UnstructuredMesh::degrees() const {
  if (degrees_.empty()) {
    degrees_.assign(static_cast<std::size_t>(cells_), 0);
    for (const UFace& face : faces_) {
      ++degrees_[static_cast<std::size_t>(face.a)];
      ++degrees_[static_cast<std::size_t>(face.b)];
    }
  }
  return degrees_;
}

u32 UnstructuredMesh::max_degree() const {
  const auto& deg = degrees();
  u32 best = 0;
  for (u32 d : deg) best = std::max(best, d);
  return best;
}

bool UnstructuredMesh::connected() const {
  // BFS over the face graph.
  std::vector<std::vector<CellIndex>> adjacency(static_cast<std::size_t>(cells_));
  for (const UFace& face : faces_) {
    adjacency[static_cast<std::size_t>(face.a)].push_back(face.b);
    adjacency[static_cast<std::size_t>(face.b)].push_back(face.a);
  }
  std::vector<bool> seen(static_cast<std::size_t>(cells_), false);
  std::vector<CellIndex> stack = {0};
  seen[0] = true;
  CellIndex visited = 1;
  while (!stack.empty()) {
    const CellIndex at = stack.back();
    stack.pop_back();
    for (CellIndex next : adjacency[static_cast<std::size_t>(at)]) {
      if (!seen[static_cast<std::size_t>(next)]) {
        seen[static_cast<std::size_t>(next)] = true;
        ++visited;
        stack.push_back(next);
      }
    }
  }
  return visited == cells_;
}

UnstructuredMesh UnstructuredMesh::from_cartesian(const CartesianMesh3D& mesh,
                                                  const CellField<f64>& permeability) {
  CellField<u8> all_active(mesh, 1);
  return from_active_cells(mesh, permeability, all_active, nullptr);
}

UnstructuredMesh UnstructuredMesh::from_active_cells(
    const CartesianMesh3D& mesh, const CellField<f64>& permeability,
    const CellField<u8>& active, std::vector<CellIndex>* to_cartesian) {
  FVDF_CHECK(active.size() == static_cast<std::size_t>(mesh.cell_count()));
  // Compact index for active cells.
  std::vector<CellIndex> compact(static_cast<std::size_t>(mesh.cell_count()), -1);
  std::vector<CellIndex> original;
  for (CellIndex k = 0; k < mesh.cell_count(); ++k) {
    if (active.data()[static_cast<std::size_t>(k)]) {
      compact[static_cast<std::size_t>(k)] = static_cast<CellIndex>(original.size());
      original.push_back(k);
    }
  }
  FVDF_CHECK_MSG(!original.empty(), "no active cells");

  const auto trans = compute_transmissibility(mesh, permeability);
  std::vector<UFace> faces;
  std::vector<f64> volumes(original.size(), mesh.cell_volume());
  std::vector<Centroid> centroids(original.size());
  for (std::size_t u = 0; u < original.size(); ++u) {
    const CellCoord c = mesh.coord(original[u]);
    centroids[u] = {(static_cast<f64>(c.x) + 0.5) * mesh.dx(),
                    (static_cast<f64>(c.y) + 0.5) * mesh.dy(),
                    (static_cast<f64>(c.z) + 0.5) * mesh.dz()};
    // Emit each face once, from the lower-index side.
    for (Face face : {Face::East, Face::North, Face::Up}) {
      const auto nb = mesh.neighbor(c, face);
      if (!nb) continue;
      const CellIndex nk = mesh.index(*nb);
      const CellIndex nu = compact[static_cast<std::size_t>(nk)];
      if (nu < 0) continue; // inactive neighbor: no-flow face
      faces.push_back(UFace{static_cast<CellIndex>(u), nu, trans.at(mesh, c, face)});
    }
  }
  if (to_cartesian) *to_cartesian = original;
  return UnstructuredMesh(static_cast<CellIndex>(original.size()), std::move(faces),
                          std::move(volumes), std::move(centroids));
}

UnstructuredMesh UnstructuredMesh::radial_sector(i64 nr, i64 ntheta, i64 nz, f64 r0,
                                                 f64 r1, f64 dz, f64 permeability) {
  FVDF_CHECK(nr >= 1 && ntheta >= 2 && nz >= 1);
  FVDF_CHECK(r1 > r0 && r0 > 0 && dz > 0 && permeability > 0);
  const f64 dr = (r1 - r0) / static_cast<f64>(nr);
  const f64 dtheta = 2.0 * M_PI / static_cast<f64>(ntheta);

  const CellIndex cells = nr * ntheta * nz;
  auto index = [&](i64 ir, i64 it, i64 iz) {
    return (iz * ntheta + it) * nr + ir;
  };

  std::vector<f64> volumes(static_cast<std::size_t>(cells));
  std::vector<Centroid> centroids(static_cast<std::size_t>(cells));
  std::vector<UFace> faces;
  for (i64 iz = 0; iz < nz; ++iz) {
    for (i64 it = 0; it < ntheta; ++it) {
      for (i64 ir = 0; ir < nr; ++ir) {
        const f64 r_in = r0 + static_cast<f64>(ir) * dr;
        const f64 r_out = r_in + dr;
        const f64 r_mid = 0.5 * (r_in + r_out);
        const f64 theta = (static_cast<f64>(it) + 0.5) * dtheta;
        const auto k = static_cast<std::size_t>(index(ir, it, iz));
        volumes[k] = 0.5 * (r_out * r_out - r_in * r_in) * dtheta * dz;
        centroids[k] = {r_mid * std::cos(theta), r_mid * std::sin(theta),
                        (static_cast<f64>(iz) + 0.5) * dz};

        // Radial face to the next shell: area = r_out * dtheta * dz,
        // distance = dr.
        if (ir + 1 < nr) {
          const f64 t = permeability * r_out * dtheta * dz / dr;
          faces.push_back({index(ir, it, iz), index(ir + 1, it, iz), t});
        }
        // Angular face to the next sector (periodic): area = dr * dz,
        // distance = r_mid * dtheta.
        {
          const i64 it_next = (it + 1) % ntheta;
          const f64 t = permeability * dr * dz / (r_mid * dtheta);
          faces.push_back({index(ir, it, iz), index(ir, it_next, iz), t});
        }
        // Vertical face: area = cell footprint, distance = dz.
        if (iz + 1 < nz) {
          const f64 t = permeability * volumes[k] / (dz * dz);
          faces.push_back({index(ir, it, iz), index(ir, it, iz + 1), t});
        }
      }
    }
  }
  return UnstructuredMesh(cells, std::move(faces), std::move(volumes),
                          std::move(centroids));
}

} // namespace fvdf::umesh
