#pragma once
// Dirichlet boundary conditions — the set T^D of Eq. (3). In the CCS
// scenario of Fig. 5 the injector (source) and producer are modeled as
// Dirichlet pressure cells.

#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "mesh/cartesian.hpp"

namespace fvdf {

/// Sparse set of cells with fixed pressure values.
class DirichletSet {
public:
  /// Pins cell `idx` to pressure `value`. Re-pinning overwrites.
  void pin(CellIndex idx, f64 value);
  void pin(const CartesianMesh3D& mesh, const CellCoord& c, f64 value);

  bool contains(CellIndex idx) const { return values_.count(idx) != 0; }
  /// Fixed pressure for a pinned cell; throws if not pinned.
  f64 value(CellIndex idx) const;

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Deterministically ordered (by index) list of pinned cells, for
  /// device upload and reproducible iteration.
  std::vector<std::pair<CellIndex, f64>> sorted() const;

  /// Fig. 5 scenario: injector column at (0, 0) pinned high, producer column
  /// at (nx-1, ny-1) pinned low, across all z (a vertical well in each
  /// corner of the model).
  static DirichletSet injector_producer(const CartesianMesh3D& mesh,
                                        f64 injector_pressure,
                                        f64 producer_pressure);

private:
  std::unordered_map<CellIndex, f64> values_;
};

} // namespace fvdf
