#pragma once
// Legacy-VTK output (STRUCTURED_POINTS + CELL_DATA) so fields open
// directly in ParaView/VisIt — the de-facto interchange format for FV
// simulation results. ASCII for diffability; cell data written in the
// solver's native layout (X innermost, Z outermost), which matches VTK's
// ordering convention.

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "mesh/cartesian.hpp"

namespace fvdf {

/// Named cell-centered scalar field to export (size = mesh.cell_count()).
using VtkField = std::pair<std::string, const std::vector<f64>*>;

/// Writes a legacy ASCII .vtk file with one SCALARS section per field.
/// Throws fvdf::Error on I/O failure or size mismatch.
void write_vtk(const std::string& path, const CartesianMesh3D& mesh,
               const std::vector<VtkField>& fields,
               const std::string& title = "fvdf output");

} // namespace fvdf
