#pragma once
// Cell-centered fields and synthetic geomodel (permeability / mobility)
// generators. The paper's experiments run on proprietary geomodels; these
// generators provide the standard synthetic equivalents used across the
// reservoir-simulation literature (homogeneous, layered, log-normal,
// channelized) so the solver is exercised on realistic heterogeneity.

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "mesh/cartesian.hpp"

namespace fvdf {

/// A dense cell-centered scalar field bound to a mesh's layout.
template <typename T> class CellField {
public:
  CellField() = default;
  explicit CellField(const CartesianMesh3D& mesh, T fill = T{})
      : nx_(mesh.nx()), ny_(mesh.ny()), nz_(mesh.nz()),
        data_(static_cast<std::size_t>(mesh.cell_count()), fill) {}

  T& operator[](CellIndex idx) { return data_[static_cast<std::size_t>(idx)]; }
  const T& operator[](CellIndex idx) const { return data_[static_cast<std::size_t>(idx)]; }

  T& at(i64 x, i64 y, i64 z) {
    return data_[static_cast<std::size_t>((z * ny_ + y) * nx_ + x)];
  }
  const T& at(i64 x, i64 y, i64 z) const {
    return data_[static_cast<std::size_t>((z * ny_ + y) * nx_ + x)];
  }

  std::size_t size() const { return data_.size(); }
  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

  i64 nx() const { return nx_; }
  i64 ny() const { return ny_; }
  i64 nz() const { return nz_; }

private:
  i64 nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<T> data_;
};

/// Permeability generators (values in millidarcy-like arbitrary units; the
/// solver only cares about relative contrasts).
namespace perm {

/// Uniform permeability everywhere.
CellField<f64> homogeneous(const CartesianMesh3D& mesh, f64 value);

/// Horizontal layers alternating between `low` and `high` every
/// `layer_thickness` cells in Z — a caricature of sedimentary stratification.
CellField<f64> layered(const CartesianMesh3D& mesh, f64 low, f64 high,
                       i64 layer_thickness);

/// Log-normal field: exp(N(log_mean, log_sigma)) smoothed by `smoothing`
/// passes of a 7-point box filter to give spatial correlation.
CellField<f64> lognormal(const CartesianMesh3D& mesh, Rng& rng, f64 log_mean,
                         f64 log_sigma, int smoothing = 2);

/// Background permeability with `channel_count` high-permeability sinuous
/// channels meandering in the X direction (fluvial analogue).
CellField<f64> channelized(const CartesianMesh3D& mesh, Rng& rng, f64 background,
                           f64 channel, int channel_count);

} // namespace perm

/// Constant fluid mobility field: lambda = 1/mu (Sec. II-A: "The (constant)
/// interfacial fluid mobility ... arithmetic average of the mobilities").
CellField<f64> constant_mobility(const CartesianMesh3D& mesh, f64 viscosity);

} // namespace fvdf
