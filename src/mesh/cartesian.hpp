#pragma once
// 3D Cartesian mesh with the paper's memory layout: "the X-dimension as the
// innermost dimension and Z-dimension as the outermost dimension" (Sec. IV).
// Each interior cell has six neighbors (the 7-point stencil of Fig. 1).

#include <array>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"

namespace fvdf {

/// Face/neighbor direction of the 7-point stencil. The X-Y cardinal
/// directions mirror the fabric link names used in Table I; Up/Down are the
/// Z-dimension neighbors that live in the same PE column.
enum class Face : u8 { West = 0, East = 1, South = 2, North = 3, Down = 4, Up = 5 };

constexpr std::array<Face, 6> kAllFaces = {Face::West, Face::East, Face::South,
                                           Face::North, Face::Down, Face::Up};

/// Opposite face (West<->East, South<->North, Down<->Up).
Face opposite(Face face);

/// Human-readable name for diagnostics.
const char* to_string(Face face);

/// Structured cell coordinate.
struct CellCoord {
  i64 x = 0, y = 0, z = 0;
  bool operator==(const CellCoord&) const = default;
};

class CartesianMesh3D {
public:
  /// Dimensions in cells and uniform cell sizes in meters.
  CartesianMesh3D(i64 nx, i64 ny, i64 nz, f64 dx = 1.0, f64 dy = 1.0, f64 dz = 1.0);

  i64 nx() const { return nx_; }
  i64 ny() const { return ny_; }
  i64 nz() const { return nz_; }
  f64 dx() const { return dx_; }
  f64 dy() const { return dy_; }
  f64 dz() const { return dz_; }

  CellIndex cell_count() const { return nx_ * ny_ * nz_; }
  f64 cell_volume() const { return dx_ * dy_ * dz_; }

  /// Linear index with X innermost, Z outermost.
  CellIndex index(i64 x, i64 y, i64 z) const {
    FVDF_CHECK(contains(x, y, z));
    return (z * ny_ + y) * nx_ + x;
  }
  CellIndex index(const CellCoord& c) const { return index(c.x, c.y, c.z); }

  CellCoord coord(CellIndex idx) const {
    FVDF_CHECK(idx >= 0 && idx < cell_count());
    CellCoord c;
    c.x = idx % nx_;
    c.y = (idx / nx_) % ny_;
    c.z = idx / (nx_ * ny_);
    return c;
  }

  bool contains(i64 x, i64 y, i64 z) const {
    return x >= 0 && x < nx_ && y >= 0 && y < ny_ && z >= 0 && z < nz_;
  }

  /// Neighbor cell across `face`, or nullopt at the domain boundary
  /// (no-flow boundaries: missing neighbors simply contribute no flux).
  std::optional<CellCoord> neighbor(const CellCoord& c, Face face) const;

  /// Face area and center distance used by the TPFA geometric factor.
  f64 face_area(Face face) const;
  f64 center_distance(Face face) const;

  /// Number of interior faces along each axis (for face-array sizing):
  /// X-faces: (nx-1)*ny*nz, Y-faces: nx*(ny-1)*nz, Z-faces: nx*ny*(nz-1).
  CellIndex x_face_count() const { return (nx_ - 1) * ny_ * nz_; }
  CellIndex y_face_count() const { return nx_ * (ny_ - 1) * nz_; }
  CellIndex z_face_count() const { return nx_ * ny_ * (nz_ - 1); }

  /// Linear face indices. The x-face between (x,y,z) and (x+1,y,z) is
  /// indexed by the lower cell's coordinate in a (nx-1, ny, nz) box, etc.
  CellIndex x_face_index(i64 x, i64 y, i64 z) const;
  CellIndex y_face_index(i64 x, i64 y, i64 z) const;
  CellIndex z_face_index(i64 x, i64 y, i64 z) const;

  std::string describe() const;

private:
  i64 nx_, ny_, nz_;
  f64 dx_, dy_, dz_;
};

} // namespace fvdf
