#include "mesh/bc.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fvdf {

void DirichletSet::pin(CellIndex idx, f64 value) {
  FVDF_CHECK(idx >= 0);
  values_[idx] = value;
}

void DirichletSet::pin(const CartesianMesh3D& mesh, const CellCoord& c, f64 value) {
  pin(mesh.index(c), value);
}

f64 DirichletSet::value(CellIndex idx) const {
  auto it = values_.find(idx);
  FVDF_CHECK_MSG(it != values_.end(), "cell " << idx << " is not Dirichlet");
  return it->second;
}

std::vector<std::pair<CellIndex, f64>> DirichletSet::sorted() const {
  std::vector<std::pair<CellIndex, f64>> out(values_.begin(), values_.end());
  std::sort(out.begin(), out.end());
  return out;
}

DirichletSet DirichletSet::injector_producer(const CartesianMesh3D& mesh,
                                             f64 injector_pressure,
                                             f64 producer_pressure) {
  DirichletSet set;
  for (i64 z = 0; z < mesh.nz(); ++z) {
    set.pin(mesh, {0, 0, z}, injector_pressure);
    set.pin(mesh, {mesh.nx() - 1, mesh.ny() - 1, z}, producer_pressure);
  }
  return set;
}

} // namespace fvdf
