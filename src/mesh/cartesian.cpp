#include "mesh/cartesian.hpp"

#include <sstream>

namespace fvdf {

Face opposite(Face face) {
  switch (face) {
  case Face::West: return Face::East;
  case Face::East: return Face::West;
  case Face::South: return Face::North;
  case Face::North: return Face::South;
  case Face::Down: return Face::Up;
  case Face::Up: return Face::Down;
  }
  throw Error("invalid face");
}

const char* to_string(Face face) {
  switch (face) {
  case Face::West: return "West";
  case Face::East: return "East";
  case Face::South: return "South";
  case Face::North: return "North";
  case Face::Down: return "Down";
  case Face::Up: return "Up";
  }
  return "?";
}

CartesianMesh3D::CartesianMesh3D(i64 nx, i64 ny, i64 nz, f64 dx, f64 dy, f64 dz)
    : nx_(nx), ny_(ny), nz_(nz), dx_(dx), dy_(dy), dz_(dz) {
  FVDF_CHECK_MSG(nx >= 1 && ny >= 1 && nz >= 1,
                 "mesh dims must be positive: " << nx << "x" << ny << "x" << nz);
  FVDF_CHECK_MSG(dx > 0 && dy > 0 && dz > 0, "cell sizes must be positive");
}

std::optional<CellCoord> CartesianMesh3D::neighbor(const CellCoord& c, Face face) const {
  CellCoord n = c;
  switch (face) {
  case Face::West: n.x -= 1; break;
  case Face::East: n.x += 1; break;
  case Face::South: n.y -= 1; break;
  case Face::North: n.y += 1; break;
  case Face::Down: n.z -= 1; break;
  case Face::Up: n.z += 1; break;
  }
  if (!contains(n.x, n.y, n.z)) return std::nullopt;
  return n;
}

f64 CartesianMesh3D::face_area(Face face) const {
  switch (face) {
  case Face::West:
  case Face::East: return dy_ * dz_;
  case Face::South:
  case Face::North: return dx_ * dz_;
  case Face::Down:
  case Face::Up: return dx_ * dy_;
  }
  throw Error("invalid face");
}

f64 CartesianMesh3D::center_distance(Face face) const {
  switch (face) {
  case Face::West:
  case Face::East: return dx_;
  case Face::South:
  case Face::North: return dy_;
  case Face::Down:
  case Face::Up: return dz_;
  }
  throw Error("invalid face");
}

CellIndex CartesianMesh3D::x_face_index(i64 x, i64 y, i64 z) const {
  FVDF_CHECK(x >= 0 && x < nx_ - 1 && y >= 0 && y < ny_ && z >= 0 && z < nz_);
  return (z * ny_ + y) * (nx_ - 1) + x;
}

CellIndex CartesianMesh3D::y_face_index(i64 x, i64 y, i64 z) const {
  FVDF_CHECK(x >= 0 && x < nx_ && y >= 0 && y < ny_ - 1 && z >= 0 && z < nz_);
  return (z * (ny_ - 1) + y) * nx_ + x;
}

CellIndex CartesianMesh3D::z_face_index(i64 x, i64 y, i64 z) const {
  FVDF_CHECK(x >= 0 && x < nx_ && y >= 0 && y < ny_ && z >= 0 && z < nz_ - 1);
  return (z * ny_ + y) * nx_ + x;
}

std::string CartesianMesh3D::describe() const {
  std::ostringstream os;
  os << nx_ << "x" << ny_ << "x" << nz_ << " cells (" << cell_count()
     << " total), spacing " << dx_ << "x" << dy_ << "x" << dz_ << " m";
  return os.str();
}

} // namespace fvdf
