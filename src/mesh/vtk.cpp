#include "mesh/vtk.hpp"

#include <fstream>

#include "common/error.hpp"

namespace fvdf {

void write_vtk(const std::string& path, const CartesianMesh3D& mesh,
               const std::vector<VtkField>& fields, const std::string& title) {
  FVDF_CHECK_MSG(!fields.empty(), "write_vtk: no fields");
  for (const auto& [name, data] : fields) {
    FVDF_CHECK(data != nullptr);
    FVDF_CHECK_MSG(data->size() == static_cast<std::size_t>(mesh.cell_count()),
                   "field '" << name << "' has " << data->size() << " values, mesh has "
                             << mesh.cell_count() << " cells");
    FVDF_CHECK_MSG(!name.empty() && name.find(' ') == std::string::npos,
                   "VTK scalar names must be non-empty and space-free");
  }

  std::ofstream out(path);
  FVDF_CHECK_MSG(out.good(), "cannot open " << path);
  // STRUCTURED_POINTS dimensions are *points*; cells are dims-1, so a mesh
  // of nx x ny x nz cells needs (nx+1, ny+1, nz+1) points.
  out << "# vtk DataFile Version 3.0\n"
      << title << '\n'
      << "ASCII\n"
      << "DATASET STRUCTURED_POINTS\n"
      << "DIMENSIONS " << mesh.nx() + 1 << ' ' << mesh.ny() + 1 << ' '
      << mesh.nz() + 1 << '\n'
      << "ORIGIN 0 0 0\n"
      << "SPACING " << mesh.dx() << ' ' << mesh.dy() << ' ' << mesh.dz() << '\n'
      << "CELL_DATA " << mesh.cell_count() << '\n';
  for (const auto& [name, data] : fields) {
    out << "SCALARS " << name << " double 1\nLOOKUP_TABLE default\n";
    for (f64 value : *data) out << value << '\n';
  }
  FVDF_CHECK_MSG(out.good(), "write failed: " << path);
}

} // namespace fvdf
