#pragma once
// TPFA transmissibilities (the Upsilon_KL coefficient of Eq. 4).
//
// For a face between cells K and L, the two-point flux approximation gives
//   Upsilon_KL = harmonic(k_K, k_L) * A / d
// where A is the face area, d the center distance, and harmonic() the
// harmonic mean of the two cell permeabilities (the standard choice: it is
// exact for serial flow across a layered medium and guarantees Upsilon -> 0
// when either side is impermeable).
//
// Transmissibilities are stored per *face*, one array per axis, so each
// value is stored once and shared by both adjacent cells — the same
// symmetry the dataflow implementation exploits to fit 48 KiB per PE.

#include <vector>

#include "common/types.hpp"
#include "mesh/cartesian.hpp"
#include "mesh/fields.hpp"

namespace fvdf {

/// Face-centered transmissibility arrays for a Cartesian mesh.
struct FaceTransmissibility {
  std::vector<f64> x_faces; // between (x,y,z) and (x+1,y,z)
  std::vector<f64> y_faces; // between (x,y,z) and (x,y+1,z)
  std::vector<f64> z_faces; // between (x,y,z) and (x,y,z+1)

  /// Transmissibility across `face` of cell c, or 0 at domain boundaries
  /// (no-flow). Keeping the boundary as a zero coefficient lets kernels use
  /// a branch-free 6-neighbor loop, mirroring the device implementation.
  f64 at(const CartesianMesh3D& mesh, const CellCoord& c, Face face) const;
};

/// Builds TPFA transmissibilities from a cell permeability field.
FaceTransmissibility compute_transmissibility(const CartesianMesh3D& mesh,
                                              const CellField<f64>& permeability);

/// Harmonic mean helper (exposed for unit tests).
f64 harmonic_mean(f64 a, f64 b);

} // namespace fvdf
