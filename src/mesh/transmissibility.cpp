#include "mesh/transmissibility.hpp"

namespace fvdf {

f64 harmonic_mean(f64 a, f64 b) {
  FVDF_CHECK(a >= 0 && b >= 0);
  if (a == 0.0 || b == 0.0) return 0.0;
  return 2.0 * a * b / (a + b);
}

f64 FaceTransmissibility::at(const CartesianMesh3D& mesh, const CellCoord& c,
                             Face face) const {
  switch (face) {
  case Face::West:
    return c.x > 0 ? x_faces[static_cast<std::size_t>(mesh.x_face_index(c.x - 1, c.y, c.z))] : 0.0;
  case Face::East:
    return c.x < mesh.nx() - 1
               ? x_faces[static_cast<std::size_t>(mesh.x_face_index(c.x, c.y, c.z))]
               : 0.0;
  case Face::South:
    return c.y > 0 ? y_faces[static_cast<std::size_t>(mesh.y_face_index(c.x, c.y - 1, c.z))] : 0.0;
  case Face::North:
    return c.y < mesh.ny() - 1
               ? y_faces[static_cast<std::size_t>(mesh.y_face_index(c.x, c.y, c.z))]
               : 0.0;
  case Face::Down:
    return c.z > 0 ? z_faces[static_cast<std::size_t>(mesh.z_face_index(c.x, c.y, c.z - 1))] : 0.0;
  case Face::Up:
    return c.z < mesh.nz() - 1
               ? z_faces[static_cast<std::size_t>(mesh.z_face_index(c.x, c.y, c.z))]
               : 0.0;
  }
  throw Error("invalid face");
}

FaceTransmissibility compute_transmissibility(const CartesianMesh3D& mesh,
                                              const CellField<f64>& permeability) {
  FVDF_CHECK(permeability.size() == static_cast<std::size_t>(mesh.cell_count()));
  FaceTransmissibility trans;
  trans.x_faces.resize(static_cast<std::size_t>(mesh.x_face_count()));
  trans.y_faces.resize(static_cast<std::size_t>(mesh.y_face_count()));
  trans.z_faces.resize(static_cast<std::size_t>(mesh.z_face_count()));

  const f64 gx = mesh.face_area(Face::East) / mesh.center_distance(Face::East);
  const f64 gy = mesh.face_area(Face::North) / mesh.center_distance(Face::North);
  const f64 gz = mesh.face_area(Face::Up) / mesh.center_distance(Face::Up);

  for (i64 z = 0; z < mesh.nz(); ++z)
    for (i64 y = 0; y < mesh.ny(); ++y)
      for (i64 x = 0; x < mesh.nx(); ++x) {
        const f64 k = permeability.at(x, y, z);
        if (x < mesh.nx() - 1)
          trans.x_faces[static_cast<std::size_t>(mesh.x_face_index(x, y, z))] =
              gx * harmonic_mean(k, permeability.at(x + 1, y, z));
        if (y < mesh.ny() - 1)
          trans.y_faces[static_cast<std::size_t>(mesh.y_face_index(x, y, z))] =
              gy * harmonic_mean(k, permeability.at(x, y + 1, z));
        if (z < mesh.nz() - 1)
          trans.z_faces[static_cast<std::size_t>(mesh.z_face_index(x, y, z))] =
              gz * harmonic_mean(k, permeability.at(x, y, z + 1));
      }
  return trans;
}

} // namespace fvdf
