#include "mesh/fields.hpp"

#include <algorithm>
#include <cmath>

namespace fvdf {
namespace perm {

CellField<f64> homogeneous(const CartesianMesh3D& mesh, f64 value) {
  FVDF_CHECK(value > 0);
  return CellField<f64>(mesh, value);
}

CellField<f64> layered(const CartesianMesh3D& mesh, f64 low, f64 high,
                       i64 layer_thickness) {
  FVDF_CHECK(low > 0 && high > 0 && layer_thickness > 0);
  CellField<f64> field(mesh);
  for (i64 z = 0; z < mesh.nz(); ++z) {
    const f64 value = ((z / layer_thickness) % 2 == 0) ? low : high;
    for (i64 y = 0; y < mesh.ny(); ++y)
      for (i64 x = 0; x < mesh.nx(); ++x) field.at(x, y, z) = value;
  }
  return field;
}

namespace {
// One pass of a 7-point box filter with reflective boundaries; preserves the
// mean while introducing short-range spatial correlation.
void smooth_once(const CartesianMesh3D& mesh, CellField<f64>& field) {
  CellField<f64> out(mesh);
  for (i64 z = 0; z < mesh.nz(); ++z)
    for (i64 y = 0; y < mesh.ny(); ++y)
      for (i64 x = 0; x < mesh.nx(); ++x) {
        f64 sum = field.at(x, y, z);
        int n = 1;
        const CellCoord c{x, y, z};
        for (Face face : kAllFaces) {
          if (auto nb = mesh.neighbor(c, face)) {
            sum += field.at(nb->x, nb->y, nb->z);
            ++n;
          }
        }
        out.at(x, y, z) = sum / n;
      }
  field = std::move(out);
}
} // namespace

CellField<f64> lognormal(const CartesianMesh3D& mesh, Rng& rng, f64 log_mean,
                         f64 log_sigma, int smoothing) {
  FVDF_CHECK(log_sigma >= 0 && smoothing >= 0);
  CellField<f64> field(mesh);
  for (auto& value : field.data()) value = rng.normal(log_mean, log_sigma);
  for (int pass = 0; pass < smoothing; ++pass) smooth_once(mesh, field);
  for (auto& value : field.data()) value = std::exp(value);
  return field;
}

CellField<f64> channelized(const CartesianMesh3D& mesh, Rng& rng, f64 background,
                           f64 channel, int channel_count) {
  FVDF_CHECK(background > 0 && channel > 0 && channel_count >= 0);
  CellField<f64> field(mesh, background);
  for (int ch = 0; ch < channel_count; ++ch) {
    // Each channel is a random walk in y as x advances, at a random depth
    // band, with a half-width of 1-2 cells.
    f64 y_pos = rng.uniform(0.0, static_cast<f64>(mesh.ny()));
    const i64 z0 = static_cast<i64>(rng.uniform_index(static_cast<u64>(mesh.nz())));
    const i64 z1 = std::min<i64>(mesh.nz(), z0 + 1 + static_cast<i64>(rng.uniform_index(3)));
    const i64 half_width = 1 + static_cast<i64>(rng.uniform_index(2));
    for (i64 x = 0; x < mesh.nx(); ++x) {
      y_pos += rng.normal(0.0, 0.75);
      y_pos = std::clamp(y_pos, 0.0, static_cast<f64>(mesh.ny() - 1));
      const i64 yc = static_cast<i64>(y_pos);
      for (i64 y = std::max<i64>(0, yc - half_width);
           y <= std::min<i64>(mesh.ny() - 1, yc + half_width); ++y)
        for (i64 z = z0; z < z1; ++z) field.at(x, y, z) = channel;
    }
  }
  return field;
}

} // namespace perm

CellField<f64> constant_mobility(const CartesianMesh3D& mesh, f64 viscosity) {
  FVDF_CHECK(viscosity > 0);
  return CellField<f64>(mesh, 1.0 / viscosity);
}

} // namespace fvdf
