#pragma once
// Binary field checkpointing: save/restore named f64 fields with grid
// metadata, so long simulations (transient, IMPES) and the serve daemon's
// interrupted jobs can stop and resume. Format: magic "FVDF", format
// version, grid dims, length-prefixed (name, data) records, and — since
// version 2 — a trailing FNV-1a checksum over the payload. Loading
// validates magic, version, sizes and the checksum and throws fvdf::Error
// on any mismatch, truncation or bit flip — a corrupt checkpoint must
// never load as silently-wrong data. Version-1 files (no checksum) still
// load for backward compatibility.

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fvdf {

struct FieldCheckpoint {
  i64 nx = 0, ny = 0, nz = 0; // grid shape the fields belong to
  std::map<std::string, std::vector<f64>> fields;

  /// Convenience accessor that throws if the field is missing.
  const std::vector<f64>& field(const std::string& name) const;

  /// Throws fvdf::Error (naming both shapes) unless the checkpoint's grid
  /// matches — restoring a field onto the wrong mesh must fail loudly,
  /// not interpolate garbage. `what` names the consumer for the message
  /// (e.g. the scenario or job id).
  void require_grid(i64 nx, i64 ny, i64 nz, const std::string& what) const;
};

/// Writes the checkpoint atomically-ish (temp file + rename), format
/// version 2 (payload checksum).
void save_checkpoint(const std::string& path, const FieldCheckpoint& checkpoint);

/// Reads and validates a checkpoint (versions 1 and 2).
FieldCheckpoint load_checkpoint(const std::string& path);

/// FNV-1a 64-bit over a byte span — the checkpoint payload checksum, also
/// used by the serve subsystem for content-addressed cache keys and
/// result fingerprints. Deterministic across platforms of equal
/// endianness (we only target little-endian hosts, like the rest of the
/// binary checkpoint format).
u64 fnv1a64(const void* data, std::size_t bytes, u64 seed = 14695981039346656037ull);

/// Hex rendering of a 64-bit hash (16 lowercase digits).
std::string hash_hex(u64 hash);

} // namespace fvdf
