#pragma once
// Binary field checkpointing: save/restore named f64 fields with grid
// metadata, so long simulations (transient, IMPES) can stop and resume.
// Format: magic "FVDF", format version, grid dims, then length-prefixed
// (name, data) records. Loading validates magic, version and sizes and
// throws fvdf::Error on any mismatch or truncation — a corrupt checkpoint
// must never load as silently-wrong data.

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fvdf {

struct FieldCheckpoint {
  i64 nx = 0, ny = 0, nz = 0; // grid shape the fields belong to
  std::map<std::string, std::vector<f64>> fields;

  /// Convenience accessor that throws if the field is missing.
  const std::vector<f64>& field(const std::string& name) const;
};

/// Writes the checkpoint atomically-ish (temp file + rename).
void save_checkpoint(const std::string& path, const FieldCheckpoint& checkpoint);

/// Reads and validates a checkpoint.
FieldCheckpoint load_checkpoint(const std::string& path);

} // namespace fvdf
