#pragma once
// Deterministic pseudo-random number generation.
//
// xoshiro256++ is used instead of std::mt19937 because (a) it is much
// faster, (b) the stream is reproducible across standard libraries, which
// matters for tests that pin expected values, and (c) `jump()` gives
// cheap independent streams for parallel field generation.

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace fvdf {

/// xoshiro256++ by Blackman & Vigna (public domain reference algorithm).
class Rng {
public:
  /// Seeds the full 256-bit state from a 64-bit seed via splitmix64.
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  u64 next_u64();

  /// Uniform in [0, 1).
  f64 uniform();

  /// Uniform in [lo, hi).
  f64 uniform(f64 lo, f64 hi);

  /// Uniform integer in [0, n). Requires n > 0.
  u64 uniform_index(u64 n);

  /// Standard normal via Box–Muller (cached second value).
  f64 normal();

  /// Normal with given mean and standard deviation.
  f64 normal(f64 mean, f64 stddev);

  /// Log-normal: exp(normal(mu, sigma)). Common model for permeability.
  f64 lognormal(f64 mu, f64 sigma);

  /// Advances the state by 2^128 steps: yields a stream independent from
  /// the original for any realistic consumption.
  void jump();

private:
  std::array<u64, 4> state_{};
  bool have_cached_normal_ = false;
  f64 cached_normal_ = 0.0;
};

} // namespace fvdf
