#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace fvdf {

void RunningStats::add(f64 value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const f64 delta = value - mean_;
  mean_ += delta / static_cast<f64>(count_);
  m2_ += delta * (value - mean_);
}

f64 RunningStats::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<f64>(count_ - 1));
}

f64 RunningStats::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<f64>(count_);
}

void RunningStats::clear() { *this = RunningStats{}; }

f64 percentile(std::vector<f64> samples, f64 p) {
  FVDF_CHECK(!samples.empty());
  FVDF_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const f64 rank = p / 100.0 * static_cast<f64>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const f64 frac = rank - static_cast<f64>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

} // namespace fvdf
