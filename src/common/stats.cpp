#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace fvdf {

void RunningStats::add(f64 value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const f64 delta = value - mean_;
  mean_ += delta / static_cast<f64>(count_);
  m2_ += delta * (value - mean_);
}

f64 RunningStats::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<f64>(count_ - 1));
}

f64 RunningStats::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<f64>(count_);
}

void RunningStats::clear() { *this = RunningStats{}; }

StreamingHistogram::StreamingHistogram(u32 subbucket_bits)
    : subbucket_bits_(subbucket_bits), subbuckets_(1u << subbucket_bits) {
  FVDF_CHECK_MSG(subbucket_bits <= 12, "subbucket_bits out of range");
}

std::size_t StreamingHistogram::bucket_index(f64 value) const {
  if (!(value >= 1.0)) return 0; // negatives, NaN and [0,1) collapse here
  int exp = 0;
  const f64 mantissa = std::frexp(value, &exp); // value = mantissa * 2^exp
  const i64 octave = exp - 1;                   // value in [2^octave, 2^octave+1)
  // mantissa in [0.5, 1): 2*mantissa - 1 in [0, 1) picks the sub-bucket.
  auto sub = static_cast<std::size_t>((2.0 * mantissa - 1.0) *
                                      static_cast<f64>(subbuckets_));
  if (sub >= subbuckets_) sub = subbuckets_ - 1;
  return 1 + static_cast<std::size_t>(octave) * subbuckets_ + sub;
}

f64 StreamingHistogram::bucket_lo(std::size_t index) const {
  if (index == 0) return 0.0;
  const std::size_t octave = (index - 1) / subbuckets_;
  const std::size_t sub = (index - 1) % subbuckets_;
  return std::ldexp(1.0 + static_cast<f64>(sub) / static_cast<f64>(subbuckets_),
                    static_cast<int>(octave));
}

f64 StreamingHistogram::bucket_hi(std::size_t index) const {
  if (index == 0) return 1.0;
  const std::size_t octave = (index - 1) / subbuckets_;
  const std::size_t sub = (index - 1) % subbuckets_;
  return std::ldexp(1.0 + static_cast<f64>(sub + 1) / static_cast<f64>(subbuckets_),
                    static_cast<int>(octave));
}

void StreamingHistogram::add(f64 value) {
  const std::size_t index = bucket_index(value);
  if (index >= bins_.size()) bins_.resize(index + 1, 0);
  ++bins_[index];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void StreamingHistogram::merge(const StreamingHistogram& other) {
  FVDF_CHECK_MSG(subbucket_bits_ == other.subbucket_bits_,
                 "histogram precision mismatch");
  if (other.count_ == 0) return;
  if (other.bins_.size() > bins_.size()) bins_.resize(other.bins_.size(), 0);
  for (std::size_t i = 0; i < other.bins_.size(); ++i) bins_[i] += other.bins_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void StreamingHistogram::clear() {
  bins_.clear();
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

f64 StreamingHistogram::quantile(f64 q) const {
  FVDF_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  // Rank of the requested order statistic (same convention as
  // fvdf::percentile); the answer is the midpoint of the bucket holding it,
  // clamped into the observed [min, max] range.
  const f64 rank = q * static_cast<f64>(count_ - 1);
  u64 cumulative = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    cumulative += bins_[i];
    if (static_cast<f64>(cumulative) > rank) {
      const f64 mid = 0.5 * (bucket_lo(i) + bucket_hi(i));
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

std::vector<StreamingHistogram::Bucket> StreamingHistogram::buckets() const {
  std::vector<Bucket> result;
  for (std::size_t i = 0; i < bins_.size(); ++i)
    if (bins_[i] != 0) result.push_back(Bucket{bucket_lo(i), bucket_hi(i), bins_[i]});
  return result;
}

f64 percentile(std::vector<f64> samples, f64 p) {
  FVDF_CHECK(!samples.empty());
  FVDF_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const f64 rank = p / 100.0 * static_cast<f64>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const f64 frac = rank - static_cast<f64>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

} // namespace fvdf
