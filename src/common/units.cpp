#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace fvdf {

namespace {
std::string fmt_with_suffix(f64 value, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g %s", value, suffix);
  return buf;
}
} // namespace

std::string fmt_seconds(f64 seconds) {
  const f64 abs_val = std::fabs(seconds);
  if (abs_val == 0.0) return "0 s";
  if (abs_val < 1e-6) return fmt_with_suffix(seconds * 1e9, "ns");
  if (abs_val < 1e-3) return fmt_with_suffix(seconds * 1e6, "us");
  if (abs_val < 1.0) return fmt_with_suffix(seconds * 1e3, "ms");
  return fmt_with_suffix(seconds, "s");
}

std::string fmt_bytes(f64 bytes) {
  static const char* kPrefix[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  int idx = 0;
  f64 value = bytes;
  while (std::fabs(value) >= 1024.0 && idx < 5) {
    value /= 1024.0;
    ++idx;
  }
  return fmt_with_suffix(value, kPrefix[idx]);
}

std::string fmt_flops(f64 flops_per_sec) {
  static const char* kPrefix[] = {"FLOP/s",  "kFLOP/s", "MFLOP/s",
                                  "GFLOP/s", "TFLOP/s", "PFLOP/s"};
  int idx = 0;
  f64 value = flops_per_sec;
  while (std::fabs(value) >= 1000.0 && idx < 5) {
    value /= 1000.0;
    ++idx;
  }
  return fmt_with_suffix(value, kPrefix[idx]);
}

std::string fmt_gcells(f64 cells_per_sec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f Gcell/s", cells_per_sec / 1e9);
  return buf;
}

std::string fmt_percent(f64 ratio) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f%%", ratio * 100.0);
  return buf;
}

std::string fmt_count(u64 value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

} // namespace fvdf
