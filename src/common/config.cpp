#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace fvdf {

namespace {
std::string trim(const std::string& text) {
  std::size_t begin = 0, end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}
} // namespace

Config Config::parse_string(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line, section;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments (# or ;) and whitespace.
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      FVDF_CHECK_MSG(line.back() == ']' && line.size() > 2,
                     "config line " << line_no << ": malformed section header");
      section = trim(line.substr(1, line.size() - 2));
      FVDF_CHECK_MSG(!section.empty(), "config line " << line_no << ": empty section");
      continue;
    }
    const auto eq = line.find('=');
    FVDF_CHECK_MSG(eq != std::string::npos,
                   "config line " << line_no << ": expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    FVDF_CHECK_MSG(!key.empty(), "config line " << line_no << ": empty key");
    const std::string full = section.empty() ? key : section + "." + key;
    FVDF_CHECK_MSG(config.values_.emplace(full, value).second,
                   "config line " << line_no << ": duplicate key '" << full << "'");
  }
  return config;
}

Config Config::parse_file(const std::string& path) {
  std::ifstream in(path);
  FVDF_CHECK_MSG(in.good(), "cannot open config " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_string(buffer.str());
}

bool Config::has(const std::string& key) const { return values_.count(key) != 0; }

std::string Config::get_string(const std::string& key) const {
  const auto it = values_.find(key);
  FVDF_CHECK_MSG(it != values_.end(), "missing config key '" << key << "'");
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return has(key) ? get_string(key) : fallback;
}

i64 Config::get_i64(const std::string& key) const {
  const std::string value = get_string(key);
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  FVDF_CHECK_MSG(end && *end == '\0' && !value.empty(),
                 "config key '" << key << "': not an integer: " << value);
  return parsed;
}

i64 Config::get_i64(const std::string& key, i64 fallback) const {
  return has(key) ? get_i64(key) : fallback;
}

f64 Config::get_f64(const std::string& key) const {
  const std::string value = get_string(key);
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  FVDF_CHECK_MSG(end && *end == '\0' && !value.empty(),
                 "config key '" << key << "': not a number: " << value);
  return parsed;
}

f64 Config::get_f64(const std::string& key, f64 fallback) const {
  return has(key) ? get_f64(key) : fallback;
}

bool Config::get_bool(const std::string& key) const {
  std::string value = get_string(key);
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (value == "true" || value == "yes" || value == "on" || value == "1") return true;
  if (value == "false" || value == "no" || value == "off" || value == "0") return false;
  throw Error("config key '" + key + "': not a boolean: " + value);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  return has(key) ? get_bool(key) : fallback;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

} // namespace fvdf
