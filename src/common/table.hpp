#pragma once
// Column-aligned table rendering used by every bench harness so reproduced
// tables look like the paper's (fixed columns, one row per configuration).
// Also emits CSV for downstream plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace fvdf {

class Table {
public:
  explicit Table(std::string title = "");

  /// Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> columns);

  /// Appends a data row; must match the header's column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience for mixed cell types already formatted by the caller.
  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }
  const std::string& cell(std::size_t row, std::size_t col) const;

  /// Renders with box-drawing-free ASCII (pipe-separated, padded).
  std::string to_string() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  /// Prints to_string() to the stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& table);

private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting helper ("%.*f").
std::string fmt_fixed(double value, int digits);

/// Scientific formatting helper ("%.*e").
std::string fmt_sci(double value, int digits);

} // namespace fvdf
