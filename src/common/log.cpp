#include "common/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <iostream>
#include <mutex>

#include "common/error.hpp"

namespace fvdf {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
  case LogLevel::Trace: return "TRACE";
  case LogLevel::Debug: return "DEBUG";
  case LogLevel::Info: return "INFO ";
  case LogLevel::Warn: return "WARN ";
  case LogLevel::ErrorLvl: return "ERROR";
  case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}
} // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn") return LogLevel::Warn;
  if (lower == "error") return LogLevel::ErrorLvl;
  if (lower == "off") return LogLevel::Off;
  throw Error("unknown log level: " + name);
}

namespace detail {
void emit(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::ostream& out = (level >= LogLevel::Warn) ? std::cerr : std::clog;
  out << '[' << level_tag(level) << "] " << line << '\n';
}
} // namespace detail

} // namespace fvdf
