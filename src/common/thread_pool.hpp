#pragma once
// A small work-stealing-free thread pool with a blocking parallel_for.
//
// Used by (a) the threaded host FV operator and (b) the CUDA-execution-model
// emulator, which maps threadblocks onto pool workers. The pool follows the
// MPI-tutorial mental model: explicit parallelism, no hidden sharing — tasks
// receive disjoint index ranges.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fvdf {

class ThreadPool {
public:
  /// Creates `threads` workers. 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue an arbitrary task. Fire-and-forget; use parallel_for for
  /// synchronized bulk work.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void wait_idle();

  /// Runs fn(begin..end) split into ~grain-sized chunks across the pool and
  /// blocks until completion. fn receives [chunk_begin, chunk_end).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 0);

  /// Runs fn(i) for every i in [0, count) across the pool and blocks until
  /// completion. Unlike submit()/parallel_for, no per-item std::function is
  /// allocated: workers claim indices from a shared counter against one
  /// borrowed callable, so repeated bulk dispatches (the fabric engine's
  /// per-window shard rounds) reuse the same work-item state every call.
  /// The first exception thrown by fn is rethrown here after all items
  /// finish or are abandoned.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  // for_each_index state (guarded by mutex_): the borrowed callable plus a
  // claim cursor, reused across calls instead of queueing per-item tasks.
  const std::function<void(std::size_t)>* indexed_fn_ = nullptr;
  std::size_t indexed_count_ = 0;
  std::size_t indexed_next_ = 0;
  std::size_t indexed_pending_ = 0;
  std::exception_ptr indexed_error_;
};

} // namespace fvdf
