#include "common/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace fvdf {

namespace {
struct Rgb {
  f64 r, g, b;
};

// Five-stop approximation of viridis; linear interpolation between stops.
constexpr Rgb kStops[] = {{0.267, 0.005, 0.329},
                          {0.229, 0.322, 0.546},
                          {0.127, 0.566, 0.551},
                          {0.369, 0.789, 0.383},
                          {0.993, 0.906, 0.144}};

void min_max(const ScalarImage& image, f64& lo, f64& hi) {
  FVDF_CHECK(!image.values.empty());
  lo = hi = image.values.front();
  for (f64 value : image.values) {
    lo = std::min(lo, value);
    hi = std::max(hi, value);
  }
  if (hi == lo) hi = lo + 1.0; // constant field renders as the low color
}
} // namespace

void colormap(f64 t, u8& r, u8& g, u8& b) {
  t = std::clamp(t, 0.0, 1.0);
  constexpr int kSegments = static_cast<int>(std::size(kStops)) - 1;
  const f64 scaled = t * kSegments;
  const int seg = std::min(kSegments - 1, static_cast<int>(scaled));
  const f64 frac = scaled - seg;
  auto lerp = [&](f64 a, f64 c) { return a + (c - a) * frac; };
  r = static_cast<u8>(std::lround(255.0 * lerp(kStops[seg].r, kStops[seg + 1].r)));
  g = static_cast<u8>(std::lround(255.0 * lerp(kStops[seg].g, kStops[seg + 1].g)));
  b = static_cast<u8>(std::lround(255.0 * lerp(kStops[seg].b, kStops[seg + 1].b)));
}

void write_ppm(const ScalarImage& image, const std::string& path) {
  FVDF_CHECK(image.nx > 0 && image.ny > 0);
  FVDF_CHECK(static_cast<std::size_t>(image.nx * image.ny) == image.values.size());
  f64 lo, hi;
  min_max(image, lo, hi);

  std::ofstream out(path, std::ios::binary);
  FVDF_CHECK_MSG(out.good(), "cannot open " << path);
  out << "P6\n" << image.nx << ' ' << image.ny << "\n255\n";
  for (i64 y = 0; y < image.ny; ++y) {
    for (i64 x = 0; x < image.nx; ++x) {
      const f64 t = (image.at(x, y) - lo) / (hi - lo);
      u8 r, g, b;
      colormap(t, r, g, b);
      out.put(static_cast<char>(r)).put(static_cast<char>(g)).put(static_cast<char>(b));
    }
  }
  FVDF_CHECK_MSG(out.good(), "write failed: " << path);
}

void write_csv(const ScalarImage& image, const std::string& path) {
  std::ofstream out(path);
  FVDF_CHECK_MSG(out.good(), "cannot open " << path);
  out << "x,y,value\n";
  for (i64 y = 0; y < image.ny; ++y)
    for (i64 x = 0; x < image.nx; ++x)
      out << x << ',' << y << ',' << image.at(x, y) << '\n';
  FVDF_CHECK_MSG(out.good(), "write failed: " << path);
}

std::string ascii_heatmap(const ScalarImage& image, i64 max_cols, i64 max_rows) {
  FVDF_CHECK(image.nx > 0 && image.ny > 0 && max_cols > 0 && max_rows > 0);
  f64 lo, hi;
  min_max(image, lo, hi);
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kRampLen = static_cast<int>(sizeof(kRamp)) - 2;

  const i64 cols = std::min(max_cols, image.nx);
  const i64 rows = std::min(max_rows, image.ny);
  std::ostringstream os;
  for (i64 row = 0; row < rows; ++row) {
    for (i64 col = 0; col < cols; ++col) {
      // Box-average the source region mapped to this character cell.
      const i64 x0 = col * image.nx / cols, x1 = std::max(x0 + 1, (col + 1) * image.nx / cols);
      const i64 y0 = row * image.ny / rows, y1 = std::max(y0 + 1, (row + 1) * image.ny / rows);
      f64 sum = 0.0;
      for (i64 y = y0; y < y1; ++y)
        for (i64 x = x0; x < x1; ++x) sum += image.at(x, y);
      const f64 avg = sum / static_cast<f64>((x1 - x0) * (y1 - y0));
      const f64 t = (avg - lo) / (hi - lo);
      const int idx = std::clamp(static_cast<int>(t * kRampLen + 0.5), 0, kRampLen);
      os << kRamp[idx];
    }
    os << '\n';
  }
  return os.str();
}

} // namespace fvdf
