#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/error.hpp"

namespace fvdf {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FVDF_CHECK_MSG(!stop_, "submit() after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t, std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  if (grain == 0) grain = std::max<std::size_t>(1, total / (4 * size()));
  // Exceptions thrown inside chunks are captured and rethrown to the caller
  // (first one wins) so failures inside simulated kernels surface in tests.
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::size_t chunk_begin = begin;
  std::size_t chunks = 0;
  while (chunk_begin < end) {
    const std::size_t chunk_end = std::min(end, chunk_begin + grain);
    ++chunks;
    submit([&, chunk_begin, chunk_end] {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        fn(chunk_begin, chunk_end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) first_error = std::current_exception();
      }
    });
    chunk_begin = chunk_end;
  }
  (void)chunks;
  wait_idle();
  if (failed.load()) std::rethrow_exception(first_error);
}

void ThreadPool::for_each_index(std::size_t count,
                                const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  FVDF_CHECK_MSG(!stop_, "for_each_index() after shutdown");
  FVDF_CHECK_MSG(indexed_fn_ == nullptr, "nested for_each_index()");
  indexed_fn_ = &fn;
  indexed_count_ = count;
  indexed_next_ = 0;
  indexed_pending_ = count;
  indexed_error_ = nullptr;
  task_available_.notify_all();
  idle_.wait(lock, [this] { return indexed_pending_ == 0; });
  indexed_fn_ = nullptr;
  std::exception_ptr error = indexed_error_;
  indexed_error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    task_available_.wait(lock, [this] {
      return stop_ || !tasks_.empty() ||
             (indexed_fn_ != nullptr && indexed_next_ < indexed_count_);
    });
    if (indexed_fn_ != nullptr && indexed_next_ < indexed_count_) {
      const std::size_t index = indexed_next_++;
      const auto* fn = indexed_fn_;
      lock.unlock();
      std::exception_ptr error;
      try {
        (*fn)(index);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      if (error && !indexed_error_) indexed_error_ = error;
      if (--indexed_pending_ == 0) idle_.notify_all();
      continue;
    }
    if (stop_ && tasks_.empty()) return;
    if (tasks_.empty()) continue;
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop();
    lock.unlock();
    task();
    lock.lock();
    --in_flight_;
    if (in_flight_ == 0) idle_.notify_all();
  }
}

} // namespace fvdf
