#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace fvdf {

namespace {
u64 splitmix64(u64& x) {
  x += 0x9e3779b97f4a7c15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
} // namespace

Rng::Rng(u64 seed) {
  u64 s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

u64 Rng::next_u64() {
  const u64 result = rotl(state_[0] + state_[3], 23) + state_[0];
  const u64 t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

f64 Rng::uniform() {
  // 53 top bits -> double in [0,1).
  return static_cast<f64>(next_u64() >> 11) * 0x1.0p-53;
}

f64 Rng::uniform(f64 lo, f64 hi) { return lo + (hi - lo) * uniform(); }

u64 Rng::uniform_index(u64 n) {
  FVDF_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const u64 threshold = (~u64{0} - n + 1) % n;
  for (;;) {
    const u64 r = next_u64();
    if (r >= threshold) return r % n;
  }
}

f64 Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  f64 u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const f64 u2 = uniform();
  const f64 radius = std::sqrt(-2.0 * std::log(u1));
  const f64 angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return radius * std::cos(angle);
}

f64 Rng::normal(f64 mean, f64 stddev) { return mean + stddev * normal(); }

f64 Rng::lognormal(f64 mu, f64 sigma) { return std::exp(normal(mu, sigma)); }

void Rng::jump() {
  static constexpr u64 kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                  0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::array<u64, 4> acc{};
  for (u64 word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (u64{1} << bit)) {
        for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      next_u64();
    }
  }
  state_ = acc;
  have_cached_normal_ = false;
}

} // namespace fvdf
