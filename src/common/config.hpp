#pragma once
// Minimal INI-style configuration for the simulation driver
// (tools/fvdf_sim): `[section]` headers, `key = value` pairs, `#`/`;`
// comments. Keys are addressed as "section.key". Unknown keys are the
// caller's business (the driver validates against its schema); malformed
// lines are errors here.

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fvdf {

class Config {
public:
  static Config parse_string(const std::string& text);
  static Config parse_file(const std::string& path);

  bool has(const std::string& key) const;

  /// Typed getters. The `fallback` overloads return it when the key is
  /// absent; the overloads without it throw.
  std::string get_string(const std::string& key) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;
  i64 get_i64(const std::string& key) const;
  i64 get_i64(const std::string& key, i64 fallback) const;
  f64 get_f64(const std::string& key) const;
  f64 get_f64(const std::string& key, f64 fallback) const;
  bool get_bool(const std::string& key) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// All keys, sorted (schema validation / diagnostics).
  std::vector<std::string> keys() const;

private:
  std::map<std::string, std::string> values_;
};

} // namespace fvdf
