#pragma once
// Scalar-field visualization used to reproduce Figure 5 (pressure
// propagation from injector to producer): PPM raster output with a
// perceptually ordered colormap, plus an ASCII heatmap for terminals.

#include <string>
#include <vector>

#include "common/types.hpp"

namespace fvdf {

/// A row-major 2D scalar field (ny rows of nx values).
struct ScalarImage {
  i64 nx = 0;
  i64 ny = 0;
  std::vector<f64> values; // size nx*ny

  f64 at(i64 x, i64 y) const { return values[static_cast<std::size_t>(y * nx + x)]; }
};

/// Writes a binary PPM (P6) using the viridis-like colormap, min/max scaled.
/// Throws fvdf::Error on I/O failure.
void write_ppm(const ScalarImage& image, const std::string& path);

/// Writes "x,y,value" CSV rows with a header.
void write_csv(const ScalarImage& image, const std::string& path);

/// Renders an ASCII heatmap (downsampled to at most max_cols x max_rows)
/// using a density ramp; used by bench/fig5 so the artifact is visible in
/// plain terminal logs.
std::string ascii_heatmap(const ScalarImage& image, i64 max_cols = 72,
                          i64 max_rows = 28);

/// Maps t in [0,1] to an RGB triple of the built-in colormap.
void colormap(f64 t, u8& r, u8& g, u8& b);

} // namespace fvdf
