#pragma once
// Streaming statistics (Welford) used for timing measurements: the paper
// reports "average kernel time and standard deviation ... from multiple
// runs" (Table II), so every timed experiment carries a RunningStats.

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace fvdf {

/// Numerically stable streaming mean / variance / min / max.
class RunningStats {
public:
  void add(f64 value);

  std::size_t count() const { return count_; }
  f64 mean() const { return mean_; }
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  f64 stddev() const;
  /// Population variance helper for tests.
  f64 variance() const;
  f64 min() const { return min_; }
  f64 max() const { return max_; }

  void clear();

private:
  std::size_t count_ = 0;
  f64 mean_ = 0.0;
  f64 m2_ = 0.0;
  f64 min_ = 0.0;
  f64 max_ = 0.0;
};

/// Exact percentile (linear interpolation) over a copy of the samples.
f64 percentile(std::vector<f64> samples, f64 p);

} // namespace fvdf
