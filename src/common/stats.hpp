#pragma once
// Streaming statistics (Welford) used for timing measurements: the paper
// reports "average kernel time and standard deviation ... from multiple
// runs" (Table II), so every timed experiment carries a RunningStats.

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace fvdf {

/// Numerically stable streaming mean / variance / min / max.
class RunningStats {
public:
  void add(f64 value);

  std::size_t count() const { return count_; }
  f64 mean() const { return mean_; }
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  f64 stddev() const;
  /// Population variance helper for tests.
  f64 variance() const;
  f64 min() const { return min_; }
  f64 max() const { return max_; }

  void clear();

private:
  std::size_t count_ = 0;
  f64 mean_ = 0.0;
  f64 m2_ = 0.0;
  f64 min_ = 0.0;
  f64 max_ = 0.0;
};

/// Exact percentile (linear interpolation) over a copy of the samples.
f64 percentile(std::vector<f64> samples, f64 p);

/// Streaming histogram with bounded relative error, for cycle/time
/// distributions that are too large to keep as raw samples (telemetry
/// task-duration histograms, bench reporters). HDR-style bucketing:
/// each power-of-two octave is split into 2^subbucket_bits linear
/// sub-buckets, so any quantile is accurate to a relative error of
/// 2^-subbucket_bits. Values below 1.0 (and negatives) collapse into
/// bucket 0 — the intended domain is cycle counts and durations >= 1.
///
/// Merging adds bin counts, so shard-local histograms merged in a fixed
/// shard order produce bitwise-identical results at any thread count
/// (the property the fabric telemetry determinism tests assert).
class StreamingHistogram {
public:
  explicit StreamingHistogram(u32 subbucket_bits = 5);

  void add(f64 value);
  /// Adds `other`'s population. Both must use the same subbucket_bits.
  void merge(const StreamingHistogram& other);
  void clear();

  std::size_t count() const { return count_; }
  f64 sum() const { return sum_; }
  f64 mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<f64>(count_); }
  f64 min() const { return count_ == 0 ? 0.0 : min_; }
  f64 max() const { return count_ == 0 ? 0.0 : max_; }
  u32 subbucket_bits() const { return subbucket_bits_; }

  /// Quantile estimate for q in [0, 1]; 0 on an empty histogram. Exact at
  /// the extremes (returns min/max) and within the relative error bound
  /// in between.
  f64 quantile(f64 q) const;
  f64 p50() const { return quantile(0.50); }
  f64 p95() const { return quantile(0.95); }
  f64 p99() const { return quantile(0.99); }

  /// Non-empty buckets as (lower edge, upper edge, count) rows, for
  /// exporters.
  struct Bucket {
    f64 lo;
    f64 hi;
    u64 count;
  };
  std::vector<Bucket> buckets() const;

private:
  std::size_t bucket_index(f64 value) const;
  f64 bucket_lo(std::size_t index) const;
  f64 bucket_hi(std::size_t index) const;

  u32 subbucket_bits_;
  u32 subbuckets_; // per octave
  std::vector<u64> bins_;
  std::size_t count_ = 0;
  f64 sum_ = 0.0;
  f64 min_ = 0.0;
  f64 max_ = 0.0;
};

} // namespace fvdf
