#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace fvdf {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> columns) {
  FVDF_CHECK_MSG(rows_.empty(), "set_header after rows were added");
  FVDF_CHECK(!columns.empty());
  header_ = std::move(columns);
}

void Table::add_row(std::vector<std::string> cells) {
  FVDF_CHECK_MSG(cells.size() == header_.size(),
                 "row has " << cells.size() << " cells, header has "
                            << header_.size());
  rows_.push_back(std::move(cells));
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  FVDF_CHECK(row < rows_.size() && col < header_.size());
  return rows_[row][col];
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.to_string();
}

std::string fmt_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string fmt_sci(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits, value);
  return buf;
}

} // namespace fvdf
