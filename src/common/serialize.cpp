#include "common/serialize.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace fvdf {

namespace {
constexpr char kMagic[4] = {'F', 'V', 'D', 'F'};
constexpr u32 kVersion = 2;      // payload checksum trailer
constexpr u32 kVersionNoSum = 1; // legacy: no checksum, still loadable

template <typename T> void append_pod(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Cursor over an in-memory payload with truncation-checked reads. The
/// whole file is small enough (field data of one run) to read at once,
/// which lets the checksum cover every payload byte before any of them
/// are interpreted.
struct Reader {
  const char* cursor;
  const char* end;
  const std::string& path;

  template <typename T> T pod(const char* what) {
    T value{};
    FVDF_CHECK_MSG(end - cursor >= static_cast<std::ptrdiff_t>(sizeof(T)),
                   path << ": checkpoint truncated while reading " << what
                        << " (" << (end - cursor) << " bytes left, need "
                        << sizeof(T) << ")");
    std::memcpy(&value, cursor, sizeof(T));
    cursor += sizeof(T);
    return value;
  }

  void bytes(void* out, std::size_t n, const char* what) {
    FVDF_CHECK_MSG(end - cursor >= static_cast<std::ptrdiff_t>(n),
                   path << ": checkpoint truncated in " << what);
    std::memcpy(out, cursor, n);
    cursor += n;
  }
};
} // namespace

u64 fnv1a64(const void* data, std::size_t bytes, u64 seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  u64 hash = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string hash_hex(u64 hash) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

const std::vector<f64>& FieldCheckpoint::field(const std::string& name) const {
  const auto it = fields.find(name);
  FVDF_CHECK_MSG(it != fields.end(), "checkpoint has no field '" << name << "'");
  return it->second;
}

void FieldCheckpoint::require_grid(i64 want_nx, i64 want_ny, i64 want_nz,
                                   const std::string& what) const {
  FVDF_CHECK_MSG(nx == want_nx && ny == want_ny && nz == want_nz,
                 what << ": checkpoint grid " << nx << "x" << ny << "x" << nz
                      << " does not match the expected " << want_nx << "x"
                      << want_ny << "x" << want_nz
                      << " — was this checkpoint written by a different case?");
}

void save_checkpoint(const std::string& path, const FieldCheckpoint& checkpoint) {
  // Serialize the payload (everything after magic+version) into memory
  // first so the version-2 checksum can cover it byte for byte.
  std::string payload;
  append_pod(payload, checkpoint.nx);
  append_pod(payload, checkpoint.ny);
  append_pod(payload, checkpoint.nz);
  append_pod(payload, static_cast<u32>(checkpoint.fields.size()));
  for (const auto& [name, data] : checkpoint.fields) {
    append_pod(payload, static_cast<u32>(name.size()));
    payload.append(name.data(), name.size());
    append_pod(payload, static_cast<u64>(data.size()));
    payload.append(reinterpret_cast<const char*>(data.data()),
                   data.size() * sizeof(f64));
  }
  const u64 checksum = fnv1a64(payload.data(), payload.size());

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    FVDF_CHECK_MSG(out.good(), "cannot open " << tmp);
    out.write(kMagic, 4);
    const u32 version = kVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    FVDF_CHECK_MSG(out.good(), "write failed: " << tmp);
  }
  FVDF_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "rename to " << path << " failed");
}

FieldCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FVDF_CHECK_MSG(in.good(), "cannot open checkpoint " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  FVDF_CHECK_MSG(in.good() || in.eof(), "read failed: " << path);
  const std::string file = std::move(buffer).str();

  FVDF_CHECK_MSG(file.size() >= 4 + sizeof(u32) &&
                     std::memcmp(file.data(), kMagic, 4) == 0,
                 path << " is not an FVDF checkpoint");
  u32 version = 0;
  std::memcpy(&version, file.data() + 4, sizeof(version));
  FVDF_CHECK_MSG(version == kVersion || version == kVersionNoSum,
                 path << ": unsupported checkpoint version " << version
                      << " (this build reads versions 1-" << kVersion << ")");

  const char* payload = file.data() + 4 + sizeof(u32);
  std::size_t payload_size = file.size() - 4 - sizeof(u32);
  if (version == kVersion) {
    FVDF_CHECK_MSG(payload_size >= sizeof(u64),
                   path << ": checkpoint truncated before the checksum");
    payload_size -= sizeof(u64);
    u64 stored = 0;
    std::memcpy(&stored, payload + payload_size, sizeof(stored));
    const u64 actual = fnv1a64(payload, payload_size);
    FVDF_CHECK_MSG(stored == actual,
                   path << ": checkpoint checksum mismatch (stored "
                        << hash_hex(stored) << ", computed " << hash_hex(actual)
                        << ") — the file is corrupt or was truncated/"
                           "bit-flipped after writing");
  }

  Reader reader{payload, payload + payload_size, path};
  FieldCheckpoint checkpoint;
  checkpoint.nx = reader.pod<i64>("nx");
  checkpoint.ny = reader.pod<i64>("ny");
  checkpoint.nz = reader.pod<i64>("nz");
  const u32 field_count = reader.pod<u32>("field count");
  FVDF_CHECK_MSG(field_count < 1024,
                 path << ": implausible field count " << field_count);
  for (u32 f = 0; f < field_count; ++f) {
    const u32 name_len = reader.pod<u32>("name length");
    FVDF_CHECK_MSG(name_len < 4096, path << ": implausible field-name length");
    std::string name(name_len, '\0');
    reader.bytes(name.data(), name_len, "field name");
    const u64 size = reader.pod<u64>("field size");
    FVDF_CHECK_MSG(size < (1ull << 32), path << ": implausible field size");
    std::vector<f64> data(size);
    reader.bytes(data.data(), static_cast<std::size_t>(size) * sizeof(f64),
                 ("field '" + name + "'").c_str());
    checkpoint.fields.emplace(std::move(name), std::move(data));
  }
  FVDF_CHECK_MSG(reader.cursor == reader.end,
                 path << ": " << (reader.end - reader.cursor)
                      << " trailing bytes after the last field");
  return checkpoint;
}

} // namespace fvdf
