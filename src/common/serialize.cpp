#include "common/serialize.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace fvdf {

namespace {
constexpr char kMagic[4] = {'F', 'V', 'D', 'F'};
constexpr u32 kVersion = 1;

template <typename T> void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T> T read_pod(std::ifstream& in, const char* what) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  FVDF_CHECK_MSG(in.good(), "checkpoint truncated while reading " << what);
  return value;
}
} // namespace

const std::vector<f64>& FieldCheckpoint::field(const std::string& name) const {
  const auto it = fields.find(name);
  FVDF_CHECK_MSG(it != fields.end(), "checkpoint has no field '" << name << "'");
  return it->second;
}

void save_checkpoint(const std::string& path, const FieldCheckpoint& checkpoint) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    FVDF_CHECK_MSG(out.good(), "cannot open " << tmp);
    out.write(kMagic, 4);
    write_pod(out, kVersion);
    write_pod(out, checkpoint.nx);
    write_pod(out, checkpoint.ny);
    write_pod(out, checkpoint.nz);
    write_pod(out, static_cast<u32>(checkpoint.fields.size()));
    for (const auto& [name, data] : checkpoint.fields) {
      write_pod(out, static_cast<u32>(name.size()));
      out.write(name.data(), static_cast<std::streamsize>(name.size()));
      write_pod(out, static_cast<u64>(data.size()));
      out.write(reinterpret_cast<const char*>(data.data()),
                static_cast<std::streamsize>(data.size() * sizeof(f64)));
    }
    FVDF_CHECK_MSG(out.good(), "write failed: " << tmp);
  }
  FVDF_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "rename to " << path << " failed");
}

FieldCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FVDF_CHECK_MSG(in.good(), "cannot open checkpoint " << path);

  char magic[4];
  in.read(magic, 4);
  FVDF_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 4) == 0,
                 path << " is not an FVDF checkpoint");
  const u32 version = read_pod<u32>(in, "version");
  FVDF_CHECK_MSG(version == kVersion,
                 "unsupported checkpoint version " << version);

  FieldCheckpoint checkpoint;
  checkpoint.nx = read_pod<i64>(in, "nx");
  checkpoint.ny = read_pod<i64>(in, "ny");
  checkpoint.nz = read_pod<i64>(in, "nz");
  const u32 field_count = read_pod<u32>(in, "field count");
  FVDF_CHECK_MSG(field_count < 1024, "implausible field count " << field_count);
  for (u32 f = 0; f < field_count; ++f) {
    const u32 name_len = read_pod<u32>(in, "name length");
    FVDF_CHECK_MSG(name_len < 4096, "implausible field-name length");
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    FVDF_CHECK_MSG(in.good(), "checkpoint truncated in field name");
    const u64 size = read_pod<u64>(in, "field size");
    FVDF_CHECK_MSG(size < (1ull << 32), "implausible field size");
    std::vector<f64> data(size);
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(size * sizeof(f64)));
    FVDF_CHECK_MSG(in.good(), "checkpoint truncated in field '" << name << "'");
    checkpoint.fields.emplace(std::move(name), std::move(data));
  }
  return checkpoint;
}

} // namespace fvdf
