#pragma once
// Minimal leveled logger. Single-threaded use is lock-free; concurrent use
// serializes line emission so interleaved output stays readable.

#include <sstream>
#include <string>

namespace fvdf {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, ErrorLvl = 4, Off = 5 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "trace|debug|info|warn|error|off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit(LogLevel level, const std::string& line);
}

/// Stream-style log statement: LOG(Info) << "solved in " << n << " iters";
class LogLine {
public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T> LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

private:
  LogLevel level_;
  std::ostringstream os_;
};

} // namespace fvdf

#define FVDF_LOG(lvl)                                                         \
  if (::fvdf::LogLevel::lvl < ::fvdf::log_level()) {                          \
  } else                                                                      \
    ::fvdf::LogLine(::fvdf::LogLevel::lvl)
