#pragma once
// Human-readable unit formatting for bench output: seconds, bytes, FLOP/s,
// cell throughput (the paper reports Gcell/s), and percentages.

#include <string>

#include "common/types.hpp"

namespace fvdf {

/// "1.23 ns" / "45.6 us" / "0.0542 s" style.
std::string fmt_seconds(f64 seconds);

/// "48.0 KiB" / "1.5 MiB" binary-prefixed bytes.
std::string fmt_bytes(f64 bytes);

/// "1.217 PFLOP/s" decimal-prefixed rate.
std::string fmt_flops(f64 flops_per_sec);

/// "2,855.48 Gcell/s" — paper's throughput unit (decimal giga).
std::string fmt_gcells(f64 cells_per_sec);

/// "68.18%" from a ratio in [0, inf).
std::string fmt_percent(f64 ratio);

/// Thousands separators for big integer counts: "687,351,000".
std::string fmt_count(u64 value);

} // namespace fvdf
