#pragma once
// Fundamental scalar and index types shared across the project.
//
// The paper's experiments use 32-bit floats everywhere ("For all
// architectures, all floating-point numbers used in the experiments are
// 32-bit"), so the simulated device code uses `f32`. Host-side oracles may
// use f64 where double precision is needed for validation.

#include <cstddef>
#include <cstdint>

namespace fvdf {

using f32 = float;
using f64 = double;
using i32 = std::int32_t;
using i64 = std::int64_t;
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// Linear index into a global 3D mesh (can exceed 2^31 cells at paper scale).
using CellIndex = i64;

} // namespace fvdf
