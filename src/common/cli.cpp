#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace fvdf {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_i64(const std::string& name, i64* target, const std::string& help) {
  FVDF_CHECK(target != nullptr);
  options_.push_back({name, help, /*is_flag=*/false, std::to_string(*target),
                      [target, name](const std::string& value) {
                        char* end = nullptr;
                        const long long parsed = std::strtoll(value.c_str(), &end, 10);
                        FVDF_CHECK_MSG(end && *end == '\0' && !value.empty(),
                                       "--" << name << ": not an integer: " << value);
                        *target = parsed;
                      },
                      nullptr});
}

void CliParser::add_f64(const std::string& name, f64* target, const std::string& help) {
  FVDF_CHECK(target != nullptr);
  std::ostringstream def;
  def << *target;
  options_.push_back({name, help, /*is_flag=*/false, def.str(),
                      [target, name](const std::string& value) {
                        char* end = nullptr;
                        const double parsed = std::strtod(value.c_str(), &end);
                        FVDF_CHECK_MSG(end && *end == '\0' && !value.empty(),
                                       "--" << name << ": not a number: " << value);
                        *target = parsed;
                      },
                      nullptr});
}

void CliParser::add_string(const std::string& name, std::string* target,
                           const std::string& help) {
  FVDF_CHECK(target != nullptr);
  options_.push_back({name, help, /*is_flag=*/false, *target,
                      [target](const std::string& value) { *target = value; }, nullptr});
}

void CliParser::add_flag(const std::string& name, bool* target, const std::string& help) {
  FVDF_CHECK(target != nullptr);
  Option opt{name, help, /*is_flag=*/true, *target ? "true" : "false", {}, target};
  options_.push_back(std::move(opt));
}

const CliParser::Option* CliParser::find(const std::string& name) const {
  for (const auto& opt : options_)
    if (opt.name == name) return &opt;
  return nullptr;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    FVDF_CHECK_MSG(arg.rfind("--", 0) == 0, "unexpected positional argument: " << arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const Option* opt = find(arg);
    FVDF_CHECK_MSG(opt != nullptr, "unknown option --" << arg);
    if (opt->is_flag) {
      FVDF_CHECK_MSG(!has_value, "--" << arg << " is a flag and takes no value");
      *opt->flag_target = true;
      continue;
    }
    if (!has_value) {
      FVDF_CHECK_MSG(i + 1 < argc, "--" << arg << " requires a value");
      value = argv[++i];
    }
    opt->apply(value);
  }
  return true;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& opt : options_) {
    os << "  --" << opt.name << (opt.is_flag ? "" : " <value>") << "\n      "
       << opt.help << " (default: " << opt.default_repr << ")\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

} // namespace fvdf
