#pragma once
// Tiny declarative command-line parser for examples and bench harnesses.
// Supports --name value, --name=value, and boolean --flag forms, generates
// --help text, and validates unknown options (typos fail loudly).

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fvdf {

class CliParser {
public:
  CliParser(std::string program, std::string description);

  void add_i64(const std::string& name, i64* target, const std::string& help);
  void add_f64(const std::string& name, f64* target, const std::string& help);
  void add_string(const std::string& name, std::string* target, const std::string& help);
  void add_flag(const std::string& name, bool* target, const std::string& help);

  /// Parses argv. Returns false (after printing usage) if --help was given.
  /// Throws fvdf::Error on unknown options or malformed values.
  bool parse(int argc, const char* const* argv);

  std::string usage() const;

private:
  struct Option {
    std::string name;
    std::string help;
    bool is_flag;
    std::string default_repr;
    std::function<void(const std::string&)> apply;
    bool* flag_target = nullptr;
  };

  const Option* find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
};

} // namespace fvdf
