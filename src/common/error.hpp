#pragma once
// Error handling helpers.
//
// FVDF_CHECK is used for conditions that indicate a programming error or a
// violated invariant (analogous to contract assertions in the C++ Core
// Guidelines sense). It is always on, including in release builds: the
// simulator must never silently produce wrong physics.

#include <sstream>
#include <stdexcept>
#include <string>

namespace fvdf {

/// Exception thrown on violated invariants and invalid configuration.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
} // namespace detail

} // namespace fvdf

#define FVDF_CHECK(expr)                                                      \
  do {                                                                        \
    if (!(expr))                                                              \
      ::fvdf::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define FVDF_CHECK_MSG(expr, msg)                                             \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream fvdf_os_;                                            \
      fvdf_os_ << msg;                                                        \
      ::fvdf::detail::throw_check_failure(#expr, __FILE__, __LINE__,          \
                                          fvdf_os_.str());                    \
    }                                                                         \
  } while (0)
