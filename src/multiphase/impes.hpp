#pragma once
// IMPES (IMplicit Pressure, Explicit Saturation) two-phase flow — the
// nonlinear multiphase system the paper positions its single-phase kernel
// as the preliminary step towards (Sec. II-A). Each time step:
//
//  1. total mobility lambda_t(S) = krw(S)/mu_w + krn(S)/mu_n per cell;
//  2. IMPLICIT pressure: the paper's matrix-free CG/PCG solve with the
//     saturation-dependent mobility field (this is exactly the linear
//     system the dataflow kernel accelerates — now inside a nonlinear
//     outer loop that re-solves it every step);
//  3. total Darcy face fluxes from the new pressure;
//  4. EXPLICIT saturation transport with donor-cell (upwind) fractional
//     flow and a CFL-limited sub-step — the Buckley-Leverett hyperbolic
//     update.
//
// The scheme is locally conservative: the change of wetting-phase volume
// in the interior equals injected minus produced volume across the well
// (Dirichlet) cells, which the tests check to rounding accuracy.

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "fv/problem.hpp"
#include "mesh/bc.hpp"
#include "mesh/cartesian.hpp"
#include "mesh/fields.hpp"
#include "multiphase/relperm.hpp"
#include "solver/cg.hpp"

namespace fvdf::multiphase {

/// Pluggable per-step pressure solver. Receives the step's FlowProblem
/// (saturation-dependent mobility already folded in) and returns the
/// pressure field plus solver diagnostics. The default runs the host
/// Jacobi-PCG; core::make_dataflow_pressure_backend routes every step's
/// solve through the simulated wafer-scale device instead.
struct PressureStepResult {
  std::vector<f64> pressure;
  u64 iterations = 0;
  bool converged = false;
};
using PressureBackend = std::function<PressureStepResult(const FlowProblem&)>;

struct ImpesOptions {
  f64 dt = 0.1;          // outer (pressure) step
  i64 steps = 20;
  f64 porosity = 0.2;
  CoreyRelPerm relperm{};
  Fluids fluids{};
  CgOptions cg{};        // per-step pressure solve
  bool jacobi = true;
  f64 max_cfl = 0.5;     // saturation sub-step CFL target
  bool record_history = false;
  PressureBackend backend; // empty = host PCG with `cg`/`jacobi` above
};

struct ImpesResult {
  std::vector<f64> pressure;   // final pressure field
  std::vector<f64> saturation; // final wetting saturation
  std::vector<std::vector<f64>> saturation_history; // per outer step if recorded
  std::vector<u64> pressure_iterations;             // CG iterations per step
  u64 total_substeps = 0;      // CFL sub-steps taken overall
  f64 injected = 0;            // wetting volume entering across well cells
  f64 produced = 0;            // wetting volume leaving across well cells
  f64 mass_balance_error = 0;  // |dV_w - (injected - produced)|
  bool all_converged = true;
};

/// Runs an IMPES simulation. `pressure_bc` pins the well pressures (the
/// injector high, producer low); `injector_cells` lists the Dirichlet
/// cells that source wetting fluid (their saturation is held at the
/// flooded value 1 - srn). `initial_sw` defaults to the residual
/// saturation srw everywhere (dry domain).
ImpesResult run_impes(const CartesianMesh3D& mesh, const CellField<f64>& permeability,
                      const DirichletSet& pressure_bc,
                      const std::vector<CellIndex>& injector_cells,
                      const ImpesOptions& options, std::vector<f64> initial_sw = {});

} // namespace fvdf::multiphase
