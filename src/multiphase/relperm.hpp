#pragma once
// Two-phase relative permeability and fractional flow — the constitutive
// relations of the "complete set of discretized nonlinear multiphase flow
// equations" the paper names as the goal its single-phase kernel is the
// "key preliminary step" towards (Sec. II-A).
//
// Corey-type power-law curves over the mobile-saturation range:
//   se  = (sw - srw) / (1 - srw - srn)          (effective saturation)
//   krw = krw_max * se^nw,  krn = krn_max * (1 - se)^nn
// Wetting phase = injected water/CO2-analogue; non-wetting = resident.

#include "common/types.hpp"

namespace fvdf::multiphase {

struct CoreyRelPerm {
  f64 exponent_w = 2.0;
  f64 exponent_n = 2.0;
  f64 srw = 0.0;      // residual wetting saturation
  f64 srn = 0.0;      // residual non-wetting saturation
  f64 krw_max = 1.0;
  f64 krn_max = 1.0;

  /// Effective (normalized mobile) saturation, clamped to [0, 1].
  f64 effective(f64 sw) const;
  /// Wetting-phase relative permeability at saturation sw.
  f64 krw(f64 sw) const;
  /// Non-wetting-phase relative permeability at saturation sw.
  f64 krn(f64 sw) const;
};

struct Fluids {
  f64 mu_w = 1.0; // wetting viscosity
  f64 mu_n = 1.0; // non-wetting viscosity
};

/// Phase and total mobilities at a saturation.
struct Mobilities {
  f64 lambda_w = 0;
  f64 lambda_n = 0;
  f64 total() const { return lambda_w + lambda_n; }
  /// Fractional flow of the wetting phase, f_w = lambda_w / lambda_t.
  f64 fw() const { return lambda_w / (lambda_w + lambda_n); }
};

Mobilities mobilities(const CoreyRelPerm& relperm, const Fluids& fluids, f64 sw);

/// d f_w / d sw by central difference — the wave speed of the
/// Buckley-Leverett equation, used for the CFL limit.
f64 fractional_flow_derivative(const CoreyRelPerm& relperm, const Fluids& fluids,
                               f64 sw, f64 eps = 1e-6);

/// Maximum of |df_w/dsw| over the mobile range (sampled), a conservative
/// global CFL constant.
f64 max_wave_speed(const CoreyRelPerm& relperm, const Fluids& fluids,
                   int samples = 256);

} // namespace fvdf::multiphase
