#include "multiphase/impes.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "fv/problem.hpp"
#include "solver/pressure_solve.hpp"

namespace fvdf::multiphase {

namespace {

/// One interior face with its geometric transmissibility and cell pair,
/// gathered once (the face list view of the Cartesian mesh).
struct FaceRef {
  CellIndex a, b; // flux positive a -> b
  f64 trans;
};

std::vector<FaceRef> gather_faces(const CartesianMesh3D& mesh,
                                  const FaceTransmissibility& trans) {
  std::vector<FaceRef> faces;
  faces.reserve(static_cast<std::size_t>(mesh.x_face_count() + mesh.y_face_count() +
                                         mesh.z_face_count()));
  for (i64 z = 0; z < mesh.nz(); ++z)
    for (i64 y = 0; y < mesh.ny(); ++y)
      for (i64 x = 0; x < mesh.nx(); ++x) {
        const CellIndex k = mesh.index(x, y, z);
        if (x < mesh.nx() - 1)
          faces.push_back({k, mesh.index(x + 1, y, z),
                           trans.x_faces[static_cast<std::size_t>(
                               mesh.x_face_index(x, y, z))]});
        if (y < mesh.ny() - 1)
          faces.push_back({k, mesh.index(x, y + 1, z),
                           trans.y_faces[static_cast<std::size_t>(
                               mesh.y_face_index(x, y, z))]});
        if (z < mesh.nz() - 1)
          faces.push_back({k, mesh.index(x, y, z + 1),
                           trans.z_faces[static_cast<std::size_t>(
                               mesh.z_face_index(x, y, z))]});
      }
  return faces;
}

} // namespace

ImpesResult run_impes(const CartesianMesh3D& mesh, const CellField<f64>& permeability,
                      const DirichletSet& pressure_bc,
                      const std::vector<CellIndex>& injector_cells,
                      const ImpesOptions& options, std::vector<f64> initial_sw) {
  FVDF_CHECK(options.steps >= 1 && options.dt > 0 && options.porosity > 0);
  FVDF_CHECK(options.max_cfl > 0 && options.max_cfl <= 1.0);
  const auto n = static_cast<std::size_t>(mesh.cell_count());
  const f64 flooded = 1.0 - options.relperm.srn;
  const f64 pore_volume = options.porosity * mesh.cell_volume();

  ImpesResult result;
  result.saturation = initial_sw.empty()
                          ? std::vector<f64>(n, options.relperm.srw)
                          : std::move(initial_sw);
  FVDF_CHECK(result.saturation.size() == n);
  for (CellIndex k : injector_cells) {
    FVDF_CHECK_MSG(pressure_bc.contains(k), "injector cells must be Dirichlet");
    result.saturation[static_cast<std::size_t>(k)] = flooded;
  }
  std::vector<u8> is_injector(n, 0), is_well(n, 0);
  for (CellIndex k : injector_cells) is_injector[static_cast<std::size_t>(k)] = 1;
  for (const auto& [idx, value] : pressure_bc.sorted())
    is_well[static_cast<std::size_t>(idx)] = 1;

  if (options.record_history) result.saturation_history.push_back(result.saturation);

  const f64 s_max_wave = max_wave_speed(options.relperm, options.fluids);
  const f64 initial_water = [&] {
    f64 total = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (!is_well[i]) total += result.saturation[i];
    return total * pore_volume;
  }();

  std::vector<f64> total_flux;       // per face, positive a -> b
  std::vector<f64> out_magnitude(n); // CFL bookkeeping

  for (i64 step = 0; step < options.steps; ++step) {
    // --- 1. mobility field from the current saturation ---
    CellField<f64> lambda_t(mesh);
    for (std::size_t i = 0; i < n; ++i)
      lambda_t.data()[i] =
          mobilities(options.relperm, options.fluids, result.saturation[i]).total();

    // --- 2. implicit pressure (the paper's linear system, per step) ---
    const FlowProblem problem(mesh, permeability, lambda_t, pressure_bc);
    PressureStepResult solve;
    if (options.backend) {
      solve = options.backend(problem);
    } else {
      const auto host = options.jacobi
                            ? solve_pressure_host_jacobi(problem, options.cg)
                            : solve_pressure_host(problem, options.cg);
      solve = PressureStepResult{host.pressure, host.cg.iterations,
                                 host.cg.converged};
    }
    result.pressure_iterations.push_back(solve.iterations);
    result.all_converged = result.all_converged && solve.converged;
    result.pressure = std::move(solve.pressure);

    // --- 3. total Darcy fluxes, consistent with the pressure operator's
    //        arithmetic mobility averaging ---
    const auto faces = gather_faces(mesh, problem.transmissibility());
    total_flux.assign(faces.size(), 0.0);
    std::fill(out_magnitude.begin(), out_magnitude.end(), 0.0);
    for (std::size_t f = 0; f < faces.size(); ++f) {
      const FaceRef& face = faces[f];
      const f64 lambda_face = 0.5 * (lambda_t.data()[static_cast<std::size_t>(face.a)] +
                                     lambda_t.data()[static_cast<std::size_t>(face.b)]);
      const f64 q = face.trans * lambda_face *
                    (result.pressure[static_cast<std::size_t>(face.a)] -
                     result.pressure[static_cast<std::size_t>(face.b)]);
      total_flux[f] = q;
      out_magnitude[static_cast<std::size_t>(q > 0 ? face.a : face.b)] += std::fabs(q);
    }

    // --- 4. CFL-limited explicit saturation sub-steps ---
    f64 max_rate = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (!is_well[i]) max_rate = std::max(max_rate, out_magnitude[i]);
    const f64 dt_stable = max_rate > 0
                              ? options.max_cfl * pore_volume /
                                    (max_rate * std::max(s_max_wave, 1e-12))
                              : options.dt;
    const auto substeps =
        static_cast<i64>(std::ceil(options.dt / std::max(dt_stable, 1e-30)));
    const f64 dt_sub = options.dt / static_cast<f64>(substeps);
    result.total_substeps += static_cast<u64>(substeps);

    for (i64 sub = 0; sub < substeps; ++sub) {
      for (std::size_t f = 0; f < faces.size(); ++f) {
        const FaceRef& face = faces[f];
        const f64 q = total_flux[f];
        if (q == 0.0) continue;
        // Donor-cell upwinding of the fractional flow.
        const CellIndex donor = q > 0 ? face.a : face.b;
        const f64 fw = mobilities(options.relperm, options.fluids,
                                  result.saturation[static_cast<std::size_t>(donor)])
                           .fw();
        const f64 water = fw * q * dt_sub; // signed a -> b
        // Update interior cells; flux across well faces books in/out flow.
        if (!is_well[static_cast<std::size_t>(face.a)])
          result.saturation[static_cast<std::size_t>(face.a)] -= water / pore_volume;
        else if (water > 0)
          result.injected += water;
        else
          result.produced -= water;
        if (!is_well[static_cast<std::size_t>(face.b)])
          result.saturation[static_cast<std::size_t>(face.b)] += water / pore_volume;
        else if (water > 0)
          result.produced += water;
        else
          result.injected -= water;
      }
      // Injector cells stay flooded (their saturation is a boundary value).
      for (CellIndex k : injector_cells)
        result.saturation[static_cast<std::size_t>(k)] = flooded;
    }
    if (options.record_history)
      result.saturation_history.push_back(result.saturation);
  }

  f64 final_water = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (!is_well[i]) final_water += result.saturation[i];
  final_water *= pore_volume;
  result.mass_balance_error =
      std::fabs((final_water - initial_water) - (result.injected - result.produced));
  return result;
}

} // namespace fvdf::multiphase
