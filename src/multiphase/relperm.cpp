#include "multiphase/relperm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace fvdf::multiphase {

f64 CoreyRelPerm::effective(f64 sw) const {
  const f64 mobile = 1.0 - srw - srn;
  FVDF_CHECK_MSG(mobile > 0, "residual saturations leave no mobile range");
  return std::clamp((sw - srw) / mobile, 0.0, 1.0);
}

f64 CoreyRelPerm::krw(f64 sw) const {
  return krw_max * std::pow(effective(sw), exponent_w);
}

f64 CoreyRelPerm::krn(f64 sw) const {
  return krn_max * std::pow(1.0 - effective(sw), exponent_n);
}

Mobilities mobilities(const CoreyRelPerm& relperm, const Fluids& fluids, f64 sw) {
  FVDF_CHECK(fluids.mu_w > 0 && fluids.mu_n > 0);
  return Mobilities{relperm.krw(sw) / fluids.mu_w, relperm.krn(sw) / fluids.mu_n};
}

f64 fractional_flow_derivative(const CoreyRelPerm& relperm, const Fluids& fluids,
                               f64 sw, f64 eps) {
  const f64 lo = std::max(relperm.srw, sw - eps);
  const f64 hi = std::min(1.0 - relperm.srn, sw + eps);
  if (hi <= lo) return 0.0;
  const f64 f_hi = mobilities(relperm, fluids, hi).fw();
  const f64 f_lo = mobilities(relperm, fluids, lo).fw();
  return (f_hi - f_lo) / (hi - lo);
}

f64 max_wave_speed(const CoreyRelPerm& relperm, const Fluids& fluids, int samples) {
  FVDF_CHECK(samples >= 2);
  f64 best = 0;
  for (int i = 0; i <= samples; ++i) {
    const f64 sw = relperm.srw + (1.0 - relperm.srw - relperm.srn) *
                                     static_cast<f64>(i) / samples;
    best = std::max(best, std::fabs(fractional_flow_derivative(relperm, fluids, sw)));
  }
  return best;
}

} // namespace fvdf::multiphase
