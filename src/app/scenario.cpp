#include "app/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <ostream>
#include <set>

#include "common/error.hpp"
#include "common/image.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "core/solver.hpp"
#include "fv/residual.hpp"
#include "mesh/vtk.hpp"
#include "solver/blas.hpp"
#include "solver/pressure_solve.hpp"
#include "solver/transient.hpp"
#include "telemetry/host_profiler.hpp"

namespace fvdf::app {

const char* to_string(Backend backend) {
  switch (backend) {
  case Backend::HostCg: return "host CG (f64)";
  case Backend::HostPcg: return "host Jacobi-PCG (f64)";
  case Backend::Dataflow: return "simulated dataflow device (fp32)";
  }
  return "?";
}

namespace {

const std::set<std::string> kKnownKeys = {
    "mesh.nx", "mesh.ny", "mesh.nz", "mesh.dx", "mesh.dy", "mesh.dz",
    "perm.kind", "perm.value", "perm.low", "perm.high", "perm.thickness",
    "perm.sigma", "perm.seed", "perm.smoothing", "perm.background",
    "perm.channel", "perm.count",
    "wells.injector_pressure", "wells.producer_pressure",
    "wells.injector_kind", "wells.rate",
    "solver.backend", "solver.tolerance", "solver.max_iterations",
    "solver.sim_threads", "solver.verify",
    "transient.enabled", "transient.dt", "transient.steps",
    "transient.porosity", "transient.compressibility", "transient.resume",
    "output.vtk", "output.checkpoint", "output.heatmap",
    "output.host_profile",
};

CellField<f64> build_permeability(const Config& config, const CartesianMesh3D& mesh) {
  const std::string kind = config.get_string("perm.kind", "homogeneous");
  Rng rng(static_cast<u64>(config.get_i64("perm.seed", 1)));
  if (kind == "homogeneous")
    return perm::homogeneous(mesh, config.get_f64("perm.value", 1.0));
  if (kind == "layered")
    return perm::layered(mesh, config.get_f64("perm.low", 1.0),
                         config.get_f64("perm.high", 100.0),
                         config.get_i64("perm.thickness", 2));
  if (kind == "lognormal")
    return perm::lognormal(mesh, rng, 0.0, config.get_f64("perm.sigma", 1.0),
                           static_cast<int>(config.get_i64("perm.smoothing", 2)));
  if (kind == "channelized")
    return perm::channelized(mesh, rng, config.get_f64("perm.background", 1.0),
                             config.get_f64("perm.channel", 500.0),
                             static_cast<int>(config.get_i64("perm.count", 3)));
  throw Error("perm.kind: unknown geomodel '" + kind + "'");
}

ScalarImage top_layer(const CartesianMesh3D& mesh, const std::vector<f64>& field) {
  ScalarImage image;
  image.nx = mesh.nx();
  image.ny = mesh.ny();
  image.values.assign(field.begin(),
                      field.begin() + static_cast<std::ptrdiff_t>(image.nx * image.ny));
  return image;
}

/// Shortest-round-trip decimal rendering, so canonical_case_text is a
/// stable function of the parsed value, not of its spelling ("0.50",
/// "5e-1" and "0.5" all canonicalize to "0.5").
std::string fmt_f64(f64 value) {
  char buffer[32];
  const auto res = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, res.ptr);
}

} // namespace

std::shared_ptr<const FlowProblem> problem_from_config(const Config& config) {
  CartesianMesh3D mesh(config.get_i64("mesh.nx", 8), config.get_i64("mesh.ny", 8),
                       config.get_i64("mesh.nz", 8), config.get_f64("mesh.dx", 1.0),
                       config.get_f64("mesh.dy", 1.0), config.get_f64("mesh.dz", 1.0));
  auto permeability = build_permeability(config, mesh);
  const std::string injector_kind =
      config.get_string("wells.injector_kind", "pressure");

  if (injector_kind == "pressure") {
    auto bc = DirichletSet::injector_producer(
        mesh, config.get_f64("wells.injector_pressure", 1.0),
        config.get_f64("wells.producer_pressure", 0.0));
    return std::make_shared<FlowProblem>(mesh, std::move(permeability),
                                         /*viscosity=*/1.0, std::move(bc));
  }
  if (injector_kind == "rate") {
    // Rate-controlled injector column at (0,0); only the producer column is
    // pressure-pinned. The total rate is distributed evenly over the column.
    DirichletSet bc;
    for (i64 z = 0; z < mesh.nz(); ++z)
      bc.pin(mesh, {mesh.nx() - 1, mesh.ny() - 1, z},
             config.get_f64("wells.producer_pressure", 0.0));
    auto problem = std::make_shared<FlowProblem>(mesh, std::move(permeability),
                                                 /*viscosity=*/1.0, std::move(bc));
    const f64 rate = config.get_f64("wells.rate", 1.0);
    for (i64 z = 0; z < mesh.nz(); ++z)
      problem->add_source(mesh.index(0, 0, z), rate / static_cast<f64>(mesh.nz()));
    return problem;
  }
  throw Error("wells.injector_kind: expected 'pressure' or 'rate', got '" +
              injector_kind + "'");
}

Scenario scenario_from_config(const Config& config) {
  return scenario_from_config(config, nullptr);
}

Scenario scenario_from_config(const Config& config,
                              std::shared_ptr<const FlowProblem> problem) {
  for (const std::string& key : config.keys())
    FVDF_CHECK_MSG(kKnownKeys.count(key) != 0, "unknown config key '" << key << "'");

  Scenario scenario;
  scenario.problem = problem ? std::move(problem) : problem_from_config(config);

  const std::string backend = config.get_string("solver.backend", "host-pcg");
  if (backend == "host") {
    scenario.backend = Backend::HostCg;
  } else if (backend == "host-pcg") {
    scenario.backend = Backend::HostPcg;
  } else if (backend == "dataflow") {
    scenario.backend = Backend::Dataflow;
  } else {
    throw Error("solver.backend: unknown backend '" + backend + "'");
  }
  scenario.tolerance = config.get_f64("solver.tolerance", 1e-18);
  FVDF_CHECK_MSG(scenario.tolerance >= 0, "solver.tolerance must be >= 0");
  scenario.max_iterations =
      static_cast<u64>(config.get_i64("solver.max_iterations", 100'000));
  const i64 sim_threads = config.get_i64("solver.sim_threads", 1);
  FVDF_CHECK_MSG(sim_threads >= 0, "solver.sim_threads must be >= 0");
  scenario.sim_threads = static_cast<u32>(sim_threads);
  scenario.verify = config.get_bool("solver.verify", false);

  scenario.transient = config.get_bool("transient.enabled", false);
  scenario.dt = config.get_f64("transient.dt", 1.0);
  scenario.steps = config.get_i64("transient.steps", 10);
  scenario.porosity = config.get_f64("transient.porosity", 0.2);
  scenario.compressibility = config.get_f64("transient.compressibility", 1e-2);
  FVDF_CHECK_MSG(!scenario.transient || (scenario.dt > 0 && scenario.steps >= 1),
                 "transient.dt/steps invalid");
  scenario.resume_path = config.get_string("transient.resume", "");
  FVDF_CHECK_MSG(scenario.resume_path.empty() || scenario.transient,
                 "transient.resume requires transient.enabled = true");

  scenario.vtk_path = config.get_string("output.vtk", "");
  scenario.checkpoint_path = config.get_string("output.checkpoint", "");
  scenario.heatmap = config.get_bool("output.heatmap", false);
  scenario.host_profile_dir = config.get_string("output.host_profile", "");
  FVDF_CHECK_MSG(scenario.host_profile_dir.empty() ||
                     scenario.backend == Backend::Dataflow,
                 "output.host_profile requires solver.backend = dataflow");
  return scenario;
}

std::string canonical_case_text(const Config& config) {
  // Validate the schema first so canonicalization never silently accepts
  // a case scenario_from_config would reject.
  for (const std::string& key : config.keys())
    FVDF_CHECK_MSG(kKnownKeys.count(key) != 0, "unknown config key '" << key << "'");

  std::string out = "fvdf-case-v1\n";
  const auto emit_f64 = [&](const char* key, f64 fallback) {
    out += key;
    out += '=';
    out += fmt_f64(config.get_f64(key, fallback));
    out += '\n';
  };
  const auto emit_i64 = [&](const char* key, i64 fallback) {
    out += key;
    out += '=';
    out += std::to_string(config.get_i64(key, fallback));
    out += '\n';
  };
  const auto emit_str = [&](const char* key, const std::string& value) {
    out += key;
    out += '=';
    out += value;
    out += '\n';
  };

  emit_i64("mesh.nx", 8);
  emit_i64("mesh.ny", 8);
  emit_i64("mesh.nz", 8);
  emit_f64("mesh.dx", 1.0);
  emit_f64("mesh.dy", 1.0);
  emit_f64("mesh.dz", 1.0);

  // Only the parameters the chosen geomodel actually reads: an ignored
  // key (perm.sigma with kind=homogeneous) must not split the cache.
  const std::string kind = config.get_string("perm.kind", "homogeneous");
  emit_str("perm.kind", kind);
  if (kind == "homogeneous") {
    emit_f64("perm.value", 1.0);
  } else if (kind == "layered") {
    emit_f64("perm.low", 1.0);
    emit_f64("perm.high", 100.0);
    emit_i64("perm.thickness", 2);
  } else if (kind == "lognormal") {
    emit_f64("perm.sigma", 1.0);
    emit_i64("perm.seed", 1);
    emit_i64("perm.smoothing", 2);
  } else if (kind == "channelized") {
    emit_f64("perm.background", 1.0);
    emit_f64("perm.channel", 500.0);
    emit_i64("perm.count", 3);
    emit_i64("perm.seed", 1);
  } else {
    throw Error("perm.kind: unknown geomodel '" + kind + "'");
  }

  const std::string injector_kind =
      config.get_string("wells.injector_kind", "pressure");
  emit_str("wells.injector_kind", injector_kind);
  if (injector_kind == "pressure") {
    emit_f64("wells.injector_pressure", 1.0);
    emit_f64("wells.producer_pressure", 0.0);
  } else if (injector_kind == "rate") {
    emit_f64("wells.producer_pressure", 0.0);
    emit_f64("wells.rate", 1.0);
  } else {
    throw Error("wells.injector_kind: expected 'pressure' or 'rate', got '" +
                injector_kind + "'");
  }

  emit_str("solver.backend", config.get_string("solver.backend", "host-pcg"));
  emit_f64("solver.tolerance", 1e-18);
  emit_i64("solver.max_iterations", 100'000);

  const bool transient = config.get_bool("transient.enabled", false);
  emit_str("transient.enabled", transient ? "true" : "false");
  if (transient) {
    emit_f64("transient.dt", 1.0);
    emit_i64("transient.steps", 10);
    emit_f64("transient.porosity", 0.2);
    emit_f64("transient.compressibility", 1e-2);
  }
  return out;
}

std::string case_fingerprint(const Config& config) {
  const std::string text = canonical_case_text(config);
  return hash_hex(fnv1a64(text.data(), text.size()));
}

ScenarioOutcome run_scenario(const Scenario& scenario, std::ostream& log,
                             const RunHooks* hooks) {
  FVDF_CHECK(scenario.problem != nullptr);
  const FlowProblem& problem = *scenario.problem;
  const auto& mesh = problem.mesh();
  log << "scenario: " << mesh.describe() << ", backend " << to_string(scenario.backend)
      << (scenario.transient ? " (transient)" : " (steady)") << '\n';

  // Transient resume: continue from a prior run's checkpoint. The grid
  // must match and the step counter tells us how many steps remain.
  std::vector<f64> resume_state;
  i64 start_step = 0;
  if (scenario.transient && !scenario.resume_path.empty()) {
    const FieldCheckpoint checkpoint = load_checkpoint(scenario.resume_path);
    checkpoint.require_grid(mesh.nx(), mesh.ny(), mesh.nz(), "transient.resume");
    resume_state = checkpoint.field("pressure");
    const auto& step_field = checkpoint.field("transient_step");
    FVDF_CHECK_MSG(step_field.size() == 1,
                   "transient.resume: malformed transient_step field");
    start_step = static_cast<i64>(step_field[0]);
    FVDF_CHECK_MSG(start_step >= 0 && start_step <= scenario.steps,
                   "transient.resume: checkpoint is at step "
                       << start_step << " of a " << scenario.steps
                       << "-step schedule");
    log << "resuming from " << scenario.resume_path << " at step " << start_step
        << '/' << scenario.steps << '\n';
  }
  const i64 remaining_steps = scenario.transient ? scenario.steps - start_step : 0;

  ScenarioOutcome outcome;
  telemetry::HostProfiler host_profiler;
  const bool profile_host = !scenario.host_profile_dir.empty();
  const bool verify_preflight =
      scenario.verify && !(hooks != nullptr && hooks->skip_verify);
  if (scenario.transient && remaining_steps <= 0) {
    // Resumed a finished run: nothing to step, report the stored state.
    outcome.converged = true;
    outcome.pressure = resume_state;
    outcome.steps_completed = start_step;
  } else if (scenario.transient && scenario.backend == Backend::Dataflow) {
    core::DataflowConfig config;
    config.tolerance = static_cast<f32>(scenario.tolerance);
    config.max_iterations = scenario.max_iterations;
    config.jacobi_precondition = true;
    config.sim_threads = scenario.sim_threads;
    config.verify_preflight = verify_preflight;
    config.host_profiler = profile_host ? &host_profiler : nullptr;
    if (hooks != nullptr) config.artifacts = hooks->artifacts;
    config.initial_field = std::move(resume_state);
    core::TransientStepFn on_step;
    if (hooks != nullptr && hooks->on_step) {
      on_step = [&](i64 step, const core::DataflowResult& solve) {
        std::vector<f64> state(solve.pressure.begin(), solve.pressure.end());
        return hooks->on_step(start_step + step, scenario.steps,
                              solve.iterations, state);
      };
    }
    const auto result = core::solve_transient_dataflow(
        problem, scenario.dt, remaining_steps, scenario.porosity,
        scenario.compressibility, config, on_step);
    outcome.converged = result.all_converged;
    for (u64 iters : result.iterations_per_step) outcome.iterations += iters;
    outcome.pressure.assign(result.pressure.begin(), result.pressure.end());
    outcome.steps_completed = start_step + result.steps_completed;
    outcome.interrupted = result.interrupted;
    log << "device time across steps: " << result.total_device_seconds << " s (simulated)\n";
  } else if (scenario.transient) {
    TransientOptions options;
    options.dt = scenario.dt;
    options.steps = remaining_steps;
    options.porosity = scenario.porosity;
    options.total_compressibility = scenario.compressibility;
    options.cg.tolerance = scenario.tolerance;
    options.cg.max_iterations = scenario.max_iterations;
    options.jacobi = scenario.backend == Backend::HostPcg;
    if (hooks != nullptr && hooks->on_step) {
      options.on_step = [&](i64 step, u64 iterations,
                            const std::vector<f64>& state) {
        return hooks->on_step(start_step + step, scenario.steps, iterations,
                              state);
      };
    }
    const auto result =
        solve_transient_host(problem, options, std::move(resume_state));
    outcome.converged = result.all_converged;
    for (u64 iters : result.iterations_per_step) outcome.iterations += iters;
    outcome.pressure = result.pressure;
    outcome.steps_completed = start_step + result.steps_completed;
    outcome.interrupted = result.interrupted;
  } else if (scenario.backend == Backend::Dataflow) {
    core::DataflowConfig config;
    config.tolerance = static_cast<f32>(scenario.tolerance);
    config.max_iterations = scenario.max_iterations;
    config.sim_threads = scenario.sim_threads;
    config.verify_preflight = verify_preflight;
    config.host_profiler = profile_host ? &host_profiler : nullptr;
    if (hooks != nullptr) {
      config.artifacts = hooks->artifacts;
      config.telemetry = hooks->telemetry;
    }
    const auto result = core::solve_dataflow(problem, config);
    outcome.converged = result.converged;
    outcome.iterations = result.iterations;
    outcome.pressure.assign(result.pressure.begin(), result.pressure.end());
    outcome.residual_history = result.residual_history;
    log << "device: " << result.device_seconds << " s (simulated), "
        << result.fabric.messages_sent << " messages\n";
  } else {
    CgOptions options;
    options.tolerance = scenario.tolerance;
    options.max_iterations = scenario.max_iterations;
    const auto result = scenario.backend == Backend::HostPcg
                            ? solve_pressure_host_jacobi(problem, options)
                            : solve_pressure_host(problem, options);
    outcome.converged = result.cg.converged;
    outcome.iterations = result.cg.iterations;
    outcome.pressure = result.pressure;
  }

  const auto residual =
      compute_residual(problem, outcome.pressure);
  outcome.residual_norm = blas::norm2(residual.data(), residual.size());
  log << "iterations: " << outcome.iterations << ", Eq.(3) residual norm "
      << outcome.residual_norm << (outcome.converged ? "" : "  [NOT CONVERGED]")
      << (outcome.interrupted ? "  [INTERRUPTED at step " : "")
      << (outcome.interrupted ? std::to_string(outcome.steps_completed) + "]" : "")
      << '\n';

  if (!scenario.vtk_path.empty()) {
    write_vtk(scenario.vtk_path, mesh,
              {{"pressure", &outcome.pressure},
               {"permeability", &problem.permeability().data()}});
    log << "wrote " << scenario.vtk_path << '\n';
  }
  if (!scenario.checkpoint_path.empty()) {
    FieldCheckpoint checkpoint;
    checkpoint.nx = mesh.nx();
    checkpoint.ny = mesh.ny();
    checkpoint.nz = mesh.nz();
    checkpoint.fields["pressure"] = outcome.pressure;
    if (scenario.transient)
      checkpoint.fields["transient_step"] = {
          static_cast<f64>(outcome.steps_completed)};
    save_checkpoint(scenario.checkpoint_path, checkpoint);
    log << "wrote " << scenario.checkpoint_path << '\n';
  }
  if (scenario.heatmap)
    log << "pressure, top layer:\n" << ascii_heatmap(top_layer(mesh, outcome.pressure));
  if (profile_host) {
    if (host_profiler.captured()) {
      host_profiler.print_summary(log, scenario.sim_threads);
      for (const std::string& path :
           host_profiler.write(scenario.host_profile_dir))
        log << "wrote " << path << '\n';
    } else {
      log << "host profile: nothing captured (built with -DFVDF_TELEMETRY=OFF?)\n";
    }
  }
  return outcome;
}

} // namespace fvdf::app
