#pragma once
// Config-driven simulation scenarios: the glue between an INI file and the
// solver stack, used by the production-style driver (tools/fvdf_sim) and
// unit-tested directly. A scenario describes mesh, geomodel, wells, solver
// backend (host CG / host Jacobi-PCG / simulated dataflow device), an
// optional backward-Euler transient schedule, and output artifacts
// (VTK, checkpoint, terminal heatmap).
//
// Schema (all keys, defaults in parentheses):
//   [mesh]      nx, ny, nz (8); dx, dy, dz (1.0)
//   [perm]      kind = homogeneous|layered|lognormal|channelized
//               value (1.0) | low/high/thickness | sigma/seed/smoothing |
//               background/channel/count/seed
//   [wells]     injector_kind = pressure|rate (pressure);
//               injector_pressure (1.0), producer_pressure (0.0);
//               rate (1.0, total over the injector column, rate kind only)
//   [solver]    backend = host|host-pcg|dataflow (host-pcg),
//               tolerance (1e-18), max_iterations (100000),
//               sim_threads (1; 0 = hardware concurrency),
//               verify (false; dataflow only: static program verification
//               before the run — see docs/static_verification.md)
//   [transient] enabled (false), dt (1.0), steps (10),
//               porosity (0.2), compressibility (1e-2)
//   [output]    vtk (unset), checkpoint (unset), heatmap (false),
//               host_profile (unset; dataflow only: directory for the
//               host-side profiler bundle — see docs/observability.md,
//               "Host profiling")

#include <iosfwd>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "common/types.hpp"
#include "fv/problem.hpp"

namespace fvdf::app {

enum class Backend : u8 { HostCg, HostPcg, Dataflow };

const char* to_string(Backend backend);

struct Scenario {
  std::unique_ptr<FlowProblem> problem;

  Backend backend = Backend::HostPcg;
  f64 tolerance = 1e-18;
  u64 max_iterations = 100'000;
  // Worker threads for the dataflow fabric simulator (0 = hardware
  // concurrency, 1 = serial). Never changes results — see docs/simulator.md,
  // "Parallel execution model".
  u32 sim_threads = 1;
  // Dataflow backend only: run the static fabric verifier as a pre-flight
  // before every device solve (docs/static_verification.md).
  bool verify = false;

  bool transient = false;
  f64 dt = 1.0;
  i64 steps = 10;
  f64 porosity = 0.2;
  f64 compressibility = 1e-2;

  std::string vtk_path;
  std::string checkpoint_path;
  bool heatmap = false;
  // Dataflow backend only: attach the host-side execution profiler and
  // write host_profile.json + host_trace.json into this directory. For
  // transient runs the profile covers the last step's solve. Never changes
  // results (docs/observability.md, "Host profiling").
  std::string host_profile_dir;
};

/// Builds a scenario from a parsed config. Throws fvdf::Error with the
/// offending key on any invalid setting; rejects unknown keys (typos must
/// not silently fall back to defaults).
Scenario scenario_from_config(const Config& config);

struct ScenarioOutcome {
  bool converged = false;
  u64 iterations = 0; // total across steps for transient runs
  f64 residual_norm = 0;
  std::vector<f64> pressure;
};

/// Runs the scenario, writes its artifacts, and logs a human summary.
ScenarioOutcome run_scenario(const Scenario& scenario, std::ostream& log);

} // namespace fvdf::app
