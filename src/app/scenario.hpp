#pragma once
// Config-driven simulation scenarios: the glue between an INI file and the
// solver stack, used by the production-style drivers (tools/fvdf_sim and
// the tools/fvdf_serve daemon) and unit-tested directly. A scenario
// describes mesh, geomodel, wells, solver backend (host CG / host
// Jacobi-PCG / simulated dataflow device), an optional backward-Euler
// transient schedule, and output artifacts (VTK, checkpoint, terminal
// heatmap).
//
// Schema (all keys, defaults in parentheses):
//   [mesh]      nx, ny, nz (8); dx, dy, dz (1.0)
//   [perm]      kind = homogeneous|layered|lognormal|channelized
//               value (1.0) | low/high/thickness | sigma/seed/smoothing |
//               background/channel/count/seed
//   [wells]     injector_kind = pressure|rate (pressure);
//               injector_pressure (1.0), producer_pressure (0.0);
//               rate (1.0, total over the injector column, rate kind only)
//   [solver]    backend = host|host-pcg|dataflow (host-pcg),
//               tolerance (1e-18), max_iterations (100000),
//               sim_threads (1; 0 = hardware concurrency),
//               verify (false; dataflow only: static program verification
//               before the run — see docs/static_verification.md)
//   [transient] enabled (false), dt (1.0), steps (10),
//               porosity (0.2), compressibility (1e-2),
//               resume (unset; checkpoint path to continue from — the
//               file must carry matching grid dims, a "pressure" field
//               and the "transient_step" counter run_scenario writes)
//   [output]    vtk (unset), checkpoint (unset), heatmap (false),
//               host_profile (unset; dataflow only: directory for the
//               host-side profiler bundle — see docs/observability.md,
//               "Host profiling")

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "fv/problem.hpp"

namespace fvdf::core {
struct CaseArtifacts;
}
namespace fvdf::telemetry {
class Session;
}

namespace fvdf::app {

enum class Backend : u8 { HostCg, HostPcg, Dataflow };

const char* to_string(Backend backend);

struct Scenario {
  // Shared so long-lived callers (the serve daemon's content-addressed
  // cache) can reuse one built problem — mesh, permeability and
  // transmissibilities — across many runs of the same case.
  std::shared_ptr<const FlowProblem> problem;

  Backend backend = Backend::HostPcg;
  f64 tolerance = 1e-18;
  u64 max_iterations = 100'000;
  // Worker threads for the dataflow fabric simulator (0 = hardware
  // concurrency, 1 = serial). Never changes results — see docs/simulator.md,
  // "Parallel execution model".
  u32 sim_threads = 1;
  // Dataflow backend only: run the static fabric verifier as a pre-flight
  // before every device solve (docs/static_verification.md).
  bool verify = false;

  bool transient = false;
  f64 dt = 1.0;
  i64 steps = 10;
  f64 porosity = 0.2;
  f64 compressibility = 1e-2;
  // Transient only: resume from this checkpoint (written by a previous
  // interrupted run of the *same* case — grid dims are validated, and
  // "transient_step" picks up the step counter where it left off).
  std::string resume_path;

  std::string vtk_path;
  std::string checkpoint_path;
  bool heatmap = false;
  // Dataflow backend only: attach the host-side execution profiler and
  // write host_profile.json + host_trace.json into this directory. For
  // transient runs the profile covers the last step's solve. Never changes
  // results (docs/observability.md, "Host profiling").
  std::string host_profile_dir;
};

/// Builds just the flow problem (mesh + geomodel + wells) from a parsed
/// config — the expensive, cacheable part of scenario_from_config. Throws
/// fvdf::Error with the offending key on any invalid setting.
std::shared_ptr<const FlowProblem> problem_from_config(const Config& config);

/// Builds a scenario from a parsed config. Throws fvdf::Error with the
/// offending key on any invalid setting; rejects unknown keys (typos must
/// not silently fall back to defaults). The second overload reuses an
/// already-built problem (the serve daemon's cache) instead of building
/// one; the caller is responsible for `problem` matching the config.
Scenario scenario_from_config(const Config& config);
Scenario scenario_from_config(const Config& config,
                              std::shared_ptr<const FlowProblem> problem);

/// Canonical solve-relevant parameter text for a case config: every key
/// that changes solve *results or compiled artifacts* — mesh, geomodel,
/// wells, backend, tolerances, transient schedule — resolved against the
/// schema defaults and emitted in a fixed order. Execution knobs that
/// never change results (solver.sim_threads, solver.verify, all output.*
/// keys, transient.resume) are excluded, so two spellings of the same
/// case canonicalize identically. This is the preimage of the serve
/// daemon's content-addressed cache key (docs/serving.md).
std::string canonical_case_text(const Config& config);

/// FNV-1a 64 of canonical_case_text, as 16 hex digits.
std::string case_fingerprint(const Config& config);

/// Optional long-lived-caller hooks for run_scenario. All fields default
/// to "off"; none of them ever changes solve results.
struct RunHooks {
  /// Transient runs only: called after every completed backward-Euler
  /// step with the global 0-based step index (resume offset included),
  /// the total step count, that step's linear iterations and the updated
  /// field. Return false to stop after this step — the outcome then
  /// reports interrupted=true, and a checkpoint (if configured) records
  /// the state so a later run can resume. Drivers route SIGINT/SIGTERM
  /// here so a kill finishes the current step and checkpoints instead of
  /// dying mid-write.
  std::function<bool(i64 step, i64 total_steps, u64 iterations,
                     const std::vector<f64>& state)>
      on_step;
  /// Cross-run compiled-artifact reuse (dataflow backend; see
  /// core::CaseArtifacts for the sharing contract).
  std::shared_ptr<core::CaseArtifacts> artifacts;
  /// Skip the verify preflight even when scenario.verify is set — the
  /// caller holds a cached VerifyReport proving this exact case clean.
  bool skip_verify = false;
  /// Steady dataflow runs: attach this telemetry session to the solve so
  /// the outcome carries the device-reported residual history. Caller
  /// owns the session; it is finalized by the solve.
  telemetry::Session* telemetry = nullptr;
};

struct ScenarioOutcome {
  bool converged = false;
  u64 iterations = 0; // total across steps for transient runs
  f64 residual_norm = 0;
  std::vector<f64> pressure;
  // Transient bookkeeping: completed global step count, and whether
  // RunHooks::on_step stopped the run before scenario.steps.
  i64 steps_completed = 0;
  bool interrupted = false;
  // Device-reported residual history (steady dataflow with
  // RunHooks::telemetry attached; empty otherwise).
  std::vector<f64> residual_history;
};

/// Runs the scenario, writes its artifacts, and logs a human summary.
ScenarioOutcome run_scenario(const Scenario& scenario, std::ostream& log,
                             const RunHooks* hooks = nullptr);

} // namespace fvdf::app
