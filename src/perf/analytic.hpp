#pragma once
// Analytic (closed-form) performance models used to extrapolate the
// functional simulation to paper scale (687M cells cannot be simulated
// packet-by-packet on one host core — see DESIGN.md substitutions).
//
// CS-2 model:
//   t_alg2(iters)        = iters * Nz * c_jx / f_clock      (weak-scaling flat)
//   t_alg1(iters, W, H)  = iters * (Nz*(c_jx + c_vec) + c_hop*(W+H)) / f_clock
// where c_jx / c_vec are cycles per cell for the flux kernel and the CG
// vector updates, and c_hop models the all-reduce's linear dependence on
// the fabric perimeter (rows reduce left->right, column top->bottom, then
// broadcast back — Sec. III-C). Default constants are calibrated to
// Table III's 200x200 and 750x994 rows; the remaining rows then serve as
// the model's out-of-sample check (bench/table3_scaling prints the error).
//
// GPU model:
//   t = iters * (launch + bytes(n) / (bw * frac * occ(n))),
//   occ(n) = n / (n + half_saturation)
// a memory-traffic / effective-bandwidth model: the paper's roofline
// (Fig. 6) shows the CUDA kernel is memory-bound at 78% of peak, so time
// is traffic divided by achievable bandwidth, with an occupancy ramp that
// reproduces the small-grid inefficiency visible in Table III.

#include "common/types.hpp"
#include "perf/machine.hpp"

namespace fvdf {

struct Cs2ModelParams {
  f64 cycles_per_cell_jx = 64.69;  // fit: 0.0122 s / 225 iters / 922 cells @1.1 GHz
  f64 cycles_per_cell_vec = 21.6;  // fit: Table III 200x200 vs 750x994 intercept
  // Slope of the Alg-1 time in (W + H). Lumps wavelet transit AND the
  // per-hop reduction processing (task dispatch, scalar adds) — the whole
  // perimeter-proportional cost.
  f64 cycles_per_hop_allreduce = 106.4;
  // Pure wavelet-transit share of the above, calibrated from Table IV's
  // FLOP-free experiment: 0.0034 s / 225 iters over (750 + 994) hops.
  f64 cycles_per_hop_transit = 9.53;
};

class Cs2AnalyticModel {
public:
  explicit Cs2AnalyticModel(Cs2Spec spec = {}, Cs2ModelParams params = {});

  /// Device time for `iters` applications of Algorithm 2 (Jx only).
  f64 alg2_time(i64 nz, u64 iters) const;

  /// Device time for `iters` full CG iterations (Algorithm 1) on a
  /// width x height PE fabric.
  f64 alg1_time(i64 width, i64 height, i64 nz, u64 iters) const;

  /// Pure data-movement time (Table IV's FLOP-free experiment): wavelet
  /// transit of the all-reduce across the fabric perimeter; halo transfers
  /// overlap with the z-flux and are hidden.
  f64 comm_time(i64 width, i64 height, u64 iters) const;

  /// Throughput in cells/s given total cells processed per application.
  static f64 throughput(u64 cells, u64 iters, f64 seconds);

  /// FLOP/s using the paper's accounting: 96 FLOPs per cell per iteration,
  /// divided by the Algorithm 2 kernel time (the convention under which the
  /// paper reports 1.217 PFLOP/s; see EXPERIMENTS.md).
  f64 paper_convention_pflops(i64 width, i64 height, i64 nz, u64 iters) const;

  const Cs2Spec& spec() const { return spec_; }
  const Cs2ModelParams& params() const { return params_; }

private:
  Cs2Spec spec_;
  Cs2ModelParams params_;
};

struct GpuModelParams {
  f64 bytes_per_cell_jx = 72.0;   // effective HBM traffic per cell, Jx kernel
  f64 bytes_per_cell_cg_extra = 98.0; // additional traffic per cell per CG iter
  f64 half_saturation_cells = 5.5e7;  // occupancy ramp midpoint
  f64 launch_overhead_s = 5e-6;
  int launches_per_iter_alg1 = 8; // Jx + dots (2-stage) + vector updates
};

class GpuAnalyticModel {
public:
  explicit GpuAnalyticModel(GpuSpec spec, GpuModelParams params = {});

  f64 occupancy(u64 cells) const;
  f64 effective_bandwidth(u64 cells) const;

  f64 alg2_time(u64 cells, u64 iters) const;
  f64 alg1_time(u64 cells, u64 iters) const;

  const GpuSpec& spec() const { return spec_; }
  const GpuModelParams& params() const { return params_; }

private:
  GpuSpec spec_;
  GpuModelParams params_;
};

} // namespace fvdf
