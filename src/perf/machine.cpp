#include "perf/machine.hpp"

namespace fvdf {

GpuSpec GpuSpec::a100() {
  GpuSpec spec;
  spec.name = "NVIDIA A100 (40 GB)";
  spec.mem_bw_bytes = 1.555e12;
  spec.peak_flops_fp32 = 19.5e12;
  spec.achievable_bw_fraction = 0.78; // paper Fig. 6: 78% of peak, memory-bound
  return spec;
}

GpuSpec GpuSpec::h100() {
  GpuSpec spec;
  spec.name = "NVIDIA H100 (Grace Hopper, 95 GB)";
  spec.mem_bw_bytes = 3.35e12;
  spec.peak_flops_fp32 = 66.9e12;
  // Calibrated against Table II: the H100/A100 ratio observed by the paper
  // (23.19s / 11.39s = 2.04x) is slightly below the raw bandwidth ratio.
  spec.achievable_bw_fraction = 0.76;
  return spec;
}

} // namespace fvdf
