#include "perf/opcount.hpp"

#include <sstream>

#include "common/error.hpp"

namespace fvdf {

const char* to_string(Opcode op) {
  switch (op) {
  case Opcode::FMUL: return "FMUL";
  case Opcode::FSUB: return "FSUB";
  case Opcode::FADD: return "FADD";
  case Opcode::FNEG: return "FNEG";
  case Opcode::FMA: return "FMA";
  case Opcode::FMOV: return "FMOV";
  case Opcode::kCount: break;
  }
  return "?";
}

OpCounters& OpCounters::operator+=(const OpCounters& other) {
  for (std::size_t i = 0; i < per_op_.size(); ++i) per_op_[i] += other.per_op_[i];
  flops_ += other.flops_;
  mem_loads_ += other.mem_loads_;
  mem_stores_ += other.mem_stores_;
  fabric_loads_ += other.fabric_loads_;
  fabric_stores_ += other.fabric_stores_;
  return *this;
}

OpCounters OpCounters::operator-(const OpCounters& other) const {
  OpCounters out = *this;
  for (std::size_t i = 0; i < per_op_.size(); ++i) {
    FVDF_CHECK(out.per_op_[i] >= other.per_op_[i]);
    out.per_op_[i] -= other.per_op_[i];
  }
  FVDF_CHECK(out.flops_ >= other.flops_ && out.mem_loads_ >= other.mem_loads_ &&
             out.mem_stores_ >= other.mem_stores_);
  out.flops_ -= other.flops_;
  out.mem_loads_ -= other.mem_loads_;
  out.mem_stores_ -= other.mem_stores_;
  out.fabric_loads_ -= other.fabric_loads_;
  out.fabric_stores_ -= other.fabric_stores_;
  return out;
}

void OpCounters::clear() { *this = OpCounters{}; }

std::string OpCounters::summary() const {
  std::ostringstream os;
  os << "flops=" << flops_;
  for (std::size_t i = 0; i < per_op_.size(); ++i)
    if (per_op_[i] != 0)
      os << ' ' << to_string(static_cast<Opcode>(i)) << '=' << per_op_[i];
  os << " mem(ld/st)=" << mem_loads_ << '/' << mem_stores_
     << " fabric(ld/st)=" << fabric_loads_ << '/' << fabric_stores_;
  return os.str();
}

} // namespace fvdf
