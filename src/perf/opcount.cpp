#include "perf/opcount.hpp"

#include <sstream>

#include "common/error.hpp"

namespace fvdf {

const char* to_string(Opcode op) {
  switch (op) {
  case Opcode::FMUL: return "FMUL";
  case Opcode::FSUB: return "FSUB";
  case Opcode::FADD: return "FADD";
  case Opcode::FNEG: return "FNEG";
  case Opcode::FMA: return "FMA";
  case Opcode::FMOV: return "FMOV";
  case Opcode::kCount: break;
  }
  return "?";
}

u32 flops_per_element(Opcode op) {
  switch (op) {
  case Opcode::FMA: return 2;
  case Opcode::FMOV: return 0;
  default: return 1;
  }
}

MemTraffic memory_traffic_per_element(Opcode op) {
  // Mirrors Table V: FMUL/FSUB/FADD: 2 loads 1 store; FNEG: 1 load 1 store;
  // FMA: 3 loads 1 store; FMOV: 1 store when loading from fabric (or 1 load
  // when storing to fabric) — we charge the memory side only; the fabric
  // side is recorded separately.
  switch (op) {
  case Opcode::FMUL:
  case Opcode::FSUB:
  case Opcode::FADD: return {2, 1};
  case Opcode::FNEG: return {1, 1};
  case Opcode::FMA: return {3, 1};
  case Opcode::FMOV: return {1, 1};
  case Opcode::kCount: break;
  }
  return {0, 0};
}

void OpCounters::record(Opcode op, u64 elements, u64 fabric_loads, u64 fabric_stores) {
  FVDF_CHECK(op != Opcode::kCount);
  per_op_[static_cast<std::size_t>(op)] += elements;
  flops_ += static_cast<u64>(flops_per_element(op)) * elements;
  const MemTraffic mem = memory_traffic_per_element(op);
  if (op == Opcode::FMOV) {
    // A fabric receive is 1 store/elem and no load; a fabric send is
    // 1 load/elem and no store; a memory-to-memory move is 1 load + 1 store.
    if (fabric_loads > 0) {
      mem_stores_ += elements;
    } else if (fabric_stores > 0) {
      mem_loads_ += elements;
    } else {
      mem_loads_ += elements;
      mem_stores_ += elements;
    }
  } else {
    mem_loads_ += static_cast<u64>(mem.loads) * elements;
    mem_stores_ += static_cast<u64>(mem.stores) * elements;
  }
  fabric_loads_ += fabric_loads;
  fabric_stores_ += fabric_stores;
}

OpCounters& OpCounters::operator+=(const OpCounters& other) {
  for (std::size_t i = 0; i < per_op_.size(); ++i) per_op_[i] += other.per_op_[i];
  flops_ += other.flops_;
  mem_loads_ += other.mem_loads_;
  mem_stores_ += other.mem_stores_;
  fabric_loads_ += other.fabric_loads_;
  fabric_stores_ += other.fabric_stores_;
  return *this;
}

OpCounters OpCounters::operator-(const OpCounters& other) const {
  OpCounters out = *this;
  for (std::size_t i = 0; i < per_op_.size(); ++i) {
    FVDF_CHECK(out.per_op_[i] >= other.per_op_[i]);
    out.per_op_[i] -= other.per_op_[i];
  }
  FVDF_CHECK(out.flops_ >= other.flops_ && out.mem_loads_ >= other.mem_loads_ &&
             out.mem_stores_ >= other.mem_stores_);
  out.flops_ -= other.flops_;
  out.mem_loads_ -= other.mem_loads_;
  out.mem_stores_ -= other.mem_stores_;
  out.fabric_loads_ -= other.fabric_loads_;
  out.fabric_stores_ -= other.fabric_stores_;
  return out;
}

void OpCounters::clear() { *this = OpCounters{}; }

std::string OpCounters::summary() const {
  std::ostringstream os;
  os << "flops=" << flops_;
  for (std::size_t i = 0; i < per_op_.size(); ++i)
    if (per_op_[i] != 0)
      os << ' ' << to_string(static_cast<Opcode>(i)) << '=' << per_op_[i];
  os << " mem(ld/st)=" << mem_loads_ << '/' << mem_stores_
     << " fabric(ld/st)=" << fabric_loads_ << '/' << fabric_stores_;
  return os.str();
}

} // namespace fvdf
