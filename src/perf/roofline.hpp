#pragma once
// Roofline model (Williams et al.) used for Figure 6: attainable
// performance as min(peak_flops, AI * bandwidth), with one ceiling per
// resource (CS-2 has two: PE-local memory and fabric). Includes a log-log
// ASCII chart renderer so the figure is regenerated in terminal output.

#include <string>
#include <vector>

#include "common/types.hpp"

namespace fvdf {

/// One bandwidth ceiling (e.g. "memory", "fabric", "HBM").
struct RooflineCeiling {
  std::string name;
  f64 bytes_per_sec = 0;
};

/// A measured kernel point on the chart. `ceiling_index` names the
/// resource the arithmetic intensity is measured against (the CS-2 chart
/// has one point per resource, Fig. 6 top); SIZE_MAX means "all ceilings".
struct RooflinePoint {
  std::string name;
  f64 arithmetic_intensity = 0; // FLOP / byte (w.r.t. one resource)
  f64 achieved_flops = 0;       // FLOP / s
  std::size_t ceiling_index = SIZE_MAX;
};

class RooflineModel {
public:
  RooflineModel(std::string machine, f64 peak_flops);

  void add_ceiling(RooflineCeiling ceiling);
  void add_point(RooflinePoint point);

  f64 peak_flops() const { return peak_flops_; }

  /// Attainable FLOP/s at intensity `ai` under ceiling `ceiling_index`.
  f64 attainable(f64 ai, std::size_t ceiling_index) const;

  /// Attainable under the tightest of all ceilings.
  f64 attainable(f64 ai) const;

  /// True when ai * bandwidth >= peak for the given ceiling (the kernel sits
  /// on the flat roof — compute-bound w.r.t. that resource).
  bool compute_bound(f64 ai, std::size_t ceiling_index) const;

  /// achieved / attainable for the given point (paper: "68.18% of machine
  /// peak performance").
  f64 efficiency(const RooflinePoint& point) const;

  /// Log-log ASCII chart (width x height characters) of ceilings and points.
  std::string ascii_chart(int width = 72, int height = 22) const;

  const std::vector<RooflineCeiling>& ceilings() const { return ceilings_; }
  const std::vector<RooflinePoint>& points() const { return points_; }

private:
  std::string machine_;
  f64 peak_flops_;
  std::vector<RooflineCeiling> ceilings_;
  std::vector<RooflinePoint> points_;
};

} // namespace fvdf
