#include "perf/roofline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace fvdf {

RooflineModel::RooflineModel(std::string machine, f64 peak_flops)
    : machine_(std::move(machine)), peak_flops_(peak_flops) {
  FVDF_CHECK(peak_flops > 0);
}

void RooflineModel::add_ceiling(RooflineCeiling ceiling) {
  FVDF_CHECK(ceiling.bytes_per_sec > 0);
  ceilings_.push_back(std::move(ceiling));
}

void RooflineModel::add_point(RooflinePoint point) {
  FVDF_CHECK(point.arithmetic_intensity > 0 && point.achieved_flops >= 0);
  points_.push_back(std::move(point));
}

f64 RooflineModel::attainable(f64 ai, std::size_t ceiling_index) const {
  FVDF_CHECK(ceiling_index < ceilings_.size());
  return std::min(peak_flops_, ai * ceilings_[ceiling_index].bytes_per_sec);
}

f64 RooflineModel::attainable(f64 ai) const {
  f64 best = peak_flops_;
  for (const auto& ceiling : ceilings_)
    best = std::min(best, ai * ceiling.bytes_per_sec);
  return best;
}

bool RooflineModel::compute_bound(f64 ai, std::size_t ceiling_index) const {
  FVDF_CHECK(ceiling_index < ceilings_.size());
  return ai * ceilings_[ceiling_index].bytes_per_sec >= peak_flops_;
}

f64 RooflineModel::efficiency(const RooflinePoint& point) const {
  // Efficiency is measured against the *flat* roof when compute-bound and
  // the slanted ceiling otherwise, per the standard roofline reading —
  // against the point's own resource when one is named.
  const f64 bound = point.ceiling_index == SIZE_MAX
                        ? attainable(point.arithmetic_intensity)
                        : attainable(point.arithmetic_intensity, point.ceiling_index);
  return point.achieved_flops / bound;
}

std::string RooflineModel::ascii_chart(int width, int height) const {
  FVDF_CHECK(width >= 20 && height >= 8);
  // Chart range: AI from min(point AI, ridge AI)/8 to max*8; FLOPs from
  // peak/1e4 up to peak*2 — all on log10 axes.
  f64 ai_min = 1e-2, ai_max = 1e1;
  for (const auto& point : points_) {
    ai_min = std::min(ai_min, point.arithmetic_intensity / 4);
    ai_max = std::max(ai_max, point.arithmetic_intensity * 4);
  }
  for (const auto& ceiling : ceilings_) {
    const f64 ridge = peak_flops_ / ceiling.bytes_per_sec;
    ai_min = std::min(ai_min, ridge / 4);
    ai_max = std::max(ai_max, ridge * 4);
  }
  const f64 flops_max = peak_flops_ * 2.0;
  const f64 flops_min = flops_max / 1e5;

  const f64 lx0 = std::log10(ai_min), lx1 = std::log10(ai_max);
  const f64 ly0 = std::log10(flops_min), ly1 = std::log10(flops_max);
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  auto plot = [&](f64 ai, f64 flops, char glyph) {
    if (ai <= 0 || flops <= 0) return;
    const int col = static_cast<int>((std::log10(ai) - lx0) / (lx1 - lx0) * (width - 1));
    const int row = static_cast<int>((ly1 - std::log10(flops)) / (ly1 - ly0) * (height - 1));
    if (col < 0 || col >= width || row < 0 || row >= height) return;
    auto& cell = grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
    // Points win over lines so markers stay visible.
    if (cell == ' ' || glyph == 'o' || glyph == '*') cell = glyph;
  };

  for (int col = 0; col < width; ++col) {
    const f64 ai = std::pow(10.0, lx0 + (lx1 - lx0) * col / (width - 1));
    plot(ai, peak_flops_, '-');
    for (const auto& ceiling : ceilings_) {
      const f64 bound = ai * ceiling.bytes_per_sec;
      if (bound < peak_flops_) plot(ai, bound, '/');
    }
  }
  char marker = 'o';
  for (const auto& point : points_) {
    plot(point.arithmetic_intensity, point.achieved_flops, marker);
    marker = '*'; // distinguish the second resource's point like Fig. 6
  }

  std::ostringstream os;
  os << "Roofline: " << machine_ << "  (peak " << fmt_flops(peak_flops_) << ")\n";
  for (const auto& row : grid) os << '|' << row << '\n';
  os << '+' << std::string(static_cast<std::size_t>(width), '-') << "\n";
  os << " AI [FLOP/B], log scale: " << fmt_fixed(ai_min, 4) << " .. "
     << fmt_fixed(ai_max, 1) << '\n';
  for (const auto& point : points_)
    os << "  " << (point.name) << ": AI=" << fmt_fixed(point.arithmetic_intensity, 4)
       << " F/B, " << fmt_flops(point.achieved_flops) << " ("
       << fmt_percent(efficiency(point)) << " of attainable)\n";
  return os.str();
}

} // namespace fvdf
