#pragma once
// Instruction / memory-traffic ledger matching the categories of the
// paper's Table V: per-opcode instruction counts with their FLOP, memory
// and fabric traffic. Every DSD operation executed by the simulated PEs
// reports into one of these ledgers, so Table V is *measured*, not
// hand-computed.

#include <array>
#include <string>

#include "common/types.hpp"

namespace fvdf {

/// Vector/scalar opcodes of the simulated PE (the subset of CSL's DSD
/// operations the kernels use). FMOV covers fabric<->memory moves.
enum class Opcode : u8 { FMUL = 0, FSUB, FADD, FNEG, FMA, FMOV, kCount };

const char* to_string(Opcode op);

/// FLOPs contributed by one element-wise application of the opcode
/// (FMA = 2, FMOV = 0, others = 1) — the paper's accounting.
constexpr u32 flops_per_element(Opcode op) {
  switch (op) {
  case Opcode::FMA: return 2;
  case Opcode::FMOV: return 0;
  default: return 1;
  }
}

/// Memory operands per element: {loads, stores}, matching Table V's
/// "Memory traffic" column (e.g. FMA: 3 loads, 1 store). FMUL/FSUB/FADD:
/// 2 loads 1 store; FNEG: 1 load 1 store; FMA: 3 loads 1 store; FMOV:
/// 1 load 1 store for a memory-to-memory move — record() charges the
/// memory side only for fabric moves, the fabric side is separate.
struct MemTraffic {
  u32 loads = 0;
  u32 stores = 0;
};
constexpr MemTraffic memory_traffic_per_element(Opcode op) {
  switch (op) {
  case Opcode::FMUL:
  case Opcode::FSUB:
  case Opcode::FADD: return {2, 1};
  case Opcode::FNEG: return {1, 1};
  case Opcode::FMA: return {3, 1};
  case Opcode::FMOV: return {1, 1};
  case Opcode::kCount: break;
  }
  return {0, 0};
}

/// Accumulated counts for a region of execution.
class OpCounters {
public:
  /// Records `elements` element-wise applications of `op`.
  /// `fabric_loads`/`fabric_stores` count 32-bit words moved through the
  /// ramp as part of this operation (FMOV from/to a fabric DSD). Inline:
  /// every simulated DSD op lands here.
  void record(Opcode op, u64 elements, u64 fabric_loads = 0,
              u64 fabric_stores = 0) {
    per_op_[static_cast<std::size_t>(op)] += elements;
    flops_ += static_cast<u64>(flops_per_element(op)) * elements;
    const MemTraffic mem = memory_traffic_per_element(op);
    if (op == Opcode::FMOV) {
      // A fabric receive is 1 store/elem and no load; a fabric send is
      // 1 load/elem and no store; a memory-to-memory move is both.
      if (fabric_loads > 0) {
        mem_stores_ += elements;
      } else if (fabric_stores > 0) {
        mem_loads_ += elements;
      } else {
        mem_loads_ += elements;
        mem_stores_ += elements;
      }
    } else {
      mem_loads_ += static_cast<u64>(mem.loads) * elements;
      mem_stores_ += static_cast<u64>(mem.stores) * elements;
    }
    fabric_loads_ += fabric_loads;
    fabric_stores_ += fabric_stores;
  }

  u64 count(Opcode op) const { return per_op_[static_cast<std::size_t>(op)]; }
  u64 total_flops() const { return flops_; }
  u64 memory_loads() const { return mem_loads_; }
  u64 memory_stores() const { return mem_stores_; }
  u64 fabric_loads() const { return fabric_loads_; }
  u64 fabric_stores() const { return fabric_stores_; }

  /// Total bytes to/from PE-local memory (4 bytes per fp32 access).
  u64 memory_bytes() const { return 4 * (mem_loads_ + mem_stores_); }
  /// Total bytes through the fabric ramp.
  u64 fabric_bytes() const { return 4 * (fabric_loads_ + fabric_stores_); }

  OpCounters& operator+=(const OpCounters& other);
  OpCounters operator-(const OpCounters& other) const;
  void clear();

  std::string summary() const;

private:
  std::array<u64, static_cast<std::size_t>(Opcode::kCount)> per_op_{};
  u64 flops_ = 0;
  u64 mem_loads_ = 0;
  u64 mem_stores_ = 0;
  u64 fabric_loads_ = 0;
  u64 fabric_stores_ = 0;
};

} // namespace fvdf
