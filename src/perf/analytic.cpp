#include "perf/analytic.hpp"

#include "common/error.hpp"

namespace fvdf {

Cs2AnalyticModel::Cs2AnalyticModel(Cs2Spec spec, Cs2ModelParams params)
    : spec_(std::move(spec)), params_(params) {
  FVDF_CHECK(params_.cycles_per_cell_jx > 0);
}

f64 Cs2AnalyticModel::alg2_time(i64 nz, u64 iters) const {
  FVDF_CHECK(nz > 0);
  return static_cast<f64>(iters) * static_cast<f64>(nz) * params_.cycles_per_cell_jx /
         spec_.clock_hz;
}

f64 Cs2AnalyticModel::alg1_time(i64 width, i64 height, i64 nz, u64 iters) const {
  FVDF_CHECK(width > 0 && height > 0 && nz > 0);
  const f64 per_iter_cycles =
      static_cast<f64>(nz) * (params_.cycles_per_cell_jx + params_.cycles_per_cell_vec) +
      params_.cycles_per_hop_allreduce * static_cast<f64>(width + height);
  return static_cast<f64>(iters) * per_iter_cycles / spec_.clock_hz;
}

f64 Cs2AnalyticModel::comm_time(i64 width, i64 height, u64 iters) const {
  FVDF_CHECK(width > 0 && height > 0);
  return static_cast<f64>(iters) * params_.cycles_per_hop_transit *
         static_cast<f64>(width + height) / spec_.clock_hz;
}

f64 Cs2AnalyticModel::throughput(u64 cells, u64 iters, f64 seconds) {
  FVDF_CHECK(seconds > 0);
  return static_cast<f64>(cells) * static_cast<f64>(iters) / seconds;
}

f64 Cs2AnalyticModel::paper_convention_pflops(i64 width, i64 height, i64 nz,
                                              u64 iters) const {
  const f64 total_flops = 96.0 * static_cast<f64>(width) * static_cast<f64>(height) *
                          static_cast<f64>(nz) * static_cast<f64>(iters);
  return total_flops / alg2_time(nz, iters);
}

GpuAnalyticModel::GpuAnalyticModel(GpuSpec spec, GpuModelParams params)
    : spec_(std::move(spec)), params_(params) {
  FVDF_CHECK(spec_.mem_bw_bytes > 0);
}

f64 GpuAnalyticModel::occupancy(u64 cells) const {
  const f64 n = static_cast<f64>(cells);
  return n / (n + params_.half_saturation_cells);
}

f64 GpuAnalyticModel::effective_bandwidth(u64 cells) const {
  return spec_.mem_bw_bytes * spec_.achievable_bw_fraction * occupancy(cells);
}

f64 GpuAnalyticModel::alg2_time(u64 cells, u64 iters) const {
  const f64 per_iter = params_.launch_overhead_s +
                       static_cast<f64>(cells) * params_.bytes_per_cell_jx /
                           effective_bandwidth(cells);
  return static_cast<f64>(iters) * per_iter;
}

f64 GpuAnalyticModel::alg1_time(u64 cells, u64 iters) const {
  const f64 bytes_per_cell = params_.bytes_per_cell_jx + params_.bytes_per_cell_cg_extra;
  const f64 per_iter =
      params_.launches_per_iter_alg1 * params_.launch_overhead_s +
      static_cast<f64>(cells) * bytes_per_cell / effective_bandwidth(cells);
  return static_cast<f64>(iters) * per_iter;
}

} // namespace fvdf
