#pragma once
// Machine descriptions for the performance models: the Cerebras CS-2
// (WSE-2) as characterized in the paper and its cited prior work, and the
// NVIDIA GPUs used for the reference implementation.

#include <string>

#include "common/types.hpp"

namespace fvdf {

/// CS-2 / WSE-2 constants. Peak figures are calibrated so the paper's own
/// arithmetic is reproduced: 1.217 PFLOP/s reported as 68.18% of peak
/// implies a fabric-wide fp32 peak of ~1.785 PFLOP/s over the usable
/// 750x994 PE grid.
struct Cs2Spec {
  std::string name = "Cerebras CS-2 (WSE-2)";
  i64 fabric_width = 750;   // usable PEs in X (SDK reserves a boundary layer)
  i64 fabric_height = 994;  // usable PEs in Y
  f64 clock_hz = 1.1e9;
  u64 pe_memory_bytes = 48 * 1024;
  f64 peak_flops_fp32 = 1.785e15;      // whole usable fabric
  f64 peak_mem_bw_bytes = 20.0e15;     // aggregate SRAM bandwidth
  f64 peak_fabric_bw_bytes = 6.25e15;  // aggregate injection bandwidth

  i64 usable_pes() const { return fabric_width * fabric_height; }
  f64 per_pe_peak_flops() const { return peak_flops_fp32 / static_cast<f64>(usable_pes()); }
  f64 per_pe_mem_bw() const { return peak_mem_bw_bytes / static_cast<f64>(usable_pes()); }
  f64 per_pe_fabric_bw() const { return peak_fabric_bw_bytes / static_cast<f64>(usable_pes()); }
};

/// GPU device description for the reference-implementation timing model.
struct GpuSpec {
  std::string name;
  f64 mem_bw_bytes = 0;        // HBM peak bandwidth
  f64 peak_flops_fp32 = 0;
  f64 achievable_bw_fraction = 0.78; // paper Fig. 6: kernel reaches 78% of peak
  f64 launch_overhead_s = 5e-6;      // per-kernel launch latency
  // Bandwidth utilisation ramps with occupancy: eff(n) = n / (n + half_sat).
  f64 half_saturation_cells = 2.0e7;

  static GpuSpec a100();
  static GpuSpec h100();
};

} // namespace fvdf
