#include "serve/cache.hpp"

#include "app/scenario.hpp"
#include "common/serialize.hpp"
#include "telemetry/registry.hpp"

namespace fvdf::serve {

ArtifactCache::ArtifactCache(std::size_t capacity,
                             telemetry::MetricsRegistry* metrics)
    : capacity_(capacity == 0 ? 1 : capacity), metrics_(metrics) {
  if (metrics_ != nullptr) {
    hit_id_ = metrics_->counter("serve.cache.hits");
    miss_id_ = metrics_->counter("serve.cache.misses");
    eviction_id_ = metrics_->counter("serve.cache.evictions");
  }
}

void ArtifactCache::count(u32 id) const {
  if (metrics_ != nullptr) metrics_->add(0, id, 1);
}

std::shared_ptr<ArtifactCache::Entry>
ArtifactCache::acquire(const Config& config, bool* was_hit) {
  std::string canonical = app::canonical_case_text(config);
  std::string fingerprint =
      hash_hex(fnv1a64(canonical.data(), canonical.size()));

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(fingerprint);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      ++stats_.hits;
      count(hit_id_);
      if (was_hit != nullptr) *was_hit = true;
      return it->second.entry;
    }
  }

  // Miss: build outside the lock so unrelated cases don't serialize on
  // each other's geomodel construction.
  auto entry = std::make_shared<Entry>();
  entry->fingerprint = fingerprint;
  entry->canonical_text = std::move(canonical);
  entry->problem = app::problem_from_config(config);
  entry->artifacts = std::make_shared<core::CaseArtifacts>();

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  count(miss_id_);
  if (was_hit != nullptr) *was_hit = false;

  const auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    // Raced with another builder of the same case; keep the incumbent
    // (both are identical by deterministic construction).
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.entry;
  }

  lru_.push_front(fingerprint);
  entries_.emplace(fingerprint, Slot{entry, lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    count(eviction_id_);
  }
  return entry;
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats out = stats_;
  out.entries = entries_.size();
  return out;
}

} // namespace fvdf::serve
