#pragma once
// Concurrent solve-job manager for the serve daemon (docs/serving.md).
//
// Many independent cases run concurrently on a bounded worker pool with a
// bounded admission queue (priority-ordered: higher priority first, FIFO
// within a priority), per-job cancellation, per-job deadlines, streamed
// NDJSON progress events, and spool-directory crash recovery: every
// admitted job's case text is spooled to disk, transient jobs checkpoint
// between steps, and a restarted daemon re-admits whatever was in flight
// — a resumed transient job continues from its last completed step and
// finishes bitwise identical to an uninterrupted run (tested).
//
// Determinism: jobs share compiled artifacts through the ArtifactCache,
// and every solve runs the same deterministic engine fvdf_sim uses, so a
// job's result is bitwise identical to a single-shot run of the same case
// regardless of what else the pool is doing.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "serve/cache.hpp"

namespace fvdf::serve {

enum class JobState : u8 { Queued, Running, Done, Failed, Cancelled, Expired };

const char* to_string(JobState state);

struct JobSpec {
  std::string id;        // client-chosen; [A-Za-z0-9._-], unique while live
  std::string case_text; // INI, the same schema tools/fvdf_sim reads
  i32 priority = 0;      // higher runs first; FIFO within a priority
  f64 deadline_seconds = 0; // wall budget from admission; 0 = none
  i32 sim_threads = -1;  // override solver.sim_threads; -1 = as configured
  bool return_field = false;     // include the pressure field in the result
  bool stream_residuals = false; // emit per-step / residual-history events
};

/// Receives one NDJSON event line (no trailing newline) per job event:
/// accepted, step, residuals, result, error. Called from worker threads;
/// must be internally synchronized and must not block for long.
using EventSink = std::function<void(const std::string& line)>;

struct JobManagerConfig {
  u32 workers = 2;
  std::size_t queue_capacity = 64;
  // Crash/restart spool: <id>.case.ini at admission, <id>.ckpt between
  // transient steps, both removed on terminal states. Empty = disabled.
  std::string spool_dir;
  i64 checkpoint_every = 1; // transient steps between spooled checkpoints
  telemetry::MetricsRegistry* metrics = nullptr;
};

struct JobStats {
  u64 accepted = 0;
  u64 rejected = 0;
  u64 completed = 0;
  u64 failed = 0;
  u64 cancelled = 0;
  u64 expired = 0;
  u64 recovered = 0;
  u64 queued_now = 0;
  u64 running_now = 0;
};

class JobManager {
public:
  JobManager(std::shared_ptr<ArtifactCache> cache, JobManagerConfig config);
  ~JobManager(); // graceful shutdown if still running

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Admits a job. On rejection returns false and (if non-null) fills
  /// `error_code` with queue_full | duplicate_id | invalid_id | draining;
  /// no events are emitted for rejected jobs — the caller reports the
  /// rejection on its own connection.
  bool submit(JobSpec spec, EventSink sink, std::string* error_code = nullptr);

  /// Requests cancellation. Queued jobs are cancelled immediately;
  /// a running transient job stops at its next step boundary; a running
  /// steady solve is uninterruptible (documented limitation) and the
  /// cancellation applies only if still queued. Returns false when the id
  /// is unknown or already terminal.
  bool cancel(const std::string& id);

  /// Scans the spool directory for jobs a previous daemon left behind and
  /// re-admits them with `sink` (transient jobs resume from their spooled
  /// checkpoint). Returns the number of jobs re-admitted.
  i64 recover(EventSink sink);

  /// Stops admitting, asks running transient jobs to stop at the next
  /// step boundary (their spool checkpoints survive for the next daemon),
  /// leaves queued jobs spooled, and joins the workers.
  void shutdown_graceful();

  /// Blocks until the queue is empty and no job is running.
  void wait_idle();

  JobStats stats() const;

private:
  struct Job {
    JobSpec spec;
    EventSink sink;
    u64 seq = 0;
    std::chrono::steady_clock::time_point admitted;
    std::atomic<bool> cancel_requested{false};
    JobState state = JobState::Queued; // guarded by mutex_
    bool resume_from_spool = false;
  };

  void worker_loop();
  void run_job(const std::shared_ptr<Job>& job);
  void finish(const std::shared_ptr<Job>& job, JobState state,
              bool keep_spool = false);
  void emit_error(const std::shared_ptr<Job>& job, const std::string& code,
                  const std::string& message);
  bool deadline_passed(const Job& job) const;
  std::string spool_case_path(const std::string& id) const;
  std::string spool_ckpt_path(const std::string& id) const;

  std::shared_ptr<ArtifactCache> cache_;
  JobManagerConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  // Queue key: (-priority, admission seq) — map order is run order.
  std::map<std::pair<i64, u64>, std::shared_ptr<Job>> queue_;
  std::unordered_map<std::string, std::shared_ptr<Job>> live_; // by id
  u64 next_seq_ = 0;
  u64 running_ = 0;
  bool draining_ = false;
  JobStats stats_;

  std::vector<std::thread> workers_;
};

} // namespace fvdf::serve
