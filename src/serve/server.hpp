#pragma once
// fvdf_serve network front-end (docs/serving.md): a persistent solve
// service speaking newline-delimited JSON over a unix-domain socket, plus
// a minimal HTTP/1.1 endpoint on loopback TCP for curl-style health
// checks and synchronous one-shot solves.
//
// NDJSON ops (one JSON object per line, responses streamed on the same
// connection):
//   {"op":"solve","id":...,"case":"<INI text>","priority":...,
//    "deadline_seconds":...,"sim_threads":...,"return_field":...,
//    "stream_residuals":...}       -> accepted/step/residuals/result/error
//   {"op":"cancel","id":...}       -> {"event":"ok","found":...}
//   {"op":"stats"}                 -> {"event":"stats",...}
//   {"op":"ping"}                  -> {"event":"pong"}
//   {"op":"shutdown"}              -> {"event":"ok"} then graceful stop
//
// HTTP routes: GET /healthz ("ok"), GET /stats (the stats document),
// POST /solve (body = INI case text; runs synchronously and returns the
// job's NDJSON event lines).
//
// Jobs outlive disconnects: a sink holds the connection behind a closed
// flag, so a client that goes away simply stops receiving events while
// the job runs to completion (and its spool entries are cleaned up
// normally).

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "serve/cache.hpp"
#include "serve/jobs.hpp"
#include "telemetry/registry.hpp"

namespace fvdf::serve {

struct ServerConfig {
  std::string socket_path;  // unix-domain listener (required)
  i32 http_port = -1;       // loopback TCP; <0 = disabled, 0 = ephemeral
  JobManagerConfig jobs;
  std::size_t cache_capacity = 32;
};

class Server {
public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners, recovers spooled jobs from a previous daemon,
  /// and starts the accept threads. Throws fvdf::Error on bind failures.
  void start();

  /// Begins a graceful stop: closes the listeners, lets the job manager
  /// drain (running transient jobs checkpoint at the next step boundary),
  /// then releases wait(). Safe to call from any thread, more than once.
  void request_shutdown();

  /// Blocks until a shutdown (request_shutdown or the NDJSON shutdown op)
  /// has completed.
  void wait();

  bool shutting_down() const { return stopping_.load(); }

  /// The stats document served by GET /stats and {"op":"stats"}: cache
  /// hit/miss/eviction counts, job counts, and the metrics registry.
  std::string stats_json() const;

  /// Realized HTTP port (differs from config when 0 = ephemeral was
  /// requested); -1 when HTTP is disabled.
  i32 http_port() const { return http_port_; }

  JobManager& jobs() { return *jobs_; }
  ArtifactCache& cache() { return *cache_; }

private:
  struct ClientConn;

  void accept_loop_unix();
  void accept_loop_http();
  void serve_ndjson(int fd);
  void serve_http(int fd);
  void handle_line(const std::shared_ptr<ClientConn>& conn,
                   const std::string& line);
  void track_fd(int fd);
  void untrack_and_close_fd(int fd);

  ServerConfig config_;
  telemetry::MetricsRegistry metrics_{1};
  std::shared_ptr<ArtifactCache> cache_;
  std::unique_ptr<JobManager> jobs_;

  int unix_fd_ = -1;
  int http_fd_ = -1;
  i32 http_port_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::mutex shutdown_mutex_;

  std::thread unix_accept_;
  std::thread http_accept_;
  std::mutex conns_mutex_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> open_fds_; // accepted connections not yet closed
  std::atomic<u64> http_job_counter_{0};
};

} // namespace fvdf::serve
