#include "serve/client.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"
#include "telemetry/json.hpp"

namespace fvdf::serve {

void Client::connect(const std::string& socket_path) {
  close();
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FVDF_CHECK_MSG(fd_ >= 0, "client: socket() failed: " << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FVDF_CHECK_MSG(socket_path.size() < sizeof(addr.sun_path),
                 "client: socket path too long: " << socket_path);
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close();
    throw Error("client: connect(" + socket_path +
                ") failed: " + std::strerror(err));
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void Client::send_line(std::string_view line) {
  FVDF_CHECK_MSG(fd_ >= 0, "client: not connected");
  std::string framed(line);
  framed += '\n';
  const char* data = framed.data();
  std::size_t size = framed.size();
  while (size > 0) {
    const ssize_t sent = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (sent < 0 && errno == EINTR) continue;
    FVDF_CHECK_MSG(sent > 0, "client: send failed: " << std::strerror(errno));
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
}

bool Client::read_line(std::string* line) {
  FVDF_CHECK_MSG(fd_ >= 0, "client: not connected");
  char chunk[4096];
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got == 0) {
      FVDF_CHECK_MSG(buffer_.empty(),
                     "client: connection closed mid-line ("
                         << buffer_.size() << " bytes pending)");
      return false;
    }
    FVDF_CHECK_MSG(got > 0, "client: recv failed: " << std::strerror(errno));
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

JsonValue Client::read_event() {
  std::string line;
  if (!read_line(&line)) return JsonValue{};
  return JsonValue::parse(line);
}

void Client::solve(const SolveRequest& request) {
  telemetry::JsonWriter writer;
  writer.begin_object()
      .kv("op", "solve")
      .kv("id", request.id)
      .kv("case", request.case_text)
      .kv("priority", request.priority)
      .kv("deadline_seconds", request.deadline_seconds)
      .kv("sim_threads", request.sim_threads)
      .kv("return_field", request.return_field)
      .kv("stream_residuals", request.stream_residuals)
      .end_object();
  send_line(writer.take());
}

void Client::cancel(const std::string& id) {
  telemetry::JsonWriter writer;
  writer.begin_object().kv("op", "cancel").kv("id", id).end_object();
  send_line(writer.take());
}

void Client::stats() {
  telemetry::JsonWriter writer;
  writer.begin_object().kv("op", "stats").end_object();
  send_line(writer.take());
}

void Client::ping() {
  telemetry::JsonWriter writer;
  writer.begin_object().kv("op", "ping").end_object();
  send_line(writer.take());
}

void Client::shutdown() {
  telemetry::JsonWriter writer;
  writer.begin_object().kv("op", "shutdown").end_object();
  send_line(writer.take());
}

JsonValue Client::wait_result(const std::string& id) {
  while (true) {
    std::string line;
    FVDF_CHECK_MSG(read_line(&line),
                   "client: connection closed before a terminal event for job '"
                       << id << "'");
    JsonValue event = JsonValue::parse(line);
    const std::string kind = event.get_string("event", "");
    if (event.get_string("id", "") != id) continue;
    if (kind == "result" || kind == "error") return event;
  }
}

} // namespace fvdf::serve
