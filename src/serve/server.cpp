#include "serve/server.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"
#include "serve/json.hpp"
#include "telemetry/json.hpp"

namespace fvdf::serve {

namespace {

// send() with MSG_NOSIGNAL so a disconnected client yields EPIPE instead
// of killing the daemon; short writes retried.
bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

} // namespace

// One accepted NDJSON connection. Sinks hold it as shared_ptr so a job
// can keep emitting after the reader thread exits; `closed` turns those
// emissions into no-ops.
struct Server::ClientConn {
  int fd = -1;
  std::mutex write_mutex;
  bool closed = false;

  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (closed) return;
    std::string framed = line;
    framed += '\n';
    if (!send_all(fd, framed.data(), framed.size())) closed = true;
  }

  void close_fd() {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (!closed) ::shutdown(fd, SHUT_RDWR);
    closed = true;
    // fd itself is closed by the owner (serve_ndjson) after the reader
    // exits; sinks only ever write through this object.
  }
};

Server::Server(ServerConfig config) : config_(std::move(config)) {
  FVDF_CHECK_MSG(!config_.socket_path.empty(),
                 "serve: socket_path is required");
  cache_ = std::make_shared<ArtifactCache>(config_.cache_capacity, &metrics_);
  config_.jobs.metrics = &metrics_;
  jobs_ = std::make_unique<JobManager>(cache_, config_.jobs);
}

Server::~Server() {
  request_shutdown();
  wait();
}

void Server::start() {
  // Unix listener. A stale socket file from a crashed daemon is unlinked;
  // a *live* daemon on the same path would lose its listener, so deployers
  // give each instance its own path (docs/serving.md).
  unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FVDF_CHECK_MSG(unix_fd_ >= 0, "serve: socket(AF_UNIX) failed: "
                                    << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FVDF_CHECK_MSG(config_.socket_path.size() < sizeof(addr.sun_path),
                 "serve: socket path too long: " << config_.socket_path);
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(config_.socket_path.c_str());
  FVDF_CHECK_MSG(::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "serve: bind(" << config_.socket_path
                                << ") failed: " << std::strerror(errno));
  FVDF_CHECK_MSG(::listen(unix_fd_, 64) == 0,
                 "serve: listen failed: " << std::strerror(errno));

  if (config_.http_port >= 0) {
    http_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    FVDF_CHECK_MSG(http_fd_ >= 0, "serve: socket(AF_INET) failed: "
                                      << std::strerror(errno));
    const int one = 1;
    ::setsockopt(http_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in inaddr{};
    inaddr.sin_family = AF_INET;
    inaddr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    inaddr.sin_port = htons(static_cast<u16>(config_.http_port));
    FVDF_CHECK_MSG(::bind(http_fd_, reinterpret_cast<sockaddr*>(&inaddr),
                          sizeof(inaddr)) == 0,
                   "serve: bind(127.0.0.1:" << config_.http_port
                                            << ") failed: "
                                            << std::strerror(errno));
    FVDF_CHECK_MSG(::listen(http_fd_, 16) == 0,
                   "serve: http listen failed: " << std::strerror(errno));
    socklen_t len = sizeof(inaddr);
    ::getsockname(http_fd_, reinterpret_cast<sockaddr*>(&inaddr), &len);
    http_port_ = ntohs(inaddr.sin_port);
  }

  // Jobs a previous daemon left spooled resume now, reporting to the log
  // only (their original connections are gone).
  jobs_->recover(EventSink{});

  unix_accept_ = std::thread([this] { accept_loop_unix(); });
  if (http_fd_ >= 0) http_accept_ = std::thread([this] { accept_loop_http(); });
}

void Server::request_shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  // Closing the listeners unblocks the accept loops.
  if (unix_fd_ >= 0) ::shutdown(unix_fd_, SHUT_RDWR);
  if (http_fd_ >= 0) ::shutdown(http_fd_, SHUT_RDWR);
}

void Server::wait() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (stopped_.load()) return;
  if (unix_accept_.joinable()) unix_accept_.join();
  if (http_accept_.joinable()) http_accept_.join();
  // Drain the job manager first so in-flight jobs finish (or checkpoint)
  // while their connections are still writable for final events.
  if (jobs_ != nullptr) jobs_->shutdown_graceful();
  // Then force-release reader threads still blocked in recv().
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> conns(conns_mutex_);
    for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (auto& thread : threads)
    if (thread.joinable()) thread.join();
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
  if (http_fd_ >= 0) {
    ::close(http_fd_);
    http_fd_ = -1;
  }
  stopped_.store(true);
}

void Server::track_fd(int fd) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  open_fds_.push_back(fd);
}

void Server::untrack_and_close_fd(int fd) {
  // Removed from the tracked set *before* close so wait() never shuts
  // down a recycled descriptor.
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                    open_fds_.end());
  }
  ::close(fd);
}

void Server::accept_loop_unix() {
  while (!stopping_.load()) {
    const int fd = ::accept(unix_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return; // listener closed (shutdown) or fatal
    }
    track_fd(fd);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conn_threads_.emplace_back([this, fd] { serve_ndjson(fd); });
  }
}

void Server::accept_loop_http() {
  while (!stopping_.load()) {
    const int fd = ::accept(http_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    track_fd(fd);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conn_threads_.emplace_back([this, fd] { serve_http(fd); });
  }
}

void Server::serve_ndjson(int fd) {
  auto conn = std::make_shared<ClientConn>();
  conn->fd = fd;
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(got));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handle_line(conn, line);
    }
    if (stopping_.load()) break;
  }
  conn->close_fd();
  untrack_and_close_fd(fd);
}

void Server::handle_line(const std::shared_ptr<ClientConn>& conn,
                         const std::string& line) {
  auto reply_error = [&](const std::string& id, const std::string& code,
                         const std::string& message) {
    telemetry::JsonWriter writer;
    writer.begin_object().kv("event", "error");
    if (!id.empty()) writer.kv("id", id);
    writer.kv("code", code).kv("message", message).end_object();
    conn->write_line(writer.take());
  };

  JsonValue request;
  std::string op;
  std::string id;
  try {
    request = JsonValue::parse(line);
    op = request.get_string("op", "");
    id = request.get_string("id", "");
  } catch (const std::exception& e) {
    reply_error("", "bad_request", e.what());
    return;
  }

  if (op == "ping") {
    telemetry::JsonWriter writer;
    writer.begin_object().kv("event", "pong").end_object();
    conn->write_line(writer.take());
    return;
  }
  if (op == "stats") {
    conn->write_line(stats_json());
    return;
  }
  if (op == "cancel") {
    const bool found = jobs_->cancel(id);
    telemetry::JsonWriter writer;
    writer.begin_object()
        .kv("event", "ok")
        .kv("op", "cancel")
        .kv("id", id)
        .kv("found", found)
        .end_object();
    conn->write_line(writer.take());
    return;
  }
  if (op == "shutdown") {
    telemetry::JsonWriter writer;
    writer.begin_object().kv("event", "ok").kv("op", "shutdown").end_object();
    conn->write_line(writer.take());
    request_shutdown();
    return;
  }
  if (op == "solve") {
    JobSpec spec;
    try {
      spec.id = id;
      spec.case_text = request.get_string("case", "");
      spec.priority = static_cast<i32>(request.get_i64("priority", 0));
      spec.deadline_seconds = request.get_f64("deadline_seconds", 0);
      spec.sim_threads = static_cast<i32>(request.get_i64("sim_threads", -1));
      spec.return_field = request.get_bool("return_field", false);
      spec.stream_residuals = request.get_bool("stream_residuals", false);
    } catch (const std::exception& e) {
      reply_error(id, "bad_request", e.what());
      return;
    }
    if (spec.case_text.empty()) {
      reply_error(id, "bad_request", "solve requires a non-empty \"case\"");
      return;
    }
    std::string code;
    const bool admitted = jobs_->submit(
        std::move(spec),
        [conn](const std::string& event) { conn->write_line(event); }, &code);
    if (!admitted)
      reply_error(id, code, "job rejected at admission (" + code + ")");
    return;
  }
  reply_error(id, "bad_request", "unknown op '" + op + "'");
}

std::string Server::stats_json() const {
  const CacheStats cache = cache_->stats();
  const JobStats jobs = jobs_->stats();
  telemetry::JsonWriter writer;
  writer.begin_object()
      .kv("event", "stats")
      .key("cache")
      .begin_object()
      .kv("hits", cache.hits)
      .kv("misses", cache.misses)
      .kv("evictions", cache.evictions)
      .kv("entries", cache.entries)
      .kv("capacity", static_cast<u64>(cache_->capacity()))
      .end_object()
      .key("jobs")
      .begin_object()
      .kv("accepted", jobs.accepted)
      .kv("rejected", jobs.rejected)
      .kv("completed", jobs.completed)
      .kv("failed", jobs.failed)
      .kv("cancelled", jobs.cancelled)
      .kv("expired", jobs.expired)
      .kv("recovered", jobs.recovered)
      .kv("queued", jobs.queued_now)
      .kv("running", jobs.running_now)
      .end_object()
      .end_object();
  return writer.take();
}

void Server::serve_http(int fd) {
  std::string buffer;
  char chunk[4096];
  // Read until the header terminator.
  while (buffer.find("\r\n\r\n") == std::string::npos) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      untrack_and_close_fd(fd);
      return;
    }
    buffer.append(chunk, static_cast<std::size_t>(got));
    if (buffer.size() > (1u << 20)) break; // oversized header
  }

  auto respond = [&](const char* status, const std::string& body,
                     const char* content_type = "text/plain") {
    std::ostringstream out;
    out << "HTTP/1.1 " << status << "\r\nContent-Type: " << content_type
        << "\r\nContent-Length: " << body.size()
        << "\r\nConnection: close\r\n\r\n"
        << body;
    const std::string text = out.str();
    send_all(fd, text.data(), text.size());
  };

  const std::size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    respond("400 Bad Request", "malformed request\n");
    untrack_and_close_fd(fd);
    return;
  }
  const std::string head = buffer.substr(0, header_end);
  std::istringstream request_line(head.substr(0, head.find("\r\n")));
  std::string method, target, version;
  request_line >> method >> target >> version;

  // Content-Length (case-insensitive scan of the header block).
  std::size_t content_length = 0;
  {
    std::string lower = head;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    const std::size_t pos = lower.find("content-length:");
    if (pos != std::string::npos)
      content_length = static_cast<std::size_t>(
          std::strtoull(head.c_str() + pos + 15, nullptr, 10));
  }
  std::string body = buffer.substr(header_end + 4);
  while (body.size() < content_length) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    body.append(chunk, static_cast<std::size_t>(got));
  }

  if (method == "GET" && target == "/healthz") {
    respond("200 OK", "ok\n");
  } else if (method == "GET" && target == "/stats") {
    respond("200 OK", stats_json() + "\n", "application/json");
  } else if (method == "POST" && target == "/solve") {
    // Synchronous one-shot: admit with a collecting sink, wait for the
    // terminal event, return every NDJSON line as the response body.
    struct Collector {
      std::mutex mutex;
      std::condition_variable cv;
      std::string lines;
      bool done = false;
    };
    auto collector = std::make_shared<Collector>();
    JobSpec spec;
    spec.id = "http-" + std::to_string(++http_job_counter_);
    spec.case_text = body;
    std::string code;
    const bool admitted = jobs_->submit(
        spec,
        [collector](const std::string& event) {
          std::lock_guard<std::mutex> lock(collector->mutex);
          collector->lines += event;
          collector->lines += '\n';
          // Terminal events close the wait below.
          if (event.find("\"event\":\"result\"") != std::string::npos ||
              event.find("\"event\":\"error\"") != std::string::npos) {
            collector->done = true;
            collector->cv.notify_all();
          }
        },
        &code);
    if (!admitted) {
      respond("503 Service Unavailable", "rejected: " + code + "\n");
    } else {
      // Poll the stop flag so a daemon shutdown (which may strand the job
      // in the spool for the next daemon) releases this thread.
      std::unique_lock<std::mutex> lock(collector->mutex);
      while (!collector->done && !stopping_.load())
        collector->cv.wait_for(lock, std::chrono::milliseconds(100));
      if (collector->done)
        respond("200 OK", collector->lines, "application/x-ndjson");
      else
        respond("503 Service Unavailable", "daemon shutting down\n");
    }
  } else {
    respond("404 Not Found", "unknown route\n");
  }
  untrack_and_close_fd(fd);
}

} // namespace fvdf::serve
