#pragma once
// Blocking unix-socket NDJSON client for fvdf_serve — the building block
// for bench/serve_qps, tests/test_serve and scripts/check_serve.sh's
// batch driver. One connection, line-oriented: send a request object,
// read response/event lines as parsed JsonValues.

#include <string>
#include <string_view>

#include "common/types.hpp"
#include "serve/json.hpp"

namespace fvdf::serve {

class Client {
public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the daemon's unix socket; throws fvdf::Error on failure.
  void connect(const std::string& socket_path);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one NDJSON line (the newline is appended here).
  void send_line(std::string_view line);

  /// Reads the next line; returns false on clean EOF. Throws on a broken
  /// connection mid-line.
  bool read_line(std::string* line);

  /// read_line + JsonValue::parse. Returns a Null-kind value on EOF.
  JsonValue read_event();

  // --- Request helpers (thin formatting over send_line). ---

  struct SolveRequest {
    std::string id;
    std::string case_text;
    i32 priority = 0;
    f64 deadline_seconds = 0;
    i32 sim_threads = -1;
    bool return_field = false;
    bool stream_residuals = false;
  };

  void solve(const SolveRequest& request);
  void cancel(const std::string& id);
  void stats();
  void ping();
  void shutdown();

  /// Reads events until the terminal one for `id` (result, or error) and
  /// returns it. Other jobs' events interleaved on this connection are
  /// skipped. Throws on EOF before a terminal event.
  JsonValue wait_result(const std::string& id);

private:
  int fd_ = -1;
  std::string buffer_;
};

} // namespace fvdf::serve
