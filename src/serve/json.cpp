#include "serve/json.hpp"

#include <charconv>
#include <cmath>

#include "common/error.hpp"

namespace fvdf::serve {

namespace {

const char* kind_name(JsonValue::Kind kind) {
  switch (kind) {
  case JsonValue::Kind::Null: return "null";
  case JsonValue::Kind::Bool: return "bool";
  case JsonValue::Kind::Number: return "number";
  case JsonValue::Kind::String: return "string";
  case JsonValue::Kind::Array: return "array";
  case JsonValue::Kind::Object: return "object";
  }
  return "?";
}

} // namespace

struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& reason) const {
    throw Error("json parse error at byte " + std::to_string(pos) + ": " + reason);
  }

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (pos >= text.size() || text[pos] != c)
      fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(std::string_view literal) {
    if (text.substr(pos, literal.size()) != literal) return false;
    pos += literal.size();
    return true;
  }

  void append_utf8(std::string& out, u32 cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  u32 hex4() {
    u32 value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos;
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<u32>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<u32>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<u32>(c - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        ++pos;
        continue;
      }
      ++pos; // backslash
      const char esc = peek();
      ++pos;
      switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        u32 cp = hex4();
        if (cp >= 0xd800 && cp <= 0xdbff) { // surrogate pair
          if (!consume_literal("\\u")) fail("unpaired high surrogate");
          const u32 low = hex4();
          if (low < 0xdc00 || low > 0xdfff) fail("invalid low surrogate");
          cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
        } else if (cp >= 0xdc00 && cp <= 0xdfff) {
          fail("unpaired low surrogate");
        }
        append_utf8(out, cp);
        break;
      }
      default: fail("bad escape character");
      }
    }
  }

  f64 parse_number() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    if (peek() == '0') {
      ++pos;
    } else if (peek() >= '1' && peek() <= '9') {
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    } else {
      fail("bad number");
    }
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9')
        fail("digit required after decimal point");
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9')
        fail("digit required in exponent");
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    f64 value = 0;
    const auto res =
        std::from_chars(text.data() + start, text.data() + pos, value);
    if (res.ec != std::errc() || res.ptr != text.data() + pos)
      fail("unparseable number");
    return value;
  }

  JsonValue parse_value(int depth) {
    if (depth > 64) fail("nesting too deep");
    skip_ws();
    JsonValue value;
    const char c = peek();
    if (c == '{') {
      ++pos;
      value.kind_ = JsonValue::Kind::Object;
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return value;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        value.members_.emplace_back(std::move(key), parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return value;
      }
    }
    if (c == '[') {
      ++pos;
      value.kind_ = JsonValue::Kind::Array;
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return value;
      }
      while (true) {
        value.items_.push_back(parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return value;
      }
    }
    if (c == '"') {
      value.kind_ = JsonValue::Kind::String;
      value.string_ = parse_string();
      return value;
    }
    if (consume_literal("true")) {
      value.kind_ = JsonValue::Kind::Bool;
      value.bool_ = true;
      return value;
    }
    if (consume_literal("false")) {
      value.kind_ = JsonValue::Kind::Bool;
      value.bool_ = false;
      return value;
    }
    if (consume_literal("null")) {
      value.kind_ = JsonValue::Kind::Null;
      return value;
    }
    value.kind_ = JsonValue::Kind::Number;
    value.number_ = parse_number();
    return value;
  }
};

JsonValue JsonValue::parse(std::string_view text) {
  JsonParser parser{text};
  JsonValue value = parser.parse_value(0);
  parser.skip_ws();
  if (parser.pos != text.size()) parser.fail("trailing content after value");
  return value;
}

bool JsonValue::as_bool() const {
  FVDF_CHECK_MSG(kind_ == Kind::Bool, "expected bool, got " << kind_name(kind_));
  return bool_;
}

f64 JsonValue::as_f64() const {
  FVDF_CHECK_MSG(kind_ == Kind::Number, "expected number, got " << kind_name(kind_));
  return number_;
}

i64 JsonValue::as_i64() const {
  const f64 value = as_f64();
  const f64 truncated = std::trunc(value);
  FVDF_CHECK_MSG(truncated == value && std::abs(value) < 9.2e18,
                 "expected integer, got " << value);
  return static_cast<i64>(truncated);
}

const std::string& JsonValue::as_string() const {
  FVDF_CHECK_MSG(kind_ == Kind::String, "expected string, got " << kind_name(kind_));
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  FVDF_CHECK_MSG(kind_ == Kind::Array, "expected array, got " << kind_name(kind_));
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  FVDF_CHECK_MSG(kind_ == Kind::Object, "expected object, got " << kind_name(kind_));
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [name, value] : members_)
    if (name == key) return &value;
  return nullptr;
}

std::string JsonValue::get_string(std::string_view key,
                                  const std::string& fallback) const {
  const JsonValue* value = find(key);
  return value == nullptr ? fallback : value->as_string();
}

f64 JsonValue::get_f64(std::string_view key, f64 fallback) const {
  const JsonValue* value = find(key);
  return value == nullptr ? fallback : value->as_f64();
}

i64 JsonValue::get_i64(std::string_view key, i64 fallback) const {
  const JsonValue* value = find(key);
  return value == nullptr ? fallback : value->as_i64();
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  const JsonValue* value = find(key);
  return value == nullptr ? fallback : value->as_bool();
}

} // namespace fvdf::serve
