#pragma once
// Parsed JSON values for the serve protocol (docs/serving.md). The
// telemetry subsystem ships a deterministic JSON *writer* and a strict
// well-formedness *validator* (telemetry/json.hpp); the serve daemon also
// needs to read client requests, so this adds the missing third piece: a
// small recursive-descent parser producing an immutable value tree, with
// the same strict RFC 8259 grammar the validator enforces. Throws
// fvdf::Error with a byte offset on malformed input.

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace fvdf::serve {

class JsonValue {
public:
  enum class Kind : u8 { Null, Bool, Number, String, Array, Object };

  /// Parses exactly one JSON value spanning all of `text` (trailing
  /// whitespace allowed). Throws fvdf::Error on anything else.
  static JsonValue parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_number() const { return kind_ == Kind::Number; }

  /// Typed accessors; throw fvdf::Error on a kind mismatch.
  bool as_bool() const;
  f64 as_f64() const;
  i64 as_i64() const; // as_f64 narrowed; throws if not integral
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;                        // array
  const std::vector<std::pair<std::string, JsonValue>>& members() const; // object

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  bool has(std::string_view key) const { return find(key) != nullptr; }

  /// Convenience typed member getters with fallbacks; throw on a present
  /// member of the wrong kind (a typo must not silently default).
  std::string get_string(std::string_view key, const std::string& fallback) const;
  f64 get_f64(std::string_view key, f64 fallback) const;
  i64 get_i64(std::string_view key, i64 fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;

private:
  friend struct JsonParser;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  f64 number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace fvdf::serve
