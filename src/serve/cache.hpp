#pragma once
// Content-addressed artifact cache for the serve daemon (docs/serving.md).
//
// Key: app::case_fingerprint — the FNV-1a 64 of the canonical,
// default-resolved, solve-relevant parameter text of a case config. Two
// requests whose configs spell the same case differently (reordered keys,
// explicit defaults, extra whitespace, different sim_threads or output
// paths) hash identically and share one entry.
//
// Value: everything expensive that a repeat solve of the same case can
// legally reuse without changing results —
//   - the built FlowProblem (mesh + geomodel + transmissibilities; the
//     dominant setup cost for structured geomodels),
//   - core::CaseArtifacts (lowered bytecode programs + planned channel
//     lookahead tables; see the sharing contract on CaseArtifacts),
//   - the verify-preflight verdict (static verification passes once per
//     case, not once per job).
//
// Entries are handed out as shared_ptr, so eviction never invalidates a
// running job — the entry just stops being findable. Eviction is LRU by
// acquire order. Hit / miss / eviction counters land in an optional
// telemetry::MetricsRegistry (mutated under the cache mutex — registry
// adds are shard-local, not internally synchronized).

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/config.hpp"
#include "common/types.hpp"
#include "core/solver.hpp"

namespace fvdf::telemetry {
class MetricsRegistry;
}

namespace fvdf::serve {

struct CacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;
  u64 entries = 0;
};

class ArtifactCache {
public:
  struct Entry {
    std::string fingerprint;
    std::string canonical_text;
    std::shared_ptr<const FlowProblem> problem;
    std::shared_ptr<core::CaseArtifacts> artifacts;

    // Verify-preflight memo: the first job of a case that asks for
    // verification runs it; later jobs skip it (RunHooks::skip_verify).
    // Guarded by `mutex` — two concurrent first jobs may both verify
    // (benign: verification is read-only), but the flag flips once.
    std::mutex mutex;
    bool verified = false;

    bool operator==(const Entry&) const = delete;
  };

  explicit ArtifactCache(std::size_t capacity = 32,
                         telemetry::MetricsRegistry* metrics = nullptr);

  /// Looks up (or builds) the entry for `config`. The expensive problem
  /// build runs outside the cache lock, so concurrent first requests for
  /// *different* cases build in parallel; a racing duplicate build of the
  /// same case is benign (one result wins, both are identical by
  /// determinism) and each builder counts one miss.
  std::shared_ptr<Entry> acquire(const Config& config, bool* was_hit = nullptr);

  CacheStats stats() const;
  std::size_t capacity() const { return capacity_; }

private:
  struct Slot {
    std::shared_ptr<Entry> entry;
    std::list<std::string>::iterator lru_pos;
  };

  void count(u32 id) const; // caller holds mutex_

  std::size_t capacity_;
  telemetry::MetricsRegistry* metrics_;
  u32 hit_id_ = 0, miss_id_ = 0, eviction_id_ = 0;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Slot> entries_; // by fingerprint
  std::list<std::string> lru_; // front = most recently acquired
  mutable CacheStats stats_;
};

} // namespace fvdf::serve
