#include "serve/jobs.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include "app/scenario.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "telemetry/json.hpp"
#include "telemetry/session.hpp"

namespace fvdf::serve {

namespace fs = std::filesystem;

namespace {

bool valid_id(const std::string& id) {
  if (id.empty() || id.size() > 128) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

f64 seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<f64>(std::chrono::steady_clock::now() - start)
      .count();
}

// Why a job's on_step returned false; decides the terminal event.
enum class StopReason : u8 { None, Cancelled, Deadline, Shutdown };

} // namespace

const char* to_string(JobState state) {
  switch (state) {
  case JobState::Queued: return "queued";
  case JobState::Running: return "running";
  case JobState::Done: return "done";
  case JobState::Failed: return "failed";
  case JobState::Cancelled: return "cancelled";
  case JobState::Expired: return "expired";
  }
  return "?";
}

JobManager::JobManager(std::shared_ptr<ArtifactCache> cache,
                       JobManagerConfig config)
    : cache_(std::move(cache)), config_(std::move(config)) {
  FVDF_CHECK_MSG(cache_ != nullptr, "JobManager requires an ArtifactCache");
  if (config_.workers == 0) config_.workers = 1;
  if (config_.checkpoint_every < 1) config_.checkpoint_every = 1;
  if (!config_.spool_dir.empty()) fs::create_directories(config_.spool_dir);
  workers_.reserve(config_.workers);
  for (u32 i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

JobManager::~JobManager() { shutdown_graceful(); }

std::string JobManager::spool_case_path(const std::string& id) const {
  return (fs::path(config_.spool_dir) / (id + ".case.ini")).string();
}

std::string JobManager::spool_ckpt_path(const std::string& id) const {
  return (fs::path(config_.spool_dir) / (id + ".ckpt")).string();
}

bool JobManager::submit(JobSpec spec, EventSink sink, std::string* error_code) {
  // Caller must hold mutex_ (stats_ and the queue share its guard).
  auto reject = [&](const char* code) {
    if (error_code != nullptr) *error_code = code;
    ++stats_.rejected;
    return false;
  };
  if (!valid_id(spec.id)) {
    std::lock_guard<std::mutex> lock(mutex_);
    return reject("invalid_id");
  }

  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);
  job->sink = std::move(sink);
  job->admitted = std::chrono::steady_clock::now();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) return reject("draining");
    if (live_.count(job->spec.id) != 0) return reject("duplicate_id");
    if (queue_.size() >= config_.queue_capacity) return reject("queue_full");
    job->seq = next_seq_++;
    live_.emplace(job->spec.id, job);
    queue_.emplace(std::make_pair(-static_cast<i64>(job->spec.priority),
                                  job->seq),
                   job);
    ++stats_.accepted;
  }

  if (!config_.spool_dir.empty() && !job->resume_from_spool) {
    std::ofstream out(spool_case_path(job->spec.id),
                      std::ios::binary | std::ios::trunc);
    out << job->spec.case_text;
  }

  if (job->sink) {
    telemetry::JsonWriter writer;
    writer.begin_object()
        .kv("event", "accepted")
        .kv("id", job->spec.id)
        .kv("priority", job->spec.priority)
        .end_object();
    job->sink(writer.take());
  }
  work_cv_.notify_one();
  return true;
}

bool JobManager::cancel(const std::string& id) {
  std::shared_ptr<Job> queued_victim;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = live_.find(id);
    if (it == live_.end()) return false;
    auto& job = it->second;
    job->cancel_requested.store(true, std::memory_order_relaxed);
    if (job->state == JobState::Queued) {
      queue_.erase(std::make_pair(-static_cast<i64>(job->spec.priority),
                                  job->seq));
      queued_victim = job;
    }
  }
  if (queued_victim != nullptr) {
    emit_error(queued_victim, "cancelled", "job cancelled while queued");
    finish(queued_victim, JobState::Cancelled);
  }
  return true;
}

i64 JobManager::recover(EventSink sink) {
  if (config_.spool_dir.empty() || !fs::exists(config_.spool_dir)) return 0;
  constexpr std::string_view kSuffix = ".case.ini";
  std::vector<std::string> ids;
  for (const auto& dirent : fs::directory_iterator(config_.spool_dir)) {
    const std::string name = dirent.path().filename().string();
    if (name.size() <= kSuffix.size() ||
        name.substr(name.size() - kSuffix.size()) != kSuffix)
      continue;
    ids.push_back(name.substr(0, name.size() - kSuffix.size()));
  }
  std::sort(ids.begin(), ids.end()); // deterministic re-admission order

  i64 recovered = 0;
  for (const std::string& id : ids) {
    std::ifstream in(spool_case_path(id), std::ios::binary);
    if (!in) continue;
    std::ostringstream text;
    text << in.rdbuf();

    JobSpec spec;
    spec.id = id;
    spec.case_text = text.str();
    auto job = std::make_shared<Job>();
    job->spec = std::move(spec);
    job->sink = sink;
    job->admitted = std::chrono::steady_clock::now();
    job->resume_from_spool = true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (draining_ || live_.count(id) != 0 ||
          queue_.size() >= config_.queue_capacity)
        continue;
      job->seq = next_seq_++;
      live_.emplace(id, job);
      queue_.emplace(std::make_pair(i64{0}, job->seq), job);
      ++stats_.accepted;
      ++stats_.recovered;
    }
    ++recovered;
    work_cv_.notify_one();
  }
  return recovered;
}

void JobManager::shutdown_graceful() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ && workers_.empty()) return;
    draining_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
}

void JobManager::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

JobStats JobManager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JobStats out = stats_;
  out.queued_now = queue_.size();
  out.running_now = running_;
  return out;
}

void JobManager::worker_loop() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      // Draining: leave queued jobs spooled for the next daemon.
      if (draining_) return;
      const auto it = queue_.begin();
      job = it->second;
      queue_.erase(it);
      job->state = JobState::Running;
      ++running_;
    }
    run_job(job);
  }
}

bool JobManager::deadline_passed(const Job& job) const {
  return job.spec.deadline_seconds > 0 &&
         seconds_since(job.admitted) > job.spec.deadline_seconds;
}

void JobManager::emit_error(const std::shared_ptr<Job>& job,
                            const std::string& code,
                            const std::string& message) {
  if (!job->sink) return;
  telemetry::JsonWriter writer;
  writer.begin_object()
      .kv("event", "error")
      .kv("id", job->spec.id)
      .kv("code", code)
      .kv("message", message)
      .end_object();
  job->sink(writer.take());
}

void JobManager::finish(const std::shared_ptr<Job>& job, JobState state,
                        bool keep_spool) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->state = state;
    live_.erase(job->spec.id);
    switch (state) {
    case JobState::Done: ++stats_.completed; break;
    case JobState::Failed: ++stats_.failed; break;
    case JobState::Cancelled: ++stats_.cancelled; break;
    case JobState::Expired: ++stats_.expired; break;
    default: break;
    }
  }
  if (!config_.spool_dir.empty() && !keep_spool) {
    std::error_code ignored;
    fs::remove(spool_case_path(job->spec.id), ignored);
    fs::remove(spool_ckpt_path(job->spec.id), ignored);
  }
  idle_cv_.notify_all();
}

void JobManager::run_job(const std::shared_ptr<Job>& job) {
  // running_ was incremented at dequeue; every exit path below must go
  // through this helper exactly once.
  auto release_running = [this] {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
    }
    idle_cv_.notify_all();
  };

  if (job->cancel_requested.load(std::memory_order_relaxed)) {
    emit_error(job, "cancelled", "job cancelled before start");
    finish(job, JobState::Cancelled);
    release_running();
    return;
  }
  if (deadline_passed(*job)) {
    emit_error(job, "deadline",
               "deadline of " + std::to_string(job->spec.deadline_seconds) +
                   "s expired before the job started");
    finish(job, JobState::Expired);
    release_running();
    return;
  }

  // --- Setup: parse, content-addressed cache lookup, scenario build. ---
  const auto setup_start = std::chrono::steady_clock::now();
  Config config;
  std::shared_ptr<ArtifactCache::Entry> entry;
  app::Scenario scenario;
  bool cache_hit = false;
  try {
    config = Config::parse_string(job->spec.case_text);
    entry = cache_->acquire(config, &cache_hit);
    scenario = app::scenario_from_config(config, entry->problem);
  } catch (const std::exception& e) {
    emit_error(job, "invalid_case", e.what());
    finish(job, JobState::Failed);
    release_running();
    return;
  }
  if (job->spec.sim_threads >= 0)
    scenario.sim_threads = static_cast<u32>(job->spec.sim_threads);
  // Service jobs never write client-configured artifacts from the daemon
  // process; outputs flow back over the wire.
  scenario.vtk_path.clear();
  scenario.checkpoint_path.clear();
  scenario.heatmap = false;
  scenario.host_profile_dir.clear();

  const std::string ckpt_path =
      config_.spool_dir.empty() ? std::string() : spool_ckpt_path(job->spec.id);
  if (job->resume_from_spool && !ckpt_path.empty() && fs::exists(ckpt_path))
    scenario.resume_path = ckpt_path;

  app::RunHooks hooks;
  hooks.artifacts = entry->artifacts;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    hooks.skip_verify = entry->verified;
  }

  StopReason stop = StopReason::None;
  const auto& mesh = entry->problem->mesh();
  hooks.on_step = [&](i64 step, i64 total_steps, u64 iterations,
                      const std::vector<f64>& state) {
    if (job->sink && job->spec.stream_residuals) {
      telemetry::JsonWriter writer;
      writer.begin_object()
          .kv("event", "step")
          .kv("id", job->spec.id)
          .kv("step", step + 1)
          .kv("steps", total_steps)
          .kv("iterations", iterations)
          .end_object();
      job->sink(writer.take());
    }
    if (!ckpt_path.empty() && (step + 1) % config_.checkpoint_every == 0) {
      FieldCheckpoint checkpoint;
      checkpoint.nx = mesh.nx();
      checkpoint.ny = mesh.ny();
      checkpoint.nz = mesh.nz();
      checkpoint.fields["pressure"] = state;
      checkpoint.fields["transient_step"] = {static_cast<f64>(step + 1)};
      save_checkpoint(ckpt_path, checkpoint);
    }
    if (job->cancel_requested.load(std::memory_order_relaxed)) {
      stop = StopReason::Cancelled;
      return false;
    }
    if (deadline_passed(*job)) {
      stop = StopReason::Deadline;
      return false;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (draining_) {
        stop = StopReason::Shutdown;
        return false;
      }
    }
    return true;
  };

  std::unique_ptr<telemetry::Session> telemetry;
  if (job->spec.stream_residuals && !scenario.transient &&
      scenario.backend == app::Backend::Dataflow) {
    telemetry = std::make_unique<telemetry::Session>();
    hooks.telemetry = telemetry.get();
  }

  const f64 setup_seconds = seconds_since(setup_start);

  // --- Solve. ---
  const auto solve_start = std::chrono::steady_clock::now();
  std::ostringstream log;
  app::ScenarioOutcome outcome;
  try {
    outcome = app::run_scenario(scenario, log, &hooks);
  } catch (const std::exception& e) {
    emit_error(job, "internal", e.what());
    finish(job, JobState::Failed);
    release_running();
    return;
  }
  const f64 solve_seconds = seconds_since(solve_start);

  if (scenario.verify && !hooks.skip_verify) {
    // run_scenario's verify preflight passed (it throws otherwise);
    // later jobs of this case skip it.
    std::lock_guard<std::mutex> lock(entry->mutex);
    entry->verified = true;
  }

  if (outcome.interrupted) {
    switch (stop) {
    case StopReason::Cancelled:
      emit_error(job, "cancelled",
                 "job cancelled at step " +
                     std::to_string(outcome.steps_completed) + "/" +
                     std::to_string(scenario.steps));
      finish(job, JobState::Cancelled);
      break;
    case StopReason::Deadline:
      emit_error(job, "deadline",
                 "deadline of " + std::to_string(job->spec.deadline_seconds) +
                     "s expired at step " +
                     std::to_string(outcome.steps_completed) + "/" +
                     std::to_string(scenario.steps));
      finish(job, JobState::Expired);
      break;
    default:
      // Shutdown: the spooled checkpoint is the hand-off to the next
      // daemon — recover() resumes from here.
      emit_error(job, "shutdown",
                 "daemon shutting down; job checkpointed at step " +
                     std::to_string(outcome.steps_completed) + "/" +
                     std::to_string(scenario.steps) +
                     " and will resume on restart");
      finish(job, JobState::Failed, /*keep_spool=*/true);
      break;
    }
    release_running();
    return;
  }

  if (job->sink) {
    if (job->spec.stream_residuals && !outcome.residual_history.empty()) {
      telemetry::JsonWriter writer;
      writer.begin_object()
          .kv("event", "residuals")
          .kv("id", job->spec.id)
          .key("values")
          .begin_array();
      for (const f64 value : outcome.residual_history) writer.value(value);
      writer.end_array().end_object();
      job->sink(writer.take());
    }

    telemetry::JsonWriter writer;
    writer.begin_object()
        .kv("event", "result")
        .kv("id", job->spec.id)
        .kv("fingerprint", entry->fingerprint)
        .kv("cache", cache_hit ? "hit" : "miss")
        .kv("converged", outcome.converged)
        .kv("iterations", outcome.iterations)
        .kv("steps_completed", outcome.steps_completed)
        .kv("residual_norm", outcome.residual_norm)
        .kv("setup_seconds", setup_seconds)
        .kv("solve_seconds", solve_seconds)
        .kv("pressure_hash",
            hash_hex(fnv1a64(outcome.pressure.data(),
                             outcome.pressure.size() * sizeof(f64))));
    if (job->spec.return_field) {
      writer.key("pressure").begin_array();
      for (const f64 value : outcome.pressure) writer.value(value);
      writer.end_array();
    }
    writer.end_object();
    job->sink(writer.take());
  }

  finish(job, JobState::Done);
  release_running();
}

} // namespace fvdf::serve
