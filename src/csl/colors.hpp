#pragma once
// Central color plan for the dataflow FV application. Keeping every color
// assignment in one table prevents collisions between components, the same
// discipline a real CSL project needs for its 24 routable colors.

#include "wse/color.hpp"

namespace fvdf::csl {

using wse::Color;

// --- routable colors (0..23) ---

// Halo exchange (Table I): two colors per fabric dimension.
inline constexpr Color kHaloC1 = 0; // X dimension, odd-x senders
inline constexpr Color kHaloC2 = 1; // X dimension, even-x senders
inline constexpr Color kHaloC3 = 2; // Y dimension, odd-y senders
inline constexpr Color kHaloC4 = 3; // Y dimension, even-y senders

// All-reduce (Sec. III-C): parity-alternating chain colors plus the two
// broadcast colors of phase 3.
inline constexpr Color kReduceRowA = 4;
inline constexpr Color kReduceRowB = 5;
inline constexpr Color kReduceColA = 6;
inline constexpr Color kReduceColB = 7;
inline constexpr Color kBcastCol = 8;
inline constexpr Color kBcastRow = 9;

// Localized broadcast demo (Fig. 4) — used by tests/examples only.
inline constexpr Color kExchangeX = 10;

// Any-source whole-fabric broadcast (the paper's future-work item on
// "data movement from any cell"): row flood + per-column fan-out.
inline constexpr Color kBcastAnyRow = 11;
inline constexpr Color kBcastAnyCol = 12;

// --- local task colors (24..) ---

inline constexpr Color kHaloDoneX = 24; // per-step X action completion
inline constexpr Color kHaloDoneY = 25; // per-step Y action completion
inline constexpr Color kReduceRowDone = 26;
inline constexpr Color kReduceColDone = 27;
inline constexpr Color kBcastColDone = 28;
inline constexpr Color kBcastRowDone = 29;
inline constexpr Color kExchangeDone = 30;

// The CG state machine's own local colors (see core/pe_program).
inline constexpr Color kCgStep = 31;

// Any-source broadcast completion.
inline constexpr Color kBcastAnyDone = 32;

} // namespace fvdf::csl
