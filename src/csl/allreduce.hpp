#pragma once
// Whole-fabric all-reduce (Sec. III-C), the operator behind the dot
// products of CG's alpha and beta:
//
//  1) every row reduces left -> right (parity-alternating chain colors);
//     the right-most PE of each row holds the row sum;
//  2) the right-most column reduces top -> bottom; the bottom-right PE
//     holds the fabric total;
//  3) the bottom-right PE broadcasts up the right-most column, and each
//     right-column PE broadcasts west across its row; every PE ends with
//     the total.
//
// Implemented as an asynchronous task chain: start() contributes this PE's
// value and registers the receives; the DoneCallback fires (with the
// fabric-wide sum) once the broadcast reaches this PE.

#include <functional>

#include "csl/colors.hpp"
#include "wse/program.hpp"

namespace fvdf::csl {

using wse::Dsd;
using wse::PeContext;

class AllReduce {
public:
  struct Colors {
    Color row_a = kReduceRowA; // driven by even-x PEs
    Color row_b = kReduceRowB; // driven by odd-x PEs
    Color col_a = kReduceColA; // right column, even-y senders
    Color col_b = kReduceColB; // right column, odd-y senders
    Color bcast_col = kBcastCol;
    Color bcast_row = kBcastRow;
    Color row_done = kReduceRowDone;   // local
    Color col_done = kReduceColDone;   // local
    Color bcast_col_done = kBcastColDone; // local
    Color bcast_row_done = kBcastRowDone; // local
  };

  using DoneCallback = std::function<void(PeContext&, f32)>;

  AllReduce();
  explicit AllReduce(Colors colors);

  /// Installs static routes and allocates the scalar slots this component
  /// needs in PE memory. Call from on_start.
  void configure(PeContext& ctx);

  /// Contributes `value` and arms the reduction. `on_done` fires exactly
  /// once on this PE with the fabric-wide sum. Reentrant after completion
  /// (CG runs two all-reduces per iteration).
  void start(PeContext& ctx, f32 value, DoneCallback on_done);

  bool handles(Color color) const;
  void on_task(PeContext& ctx, Color color);

  /// Static communication declaration for the fabric verifier.
  wse::ProgramManifest manifest(wse::PeCoord coord, i64 width, i64 height) const;

  /// Memory slots (valid after configure). The bytecode lowering reuses
  /// the same allocations so charged loads/stores hit identical addresses.
  const wse::MemSpan& slot_value() const { return slot_value_; }
  const wse::MemSpan& slot_in() const { return slot_in_; }

private:
  void row_phase_done(PeContext& ctx, f32 row_sum);
  void column_phase_done(PeContext& ctx, f32 total);
  void finish(PeContext& ctx);

  Colors colors_;
  wse::MemSpan slot_value_{}; // this PE's running partial / final result
  wse::MemSpan slot_in_{};    // incoming partial (row or column)
  DoneCallback on_done_;
  bool active_ = false;
  f32 row_sum_ = 0.0f; // right-column PEs keep their row sum for phase 2
};

} // namespace fvdf::csl
