#pragma once
// The four-step halo exchange of Table I.
//
// Each PE sends its local column to its four cardinal neighbors and
// receives theirs, using two colors per dimension and router switch
// positions that alternate the send direction (east in steps 1-2, west in
// steps 3-4; north then south on the Y dimension). Every data message
// trails a control wavelet that advances the switch positions of its own
// color in every router it passes — Listing 1's mechanism — so sender and
// receiver configurations stay in lock-step, and ring_mode returns them to
// the initial position for the next iteration.
//
// Faithful details:
//  * odd-index PEs send first on C1/C3, even-index PEs on C2/C4 (Table I);
//  * the X and Y actions of a step run concurrently, and progression to
//    the next step waits for the step's completion callbacks;
//  * a received face triggers an immediate callback so the caller can
//    compute that face's flux while other transfers are still in flight
//    (Sec. III-B's event-driven overlap);
//  * PEs on the fabric edge skip actions whose partner does not exist and
//    advance their own router locally (the fabric_control write of
//    Listing 1) to stay in phase.

#include <array>
#include <functional>

#include "csl/colors.hpp"
#include "wse/program.hpp"

namespace fvdf::csl {

using wse::Dir;
using wse::Dsd;
using wse::PeContext;

class HaloExchange {
public:
  struct Colors {
    Color c1 = kHaloC1;
    Color c2 = kHaloC2;
    Color c3 = kHaloC3;
    Color c4 = kHaloC4;
    Color done_x = kHaloDoneX; // local: X action of current step finished
    Color done_y = kHaloDoneY; // local: Y action of current step finished
  };

  /// Called when the halo from neighbor `dir` has fully landed.
  using FaceCallback = std::function<void(PeContext&, Dir)>;
  /// Called when all four steps completed on this PE.
  using DoneCallback = std::function<void(PeContext&)>;

  HaloExchange();
  explicit HaloExchange(Colors colors);

  /// Installs the parity-dependent router configurations. Call from
  /// on_start, once per PE.
  void configure(PeContext& ctx);

  /// Declares the smallest column length any start() will ever send, so
  /// the manifest can carry a word bound for the channel-lookahead planner
  /// (see ProgramManifest::min_inject_words). Optional — the default, 0,
  /// claims nothing. Must hold for every exchange this component runs.
  void declare_column_words(u32 words) { min_column_words_ = words; }

  /// Begins one exchange: sends `column` to all four neighbors and fills
  /// the halo buffers (each must hold column.length words). Buffers of
  /// non-existent neighbors are left untouched.
  void start(PeContext& ctx, Dsd column, Dsd halo_west, Dsd halo_east,
             Dsd halo_south, Dsd halo_north, FaceCallback on_face,
             DoneCallback on_done);

  bool handles(Color color) const;
  void on_task(PeContext& ctx, Color color);

  /// Static communication declaration for the fabric verifier (compose
  /// into the owning program's PeProgram::manifest).
  wse::ProgramManifest manifest(wse::PeCoord coord, i64 width, i64 height) const;

  /// Words this PE sent during exchanges so far (diagnostics).
  u64 words_sent() const { return words_sent_; }

private:
  void launch_step(PeContext& ctx);
  void action_done(PeContext& ctx, bool x_dim);

  Colors colors_;
  Dsd column_{};
  std::array<Dsd, 4> halo_{}; // indexed by step semantics, see launch_step
  FaceCallback on_face_;
  DoneCallback on_done_;
  int step_ = 0;     // 1..4 while active, 0 idle
  int pending_ = 0;  // outstanding actions in the current step
  bool x_recv_pending_ = false; // current step's X action is a receive
  bool y_recv_pending_ = false;
  Dir x_face_ = Dir::West; // face being received on X this step
  Dir y_face_ = Dir::South;
  u64 words_sent_ = 0;
  u32 min_column_words_ = 0; // declared lower bound, see declare_column_words
};

} // namespace fvdf::csl
