#include "csl/allreduce.hpp"

#include "common/error.hpp"
#include "telemetry/phase.hpp"
#include "wse/router.hpp"

namespace fvdf::csl {

using wse::ColorConfig;
using wse::Dir;
using wse::DirMask;
using wse::SwitchPosition;

namespace {
ColorConfig route(DirMask rx, DirMask tx) {
  ColorConfig config;
  config.positions = {SwitchPosition{rx, tx}};
  return config;
}
} // namespace

AllReduce::AllReduce() : AllReduce(Colors{}) {}
AllReduce::AllReduce(Colors colors) : colors_(colors) {}

void AllReduce::configure(PeContext& ctx) {
  const i64 x = ctx.coord().x;
  const i64 y = ctx.coord().y;
  const i64 width = ctx.fabric_width();
  const i64 height = ctx.fabric_height();
  const bool odd_x = (x % 2) != 0;
  const bool odd_y = (y % 2) != 0;

  // Edge-clip every transmit set so no installed route points off the
  // fabric (see HaloExchange::configure); positions that only ever carry
  // traffic away from the edge are unaffected.
  auto install = [&](Color color, ColorConfig config) {
    for (auto& pos : config.positions)
      pos.tx = wse::clip_to_fabric(pos.tx, ctx.coord(), width, height);
    ctx.configure_router(color, std::move(config));
  };

  // Row-reduce chain: a PE injects its partial eastward on its parity
  // color and accepts the western neighbor's partial on the other.
  if (odd_x) {
    install(colors_.row_b, route(DirMask::of(Dir::Ramp), DirMask::of(Dir::East)));
    install(colors_.row_a, route(DirMask::of(Dir::West), DirMask::of(Dir::Ramp)));
  } else {
    install(colors_.row_a, route(DirMask::of(Dir::Ramp), DirMask::of(Dir::East)));
    install(colors_.row_b, route(DirMask::of(Dir::West), DirMask::of(Dir::Ramp)));
  }
  // Column-reduce chain (only the right-most column carries traffic, but
  // routes are installed everywhere — unused routes are harmless, exactly
  // like a real CSL layout block).
  if (odd_y) {
    install(colors_.col_b, route(DirMask::of(Dir::Ramp), DirMask::of(Dir::South)));
    install(colors_.col_a, route(DirMask::of(Dir::North), DirMask::of(Dir::Ramp)));
  } else {
    install(colors_.col_a, route(DirMask::of(Dir::Ramp), DirMask::of(Dir::South)));
    install(colors_.col_b, route(DirMask::of(Dir::North), DirMask::of(Dir::Ramp)));
  }

  // Phase-3 broadcasts. Up the right-most column with a tap at every PE:
  if (y == height - 1) {
    install(colors_.bcast_col, route(DirMask::of(Dir::Ramp), DirMask::of(Dir::North)));
  } else if (y == 0) {
    install(colors_.bcast_col, route(DirMask::of(Dir::South), DirMask::of(Dir::Ramp)));
  } else {
    install(colors_.bcast_col,
            route(DirMask::of(Dir::South), DirMask::of(Dir::Ramp, Dir::North)));
  }
  // Westward along each row:
  if (x == width - 1) {
    install(colors_.bcast_row, route(DirMask::of(Dir::Ramp), DirMask::of(Dir::West)));
  } else if (x == 0) {
    install(colors_.bcast_row, route(DirMask::of(Dir::East), DirMask::of(Dir::Ramp)));
  } else {
    install(colors_.bcast_row,
            route(DirMask::of(Dir::East), DirMask::of(Dir::Ramp, Dir::West)));
  }

  slot_value_ = ctx.memory().alloc_f32("allreduce.value", 1);
  slot_in_ = ctx.memory().alloc_f32("allreduce.in", 1);
}

wse::ProgramManifest AllReduce::manifest(wse::PeCoord coord, i64 width,
                                         i64 height) const {
  using wse::color_set_bit;
  const bool odd_x = (coord.x % 2) != 0;
  const bool odd_y = (coord.y % 2) != 0;
  const bool right_col = coord.x == width - 1;
  const bool bottom = coord.y == height - 1;

  wse::ProgramManifest m;
  // Every all-reduce message is a single f32 partial or result; declaring
  // the one-word bound lets the lookahead planner charge at least one link
  // cycle to any boundary these colors cross.
  // Phase 1, row chain eastward: every non-right PE forwards its partial
  // on its parity color; every non-left PE receives the opposite one.
  if (coord.x < width - 1) m.declare_inject(odd_x ? colors_.row_b : colors_.row_a, 1);
  if (coord.x > 0) m.handles |= color_set_bit(odd_x ? colors_.row_a : colors_.row_b);
  // Phase 2, column chain southward on the right-most column only.
  if (right_col && coord.y < height - 1)
    m.declare_inject(odd_y ? colors_.col_b : colors_.col_a, 1);
  if (right_col && coord.y > 0)
    m.handles |= color_set_bit(odd_y ? colors_.col_a : colors_.col_b);
  // Phase 3, broadcast: bottom-right fans out; the right column relays west.
  if (right_col && bottom && height > 1) m.declare_inject(colors_.bcast_col, 1);
  if (right_col && !bottom) m.handles |= color_set_bit(colors_.bcast_col);
  if (right_col && width > 1) m.declare_inject(colors_.bcast_row, 1);
  if (!right_col) m.handles |= color_set_bit(colors_.bcast_row);

  for (Color done : {colors_.row_done, colors_.col_done, colors_.bcast_col_done,
                     colors_.bcast_row_done}) {
    m.handles |= color_set_bit(done);
    m.activates |= color_set_bit(done);
  }
  return m;
}

void AllReduce::start(PeContext& ctx, f32 value, DoneCallback on_done) {
  FVDF_CHECK_MSG(!active_, "all-reduce already in progress on this PE");
  active_ = true;
  ctx.mark_phase(static_cast<u8>(telemetry::Phase::AllReduce));
  on_done_ = std::move(on_done);
  ctx.dsd().store(slot_value_.offset_words, value);

  const i64 x = ctx.coord().x;
  const i64 y = ctx.coord().y;
  const i64 width = ctx.fabric_width();
  const i64 height = ctx.fabric_height();
  const bool odd_x = (x % 2) != 0;
  const bool odd_y = (y % 2) != 0;

  // Arm every receive up front; static routes + inboxes make order safe.
  if (x > 0) {
    // Incoming row partial from the western neighbor (opposite parity).
    const Color in_color = odd_x ? colors_.row_a : colors_.row_b;
    ctx.recv(in_color, wse::dsd(slot_in_), colors_.row_done);
  }
  if (x == width - 1 && y > 0) {
    const Color in_color = odd_y ? colors_.col_a : colors_.col_b;
    ctx.recv(in_color, wse::dsd(slot_in_), colors_.col_done);
  }
  if (x == width - 1 && y != height - 1) {
    ctx.recv(colors_.bcast_col, wse::dsd(slot_value_), colors_.bcast_col_done);
  }
  if (x < width - 1) {
    ctx.recv(colors_.bcast_row, wse::dsd(slot_value_), colors_.bcast_row_done);
  }

  if (x == 0) {
    // Row chains start at the left edge.
    if (width > 1) {
      const Color out_color = odd_x ? colors_.row_b : colors_.row_a;
      ctx.send(out_color, wse::dsd(slot_value_));
    } else {
      row_phase_done(ctx, value);
    }
  }
}

bool AllReduce::handles(Color color) const {
  return color == colors_.row_done || color == colors_.col_done ||
         color == colors_.bcast_col_done || color == colors_.bcast_row_done;
}

void AllReduce::on_task(PeContext& ctx, Color color) {
  FVDF_CHECK_MSG(active_, "all-reduce callback while idle");
  const i64 x = ctx.coord().x;
  const i64 width = ctx.fabric_width();
  const bool odd_x = (x % 2) != 0;
  const bool odd_y = (ctx.coord().y % 2) != 0;

  if (color == colors_.row_done) {
    // West partial arrived: fold in this PE's value (one scalar FADD).
    const f32 partial = ctx.dsd().load(slot_in_.offset_words);
    const f32 mine = ctx.dsd().load(slot_value_.offset_words);
    const f32 sum = ctx.dsd().fadds_scalar(partial, mine);
    ctx.dsd().store(slot_value_.offset_words, sum);
    if (x < width - 1) {
      const Color out_color = odd_x ? colors_.row_b : colors_.row_a;
      ctx.send(out_color, wse::dsd(slot_value_));
    } else {
      row_phase_done(ctx, sum);
    }
  } else if (color == colors_.col_done) {
    const f32 partial = ctx.dsd().load(slot_in_.offset_words);
    const f32 total = ctx.dsd().fadds_scalar(partial, row_sum_);
    ctx.dsd().store(slot_value_.offset_words, total);
    if (ctx.coord().y < ctx.fabric_height() - 1) {
      const Color out_color = odd_y ? colors_.col_b : colors_.col_a;
      ctx.send(out_color, wse::dsd(slot_value_));
    } else {
      column_phase_done(ctx, total);
    }
  } else if (color == colors_.bcast_col_done) {
    // Got the fabric total (already stored into slot_value_ by the recv);
    // fan it out across this row, then finish locally.
    if (width > 1) ctx.send(colors_.bcast_row, wse::dsd(slot_value_));
    finish(ctx);
  } else if (color == colors_.bcast_row_done) {
    finish(ctx);
  } else {
    throw Error("all-reduce: unexpected color");
  }
}

void AllReduce::row_phase_done(PeContext& ctx, f32 row_sum) {
  // Runs only on the right-most column (x == width-1).
  row_sum_ = row_sum;
  const i64 y = ctx.coord().y;
  const i64 height = ctx.fabric_height();
  if (y == 0) {
    if (height > 1) {
      const bool odd_y = (y % 2) != 0;
      ctx.dsd().store(slot_value_.offset_words, row_sum);
      const Color out_color = odd_y ? colors_.col_b : colors_.col_a;
      ctx.send(out_color, wse::dsd(slot_value_));
    } else {
      column_phase_done(ctx, row_sum);
    }
  }
  // Right-column PEs with y > 0 wait for the column partial (col_done).
}

void AllReduce::column_phase_done(PeContext& ctx, f32 total) {
  // Runs only on the bottom-right PE.
  ctx.dsd().store(slot_value_.offset_words, total);
  if (ctx.fabric_height() > 1) ctx.send(colors_.bcast_col, wse::dsd(slot_value_));
  if (ctx.fabric_width() > 1) ctx.send(colors_.bcast_row, wse::dsd(slot_value_));
  finish(ctx);
}

void AllReduce::finish(PeContext& ctx) {
  active_ = false;
  const f32 total = ctx.dsd().load(slot_value_.offset_words);
  if (on_done_) {
    // Move the callback out first: it may start the next all-reduce.
    DoneCallback done = std::move(on_done_);
    on_done_ = nullptr;
    done(ctx, total);
  }
}

} // namespace fvdf::csl
