#pragma once
// Bytecode lowerings of the Table-I collectives (docs/simulator.md,
// "Bytecode ISA").
//
// Each emitter writes the flat-instruction equivalent of its component's
// event-driven callback chain into a wse::bc::Builder. Dynamic state the
// legacy classes kept in members becomes static code (per-coordinate
// parity and edge cases are resolved at lowering time) plus a handful of
// VM registers. Instruction order matches the legacy implementations
// exactly — the charged DsdEngine calls, the telemetry marks and the
// fabric sends/recvs come out in the same sequence, which is what makes
// the interpreter bitwise-identical to the callback path.
//
// Register conventions (shared with core/bytecode_program.cpp):
//   f0      all-reduce contribution in / fabric total out
//   f1      all-reduce row_sum_ (persists across the column phase)
//   f2, f3  all-reduce handler scratch
//   u-regs and continuation registers are caller-assigned.

#include <functional>

#include "csl/allreduce.hpp"
#include "csl/halo.hpp"
#include "wse/bytecode.hpp"

namespace fvdf::csl {

/// Emits the per-face work (flux computation + phase marks) that the
/// legacy FaceCallback performed; called at lowering time, once per
/// receive site.
using FaceEmit = std::function<void(wse::bc::Builder&, wse::Dir)>;

/// Lowers one four-step halo exchange (one HaloExchange::start call site).
/// A program that runs several distinct exchanges (e.g. the OnTheFly
/// mobility pass plus the per-iteration column exchange) instantiates one
/// emitter per call site — each gets its own step/done blocks.
class HaloEmitter {
public:
  struct Spec {
    HaloExchange::Colors colors{};
    wse::Dsd column{};
    wse::Dsd west{}, east{}, south{}, north{}; // halo receive buffers
    FaceEmit face;      // null for exchanges without per-face work
    u8 cont_reg = 0;    // continuation register JIND'ed after step 4
    u8 pending_ureg = 0;// u-register for the 2-action per-step join
  };

  HaloEmitter(wse::bc::Builder& b, wse::PeCoord coord, i64 width, i64 height,
              Spec spec);

  /// Emits the inline start sequence — the body of HaloExchange::start:
  /// the Halo phase mark, the step-1 handler bindings and the step-1
  /// actions. Execution continues with the caller's next instruction
  /// (overlapped z-flux, exactly like the legacy control flow).
  void emit_start();

  /// Emits the out-of-line done-handler blocks (face work, the join,
  /// steps 2-4, the final JIND through cont_reg). Call once, anywhere the
  /// builder is between blocks.
  void emit_handlers();

private:
  void emit_launch(int step);
  void emit_x_action(int step);
  void emit_y_action(int step);

  wse::bc::Builder& b_;
  wse::PeCoord coord_;
  i64 width_, height_;
  Spec spec_;
  u8 column_, west_, east_, south_, north_; // interned DSD indices
  std::array<wse::bc::Builder::Label, 4> done_x_{}, done_y_{}, next_{};
  std::array<bool, 4> x_recv_{}, y_recv_{};
};

/// Lowers the whole-fabric AllReduce. One emitter serves every
/// reduce_.start call site in the program: jump to start_label() with the
/// PE's contribution in f0 and a continuation pc in cont_reg; the finish
/// block loads the fabric total into f0 and JINDs through cont_reg.
class ReduceEmitter {
public:
  struct Spec {
    AllReduce::Colors colors{};
    u32 slot_value = 0; // word offset of the component's value slot
    u32 slot_in = 0;    // word offset of the incoming-partial slot
    u8 cont_reg = 1;
  };

  ReduceEmitter(wse::bc::Builder& b, wse::PeCoord coord, i64 width, i64 height,
                Spec spec);

  /// Entry of the lowered start block (contribution in f0).
  wse::bc::Builder::Label start_label() const { return start_; }

  /// Emits the SETH bindings for the handlers this coordinate can
  /// actually receive. Call inline in the program's entry block (the
  /// bindings are static for the program's lifetime).
  void emit_handler_bindings();

  /// Emits the start/handler/finish blocks out-of-line. Call once.
  void emit_blocks();

private:
  void emit_row_phase_done_tail(); // row sum in f1 (right column only)
  void emit_column_phase_done(u8 total_reg); // bottom-right only

  wse::bc::Builder& b_;
  wse::PeCoord coord_;
  i64 width_, height_;
  Spec spec_;
  u8 value_dsd_, in_dsd_; // interned 1-word DSD indices
  wse::bc::Builder::Label start_, finish_;
  wse::bc::Builder::Label h_row_, h_col_, h_bcol_, h_brow_;
};

} // namespace fvdf::csl
