#include "csl/halo.hpp"

#include "common/error.hpp"
#include "telemetry/phase.hpp"
#include "wse/router.hpp"

namespace fvdf::csl {

using wse::color_bit;
using wse::ColorConfig;
using wse::DirMask;
using wse::SwitchPosition;

namespace {
// Sender route: position 0 transmits toward `first`, position 1 toward
// `second`; ring_mode returns to position 0 for the next iteration.
ColorConfig sender_route(Dir first, Dir second) {
  ColorConfig config;
  config.positions = {
      SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(first)},
      SwitchPosition{DirMask::of(Dir::Ramp), DirMask::of(second)},
  };
  config.ring_mode = true;
  return config;
}

// Receiver route: position 0 accepts from `first`, position 1 from `second`.
ColorConfig receiver_route(Dir first, Dir second) {
  ColorConfig config;
  config.positions = {
      SwitchPosition{DirMask::of(first), DirMask::of(Dir::Ramp)},
      SwitchPosition{DirMask::of(second), DirMask::of(Dir::Ramp)},
  };
  config.ring_mode = true;
  return config;
}
} // namespace

HaloExchange::HaloExchange() : HaloExchange(Colors{}) {}
HaloExchange::HaloExchange(Colors colors) : colors_(colors) {}

void HaloExchange::configure(PeContext& ctx) {
  const bool odd_x = (ctx.coord().x % 2) != 0;
  const bool odd_y = (ctx.coord().y % 2) != 0;

  // Edge-clip every transmit set: a sender position whose partner PE does
  // not exist becomes a null route (empty tx) instead of pointing off the
  // fabric, so the static verifier can prove no route exits the edge. The
  // fabric sinks such wavelets and counts them as drops, exactly like the
  // old off-edge transmit did.
  auto clip = [&](ColorConfig config) {
    for (auto& pos : config.positions)
      pos.tx = wse::clip_to_fabric(pos.tx, ctx.coord(), ctx.fabric_width(),
                                   ctx.fabric_height());
    return config;
  };

  // X dimension: odd PEs drive C1 (east in steps 1-2, west in 3-4), even
  // PEs drive C2; the opposite parity receives (from west first, then east).
  if (odd_x) {
    ctx.configure_router(colors_.c1, clip(sender_route(Dir::East, Dir::West)));
    ctx.configure_router(colors_.c2, receiver_route(Dir::West, Dir::East));
  } else {
    ctx.configure_router(colors_.c1, receiver_route(Dir::West, Dir::East));
    ctx.configure_router(colors_.c2, clip(sender_route(Dir::East, Dir::West)));
  }
  // Y dimension: "north" is y-1 (paper orientation). Odd PEs drive C3
  // (north first, then south), even PEs drive C4.
  if (odd_y) {
    ctx.configure_router(colors_.c3, clip(sender_route(Dir::North, Dir::South)));
    ctx.configure_router(colors_.c4, receiver_route(Dir::South, Dir::North));
  } else {
    ctx.configure_router(colors_.c3, receiver_route(Dir::South, Dir::North));
    ctx.configure_router(colors_.c4, clip(sender_route(Dir::North, Dir::South)));
  }
}

wse::ProgramManifest HaloExchange::manifest(wse::PeCoord coord, i64 width,
                                            i64 height) const {
  using wse::color_set_bit;
  const bool odd_x = (coord.x % 2) != 0;
  const bool odd_y = (coord.y % 2) != 0;

  wse::ProgramManifest m;
  // Each parity drives one color per dimension (injects + trailing control
  // advance) and receives the opposite parity's color. Edge PEs that skip
  // a receive advance the skipped color locally instead.
  if (odd_x) {
    m.declare_inject(colors_.c1, min_column_words_);
    m.advances |= color_bit(colors_.c1);
    m.handles |= color_set_bit(colors_.c2); // west neighbor always exists
    if (coord.x == width - 1) m.advances |= color_bit(colors_.c2); // step-4 skip
  } else {
    m.declare_inject(colors_.c2, min_column_words_);
    m.advances |= color_bit(colors_.c2);
    if (width > 1) m.handles |= color_set_bit(colors_.c1);
    if (coord.x == 0 || coord.x == width - 1) m.advances |= color_bit(colors_.c1);
  }
  if (odd_y) {
    m.declare_inject(colors_.c3, min_column_words_);
    m.advances |= color_bit(colors_.c3);
    m.handles |= color_set_bit(colors_.c4); // north neighbor always exists
    if (coord.y == height - 1) m.advances |= color_bit(colors_.c4);
  } else {
    m.declare_inject(colors_.c4, min_column_words_);
    m.advances |= color_bit(colors_.c4);
    if (height > 1) m.handles |= color_set_bit(colors_.c3);
    if (coord.y == 0 || coord.y == height - 1) m.advances |= color_bit(colors_.c3);
  }
  m.handles |= color_set_bit(colors_.done_x) | color_set_bit(colors_.done_y);
  m.activates |= color_set_bit(colors_.done_x) | color_set_bit(colors_.done_y);
  return m;
}

void HaloExchange::start(PeContext& ctx, Dsd column, Dsd halo_west, Dsd halo_east,
                         Dsd halo_south, Dsd halo_north, FaceCallback on_face,
                         DoneCallback on_done) {
  FVDF_CHECK_MSG(step_ == 0, "halo exchange already in progress");
  FVDF_CHECK(halo_west.length == column.length && halo_east.length == column.length &&
             halo_south.length == column.length && halo_north.length == column.length);
  // Every exchange is one Halo span on the owning program's timeline; the
  // program re-marks (e.g. Flux) as face callbacks deliver work.
  ctx.mark_phase(static_cast<u8>(telemetry::Phase::Halo));
  column_ = column;
  halo_[0] = halo_west;
  halo_[1] = halo_east;
  halo_[2] = halo_south;
  halo_[3] = halo_north;
  on_face_ = std::move(on_face);
  on_done_ = std::move(on_done);
  step_ = 1;
  launch_step(ctx);
}

bool HaloExchange::handles(Color color) const {
  return color == colors_.done_x || color == colors_.done_y;
}

void HaloExchange::on_task(PeContext& ctx, Color color) {
  FVDF_CHECK_MSG(step_ >= 1 && step_ <= 4, "halo callback while idle");
  if (color == colors_.done_x) {
    if (x_recv_pending_ && on_face_) on_face_(ctx, x_face_);
    x_recv_pending_ = false;
    action_done(ctx, /*x_dim=*/true);
  } else if (color == colors_.done_y) {
    if (y_recv_pending_ && on_face_) on_face_(ctx, y_face_);
    y_recv_pending_ = false;
    action_done(ctx, /*x_dim=*/false);
  } else {
    throw Error("halo exchange: unexpected color");
  }
}

void HaloExchange::action_done(PeContext& ctx, bool) {
  FVDF_CHECK(pending_ > 0);
  if (--pending_ > 0) return;
  if (step_ < 4) {
    ++step_;
    launch_step(ctx);
    return;
  }
  step_ = 0;
  if (on_done_) {
    // Move out first: the continuation may start the next exchange, which
    // reassigns on_done_ — destroying it while it executes otherwise.
    DoneCallback done = std::move(on_done_);
    on_done_ = nullptr;
    done(ctx);
  }
}

void HaloExchange::launch_step(PeContext& ctx) {
  const i64 x = ctx.coord().x;
  const i64 y = ctx.coord().y;
  const i64 width = ctx.fabric_width();
  const i64 height = ctx.fabric_height();
  const bool odd_x = (x % 2) != 0;
  const bool odd_y = (y % 2) != 0;

  pending_ = 2;
  x_recv_pending_ = false;
  y_recv_pending_ = false;

  // Sends always go out (edge sends drop off-fabric but their trailing
  // control still advances the local router). Receives whose partner PE
  // does not exist are skipped: the router is advanced locally (Listing 1's
  // fabric_control path) and the completion fires immediately.
  auto skip = [&](Color color, Color completion) {
    ctx.advance_local(color_bit(color));
    ctx.activate(completion);
  };

  // --- X action ---
  switch (step_) {
  case 1:
    if (odd_x) {
      ctx.send(colors_.c1, column_, color_bit(colors_.c1), colors_.done_x);
      words_sent_ += column_.length;
    } else if (x > 0) {
      x_recv_pending_ = true;
      x_face_ = Dir::West;
      ctx.recv(colors_.c1, halo_[0], colors_.done_x);
    } else {
      skip(colors_.c1, colors_.done_x);
    }
    break;
  case 2:
    if (!odd_x) {
      ctx.send(colors_.c2, column_, color_bit(colors_.c2), colors_.done_x);
      words_sent_ += column_.length;
    } else { // odd x >= 1 always has a west neighbor (which is even)
      x_recv_pending_ = true;
      x_face_ = Dir::West;
      ctx.recv(colors_.c2, halo_[0], colors_.done_x);
    }
    break;
  case 3:
    if (odd_x) {
      ctx.send(colors_.c1, column_, color_bit(colors_.c1), colors_.done_x);
      words_sent_ += column_.length;
    } else if (x < width - 1) {
      x_recv_pending_ = true;
      x_face_ = Dir::East;
      ctx.recv(colors_.c1, halo_[1], colors_.done_x);
    } else {
      skip(colors_.c1, colors_.done_x);
    }
    break;
  case 4:
    if (!odd_x) {
      ctx.send(colors_.c2, column_, color_bit(colors_.c2), colors_.done_x);
      words_sent_ += column_.length;
    } else if (x < width - 1) {
      x_recv_pending_ = true;
      x_face_ = Dir::East;
      ctx.recv(colors_.c2, halo_[1], colors_.done_x);
    } else {
      skip(colors_.c2, colors_.done_x);
    }
    break;
  default: throw Error("invalid halo step");
  }

  // --- Y action (mirror: north = y-1; odd-y drives C3, even-y drives C4;
  // receives land the *south* neighbor's data in steps 1-2, north in 3-4) ---
  switch (step_) {
  case 1:
    if (odd_y) {
      ctx.send(colors_.c3, column_, color_bit(colors_.c3), colors_.done_y);
      words_sent_ += column_.length;
    } else if (y < height - 1) {
      y_recv_pending_ = true;
      y_face_ = Dir::South;
      ctx.recv(colors_.c3, halo_[2], colors_.done_y);
    } else {
      skip(colors_.c3, colors_.done_y);
    }
    break;
  case 2:
    if (!odd_y) {
      ctx.send(colors_.c4, column_, color_bit(colors_.c4), colors_.done_y);
      words_sent_ += column_.length;
    } else if (y < height - 1) {
      y_recv_pending_ = true;
      y_face_ = Dir::South;
      ctx.recv(colors_.c4, halo_[2], colors_.done_y);
    } else {
      skip(colors_.c4, colors_.done_y);
    }
    break;
  case 3:
    if (odd_y) {
      ctx.send(colors_.c3, column_, color_bit(colors_.c3), colors_.done_y);
      words_sent_ += column_.length;
    } else if (y > 0) {
      y_recv_pending_ = true;
      y_face_ = Dir::North;
      ctx.recv(colors_.c3, halo_[3], colors_.done_y);
    } else {
      skip(colors_.c3, colors_.done_y);
    }
    break;
  case 4:
    if (!odd_y) {
      ctx.send(colors_.c4, column_, color_bit(colors_.c4), colors_.done_y);
      words_sent_ += column_.length;
    } else if (y > 0) {
      y_recv_pending_ = true;
      y_face_ = Dir::North;
      ctx.recv(colors_.c4, halo_[3], colors_.done_y);
    } else {
      skip(colors_.c4, colors_.done_y);
    }
    break;
  default: throw Error("invalid halo step");
  }
}

} // namespace fvdf::csl
