#include "csl/lowering.hpp"

#include "telemetry/phase.hpp"

namespace fvdf::csl {

using wse::color_bit;
using wse::kInvalidColor;
namespace bc = wse::bc;

namespace {
constexpr u8 kPhaseHalo = static_cast<u8>(telemetry::Phase::Halo);
constexpr u8 kPhaseAllReduce = static_cast<u8>(telemetry::Phase::AllReduce);
} // namespace

// ---------------------------------------------------------------------------
// HaloEmitter
// ---------------------------------------------------------------------------

HaloEmitter::HaloEmitter(bc::Builder& b, wse::PeCoord coord, i64 width,
                         i64 height, Spec spec)
    : b_(b), coord_(coord), width_(width), height_(height),
      spec_(std::move(spec)) {
  column_ = b_.dsd(spec_.column);
  west_ = b_.dsd(spec_.west);
  east_ = b_.dsd(spec_.east);
  south_ = b_.dsd(spec_.south);
  north_ = b_.dsd(spec_.north);
  for (int i = 0; i < 4; ++i) {
    done_x_[i] = b_.make_label();
    done_y_[i] = b_.make_label();
    next_[i] = b_.make_label();
  }
}

void HaloEmitter::emit_start() {
  b_.phase(kPhaseHalo);
  emit_launch(1);
}

void HaloEmitter::emit_launch(int step) {
  // Rebind the done handlers to this step's blocks (the lowered
  // equivalent of step_), reset the two-action join, then issue the X
  // and Y actions in the legacy order.
  b_.seth(spec_.colors.done_x, done_x_[step - 1]);
  b_.seth(spec_.colors.done_y, done_y_[step - 1]);
  b_.setu(spec_.pending_ureg, 2);
  emit_x_action(step);
  emit_y_action(step);
}

void HaloEmitter::emit_x_action(int step) {
  const auto& c = spec_.colors;
  const bool odd_x = (coord_.x % 2) != 0;
  const auto send = [&](Color color) {
    b_.send(color, column_, color_bit(color), c.done_x);
  };
  const auto skip = [&](Color color) {
    b_.advl(color_bit(color));
    b_.act(c.done_x);
  };
  switch (step) {
  case 1:
    if (odd_x) {
      send(c.c1);
    } else if (coord_.x > 0) {
      b_.recv(c.c1, west_, c.done_x);
      x_recv_[0] = true;
    } else {
      skip(c.c1);
    }
    break;
  case 2:
    if (!odd_x) {
      send(c.c2);
    } else { // odd x >= 1 always has a west neighbor
      b_.recv(c.c2, west_, c.done_x);
      x_recv_[1] = true;
    }
    break;
  case 3:
    if (odd_x) {
      send(c.c1);
    } else if (coord_.x < width_ - 1) {
      b_.recv(c.c1, east_, c.done_x);
      x_recv_[2] = true;
    } else {
      skip(c.c1);
    }
    break;
  case 4:
    if (!odd_x) {
      send(c.c2);
    } else if (coord_.x < width_ - 1) {
      b_.recv(c.c2, east_, c.done_x);
      x_recv_[3] = true;
    } else {
      skip(c.c2);
    }
    break;
  }
}

void HaloEmitter::emit_y_action(int step) {
  const auto& c = spec_.colors;
  const bool odd_y = (coord_.y % 2) != 0;
  const auto send = [&](Color color) {
    b_.send(color, column_, color_bit(color), c.done_y);
  };
  const auto skip = [&](Color color) {
    b_.advl(color_bit(color));
    b_.act(c.done_y);
  };
  switch (step) {
  case 1:
    if (odd_y) {
      send(c.c3);
    } else if (coord_.y < height_ - 1) {
      b_.recv(c.c3, south_, c.done_y);
      y_recv_[0] = true;
    } else {
      skip(c.c3);
    }
    break;
  case 2:
    if (!odd_y) {
      send(c.c4);
    } else if (coord_.y < height_ - 1) {
      b_.recv(c.c4, south_, c.done_y);
      y_recv_[1] = true;
    } else {
      skip(c.c4);
    }
    break;
  case 3:
    if (odd_y) {
      send(c.c3);
    } else if (coord_.y > 0) {
      b_.recv(c.c3, north_, c.done_y);
      y_recv_[2] = true;
    } else {
      skip(c.c3);
    }
    break;
  case 4:
    if (!odd_y) {
      send(c.c4);
    } else if (coord_.y > 0) {
      b_.recv(c.c4, north_, c.done_y);
      y_recv_[3] = true;
    } else {
      skip(c.c4);
    }
    break;
  }
}

void HaloEmitter::emit_handlers() {
  // One (done_x, done_y, next) block triple per step. The done blocks run
  // the face work if this step's action was a receive, then join through
  // DECRET; the next block launches the following step (emitting its
  // actions records the recv flags the following handler blocks read, so
  // the emission order below — handlers for step s, then launch of s+1 —
  // is load-bearing).
  for (int step = 1; step <= 4; ++step) {
    const int i = step - 1;
    b_.bind(done_x_[i]);
    if (x_recv_[i] && spec_.face) {
      spec_.face(b_, step <= 2 ? wse::Dir::West : wse::Dir::East);
    }
    b_.decret(spec_.pending_ureg);
    b_.jmp(next_[i]);

    b_.bind(done_y_[i]);
    if (y_recv_[i] && spec_.face) {
      spec_.face(b_, step <= 2 ? wse::Dir::South : wse::Dir::North);
    }
    b_.decret(spec_.pending_ureg);
    b_.jmp(next_[i]);

    b_.bind(next_[i]);
    if (step < 4) {
      emit_launch(step + 1);
      b_.ret();
    } else {
      b_.jind(spec_.cont_reg);
    }
  }
}

// ---------------------------------------------------------------------------
// ReduceEmitter
// ---------------------------------------------------------------------------

ReduceEmitter::ReduceEmitter(bc::Builder& b, wse::PeCoord coord, i64 width,
                             i64 height, Spec spec)
    : b_(b), coord_(coord), width_(width), height_(height), spec_(spec) {
  value_dsd_ = b_.dsd(wse::Dsd{spec_.slot_value, 1, 1});
  in_dsd_ = b_.dsd(wse::Dsd{spec_.slot_in, 1, 1});
  start_ = b_.make_label();
  finish_ = b_.make_label();
  h_row_ = b_.make_label();
  h_col_ = b_.make_label();
  h_bcol_ = b_.make_label();
  h_brow_ = b_.make_label();
}

void ReduceEmitter::emit_handler_bindings() {
  const auto& c = spec_.colors;
  const bool right = coord_.x == width_ - 1;
  if (coord_.x > 0) b_.seth(c.row_done, h_row_);
  if (right && coord_.y > 0) b_.seth(c.col_done, h_col_);
  if (right && coord_.y != height_ - 1) b_.seth(c.bcast_col_done, h_bcol_);
  if (coord_.x < width_ - 1) b_.seth(c.bcast_row_done, h_brow_);
}

void ReduceEmitter::emit_row_phase_done_tail() {
  // Row sum is in f1; this coordinate is on the right-most column. y == 0
  // kicks off the column chain (or short-circuits to the broadcast on a
  // 1-row fabric); y > 0 just waits for col_done, keeping f1 live.
  const auto& c = spec_.colors;
  if (coord_.y != 0) return;
  if (height_ > 1) {
    b_.stos(1, spec_.slot_value);
    b_.send(c.col_a, value_dsd_); // y == 0 is even parity
    return;
  }
  emit_column_phase_done(1);
}

void ReduceEmitter::emit_column_phase_done(u8 total_reg) {
  const auto& c = spec_.colors;
  b_.stos(total_reg, spec_.slot_value);
  if (height_ > 1) b_.send(c.bcast_col, value_dsd_);
  if (width_ > 1) b_.send(c.bcast_row, value_dsd_);
  b_.jmp(finish_);
}

void ReduceEmitter::emit_blocks() {
  const auto& c = spec_.colors;
  const bool odd_x = (coord_.x % 2) != 0;
  const bool odd_y = (coord_.y % 2) != 0;
  const bool right = coord_.x == width_ - 1;
  const bool bottom = coord_.y == height_ - 1;

  // --- start: contribution in f0 ---
  b_.bind(start_);
  b_.phase(kPhaseAllReduce);
  b_.stos(0, spec_.slot_value);
  if (coord_.x > 0) {
    b_.recv(odd_x ? c.row_a : c.row_b, in_dsd_, c.row_done);
  }
  if (right && coord_.y > 0) {
    b_.recv(odd_y ? c.col_a : c.col_b, in_dsd_, c.col_done);
  }
  if (right && !bottom) {
    b_.recv(c.bcast_col, value_dsd_, c.bcast_col_done);
  }
  if (!right) {
    b_.recv(c.bcast_row, value_dsd_, c.bcast_row_done);
  }
  if (coord_.x == 0) {
    if (width_ > 1) {
      b_.send(odd_x ? c.row_b : c.row_a, value_dsd_);
      b_.ret();
    } else {
      b_.movr(1, 0);
      emit_row_phase_done_tail();
      if (coord_.y != 0 || height_ > 1) b_.ret();
    }
  } else {
    b_.ret();
  }

  // --- row_done: western partial landed in slot_in ---
  if (coord_.x > 0) {
    b_.bind(h_row_);
    b_.lods(2, spec_.slot_in);
    b_.lods(3, spec_.slot_value);
    b_.sadd(2, 2, 3);
    b_.stos(2, spec_.slot_value);
    if (!right) {
      b_.send(odd_x ? c.row_b : c.row_a, value_dsd_);
      b_.ret();
    } else {
      b_.movr(1, 2);
      emit_row_phase_done_tail();
      if (coord_.y != 0 || height_ > 1) b_.ret();
    }
  }

  // --- col_done: northern column partial landed (right column only) ---
  if (right && coord_.y > 0) {
    b_.bind(h_col_);
    b_.lods(2, spec_.slot_in);
    b_.sadd(2, 2, 1);
    b_.stos(2, spec_.slot_value);
    if (!bottom) {
      b_.send(odd_y ? c.col_b : c.col_a, value_dsd_);
      b_.ret();
    } else {
      emit_column_phase_done(2);
    }
  }

  // --- bcast_col_done: fabric total landed; relay west then finish ---
  if (right && !bottom) {
    b_.bind(h_bcol_);
    if (width_ > 1) b_.send(c.bcast_row, value_dsd_);
    b_.jmp(finish_);
  }

  // --- bcast_row_done / shared finish: total to f0, resume caller ---
  if (!right) b_.bind(h_brow_);
  b_.bind(finish_);
  b_.lods(0, spec_.slot_value);
  b_.jind(spec_.cont_reg);
}

} // namespace fvdf::csl
