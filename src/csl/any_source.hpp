#pragma once
// Any-source whole-fabric broadcast — the data-movement primitive named in
// the paper's future work: "we also need to develop data broadcasting
// strategies to support data movement from any cell in the
// arbitrary-shaped mesh."
//
// Two-phase flood from an arbitrary source PE (sx, sy):
//  1. the source transmits its block east AND west along its own row in a
//     single send (the router fans one injection into both links); every
//     row PE taps the block and forwards it outward;
//  2. every PE of the source row (including the source) retransmits the
//     block north and south along its column; column PEs tap and forward.
// Every PE receives the block exactly once; the hop count from the source
// to PE (x, y) is the Manhattan distance — the fabric-optimal broadcast
// tree rooted anywhere.

#include <functional>

#include "csl/colors.hpp"
#include "wse/program.hpp"

namespace fvdf::csl {

using wse::Dsd;
using wse::PeContext;
using wse::PeCoord;

class AnySourceBroadcast {
public:
  struct Colors {
    Color row = kBcastAnyRow;
    Color col = kBcastAnyCol;
    Color done = kBcastAnyDone; // local
  };

  using DoneCallback = std::function<void(PeContext&)>;

  AnySourceBroadcast();
  explicit AnySourceBroadcast(Colors colors);

  /// Installs routes for a broadcast rooted at `source`. Call in on_start;
  /// the root is a layout-time parameter, exactly like a CSL layout block.
  void configure(PeContext& ctx, PeCoord source);

  /// Starts one broadcast round. On the source PE, `block` is the payload
  /// to publish; on every other PE it is the destination buffer. `on_done`
  /// fires once the block is locally available (and, on relay PEs, after
  /// the column retransmission has been issued).
  void start(PeContext& ctx, Dsd block, DoneCallback on_done);

  bool handles(Color color) const { return color == colors_.done; }
  void on_task(PeContext& ctx, Color color);

  /// Static communication declaration for the fabric verifier. Valid only
  /// after configure() has fixed the broadcast root.
  wse::ProgramManifest manifest(wse::PeCoord coord, i64 width, i64 height) const;

private:
  bool is_source(const PeContext& ctx) const;
  bool on_source_row(const PeContext& ctx) const;

  Colors colors_;
  PeCoord source_{};
  Dsd block_{};
  DoneCallback on_done_;
  bool active_ = false;
};

} // namespace fvdf::csl
