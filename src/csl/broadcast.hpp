#pragma once
// The eastward localized broadcast of Figure 4 / Listing 1: every PE in a
// row exchanges data with its neighbors over a *single* color by
// alternating two router switch positions with ring_mode:
//
//   sending position:   { rx = RAMP, tx = EAST }   (broadcast root)
//   receiving position: { rx = WEST, tx = RAMP }
//
// Initially even-x PEs are Sending and odd-x PEs Receiving. A sender
// transmits its data followed by a control wavelet that advances the
// color's switch position in its own router and its neighbor's — the
// Sending PE becomes Receiving and vice versa (Fig. 4b). The new senders
// transmit in step 2, and ring_mode returns every router to its initial
// position. After two steps each PE has sent its block east and received
// its western neighbor's block.
//
// This component exercises the switch-position machinery in isolation
// (tests, fabric_explorer example); the solver's 4-step halo exchange
// (csl/halo.hpp) generalizes the same mechanism to four directions.

#include <functional>

#include "csl/colors.hpp"
#include "wse/program.hpp"

namespace fvdf::csl {

using wse::Dsd;
using wse::PeContext;

class EastwardExchange {
public:
  struct Colors {
    Color data = kExchangeX;
    Color done = kExchangeDone; // local
  };

  using DoneCallback = std::function<void(PeContext&)>;

  EastwardExchange();
  explicit EastwardExchange(Colors colors);

  /// Installs the two-position ring route (Listing 1). Call from on_start.
  void configure(PeContext& ctx);

  /// Starts the two-step exchange: `mine` is sent east; `from_west`
  /// receives the western neighbor's data (untouched on the x=0 PE, which
  /// has no western neighbor).
  void start(PeContext& ctx, Dsd mine, Dsd from_west, DoneCallback on_done);

  bool handles(Color color) const { return color == colors_.done; }
  void on_task(PeContext& ctx, Color color);

  /// Static communication declaration for the fabric verifier.
  wse::ProgramManifest manifest(wse::PeCoord coord, i64 width, i64 height) const;

private:
  Colors colors_;
  int phase_ = 0; // 0 idle; 1 first action outstanding; 2 second action
  Dsd mine_{};
  Dsd from_west_{};
  DoneCallback on_done_;
};

} // namespace fvdf::csl
