#include "csl/any_source.hpp"

#include "common/error.hpp"
#include "wse/router.hpp"

namespace fvdf::csl {

using wse::ColorConfig;
using wse::Dir;
using wse::DirMask;
using wse::SwitchPosition;

namespace {
ColorConfig route(DirMask rx, DirMask tx) {
  ColorConfig config;
  config.positions = {SwitchPosition{rx, tx}};
  return config;
}
} // namespace

AnySourceBroadcast::AnySourceBroadcast() : AnySourceBroadcast(Colors{}) {}
AnySourceBroadcast::AnySourceBroadcast(Colors colors) : colors_(colors) {}

bool AnySourceBroadcast::is_source(const PeContext& ctx) const {
  return ctx.coord() == source_;
}

bool AnySourceBroadcast::on_source_row(const PeContext& ctx) const {
  return ctx.coord().y == source_.y;
}

void AnySourceBroadcast::configure(PeContext& ctx, PeCoord source) {
  FVDF_CHECK(source.x >= 0 && source.x < ctx.fabric_width());
  FVDF_CHECK(source.y >= 0 && source.y < ctx.fabric_height());
  source_ = source;
  const i64 x = ctx.coord().x;
  const i64 y = ctx.coord().y;

  // Edge-clip the flood fan-outs: a row/column terminus forwards outward
  // into nothing, which becomes "tap the ramp only" instead of a transmit
  // off the fabric (see HaloExchange::configure).
  auto install = [&](Color color, ColorConfig config) {
    for (auto& pos : config.positions)
      pos.tx = wse::clip_to_fabric(pos.tx, ctx.coord(), ctx.fabric_width(),
                                   ctx.fabric_height());
    ctx.configure_router(color, std::move(config));
  };

  // Phase 1 — row flood (only the source row carries this color).
  if (y == source.y) {
    if (x == source.x) {
      // One injection fans into both row directions.
      install(colors_.row, route(DirMask::of(Dir::Ramp), DirMask::of(Dir::East, Dir::West)));
    } else if (x < source.x) {
      install(colors_.row, route(DirMask::of(Dir::East), DirMask::of(Dir::Ramp, Dir::West)));
    } else {
      install(colors_.row, route(DirMask::of(Dir::West), DirMask::of(Dir::Ramp, Dir::East)));
    }
  }

  // Phase 2 — column fan-out from every source-row PE.
  if (y == source.y) {
    install(colors_.col, route(DirMask::of(Dir::Ramp), DirMask::of(Dir::North, Dir::South)));
  } else if (y < source.y) {
    // Data travels north: arrives from the South link.
    install(colors_.col, route(DirMask::of(Dir::South), DirMask::of(Dir::Ramp, Dir::North)));
  } else {
    install(colors_.col, route(DirMask::of(Dir::North), DirMask::of(Dir::Ramp, Dir::South)));
  }
}

wse::ProgramManifest AnySourceBroadcast::manifest(wse::PeCoord coord, i64 width,
                                                  i64 height) const {
  using wse::color_set_bit;
  wse::ProgramManifest m;
  if (coord == source_) {
    if (width > 1) m.injects |= color_set_bit(colors_.row);
    if (height > 1) m.injects |= color_set_bit(colors_.col);
  } else if (coord.y == source_.y) {
    // Row relay: taps the row flood, republishes into its column.
    m.handles |= color_set_bit(colors_.row);
    if (height > 1) m.injects |= color_set_bit(colors_.col);
  } else {
    m.handles |= color_set_bit(colors_.col);
  }
  m.handles |= color_set_bit(colors_.done);
  m.activates |= color_set_bit(colors_.done);
  return m;
}

void AnySourceBroadcast::start(PeContext& ctx, Dsd block, DoneCallback on_done) {
  FVDF_CHECK_MSG(!active_, "any-source broadcast already running");
  FVDF_CHECK(block.length > 0);
  active_ = true;
  block_ = block;
  on_done_ = std::move(on_done);

  if (is_source(ctx)) {
    // Publish along the row, then immediately down/up the own column; the
    // local copy is already in place.
    if (ctx.fabric_width() > 1) ctx.send(colors_.row, block_);
    if (ctx.fabric_height() > 1) ctx.send(colors_.col, block_);
    ctx.activate(colors_.done);
    return;
  }
  // Everyone else waits for the block on their phase's color.
  ctx.recv(on_source_row(ctx) ? colors_.row : colors_.col, block_, colors_.done);
}

void AnySourceBroadcast::on_task(PeContext& ctx, Color color) {
  FVDF_CHECK(color == colors_.done);
  FVDF_CHECK_MSG(active_, "broadcast callback while idle");
  // Source-row relays republish into their columns before finishing.
  if (!is_source(ctx) && on_source_row(ctx) && ctx.fabric_height() > 1)
    ctx.send(colors_.col, block_);
  active_ = false;
  if (on_done_) {
    DoneCallback done = std::move(on_done_);
    on_done_ = nullptr;
    done(ctx);
  }
}

} // namespace fvdf::csl
