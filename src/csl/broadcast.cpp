#include "csl/broadcast.hpp"

#include "common/error.hpp"
#include "wse/router.hpp"

namespace fvdf::csl {

using wse::color_bit;
using wse::ColorConfig;
using wse::Dir;
using wse::DirMask;
using wse::SwitchPosition;

namespace {
const SwitchPosition kSending{DirMask::of(Dir::Ramp), DirMask::of(Dir::East)};
const SwitchPosition kReceiving{DirMask::of(Dir::West), DirMask::of(Dir::Ramp)};
} // namespace

EastwardExchange::EastwardExchange() : EastwardExchange(Colors{}) {}
EastwardExchange::EastwardExchange(Colors colors) : colors_(colors) {}

void EastwardExchange::configure(PeContext& ctx) {
  // Listing 1's two-position ring; even PEs start in the Sending position,
  // odd PEs in the Receiving one (expressed by rotating the position list,
  // since a freshly configured color starts at position 0).
  const bool even_x = (ctx.coord().x % 2) == 0;
  ColorConfig config;
  config.positions = even_x ? std::vector<SwitchPosition>{kSending, kReceiving}
                            : std::vector<SwitchPosition>{kReceiving, kSending};
  config.ring_mode = true;
  // The east-most PE's Sending position has no partner: edge-clip it to a
  // null route (the wavelet is deliberately discarded; see SwitchPosition).
  for (auto& pos : config.positions)
    pos.tx = wse::clip_to_fabric(pos.tx, ctx.coord(), ctx.fabric_width(),
                                 ctx.fabric_height());
  ctx.configure_router(colors_.data, config);
}

wse::ProgramManifest EastwardExchange::manifest(wse::PeCoord coord, i64 /*width*/,
                                                i64 /*height*/) const {
  wse::ProgramManifest m;
  // Every PE takes the Sending role in one of the two steps; PEs with a
  // western neighbor take the Receiving role in the other. The trailing
  // control wavelet and the x=0 PE's local restore both advance the color.
  m.injects |= wse::color_set_bit(colors_.data);
  if (coord.x > 0) m.handles |= wse::color_set_bit(colors_.data);
  m.advances |= color_bit(colors_.data);
  m.handles |= wse::color_set_bit(colors_.done);
  m.activates |= wse::color_set_bit(colors_.done);
  return m;
}

void EastwardExchange::start(PeContext& ctx, Dsd mine, Dsd from_west,
                             DoneCallback on_done) {
  FVDF_CHECK_MSG(phase_ == 0, "eastward exchange already running");
  FVDF_CHECK(mine.length == from_west.length);
  mine_ = mine;
  from_west_ = from_west;
  on_done_ = std::move(on_done);
  phase_ = 1;
  const bool even_x = (ctx.coord().x % 2) == 0;
  if (even_x) {
    // Step 1 sender: data plus the switch command that flips this router
    // and the receiver's (Fig. 4b, circled configurations).
    ctx.send(colors_.data, mine_, color_bit(colors_.data), colors_.done);
  } else {
    ctx.recv(colors_.data, from_west_, colors_.done);
  }
}

void EastwardExchange::on_task(PeContext& ctx, Color color) {
  FVDF_CHECK(color == colors_.done);
  const bool even_x = (ctx.coord().x % 2) == 0;
  if (phase_ == 1) {
    phase_ = 2;
    if (even_x) {
      // Now in the Receiving position. The x=0 PE has no western neighbor:
      // it restores its switch position locally and finishes.
      if (ctx.coord().x > 0) {
        ctx.recv(colors_.data, from_west_, colors_.done);
      } else {
        ctx.advance_local(color_bit(colors_.data));
        ctx.activate(colors_.done);
      }
    } else {
      // Received; now the Sending root for step 2.
      ctx.send(colors_.data, mine_, color_bit(colors_.data), colors_.done);
    }
    return;
  }
  FVDF_CHECK(phase_ == 2);
  phase_ = 0;
  if (on_done_) {
    // Move out first: the continuation may restart the exchange.
    DoneCallback done = std::move(on_done_);
    on_done_ = nullptr;
    done(ctx);
  }
}

} // namespace fvdf::csl
