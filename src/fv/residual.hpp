#pragma once
// The FV residual of Eq. (3):
//   r_K = sum_{L in adj(K)} f_KL            for K not in T^D
//   r_K = p_K - p_K^D                        for Dirichlet cells,
// with the TPFA interfacial flux of Eq. (4):
//   f_KL = Upsilon_KL * lambda_KL * (p_L - p_K),
// lambda_KL being the arithmetic average of the cell mobilities.

#include <vector>

#include "common/types.hpp"
#include "mesh/bc.hpp"
#include "mesh/cartesian.hpp"
#include "mesh/fields.hpp"
#include "mesh/transmissibility.hpp"

namespace fvdf {

/// Computes the residual vector for pressure field `p` (size = cell count).
std::vector<f64> compute_residual(const CartesianMesh3D& mesh,
                                  const FaceTransmissibility& trans,
                                  const CellField<f64>& mobility,
                                  const DirichletSet& bc,
                                  const std::vector<f64>& p);

/// Residual of a FlowProblem, including its rate-well sources:
/// r_K = sum_L f_KL + q_K on interior rows (mass balance with injection).
class FlowProblem;
std::vector<f64> compute_residual(const FlowProblem& problem,
                                  const std::vector<f64>& p);

/// Single interfacial flux f_KL (Eq. 4) for cell c across `face`; 0 at
/// domain boundaries. Exposed for unit tests and examples.
f64 interfacial_flux(const CartesianMesh3D& mesh, const FaceTransmissibility& trans,
                     const CellField<f64>& mobility, const std::vector<f64>& p,
                     const CellCoord& c, Face face);

} // namespace fvdf
