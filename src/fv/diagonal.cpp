#include "fv/diagonal.hpp"

#include "common/error.hpp"

namespace fvdf {

template <typename Real>
std::vector<Real> jacobian_diagonal(const DiscreteSystem<Real>& sys) {
  const i64 nx = sys.nx, ny = sys.ny, nz = sys.nz;
  const i64 plane = nx * ny;
  std::vector<Real> diag(static_cast<std::size_t>(sys.cell_count()), Real(0));
  const Real half = Real(0.5);

  for (CellIndex k = 0; k < sys.cell_count(); ++k) {
    if (sys.dirichlet[static_cast<std::size_t>(k)]) {
      diag[static_cast<std::size_t>(k)] = Real(1);
      continue;
    }
    const i64 cx = k % nx;
    const i64 cy = (k / nx) % ny;
    const i64 cz = k / plane;
    const Real lk = sys.lambda[static_cast<std::size_t>(k)];
    Real acc = Real(0);
    auto face = [&](CellIndex l, Real ups) {
      acc += ups * half * (lk + sys.lambda[static_cast<std::size_t>(l)]);
    };
    if (cx > 0) face(k - 1, sys.tx[static_cast<std::size_t>((cz * ny + cy) * (nx - 1) + cx - 1)]);
    if (cx < nx - 1) face(k + 1, sys.tx[static_cast<std::size_t>((cz * ny + cy) * (nx - 1) + cx)]);
    if (cy > 0) face(k - nx, sys.ty[static_cast<std::size_t>((cz * (ny - 1) + cy - 1) * nx + cx)]);
    if (cy < ny - 1) face(k + nx, sys.ty[static_cast<std::size_t>((cz * (ny - 1) + cy) * nx + cx)]);
    if (cz > 0) face(k - plane, sys.tz[static_cast<std::size_t>(((cz - 1) * ny + cy) * nx + cx)]);
    if (cz < nz - 1) face(k + plane, sys.tz[static_cast<std::size_t>((cz * ny + cy) * nx + cx)]);
    diag[static_cast<std::size_t>(k)] = acc;
  }
  return diag;
}

template <typename Real>
std::vector<Real> jacobi_inverse_diagonal(const DiscreteSystem<Real>& sys) {
  std::vector<Real> diag = jacobian_diagonal(sys);
  for (std::size_t i = 0; i < diag.size(); ++i) {
    FVDF_CHECK_MSG(diag[i] > Real(0),
                   "non-positive Jacobian diagonal at cell " << i
                       << " (isolated cell with no active faces?)");
    diag[i] = Real(1) / diag[i];
  }
  return diag;
}

template std::vector<f32> jacobian_diagonal<f32>(const DiscreteSystem<f32>&);
template std::vector<f64> jacobian_diagonal<f64>(const DiscreteSystem<f64>&);
template std::vector<f32> jacobi_inverse_diagonal<f32>(const DiscreteSystem<f32>&);
template std::vector<f64> jacobi_inverse_diagonal<f64>(const DiscreteSystem<f64>&);

} // namespace fvdf
