#include "fv/residual.hpp"

#include "common/error.hpp"
#include "fv/problem.hpp"

namespace fvdf {

f64 interfacial_flux(const CartesianMesh3D& mesh, const FaceTransmissibility& trans,
                     const CellField<f64>& mobility, const std::vector<f64>& p,
                     const CellCoord& c, Face face) {
  const auto nb = mesh.neighbor(c, face);
  if (!nb) return 0.0;
  const f64 ups = trans.at(mesh, c, face);
  const f64 lambda =
      0.5 * (mobility.at(c.x, c.y, c.z) + mobility.at(nb->x, nb->y, nb->z));
  const CellIndex k = mesh.index(c);
  const CellIndex l = mesh.index(*nb);
  return ups * lambda *
         (p[static_cast<std::size_t>(l)] - p[static_cast<std::size_t>(k)]);
}

std::vector<f64> compute_residual(const CartesianMesh3D& mesh,
                                  const FaceTransmissibility& trans,
                                  const CellField<f64>& mobility,
                                  const DirichletSet& bc,
                                  const std::vector<f64>& p) {
  FVDF_CHECK(p.size() == static_cast<std::size_t>(mesh.cell_count()));
  std::vector<f64> r(p.size(), 0.0);
  for (i64 z = 0; z < mesh.nz(); ++z)
    for (i64 y = 0; y < mesh.ny(); ++y)
      for (i64 x = 0; x < mesh.nx(); ++x) {
        const CellCoord c{x, y, z};
        const CellIndex k = mesh.index(c);
        if (bc.contains(k)) {
          r[static_cast<std::size_t>(k)] = p[static_cast<std::size_t>(k)] - bc.value(k);
          continue;
        }
        f64 sum = 0.0;
        for (Face face : kAllFaces)
          sum += interfacial_flux(mesh, trans, mobility, p, c, face);
        r[static_cast<std::size_t>(k)] = sum;
      }
  return r;
}

std::vector<f64> compute_residual(const FlowProblem& problem,
                                  const std::vector<f64>& p) {
  std::vector<f64> r = compute_residual(problem.mesh(), problem.transmissibility(),
                                        problem.mobility(), problem.bc(), p);
  if (problem.has_sources()) {
    const auto& source = problem.sources();
    for (std::size_t i = 0; i < r.size(); ++i)
      if (!problem.bc().contains(static_cast<CellIndex>(i))) r[i] += source[i];
  }
  return r;
}

} // namespace fvdf
