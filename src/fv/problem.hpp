#pragma once
// FlowProblem bundles everything that defines one single-phase
// incompressible flow instance (Sec. II-A): mesh, permeability, constant
// fluid mobility, Dirichlet set. `discretize<Real>()` lowers it to the
// flat, device-layout arrays consumed by all three implementations (host
// oracle, simulated-GPU kernel, dataflow PE programs) so they provably
// solve the same discrete system.

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "mesh/bc.hpp"
#include "mesh/cartesian.hpp"
#include "mesh/fields.hpp"
#include "mesh/transmissibility.hpp"

namespace fvdf {

/// Flat arrays in the paper's memory layout (X innermost, Z outermost).
template <typename Real> struct DiscreteSystem {
  i64 nx = 0, ny = 0, nz = 0;

  std::vector<Real> lambda;          // cell mobility, size n
  std::vector<Real> tx, ty, tz;      // face transmissibilities per axis
  std::vector<u8> dirichlet;         // 1 where the cell is in T^D, size n
  std::vector<Real> dirichlet_value; // p^D where pinned, 0 elsewhere, size n
  std::vector<Real> source;          // volumetric rate q per cell (may be empty)

  CellIndex cell_count() const { return nx * ny * nz; }

  /// Bytes of problem data (used by the matrix-free-vs-assembled ablation).
  u64 data_bytes() const;
};

class FlowProblem {
public:
  /// Takes ownership of the field data. Transmissibilities are computed
  /// here once (they are part of the *problem*, not of any implementation).
  FlowProblem(CartesianMesh3D mesh, CellField<f64> permeability, f64 viscosity,
              DirichletSet bc);

  /// Variant with a per-cell mobility field (lambda = k_r / mu), the form
  /// multiphase outer loops need: total mobility varies with saturation.
  FlowProblem(CartesianMesh3D mesh, CellField<f64> permeability,
              CellField<f64> mobility, DirichletSet bc);

  const CartesianMesh3D& mesh() const { return mesh_; }
  const CellField<f64>& permeability() const { return permeability_; }
  const CellField<f64>& mobility() const { return mobility_; }
  const FaceTransmissibility& transmissibility() const { return trans_; }
  const DirichletSet& bc() const { return bc_; }

  /// Rate-controlled wells: adds a volumetric source `rate` (positive =
  /// injection) at `cell`. Sources enter the residual only (the Jacobian
  /// is unchanged), so every solver path supports them. The cell must not
  /// be Dirichlet. The system needs at least one Dirichlet cell to stay
  /// non-singular; with none, rates must balance and pressure is defined
  /// up to a constant — the constructor does not arbitrate that, solvers
  /// will report loss of definiteness.
  void add_source(CellIndex cell, f64 rate);
  void add_source(const CellCoord& c, f64 rate) { add_source(mesh_.index(c), rate); }
  const std::vector<f64>& sources() const { return source_; }
  bool has_sources() const { return has_sources_; }

  /// Lowers to flat arrays of the requested precision.
  template <typename Real> DiscreteSystem<Real> discretize() const;

  /// Initial pressure: Dirichlet values at pinned cells, `interior_value`
  /// elsewhere. This satisfies the BCs exactly, which makes the Dirichlet
  /// entries of the initial residual zero — the property that keeps CG on
  /// the (identity ++ SPD-interior) Jacobian consistent (see DESIGN.md).
  std::vector<f64> initial_pressure(f64 interior_value = 0.0) const;

  /// Canonical test problems.
  static FlowProblem quarter_five_spot(i64 nx, i64 ny, i64 nz, u64 seed,
                                       f64 log_sigma = 1.0);
  static FlowProblem homogeneous_column(i64 nx, i64 ny, i64 nz);

private:
  CartesianMesh3D mesh_;
  CellField<f64> permeability_;
  CellField<f64> mobility_;
  FaceTransmissibility trans_;
  DirichletSet bc_;
  std::vector<f64> source_; // per cell, zero-initialized
  bool has_sources_ = false;
};

} // namespace fvdf
