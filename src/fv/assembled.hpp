#pragma once
// Matrix-*based* baseline: the Jacobian assembled into CSR, used by the
// matrix-free-vs-assembled ablation (Sec. II-A motivates matrix-free by
// the memory and fill costs this class makes measurable).

#include <vector>

#include "common/types.hpp"
#include "fv/problem.hpp"

namespace fvdf {

/// Compressed-sparse-row Jacobian with the same SPD convention as
/// MatrixFreeOperator, assembled once at construction.
template <typename Real> class AssembledOperator {
public:
  explicit AssembledOperator(const DiscreteSystem<Real>& sys);

  CellIndex size() const { return n_; }

  /// y = Jx via standard CSR SpMV.
  void apply(const Real* x, Real* y) const;

  /// Bytes held by the CSR structure (values + column indices + row
  /// pointers) — the storage the matrix-free approach avoids.
  u64 matrix_bytes() const;

  u64 nonzeros() const { return values_.size(); }

  // Raw CSR access for tests (symmetry checks, row sums).
  const std::vector<CellIndex>& row_ptr() const { return row_ptr_; }
  const std::vector<CellIndex>& col_idx() const { return col_idx_; }
  const std::vector<Real>& values() const { return values_; }

private:
  CellIndex n_ = 0;
  std::vector<CellIndex> row_ptr_;
  std::vector<CellIndex> col_idx_;
  std::vector<Real> values_;
};

extern template class AssembledOperator<f32>;
extern template class AssembledOperator<f64>;

} // namespace fvdf
