#include "fv/problem.hpp"

#include "common/rng.hpp"

namespace fvdf {

template <typename Real> u64 DiscreteSystem<Real>::data_bytes() const {
  return sizeof(Real) * (lambda.size() + tx.size() + ty.size() + tz.size() +
                         dirichlet_value.size()) +
         sizeof(u8) * dirichlet.size();
}

FlowProblem::FlowProblem(CartesianMesh3D mesh, CellField<f64> permeability,
                         f64 viscosity, DirichletSet bc)
    : FlowProblem(mesh, std::move(permeability), constant_mobility(mesh, viscosity),
                  std::move(bc)) {}

FlowProblem::FlowProblem(CartesianMesh3D mesh, CellField<f64> permeability,
                         CellField<f64> mobility, DirichletSet bc)
    : mesh_(mesh), permeability_(std::move(permeability)),
      mobility_(std::move(mobility)),
      trans_(compute_transmissibility(mesh, permeability_)), bc_(std::move(bc)) {
  FVDF_CHECK(permeability_.size() == static_cast<std::size_t>(mesh_.cell_count()));
  FVDF_CHECK(mobility_.size() == static_cast<std::size_t>(mesh_.cell_count()));
  for (f64 m : mobility_.data()) FVDF_CHECK_MSG(m > 0, "mobility must be positive");
  source_.assign(static_cast<std::size_t>(mesh_.cell_count()), 0.0);
}

void FlowProblem::add_source(CellIndex cell, f64 rate) {
  FVDF_CHECK(cell >= 0 && cell < mesh_.cell_count());
  FVDF_CHECK_MSG(!bc_.contains(cell),
                 "cell " << cell << " is Dirichlet; a pressure-controlled well "
                            "cannot also be rate-controlled");
  source_[static_cast<std::size_t>(cell)] += rate;
  has_sources_ = true;
}

template <typename Real> DiscreteSystem<Real> FlowProblem::discretize() const {
  DiscreteSystem<Real> sys;
  sys.nx = mesh_.nx();
  sys.ny = mesh_.ny();
  sys.nz = mesh_.nz();
  const auto n = static_cast<std::size_t>(mesh_.cell_count());

  sys.lambda.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    sys.lambda[i] = static_cast<Real>(mobility_.data()[i]);

  auto narrow = [](const std::vector<f64>& src, std::vector<Real>& dst) {
    dst.resize(src.size());
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = static_cast<Real>(src[i]);
  };
  narrow(trans_.x_faces, sys.tx);
  narrow(trans_.y_faces, sys.ty);
  narrow(trans_.z_faces, sys.tz);

  sys.dirichlet.assign(n, 0);
  sys.dirichlet_value.assign(n, Real{0});
  for (const auto& [idx, value] : bc_.sorted()) {
    FVDF_CHECK(idx < mesh_.cell_count());
    sys.dirichlet[static_cast<std::size_t>(idx)] = 1;
    sys.dirichlet_value[static_cast<std::size_t>(idx)] = static_cast<Real>(value);
  }
  if (has_sources_) narrow(source_, sys.source);
  return sys;
}

std::vector<f64> FlowProblem::initial_pressure(f64 interior_value) const {
  std::vector<f64> p(static_cast<std::size_t>(mesh_.cell_count()), interior_value);
  for (const auto& [idx, value] : bc_.sorted())
    p[static_cast<std::size_t>(idx)] = value;
  return p;
}

FlowProblem FlowProblem::quarter_five_spot(i64 nx, i64 ny, i64 nz, u64 seed,
                                           f64 log_sigma) {
  CartesianMesh3D mesh(nx, ny, nz);
  Rng rng(seed);
  auto perm = perm::lognormal(mesh, rng, /*log_mean=*/0.0, log_sigma);
  auto bc = DirichletSet::injector_producer(mesh, /*injector=*/1.0, /*producer=*/0.0);
  return FlowProblem(mesh, std::move(perm), /*viscosity=*/1.0, std::move(bc));
}

FlowProblem FlowProblem::homogeneous_column(i64 nx, i64 ny, i64 nz) {
  CartesianMesh3D mesh(nx, ny, nz);
  auto perm = perm::homogeneous(mesh, 1.0);
  auto bc = DirichletSet::injector_producer(mesh, 1.0, 0.0);
  return FlowProblem(mesh, std::move(perm), 1.0, std::move(bc));
}

template struct DiscreteSystem<f32>;
template struct DiscreteSystem<f64>;
template DiscreteSystem<f32> FlowProblem::discretize<f32>() const;
template DiscreteSystem<f64> FlowProblem::discretize<f64>() const;

} // namespace fvdf
