#pragma once
// Diagonal of the (SPD-convention) Jacobian, extracted matrix-free:
//   diag_K = sum_faces Upsilon * lambda_avg     for interior cells
//   diag_K = 1                                  for Dirichlet cells.
// Used by the Jacobi preconditioner (an extension over the paper: plain CG
// is what the paper runs; PCG reuses all of its machinery and adds one
// element-wise scaling per iteration).

#include <vector>

#include "common/types.hpp"
#include "fv/problem.hpp"

namespace fvdf {

template <typename Real>
std::vector<Real> jacobian_diagonal(const DiscreteSystem<Real>& sys);

/// Element-wise inverse (1 / diag), the Jacobi preconditioner application
/// vector. Throws if any interior diagonal is non-positive.
template <typename Real>
std::vector<Real> jacobi_inverse_diagonal(const DiscreteSystem<Real>& sys);

extern template std::vector<f32> jacobian_diagonal<f32>(const DiscreteSystem<f32>&);
extern template std::vector<f64> jacobian_diagonal<f64>(const DiscreteSystem<f64>&);
extern template std::vector<f32> jacobi_inverse_diagonal<f32>(const DiscreteSystem<f32>&);
extern template std::vector<f64> jacobi_inverse_diagonal<f64>(const DiscreteSystem<f64>&);

} // namespace fvdf
