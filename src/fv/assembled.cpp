#include "fv/assembled.hpp"

#include <array>

#include "common/error.hpp"

namespace fvdf {

template <typename Real>
AssembledOperator<Real>::AssembledOperator(const DiscreteSystem<Real>& sys)
    : n_(sys.cell_count()) {
  const i64 nx = sys.nx, ny = sys.ny, nz = sys.nz;
  const i64 plane = nx * ny;
  row_ptr_.reserve(static_cast<std::size_t>(n_) + 1);
  row_ptr_.push_back(0);
  const Real half = Real(0.5);

  // Per-row scratch: (column, value) entries in ascending column order.
  for (CellIndex k = 0; k < n_; ++k) {
    if (sys.dirichlet[static_cast<std::size_t>(k)]) {
      col_idx_.push_back(k);
      values_.push_back(Real(1));
      row_ptr_.push_back(static_cast<CellIndex>(col_idx_.size()));
      continue;
    }
    const i64 cx = k % nx;
    const i64 cy = (k / nx) % ny;
    const i64 cz = k / plane;

    struct Entry {
      CellIndex col;
      Real value;
    };
    std::array<Entry, 7> entries;
    std::size_t count = 0;
    Real diag = Real(0);
    auto add = [&](CellIndex l, Real ups) {
      const Real w = ups * half *
                     (sys.lambda[static_cast<std::size_t>(k)] +
                      sys.lambda[static_cast<std::size_t>(l)]);
      entries[count++] = {l, -w};
      diag += w;
    };
    // Ascending column order: -plane, -nx, -1, (diag later), +1, +nx, +plane.
    if (cz > 0) add(k - plane, sys.tz[static_cast<std::size_t>(((cz - 1) * ny + cy) * nx + cx)]);
    if (cy > 0) add(k - nx, sys.ty[static_cast<std::size_t>((cz * (ny - 1) + (cy - 1)) * nx + cx)]);
    if (cx > 0) add(k - 1, sys.tx[static_cast<std::size_t>((cz * ny + cy) * (nx - 1) + (cx - 1))]);
    const std::size_t diag_slot = count;
    entries[count++] = {k, Real(0)}; // placeholder, filled after all faces
    if (cx < nx - 1) add(k + 1, sys.tx[static_cast<std::size_t>((cz * ny + cy) * (nx - 1) + cx)]);
    if (cy < ny - 1) add(k + nx, sys.ty[static_cast<std::size_t>((cz * (ny - 1) + cy) * nx + cx)]);
    if (cz < nz - 1) add(k + plane, sys.tz[static_cast<std::size_t>((cz * ny + cy) * nx + cx)]);
    entries[diag_slot].value = diag;

    for (std::size_t i = 0; i < count; ++i) {
      col_idx_.push_back(entries[i].col);
      values_.push_back(entries[i].value);
    }
    row_ptr_.push_back(static_cast<CellIndex>(col_idx_.size()));
  }
}

template <typename Real>
void AssembledOperator<Real>::apply(const Real* x, Real* y) const {
  for (CellIndex row = 0; row < n_; ++row) {
    Real acc = Real(0);
    for (CellIndex e = row_ptr_[static_cast<std::size_t>(row)];
         e < row_ptr_[static_cast<std::size_t>(row) + 1]; ++e) {
      acc += values_[static_cast<std::size_t>(e)] *
             x[col_idx_[static_cast<std::size_t>(e)]];
    }
    y[row] = acc;
  }
}

template <typename Real> u64 AssembledOperator<Real>::matrix_bytes() const {
  return values_.size() * sizeof(Real) + col_idx_.size() * sizeof(CellIndex) +
         row_ptr_.size() * sizeof(CellIndex);
}

template class AssembledOperator<f32>;
template class AssembledOperator<f64>;

} // namespace fvdf
