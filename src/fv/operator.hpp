#pragma once
// The matrix-free Jacobian application of Eq. (6) / Algorithm 2 on the host.
//
// Sign convention (see DESIGN.md): we apply the SPD form
//   (Jx)_K = sum_L Upsilon_KL * lambda_KL * (x_K - x_L)   for K not in T^D
//   (Jx)_K = x_K                                           for K in T^D,
// i.e. Eq. (6) negated on interior rows, which is the positive-definite
// operator CG actually needs. lambda_KL is the arithmetic mean of the cell
// mobilities (Eq. 4). Local assembly and mat-vec are fused: no global
// matrix is ever formed.

#include <cstddef>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "fv/problem.hpp"

namespace fvdf {

template <typename Real> class MatrixFreeOperator {
public:
  /// Keeps a reference to `sys`; the system must outlive the operator.
  explicit MatrixFreeOperator(const DiscreteSystem<Real>& sys);

  CellIndex size() const { return sys_.cell_count(); }

  /// y = Jx, serial sweep (Algorithm 2's loop nest).
  void apply(const Real* x, Real* y) const;

  /// y = Jx with the outer cell loop split across a thread pool.
  void apply_threaded(const Real* x, Real* y, ThreadPool& pool) const;

  /// FLOPs per full application, using the paper's accounting (Sec. V-D):
  /// each interior cell does 14 FLOPs per neighbor face present.
  u64 flop_count() const;

  const DiscreteSystem<Real>& system() const { return sys_; }

private:
  // Computes y over cells with linear indices in [begin, end).
  void apply_range(const Real* x, Real* y, CellIndex begin, CellIndex end) const;

  const DiscreteSystem<Real>& sys_;
};

extern template class MatrixFreeOperator<f32>;
extern template class MatrixFreeOperator<f64>;

} // namespace fvdf
