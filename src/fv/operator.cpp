#include "fv/operator.hpp"

#include "common/error.hpp"

namespace fvdf {

template <typename Real>
MatrixFreeOperator<Real>::MatrixFreeOperator(const DiscreteSystem<Real>& sys)
    : sys_(sys) {
  FVDF_CHECK(sys.nx >= 1 && sys.ny >= 1 && sys.nz >= 1);
  FVDF_CHECK(sys.lambda.size() == static_cast<std::size_t>(sys.cell_count()));
}

template <typename Real>
void MatrixFreeOperator<Real>::apply_range(const Real* x, Real* y, CellIndex begin,
                                           CellIndex end) const {
  const i64 nx = sys_.nx, ny = sys_.ny;
  const i64 plane = nx * ny;
  const Real* lambda = sys_.lambda.data();
  const Real* tx = sys_.tx.data();
  const Real* ty = sys_.ty.data();
  const Real* tz = sys_.tz.data();
  const Real half = Real(0.5);

  for (CellIndex k = begin; k < end; ++k) {
    if (sys_.dirichlet[static_cast<std::size_t>(k)]) {
      y[k] = x[k];
      continue;
    }
    const i64 cx = k % nx;
    const i64 cy = (k / nx) % ny;
    const i64 cz = k / plane;
    const Real xk = x[k];
    const Real lk = lambda[k];
    Real acc = Real(0);

    // West / East (x-face array is (nx-1) x ny x nz; face index of the
    // lower cell).
    if (cx > 0) {
      const CellIndex l = k - 1;
      const Real ups = tx[(cz * ny + cy) * (nx - 1) + (cx - 1)];
      acc += ups * (half * (lk + lambda[l])) * (xk - x[l]);
    }
    if (cx < nx - 1) {
      const CellIndex l = k + 1;
      const Real ups = tx[(cz * ny + cy) * (nx - 1) + cx];
      acc += ups * (half * (lk + lambda[l])) * (xk - x[l]);
    }
    // South / North.
    if (cy > 0) {
      const CellIndex l = k - nx;
      const Real ups = ty[(cz * (ny - 1) + (cy - 1)) * nx + cx];
      acc += ups * (half * (lk + lambda[l])) * (xk - x[l]);
    }
    if (cy < ny - 1) {
      const CellIndex l = k + nx;
      const Real ups = ty[(cz * (ny - 1) + cy) * nx + cx];
      acc += ups * (half * (lk + lambda[l])) * (xk - x[l]);
    }
    // Down / Up (same PE column on the device; z-face index uses the lower
    // cell's (x,y,z) in an nx x ny x (nz-1) box).
    if (cz > 0) {
      const CellIndex l = k - plane;
      const Real ups = tz[((cz - 1) * ny + cy) * nx + cx];
      acc += ups * (half * (lk + lambda[l])) * (xk - x[l]);
    }
    if (cz < sys_.nz - 1) {
      const CellIndex l = k + plane;
      const Real ups = tz[(cz * ny + cy) * nx + cx];
      acc += ups * (half * (lk + lambda[l])) * (xk - x[l]);
    }
    y[k] = acc;
  }
}

template <typename Real>
void MatrixFreeOperator<Real>::apply(const Real* x, Real* y) const {
  apply_range(x, y, 0, sys_.cell_count());
}

template <typename Real>
void MatrixFreeOperator<Real>::apply_threaded(const Real* x, Real* y,
                                              ThreadPool& pool) const {
  const auto n = static_cast<std::size_t>(sys_.cell_count());
  pool.parallel_for(0, n, [&](std::size_t begin, std::size_t end) {
    apply_range(x, y, static_cast<CellIndex>(begin), static_cast<CellIndex>(end));
  });
}

template <typename Real> u64 MatrixFreeOperator<Real>::flop_count() const {
  // 14 FLOPs per (interior cell, present face) pair, per the paper's
  // Table V accounting for the flux kernel.
  u64 faces = 0;
  const i64 nx = sys_.nx, ny = sys_.ny, nz = sys_.nz;
  for (CellIndex k = 0; k < sys_.cell_count(); ++k) {
    if (sys_.dirichlet[static_cast<std::size_t>(k)]) continue;
    const i64 cx = k % nx;
    const i64 cy = (k / nx) % ny;
    const i64 cz = k / (nx * ny);
    faces += static_cast<u64>((cx > 0) + (cx < nx - 1) + (cy > 0) + (cy < ny - 1) +
                              (cz > 0) + (cz < nz - 1));
  }
  return 14 * faces;
}

template class MatrixFreeOperator<f32>;
template class MatrixFreeOperator<f64>;

} // namespace fvdf
