#include "wse/placement.hpp"

#include <algorithm>
#include <fstream>
#include <string>

#include "common/error.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace fvdf::wse {

std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    if (text[pos] == ',' || text[pos] == '\n' || text[pos] == ' ') {
      ++pos;
      continue;
    }
    std::size_t used = 0;
    int lo = 0;
    try {
      lo = std::stoi(text.substr(pos), &used);
    } catch (...) {
      return {};
    }
    if (used == 0 || lo < 0) return {};
    pos += used;
    int hi = lo;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
      try {
        hi = std::stoi(text.substr(pos), &used);
      } catch (...) {
        return {};
      }
      if (used == 0 || hi < lo) return {};
      pos += used;
    }
    for (int cpu = lo; cpu <= hi; ++cpu) cpus.push_back(cpu);
  }
  return cpus;
}

HostTopology HostTopology::detect() {
  HostTopology topo;
#if defined(__linux__)
  // node directories are dense from 0 on every kernel that exposes them;
  // stop at the first gap. No <filesystem> directory scan: the path set is
  // tiny and a plain ifstream probe cannot throw.
  for (int node = 0; node < 64; ++node) {
    const std::string path =
        "/sys/devices/system/node/node" + std::to_string(node) + "/cpulist";
    std::ifstream in(path);
    if (!in.good()) break;
    std::string text;
    std::getline(in, text);
    std::vector<int> cpus = parse_cpulist(text);
    if (cpus.empty()) break;
    topo.node_cpus.push_back(std::move(cpus));
  }
#endif
  if (topo.node_cpus.empty()) topo.node_cpus.emplace_back(); // unknown host
  return topo;
}

std::vector<std::vector<u32>> assign_shard_blocks(u32 tile_rows, u32 tile_cols,
                                                  u32 workers) {
  const u32 tiles = tile_rows * tile_cols;
  FVDF_CHECK_MSG(workers >= 1 && workers <= tiles,
                 "placement: " << workers << " workers for " << tiles
                               << " tiles");
  std::vector<std::vector<u32>> owned(workers);

  // Worker grid: a (wr, wc) factorization of the worker count that fits
  // the tile grid, minimizing the inter-worker cut (same objective as the
  // tile layout itself). Prime worker counts on square grids often have no
  // fitting factorization; fall back to contiguous row-major runs, which
  // still keep most neighbors together.
  u32 best_wr = 0;
  u32 best_wc = 0;
  i64 best_cut = 0;
  for (u32 wr = 1; wr <= std::min(workers, tile_rows); ++wr) {
    if (workers % wr != 0) continue;
    const u32 wc = workers / wr;
    if (wc > tile_cols) continue;
    const i64 cut = static_cast<i64>(wr - 1) * tile_cols +
                    static_cast<i64>(wc - 1) * tile_rows;
    if (best_wr == 0 || cut < best_cut) {
      best_wr = wr;
      best_wc = wc;
      best_cut = cut;
    }
  }
  if (best_wr != 0) {
    for (u32 a = 0; a < best_wr; ++a) {
      const u32 r0 = tile_rows * a / best_wr;
      const u32 r1 = tile_rows * (a + 1) / best_wr;
      for (u32 b = 0; b < best_wc; ++b) {
        const u32 c0 = tile_cols * b / best_wc;
        const u32 c1 = tile_cols * (b + 1) / best_wc;
        std::vector<u32>& mine = owned[a * best_wc + b];
        for (u32 r = r0; r < r1; ++r)
          for (u32 c = c0; c < c1; ++c) mine.push_back(r * tile_cols + c);
      }
    }
  } else {
    for (u32 w = 0; w < workers; ++w) {
      const u32 begin = tiles * w / workers;
      const u32 end = tiles * (w + 1) / workers;
      for (u32 s = begin; s < end; ++s) owned[w].push_back(s);
    }
  }
  return owned;
}

u32 worker_numa_node(u32 worker, u32 workers, u32 nodes) {
  if (nodes <= 1 || workers == 0) return 0;
  return static_cast<u32>(static_cast<u64>(worker) * nodes / workers);
}

bool pin_current_thread_to_cpus(const std::vector<int>& cpus) {
#if defined(__linux__)
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int cpu : cpus) {
    if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
    CPU_SET(cpu, &set);
  }
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpus;
  return false;
#endif
}

} // namespace fvdf::wse
