#pragma once
// Data Structure Descriptors and the vector engine that executes them.
//
// DSDs describe strided fp32 arrays in PE-local memory (address, length,
// stride — Sec. III-E3). Instructions operating on DSDs behave like
// filters data flows through: constant per-element throughput, no caching.
// Every operation (a) performs the fp32 arithmetic on the PE arena,
// (b) reports into the PE's OpCounters ledger (Table V is *measured* from
// these), and (c) advances the running task's cycle cursor per the
// TimingParams cost model.

#include "common/types.hpp"
#include "perf/opcount.hpp"
#include "wse/memory.hpp"
#include "wse/timing.hpp"

namespace fvdf::wse {

/// Strided view of fp32 words in PE memory.
struct Dsd {
  u32 offset = 0; // word offset of element 0
  u32 length = 0; // element count
  i32 stride = 1; // word step between elements

  /// Sub-view starting at element `first` (same stride).
  Dsd drop(u32 first) const;
  /// Prefix of `count` elements.
  Dsd take(u32 count) const;
};

/// Makes a Dsd covering a whole allocation.
inline Dsd dsd(MemSpan span) { return Dsd{span.offset_words, span.length, 1}; }
/// Sub-array view [first, first+count) of an allocation.
Dsd dsd(MemSpan span, u32 first, u32 count);

class DsdEngine {
public:
  /// `cycles` is the running task's time cursor, advanced by every op.
  DsdEngine(PeMemory& memory, OpCounters& counters, const TimingParams& timing,
            f64& cycles);

  // Element-wise vector instructions (dst may alias operands; execution is
  // element-ordered like the hardware's streaming semantics).
  void fmovs(Dsd dst, Dsd src);
  void fmovs_imm(Dsd dst, f32 value);
  void fadds(Dsd dst, Dsd a, Dsd b);
  void fsubs(Dsd dst, Dsd a, Dsd b);
  void fmuls(Dsd dst, Dsd a, Dsd b);
  void fmuls_imm(Dsd dst, Dsd a, f32 value);
  void fnegs(Dsd dst, Dsd a);
  /// dst = acc + a * b (element-wise FMA).
  void fmacs(Dsd dst, Dsd acc, Dsd a, Dsd b);
  /// dst = acc + a * value (scalar-vector FMA, used by axpy updates).
  void fmacs_imm(Dsd dst, Dsd acc, Dsd a, f32 value);

  /// Counted scalar arithmetic (register-to-register adds used by the
  /// reduction chains; charged like a length-1 vector op).
  f32 fadds_scalar(f32 a, f32 b);
  f32 fmuls_scalar(f32 a, f32 b);

  /// fp32 dot product; counted as `length` FMAs (the device reduces in
  /// single precision, which is what makes fp32 CG iteration counts drift
  /// slightly from the f64 host oracle).
  f32 fdots(Dsd a, Dsd b);

  // Scalar accesses (counted as single-element moves).
  f32 load(u32 word_offset);
  void store(u32 word_offset, f32 value);
  u8 load_byte(u32 byte_offset);
  void store_byte(u32 byte_offset, u8 value);

  /// Free-function-style cost accounting for operations performed by the
  /// fabric on this PE's behalf (sends/receives).
  OpCounters& counters() { return counters_; }

private:
  template <typename Fn> void elementwise(Opcode op, Dsd dst, u32 length, Fn&& fn);
  void charge(Opcode op, u32 elements);
  u32 idx(Dsd d, u32 i) const;

  PeMemory& memory_;
  OpCounters& counters_;
  const TimingParams& timing_;
  f64& cycles_;
};

} // namespace fvdf::wse
