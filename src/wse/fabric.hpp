#pragma once
// The event-driven fabric simulator: a width x height grid of PEs, each
// with a router, 48 KiB memory arena, DSD engine and task machinery,
// connected by cardinal links that move 32-bit wavelets.
//
// Fidelity model (see DESIGN.md): functionally exact — every word a kernel
// sends is routed through real Router switch-position state and lands in
// real PE memory, so numerical results are bit-faithful to the programmed
// algorithm. Timing is cycle-approximate: link occupancy, hop latency,
// task dispatch and per-element DSD costs from TimingParams. Contiguous
// words of one send travel as a single "flit" event batch (one event per
// message per hop, not per word), which keeps the event count tractable
// while preserving per-word bandwidth accounting.
//
// Execution engine (docs/simulator.md, "Parallel execution model"): the PE
// grid is partitioned into rectangular tile shards — a pure function of
// the fabric geometry (wse/shard_layout.hpp cost model, or an explicit
// ShardGrid override), never of the thread count — each owning the event
// queue, payload arena, statistics and trace buffer of its rows x cols
// rectangle. run() is a conservative parallel DES in the Chandy–Misra
// channel-lookahead family: each round every shard processes events below
// its own horizon, derived from its neighbors' per-event emission bounds
// (earliest cycle a neighbor's pending work could place a wavelet across
// the shared boundary) propagated min-plus over the tile adjacency graph,
// and the static channel-lookahead table (which colors can cross each
// directed tile boundary at all, see set_channel_lookahead).
// Boundary-crossing flits travel through per-directed-boundary SPSC
// channels and merge at a deterministic barrier under the engine's total
// event order (time, emitting PE, per-PE emission index). Results —
// memory contents, FabricStats, trace streams — are bitwise identical at
// any thread count, including 1, because the round schedule depends only
// on the event state, never on the worker count; and because the event
// order is stamped at emission rather than at arrival, they are also
// bitwise identical under any shard layout (2D tiles, 1D strips, serial).

#include <array>
#include <atomic>
#include <deque>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "perf/opcount.hpp"
#include "wse/color.hpp"
#include "wse/dsd.hpp"
#include "wse/event_heap.hpp"
#include "wse/geometry.hpp"
#include "wse/memory.hpp"
#include "wse/payload_pool.hpp"
#include "wse/program.hpp"
#include "wse/router.hpp"
#include "wse/shard_layout.hpp"
#include "wse/timing.hpp"
#include "wse/trace.hpp"
#include "wse/worker_pool.hpp"

namespace fvdf::analysis {
struct VerifyReport;
}

namespace fvdf::telemetry {
class FabricCollector;
class HostProfiler;
}

namespace fvdf::wse {

struct FabricStats {
  u64 messages_sent = 0;   // send()/send_control() calls that left a ramp
  u64 wavelet_hops = 0;    // router-to-router link traversals (per message)
  u64 word_hops = 0;       // data words x link traversals
  u64 words_delivered = 0; // words landed in PE memory via ramps
  u64 words_dropped = 0;   // words routed off the fabric edge
  u64 control_wavelets = 0;
  u64 tasks_run = 0;
  u64 events_processed = 0;
  u64 flits_stalled = 0; // backpressure events (arrival before switch advance)

  bool operator==(const FabricStats&) const = default;
};

struct PeMemoryParams {
  u64 capacity_bytes = 48 * 1024;
  u64 reserved_bytes = 2048; // models program text + stack
};

/// Static per-directed-boundary lookahead information for the parallel
/// engine. `out[s][d]` covers wavelets leaving shard s through cardinal
/// side d (d indexes kCardinalDirs via cardinal_index: N=0, E=1, S=2,
/// W=3) into the neighboring tile. `crosses = false` proves no configured
/// route carries any color over that boundary in that direction, which
/// decouples the two shards entirely (infinite lookahead);
/// `min_batch_cycles` is a proven lower bound on the link-transfer time of
/// any crossing wavelet (0 when unknown). Entries for sides with no
/// neighboring shard are ignored (planners mark them non-crossing). The
/// default table — every existing boundary crossing-capable with zero
/// minimum batch — is always safe; Fabric::plan_channel_lookahead
/// (src/analysis/) computes a tighter one from the program's static route
/// set.
struct ChannelLookahead {
  struct Edge {
    bool crosses = true;
    f64 min_batch_cycles = 0;
  };
  std::vector<std::array<Edge, 4>> out; // size shard_count
};

/// Where the lookahead planner reads each program's injected colors and
/// minimum message words from. `Bytecode` (the default) derives them from
/// the *reachable* SEND/SENDC instructions of each program's flat
/// instruction stream via the abstract interpreter — the proven ground
/// truth of what the VM can inject — falling back to the declared
/// ProgramManifest for legacy programs without bytecode. `ManifestOnly`
/// trusts the manifests alone (the pre-bytecode behavior); its table is
/// never tighter than the bytecode-derived one.
enum class LookaheadSource : u8 { Bytecode, ManifestOnly };

class Fabric {
public:
  /// `grid` optionally overrides the shard layout's tile grid (see
  /// wse::ShardGrid; {0, 0} — the default — picks by the cost model).
  /// Tests and benchmarks use it to force the 1D strip layout ({0, 1}), a
  /// serial run ({1, 1}) or a specific tile grid; results are bitwise
  /// independent of the choice for programs whose event schedule is
  /// confluent (everything the solvers ship — tested), but round counts
  /// and per-shard diagnostics follow the layout.
  Fabric(i64 width, i64 height, TimingParams timing = {}, PeMemoryParams mem = {},
         ShardGrid grid = {});
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  i64 width() const { return width_; }
  i64 height() const { return height_; }

  /// Instantiates one program per PE and schedules every on_start at t=0.
  void load(const ProgramFactory& factory);

  /// Statically verifies `factory` against this fabric's geometry and
  /// memory parameters without running the event loop: route completeness,
  /// deadlock freedom, delivery liveness, switch-position liveness and the
  /// per-PE memory budget. Does not modify this fabric — verification runs
  /// on freshly instantiated per-PE state. Defined in src/analysis/ (link
  /// fvdf_analysis to use it); see docs/static_verification.md.
  analysis::VerifyReport verify(const ProgramFactory& factory) const;

  /// Computes the channel-lookahead table for `factory` on this fabric's
  /// shard layout by instantiating every PE's routing configuration
  /// statically (the same recording pass the verifier uses — on_start runs
  /// against a recording context, never the event loop). Sound under the
  /// same contract the verifier documents: routing tables are fully
  /// installed by on_start, and task-time sends are declared in the
  /// ProgramManifest. Defined in src/analysis/ (link fvdf_analysis);
  /// install the result with set_channel_lookahead before run().
  /// `source` picks where per-color injection facts come from (see
  /// LookaheadSource); the default reads the bytecode when available.
  ChannelLookahead plan_channel_lookahead(
      const ProgramFactory& factory,
      LookaheadSource source = LookaheadSource::Bytecode) const;

  /// Installs a channel-lookahead table (see ChannelLookahead). Must match
  /// this fabric's shard layout; entries only ever tighten the engine's
  /// built-in one-hop bound, so an inaccurate table can cost determinism —
  /// only install tables computed for the loaded program.
  void set_channel_lookahead(ChannelLookahead table);
  const ChannelLookahead& channel_lookahead() const { return lookahead_; }

  struct RunResult {
    f64 cycles = 0;       // simulated time at completion
    bool all_halted = false;
    bool hit_cycle_limit = false;
  };

  /// Processes events until the queue drains, all PEs halt, or `max_cycles`
  /// simulated cycles elapse.
  RunResult run(f64 max_cycles = 1e15);

  /// Sets the number of worker threads run() may use (0 = hardware
  /// concurrency, 1 = serial; the default). Thread counts beyond
  /// shard_count() are clamped — extra workers would own no shard — and
  /// requests far beyond the hardware's parallelism degrade to the best
  /// smaller configuration instead of paying barrier overhead for workers
  /// with no core to run on (see run()). The thread count never changes
  /// results: the round schedule depends only on the fabric geometry and
  /// event state.
  void set_threads(u32 threads);
  u32 threads() const { return threads_; }

  /// Number of spatial shards the engine partitioned this fabric into — a
  /// function of the grid (and the constructor's ShardGrid override), not
  /// of threads (for tests and diagnostics). This is the cost model's
  /// *useful* shard count: tiles own at least kMinTilePes PEs unless an
  /// explicit override forces more, so it also caps the worker count.
  u32 shard_count() const { return static_cast<u32>(shards_.size()); }

  /// The tile grid of the shard layout: shard id s is tile
  /// (s / tile_cols(), s % tile_cols()).
  u32 tile_rows() const { return tile_rows_; }
  u32 tile_cols() const { return tile_cols_; }

  /// The PE rectangle tile shard `s` owns: rows [row_begin, row_end) x
  /// cols [col_begin, col_end).
  struct TileRect {
    i64 row_begin = 0;
    i64 row_end = 0;
    i64 col_begin = 0;
    i64 col_end = 0;
  };
  TileRect shard_rect(u32 s) const {
    const Shard& shard = shards_[s];
    return TileRect{shard.row_begin, shard.row_end, shard.col_begin,
                    shard.col_end};
  }

  /// Shard id owning PE (x, y) (tests and diagnostics).
  u32 shard_id_of(i64 x, i64 y) const {
    return row_tile_[static_cast<std::size_t>(y)] * tile_cols_ +
           col_tile_[static_cast<std::size_t>(x)];
  }

  /// Window rounds (merge barriers) the last run() executed — a
  /// determinism-safe diagnostic: identical at any thread count. A fabric
  /// whose shards never exchange traffic drains in a single round.
  u64 last_run_rounds() const { return last_run_rounds_; }

  // --- host-side access (the "memcpy" path: the host can read and write PE
  // memory only between runs, like the SDK's memcpy infrastructure). All
  // three throw on out-of-range coordinates. ---
  PeMemory& pe_memory(i64 x, i64 y);
  const Router& pe_router(i64 x, i64 y) const;
  const OpCounters& pe_counters(i64 x, i64 y) const;
  OpCounters total_counters() const;
  const FabricStats& stats() const { return stats_; }
  const TimingParams& timing() const { return timing_; }
  TimingParams& timing() { return timing_; }

  /// Simulated seconds corresponding to a cycle count.
  f64 seconds(f64 cycles) const { return timing_.seconds(cycles); }

  /// Installs a trace sink (pass nullptr to disable). Must be set before
  /// run(). Records are gathered per shard and merge-sorted by time at
  /// every window barrier before reaching the sink, so the stream is
  /// identical at any thread count.
  void set_trace(TraceSink sink) { trace_ = std::move(sink); }

  /// Installs a deterministic fault schedule (see wse/trace.hpp). Fault
  /// plans count injected messages fabric-globally, so a run with faults
  /// active is pinned to one worker thread (still windowed, still
  /// deterministic).
  void set_faults(FaultPlan plan) { faults_ = plan; }

  /// Attaches a telemetry collector (pass nullptr — or a collector at
  /// Level::Off — to detach). Must be set before run(); binds the
  /// collector to this fabric's geometry and shard layout, resetting any
  /// previously collected data. Per-PE activity cells and per-shard
  /// streams are only ever written by the owning shard, so collected data
  /// is bitwise identical at any thread count (see
  /// telemetry/collector.hpp). The disabled path costs one pointer test
  /// per instrumentation site; configure with -DFVDF_TELEMETRY=OFF to
  /// compile the hooks out entirely.
  void set_telemetry(telemetry::FabricCollector* collector);
  telemetry::FabricCollector* telemetry_collector() const { return telemetry_; }

  /// Attaches a host-side execution profiler (pass nullptr to detach) for
  /// the next run(): per-worker wall-clock timelines, per-shard per-round
  /// stall attribution, sampled bytecode pc histograms and the
  /// critical-path speedup bound (see telemetry/host_profiler.hpp). Unlike
  /// the telemetry collector this observes the *simulator*, not the
  /// simulated fabric: its output is wall-clock data, never deterministic,
  /// and it cannot perturb results — solve output, cycle counts and the
  /// telemetry bundle stay bitwise identical with or without it. The
  /// hooks compile out under -DFVDF_TELEMETRY=OFF (the profiler then
  /// captures nothing; see host_profiling_compiled()).
  void set_host_profiler(telemetry::HostProfiler* profiler) {
    host_prof_ = profiler;
  }
  telemetry::HostProfiler* host_profiler() const { return host_prof_; }

  /// Whether the host-profiler hooks are compiled into this build.
  static constexpr bool host_profiling_compiled() {
#ifdef FVDF_TELEMETRY_DISABLED
    return false;
#else
    return true;
#endif
  }

  /// The distinct bytecode programs the loaded PEs dispatch into (PEs with
  /// coinciding lowering sites share one immutable program, so this is
  /// small). Populated once on_start has run — i.e. after run() — which is
  /// when the host profiler's pc histograms need names attached
  /// (analysis::annotate_host_profile).
  std::vector<const bc::Program*> distinct_bytecode_programs() const;

private:
  friend class FabricPeContext;

  struct Flit {
    Color color = kInvalidColor;
    PayloadRef data; // null for control-only wavelets
    ColorMask advance_after = 0; // trailing control wavelet, 0 = none
  };

  struct RecvDesc {
    Dsd dst;
    u32 filled = 0;
    Color completion = kInvalidColor;
  };

  // Per-color word FIFO between ramp and recv descriptors. Payloads append
  // as one span and descriptors drain in bulk — the seed engine moved one
  // deque<f32> word at a time through push_back/pop_front.
  struct WordFifo {
    std::vector<f32> buf;
    std::size_t head = 0;

    bool empty() const { return head == buf.size(); }
    std::size_t size() const { return buf.size() - head; }
    const f32* data() const { return buf.data() + head; }
    void append(const f32* words, std::size_t count) {
      buf.insert(buf.end(), words, words + count);
    }
    void consume(std::size_t count) {
      head += count;
      if (head == buf.size()) {
        buf.clear();
        head = 0;
      }
    }
  };

  struct Pe {
    PeCoord coord;
    PeMemory memory;
    Router router;
    OpCounters counters;
    std::unique_ptr<PeProgram> program;
    // Bytecode fast path, cached from the program after on_start: task
    // activations dispatch into the interpreter without virtual calls.
    const bc::Program* bc_prog = nullptr;
    bc::VmState* bc_state = nullptr;
    f64 busy_until = 0;
    bool halted = false;
    std::array<std::deque<RecvDesc>, kNumRoutableColors> recv_queues;
    std::array<WordFifo, kNumRoutableColors> inbox;
    // Backpressure: flits whose arrival link is not in the color's current
    // rx set park here (keyed by color) and re-dispatch when a control
    // advances that color's switch position.
    struct StalledFlit {
      Dir from;
      Flit flit;
      f64 parked_at = 0; // arrival time, for telemetry stall-cycle accounting
    };
    std::array<std::deque<StalledFlit>, kNumRoutableColors> stalled;
    // Outbound link occupancy: [0]=ramp injection, [1..4]=N,E,S,W.
    std::array<f64, 5> link_free_at{};
    // Emission counter for the layout-invariant event order (see Event):
    // every event this PE emits is stamped (pe_index, emit_seq++).
    u64 emit_seq = 0;

    Pe(PeCoord c, const PeMemoryParams& mem)
        : coord(c), memory(mem.capacity_bytes, mem.reserved_bytes) {}
  };

  enum class EventKind : u8 { FlitArrive, TaskStart };

  /// Events are totally ordered by (t, src, seq): time first, ties broken
  /// by the emitting PE and its per-PE emission counter. The tie-break is
  /// stamped at emission and is a property of the simulated program alone
  /// — each PE processes the same event sequence under any conservative
  /// schedule, so it emits the same events with the same counters — which
  /// is what makes results bitwise identical under ANY shard layout (2D
  /// tiles, 1D strips, a single serial shard), not just any thread count.
  struct Event {
    f64 t = 0;
    i64 src = 0; // emitting PE index
    u64 seq = 0; // per-emitting-PE emission counter
    EventKind kind = EventKind::TaskStart;
    i64 pe_index = 0;
    Dir from = Dir::Ramp; // FlitArrive
    Flit flit;            // FlitArrive
    Color color = kInvalidColor; // TaskStart
  };

  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.src != b.src) return a.src > b.src;
      return a.seq > b.seq; // unique per (src, seq): a strict total order
    }
  };

  /// Single-producer single-consumer hand-off of one window's
  /// boundary-crossing events between two adjacent shards. The source
  /// shard's worker appends during the processing phase (storage persists
  /// across windows — no per-window allocation once warm) and publishes
  /// the count with a release store at phase end; the destination shard's
  /// worker acquires it in the merge phase, drains in emission order, and
  /// resets. The two phases are barrier-separated, so producer and
  /// consumer never touch the slots concurrently.
  struct SpscChannel {
    std::vector<Event> slots;
    std::atomic<u32> published{0};

    void publish() {
      if (!slots.empty())
        published.store(static_cast<u32>(slots.size()), std::memory_order_release);
    }
  };

  /// One spatial tile of the fabric: a rectangle of PEs with its own event
  /// queue, sequence counter, statistics, payload arena, outbound channels
  /// (one per cardinal side with a neighboring tile) and trace buffer.
  /// Shards only ever touch their own rectangle's state during a window;
  /// padding keeps neighboring shards' hot counters off each other's cache
  /// lines.
  struct alignas(64) Shard {
    u32 id = 0;
    u32 tile_r = 0; // tile coordinates: id == tile_r * tile_cols_ + tile_c
    u32 tile_c = 0;
    i64 row_begin = 0;
    i64 row_end = 0;
    i64 col_begin = 0;
    i64 col_end = 0;
    EventHeap<Event, EventOrder> events;
    f64 now = 0;
    i64 halted = 0;
    FabricStats stats;
    PayloadPool* payloads = nullptr;    // this shard's arena (see payload_pools_)
    std::array<SpscChannel, 4> out;     // emissions per cardinal side this window
    std::vector<TraceRecord> trace;     // window-local
    std::vector<Event*> merge_scratch;  // merge-phase gather/sort buffer
    std::vector<Event> merge_sorted;    // merge-phase bulk-load staging
    // Engine scheduling state, recomputed after every merge:
    f64 tmin = 0;            // earliest pending event time (+inf when drained)
    std::array<f64, 4> bound{}; // earliest cycle pending work could cross side d
    f64 horizon = 0;     // this round's processing horizon (set by the driver)
    bool dirty = true;   // heap changed since bounds were last computed
    bool bounds_changed = true; // tmin/bounds moved since the last horizon pass
  };

  i64 pe_index(i64 x, i64 y) const { return y * width_ + x; }
  Pe& at(i64 index) { return *pes_[static_cast<std::size_t>(index)]; }
  Shard& shard_of(i64 pe_idx) {
    return shards_[shard_id_of(pe_idx % width_, pe_idx / width_)];
  }
  /// Neighboring shard id across cardinal side `side` of `shard`, or -1
  /// when the tile sits on that edge of the tile grid.
  i64 neighbor_shard(const Shard& shard, std::size_t side) const {
    switch (side) {
    case cardinal_index(Dir::North):
      return shard.tile_r > 0 ? static_cast<i64>(shard.id - tile_cols_) : -1;
    case cardinal_index(Dir::East):
      return shard.tile_c + 1 < tile_cols_ ? static_cast<i64>(shard.id + 1) : -1;
    case cardinal_index(Dir::South):
      return shard.tile_r + 1 < tile_rows_
                 ? static_cast<i64>(shard.id + tile_cols_)
                 : -1;
    default:
      return shard.tile_c > 0 ? static_cast<i64>(shard.id - 1) : -1;
    }
  }
  void check_host_coord(i64 x, i64 y) const;

  /// Stamps the layout-invariant event-order key (see Event): the emitting
  /// PE's index and its next emission counter value. Every event enters the
  /// engine through exactly one stamp.
  void stamp(Pe& pe, Event& event) {
    event.src = pe_index(pe.coord.x, pe.coord.y);
    event.seq = pe.emit_seq++;
  }

  /// Routes `event` from code running inside `from`: same-shard events
  /// enter the local queue immediately, boundary-crossing events park in
  /// the outbound channel until the merge barrier.
  void push_event(Shard& from, Event&& event);
  void enqueue_local(Shard& shard, Event&& event);

  // One engine round: every shard processes its window (phase A), then
  // every shard merges the traffic it received and refreshes its lookahead
  // bounds (phase B). compute_horizons runs between rounds on the driver
  // thread. All of it is deterministic — horizons are a function of the
  // event state and the lookahead table only. Rounds in which no shard's
  // bounds moved (quiet neighborhoods) reuse the previous horizons
  // verbatim — sound because the horizon is a pure function of exactly
  // those inputs.
  void compute_horizons(f64 tmin_global);
  void round_phase_a(Shard& shard, f64 max_cycles);
  void round_phase_b(Shard& shard);
  void process_window(Shard& shard, f64 horizon, f64 max_cycles);
  /// Merge half of the barrier: drains the neighbors' channels toward
  /// `dest` in (t, emitting PE, emission index) order via a sorted
  /// bulk-load into the event heap. Returns the number of events merged
  /// (the host profiler's backpressure-vs-window-limited discriminator).
  u32 merge_inbound(Shard& dest);
  void update_shard_bounds(Shard& shard);
  void flush_traces();

  void handle_flit_arrive(Shard& shard, Event&& event);
  /// Forwards/delivers an accepted flit (the post-backpressure half of
  /// arrival handling; also the re-dispatch path for released flits).
  void dispatch_flit(Shard& shard, Pe& pe, Dir from, Flit&& flit, f64 t);
  // Applies a switch advance at `pe` and re-dispatches any flits that were
  // stalled on the affected colors (at time `t`). Flits the new position
  // still rejects re-park directly without re-entering the event queue.
  void advance_and_release(Shard& shard, Pe& pe, ColorMask mask, f64 t);
  void handle_task_start(Shard& shard, const Event& event);
  void deliver_to_ramp(Shard& shard, Pe& pe, const Flit& flit, f64 t);
  void feed_recv_descriptors(Shard& shard, Pe& pe, Color color, f64 t);
  void run_task(Shard& shard, Pe& pe, Color color, f64 t);

  // PeContext backends (called from FabricPeContext during a task).
  void ctx_send(Shard& shard, Pe& pe, Color color, Dsd src,
                ColorMask advance_after, Color completion, f64& cursor);
  void ctx_send_control(Shard& shard, Pe& pe, Color color, ColorMask advance,
                        f64& cursor);
  void ctx_recv(Shard& shard, Pe& pe, Color color, Dsd dst, Color completion,
                f64 cursor);
  void ctx_activate(Shard& shard, Pe& pe, Color color, f64 cursor);
  void ctx_mark_phase(Shard& shard, Pe& pe, u8 phase, f64 cursor);
  void ctx_note_progress(Shard& shard, Pe& pe, u64 iteration, f64 value,
                         f64 cursor);

  void emit_trace(Shard& shard, TraceEvent event, f64 t, PeCoord at, Color color,
                  u32 words) {
    if (trace_) shard.trace.push_back(TraceRecord{event, t, at, color, words});
  }

  i64 width_;
  i64 height_;
  TraceSink trace_;
  telemetry::FabricCollector* telemetry_ = nullptr; // non-owning; null = off
  telemetry::HostProfiler* host_prof_ = nullptr;    // non-owning; null = off
  FaultPlan faults_{};
  u64 injected_data_messages_ = 0;
  TimingParams timing_;
  PeMemoryParams mem_params_;
  // Payload arenas (one per shard) outlive everything holding PayloadRefs
  // (PEs' parked flits, shard queues, channels): keep them declared first.
  std::vector<std::unique_ptr<PayloadPool>> payload_pools_;
  std::vector<std::unique_ptr<Pe>> pes_;
  u32 tile_rows_ = 1; // shard layout: tile grid dimensions
  u32 tile_cols_ = 1;
  std::vector<u32> row_tile_; // PE row -> tile row
  std::vector<u32> col_tile_; // PE col -> tile col
  std::vector<Shard> shards_;
  ChannelLookahead lookahead_;
  std::vector<std::vector<u32>> worker_shards_; // worker -> owned shard ids
  // Transitively propagated emission bounds (compute_horizons scratch):
  // reach_[s][d] bounds when anything can next cross out of shard s
  // through side d, accounting for cascades arriving from elsewhere in the
  // tile graph (min-plus fixed point over directed boundary edges).
  std::vector<std::array<f64, 4>> reach_;
  bool horizons_valid_ = false; // stored horizons match the current bounds
  std::vector<TraceRecord> trace_scratch_;
  std::unique_ptr<FabricWorkerPool> pool_; // persists across run() calls
  u32 pool_workers_ = 0; // worker count worker_shards_ was computed for
  u32 threads_ = 1;
  u64 last_run_rounds_ = 0;
  f64 now_ = 0;
  FabricStats stats_;
  bool loaded_ = false;
};

} // namespace fvdf::wse
