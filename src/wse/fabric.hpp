#pragma once
// The event-driven fabric simulator: a width x height grid of PEs, each
// with a router, 48 KiB memory arena, DSD engine and task machinery,
// connected by cardinal links that move 32-bit wavelets.
//
// Fidelity model (see DESIGN.md): functionally exact — every word a kernel
// sends is routed through real Router switch-position state and lands in
// real PE memory, so numerical results are bit-faithful to the programmed
// algorithm. Timing is cycle-approximate: link occupancy, hop latency,
// task dispatch and per-element DSD costs from TimingParams. Contiguous
// words of one send travel as a single "flit" event batch (one event per
// message per hop, not per word), which keeps the event count tractable
// while preserving per-word bandwidth accounting.

#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.hpp"
#include "perf/opcount.hpp"
#include "wse/color.hpp"
#include "wse/dsd.hpp"
#include "wse/geometry.hpp"
#include "wse/memory.hpp"
#include "wse/program.hpp"
#include "wse/router.hpp"
#include "wse/timing.hpp"
#include "wse/trace.hpp"

namespace fvdf::wse {

struct FabricStats {
  u64 messages_sent = 0;   // send()/send_control() calls that left a ramp
  u64 wavelet_hops = 0;    // router-to-router link traversals (per message)
  u64 word_hops = 0;       // data words x link traversals
  u64 words_delivered = 0; // words landed in PE memory via ramps
  u64 words_dropped = 0;   // words routed off the fabric edge
  u64 control_wavelets = 0;
  u64 tasks_run = 0;
  u64 events_processed = 0;
  u64 flits_stalled = 0; // backpressure events (arrival before switch advance)
};

struct PeMemoryParams {
  u64 capacity_bytes = 48 * 1024;
  u64 reserved_bytes = 2048; // models program text + stack
};

class Fabric {
public:
  Fabric(i64 width, i64 height, TimingParams timing = {}, PeMemoryParams mem = {});
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  i64 width() const { return width_; }
  i64 height() const { return height_; }

  /// Instantiates one program per PE and schedules every on_start at t=0.
  void load(const ProgramFactory& factory);

  struct RunResult {
    f64 cycles = 0;       // simulated time at completion
    bool all_halted = false;
    bool hit_cycle_limit = false;
  };

  /// Processes events until the queue drains, all PEs halt, or `max_cycles`
  /// simulated cycles elapse.
  RunResult run(f64 max_cycles = 1e15);

  // --- host-side access (the "memcpy" path: the host can read and write PE
  // memory only between runs, like the SDK's memcpy infrastructure) ---
  PeMemory& pe_memory(i64 x, i64 y);
  const Router& pe_router(i64 x, i64 y) const;
  const OpCounters& pe_counters(i64 x, i64 y) const;
  OpCounters total_counters() const;
  const FabricStats& stats() const { return stats_; }
  const TimingParams& timing() const { return timing_; }
  TimingParams& timing() { return timing_; }

  /// Simulated seconds corresponding to a cycle count.
  f64 seconds(f64 cycles) const { return timing_.seconds(cycles); }

  /// Installs a trace sink receiving every simulator event (pass nullptr
  /// to disable). Must be set before run().
  void set_trace(TraceSink sink) { trace_ = std::move(sink); }

  /// Installs a deterministic fault schedule (see wse/trace.hpp).
  void set_faults(FaultPlan plan) { faults_ = plan; }

private:
  friend class FabricPeContext;

  struct Flit {
    Color color = kInvalidColor;
    std::shared_ptr<const std::vector<f32>> data; // may be null (control-only)
    ColorMask advance_after = 0; // trailing control wavelet, 0 = none
  };

  struct RecvDesc {
    Dsd dst;
    u32 filled = 0;
    Color completion = kInvalidColor;
  };

  struct Pe {
    PeCoord coord;
    PeMemory memory;
    Router router;
    OpCounters counters;
    std::unique_ptr<PeProgram> program;
    f64 busy_until = 0;
    bool halted = false;
    std::array<std::deque<RecvDesc>, kNumRoutableColors> recv_queues;
    std::array<std::deque<f32>, kNumRoutableColors> inbox;
    // Backpressure: flits whose arrival link is not in the color's current
    // rx set park here (keyed by color) and re-dispatch when a control
    // advances that color's switch position.
    struct StalledFlit {
      Dir from;
      Flit flit;
    };
    std::array<std::deque<StalledFlit>, kNumRoutableColors> stalled;
    // Outbound link occupancy: [0]=ramp injection, [1..4]=N,E,S,W.
    std::array<f64, 5> link_free_at{};

    Pe(PeCoord c, const PeMemoryParams& mem)
        : coord(c), memory(mem.capacity_bytes, mem.reserved_bytes) {}
  };

  enum class EventKind : u8 { FlitArrive, TaskStart };

  struct Event {
    f64 t = 0;
    u64 seq = 0;
    EventKind kind = EventKind::TaskStart;
    i64 pe_index = 0;
    Dir from = Dir::Ramp; // FlitArrive
    Flit flit;            // FlitArrive
    Color color = kInvalidColor; // TaskStart
  };

  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq; // FIFO among simultaneous events
    }
  };

  i64 pe_index(i64 x, i64 y) const { return y * width_ + x; }
  Pe& at(i64 index) { return *pes_[static_cast<std::size_t>(index)]; }

  void push_event(Event event);
  void handle_flit_arrive(const Event& event);
  // Applies a switch advance at `pe` and re-dispatches any flits that were
  // stalled on the affected colors (at time `t`).
  void advance_and_release(Pe& pe, ColorMask mask, f64 t);
  void handle_task_start(const Event& event);
  void deliver_to_ramp(Pe& pe, const Flit& flit, f64 t);
  void feed_recv_descriptors(Pe& pe, Color color, f64 t);
  void run_task(Pe& pe, Color color, f64 t);

  // PeContext backends (called from FabricPeContext during a task).
  void ctx_send(Pe& pe, Color color, Dsd src, ColorMask advance_after,
                Color completion, f64& cursor);
  void ctx_send_control(Pe& pe, Color color, ColorMask advance, f64& cursor);
  void ctx_recv(Pe& pe, Color color, Dsd dst, Color completion, f64 cursor);
  void ctx_activate(Pe& pe, Color color, f64 cursor);

  void emit_trace(TraceEvent event, f64 t, PeCoord at, Color color, u32 words) const {
    if (trace_) trace_(TraceRecord{event, t, at, color, words});
  }

  i64 width_;
  i64 height_;
  TraceSink trace_;
  FaultPlan faults_{};
  u64 injected_data_messages_ = 0;
  TimingParams timing_;
  PeMemoryParams mem_params_;
  std::vector<std::unique_ptr<Pe>> pes_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  u64 next_seq_ = 0;
  f64 now_ = 0;
  i64 halted_count_ = 0;
  FabricStats stats_;
  bool loaded_ = false;
};

} // namespace fvdf::wse
