#include "wse/bytecode.hpp"

#include <sstream>

#include "common/error.hpp"

namespace fvdf::wse::bc {

const char* to_string(Op op) {
  switch (op) {
  case Op::VMOV: return "VMOV";
  case Op::VMOVI: return "VMOVI";
  case Op::VADD: return "VADD";
  case Op::VSUB: return "VSUB";
  case Op::VMUL: return "VMUL";
  case Op::VMULI: return "VMULI";
  case Op::VMULR: return "VMULR";
  case Op::VNEG: return "VNEG";
  case Op::VMAC: return "VMAC";
  case Op::VMACI: return "VMACI";
  case Op::VMACR: return "VMACR";
  case Op::VDOT: return "VDOT";
  case Op::SADD: return "SADD";
  case Op::SMUL: return "SMUL";
  case Op::SMULI: return "SMULI";
  case Op::LODS: return "LODS";
  case Op::STOS: return "STOS";
  case Op::MOVR: return "MOVR";
  case Op::UMOVI: return "UMOVI";
  case Op::UMUL: return "UMUL";
  case Op::UMULI: return "UMULI";
  case Op::USUB: return "USUB";
  case Op::UNEG: return "UNEG";
  case Op::URCP: return "URCP";
  case Op::UDIVI: return "UDIVI";
  case Op::UK2F: return "UK2F";
  case Op::RSTORE: return "RSTORE";
  case Op::FIXD: return "FIXD";
  case Op::ZDIR: return "ZDIR";
  case Op::SEND: return "SEND";
  case Op::SENDC: return "SENDC";
  case Op::RECV: return "RECV";
  case Op::ACT: return "ACT";
  case Op::ADVL: return "ADVL";
  case Op::HALT: return "HALT";
  case Op::PHASE: return "PHASE";
  case Op::PROG: return "PROG";
  case Op::JMP: return "JMP";
  case Op::JTOL: return "JTOL";
  case Op::JGTR: return "JGTR";
  case Op::JKGE: return "JKGE";
  case Op::DECJNZ: return "DECJNZ";
  case Op::DECRET: return "DECRET";
  case Op::SETU: return "SETU";
  case Op::KINC: return "KINC";
  case Op::CHKPOS: return "CHKPOS";
  case Op::SETH: return "SETH";
  case Op::SETC: return "SETC";
  case Op::JIND: return "JIND";
  case Op::RET: return "RET";
  case Op::kCount: break;
  }
  return "???";
}

Builder::Label Builder::make_label() {
  label_pc_.push_back(-1);
  return static_cast<Label>(label_pc_.size() - 1);
}

void Builder::bind(Label label) {
  FVDF_CHECK_MSG(label < label_pc_.size(), "bytecode: unknown label " << label);
  FVDF_CHECK_MSG(label_pc_[label] < 0,
                 "bytecode: label " << label << " bound twice");
  label_pc_[label] = static_cast<i64>(program_.code.size());
}

u8 Builder::dsd(Dsd d) {
  for (std::size_t i = 0; i < program_.dsds.size(); ++i) {
    const Dsd& e = program_.dsds[i];
    if (e.offset == d.offset && e.length == d.length && e.stride == d.stride) {
      return static_cast<u8>(i);
    }
  }
  FVDF_CHECK_MSG(program_.dsds.size() < 256, "bytecode: DSD table overflow");
  program_.dsds.push_back(d);
  return static_cast<u8>(program_.dsds.size() - 1);
}

u32 Builder::konst(u64 value) {
  for (std::size_t i = 0; i < program_.consts.size(); ++i) {
    if (program_.consts[i] == value) return static_cast<u32>(i);
  }
  program_.consts.push_back(value);
  return static_cast<u32>(program_.consts.size() - 1);
}

void Builder::branch(Op op, u8 a, u8 b, u8 c, Label l) {
  fixups_.emplace_back(static_cast<u32>(program_.code.size()), l);
  emit({op, a, b, c, 0, {}});
}

void Builder::branch_f(Op op, u8 a, f32 v, Label l) {
  fixups_.emplace_back(static_cast<u32>(program_.code.size()), l);
  emit(fimm(op, a, 0, 0, 0, v));
}

void Builder::branch_u(Op op, u8 a, u32 v, Label l) {
  fixups_.emplace_back(static_cast<u32>(program_.code.size()), l);
  emit(uimm(op, a, v));
}

void Builder::set_entry(Label l) { entry_label_ = static_cast<i64>(l); }

Program Builder::finish() {
  FVDF_CHECK_MSG(program_.code.size() < kNoPc,
                 "bytecode: program too large (" << program_.code.size()
                                                << " instructions)");
  for (const auto& [idx, label] : fixups_) {
    FVDF_CHECK_MSG(label < label_pc_.size(),
                   "bytecode: unknown label " << label);
    FVDF_CHECK_MSG(label_pc_[label] >= 0,
                   "bytecode: unbound label " << label << " referenced at pc "
                                             << idx);
    program_.code[idx].d = static_cast<u32>(label_pc_[label]);
  }
  if (entry_label_ >= 0) {
    const i64 pc = label_pc_[static_cast<std::size_t>(entry_label_)];
    FVDF_CHECK_MSG(pc >= 0, "bytecode: entry label unbound");
    program_.entry = static_cast<u16>(pc);
  }
  fixups_.clear();
  return std::move(program_);
}

ProgramManifest derive_manifest(const Program& program) {
  ProgramManifest m;
  for (const Instr& ins : program.code) {
    switch (ins.op) {
    case Op::SEND:
      m.declare_inject(ins.a, program.dsds[ins.b].length);
      m.advances |= ins.imm.u;
      if (ins.c != kInvalidColor) m.activates |= color_set_bit(ins.c);
      break;
    case Op::SENDC:
      m.declare_inject(ins.a, 0);
      m.advances |= ins.imm.u;
      break;
    case Op::RECV:
      m.handles |= color_set_bit(ins.a);
      if (ins.c != kInvalidColor) m.activates |= color_set_bit(ins.c);
      break;
    case Op::ACT:
      m.activates |= color_set_bit(ins.a);
      break;
    case Op::ADVL:
      m.advances |= ins.imm.u;
      break;
    case Op::SETH:
      // A bound handler color is a task color that can run here: the
      // program both handles it and (somewhere) activates it.
      m.handles |= color_set_bit(ins.a);
      m.activates |= color_set_bit(ins.a);
      break;
    default:
      break;
    }
  }
  return m;
}

std::vector<std::string> lint_program(const Program& program) {
  std::vector<std::string> defects;
  auto defect = [&defects](const std::string& msg) { defects.push_back(msg); };
  const std::size_t n = program.code.size();
  if (n == 0) {
    defect("empty instruction stream");
    return defects;
  }
  if (program.entry >= n) defect("entry pc out of range");
  auto check_target = [&](std::size_t pc, u32 d) {
    if (d >= n) {
      std::ostringstream os;
      os << "pc " << pc << ": branch target " << d << " out of range";
      defect(os.str());
    }
  };
  auto check_dsd = [&](std::size_t pc, u32 idx) {
    if (idx >= program.dsds.size()) {
      std::ostringstream os;
      os << "pc " << pc << ": DSD index " << idx << " out of range";
      defect(os.str());
    }
  };
  auto check_color = [&](std::size_t pc, u8 c, bool routable_only) {
    const bool bad = routable_only ? c >= kNumRoutableColors : c >= kNumColors;
    if (bad) {
      std::ostringstream os;
      os << "pc " << pc << ": invalid color " << static_cast<u32>(c);
      defect(os.str());
    }
  };
  auto check_freg = [&](std::size_t pc, u8 r) {
    if (r >= kNumFRegs) {
      std::ostringstream os;
      os << "pc " << pc << ": f-register f" << static_cast<u32>(r)
         << " out of range (kNumFRegs = " << kNumFRegs << ")";
      defect(os.str());
    }
  };
  auto check_ureg = [&](std::size_t pc, u8 r) {
    if (r >= kNumURegs) {
      std::ostringstream os;
      os << "pc " << pc << ": u-register u" << static_cast<u32>(r)
         << " out of range (kNumURegs = " << kNumURegs << ")";
      defect(os.str());
    }
  };
  auto check_creg = [&](std::size_t pc, u8 r) {
    if (r >= kNumCRegs) {
      std::ostringstream os;
      os << "pc " << pc << ": continuation register cont" << static_cast<u32>(r)
         << " out of range (kNumCRegs = " << kNumCRegs << ")";
      defect(os.str());
    }
  };
  for (std::size_t pc = 0; pc < n; ++pc) {
    const Instr& ins = program.code[pc];
    switch (ins.op) {
    case Op::VMOV: case Op::VNEG:
      check_dsd(pc, ins.a); check_dsd(pc, ins.b);
      break;
    case Op::VMOVI:
      check_dsd(pc, ins.a);
      break;
    case Op::VADD: case Op::VSUB: case Op::VMUL:
      check_dsd(pc, ins.a); check_dsd(pc, ins.b); check_dsd(pc, ins.c);
      break;
    case Op::VMULI:
      check_dsd(pc, ins.a); check_dsd(pc, ins.b);
      break;
    case Op::VMULR:
      check_dsd(pc, ins.a); check_dsd(pc, ins.b);
      if (ins.d >= kNumFRegs) {
        std::ostringstream os;
        os << "pc " << pc << ": VMULR f-register f" << ins.d
           << " out of range (kNumFRegs = " << kNumFRegs << ")";
        defect(os.str());
      }
      break;
    case Op::VMAC:
      check_dsd(pc, ins.a); check_dsd(pc, ins.b); check_dsd(pc, ins.c);
      check_dsd(pc, ins.d);
      break;
    case Op::VMACI:
      check_dsd(pc, ins.a); check_dsd(pc, ins.b); check_dsd(pc, ins.c);
      break;
    case Op::VMACR:
      check_dsd(pc, ins.a); check_dsd(pc, ins.b); check_dsd(pc, ins.c);
      if (ins.d >= kNumFRegs) {
        std::ostringstream os;
        os << "pc " << pc << ": VMACR f-register f" << ins.d
           << " out of range (kNumFRegs = " << kNumFRegs << ")";
        defect(os.str());
      }
      break;
    case Op::VDOT:
      check_freg(pc, ins.a);
      check_dsd(pc, ins.b); check_dsd(pc, ins.c);
      break;
    case Op::SADD: case Op::SMUL: case Op::UMUL: case Op::USUB:
      check_freg(pc, ins.a); check_freg(pc, ins.b); check_freg(pc, ins.c);
      break;
    case Op::SMULI: case Op::UMULI: case Op::UDIVI:
      check_freg(pc, ins.a); check_freg(pc, ins.b);
      break;
    case Op::LODS: case Op::STOS: case Op::RSTORE:
      check_freg(pc, ins.a);
      break;
    case Op::MOVR: case Op::UNEG: case Op::URCP:
      check_freg(pc, ins.a); check_freg(pc, ins.b);
      break;
    case Op::UMOVI: case Op::UK2F: case Op::CHKPOS: case Op::PROG:
      check_freg(pc, ins.a);
      break;
    case Op::FIXD:
      check_dsd(pc, ins.a); check_dsd(pc, ins.b);
      break;
    case Op::ZDIR:
      check_dsd(pc, ins.a);
      break;
    case Op::SEND:
      check_color(pc, ins.a, true);
      check_dsd(pc, ins.b);
      if (ins.c != kInvalidColor) check_color(pc, ins.c, false);
      break;
    case Op::SENDC:
      check_color(pc, ins.a, true);
      break;
    case Op::RECV:
      check_color(pc, ins.a, true);
      check_dsd(pc, ins.b);
      if (ins.c != kInvalidColor) check_color(pc, ins.c, false);
      break;
    case Op::ACT:
      check_color(pc, ins.a, false);
      break;
    case Op::JMP:
      check_target(pc, ins.d);
      break;
    case Op::JTOL:
      check_freg(pc, ins.a);
      check_target(pc, ins.d);
      break;
    case Op::JGTR:
      check_freg(pc, ins.a); check_freg(pc, ins.b);
      check_target(pc, ins.d);
      break;
    case Op::DECJNZ:
      check_ureg(pc, ins.a);
      check_target(pc, ins.d);
      break;
    case Op::DECRET: case Op::SETU:
      check_ureg(pc, ins.a);
      break;
    case Op::JKGE:
      check_target(pc, ins.d);
      if (ins.imm.u >= program.consts.size()) {
        std::ostringstream os;
        os << "pc " << pc << ": JKGE constant index " << ins.imm.u
           << " out of range (" << program.consts.size() << " consts)";
        defect(os.str());
      }
      break;
    case Op::SETH:
      check_color(pc, ins.a, false);
      check_target(pc, ins.d);
      break;
    case Op::SETC:
      check_creg(pc, ins.a);
      check_target(pc, ins.d);
      break;
    case Op::JIND:
      check_creg(pc, ins.a);
      break;
    default:
      break;
    }
  }
  // Fall-through off the end of the stream is an encoding bug: the last
  // instruction must unconditionally leave the interpreter loop.
  const Op last = program.code.back().op;
  if (last != Op::RET && last != Op::HALT && last != Op::JMP &&
      last != Op::JIND) {
    defect("stream does not end in RET/HALT/JMP/JIND");
  }
  return defects;
}

namespace {

void format_instr(std::ostream& os, const Program& p, std::size_t pc) {
  const Instr& ins = p.code[pc];
  auto dsd_str = [&p](u32 idx) {
    std::ostringstream s;
    if (idx < p.dsds.size()) {
      const Dsd& d = p.dsds[idx];
      s << "dsd" << idx << "[@" << d.offset << " len=" << d.length;
      if (d.stride != 1) s << " stride=" << d.stride;
      s << "]";
    } else {
      s << "dsd" << idx << "[?]";
    }
    return s.str();
  };
  os.width(5);
  os << pc << "  ";
  std::string mn = to_string(ins.op);
  os << mn;
  for (std::size_t i = mn.size(); i < 8; ++i) os << ' ';
  switch (ins.op) {
  case Op::VMOV: case Op::VNEG:
    os << dsd_str(ins.a) << ", " << dsd_str(ins.b);
    break;
  case Op::VMOVI:
    os << dsd_str(ins.a) << ", " << ins.imm.f;
    break;
  case Op::VADD: case Op::VSUB: case Op::VMUL:
    os << dsd_str(ins.a) << ", " << dsd_str(ins.b) << ", " << dsd_str(ins.c);
    break;
  case Op::VMULI:
    os << dsd_str(ins.a) << ", " << dsd_str(ins.b) << ", " << ins.imm.f;
    break;
  case Op::VMULR:
    os << dsd_str(ins.a) << ", " << dsd_str(ins.b) << ", f" << ins.d;
    break;
  case Op::VMAC:
    os << dsd_str(ins.a) << ", " << dsd_str(ins.b) << ", " << dsd_str(ins.c)
       << ", " << dsd_str(ins.d);
    break;
  case Op::VMACI:
    os << dsd_str(ins.a) << ", " << dsd_str(ins.b) << ", " << dsd_str(ins.c)
       << ", " << ins.imm.f;
    break;
  case Op::VMACR:
    os << dsd_str(ins.a) << ", " << dsd_str(ins.b) << ", " << dsd_str(ins.c)
       << ", f" << ins.d;
    break;
  case Op::VDOT:
    os << "f" << static_cast<u32>(ins.a) << ", " << dsd_str(ins.b) << ", "
       << dsd_str(ins.c);
    break;
  case Op::SADD: case Op::SMUL: case Op::UMUL: case Op::USUB:
    os << "f" << static_cast<u32>(ins.a) << ", f" << static_cast<u32>(ins.b)
       << ", f" << static_cast<u32>(ins.c);
    break;
  case Op::SMULI: case Op::UMULI: case Op::UDIVI:
    os << "f" << static_cast<u32>(ins.a) << ", f" << static_cast<u32>(ins.b)
       << ", " << ins.imm.f;
    break;
  case Op::LODS: case Op::STOS: case Op::RSTORE:
    os << "f" << static_cast<u32>(ins.a) << ", mem[" << ins.imm.u << "]";
    break;
  case Op::MOVR: case Op::UNEG: case Op::URCP:
    os << "f" << static_cast<u32>(ins.a) << ", f" << static_cast<u32>(ins.b);
    break;
  case Op::UMOVI:
    os << "f" << static_cast<u32>(ins.a) << ", " << ins.imm.f;
    break;
  case Op::UK2F: case Op::CHKPOS:
    os << "f" << static_cast<u32>(ins.a);
    break;
  case Op::FIXD:
    os << dsd_str(ins.a) << " -> " << dsd_str(ins.b) << ", list@"
       << ins.imm.u << " n=" << ins.d;
    break;
  case Op::ZDIR:
    os << dsd_str(ins.a) << ", list@" << ins.imm.u << " n=" << ins.d;
    break;
  case Op::SEND:
    os << "c" << static_cast<u32>(ins.a) << ", " << dsd_str(ins.b);
    if (ins.imm.u != 0) os << ", adv=0x" << std::hex << ins.imm.u << std::dec;
    if (ins.c != kInvalidColor) os << ", done=c" << static_cast<u32>(ins.c);
    break;
  case Op::SENDC:
    os << "c" << static_cast<u32>(ins.a);
    if (ins.imm.u != 0) os << ", adv=0x" << std::hex << ins.imm.u << std::dec;
    break;
  case Op::RECV:
    os << "c" << static_cast<u32>(ins.a) << ", " << dsd_str(ins.b);
    if (ins.c != kInvalidColor) os << ", done=c" << static_cast<u32>(ins.c);
    break;
  case Op::ACT:
    os << "c" << static_cast<u32>(ins.a);
    break;
  case Op::ADVL:
    os << "0x" << std::hex << ins.imm.u << std::dec;
    break;
  case Op::PHASE:
    os << static_cast<u32>(ins.a);
    break;
  case Op::PROG:
    os << "f" << static_cast<u32>(ins.a) << ", k+" << static_cast<u32>(ins.b);
    break;
  case Op::JMP:
    os << "-> " << ins.d;
    break;
  case Op::JTOL:
    os << "f" << static_cast<u32>(ins.a) << " < " << ins.imm.f << " -> "
       << ins.d;
    break;
  case Op::JGTR:
    os << "f" << static_cast<u32>(ins.a) << " > f" << static_cast<u32>(ins.b)
       << " -> " << ins.d;
    break;
  case Op::JKGE:
    os << "k >= const" << ins.imm.u;
    if (ins.imm.u < p.consts.size()) os << " (" << p.consts[ins.imm.u] << ")";
    os << " -> " << ins.d;
    break;
  case Op::DECJNZ:
    os << "u" << static_cast<u32>(ins.a) << " -> " << ins.d;
    break;
  case Op::DECRET:
    os << "u" << static_cast<u32>(ins.a);
    break;
  case Op::SETU:
    os << "u" << static_cast<u32>(ins.a) << ", " << ins.imm.u;
    break;
  case Op::SETH:
    os << "c" << static_cast<u32>(ins.a) << " -> " << ins.d;
    break;
  case Op::SETC:
    os << "cont" << static_cast<u32>(ins.a) << " -> " << ins.d;
    break;
  case Op::JIND:
    os << "cont" << static_cast<u32>(ins.a);
    break;
  case Op::HALT: case Op::KINC: case Op::RET: case Op::kCount:
    break;
  }
}

} // namespace

std::string disassemble(const Program& program) {
  std::ostringstream os;
  os << "program \"" << program.name << "\": " << program.code.size()
     << " instructions, " << program.dsds.size() << " DSDs, "
     << program.consts.size() << " consts, entry pc " << program.entry
     << "\n";
  for (std::size_t pc = 0; pc < program.code.size(); ++pc) {
    format_instr(os, program, pc);
    os << "\n";
  }
  return os.str();
}

} // namespace fvdf::wse::bc
