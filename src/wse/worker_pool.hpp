#pragma once
// Persistent two-phase worker pool for the parallel fabric engine.
//
// The sharded event engine executes in rounds: every worker processes its
// shards' windows (phase 0), all workers synchronize, then every worker
// merges the cross-shard traffic its shards received and recomputes their
// lookahead bounds (phase 1). The generic common/thread_pool.hpp paid a
// mutex + condition-variable round trip per dispatch and re-spawned
// threads whenever the worker count changed; at the fabric's round rates
// (thousands per run) that dominated the multi-thread profile. This pool
// keeps its workers parked on a futex (std::atomic::wait) between rounds,
// runs the calling thread as worker 0, and separates the two phases with a
// sense-reversing spin-then-wait barrier — a round costs two atomic
// round-trips per worker and zero allocations.
//
// The first exception thrown by any phase call is captured and rethrown
// from run_round() on the calling thread after the round completes, so a
// kernel FVDF_CHECK inside a window surfaces exactly as in the serial
// engine.

#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace fvdf::telemetry {
class HostProfiler;
}

namespace fvdf::wse {

/// Optional NUMA placement for a pool's workers: worker w pins itself to
/// worker_cpus[w] on startup (best-effort — pinning failure is ignored).
/// An empty worker_cpus, or an empty list for a worker, means "don't pin".
/// Worker 0 is the calling thread and is never pinned: the caller's
/// affinity belongs to the application.
struct WorkerPlacement {
  std::vector<std::vector<int>> worker_cpus;
};

/// Sense-reversing barrier: spins briefly (skipped when the host is
/// oversubscribed), then parks on the atomic. Reusable back-to-back —
/// the sense is a monotonic counter, so a late waker that missed several
/// flips still falls through.
class SpinBarrier {
public:
  SpinBarrier(u32 parties, u32 spin_iters)
      : parties_(parties), spin_iters_(spin_iters) {}

  void arrive_and_wait();

private:
  const u32 parties_;
  const u32 spin_iters_;
  std::atomic<u32> arrived_{0};
  std::atomic<u32> sense_{0};
};

class FabricWorkerPool {
public:
  /// fn(worker, phase) with worker in [0, size()) and phase in {0, 1}.
  using PhaseFn = std::function<void(u32 worker, u32 phase)>;

  /// `workers` >= 2 total workers; the constructor spawns `workers - 1`
  /// threads and run_round()'s caller acts as worker 0. `placement`
  /// optionally pins each spawned worker near its shards' NUMA node (see
  /// WorkerPlacement).
  explicit FabricWorkerPool(u32 workers, WorkerPlacement placement = {});
  ~FabricWorkerPool();

  FabricWorkerPool(const FabricWorkerPool&) = delete;
  FabricWorkerPool& operator=(const FabricWorkerPool&) = delete;

  u32 size() const { return workers_; }

  /// Runs fn(w, 0) on every worker, a barrier, then fn(w, 1); returns once
  /// both phases finished everywhere. Rethrows the first captured
  /// exception.
  void run_round(const PhaseFn& fn);

  /// Attaches a host profiler (nullptr to detach): each worker then records
  /// its run / barrier / merge / park transitions into its own timeline
  /// (telemetry/host_profiler.hpp). Call between rounds only — the pointer
  /// is published to the workers by run_round()'s epoch release, like fn_.
  /// Workers > 0 cannot time their trailing barrier from inside (they park
  /// right after arriving), so it is folded into their next Park interval;
  /// worker 0 accounts both barriers exactly. Compiled out (the hooks, not
  /// the setter) under -DFVDF_TELEMETRY=OFF.
  void set_profiler(telemetry::HostProfiler* profiler) { profiler_ = profiler; }

private:
  void worker_loop(u32 id);
  void run_phases(u32 id);
  void record_error();

  const u32 workers_;
  const WorkerPlacement placement_;
  std::atomic<u64> epoch_{0};
  std::atomic<bool> stop_{false};
  const PhaseFn* fn_ = nullptr; // valid for the duration of one round
  telemetry::HostProfiler* profiler_ = nullptr; // null = no host profiling
  SpinBarrier barrier_;
  std::mutex error_mutex_;
  std::exception_ptr error_;
  std::vector<std::thread> threads_;
};

} // namespace fvdf::wse
