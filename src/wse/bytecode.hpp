#pragma once
// The flat PE bytecode ISA (docs/simulator.md, "Bytecode ISA").
//
// A PE program's event-driven control flow — the CG/Chebyshev state
// machines plus the Table-I collectives — is lowered at build time into
// one flat instruction stream per PE. Every dynamic decision the legacy
// C++ callback path took per wavelet (which handler, which halo step,
// which done-continuation) is either resolved statically at lowering time
// (coordinate parity, fabric edges, flux mode) or encoded in a handful of
// VM registers (iteration counter, residuals, pending counts,
// continuation program counters). The fabric then executes tasks through
// a tight interpreter loop (bytecode_interp.hpp) instead of virtual
// dispatch + std::function callbacks.
//
// The instruction stream is the single artifact the rest of the stack
// attributes against: derive_manifest() reconstructs the verifier/
// lookahead ProgramManifest from it, lint_program() statically checks the
// encoding, and disassemble() prints it for fabric_lint --dump-program.
//
// Execution model: a task activation on color c starts interpretation at
// VmState::handler[c] and runs until RET/HALT (or DECRET's early return).
// Charged instructions call the same DsdEngine entry points the legacy
// programs called, in the same order — cycle cursors, op counters, event
// schedules and therefore solver results are bitwise identical.

#include <string>
#include <vector>

#include "common/types.hpp"
#include "wse/color.hpp"
#include "wse/dsd.hpp"
#include "wse/program.hpp"

namespace fvdf::wse::bc {

/// Opcodes. Field conventions (see Instr): `a`,`b`,`c` are u8 operands
/// (registers, colors, DSD-table indices), `d` is a u32 wide operand
/// (branch target, 4th DSD index, f-register for *R forms, loop count),
/// `imm` is an f32 or u32 immediate.
enum class Op : u8 {
  // --- DSD vector ops (charged through DsdEngine; a/b/c(/d) index the
  // program's DSD table) ---
  VMOV,  // dsd[a] <- dsd[b]                       (fmovs)
  VMOVI, // dsd[a] <- imm.f                        (fmovs_imm)
  VADD,  // dsd[a] <- dsd[b] + dsd[c]              (fadds)
  VSUB,  // dsd[a] <- dsd[b] - dsd[c]              (fsubs)
  VMUL,  // dsd[a] <- dsd[b] * dsd[c]              (fmuls)
  VMULI, // dsd[a] <- dsd[b] * imm.f               (fmuls_imm)
  VMULR, // dsd[a] <- dsd[b] * f[d]                (fmuls_imm, runtime scalar)
  VNEG,  // dsd[a] <- -dsd[b]                      (fnegs)
  VMAC,  // dsd[a] <- dsd[b] + dsd[c] * dsd[d]     (fmacs)
  VMACI, // dsd[a] <- dsd[b] + dsd[c] * imm.f      (fmacs_imm)
  VMACR, // dsd[a] <- dsd[b] + dsd[c] * f[d]       (fmacs_imm, runtime scalar)
  VDOT,  // f[a] <- dot(dsd[b], dsd[c])            (fdots)

  // --- charged scalar ops (length-1 vector semantics) ---
  SADD,  // f[a] <- f[b] + f[c]                    (fadds_scalar)
  SMUL,  // f[a] <- f[b] * f[c]                    (fmuls_scalar)
  SMULI, // f[a] <- f[b] * imm.f                   (fmuls_scalar)
  LODS,  // f[a] <- mem[imm.u]                     (DsdEngine::load)
  STOS,  // mem[imm.u] <- f[a]                     (DsdEngine::store)

  // --- uncharged register/host ops (scalar math the legacy programs did
  // in plain C++ between charged ops) ---
  MOVR,  // f[a] <- f[b]
  UMOVI, // f[a] <- imm.f
  UMUL,  // f[a] <- f[b] * f[c]
  UMULI, // f[a] <- imm.f * f[b]
  USUB,  // f[a] <- f[b] - f[c]
  UNEG,  // f[a] <- -f[b]
  URCP,  // f[a] <- 1.0f / f[b]
  UDIVI, // f[a] <- f[b] / imm.f
  UK2F,  // f[a] <- (f32)k
  RSTORE,// mem[imm.u] <- f[a]  (raw PeMemory store, uncharged result write)

  // --- Dirichlet macro-ops (charged per entry exactly like the legacy
  // flux_kernels loops: 2 byte loads + load/store per pinned row) ---
  FIXD,  // for d entries at byte imm.u: dsd[b].mem[z] <- dsd[a].mem[z]
  ZDIR,  // for d entries at byte imm.u: dsd[a].mem[z] <- 0

  // --- fabric ops ---
  SEND,  // send(color a, dsd[b], advance_after=imm.u, completion=c)
  SENDC, // send_control(color a, advance=imm.u)
  RECV,  // recv(color a, dsd[b], completion=c)
  ACT,   // activate(color a)
  ADVL,  // advance_local(imm.u)
  HALT,  // ctx.halt()

  // --- telemetry ---
  PHASE, // mark_phase(a)
  PROG,  // note_progress(k + b, f[a])

  // --- control flow ---
  JMP,    // pc <- d
  JTOL,   // if (f[a] < imm.f || f[a] == 0) pc <- d   (convergence test)
  JGTR,   // if (f[a] > f[b]) pc <- d                 (divergence test)
  JKGE,   // if (k >= consts[imm.u]) pc <- d          (iteration limit)
  DECJNZ, // if (--u[a] != 0) pc <- d
  DECRET, // if (--u[a] != 0) return                  (collective join)
  SETU,   // u[a] <- imm.u
  KINC,   // ++k
  CHKPOS, // FVDF_CHECK(f[a] > 0)  ("x^T Jx is not positive")
  SETH,   // handler[color a] <- d  (bind/rebind a task-color handler)
  SETC,   // cont[a] <- d           (set a continuation register)
  JIND,   // pc <- cont[a]          (indirect jump through a continuation)
  RET,    // end of task

  kCount
};

const char* to_string(Op op);

/// One 12-byte instruction.
struct Instr {
  Op op = Op::RET;
  u8 a = 0, b = 0, c = 0;
  u32 d = 0;
  union {
    f32 f;
    u32 u;
  } imm{};
};
static_assert(sizeof(Instr) == 12);

constexpr u16 kNoPc = 0xffff;

constexpr u32 kNumFRegs = 16; // f32 registers
constexpr u32 kNumURegs = 4;  // u32 counters (halo pending, probe countdown)
constexpr u32 kNumCRegs = 4;  // continuation program counters

/// Per-PE mutable interpreter state. Persists across task activations —
/// it *is* the lowered program's version of the legacy classes' member
/// variables (rr_, k_, pending_, the done callbacks).
struct VmState {
  std::array<f32, kNumFRegs> f{};
  std::array<u32, kNumURegs> u{};
  std::array<u16, kNumCRegs> cont{};
  u64 k = 0;
  std::array<u16, kNumColors> handler{};

  VmState() { handler.fill(kNoPc); }
};

/// A lowered, immutable per-PE program. PEs with identical lowering keys
/// (parity, edges, config) share one Program through a shared_ptr.
struct Program {
  std::string name;
  std::vector<Instr> code;
  std::vector<Dsd> dsds;   // DSD operand table
  std::vector<u64> consts; // u64 constants (iteration limits)
  u16 entry = 0;           // pc interpreted at the end of on_start
};

/// Reconstructs the static communication manifest from the instruction
/// stream: SEND/SENDC declare injections (with the DSD length as the
/// word bound) and advances, RECV declares handles + completions, ACT
/// declares activations, ADVL declares local advances, and a SETH-bound
/// task color is declared handled and activatable. This is what the
/// verifier and the channel-lookahead planner consume for bytecode
/// programs — the stream is the source of truth, not a hand-kept list.
ProgramManifest derive_manifest(const Program& program);

/// Static well-formedness check of the encoding itself: branch targets,
/// handler bindings and the entry point must land inside the stream,
/// operand indices must be inside the DSD/const/register tables, colors
/// must be valid, and the stream must be RET/HALT-terminated. Returns a
/// list of human-readable defects (empty = clean).
std::vector<std::string> lint_program(const Program& program);

/// Human-readable disassembly (fabric_lint --dump-program). One line per
/// instruction: "  12  SEND    c1 dsd3[len=8] adv=0x2 done=24".
std::string disassemble(const Program& program);

/// Incremental program assembler with labels and forward references.
class Builder {
public:
  using Label = u32;

  explicit Builder(std::string name) { program_.name = std::move(name); }

  Label make_label();
  void bind(Label label);
  u16 here() const { return static_cast<u16>(program_.code.size()); }

  /// Interns a DSD operand (deduplicated) and returns its table index.
  u8 dsd(Dsd d);
  /// Interns a u64 constant and returns its table index.
  u32 konst(u64 value);

  // Raw emit; the typed helpers below cover every op the lowerings use.
  void emit(Instr instr) { program_.code.push_back(instr); }

  void vmov(u8 dst, u8 src) { emit({Op::VMOV, dst, src, 0, 0, {}}); }
  void vmovi(u8 dst, f32 v) { emit(fimm(Op::VMOVI, dst, 0, 0, 0, v)); }
  void vadd(u8 dst, u8 a, u8 b) { emit({Op::VADD, dst, a, b, 0, {}}); }
  void vsub(u8 dst, u8 a, u8 b) { emit({Op::VSUB, dst, a, b, 0, {}}); }
  void vmul(u8 dst, u8 a, u8 b) { emit({Op::VMUL, dst, a, b, 0, {}}); }
  void vmuli(u8 dst, u8 a, f32 v) { emit(fimm(Op::VMULI, dst, a, 0, 0, v)); }
  void vmulr(u8 dst, u8 a, u8 freg) { emit({Op::VMULR, dst, a, 0, freg, {}}); }
  void vneg(u8 dst, u8 a) { emit({Op::VNEG, dst, a, 0, 0, {}}); }
  void vmac(u8 dst, u8 acc, u8 a, u8 b) { emit({Op::VMAC, dst, acc, a, b, {}}); }
  void vmaci(u8 dst, u8 acc, u8 a, f32 v) { emit(fimm(Op::VMACI, dst, acc, a, 0, v)); }
  void vmacr(u8 dst, u8 acc, u8 a, u8 freg) { emit({Op::VMACR, dst, acc, a, freg, {}}); }
  void vdot(u8 freg, u8 a, u8 b) { emit({Op::VDOT, freg, a, b, 0, {}}); }

  void sadd(u8 dst, u8 a, u8 b) { emit({Op::SADD, dst, a, b, 0, {}}); }
  void smul(u8 dst, u8 a, u8 b) { emit({Op::SMUL, dst, a, b, 0, {}}); }
  void smuli(u8 dst, u8 a, f32 v) { emit(fimm(Op::SMULI, dst, a, 0, 0, v)); }
  void lods(u8 freg, u32 word_offset) { emit(uimm(Op::LODS, freg, word_offset)); }
  void stos(u8 freg, u32 word_offset) { emit(uimm(Op::STOS, freg, word_offset)); }

  void movr(u8 dst, u8 src) { emit({Op::MOVR, dst, src, 0, 0, {}}); }
  void umovi(u8 dst, f32 v) { emit(fimm(Op::UMOVI, dst, 0, 0, 0, v)); }
  void umul(u8 dst, u8 a, u8 b) { emit({Op::UMUL, dst, a, b, 0, {}}); }
  void umuli(u8 dst, u8 a, f32 v) { emit(fimm(Op::UMULI, dst, a, 0, 0, v)); }
  void usub(u8 dst, u8 a, u8 b) { emit({Op::USUB, dst, a, b, 0, {}}); }
  void uneg(u8 dst, u8 a) { emit({Op::UNEG, dst, a, 0, 0, {}}); }
  void urcp(u8 dst, u8 a) { emit({Op::URCP, dst, a, 0, 0, {}}); }
  void udivi(u8 dst, u8 a, f32 v) { emit(fimm(Op::UDIVI, dst, a, 0, 0, v)); }
  void uk2f(u8 dst) { emit({Op::UK2F, dst, 0, 0, 0, {}}); }
  void rstore(u8 freg, u32 word_offset) { emit(uimm(Op::RSTORE, freg, word_offset)); }

  void fixd(u8 x_dsd, u8 q_dsd, u32 count, u32 byte_offset) {
    emit(uimm(Op::FIXD, x_dsd, byte_offset, q_dsd, 0, count));
  }
  void zdir(u8 span_dsd, u32 count, u32 byte_offset) {
    emit(uimm(Op::ZDIR, span_dsd, byte_offset, 0, 0, count));
  }

  void send(Color color, u8 dsd_idx, ColorMask advance_after = 0,
            Color completion = kInvalidColor) {
    emit(uimm(Op::SEND, color, advance_after, dsd_idx, completion));
  }
  void send_control(Color color, ColorMask advance) {
    emit(uimm(Op::SENDC, color, advance));
  }
  void recv(Color color, u8 dsd_idx, Color completion) {
    emit({Op::RECV, color, dsd_idx, completion, 0, {}});
  }
  void act(Color color) { emit({Op::ACT, color, 0, 0, 0, {}}); }
  void advl(ColorMask mask) { emit(uimm(Op::ADVL, 0, mask)); }
  void halt() { emit({Op::HALT, 0, 0, 0, 0, {}}); }

  void phase(u8 p) { emit({Op::PHASE, p, 0, 0, 0, {}}); }
  void progress(u8 freg, u8 k_offset) { emit({Op::PROG, freg, k_offset, 0, 0, {}}); }

  void jmp(Label l) { branch(Op::JMP, 0, 0, 0, l); }
  void jtol(u8 freg, f32 tolerance, Label l) {
    branch_f(Op::JTOL, freg, tolerance, l);
  }
  void jgtr(u8 a, u8 b, Label l) { branch(Op::JGTR, a, b, 0, l); }
  void jkge(u32 const_idx, Label l) { branch_u(Op::JKGE, 0, const_idx, l); }
  void decjnz(u8 ureg, Label l) { branch(Op::DECJNZ, ureg, 0, 0, l); }
  void decret(u8 ureg) { emit({Op::DECRET, ureg, 0, 0, 0, {}}); }
  void setu(u8 ureg, u32 value) { emit(uimm(Op::SETU, ureg, value)); }
  void kinc() { emit({Op::KINC, 0, 0, 0, 0, {}}); }
  void chkpos(u8 freg) { emit({Op::CHKPOS, freg, 0, 0, 0, {}}); }
  void seth(Color color, Label l) { branch(Op::SETH, color, 0, 0, l); }
  void setc(u8 creg, Label l) { branch(Op::SETC, creg, 0, 0, l); }
  void jind(u8 creg) { emit({Op::JIND, creg, 0, 0, 0, {}}); }
  void ret() { emit({Op::RET, 0, 0, 0, 0, {}}); }

  void set_entry(Label l);

  /// Resolves every label reference and returns the finished program.
  /// Throws fvdf::Error on unbound labels or table overflows.
  Program finish();

private:
  static Instr fimm(Op op, u8 a, u8 b, u8 c, u32 d, f32 v) {
    Instr i{op, a, b, c, d, {}};
    i.imm.f = v;
    return i;
  }
  static Instr uimm(Op op, u8 a, u32 v, u8 b = 0, u8 c = 0, u32 d = 0) {
    Instr i{op, a, b, c, d, {}};
    i.imm.u = v;
    return i;
  }
  void branch(Op op, u8 a, u8 b, u8 c, Label l);
  void branch_f(Op op, u8 a, f32 v, Label l);
  void branch_u(Op op, u8 a, u32 v, Label l);

  Program program_;
  std::vector<i64> label_pc_;            // -1 = unbound
  std::vector<std::pair<u32, Label>> fixups_; // (instr index, label) for field d
  i64 entry_label_ = -1;
};

} // namespace fvdf::wse::bc
