#pragma once
// A minimal binary min-heap used by the fabric's per-shard event queues.
//
// std::priority_queue cannot hand out its top element by move: top()
// returns a const reference, so draining the queue copies every Event —
// including a payload refcount bump — once per event. This heap exposes
// pop() as a move, which on the simulator's hottest path is the difference
// between one refcount round-trip plus a ~72-byte copy per event and none.

#include <algorithm>
#include <vector>

namespace fvdf::wse {

/// Follows the std::priority_queue comparator convention: with a
/// greater-than comparator this is a min-heap and pop() removes the
/// smallest element.
template <typename T, typename Greater>
class EventHeap {
public:
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  /// The element pop() would remove next.
  const T& top() const { return items_.front(); }

  void push(T&& value) {
    items_.push_back(std::move(value));
    std::push_heap(items_.begin(), items_.end(), Greater{});
  }

  /// Removes and returns the next element by move.
  T pop() {
    std::pop_heap(items_.begin(), items_.end(), Greater{});
    T out = std::move(items_.back());
    items_.pop_back();
    return out;
  }

  void reserve(std::size_t n) { items_.reserve(n); }

private:
  std::vector<T> items_;
};

} // namespace fvdf::wse
