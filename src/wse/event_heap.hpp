#pragma once
// A minimal binary min-heap used by the fabric's per-shard event queues.
//
// std::priority_queue cannot hand out its top element by move: top()
// returns a const reference, so draining the queue copies every Event —
// including a payload refcount bump — once per event. This heap exposes
// pop() as a move, which on the simulator's hottest path is the difference
// between one refcount round-trip plus a ~72-byte copy per event and none.
//
// It also exposes the underlying storage read-only (items()) so the
// parallel engine can scan all pending events when computing per-shard
// channel-lookahead bounds — the minimum over a set is independent of the
// heap's internal layout, so the scan is deterministic — and a sorted
// bulk-load (bulk_push) used by the merge barrier: k pre-sorted events
// append in one shot instead of k element-wise sift-ups.

#include <algorithm>
#include <vector>

namespace fvdf::wse {

/// Follows the std::priority_queue comparator convention: with a
/// greater-than comparator this is a min-heap and pop() removes the
/// smallest element.
template <typename T, typename Greater>
class EventHeap {
public:
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  /// The element pop() would remove next.
  const T& top() const { return items_.front(); }

  void push(T&& value) {
    items_.push_back(std::move(value));
    std::push_heap(items_.begin(), items_.end(), Greater{});
  }

  /// Removes and returns the next element by move.
  T pop() {
    std::pop_heap(items_.begin(), items_.end(), Greater{});
    T out = std::move(items_.back());
    items_.pop_back();
    return out;
  }

  /// Moves [first, last) — already sorted ascending under the heap's order
  /// (i.e. the exact order successive pop()s would return them) — into the
  /// heap. A sorted ascending array is itself a valid min-heap, so loading
  /// into an empty heap is a plain append; a large batch relative to the
  /// current size appends then re-heapifies in O(n); a small batch falls
  /// back to element-wise pushes (O(k log n)).
  template <typename It>
  void bulk_push(It first, It last) {
    const std::size_t k = static_cast<std::size_t>(std::distance(first, last));
    if (k == 0) return;
    if (items_.empty()) {
      items_.reserve(k);
      for (It it = first; it != last; ++it) items_.push_back(std::move(*it));
      return;
    }
    if (k >= items_.size() / 4) {
      items_.reserve(items_.size() + k);
      for (It it = first; it != last; ++it) items_.push_back(std::move(*it));
      std::make_heap(items_.begin(), items_.end(), Greater{});
      return;
    }
    for (It it = first; it != last; ++it) push(std::move(*it));
  }

  /// Read-only view of every pending element, in unspecified (heap) order.
  const std::vector<T>& items() const { return items_; }

  void reserve(std::size_t n) { items_.reserve(n); }

private:
  std::vector<T> items_;
};

} // namespace fvdf::wse
