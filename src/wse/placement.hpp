#pragma once
// Topology-aware shard -> worker placement for the parallel fabric engine.
//
// Two independent pieces, both host-side only — placement never affects
// results (any assignment of shards to workers executes the same
// deterministic round schedule), only locality:
//
//   1. assign_shard_blocks: which tiles each worker owns. Workers get
//      contiguous 2D blocks of the tile grid (the worker grid is chosen by
//      the same cut-minimizing rule as the tile grid), so a tile's
//      neighbors are owned by the same worker or by an adjacent one, and a
//      boundary channel's producer and consumer tend to share a cache
//      hierarchy. When the worker count does not factor into the tile
//      grid, the assignment falls back to contiguous row-major runs.
//
//   2. HostTopology: NUMA node -> cpu list detection via
//      /sys/devices/system/node (graceful single-node fallback when the
//      tree is absent — containers, non-Linux hosts). The worker pool uses
//      it to pin workers of adjacent blocks onto the same node, and the
//      fabric to first-touch each shard's payload arena from its owning
//      worker so the pages land on that worker's node.

#include <string>
#include <vector>

#include "common/types.hpp"

namespace fvdf::wse {

/// Host NUMA topology: cpu ids per node. Always at least one node; a
/// single node with an empty cpu list means "unknown — don't pin".
struct HostTopology {
  std::vector<std::vector<int>> node_cpus;

  u32 nodes() const { return static_cast<u32>(node_cpus.size()); }

  /// Reads /sys/devices/system/node/node*/cpulist. Falls back to a single
  /// node covering everything (empty cpu list) when the tree is missing or
  /// unreadable.
  static HostTopology detect();
};

/// Parses a kernel cpulist string ("0-3,8,10-11") into cpu ids. Exposed
/// for tests; returns an empty vector on malformed input.
std::vector<int> parse_cpulist(const std::string& text);

/// Assigns tiles of a tile_rows x tile_cols grid to `workers` workers as
/// contiguous 2D blocks (see above). Every shard id appears exactly once
/// across the result; every worker owns at least one tile. Requires
/// 1 <= workers <= tile_rows * tile_cols.
std::vector<std::vector<u32>> assign_shard_blocks(u32 tile_rows, u32 tile_cols,
                                                  u32 workers);

/// NUMA node for a worker: contiguous worker blocks per node, so workers
/// with adjacent tile blocks share a node.
u32 worker_numa_node(u32 worker, u32 workers, u32 nodes);

/// Pins the calling thread to the given cpus. Best-effort: returns false
/// (and changes nothing) on failure, an empty cpu list, or non-Linux
/// hosts.
bool pin_current_thread_to_cpus(const std::vector<int>& cpus);

} // namespace fvdf::wse
