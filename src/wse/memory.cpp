#include "wse/memory.hpp"

#include <cstring>
#include <sstream>

#include "common/error.hpp"

namespace fvdf::wse {

PeMemory::PeMemory(u64 capacity_bytes, u64 reserved_bytes)
    : capacity_(capacity_bytes), reserved_(reserved_bytes) {
  FVDF_CHECK_MSG(reserved_ < capacity_, "reserve exceeds PE memory capacity");
  storage_.resize(capacity_ - reserved_, 0);
}

u32 PeMemory::alloc_raw(const std::string& name, u32 bytes) {
  // 4-byte aligned bump allocation.
  const u32 aligned = (bytes + 3u) & ~3u;
  if (used_ + aligned > capacity_ - reserved_) {
    std::ostringstream os;
    os << "PE memory overflow allocating '" << name << "' (" << bytes
       << " B): used " << used_ << " of " << (capacity_ - reserved_)
       << " allocatable B (capacity " << capacity_ << ", reserved " << reserved_
       << ")\n"
       << allocation_map();
    throw Error(os.str());
  }
  const u32 offset = static_cast<u32>(used_);
  used_ += aligned;
  allocations_.push_back({name, offset, aligned});
  return offset;
}

MemSpan PeMemory::alloc_f32(const std::string& name, u32 count) {
  const u32 offset_bytes = alloc_raw(name, count * 4u);
  return MemSpan{offset_bytes / 4u, count};
}

MemSpan PeMemory::alloc_bytes(const std::string& name, u32 count) {
  const u32 offset_bytes = alloc_raw(name, count);
  // For byte spans, offset_words carries the *byte* offset and length the
  // byte count; byte accessors interpret it that way.
  return MemSpan{offset_bytes, count};
}

f32 PeMemory::load(u32 word_offset) const {
  FVDF_CHECK_MSG(static_cast<u64>(word_offset) * 4 + 4 <= used_,
                 "load past allocated memory at word " << word_offset);
  f32 value;
  std::memcpy(&value, storage_.data() + word_offset * 4u, 4);
  return value;
}

void PeMemory::store(u32 word_offset, f32 value) {
  FVDF_CHECK_MSG(static_cast<u64>(word_offset) * 4 + 4 <= used_,
                 "store past allocated memory at word " << word_offset);
  std::memcpy(storage_.data() + word_offset * 4u, &value, 4);
}

void PeMemory::load_words(u32 word_offset, f32* dst, u32 count) const {
  FVDF_CHECK_MSG((static_cast<u64>(word_offset) + count) * 4 <= used_,
                 "load past allocated memory at words [" << word_offset << ", "
                                                         << word_offset + count << ")");
  std::memcpy(dst, storage_.data() + static_cast<u64>(word_offset) * 4u,
              static_cast<std::size_t>(count) * 4u);
}

void PeMemory::store_words(u32 word_offset, const f32* src, u32 count) {
  FVDF_CHECK_MSG((static_cast<u64>(word_offset) + count) * 4 <= used_,
                 "store past allocated memory at words [" << word_offset << ", "
                                                          << word_offset + count << ")");
  std::memcpy(storage_.data() + static_cast<u64>(word_offset) * 4u, src,
              static_cast<std::size_t>(count) * 4u);
}

f32* PeMemory::word_ptr(u32 word_offset) {
  FVDF_CHECK(static_cast<u64>(word_offset) * 4 < used_);
  return reinterpret_cast<f32*>(storage_.data() + word_offset * 4u);
}

const f32* PeMemory::word_ptr(u32 word_offset) const {
  FVDF_CHECK(static_cast<u64>(word_offset) * 4 < used_);
  return reinterpret_cast<const f32*>(storage_.data() + word_offset * 4u);
}

u8 PeMemory::load_byte(u32 byte_offset) const {
  FVDF_CHECK(byte_offset < used_);
  return storage_[byte_offset];
}

void PeMemory::store_byte(u32 byte_offset, u8 value) {
  FVDF_CHECK(byte_offset < used_);
  storage_[byte_offset] = value;
}

std::string PeMemory::allocation_map() const {
  std::ostringstream os;
  os << "allocation map (" << allocations_.size() << " entries):\n";
  for (const auto& alloc : allocations_)
    os << "  [" << alloc.offset_bytes << ", " << alloc.offset_bytes + alloc.size_bytes
       << ") " << alloc.size_bytes << " B  " << alloc.name << '\n';
  return os.str();
}

} // namespace fvdf::wse
