#include "wse/memory.hpp"

#include <cstring>
#include <sstream>

#include "common/error.hpp"

namespace fvdf::wse {

PeMemory::PeMemory(u64 capacity_bytes, u64 reserved_bytes)
    : capacity_(capacity_bytes), reserved_(reserved_bytes) {
  FVDF_CHECK_MSG(reserved_ < capacity_, "reserve exceeds PE memory capacity");
  storage_.resize(capacity_ - reserved_, 0);
}

u32 PeMemory::alloc_raw(const std::string& name, u32 bytes) {
  // 4-byte aligned bump allocation.
  const u32 aligned = (bytes + 3u) & ~3u;
  if (used_ + aligned > capacity_ - reserved_) {
    std::ostringstream os;
    os << "PE memory overflow allocating '" << name << "' (" << bytes
       << " B): used " << used_ << " of " << (capacity_ - reserved_)
       << " allocatable B (capacity " << capacity_ << ", reserved " << reserved_
       << ")\n"
       << allocation_map();
    throw Error(os.str());
  }
  const u32 offset = static_cast<u32>(used_);
  used_ += aligned;
  allocations_.push_back({name, offset, aligned});
  return offset;
}

MemSpan PeMemory::alloc_f32(const std::string& name, u32 count) {
  const u32 offset_bytes = alloc_raw(name, count * 4u);
  return MemSpan{offset_bytes / 4u, count};
}

MemSpan PeMemory::alloc_bytes(const std::string& name, u32 count) {
  const u32 offset_bytes = alloc_raw(name, count);
  // For byte spans, offset_words carries the *byte* offset and length the
  // byte count; byte accessors interpret it that way.
  return MemSpan{offset_bytes, count};
}

void PeMemory::bounds_fail(u32 word_offset, u32 count) const {
  std::ostringstream os;
  os << "access past allocated memory at words [" << word_offset << ", "
     << word_offset + count << "): " << used_ << " B allocated\n"
     << allocation_map();
  throw Error(os.str());
}

std::string PeMemory::allocation_map() const {
  std::ostringstream os;
  os << "allocation map (" << allocations_.size() << " entries):\n";
  for (const auto& alloc : allocations_)
    os << "  [" << alloc.offset_bytes << ", " << alloc.offset_bytes + alloc.size_bytes
       << ") " << alloc.size_bytes << " B  " << alloc.name << '\n';
  return os.str();
}

} // namespace fvdf::wse
