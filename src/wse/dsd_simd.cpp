#include "wse/dsd_simd.hpp"

namespace fvdf::wse::simd {

namespace {

// Scalar reference kernels. Deliberately plain loops: the compiler may
// auto-vectorize them with baseline SSE, which is still element-wise IEEE
// mul/add/sub and therefore bitwise-identical to both the naive loop and
// the AVX2 TU (no FMA contraction is possible — neither TU enables FMA).

void s_fill(f32* dst, f32 value, u32 n) {
  for (u32 i = 0; i < n; ++i) dst[i] = value;
}
void s_mov(f32* dst, const f32* src, u32 n) {
  for (u32 i = 0; i < n; ++i) dst[i] = src[i];
}
void s_add(f32* dst, const f32* a, const f32* b, u32 n) {
  for (u32 i = 0; i < n; ++i) dst[i] = a[i] + b[i];
}
void s_sub(f32* dst, const f32* a, const f32* b, u32 n) {
  for (u32 i = 0; i < n; ++i) dst[i] = a[i] - b[i];
}
void s_mul(f32* dst, const f32* a, const f32* b, u32 n) {
  for (u32 i = 0; i < n; ++i) dst[i] = a[i] * b[i];
}
void s_mul_imm(f32* dst, const f32* a, f32 value, u32 n) {
  for (u32 i = 0; i < n; ++i) dst[i] = a[i] * value;
}
void s_neg(f32* dst, const f32* a, u32 n) {
  for (u32 i = 0; i < n; ++i) dst[i] = -a[i];
}
void s_mac(f32* dst, const f32* acc, const f32* a, const f32* b, u32 n) {
  for (u32 i = 0; i < n; ++i) {
    const f32 prod = a[i] * b[i];
    dst[i] = acc[i] + prod;
  }
}
void s_mac_imm(f32* dst, const f32* acc, const f32* a, f32 value, u32 n) {
  for (u32 i = 0; i < n; ++i) {
    const f32 prod = a[i] * value;
    dst[i] = acc[i] + prod;
  }
}

constexpr Kernels kScalar{s_fill, s_mov,  s_add, s_sub,    s_mul,
                          s_mul_imm, s_neg, s_mac, s_mac_imm};

bool detect_avx2() {
#if defined(FVDF_HAVE_AVX2_TU) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const bool g_avx2 = detect_avx2();

} // namespace

const Kernels& scalar_kernels() { return kScalar; }

bool avx2_active() { return g_avx2; }

const Kernels& kernels() {
#ifdef FVDF_HAVE_AVX2_TU
  if (g_avx2) return avx2_kernels();
#endif
  return kScalar;
}

} // namespace fvdf::wse::simd
