#include "wse/router.hpp"

#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace fvdf::wse {

std::string Router::where() const {
  std::ostringstream os;
  if (has_coord_) {
    os << " at PE (" << coord_.x << ", " << coord_.y << ")";
  } else {
    os << " at PE (?)";
  }
  return os.str();
}

void Router::configure(Color color, ColorConfig config) {
  check_routable(color);
  FVDF_CHECK_MSG(!config.positions.empty(),
                 "router config for color " << static_cast<int>(color)
                                            << " needs >= 1 switch position" << where());
  // rx must be non-empty (a position nothing can enter is dead); tx may be
  // empty — a null route that deliberately discards, the edge-clipped form
  // of a transmit position whose partner PE does not exist.
  for (const auto& pos : config.positions)
    FVDF_CHECK_MSG(!pos.rx.empty(), "switch position of color "
                                        << static_cast<int>(color)
                                        << " must have a non-empty rx set" << where());
  auto& state = colors_[color];
  state.config = std::move(config);
  state.current = 0;
  state.configured = true;
  refresh_current(color);
}

void Router::refresh_current(Color color) {
  const State& state = colors_[color];
  const SwitchPosition& pos = state.config.positions[state.current];
  cur_rx_[color] = pos.rx;
  cur_tx_[color] = pos.tx;
}

void Router::unconfigured_fail(Color color, Dir from) const {
  FVDF_CHECK_MSG(false, "wavelet on unconfigured color "
                            << static_cast<int>(color) << " arriving from "
                            << to_string(from) << where());
  std::abort(); // unreachable: the check above always throws
}

void Router::misroute_fail(Color color, Dir from) const {
  FVDF_CHECK_MSG(false, "misrouted wavelet: color "
                            << static_cast<int>(color) << " arrived from "
                            << to_string(from) << " at switch position "
                            << colors_[color].current << where());
  std::abort(); // unreachable: the check above always throws
}

bool Router::is_configured(Color color) const {
  check_routable(color);
  return colors_[color].configured;
}

const ColorConfig& Router::config(Color color) const {
  check_routable(color);
  FVDF_CHECK_MSG(colors_[color].configured,
                 "no route installed for color " << static_cast<int>(color) << where());
  return colors_[color].config;
}

bool Router::may_transmit(Color color, Dir dir) const {
  check_routable(color);
  const auto& state = colors_[color];
  if (!state.configured) return false;
  for (const SwitchPosition& pos : state.config.positions)
    if (pos.tx.contains(dir)) return true;
  return false;
}

void Router::advance(ColorMask mask) {
  for (Color color = 0; color < kNumRoutableColors; ++color) {
    if ((mask & color_bit(color)) == 0) continue;
    auto& state = colors_[color];
    if (!state.configured) continue; // advancing unknown colors is a no-op
    const u32 last = static_cast<u32>(state.config.positions.size()) - 1;
    if (state.current < last) {
      ++state.current;
    } else if (state.config.ring_mode) {
      state.current = 0;
    } else {
      continue; // saturated: current position (and its cached masks) stand
    }
    refresh_current(color);
  }
}

u32 Router::position(Color color) const {
  check_routable(color);
  FVDF_CHECK(colors_[color].configured);
  return colors_[color].current;
}

} // namespace fvdf::wse
