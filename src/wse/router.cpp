#include "wse/router.hpp"

#include "common/error.hpp"

namespace fvdf::wse {

void Router::configure(Color color, ColorConfig config) {
  check_routable(color);
  FVDF_CHECK_MSG(!config.positions.empty(), "router config needs >= 1 switch position");
  for (const auto& pos : config.positions)
    FVDF_CHECK_MSG(!pos.rx.empty() && !pos.tx.empty(),
                   "switch position must have non-empty rx and tx sets");
  auto& state = colors_[color];
  state.config = std::move(config);
  state.current = 0;
  state.configured = true;
}

bool Router::is_configured(Color color) const {
  check_routable(color);
  return colors_[color].configured;
}

DirMask Router::route(Color color, Dir from) const {
  check_routable(color);
  const auto& state = colors_[color];
  FVDF_CHECK_MSG(state.configured,
                 "wavelet on unconfigured color " << static_cast<int>(color));
  const SwitchPosition& pos = state.config.positions[state.current];
  FVDF_CHECK_MSG(pos.rx.contains(from),
                 "misrouted wavelet: color " << static_cast<int>(color)
                                             << " arrived from " << to_string(from)
                                             << " at switch position " << state.current);
  return pos.tx;
}

bool Router::accepts(Color color, Dir from) const {
  check_routable(color);
  const auto& state = colors_[color];
  FVDF_CHECK_MSG(state.configured,
                 "wavelet on unconfigured color " << static_cast<int>(color));
  return state.config.positions[state.current].rx.contains(from);
}

void Router::advance(ColorMask mask) {
  for (Color color = 0; color < kNumRoutableColors; ++color) {
    if ((mask & color_bit(color)) == 0) continue;
    auto& state = colors_[color];
    if (!state.configured) continue; // advancing unknown colors is a no-op
    const u32 last = static_cast<u32>(state.config.positions.size()) - 1;
    if (state.current < last) {
      ++state.current;
    } else if (state.config.ring_mode) {
      state.current = 0;
    }
  }
}

u32 Router::position(Color color) const {
  check_routable(color);
  FVDF_CHECK(colors_[color].configured);
  return colors_[color].current;
}

} // namespace fvdf::wse
