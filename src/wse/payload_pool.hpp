#pragma once
// Pooled, reference-counted flit payload buffers.
//
// Every ctx_send used to allocate a fresh shared_ptr<vector<f32>> (two
// heap allocations: control block plus words) that died as soon as the
// last copy of the message was delivered. The pool recycles the vectors —
// capacity and all — through an intrusive free list, and replaces
// shared_ptr with an intrusive refcount, so a steady-state send costs no
// allocation at all and a broadcast fan-out costs one atomic increment
// instead of a control-block bump through a separate cache line.
//
// Ownership discipline (the parallel engine gives every shard its own
// pool): acquire() is single-consumer — only the owning shard's worker
// thread calls it, so the local free list needs no synchronization at
// all. Releases, by contrast, can come from any thread (a payload sent
// south is freed by the neighbor shard that delivered it), so the final
// release pushes the node onto a lock-free multi-producer stack
// (push-only CAS: no ABA) that the owner drains wholesale — one
// exchange(nullptr) — when its local list runs dry. The mutex the seed
// pool took on every acquire and release is gone from the hot path
// entirely.

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace fvdf::wse {

class PayloadPool;

namespace detail {
struct PayloadNode {
  std::vector<f32> words;
  std::atomic<u32> refs{0};
  PayloadPool* pool = nullptr;
  PayloadNode* next = nullptr; // free-list link, valid only while pooled
};
} // namespace detail

/// Shared handle to a pooled payload buffer. Copying bumps an intrusive
/// refcount; destroying the last reference returns the buffer to its pool
/// (thread-safe: the release path is lock-free).
class PayloadRef {
public:
  PayloadRef() = default;
  PayloadRef(const PayloadRef& other) : node_(other.node_) {
    if (node_) node_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  PayloadRef(PayloadRef&& other) noexcept : node_(other.node_) { other.node_ = nullptr; }
  PayloadRef& operator=(const PayloadRef& other) {
    PayloadRef copy(other);
    std::swap(node_, copy.node_);
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& other) noexcept {
    std::swap(node_, other.node_);
    return *this;
  }
  ~PayloadRef() { reset(); }

  // Inline null test: most PayloadRef destructions are of empty handles
  // (moved-from flits, control wavelets), and this sits on the per-event
  // path. The refcount drop + recycle stays out of line.
  void reset() {
    if (node_) release();
  }

  explicit operator bool() const { return node_ != nullptr; }
  const std::vector<f32>& operator*() const { return node_->words; }
  const std::vector<f32>* operator->() const { return &node_->words; }

  /// Mutable access to the words; only legal while this is the sole
  /// reference (filling a fresh buffer, fault injection before the message
  /// enters the fabric).
  std::vector<f32>& mutate();

private:
  friend class PayloadPool;
  explicit PayloadRef(detail::PayloadNode* node) : node_(node) {}
  void release(); // non-null drop path
  detail::PayloadNode* node_ = nullptr;
};

class PayloadPool {
public:
  PayloadPool() = default;
  ~PayloadPool();
  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;

  /// Returns an empty buffer with at least `reserve_words` capacity and a
  /// refcount of one. Reuses a recycled buffer when one is available.
  /// Single-consumer: only the pool's owning thread may call this.
  PayloadRef acquire(std::size_t reserve_words);

  /// Buffers currently parked in the free lists (diagnostics/tests; exact
  /// only while no release is in flight on another thread).
  std::size_t free_count() const {
    return free_count_.load(std::memory_order_relaxed);
  }

private:
  friend class PayloadRef;
  void recycle(detail::PayloadNode* node); // any thread

  static void delete_list(detail::PayloadNode* node);

  detail::PayloadNode* local_free_ = nullptr;            // owner thread only
  std::atomic<detail::PayloadNode*> remote_free_{nullptr}; // MPSC stack
  std::atomic<std::size_t> free_count_{0};
};

} // namespace fvdf::wse
