#include "wse/trace.hpp"

#include <sstream>

namespace fvdf::wse {

const char* to_string(TraceEvent event) {
  switch (event) {
  case TraceEvent::MessageInjected: return "inject";
  case TraceEvent::LinkHop: return "hop";
  case TraceEvent::RampDelivery: return "deliver";
  case TraceEvent::TaskRun: return "task";
  case TraceEvent::SwitchAdvance: return "advance";
  case TraceEvent::FlitStalled: return "stall";
  case TraceEvent::FaultDrop: return "FAULT-drop";
  case TraceEvent::FaultCorrupt: return "FAULT-corrupt";
  }
  return "?";
}

u64 TraceBuffer::count(TraceEvent event) const {
  u64 n = 0;
  for (const TraceRecord& record : records_)
    if (record.event == event) ++n;
  return n;
}

std::string TraceBuffer::summary() const {
  std::ostringstream os;
  os << total_ << " events";
  constexpr TraceEvent kAll[] = {
      TraceEvent::MessageInjected, TraceEvent::LinkHop,     TraceEvent::RampDelivery,
      TraceEvent::TaskRun,         TraceEvent::SwitchAdvance, TraceEvent::FlitStalled,
      TraceEvent::FaultDrop,       TraceEvent::FaultCorrupt};
  for (TraceEvent event : kAll) {
    const u64 n = count(event);
    if (n != 0) os << ' ' << to_string(event) << '=' << n;
  }
  return os.str();
}

} // namespace fvdf::wse
