#include "wse/trace.hpp"

#include <sstream>

namespace fvdf::wse {

const char* to_string(TraceEvent event) {
  switch (event) {
  case TraceEvent::MessageInjected: return "inject";
  case TraceEvent::LinkHop: return "hop";
  case TraceEvent::RampDelivery: return "deliver";
  case TraceEvent::TaskRun: return "task";
  case TraceEvent::SwitchAdvance: return "advance";
  case TraceEvent::FlitStalled: return "stall";
  case TraceEvent::FaultDrop: return "FAULT-drop";
  case TraceEvent::FaultCorrupt: return "FAULT-corrupt";
  }
  return "?";
}

TraceBuffer::TraceBuffer(const TraceBuffer& other) {
  std::lock_guard<std::mutex> lock(other.mutex_);
  capacity_ = other.capacity_;
  records_ = other.records_;
  total_ = other.total_;
}

TraceBuffer& TraceBuffer::operator=(const TraceBuffer& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mutex_, other.mutex_);
  capacity_ = other.capacity_;
  records_ = other.records_;
  total_ = other.total_;
  return *this;
}

void TraceBuffer::push(const TraceRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (records_.size() < capacity_) records_.push_back(record);
  ++total_;
}

std::vector<TraceRecord> TraceBuffer::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

u64 TraceBuffer::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

u64 TraceBuffer::count(TraceEvent event) const {
  std::lock_guard<std::mutex> lock(mutex_);
  u64 n = 0;
  for (const TraceRecord& record : records_)
    if (record.event == event) ++n;
  return n;
}

std::string TraceBuffer::summary() const {
  std::ostringstream os;
  os << total() << " events";
  constexpr TraceEvent kAll[] = {
      TraceEvent::MessageInjected, TraceEvent::LinkHop,     TraceEvent::RampDelivery,
      TraceEvent::TaskRun,         TraceEvent::SwitchAdvance, TraceEvent::FlitStalled,
      TraceEvent::FaultDrop,       TraceEvent::FaultCorrupt};
  for (TraceEvent event : kAll) {
    const u64 n = count(event);
    if (n != 0) os << ' ' << to_string(event) << '=' << n;
  }
  return os.str();
}

} // namespace fvdf::wse
