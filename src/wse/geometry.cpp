#include "wse/geometry.hpp"

#include "common/error.hpp"

namespace fvdf::wse {

const char* to_string(Dir dir) {
  switch (dir) {
  case Dir::Ramp: return "Ramp";
  case Dir::North: return "North";
  case Dir::East: return "East";
  case Dir::South: return "South";
  case Dir::West: return "West";
  }
  return "?";
}

Dir arrival_side(Dir dir) {
  switch (dir) {
  case Dir::North: return Dir::South;
  case Dir::South: return Dir::North;
  case Dir::East: return Dir::West;
  case Dir::West: return Dir::East;
  case Dir::Ramp: break;
  }
  throw Error("arrival_side: not a cardinal direction");
}

std::optional<PeCoord> neighbor(const PeCoord& at, Dir dir, i64 width, i64 height) {
  PeCoord n = at;
  switch (dir) {
  case Dir::North: n.y -= 1; break;
  case Dir::South: n.y += 1; break;
  case Dir::East: n.x += 1; break;
  case Dir::West: n.x -= 1; break;
  case Dir::Ramp: throw Error("neighbor: Ramp has no neighbor");
  }
  if (n.x < 0 || n.x >= width || n.y < 0 || n.y >= height) return std::nullopt;
  return n;
}

DirMask clip_to_fabric(DirMask mask, const PeCoord& at, i64 width, i64 height) {
  DirMask clipped;
  if (mask.contains(Dir::Ramp)) clipped = DirMask::of(Dir::Ramp);
  for (Dir dir : kCardinalDirs)
    if (mask.contains(dir) && neighbor(at, dir, width, height))
      clipped = DirMask(static_cast<u8>(clipped.bits() | DirMask::of(dir).bits()));
  return clipped;
}

} // namespace fvdf::wse
