#include "wse/worker_pool.hpp"

#include "wse/placement.hpp"

#ifndef FVDF_TELEMETRY_DISABLED
#include "telemetry/host_profiler.hpp"
#endif

namespace fvdf::wse {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Spinning only pays when every worker owns a core; oversubscribed hosts
/// (CI containers, laptops under load) are better off parking immediately.
u32 pick_spin_iters(u32 workers) {
  const u32 hw = std::thread::hardware_concurrency();
  return (hw != 0 && workers <= hw) ? 256 : 0;
}

} // namespace

void SpinBarrier::arrive_and_wait() {
  const u32 sense = sense_.load(std::memory_order_relaxed);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    arrived_.store(0, std::memory_order_relaxed);
    sense_.store(sense + 1, std::memory_order_release);
    sense_.notify_all();
    return;
  }
  for (u32 i = 0; i < spin_iters_; ++i) {
    if (sense_.load(std::memory_order_acquire) != sense) return;
    cpu_relax();
  }
  u32 cur = sense_.load(std::memory_order_acquire);
  while (cur == sense) {
    sense_.wait(cur, std::memory_order_acquire);
    cur = sense_.load(std::memory_order_acquire);
  }
}

FabricWorkerPool::FabricWorkerPool(u32 workers, WorkerPlacement placement)
    : workers_(workers), placement_(std::move(placement)),
      barrier_(workers, pick_spin_iters(workers)) {
  threads_.reserve(workers_ - 1);
  for (u32 id = 1; id < workers_; ++id)
    threads_.emplace_back([this, id] { worker_loop(id); });
}

FabricWorkerPool::~FabricWorkerPool() {
  stop_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void FabricWorkerPool::run_round(const PhaseFn& fn) {
  fn_ = &fn;
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  run_phases(0);
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void FabricWorkerPool::worker_loop(u32 id) {
  // Best-effort NUMA pinning before the first round; a failed pin leaves
  // the thread free-floating, which is always correct.
  if (id < placement_.worker_cpus.size())
    pin_current_thread_to_cpus(placement_.worker_cpus[id]);
  u64 seen = 0;
  for (;;) {
    u64 epoch = epoch_.load(std::memory_order_acquire);
    while (epoch == seen) {
      epoch_.wait(epoch, std::memory_order_acquire);
      epoch = epoch_.load(std::memory_order_acquire);
    }
    seen = epoch;
    if (stop_.load(std::memory_order_relaxed)) return;
    run_phases(id);
  }
}

void FabricWorkerPool::run_phases(u32 id) {
  // Both phases always reach both barriers, exception or not, so a throw
  // in one worker's window can never deadlock the others.
  const PhaseFn& fn = *fn_;
#ifndef FVDF_TELEMETRY_DISABLED
  // Timeline discipline (see HostProfiler's threading contract): worker w
  // writes only its own timeline, and only between its wake and its final
  // barrier arrival of the round. Worker 0's trailing enter(Drive) happens
  // after the last barrier — safe, it is the driver.
  telemetry::HostProfiler* const prof = profiler_;
  if (prof != nullptr)
    prof->timeline(id).enter(telemetry::HostState::Run, prof->now());
#endif
  try {
    fn(id, 0);
  } catch (...) {
    record_error();
  }
#ifndef FVDF_TELEMETRY_DISABLED
  if (prof != nullptr)
    prof->timeline(id).enter(telemetry::HostState::Barrier, prof->now());
#endif
  barrier_.arrive_and_wait();
#ifndef FVDF_TELEMETRY_DISABLED
  if (prof != nullptr)
    prof->timeline(id).enter(telemetry::HostState::Merge, prof->now());
#endif
  try {
    fn(id, 1);
  } catch (...) {
    record_error();
  }
#ifndef FVDF_TELEMETRY_DISABLED
  if (prof != nullptr)
    prof->timeline(id).enter(id == 0 ? telemetry::HostState::Barrier
                                     : telemetry::HostState::Park,
                             prof->now());
#endif
  barrier_.arrive_and_wait();
#ifndef FVDF_TELEMETRY_DISABLED
  if (prof != nullptr && id == 0)
    prof->timeline(0).enter(telemetry::HostState::Drive, prof->now());
#endif
}

void FabricWorkerPool::record_error() {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (!error_) error_ = std::current_exception();
}

} // namespace fvdf::wse
