#pragma once
// The SPMD program interface for simulated PEs.
//
// A PE program is event-driven, like CSL: it never loops waiting for data.
// It receives control when (a) the fabric starts (`on_start`) or (b) a task
// color activates — either a local activation or the completion callback of
// an asynchronous send/receive. All side effects go through the PeContext.

#include <algorithm>
#include <array>
#include <functional>
#include <memory>

#include "wse/color.hpp"
#include "wse/dsd.hpp"
#include "wse/geometry.hpp"
#include "wse/memory.hpp"
#include "wse/router.hpp"

namespace fvdf::wse {

/// Facilities a PE program can use while handling a task. Implemented by
/// the Fabric; handlers must not retain the reference past their return.
class PeContext {
public:
  virtual ~PeContext() = default;

  virtual PeCoord coord() const = 0;
  virtual i64 fabric_width() const = 0;
  virtual i64 fabric_height() const = 0;

  virtual PeMemory& memory() = 0;
  virtual DsdEngine& dsd() = 0;

  /// Installs a route for `color` on this PE's router.
  virtual void configure_router(Color color, ColorConfig config) = 0;

  /// Asynchronously sends `src` out on `color` (the router's current switch
  /// position decides where it goes). If `advance_after` is non-zero, a
  /// control wavelet trails the data and advances those colors' switch
  /// positions in every router traversed (Listing 1's mechanism).
  /// `completion` (if valid) activates locally once the message has left
  /// the ramp.
  virtual void send(Color color, Dsd src, ColorMask advance_after = 0,
                    Color completion = kInvalidColor) = 0;

  /// Sends a data-less control wavelet on `color` advancing `advance`.
  virtual void send_control(Color color, ColorMask advance) = 0;

  /// Registers an asynchronous receive: the next `dst.length` words
  /// arriving on `color` land in `dst`, then `completion` activates.
  virtual void recv(Color color, Dsd dst, Color completion) = 0;

  /// Activates a task color on this PE (local activation).
  virtual void activate(Color color) = 0;

  /// Advances switch positions on this PE's own router (the
  /// `mov32(fabric_control, ...)` of Listing 1).
  virtual void advance_local(ColorMask mask) = 0;

  /// Marks this PE finished; the fabric run completes when all PEs halt.
  virtual void halt() = 0;

  /// Current task-local time in cycles.
  virtual f64 now() const = 0;

  // --- telemetry hooks (no-ops unless the fabric has a collector; see
  // telemetry/collector.hpp and docs/observability.md) ---

  /// Declares that this PE's program entered solver phase `phase` (a
  /// telemetry::Phase value) at the current cycle cursor. Level-triggered:
  /// the phase stays in effect until the next mark.
  virtual void mark_phase(u8 phase) { (void)phase; }

  /// Reports solver progress (e.g. the global residual after iteration
  /// `iteration`). The telemetry layer records it from PE (0,0) only.
  virtual void note_progress(u64 iteration, f64 value) {
    (void)iteration;
    (void)value;
  }
};

/// Static declaration of a PE program's communication behavior, consumed
/// by the fabric verifier and the channel-lookahead planner
/// (src/analysis/). A program's routing tables are fully installed by
/// on_start, but sends and receives happen over its whole lifetime — the
/// manifest is how a program tells the verifier what its event-driven
/// future will do, the way a function signature declares effects its body
/// performs later.
struct ProgramManifest {
  ColorSet injects = 0;   // colors this PE may send on (ramp injections)
  ColorSet handles = 0;   // colors consumed here: a recv or an on_task case
  ColorSet activates = 0; // colors this PE may activate (incl. completions)
  ColorMask advances = 0; // routable colors advanced (control or local)
  // Lower bound on the data words of any message this PE injects on a
  // routable color (meaningful only where the matching `injects` bit is
  // set). 0 — the default, and what send_control implies — claims nothing,
  // which is always safe; a nonzero bound lets the lookahead planner
  // charge the link-batch time of the smallest possible crossing message
  // to a shard boundary. Declare through declare_inject so the bound and
  // the inject bit stay consistent.
  std::array<u16, kNumRoutableColors> min_inject_words{};

  /// Declares an injection on `color` whose messages always carry at least
  /// `min_words` data words (use 0 for control wavelets or unknown sizes).
  /// Repeat declarations keep the weakest bound.
  ProgramManifest& declare_inject(Color color, u32 min_words) {
    check_routable(color);
    const u16 words =
        static_cast<u16>(std::min<u32>(min_words, u16(0xffff)));
    min_inject_words[color] = color_set_contains(injects, color)
                                  ? std::min(min_inject_words[color], words)
                                  : words;
    injects |= color_set_bit(color);
    return *this;
  }

  ProgramManifest& operator|=(const ProgramManifest& other) {
    // Word bounds merge before the inject sets: a color only one side
    // injects keeps that side's bound, a shared color keeps the weaker one.
    for (Color c = 0; c < kNumRoutableColors; ++c) {
      if (!color_set_contains(other.injects, c)) continue;
      min_inject_words[c] = color_set_contains(injects, c)
                                ? std::min(min_inject_words[c],
                                           other.min_inject_words[c])
                                : other.min_inject_words[c];
    }
    injects |= other.injects;
    handles |= other.handles;
    activates |= other.activates;
    advances |= other.advances;
    return *this;
  }
};

namespace bc {
struct Program;
struct VmState;
} // namespace bc

class PeProgram {
public:
  virtual ~PeProgram() = default;
  /// Runs once at fabric start (cycle 0).
  virtual void on_start(PeContext& ctx) = 0;
  /// Runs when `color` activates (local activation or completion callback).
  virtual void on_task(PeContext& ctx, Color color) = 0;

  /// Bytecode-compiled programs expose their flat instruction stream and
  /// interpreter state (see wse/bytecode.hpp) so the fabric can dispatch
  /// task activations straight into the interpreter instead of through
  /// on_task. nullptr (the default) selects the legacy virtual path.
  virtual const bc::Program* bytecode() const { return nullptr; }
  virtual bc::VmState* bytecode_state() { return nullptr; }

  /// Static manifest for the verifier, queried *after* on_start has run
  /// (so it may depend on configuration established there). The default —
  /// an empty manifest — limits the verifier to what a recorded on_start
  /// reveals; programs with receives or sends in later task handlers
  /// should override it (compose the csl components' manifest helpers).
  virtual ProgramManifest manifest(PeCoord coord, i64 fabric_width,
                                   i64 fabric_height) const {
    (void)coord;
    (void)fabric_width;
    (void)fabric_height;
    return {};
  }
};

using ProgramFactory = std::function<std::unique_ptr<PeProgram>(PeCoord)>;

} // namespace fvdf::wse
