#include "wse/payload_pool.hpp"

#include "common/error.hpp"

namespace fvdf::wse {

void PayloadRef::release() {
  detail::PayloadNode* node = node_;
  node_ = nullptr;
  if (node->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
    node->pool->recycle(node);
}

std::vector<f32>& PayloadRef::mutate() {
  FVDF_CHECK_MSG(node_ != nullptr, "mutate() on a null payload");
  FVDF_CHECK_MSG(node_->refs.load(std::memory_order_relaxed) == 1,
                 "mutate() on a shared payload");
  return node_->words;
}

PayloadPool::~PayloadPool() {
  delete_list(local_free_);
  delete_list(remote_free_.load(std::memory_order_acquire));
}

void PayloadPool::delete_list(detail::PayloadNode* node) {
  while (node != nullptr) {
    detail::PayloadNode* next = node->next;
    delete node;
    node = next;
  }
}

PayloadRef PayloadPool::acquire(std::size_t reserve_words) {
  if (local_free_ == nullptr)
    local_free_ = remote_free_.exchange(nullptr, std::memory_order_acquire);
  detail::PayloadNode* node = local_free_;
  if (node != nullptr) {
    local_free_ = node->next;
    free_count_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    node = new detail::PayloadNode;
    node->pool = this;
  }
  node->next = nullptr;
  node->words.clear();
  node->words.reserve(reserve_words);
  node->refs.store(1, std::memory_order_relaxed);
  return PayloadRef(node);
}

void PayloadPool::recycle(detail::PayloadNode* node) {
  // Push-only Treiber stack: safe from any thread, immune to ABA (nothing
  // pops concurrently — the owner claims the whole stack at once).
  detail::PayloadNode* head = remote_free_.load(std::memory_order_relaxed);
  do {
    node->next = head;
  } while (!remote_free_.compare_exchange_weak(
      head, node, std::memory_order_release, std::memory_order_relaxed));
  free_count_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace fvdf::wse
