#include "wse/payload_pool.hpp"

#include "common/error.hpp"

namespace fvdf::wse {

void PayloadRef::reset() {
  if (!node_) return;
  detail::PayloadNode* node = node_;
  node_ = nullptr;
  if (node->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
    node->pool->recycle(node);
}

std::vector<f32>& PayloadRef::mutate() {
  FVDF_CHECK_MSG(node_ != nullptr, "mutate() on a null payload");
  FVDF_CHECK_MSG(node_->refs.load(std::memory_order_relaxed) == 1,
                 "mutate() on a shared payload");
  return node_->words;
}

PayloadPool::~PayloadPool() {
  detail::PayloadNode* node = free_;
  while (node != nullptr) {
    detail::PayloadNode* next = node->next;
    delete node;
    node = next;
  }
}

PayloadRef PayloadPool::acquire(std::size_t reserve_words) {
  detail::PayloadNode* node = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_ != nullptr) {
      node = free_;
      free_ = node->next;
      --free_count_;
    }
  }
  if (node == nullptr) {
    node = new detail::PayloadNode;
    node->pool = this;
  }
  node->next = nullptr;
  node->words.clear();
  node->words.reserve(reserve_words);
  node->refs.store(1, std::memory_order_relaxed);
  return PayloadRef(node);
}

std::size_t PayloadPool::free_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_count_;
}

void PayloadPool::recycle(detail::PayloadNode* node) {
  std::lock_guard<std::mutex> lock(mutex_);
  node->next = free_;
  free_ = node;
  ++free_count_;
}

} // namespace fvdf::wse
