#pragma once
// Colors: the WSE's routing/tasking identifiers. Wavelets are "annotated
// with a color for routing and indicating the type of a message" (Sec. III).
// Colors 0..23 are routable through the fabric; 24..30 are local-only task
// colors (activations within a PE), mirroring the real hardware's split.

#include "common/error.hpp"
#include "common/types.hpp"

namespace fvdf::wse {

using Color = u8;

constexpr Color kNumRoutableColors = 24;
constexpr Color kNumColors = 44; // 24 routable + 20 local task IDs
constexpr Color kInvalidColor = 0xff;

inline bool is_routable(Color color) { return color < kNumRoutableColors; }
inline bool is_local_only(Color color) {
  return color >= kNumRoutableColors && color < kNumColors;
}
inline bool is_valid(Color color) { return color < kNumColors; }

inline void check_routable(Color color) {
  FVDF_CHECK_MSG(is_routable(color),
                 "color " << static_cast<int>(color) << " is not routable (0.."
                          << static_cast<int>(kNumRoutableColors - 1) << ")");
}

inline void check_valid(Color color) {
  FVDF_CHECK_MSG(is_valid(color), "invalid color " << static_cast<int>(color));
}

/// Bitmask over routable colors, used by control wavelets to name the
/// switch positions they advance.
using ColorMask = u32;

inline ColorMask color_bit(Color color) {
  check_routable(color);
  return ColorMask{1} << color;
}

} // namespace fvdf::wse
