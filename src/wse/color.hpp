#pragma once
// Colors: the WSE's routing/tasking identifiers. Wavelets are "annotated
// with a color for routing and indicating the type of a message" (Sec. III).
// Colors 0..23 are routable through the fabric; 24..30 are local-only task
// colors (activations within a PE), mirroring the real hardware's split.

#include "common/error.hpp"
#include "common/types.hpp"

namespace fvdf::wse {

using Color = u8;

constexpr Color kNumRoutableColors = 24;
constexpr Color kNumColors = 44; // 24 routable + 20 local task IDs
constexpr Color kInvalidColor = 0xff;

inline bool is_routable(Color color) { return color < kNumRoutableColors; }
inline bool is_local_only(Color color) {
  return color >= kNumRoutableColors && color < kNumColors;
}
inline bool is_valid(Color color) { return color < kNumColors; }

inline void check_routable(Color color) {
  FVDF_CHECK_MSG(is_routable(color),
                 "color " << static_cast<int>(color) << " is not routable (0.."
                          << static_cast<int>(kNumRoutableColors - 1) << ")");
}

inline void check_valid(Color color) {
  FVDF_CHECK_MSG(is_valid(color), "invalid color " << static_cast<int>(color));
}

/// Bitmask over routable colors, used by control wavelets to name the
/// switch positions they advance.
using ColorMask = u32;

inline ColorMask color_bit(Color color) {
  check_routable(color);
  return ColorMask{1} << color;
}

/// Bitmask over *all* colors (routable and local task ids), used by the
/// static program verifier's manifests (see wse/program.hpp).
using ColorSet = u64;
static_assert(kNumColors <= 64, "ColorSet holds one bit per color");

inline ColorSet color_set_bit(Color color) {
  check_valid(color);
  return ColorSet{1} << color;
}

inline bool color_set_contains(ColorSet set, Color color) {
  return is_valid(color) && (set & (ColorSet{1} << color)) != 0;
}

} // namespace fvdf::wse
