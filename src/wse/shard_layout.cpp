#include "wse/shard_layout.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fvdf::wse {

namespace {

std::vector<i64> even_splits(i64 extent, u32 bands) {
  std::vector<i64> splits(bands + 1);
  for (u32 i = 0; i <= bands; ++i)
    splits[i] = extent * static_cast<i64>(i) / static_cast<i64>(bands);
  return splits;
}

/// Internal boundary cut of a (tr, tc) grid: tr-1 horizontal cuts of
/// `width` links each plus tc-1 vertical cuts of `height` links each. The
/// smaller the cut for a given tile count, the better the area/perimeter
/// ratio of the tiles.
i64 cut_links(u32 tr, u32 tc, i64 width, i64 height) {
  return static_cast<i64>(tr - 1) * width + static_cast<i64>(tc - 1) * height;
}

} // namespace

ShardLayout choose_shard_layout(i64 width, i64 height, ShardGrid grid) {
  FVDF_CHECK_MSG(width >= 1 && height >= 1, "fabric dims must be positive");
  const i64 area = width * height;
  // Tile-count budget: enough PEs per tile to amortize the per-round
  // bookkeeping, capped at kMaxShards. Explicit overrides may exceed it.
  const u32 budget = static_cast<u32>(std::clamp<i64>(
      area / kMinTilePes, 1, static_cast<i64>(kMaxShards)));

  u32 tile_rows = 0;
  u32 tile_cols = 0;
  const u32 forced_rows =
      grid.rows == 0 ? 0 : static_cast<u32>(std::min<i64>(grid.rows, height));
  const u32 forced_cols =
      grid.cols == 0 ? 0 : static_cast<u32>(std::min<i64>(grid.cols, width));
  if (forced_rows != 0 && forced_cols != 0) {
    tile_rows = forced_rows;
    tile_cols = forced_cols;
  } else if (forced_rows != 0 || forced_cols != 0) {
    // One dimension pinned: give the free dimension the rest of the
    // budget (parallelism first; the cut is fixed up to the free count).
    const u32 forced = forced_rows != 0 ? forced_rows : forced_cols;
    const i64 free_extent = forced_rows != 0 ? width : height;
    const u32 free = static_cast<u32>(std::clamp<i64>(
        budget / forced, 1, free_extent));
    tile_rows = forced_rows != 0 ? forced_rows : free;
    tile_cols = forced_cols != 0 ? forced_cols : free;
  } else {
    // Full cost model: maximize the tile count within the budget, then
    // minimize the boundary cut; remaining ties prefer the squarer grid
    // and finally the row-major (legacy strip) orientation.
    u32 best_tiles = 0;
    i64 best_cut = 0;
    for (u32 tr = 1; tr <= std::min<i64>(height, budget); ++tr) {
      for (u32 tc = 1; tc <= std::min<i64>(width, budget); ++tc) {
        const u32 tiles = tr * tc;
        if (tiles > budget) break;
        const i64 cut = cut_links(tr, tc, width, height);
        const bool better =
            tiles > best_tiles ||
            (tiles == best_tiles &&
             (cut < best_cut ||
              (cut == best_cut &&
               (std::max(tr, tc) < std::max(tile_rows, tile_cols) ||
                (std::max(tr, tc) == std::max(tile_rows, tile_cols) &&
                 tr > tile_rows)))));
        if (better) {
          best_tiles = tiles;
          best_cut = cut;
          tile_rows = tr;
          tile_cols = tc;
        }
      }
    }
  }

  FVDF_CHECK_MSG(tile_rows >= 1 && static_cast<i64>(tile_rows) <= height &&
                     tile_cols >= 1 && static_cast<i64>(tile_cols) <= width,
                 "degenerate shard grid " << tile_rows << "x" << tile_cols
                                          << " for " << width << "x" << height);

  ShardLayout layout;
  layout.tile_rows = tile_rows;
  layout.tile_cols = tile_cols;
  layout.row_splits = even_splits(height, tile_rows);
  layout.col_splits = even_splits(width, tile_cols);
  return layout;
}

} // namespace fvdf::wse
