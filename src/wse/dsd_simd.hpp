#pragma once
// Batched kernels under the DSD engine's contiguous (stride-1) fast path.
//
// Each kernel operates on raw fp32 arrays of `n` elements. The implementation
// is chosen once at startup: AVX2 when the build enabled it (see
// FVDF_NO_AVX2 in CMake) and the host CPU reports support, a plain scalar
// loop otherwise. Both produce bitwise-identical results — the AVX2 side
// uses separate multiply and add instructions (never fused multiply-add),
// so every element sees the same two-rounding sequence as the scalar code,
// and all kernels are purely element-wise (no reductions, no reassociation).
// The dot product stays in the DSD engine as a sequential scalar loop: its
// accumulation order is observable in fp32 and must not change.
//
// Aliasing contract: a source pointer is either exactly equal to `dst` or
// its `n`-element range is disjoint from dst's. The DSD engine falls back
// to the element-ordered scalar path for any other overlap (the
// hardware-faithful semantics for shifted self-copies).

#include "common/types.hpp"

namespace fvdf::wse::simd {

struct Kernels {
  void (*fill)(f32* dst, f32 value, u32 n);
  void (*mov)(f32* dst, const f32* src, u32 n);
  void (*add)(f32* dst, const f32* a, const f32* b, u32 n);
  void (*sub)(f32* dst, const f32* a, const f32* b, u32 n);
  void (*mul)(f32* dst, const f32* a, const f32* b, u32 n);
  void (*mul_imm)(f32* dst, const f32* a, f32 value, u32 n);
  void (*neg)(f32* dst, const f32* a, u32 n);
  /// dst[i] = acc[i] + a[i] * b[i], multiply-then-add (two roundings).
  void (*mac)(f32* dst, const f32* acc, const f32* a, const f32* b, u32 n);
  /// dst[i] = acc[i] + a[i] * value, multiply-then-add.
  void (*mac_imm)(f32* dst, const f32* acc, const f32* a, f32 value, u32 n);
};

/// The dispatched kernel table (resolved once, on first use).
const Kernels& kernels();

/// True when dispatch selected the AVX2 implementation (diagnostics).
bool avx2_active();

/// The two implementations, exposed for differential tests.
const Kernels& scalar_kernels();
#ifdef FVDF_HAVE_AVX2_TU
const Kernels& avx2_kernels(); // defined in dsd_simd_avx2.cpp
#endif

} // namespace fvdf::wse::simd
