#pragma once
// Per-PE router with CSL-style per-color switch positions.
//
// Each routable color has a small list of switch positions, each an
// {rx, tx} direction set (Listing 1 in the paper). Control wavelets advance
// the current position of a named set of colors; with ring_mode the
// position wraps back to 0 after the last one — exactly the mechanism the
// paper's localized broadcast (Fig. 4) alternates Sending/Receiving roles
// with.

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "wse/color.hpp"
#include "wse/geometry.hpp"

namespace fvdf::wse {

struct SwitchPosition {
  DirMask rx; // accepted input links
  DirMask tx; // output links (fanout > 1 = broadcast; empty = null route:
              // accepted wavelets are deliberately discarded — the
              // edge-clipped representation of a transmit step whose
              // partner PE does not exist)
};

struct ColorConfig {
  std::vector<SwitchPosition> positions;
  bool ring_mode = false;
};

class Router {
public:
  /// Attaches the owning PE's coordinate so routing errors are actionable
  /// without a trace dump (the Fabric sets this at construction; a bare
  /// Router in a unit test reports "PE (?)").
  void set_coord(PeCoord coord) {
    coord_ = coord;
    has_coord_ = true;
  }

  /// Installs the route for `color`; resets the current position to 0.
  void configure(Color color, ColorConfig config);

  bool is_configured(Color color) const;

  /// Full installed configuration of `color` (all switch positions), for
  /// the static verifier and diagnostics. Throws if unconfigured.
  const ColorConfig& config(Color color) const;

  /// Output links for a wavelet of `color` arriving from `from`. Throws if
  /// the color is unconfigured (a program bug, never silent). Inline fast
  /// path over the cached current-position masks: this and accepts() run
  /// once per flit hop, the hottest edge of the whole simulator.
  DirMask route(Color color, Dir from) const {
    check_routable(color);
    if (!colors_[color].configured) unconfigured_fail(color, from);
    if (!cur_rx_[color].contains(from)) misroute_fail(color, from);
    return cur_tx_[color];
  }

  /// True when the current switch position accepts wavelets from `from`.
  /// When false, hardware exerts backpressure: the wavelet stalls on its
  /// link until a control advances the switch (the fabric models this by
  /// parking and re-dispatching the flit).
  bool accepts(Color color, Dir from) const {
    check_routable(color);
    if (!colors_[color].configured) unconfigured_fail(color, from);
    return cur_rx_[color].contains(from);
  }

  /// True when *any* installed switch position of `color` can transmit on
  /// `dir` — a reachability over-approximation for static analyses (the
  /// channel-lookahead planner asks which colors can cross a shard
  /// boundary at all). False for unconfigured colors.
  bool may_transmit(Color color, Dir dir) const;

  /// Advances the switch position of every color in `mask` (control
  /// wavelet semantics / fabric_control writes). Without ring_mode the
  /// position saturates at the last one.
  void advance(ColorMask mask);

  /// Current switch position index of `color` (for tests/diagnostics).
  u32 position(Color color) const;

private:
  struct State {
    ColorConfig config;
    u32 current = 0;
    bool configured = false;
  };

  std::string where() const; // " at PE (x, y)" context for error messages
  [[noreturn]] void unconfigured_fail(Color color, Dir from) const;
  [[noreturn]] void misroute_fail(Color color, Dir from) const;
  void refresh_current(Color color); // syncs the mask caches below

  std::array<State, kNumRoutableColors> colors_{};
  // Rx/tx masks of each color's *current* switch position, maintained by
  // configure()/advance() so the per-flit route/accepts lookups touch two
  // flat 24-byte arrays instead of chasing the position vectors.
  std::array<DirMask, kNumRoutableColors> cur_rx_{};
  std::array<DirMask, kNumRoutableColors> cur_tx_{};
  PeCoord coord_{};
  bool has_coord_ = false;
};

} // namespace fvdf::wse
