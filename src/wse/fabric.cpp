#include "wse/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iterator>
#include <limits>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/host_profiler.hpp"
#include "wse/bytecode_interp.hpp"
#include "wse/placement.hpp"

// Telemetry hot-path hooks: a null-pointer test per site when compiled in,
// nothing at all under -DFVDF_TELEMETRY=OFF. `stmt` may use `collector`
// (the bound telemetry::FabricCollector&).
#ifdef FVDF_TELEMETRY_DISABLED
#define FVDF_TELEM(stmt) ((void)0)
#else
#define FVDF_TELEM(stmt)                                                       \
  do {                                                                         \
    if (telemetry_ != nullptr) {                                               \
      telemetry::FabricCollector& collector = *telemetry_;                     \
      stmt;                                                                    \
    }                                                                          \
  } while (0)
#endif

// Host-profiler hooks: same compile-out discipline as FVDF_TELEM. `stmt`
// may use `hprof` (the attached telemetry::HostProfiler&).
#ifdef FVDF_TELEMETRY_DISABLED
#define FVDF_HPROF(stmt) ((void)0)
#else
#define FVDF_HPROF(stmt)                                                       \
  do {                                                                         \
    if (host_prof_ != nullptr) {                                               \
      telemetry::HostProfiler& hprof = *host_prof_;                            \
      stmt;                                                                    \
    }                                                                          \
  } while (0)
#endif

namespace fvdf::wse {

namespace {
constexpr std::size_t link_slot(Dir dir) { return static_cast<std::size_t>(dir); }
constexpr f64 kInfCycles = std::numeric_limits<f64>::infinity();
// Worker requests far beyond the hardware's parallelism lose more to
// barrier latency than the extra shards can win back (measured: ~13% at 8
// workers on one core, BENCH_sim_throughput.json); degrade to the best
// smaller configuration. Up to this many workers the futex-parked pool's
// overhead stays negligible even oversubscribed, which keeps multi-worker
// engine paths exercised on small CI hosts.
constexpr u32 kMaxOversubscribedWorkers = 4;
} // namespace

/// PeContext implementation handed to program handlers for the duration of
/// one task execution.
class FabricPeContext final : public PeContext {
public:
  FabricPeContext(Fabric& fabric, Fabric::Shard& shard, Fabric::Pe& pe, f64& cursor)
      : fabric_(fabric), shard_(shard), pe_(pe), cursor_(cursor),
        engine_(pe.memory, pe.counters, fabric.timing(), cursor) {}

  PeCoord coord() const override { return pe_.coord; }
  i64 fabric_width() const override { return fabric_.width(); }
  i64 fabric_height() const override { return fabric_.height(); }

  PeMemory& memory() override { return pe_.memory; }
  DsdEngine& dsd() override { return engine_; }

  void configure_router(Color color, ColorConfig config) override {
    pe_.router.configure(color, std::move(config));
  }

  void send(Color color, Dsd src, ColorMask advance_after, Color completion) override {
    fabric_.ctx_send(shard_, pe_, color, src, advance_after, completion, cursor_);
  }

  void send_control(Color color, ColorMask advance) override {
    fabric_.ctx_send_control(shard_, pe_, color, advance, cursor_);
  }

  void recv(Color color, Dsd dst, Color completion) override {
    fabric_.ctx_recv(shard_, pe_, color, dst, completion, cursor_);
  }

  void activate(Color color) override {
    fabric_.ctx_activate(shard_, pe_, color, cursor_);
  }

  void advance_local(ColorMask mask) override {
    fabric_.advance_and_release(shard_, pe_, mask, cursor_);
  }

  void mark_phase(u8 phase) override {
    fabric_.ctx_mark_phase(shard_, pe_, phase, cursor_);
  }

  void note_progress(u64 iteration, f64 value) override {
    fabric_.ctx_note_progress(shard_, pe_, iteration, value, cursor_);
  }

  void halt() override {
    if (!pe_.halted) {
      pe_.halted = true;
      ++shard_.halted;
    }
  }

  f64 now() const override { return cursor_; }

private:
  Fabric& fabric_;
  Fabric::Shard& shard_;
  Fabric::Pe& pe_;
  f64& cursor_;
  DsdEngine engine_;
};

Fabric::Fabric(i64 width, i64 height, TimingParams timing, PeMemoryParams mem,
               ShardGrid grid)
    : width_(width), height_(height), timing_(timing), mem_params_(mem) {
  FVDF_CHECK_MSG(width >= 1 && height >= 1, "fabric dims must be positive");
  pes_.reserve(static_cast<std::size_t>(width * height));
  for (i64 y = 0; y < height; ++y)
    for (i64 x = 0; x < width; ++x) {
      pes_.push_back(std::make_unique<Pe>(PeCoord{x, y}, mem_params_));
      pes_.back()->router.set_coord(PeCoord{x, y});
    }

  // Rectangular tile shards (wse/shard_layout.hpp): a tensor product of
  // row and column bands chosen by the area/perimeter cost model (or the
  // explicit override). Row-major tile ids, so a 1D row-strip layout is
  // the degenerate tile_cols == 1 case with identical ids to the old
  // engine.
  const ShardLayout layout = choose_shard_layout(width_, height_, grid);
  tile_rows_ = layout.tile_rows;
  tile_cols_ = layout.tile_cols;
  // Shard holds atomics (SpscChannel) and is neither copyable nor movable:
  // size the vector once, never resize it.
  shards_ = std::vector<Shard>(layout.tiles());
  row_tile_.resize(static_cast<std::size_t>(height_));
  col_tile_.resize(static_cast<std::size_t>(width_));
  for (u32 tr = 0; tr < tile_rows_; ++tr)
    for (i64 row = layout.row_splits[tr]; row < layout.row_splits[tr + 1]; ++row)
      row_tile_[static_cast<std::size_t>(row)] = tr;
  for (u32 tc = 0; tc < tile_cols_; ++tc)
    for (i64 col = layout.col_splits[tc]; col < layout.col_splits[tc + 1]; ++col)
      col_tile_[static_cast<std::size_t>(col)] = tc;
  payload_pools_.reserve(shards_.size());
  for (u32 s = 0; s < static_cast<u32>(shards_.size()); ++s) {
    Shard& shard = shards_[s];
    shard.id = s;
    shard.tile_r = s / tile_cols_;
    shard.tile_c = s % tile_cols_;
    shard.row_begin = layout.row_splits[shard.tile_r];
    shard.row_end = layout.row_splits[shard.tile_r + 1];
    shard.col_begin = layout.col_splits[shard.tile_c];
    shard.col_end = layout.col_splits[shard.tile_c + 1];
    FVDF_CHECK_MSG(shard.row_end > shard.row_begin &&
                       shard.col_end > shard.col_begin,
                   "degenerate shard partition: empty tile " << s);
    payload_pools_.push_back(std::make_unique<PayloadPool>());
    shard.payloads = payload_pools_.back().get();
  }
  // Default lookahead: every existing boundary crossing-capable with no
  // minimum batch; absent sides marked non-crossing.
  lookahead_.out.assign(shards_.size(), {});
  for (Shard& shard : shards_)
    for (std::size_t side = 0; side < 4; ++side)
      if (neighbor_shard(shard, side) < 0)
        lookahead_.out[shard.id][side] = ChannelLookahead::Edge{false, 0};
}

Fabric::~Fabric() = default;

void Fabric::set_threads(u32 threads) {
  threads_ = threads == 0
                 ? std::max(1u, std::thread::hardware_concurrency())
                 : threads;
}

void Fabric::set_channel_lookahead(ChannelLookahead table) {
  FVDF_CHECK_MSG(table.out.size() == shards_.size(),
                 "channel-lookahead table has " << table.out.size()
                                                << " shards, fabric has "
                                                << shards_.size());
  for (const Shard& shard : shards_)
    for (std::size_t side = 0; side < 4; ++side) {
      const ChannelLookahead::Edge& edge = table.out[shard.id][side];
      FVDF_CHECK_MSG(edge.min_batch_cycles >= 0, "negative channel lookahead");
      if (neighbor_shard(shard, side) < 0)
        FVDF_CHECK_MSG(!edge.crosses,
                       "lookahead claims a crossing over the fabric edge of "
                       "shard " << shard.id);
    }
  lookahead_ = std::move(table);
}

void Fabric::set_telemetry(telemetry::FabricCollector* collector) {
  telemetry_ = (collector != nullptr && collector->enabled()) ? collector : nullptr;
  if (telemetry_ != nullptr) telemetry_->bind(width_, height_, shard_count());
}

std::vector<const bc::Program*> Fabric::distinct_bytecode_programs() const {
  std::vector<const bc::Program*> programs;
  for (const auto& pe : pes_) {
    const bc::Program* program = pe->bc_prog;
    if (program == nullptr) continue;
    if (std::find(programs.begin(), programs.end(), program) == programs.end())
      programs.push_back(program);
  }
  return programs;
}

void Fabric::load(const ProgramFactory& factory) {
  FVDF_CHECK_MSG(!loaded_, "fabric already loaded");
  loaded_ = true;
  for (auto& pe : pes_) {
    pe->program = factory(pe->coord);
    FVDF_CHECK(pe->program != nullptr);
    Event event;
    event.kind = EventKind::TaskStart;
    event.pe_index = pe_index(pe->coord.x, pe->coord.y);
    event.color = kInvalidColor; // sentinel: on_start
    event.t = 0;
    stamp(*pe, event);
    enqueue_local(shard_of(event.pe_index), std::move(event));
  }
}

void Fabric::enqueue_local(Shard& shard, Event&& event) {
  shard.events.push(std::move(event));
}

void Fabric::push_event(Shard& from, Event&& event) {
  Shard& dest = shard_of(event.pe_index);
  if (&dest == &from) {
    enqueue_local(from, std::move(event));
    return;
  }
  // Only link hops cross shards, and links connect cardinal neighbors, so
  // every crossing lands in an edge-adjacent tile (one tile-coordinate
  // step, never a diagonal); appending in emission order is what makes the
  // merge's tie-break (source shard, emission index) exact.
  std::size_t side;
  if (dest.tile_c == from.tile_c)
    side = dest.tile_r == from.tile_r + 1 ? cardinal_index(Dir::South)
                                          : cardinal_index(Dir::North);
  else
    side = dest.tile_c == from.tile_c + 1 ? cardinal_index(Dir::East)
                                          : cardinal_index(Dir::West);
  FVDF_CHECK_MSG(neighbor_shard(from, side) == static_cast<i64>(dest.id),
                 "cross-shard event skipped a tile: " << from.id << " -> "
                                                      << dest.id);
  from.out[side].slots.push_back(std::move(event));
}

Fabric::RunResult Fabric::run(f64 max_cycles) {
  FVDF_CHECK_MSG(loaded_, "run() before load()");
  RunResult result;

  // Fault schedules count injected messages fabric-globally; pinning the
  // run to one worker keeps that count order deterministic.
  const bool faults_active =
      faults_.drop_message_index != 0 || faults_.corrupt_message_index != 0;
  // Workers beyond the shard count would own no shard, and workers far
  // beyond the hardware's parallelism cost more in barrier latency than
  // they win (kMaxOversubscribedWorkers). The clamp (like every scheduling
  // decision here) is invisible in the results.
  const u32 hw = std::max(1u, std::thread::hardware_concurrency());
  const u32 workers =
      faults_active ? 1
                    : std::min({threads_, shard_count(),
                                std::max(hw, kMaxOversubscribedWorkers)});
  const bool parallel = workers > 1;
  if (parallel && (!pool_ || pool_->size() != workers ||
                   pool_workers_ != workers)) {
    // Topology-aware placement (wse/placement.hpp): workers own contiguous
    // 2D blocks of the tile grid, pinned near each other NUMA-node by
    // NUMA-node, and each worker first-touches its shards' payload arenas
    // so the backing pages land on its node. Placement affects locality
    // only — the round schedule, and therefore every result, is identical
    // under any assignment.
    worker_shards_ = assign_shard_blocks(tile_rows_, tile_cols_, workers);
    const HostTopology topo = HostTopology::detect();
    WorkerPlacement placement;
    if (topo.nodes() > 1 || !topo.node_cpus[0].empty()) {
      placement.worker_cpus.resize(workers);
      for (u32 w = 0; w < workers; ++w)
        placement.worker_cpus[w] =
            topo.node_cpus[worker_numa_node(w, workers, topo.nodes())];
    }
    pool_ = std::make_unique<FabricWorkerPool>(workers, placement);
    pool_workers_ = workers;
    pool_->run_round([&](u32 worker, u32 phase) {
      if (phase != 0) return;
      for (u32 s : worker_shards_[worker]) {
        // First-touch warmup: fault in a slab of each owned arena from the
        // worker that will run the shard.
        PayloadRef warm = shards_[s].payloads->acquire(4096);
        warm.mutate().assign(4096, 0.0f);
      }
    });
  }

#ifndef FVDF_TELEMETRY_DISABLED
  // Arm the host profiler for this run: the wall clock starts here (worker
  // 0 opens in Drive, covering the bound pass below), the shard layout is
  // exported for per-tile attribution, and the installed lookahead table
  // is snapshotted so the stall attribution can be read against the
  // windows actually in force.
  if (host_prof_ != nullptr) {
    host_prof_->begin_run(workers, shard_count(), threads_);
    std::vector<telemetry::HostTileRect> rects;
    rects.reserve(shards_.size());
    for (const Shard& shard : shards_)
      rects.push_back(telemetry::HostTileRect{shard.row_begin, shard.row_end,
                                              shard.col_begin, shard.col_end});
    host_prof_->set_layout(tile_rows_, tile_cols_, std::move(rects));
    std::vector<telemetry::HostLookaheadEdge> edges;
    for (const Shard& shard : shards_)
      for (std::size_t side = 0; side < 4; ++side) {
        const i64 nb = neighbor_shard(shard, side);
        if (nb < 0) continue;
        const ChannelLookahead::Edge& edge = lookahead_.out[shard.id][side];
        edges.push_back(telemetry::HostLookaheadEdge{
            shard.id, static_cast<u32>(nb),
            static_cast<u8>(side), edge.crosses, edge.min_batch_cycles});
      }
    host_prof_->set_lookahead(std::move(edges));
  }
  if (parallel) pool_->set_profiler(host_prof_);
#endif

  last_run_rounds_ = 0;
  // Force a fresh bound pass: timing parameters and the lookahead table may
  // have changed since the cached bounds were computed.
  horizons_valid_ = false;
  for (Shard& shard : shards_) {
    shard.dirty = true;
    update_shard_bounds(shard);
  }

  // Note: the loop drains the queues even after every PE has halted —
  // in-flight wavelets keep moving through the fabric (and into the stats)
  // exactly as they would on hardware; tasks on halted PEs are ignored.
  try {
    for (;;) {
      f64 tmin = kInfCycles;
      for (const Shard& shard : shards_) tmin = std::min(tmin, shard.tmin);
      if (tmin == kInfCycles) break; // drained
      if (tmin > max_cycles) {
        result.hit_cycle_limit = true;
        break;
      }
      compute_horizons(tmin);
      ++last_run_rounds_;

      if (parallel) {
        pool_->run_round([&](u32 worker, u32 phase) {
          for (u32 s : worker_shards_[worker]) {
            if (phase == 0)
              round_phase_a(shards_[s], max_cycles);
            else
              round_phase_b(shards_[s]);
          }
        });
      } else {
#ifndef FVDF_TELEMETRY_DISABLED
        if (host_prof_ != nullptr) {
          // Serial engine, same timeline taxonomy: phase A is Run, phase B
          // is Merge, everything between rounds is Drive. No barriers, no
          // parks.
          telemetry::HostWorkerTimeline& timeline = host_prof_->timeline(0);
          timeline.enter(telemetry::HostState::Run, host_prof_->now());
          for (Shard& shard : shards_) round_phase_a(shard, max_cycles);
          timeline.enter(telemetry::HostState::Merge, host_prof_->now());
          for (Shard& shard : shards_) round_phase_b(shard);
          timeline.enter(telemetry::HostState::Drive, host_prof_->now());
        } else {
          for (Shard& shard : shards_) round_phase_a(shard, max_cycles);
          for (Shard& shard : shards_) round_phase_b(shard);
        }
#else
        for (Shard& shard : shards_) round_phase_a(shard, max_cycles);
        for (Shard& shard : shards_) round_phase_b(shard);
#endif
      }
      FVDF_HPROF(hprof.accumulate_round());
      if (trace_) flush_traces();
    }
  } catch (...) {
    // Surface whatever the window produced before the throw (kernel
    // FVDF_CHECKs propagate to the caller, as in the serial engine).
    if (trace_) flush_traces();
    FVDF_HPROF(hprof.end_run());
    throw;
  }
  if (trace_) flush_traces();
  FVDF_HPROF(hprof.end_run());

  stats_ = FabricStats{};
  now_ = 0;
  i64 halted = 0;
  for (const Shard& shard : shards_) {
    stats_.messages_sent += shard.stats.messages_sent;
    stats_.wavelet_hops += shard.stats.wavelet_hops;
    stats_.word_hops += shard.stats.word_hops;
    stats_.words_delivered += shard.stats.words_delivered;
    stats_.words_dropped += shard.stats.words_dropped;
    stats_.control_wavelets += shard.stats.control_wavelets;
    stats_.tasks_run += shard.stats.tasks_run;
    stats_.events_processed += shard.stats.events_processed;
    stats_.flits_stalled += shard.stats.flits_stalled;
    now_ = std::max(now_, shard.now);
    halted += shard.halted;
  }
  result.cycles = now_;
  result.all_halted = halted == static_cast<i64>(pes_.size());
  return result;
}

void Fabric::compute_horizons(f64 tmin_global) {
  // A shard may process everything strictly below the earliest cycle at
  // which a neighbor's pending work could possibly place a wavelet across
  // their shared boundary (the neighbor's emission bound, maintained by
  // update_shard_bounds). Horizons are a function of the event state, the
  // geometry and the lookahead table only — never of the worker count —
  // which is the determinism argument in one sentence.
  const std::size_t n = shards_.size();
  // Quiet-neighborhood fast path: bounds are the only engine input that
  // moves between rounds (geometry and the lookahead table are fixed for
  // the duration of a run), so when no shard's tmin or bounds changed the
  // stored horizons are still exactly right — skip the fixed point. Purely
  // a recomputation saving: the reused values are bit-identical to what a
  // full pass would produce, at any thread count.
  bool any_changed = !horizons_valid_;
  for (Shard& shard : shards_) {
    any_changed |= shard.bounds_changed;
    shard.bounds_changed = false;
  }
  if (any_changed) {
    const f64 hop = timing_.hop_latency_cycles;
    // Per-shard emission bounds only see the shard's own heap, but
    // causality chains hop tile to tile: an event two tiles away can cross
    // into this one after cascading through a neighbor. Propagate bounds
    // transitively over the directed tile-boundary graph with a min-plus
    // fixed point: reach_[s][d] bounds when anything can next cross out of
    // shard s through side d — either s's own pending work (the emission
    // bound), or a cascade entering s through some other side e and
    // traversing the tile (at least one hop per row or column spanned,
    // plus the outgoing boundary's minimum batch). U-turns (e == d's
    // opposite entry, i.e. re-crossing the same boundary back) are
    // excluded: a wavelet that enters through side e cannot leave through
    // e's own boundary edge without a reflection, which cardinal routing
    // forbids within the window. Without the propagation, a drained tile
    // would report an infinite bound and let its far neighbor run ahead of
    // a cascade still working its way across the grid (e.g. the all-reduce
    // column walk, which empties every other shard).
    reach_.assign(n, {kInfCycles, kInfCycles, kInfCycles, kInfCycles});
    for (std::size_t i = 0; i < n; ++i) {
      const Shard& shard = shards_[i];
      for (std::size_t d = 0; d < 4; ++d)
        if (neighbor_shard(shard, d) >= 0 && lookahead_.out[i][d].crosses)
          reach_[i][d] = shard.bound[d];
    }
    // Relaxation: Bellman-Ford over the directed boundary edges. Distances
    // only decrease and every simple path has < 4n edges; the changed flag
    // exits as soon as a sweep is a no-op (typically 2-3 sweeps).
    for (std::size_t iter = 0; iter < 4 * n; ++iter) {
      bool changed = false;
      for (std::size_t i = 0; i < n; ++i) {
        const Shard& shard = shards_[i];
        for (std::size_t d = 0; d < 4; ++d) {
          if (neighbor_shard(shard, d) < 0 || !lookahead_.out[i][d].crosses)
            continue; // no such directed boundary edge
          // Entering through side e (from neighbor nb's opposite boundary)
          // and leaving through side d spans the tile's rows (vertical
          // pass-through), its columns (horizontal), or a single boundary
          // PE hop (perpendicular turn — and the U-turn echo, e == d: the
          // router cannot reflect a wavelet, but an arrival's trailing
          // control can release a parked flit pointed straight back across
          // the boundary it came from, one hop away, with no task dispatch
          // in between; excluding this path is exactly the cross-round echo
          // that broke serial equivalence in the 1D engine).
          for (std::size_t e = 0; e < 4; ++e) {
            const i64 nb = neighbor_shard(shard, e);
            if (nb < 0) continue;
            const f64 inbound =
                reach_[static_cast<std::size_t>(nb)][opposite_cardinal(e)];
            if (inbound == kInfCycles) continue;
            f64 span;
            if (e == opposite_cardinal(d))
              span = (d == cardinal_index(Dir::North) ||
                      d == cardinal_index(Dir::South))
                         ? static_cast<f64>(shard.row_end - shard.row_begin)
                         : static_cast<f64>(shard.col_end - shard.col_begin);
            else
              span = 1; // perpendicular turn or U-turn echo: one hop
            const f64 via =
                inbound + span * hop + lookahead_.out[i][d].min_batch_cycles;
            if (via < reach_[i][d]) {
              reach_[i][d] = via;
              changed = true;
            }
          }
        }
      }
      if (!changed) break;
    }
    for (std::size_t i = 0; i < n; ++i) {
      Shard& shard = shards_[i];
      f64 horizon = kInfCycles;
      for (std::size_t e = 0; e < 4; ++e) {
        const i64 nb = neighbor_shard(shard, e);
        if (nb < 0) continue;
        horizon = std::min(
            horizon, reach_[static_cast<std::size_t>(nb)][opposite_cardinal(e)]);
      }
      shard.horizon = horizon;
    }
    horizons_valid_ = true;
  }
  bool progress = false;
  for (const Shard& shard : shards_) progress |= shard.tmin < shard.horizon;
  if (progress) return;
  // Degenerate timing (zero hop latency) can pin every bound to the global
  // minimum. Processing the globally earliest event is always safe; open
  // the window a representable sliver for exactly the shards that hold it.
  // The bump is a function of the event state alone (still deterministic),
  // and it leaves the stored horizons stale — invalidate them.
  const f64 bumped = std::nextafter(tmin_global, kInfCycles);
  for (Shard& shard : shards_)
    if (shard.tmin == tmin_global) shard.horizon = std::max(shard.horizon, bumped);
  horizons_valid_ = false;
}

void Fabric::round_phase_a(Shard& shard, f64 max_cycles) {
#ifndef FVDF_TELEMETRY_DISABLED
  if (host_prof_ != nullptr) {
    // Stall classification: a shard either worked (window admitted events),
    // was starved (heap empty — no local work exists), or was closed out by
    // its lookahead window. The last case splits in phase B on whether
    // inbound traffic actually arrived (backpressure) or the installed
    // table was simply conservative (window-limited). Exactly one bin per
    // shard per round, so the bins sum to the round count.
    telemetry::HostShardStats& hs = host_prof_->shard(shard.id);
    const bool starved = shard.events.empty();
    const u64 before = shard.stats.events_processed;
    const f64 t0 = host_prof_->now();
    process_window(shard, shard.horizon, max_cycles);
    const f64 busy = host_prof_->now() - t0;
    const u64 delta = shard.stats.events_processed - before;
    hs.last_round_busy_seconds = busy;
    hs.last_round_events = delta;
    hs.busy_seconds += busy;
    hs.events += delta;
    if (delta > 0)
      ++hs.rounds_worked;
    else if (starved)
      ++hs.rounds_starved;
    else
      hs.pending_limited = true; // resolved against inbound in phase B
    for (SpscChannel& channel : shard.out) {
      hs.outbound_events += channel.slots.size();
      channel.publish();
    }
    return;
  }
#endif
  process_window(shard, shard.horizon, max_cycles);
  for (SpscChannel& channel : shard.out) channel.publish();
}

void Fabric::round_phase_b(Shard& shard) {
  const u32 inbound = merge_inbound(shard);
  update_shard_bounds(shard);
#ifndef FVDF_TELEMETRY_DISABLED
  if (host_prof_ != nullptr) {
    telemetry::HostShardStats& hs = host_prof_->shard(shard.id);
    hs.inbound_events += inbound;
    if (hs.pending_limited) {
      hs.pending_limited = false;
      if (inbound > 0)
        ++hs.rounds_backpressure;
      else
        ++hs.rounds_window_limited;
    }
  }
#else
  (void)inbound;
#endif
}

void Fabric::process_window(Shard& shard, f64 horizon, f64 max_cycles) {
  bool any = false;
  while (!shard.events.empty()) {
    const Event& top = shard.events.top();
    if (top.t >= horizon || top.t > max_cycles) break;
    Event event = shard.events.pop();
    shard.now = std::max(shard.now, event.t);
    ++shard.stats.events_processed;
    any = true;
    switch (event.kind) {
    case EventKind::FlitArrive: handle_flit_arrive(shard, std::move(event)); break;
    case EventKind::TaskStart: handle_task_start(shard, event); break;
    }
  }
  // A shard idle up to its horizon leaves the heap untouched: its bounds
  // stay valid and phase B skips the rescan entirely (adaptive fast path).
  if (any) shard.dirty = true;
}

u32 Fabric::merge_inbound(Shard& dest) {
  // Gather order is irrelevant to results: the sort below uses the full
  // (t, src, seq) key, which is unique per event and stamped at emission.
  constexpr std::array<std::size_t, 4> kInboundSides = {
      cardinal_index(Dir::North), cardinal_index(Dir::West),
      cardinal_index(Dir::East), cardinal_index(Dir::South)};
  std::array<SpscChannel*, 4> inbound{};
  std::array<u32, 4> counts{};
  u32 total = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    const i64 nb = neighbor_shard(dest, kInboundSides[k]);
    if (nb < 0) continue;
    // The neighbor's channel pointing back at us: its side opposite ours.
    SpscChannel& channel =
        shards_[static_cast<std::size_t>(nb)]
            .out[opposite_cardinal(kInboundSides[k])];
    inbound[k] = &channel;
    counts[k] = channel.published.load(std::memory_order_acquire);
    total += counts[k];
  }
  if (total == 0) return 0;

  // Gather, then sort ascending under the engine's total event order
  // (time, emitting PE, emission index) — independent of the thread count,
  // the shard layout and the channel gather order.
  dest.merge_scratch.clear();
  for (std::size_t k = 0; k < 4; ++k)
    for (u32 i = 0; i < counts[k]; ++i)
      dest.merge_scratch.push_back(&inbound[k]->slots[i]);
  std::sort(dest.merge_scratch.begin(), dest.merge_scratch.end(),
            [](const Event* a, const Event* b) {
              if (a->t != b->t) return a->t < b->t;
              if (a->src != b->src) return a->src < b->src;
              return a->seq < b->seq;
            });

  // Bulk-load: the staging buffer is sorted ascending under the heap's
  // comparator, so an empty heap absorbs it with no sift work at all and a
  // busy one with a single make_heap.
  dest.merge_sorted.clear();
  dest.merge_sorted.reserve(total);
  for (Event* event : dest.merge_scratch)
    dest.merge_sorted.push_back(std::move(*event));
  dest.events.bulk_push(std::make_move_iterator(dest.merge_sorted.begin()),
                        std::make_move_iterator(dest.merge_sorted.end()));
  dest.dirty = true;

  for (std::size_t k = 0; k < 4; ++k) {
    if (inbound[k] == nullptr || counts[k] == 0) continue;
    inbound[k]->slots.clear();
    inbound[k]->published.store(0, std::memory_order_relaxed);
  }
  return total;
}

void Fabric::update_shard_bounds(Shard& shard) {
  if (!shard.dirty) return;
  shard.dirty = false;
  const f64 old_tmin = shard.tmin;
  const std::array<f64, 4> old_bound = shard.bound;
  shard.tmin = shard.events.empty() ? kInfCycles : shard.events.top().t;

  std::array<ChannelLookahead::Edge, 4> edge;
  bool any_crossing = false;
  for (std::size_t d = 0; d < 4; ++d) {
    edge[d] = neighbor_shard(shard, d) >= 0
                  ? lookahead_.out[shard.id][d]
                  : ChannelLookahead::Edge{false, 0};
    any_crossing |= edge[d].crosses;
  }
  std::array<f64, 4> bound = {kInfCycles, kInfCycles, kInfCycles, kInfCycles};
  if (!shard.events.empty() && any_crossing) {
    const f64 hop = timing_.hop_latency_cycles;
    const f64 dispatch = timing_.task_dispatch_cycles;
    // Emission bound of one pending event toward a boundary `d` link-hops
    // away whose slowest-possible crossing takes min_batch link cycles.
    // Every causal chain out of the event either re-forwards its own flit
    // (one hop_latency + its own batch time per hop), releases a parked
    // flit via its trailing control (batch unknown, but >= the boundary
    // minimum when it crosses), or passes through a task dispatch before
    // any new wavelet exists. Conservative in every case; see
    // docs/simulator.md for the induction.
    const auto emission_bound = [&](const Event& e, f64 d, f64 min_batch,
                                    f64 own_batch) {
      f64 c = e.t + d * hop + min_batch;
      if (e.kind == EventKind::TaskStart) return c + dispatch;
      if (e.flit.advance_after != 0) return c;
      return c + std::min(std::max(d * own_batch - min_batch, 0.0), dispatch);
    };
    // No contribution can undercut the earliest event crossing the nearest
    // row or column: once every wanted bound touches its floor the scan
    // can stop.
    std::array<f64, 4> floor_at;
    std::array<bool, 4> want;
    u32 wanted = 0;
    for (std::size_t d = 0; d < 4; ++d) {
      floor_at[d] = shard.tmin + hop + edge[d].min_batch_cycles;
      want[d] = edge[d].crosses;
      wanted += want[d] ? 1u : 0u;
    }
    for (const Event& e : shard.events.items()) {
      if (wanted == 0) break;
      const i64 row = e.pe_index / width_;
      const i64 col = e.pe_index % width_;
      const f64 own_batch =
          e.kind == EventKind::FlitArrive && e.flit.data
              ? static_cast<f64>(e.flit.data->size()) / timing_.words_per_cycle_link
              : 0;
      // Link hops from the event's PE to just across each boundary.
      const std::array<f64, 4> dist = {
          static_cast<f64>(row - shard.row_begin + 1), // North
          static_cast<f64>(shard.col_end - col),       // East
          static_cast<f64>(shard.row_end - row),       // South
          static_cast<f64>(col - shard.col_begin + 1), // West
      };
      for (std::size_t d = 0; d < 4; ++d) {
        if (!want[d]) continue;
        bound[d] = std::min(
            bound[d],
            emission_bound(e, dist[d], edge[d].min_batch_cycles, own_batch));
        if (bound[d] <= floor_at[d]) {
          want[d] = false;
          --wanted;
        }
      }
    }
  }
  shard.bound = bound;
  // Feed the quiet-neighborhood detector (compute_horizons): a rescan that
  // lands on identical values leaves the horizon inputs untouched.
  if (shard.tmin != old_tmin || shard.bound != old_bound)
    shard.bounds_changed = true;
}

void Fabric::flush_traces() {
  trace_scratch_.clear();
  for (Shard& shard : shards_) {
    trace_scratch_.insert(trace_scratch_.end(), shard.trace.begin(),
                          shard.trace.end());
    shard.trace.clear();
  }
  if (trace_scratch_.empty()) return;
  // Stable: same-time records keep shard-major order, so the merged stream
  // is deterministic and identical at any thread count.
  std::stable_sort(trace_scratch_.begin(), trace_scratch_.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.cycles < b.cycles;
                   });
  for (const TraceRecord& record : trace_scratch_) trace_(record);
}

void Fabric::advance_and_release(Shard& shard, Pe& pe, ColorMask mask, f64 t) {
  pe.router.advance(mask);
  for (Color color = 0; color < kNumRoutableColors; ++color) {
    if ((mask & color_bit(color)) == 0) continue;
    auto& parked = pe.stalled[color];
    if (parked.empty()) continue;
    // Flits the new position accepts re-dispatch in FIFO order; the rest
    // re-park directly — never through the event queue — so a switch
    // program cycling through rejecting positions cannot inflate
    // events_processed or the trace volume.
    std::deque<Pe::StalledFlit> retry;
    retry.swap(parked);
    while (!retry.empty()) {
      Pe::StalledFlit entry = std::move(retry.front());
      retry.pop_front();
      if (!pe.router.accepts(color, entry.from)) {
        parked.push_back(std::move(entry));
        continue;
      }
      FVDF_TELEM(collector.activity(pe_index(pe.coord.x, pe.coord.y))
                     .stall_cycles += t - entry.parked_at);
      dispatch_flit(shard, pe, entry.from, std::move(entry.flit), t);
    }
  }
}

void Fabric::handle_flit_arrive(Shard& shard, Event&& event) {
  Pe& pe = at(event.pe_index);
  Flit& flit = event.flit;
  // Backpressure: a wavelet whose arrival link is not in the color's
  // current rx set waits on that link until the switch advances.
  if (!pe.router.accepts(flit.color, event.from)) {
    ++shard.stats.flits_stalled;
    emit_trace(shard, TraceEvent::FlitStalled, event.t, pe.coord, flit.color,
               flit.data ? static_cast<u32>(flit.data->size()) : 0);
    FVDF_TELEM(++collector.activity(event.pe_index).stalls);
    pe.stalled[flit.color].push_back(
        Pe::StalledFlit{event.from, std::move(flit), event.t});
    return;
  }
  dispatch_flit(shard, pe, event.from, std::move(flit), event.t);
}

void Fabric::dispatch_flit(Shard& shard, Pe& pe, Dir from, Flit&& flit, f64 t) {
  const DirMask tx = pe.router.route(flit.color, from);
  const u64 words = flit.data ? flit.data->size() : 0;
  const f64 batch_cycles = static_cast<f64>(words) / timing_.words_per_cycle_link;

  if (tx.contains(Dir::Ramp)) deliver_to_ramp(shard, pe, flit, t);

  // A null route (empty tx, the edge-clipped form of an off-fabric
  // transmit) sinks the wavelet here; account its words like an edge drop
  // so traffic identities (delivered + dropped) are route-shape agnostic.
  if (tx.empty()) shard.stats.words_dropped += words;

  for (Dir dir : kCardinalDirs) {
    if (!tx.contains(dir)) continue;
    const auto nb = neighbor(pe.coord, dir, width_, height_);
    if (!nb) {
      shard.stats.words_dropped += words;
      continue;
    }
    f64& free_at = pe.link_free_at[link_slot(dir)];
    const f64 start = std::max(t, free_at);
    free_at = start + batch_cycles;
    Event forward;
    forward.kind = EventKind::FlitArrive;
    forward.pe_index = pe_index(nb->x, nb->y);
    forward.from = arrival_side(dir);
    forward.flit = flit; // payload refcount bump, no copy of the words
    forward.t = start + timing_.hop_latency_cycles + batch_cycles;
    stamp(pe, forward);
    push_event(shard, std::move(forward));
    ++shard.stats.wavelet_hops;
    shard.stats.word_hops += words;
    FVDF_TELEM({
      telemetry::PeActivity& a =
          collector.activity(pe_index(pe.coord.x, pe.coord.y));
      a.tx_words[link_slot(dir)] += words;
      ++a.tx_messages[link_slot(dir)];
    });
    emit_trace(shard, TraceEvent::LinkHop, t, pe.coord, flit.color,
               static_cast<u32>(words));
  }

  // The trailing control wavelet advances this router *after* the data was
  // routed under the pre-advance switch position — and may release flits
  // that were stalled waiting for exactly this advance.
  if (flit.advance_after != 0) {
    const ColorMask advance = flit.advance_after;
    const Color color = flit.color;
    flit = Flit{}; // release the payload before re-dispatching parked flits
    advance_and_release(shard, pe, advance, t);
    ++shard.stats.control_wavelets;
    emit_trace(shard, TraceEvent::SwitchAdvance, t, pe.coord, color, 0);
  }
}

void Fabric::deliver_to_ramp(Shard& shard, Pe& pe, const Flit& flit, f64 t) {
  if (!flit.data) return; // control-only wavelets carry no payload
  const std::vector<f32>& words = *flit.data;
  pe.inbox[flit.color].append(words.data(), words.size());
  emit_trace(shard, TraceEvent::RampDelivery, t, pe.coord, flit.color,
             static_cast<u32>(words.size()));
  feed_recv_descriptors(shard, pe, flit.color, t);
}

void Fabric::feed_recv_descriptors(Shard& shard, Pe& pe, Color color, f64 t) {
  auto& inbox = pe.inbox[color];
  auto& queue = pe.recv_queues[color];
  while (!queue.empty() && !inbox.empty()) {
    RecvDesc& desc = queue.front();
    const u32 want = desc.dst.length - desc.filled;
    const u32 take = static_cast<u32>(
        std::min<std::size_t>(want, inbox.size()));
    if (take > 0) {
      const f32* words = inbox.data();
      if (desc.dst.stride == 1) {
        pe.memory.store_words(desc.dst.offset + desc.filled, words, take);
      } else {
        for (u32 i = 0; i < take; ++i) {
          const i64 word = static_cast<i64>(desc.dst.offset) +
                           static_cast<i64>(desc.filled + i) * desc.dst.stride;
          pe.memory.store(static_cast<u32>(word), words[i]);
        }
      }
      inbox.consume(take);
      desc.filled += take;
      pe.counters.record(Opcode::FMOV, take, /*fabric_loads=*/take, 0);
      shard.stats.words_delivered += take;
      FVDF_TELEM(collector.activity(pe_index(pe.coord.x, pe.coord.y)).rx_words +=
                 take);
    }
    if (desc.filled == desc.dst.length) {
      Event event;
      event.kind = EventKind::TaskStart;
      event.pe_index = pe_index(pe.coord.x, pe.coord.y);
      event.color = desc.completion;
      event.t = t;
      stamp(pe, event);
      push_event(shard, std::move(event));
      queue.pop_front();
    } else {
      break; // inbox drained, descriptor still hungry
    }
  }
}

void Fabric::handle_task_start(Shard& shard, const Event& event) {
  Pe& pe = at(event.pe_index);
  if (pe.halted) return;
  if (pe.busy_until > event.t) {
    Event retry = event;
    retry.t = pe.busy_until;
    stamp(pe, retry); // a fresh emission: re-keyed at its new time
    push_event(shard, std::move(retry));
    return;
  }
  run_task(shard, pe, event.color, event.t);
}

void Fabric::run_task(Shard& shard, Pe& pe, Color color, f64 t) {
  f64 cursor = t + timing_.task_dispatch_cycles;
  FabricPeContext ctx(*this, shard, pe, cursor);
  ++shard.stats.tasks_run;
  emit_trace(shard, TraceEvent::TaskRun, t, pe.coord, color, 0);
  if (color == kInvalidColor) {
    pe.program->on_start(ctx);
    // Bytecode-compiled programs expose their instruction stream after
    // setup; cache it so later activations skip the virtual on_task and
    // dispatch straight into the interpreter.
    pe.bc_prog = pe.program->bytecode();
    pe.bc_state = pe.program->bytecode_state();
  } else if (pe.bc_prog != nullptr) {
    const u16 pc = pe.bc_state->handler[color];
    FVDF_CHECK_MSG(pc != bc::kNoPc, "bytecode program: unexpected task color "
                                        << static_cast<int>(color));
#ifndef FVDF_TELEMETRY_DISABLED
    // Profiled runs dispatch through the sampling instantiation of the
    // interpreter (one countdown decrement per instruction); unprofiled
    // runs keep the default instantiation, which contains no sampling code.
    if (host_prof_ != nullptr)
      bc::run(ctx, *pe.bc_state, *pe.bc_prog, pc,
              &host_prof_->pc_sampler(shard.id));
    else
      bc::run(ctx, *pe.bc_state, *pe.bc_prog, pc);
#else
    bc::run(ctx, *pe.bc_state, *pe.bc_prog, pc);
#endif
  } else {
    pe.program->on_task(ctx, color);
  }
  pe.busy_until = cursor;
  shard.now = std::max(shard.now, cursor);
  FVDF_TELEM({
    telemetry::PeActivity& a =
        collector.activity(pe_index(pe.coord.x, pe.coord.y));
    ++a.tasks;
    a.busy_cycles += cursor - t;
    collector.observe_task_cycles(shard.id, cursor - t);
  });
}

void Fabric::ctx_send(Shard& shard, Pe& pe, Color color, Dsd src,
                      ColorMask advance_after, Color completion, f64& cursor) {
  check_routable(color);
  FVDF_CHECK_MSG(src.length > 0, "empty send");
  PayloadRef payload = shard.payloads->acquire(src.length);
  {
    std::vector<f32>& words = payload.mutate();
    if (src.stride == 1) {
      words.resize(src.length);
      pe.memory.load_words(src.offset, words.data(), src.length);
    } else {
      for (u32 i = 0; i < src.length; ++i) {
        const i64 word =
            static_cast<i64>(src.offset) + static_cast<i64>(i) * src.stride;
        words.push_back(pe.memory.load(static_cast<u32>(word)));
      }
    }
  }
  pe.counters.record(Opcode::FMOV, src.length, 0, /*fabric_stores=*/src.length);

  // Fault injection (deterministic, counted over data messages; runs with
  // a single worker — see run()).
  if (faults_.drop_message_index != 0 || faults_.corrupt_message_index != 0) {
    ++injected_data_messages_;
    if (injected_data_messages_ == faults_.drop_message_index) {
      emit_trace(shard, TraceEvent::FaultDrop, cursor, pe.coord, color, src.length);
      // The message vanishes on the link; the send "completes" locally (the
      // sender cannot tell), but no receiver will ever see the data.
      cursor += timing_.send_setup_cycles;
      ++shard.stats.messages_sent;
      if (completion != kInvalidColor) ctx_activate(shard, pe, completion, cursor);
      return;
    }
    if (injected_data_messages_ == faults_.corrupt_message_index) {
      emit_trace(shard, TraceEvent::FaultCorrupt, cursor, pe.coord, color,
                 src.length);
      std::vector<f32>& words = payload.mutate();
      if (!words.empty()) {
        u32 bits;
        std::memcpy(&bits, words.data(), 4);
        bits ^= (1u << (faults_.corrupt_bit & 31));
        std::memcpy(words.data(), &bits, 4);
      }
    }
  }

  emit_trace(shard, TraceEvent::MessageInjected, cursor, pe.coord, color,
             src.length);
  cursor += timing_.send_setup_cycles;
  f64& ramp_free = pe.link_free_at[link_slot(Dir::Ramp)];
  const f64 start = std::max(cursor, ramp_free);
  const f64 batch_cycles = static_cast<f64>(src.length) / timing_.words_per_cycle_link;
  ramp_free = start + batch_cycles;

  Event event;
  event.kind = EventKind::FlitArrive;
  event.pe_index = pe_index(pe.coord.x, pe.coord.y);
  event.from = Dir::Ramp;
  event.flit = Flit{color, std::move(payload), advance_after};
  event.t = start + batch_cycles;
  stamp(pe, event);
  push_event(shard, std::move(event));
  ++shard.stats.messages_sent;
  if (advance_after != 0) ++shard.stats.control_wavelets;
  FVDF_TELEM({
    telemetry::PeActivity& a =
        collector.activity(pe_index(pe.coord.x, pe.coord.y));
    a.tx_words[link_slot(Dir::Ramp)] += src.length;
    ++a.tx_messages[link_slot(Dir::Ramp)];
  });

  if (completion != kInvalidColor) {
    Event done;
    done.kind = EventKind::TaskStart;
    done.pe_index = pe_index(pe.coord.x, pe.coord.y);
    done.color = completion;
    done.t = start + batch_cycles;
    stamp(pe, done);
    push_event(shard, std::move(done));
  }
}

void Fabric::ctx_send_control(Shard& shard, Pe& pe, Color color, ColorMask advance,
                              f64& cursor) {
  check_routable(color);
  FVDF_CHECK(advance != 0);
  cursor += timing_.send_setup_cycles;
  f64& ramp_free = pe.link_free_at[link_slot(Dir::Ramp)];
  const f64 start = std::max(cursor, ramp_free);
  ramp_free = start + 1.0;

  Event event;
  event.kind = EventKind::FlitArrive;
  event.pe_index = pe_index(pe.coord.x, pe.coord.y);
  event.from = Dir::Ramp;
  event.flit = Flit{color, PayloadRef{}, advance};
  event.t = start + 1.0;
  stamp(pe, event);
  push_event(shard, std::move(event));
  ++shard.stats.messages_sent;
  FVDF_TELEM(++collector.activity(pe_index(pe.coord.x, pe.coord.y))
                   .tx_messages[link_slot(Dir::Ramp)]);
}

void Fabric::ctx_recv(Shard& shard, Pe& pe, Color color, Dsd dst, Color completion,
                      f64 cursor) {
  check_routable(color);
  check_valid(completion);
  FVDF_CHECK_MSG(dst.length > 0, "empty receive");
  pe.recv_queues[color].push_back(RecvDesc{dst, 0, completion});
  // Words that raced ahead of the descriptor are sitting in the inbox.
  feed_recv_descriptors(shard, pe, color, cursor);
}

void Fabric::ctx_activate(Shard& shard, Pe& pe, Color color, f64 cursor) {
  check_valid(color);
  Event event;
  event.kind = EventKind::TaskStart;
  event.pe_index = pe_index(pe.coord.x, pe.coord.y);
  event.color = color;
  event.t = cursor;
  stamp(pe, event);
  push_event(shard, std::move(event));
}

void Fabric::ctx_mark_phase(Shard& shard, Pe& pe, u8 phase, f64 cursor) {
  (void)shard;
  (void)pe;
  (void)phase;
  (void)cursor;
  FVDF_TELEM({
    const i64 idx = pe_index(pe.coord.x, pe.coord.y);
    if (collector.samples_pe(idx)) collector.mark_phase(shard.id, idx, phase, cursor);
  });
}

void Fabric::ctx_note_progress(Shard& shard, Pe& pe, u64 iteration, f64 value,
                               f64 cursor) {
  (void)shard;
  (void)pe;
  (void)iteration;
  (void)value;
  (void)cursor;
  FVDF_TELEM(collector.note_progress(shard.id, pe_index(pe.coord.x, pe.coord.y),
                                     iteration, value, cursor));
}

void Fabric::check_host_coord(i64 x, i64 y) const {
  FVDF_CHECK_MSG(x >= 0 && x < width_ && y >= 0 && y < height_,
                 "PE coordinate (" << x << ", " << y << ") outside the "
                                   << width_ << "x" << height_ << " fabric");
}

PeMemory& Fabric::pe_memory(i64 x, i64 y) {
  check_host_coord(x, y);
  return at(pe_index(x, y)).memory;
}

const Router& Fabric::pe_router(i64 x, i64 y) const {
  check_host_coord(x, y);
  return pes_[static_cast<std::size_t>(y * width_ + x)]->router;
}

const OpCounters& Fabric::pe_counters(i64 x, i64 y) const {
  check_host_coord(x, y);
  return pes_[static_cast<std::size_t>(y * width_ + x)]->counters;
}

OpCounters Fabric::total_counters() const {
  OpCounters total;
  for (const auto& pe : pes_) total += pe->counters;
  return total;
}

} // namespace fvdf::wse
