#include "wse/fabric.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/log.hpp"

namespace fvdf::wse {

namespace {
constexpr std::size_t link_slot(Dir dir) { return static_cast<std::size_t>(dir); }
} // namespace

/// PeContext implementation handed to program handlers for the duration of
/// one task execution.
class FabricPeContext final : public PeContext {
public:
  FabricPeContext(Fabric& fabric, Fabric::Pe& pe, f64& cursor)
      : fabric_(fabric), pe_(pe), cursor_(cursor),
        engine_(pe.memory, pe.counters, fabric.timing(), cursor) {}

  PeCoord coord() const override { return pe_.coord; }
  i64 fabric_width() const override { return fabric_.width(); }
  i64 fabric_height() const override { return fabric_.height(); }

  PeMemory& memory() override { return pe_.memory; }
  DsdEngine& dsd() override { return engine_; }

  void configure_router(Color color, ColorConfig config) override {
    pe_.router.configure(color, std::move(config));
  }

  void send(Color color, Dsd src, ColorMask advance_after, Color completion) override {
    fabric_.ctx_send(pe_, color, src, advance_after, completion, cursor_);
  }

  void send_control(Color color, ColorMask advance) override {
    fabric_.ctx_send_control(pe_, color, advance, cursor_);
  }

  void recv(Color color, Dsd dst, Color completion) override {
    fabric_.ctx_recv(pe_, color, dst, completion, cursor_);
  }

  void activate(Color color) override { fabric_.ctx_activate(pe_, color, cursor_); }

  void advance_local(ColorMask mask) override {
    fabric_.advance_and_release(pe_, mask, cursor_);
  }

  void halt() override {
    if (!pe_.halted) {
      pe_.halted = true;
      ++fabric_.halted_count_;
    }
  }

  f64 now() const override { return cursor_; }

private:
  Fabric& fabric_;
  Fabric::Pe& pe_;
  f64& cursor_;
  DsdEngine engine_;
};

Fabric::Fabric(i64 width, i64 height, TimingParams timing, PeMemoryParams mem)
    : width_(width), height_(height), timing_(timing), mem_params_(mem) {
  FVDF_CHECK_MSG(width >= 1 && height >= 1, "fabric dims must be positive");
  pes_.reserve(static_cast<std::size_t>(width * height));
  for (i64 y = 0; y < height; ++y)
    for (i64 x = 0; x < width; ++x)
      pes_.push_back(std::make_unique<Pe>(PeCoord{x, y}, mem_params_));
}

Fabric::~Fabric() = default;

void Fabric::load(const ProgramFactory& factory) {
  FVDF_CHECK_MSG(!loaded_, "fabric already loaded");
  loaded_ = true;
  for (auto& pe : pes_) {
    pe->program = factory(pe->coord);
    FVDF_CHECK(pe->program != nullptr);
    Event event;
    event.kind = EventKind::TaskStart;
    event.pe_index = pe_index(pe->coord.x, pe->coord.y);
    event.color = kInvalidColor; // sentinel: on_start
    event.t = 0;
    push_event(std::move(event));
  }
}

void Fabric::push_event(Event event) {
  event.seq = next_seq_++;
  events_.push(std::move(event));
}

Fabric::RunResult Fabric::run(f64 max_cycles) {
  FVDF_CHECK_MSG(loaded_, "run() before load()");
  RunResult result;
  // Note: the loop drains the queue even after every PE has halted —
  // in-flight wavelets keep moving through the fabric (and into the stats)
  // exactly as they would on hardware; tasks on halted PEs are ignored.
  while (!events_.empty()) {
    const Event event = events_.top();
    if (event.t > max_cycles) {
      result.hit_cycle_limit = true;
      break;
    }
    events_.pop();
    now_ = std::max(now_, event.t);
    ++stats_.events_processed;
    switch (event.kind) {
    case EventKind::FlitArrive: handle_flit_arrive(event); break;
    case EventKind::TaskStart: handle_task_start(event); break;
    }
  }
  result.cycles = now_;
  result.all_halted = halted_count_ == static_cast<i64>(pes_.size());
  return result;
}

void Fabric::advance_and_release(Pe& pe, ColorMask mask, f64 t) {
  pe.router.advance(mask);
  for (Color color = 0; color < kNumRoutableColors; ++color) {
    if ((mask & color_bit(color)) == 0) continue;
    auto& parked = pe.stalled[color];
    if (parked.empty()) continue;
    // Re-dispatch in FIFO order; any flit the new position still rejects
    // will simply park again.
    std::deque<Pe::StalledFlit> retry;
    retry.swap(parked);
    for (auto& entry : retry) {
      Event event;
      event.kind = EventKind::FlitArrive;
      event.pe_index = pe_index(pe.coord.x, pe.coord.y);
      event.from = entry.from;
      event.flit = std::move(entry.flit);
      event.t = t;
      push_event(std::move(event));
    }
  }
}

void Fabric::handle_flit_arrive(const Event& event) {
  Pe& pe = at(event.pe_index);
  const Flit& flit = event.flit;
  // Backpressure: a wavelet whose arrival link is not in the color's
  // current rx set waits on that link until the switch advances.
  if (!pe.router.accepts(flit.color, event.from)) {
    pe.stalled[flit.color].push_back(Pe::StalledFlit{event.from, flit});
    ++stats_.flits_stalled;
    emit_trace(TraceEvent::FlitStalled, event.t, pe.coord, flit.color,
               flit.data ? static_cast<u32>(flit.data->size()) : 0);
    return;
  }
  const DirMask tx = pe.router.route(flit.color, event.from);
  const u64 words = flit.data ? flit.data->size() : 0;
  const f64 batch_cycles = static_cast<f64>(words) / timing_.words_per_cycle_link;

  if (tx.contains(Dir::Ramp)) deliver_to_ramp(pe, flit, event.t);

  for (Dir dir : kCardinalDirs) {
    if (!tx.contains(dir)) continue;
    const auto nb = neighbor(pe.coord, dir, width_, height_);
    if (!nb) {
      stats_.words_dropped += words;
      continue;
    }
    f64& free_at = pe.link_free_at[link_slot(dir)];
    const f64 start = std::max(event.t, free_at);
    free_at = start + batch_cycles;
    Event forward;
    forward.kind = EventKind::FlitArrive;
    forward.pe_index = pe_index(nb->x, nb->y);
    forward.from = arrival_side(dir);
    forward.flit = flit;
    forward.t = start + timing_.hop_latency_cycles + batch_cycles;
    push_event(std::move(forward));
    ++stats_.wavelet_hops;
    stats_.word_hops += words;
    emit_trace(TraceEvent::LinkHop, event.t, pe.coord, flit.color,
               static_cast<u32>(words));
  }

  // The trailing control wavelet advances this router *after* the data was
  // routed under the pre-advance switch position — and may release flits
  // that were stalled waiting for exactly this advance.
  if (flit.advance_after != 0) {
    advance_and_release(pe, flit.advance_after, event.t);
    ++stats_.control_wavelets;
    emit_trace(TraceEvent::SwitchAdvance, event.t, pe.coord, flit.color, 0);
  }
}

void Fabric::deliver_to_ramp(Pe& pe, const Flit& flit, f64 t) {
  if (!flit.data) return; // control-only wavelets carry no payload
  auto& inbox = pe.inbox[flit.color];
  for (f32 word : *flit.data) inbox.push_back(word);
  emit_trace(TraceEvent::RampDelivery, t, pe.coord, flit.color,
             static_cast<u32>(flit.data->size()));
  feed_recv_descriptors(pe, flit.color, t);
}

void Fabric::feed_recv_descriptors(Pe& pe, Color color, f64 t) {
  auto& inbox = pe.inbox[color];
  auto& queue = pe.recv_queues[color];
  while (!queue.empty() && !inbox.empty()) {
    RecvDesc& desc = queue.front();
    u32 moved = 0;
    while (desc.filled < desc.dst.length && !inbox.empty()) {
      const i64 word = static_cast<i64>(desc.dst.offset) +
                       static_cast<i64>(desc.filled) * desc.dst.stride;
      pe.memory.store(static_cast<u32>(word), inbox.front());
      inbox.pop_front();
      ++desc.filled;
      ++moved;
    }
    if (moved > 0) {
      pe.counters.record(Opcode::FMOV, moved, /*fabric_loads=*/moved, 0);
      stats_.words_delivered += moved;
    }
    if (desc.filled == desc.dst.length) {
      Event event;
      event.kind = EventKind::TaskStart;
      event.pe_index = pe_index(pe.coord.x, pe.coord.y);
      event.color = desc.completion;
      event.t = t;
      push_event(std::move(event));
      queue.pop_front();
    } else {
      break; // inbox drained, descriptor still hungry
    }
  }
}

void Fabric::handle_task_start(const Event& event) {
  Pe& pe = at(event.pe_index);
  if (pe.halted) return;
  if (pe.busy_until > event.t) {
    Event retry = event;
    retry.t = pe.busy_until;
    push_event(std::move(retry));
    return;
  }
  run_task(pe, event.color, event.t);
}

void Fabric::run_task(Pe& pe, Color color, f64 t) {
  f64 cursor = t + timing_.task_dispatch_cycles;
  FabricPeContext ctx(*this, pe, cursor);
  ++stats_.tasks_run;
  emit_trace(TraceEvent::TaskRun, t, pe.coord, color, 0);
  if (color == kInvalidColor) {
    pe.program->on_start(ctx);
  } else {
    pe.program->on_task(ctx, color);
  }
  pe.busy_until = cursor;
  now_ = std::max(now_, cursor);
}

void Fabric::ctx_send(Pe& pe, Color color, Dsd src, ColorMask advance_after,
                      Color completion, f64& cursor) {
  check_routable(color);
  FVDF_CHECK_MSG(src.length > 0, "empty send");
  auto payload = std::make_shared<std::vector<f32>>();
  payload->reserve(src.length);
  for (u32 i = 0; i < src.length; ++i) {
    const i64 word = static_cast<i64>(src.offset) + static_cast<i64>(i) * src.stride;
    payload->push_back(pe.memory.load(static_cast<u32>(word)));
  }
  pe.counters.record(Opcode::FMOV, src.length, 0, /*fabric_stores=*/src.length);

  // Fault injection (deterministic, counted over data messages).
  ++injected_data_messages_;
  if (faults_.drop_message_index != 0 &&
      injected_data_messages_ == faults_.drop_message_index) {
    emit_trace(TraceEvent::FaultDrop, cursor, pe.coord, color, src.length);
    // The message vanishes on the link; the send "completes" locally (the
    // sender cannot tell), but no receiver will ever see the data.
    cursor += timing_.send_setup_cycles;
    ++stats_.messages_sent;
    if (completion != kInvalidColor) ctx_activate(pe, completion, cursor);
    return;
  }
  if (faults_.corrupt_message_index != 0 &&
      injected_data_messages_ == faults_.corrupt_message_index &&
      !payload->empty()) {
    emit_trace(TraceEvent::FaultCorrupt, cursor, pe.coord, color, src.length);
    u32 bits;
    std::memcpy(&bits, payload->data(), 4);
    bits ^= (1u << (faults_.corrupt_bit & 31));
    std::memcpy(payload->data(), &bits, 4);
  }

  emit_trace(TraceEvent::MessageInjected, cursor, pe.coord, color, src.length);
  cursor += timing_.send_setup_cycles;
  f64& ramp_free = pe.link_free_at[link_slot(Dir::Ramp)];
  const f64 start = std::max(cursor, ramp_free);
  const f64 batch_cycles = static_cast<f64>(src.length) / timing_.words_per_cycle_link;
  ramp_free = start + batch_cycles;

  Event event;
  event.kind = EventKind::FlitArrive;
  event.pe_index = pe_index(pe.coord.x, pe.coord.y);
  event.from = Dir::Ramp;
  event.flit = Flit{color, std::move(payload), advance_after};
  event.t = start + batch_cycles;
  push_event(std::move(event));
  ++stats_.messages_sent;
  if (advance_after != 0) ++stats_.control_wavelets;

  if (completion != kInvalidColor) {
    Event done;
    done.kind = EventKind::TaskStart;
    done.pe_index = pe_index(pe.coord.x, pe.coord.y);
    done.color = completion;
    done.t = start + batch_cycles;
    push_event(std::move(done));
  }
}

void Fabric::ctx_send_control(Pe& pe, Color color, ColorMask advance, f64& cursor) {
  check_routable(color);
  FVDF_CHECK(advance != 0);
  cursor += timing_.send_setup_cycles;
  f64& ramp_free = pe.link_free_at[link_slot(Dir::Ramp)];
  const f64 start = std::max(cursor, ramp_free);
  ramp_free = start + 1.0;

  Event event;
  event.kind = EventKind::FlitArrive;
  event.pe_index = pe_index(pe.coord.x, pe.coord.y);
  event.from = Dir::Ramp;
  event.flit = Flit{color, nullptr, advance};
  event.t = start + 1.0;
  push_event(std::move(event));
  ++stats_.messages_sent;
}

void Fabric::ctx_recv(Pe& pe, Color color, Dsd dst, Color completion, f64 cursor) {
  check_routable(color);
  check_valid(completion);
  FVDF_CHECK_MSG(dst.length > 0, "empty receive");
  pe.recv_queues[color].push_back(RecvDesc{dst, 0, completion});
  // Words that raced ahead of the descriptor are sitting in the inbox.
  feed_recv_descriptors(pe, color, cursor);
}

void Fabric::ctx_activate(Pe& pe, Color color, f64 cursor) {
  check_valid(color);
  Event event;
  event.kind = EventKind::TaskStart;
  event.pe_index = pe_index(pe.coord.x, pe.coord.y);
  event.color = color;
  event.t = cursor;
  push_event(std::move(event));
}

PeMemory& Fabric::pe_memory(i64 x, i64 y) { return at(pe_index(x, y)).memory; }

const Router& Fabric::pe_router(i64 x, i64 y) const {
  return pes_[static_cast<std::size_t>(y * width_ + x)]->router;
}

const OpCounters& Fabric::pe_counters(i64 x, i64 y) const {
  return pes_[static_cast<std::size_t>(y * width_ + x)]->counters;
}

OpCounters Fabric::total_counters() const {
  OpCounters total;
  for (const auto& pe : pes_) total += pe->counters;
  return total;
}

} // namespace fvdf::wse
