#include "wse/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "telemetry/collector.hpp"

// Telemetry hot-path hooks: a null-pointer test per site when compiled in,
// nothing at all under -DFVDF_TELEMETRY=OFF. `stmt` may use `collector`
// (the bound telemetry::FabricCollector&).
#ifdef FVDF_TELEMETRY_DISABLED
#define FVDF_TELEM(stmt) ((void)0)
#else
#define FVDF_TELEM(stmt)                                                       \
  do {                                                                         \
    if (telemetry_ != nullptr) {                                               \
      telemetry::FabricCollector& collector = *telemetry_;                     \
      stmt;                                                                    \
    }                                                                          \
  } while (0)
#endif

namespace fvdf::wse {

namespace {
constexpr std::size_t link_slot(Dir dir) { return static_cast<std::size_t>(dir); }
// Upper bound on the spatial decomposition. The shard count is a pure
// function of the fabric geometry (never of the thread count) so that the
// event schedule — and therefore every result — is identical at any
// parallelism level.
constexpr u32 kMaxShards = 16;
constexpr f64 kInfCycles = std::numeric_limits<f64>::infinity();
} // namespace

/// PeContext implementation handed to program handlers for the duration of
/// one task execution.
class FabricPeContext final : public PeContext {
public:
  FabricPeContext(Fabric& fabric, Fabric::Shard& shard, Fabric::Pe& pe, f64& cursor)
      : fabric_(fabric), shard_(shard), pe_(pe), cursor_(cursor),
        engine_(pe.memory, pe.counters, fabric.timing(), cursor) {}

  PeCoord coord() const override { return pe_.coord; }
  i64 fabric_width() const override { return fabric_.width(); }
  i64 fabric_height() const override { return fabric_.height(); }

  PeMemory& memory() override { return pe_.memory; }
  DsdEngine& dsd() override { return engine_; }

  void configure_router(Color color, ColorConfig config) override {
    pe_.router.configure(color, std::move(config));
  }

  void send(Color color, Dsd src, ColorMask advance_after, Color completion) override {
    fabric_.ctx_send(shard_, pe_, color, src, advance_after, completion, cursor_);
  }

  void send_control(Color color, ColorMask advance) override {
    fabric_.ctx_send_control(shard_, pe_, color, advance, cursor_);
  }

  void recv(Color color, Dsd dst, Color completion) override {
    fabric_.ctx_recv(shard_, pe_, color, dst, completion, cursor_);
  }

  void activate(Color color) override {
    fabric_.ctx_activate(shard_, pe_, color, cursor_);
  }

  void advance_local(ColorMask mask) override {
    fabric_.advance_and_release(shard_, pe_, mask, cursor_);
  }

  void mark_phase(u8 phase) override {
    fabric_.ctx_mark_phase(shard_, pe_, phase, cursor_);
  }

  void note_progress(u64 iteration, f64 value) override {
    fabric_.ctx_note_progress(shard_, pe_, iteration, value, cursor_);
  }

  void halt() override {
    if (!pe_.halted) {
      pe_.halted = true;
      ++shard_.halted;
    }
  }

  f64 now() const override { return cursor_; }

private:
  Fabric& fabric_;
  Fabric::Shard& shard_;
  Fabric::Pe& pe_;
  f64& cursor_;
  DsdEngine engine_;
};

Fabric::Fabric(i64 width, i64 height, TimingParams timing, PeMemoryParams mem)
    : width_(width), height_(height), timing_(timing), mem_params_(mem) {
  FVDF_CHECK_MSG(width >= 1 && height >= 1, "fabric dims must be positive");
  pes_.reserve(static_cast<std::size_t>(width * height));
  for (i64 y = 0; y < height; ++y)
    for (i64 x = 0; x < width; ++x) {
      pes_.push_back(std::make_unique<Pe>(PeCoord{x, y}, mem_params_));
      pes_.back()->router.set_coord(PeCoord{x, y});
    }

  // Horizontal strips of rows: with row-major PE indexing each shard owns a
  // contiguous index range, and east-west traffic (the halo-heavy axis of
  // the solver kernels) stays shard-local.
  const u32 shard_count = static_cast<u32>(std::min<i64>(height_, kMaxShards));
  shards_.resize(shard_count);
  row_shard_.resize(static_cast<std::size_t>(height_));
  for (u32 s = 0; s < shard_count; ++s) {
    Shard& shard = shards_[s];
    shard.id = s;
    shard.row_begin = height_ * s / shard_count;
    shard.row_end = height_ * (s + 1) / shard_count;
    shard.outbox.resize(shard_count);
    for (i64 row = shard.row_begin; row < shard.row_end; ++row)
      row_shard_[static_cast<std::size_t>(row)] = s;
  }
}

Fabric::~Fabric() = default;

void Fabric::set_threads(u32 threads) {
  threads_ = threads == 0
                 ? std::max(1u, std::thread::hardware_concurrency())
                 : threads;
}

void Fabric::set_telemetry(telemetry::FabricCollector* collector) {
  telemetry_ = (collector != nullptr && collector->enabled()) ? collector : nullptr;
  if (telemetry_ != nullptr) telemetry_->bind(width_, height_, shard_count());
}

void Fabric::load(const ProgramFactory& factory) {
  FVDF_CHECK_MSG(!loaded_, "fabric already loaded");
  loaded_ = true;
  for (auto& pe : pes_) {
    pe->program = factory(pe->coord);
    FVDF_CHECK(pe->program != nullptr);
    Event event;
    event.kind = EventKind::TaskStart;
    event.pe_index = pe_index(pe->coord.x, pe->coord.y);
    event.color = kInvalidColor; // sentinel: on_start
    event.t = 0;
    enqueue_local(shard_of(event.pe_index), std::move(event));
  }
}

void Fabric::enqueue_local(Shard& shard, Event&& event) {
  event.seq = shard.next_seq++;
  shard.events.push(std::move(event));
}

void Fabric::push_event(Shard& from, Event&& event) {
  Shard& dest = shard_of(event.pe_index);
  if (&dest == &from) {
    enqueue_local(from, std::move(event));
    return;
  }
  ++from.outbound_count;
  from.outbox[dest.id].push_back(Outbound{std::move(event), from.emit_seq++});
}

Fabric::RunResult Fabric::run(f64 max_cycles) {
  FVDF_CHECK_MSG(loaded_, "run() before load()");
  RunResult result;

  // Fault schedules count injected messages fabric-globally; pinning the
  // run to one worker keeps that count order deterministic.
  const bool faults_active =
      faults_.drop_message_index != 0 || faults_.corrupt_message_index != 0;
  const u32 workers = faults_active ? 1 : threads_;
  const bool parallel = workers > 1 && shards_.size() > 1;
  if (parallel && (!pool_ || pool_->size() != workers))
    pool_ = std::make_unique<ThreadPool>(workers);

  // Note: the loop drains the queues even after every PE has halted —
  // in-flight wavelets keep moving through the fabric (and into the stats)
  // exactly as they would on hardware; tasks on halted PEs are ignored.
  try {
    for (;;) {
      f64 tmin = kInfCycles;
      for (const Shard& shard : shards_)
        if (!shard.events.empty()) tmin = std::min(tmin, shard.events.top().t);
      if (tmin == kInfCycles) break; // drained
      if (tmin > max_cycles) {
        result.hit_cycle_limit = true;
        break;
      }

      f64 horizon;
      if (shards_.size() == 1) {
        // Single shard: no cross-shard causality to respect, drain freely.
        horizon = kInfCycles;
      } else {
        // Conservative lookahead: any event a shard generates for another
        // shard travels over a cardinal link, so it lands at least one
        // router hop after its cause. Everything below the horizon is safe
        // to process without seeing the other shards.
        const f64 lookahead = std::max(0.0, timing_.hop_latency_cycles);
        horizon = tmin + lookahead;
        if (!(horizon > tmin))
          horizon = std::nextafter(tmin, kInfCycles);
      }

      if (parallel) {
        pool_->for_each_index(shards_.size(), [&](std::size_t i) {
          process_window(shards_[i], horizon, max_cycles);
        });
      } else {
        for (Shard& shard : shards_) process_window(shard, horizon, max_cycles);
      }
      exchange_and_merge();
    }
  } catch (...) {
    // Surface whatever the window produced before the throw (kernel
    // FVDF_CHECKs propagate to the caller, as in the serial engine).
    flush_traces();
    throw;
  }
  flush_traces();

  stats_ = FabricStats{};
  now_ = 0;
  i64 halted = 0;
  for (const Shard& shard : shards_) {
    stats_.messages_sent += shard.stats.messages_sent;
    stats_.wavelet_hops += shard.stats.wavelet_hops;
    stats_.word_hops += shard.stats.word_hops;
    stats_.words_delivered += shard.stats.words_delivered;
    stats_.words_dropped += shard.stats.words_dropped;
    stats_.control_wavelets += shard.stats.control_wavelets;
    stats_.tasks_run += shard.stats.tasks_run;
    stats_.events_processed += shard.stats.events_processed;
    stats_.flits_stalled += shard.stats.flits_stalled;
    now_ = std::max(now_, shard.now);
    halted += shard.halted;
  }
  result.cycles = now_;
  result.all_halted = halted == static_cast<i64>(pes_.size());
  return result;
}

void Fabric::process_window(Shard& shard, f64 horizon, f64 max_cycles) {
  while (!shard.events.empty()) {
    const Event& top = shard.events.top();
    if (top.t >= horizon || top.t > max_cycles) break;
    Event event = shard.events.pop();
    shard.now = std::max(shard.now, event.t);
    ++shard.stats.events_processed;
    switch (event.kind) {
    case EventKind::FlitArrive: handle_flit_arrive(shard, std::move(event)); break;
    case EventKind::TaskStart: handle_task_start(shard, event); break;
    }
  }
}

void Fabric::exchange_and_merge() {
  u64 outbound = 0;
  for (const Shard& shard : shards_) outbound += shard.outbound_count;
  if (outbound != 0) {
    for (Shard& dest : shards_) {
      // Gather source-major (each outbox already in emission order), then
      // stable-sort by time: ties resolve to (source shard, emission
      // index) — a total order independent of the thread count.
      merge_scratch_.clear();
      for (const Shard& src : shards_)
        for (const Outbound& out : src.outbox[dest.id])
          merge_scratch_.push_back(&out);
      if (merge_scratch_.empty()) continue;
      std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                       [](const Outbound* a, const Outbound* b) {
                         return a->event.t < b->event.t;
                       });
      for (const Outbound* out : merge_scratch_)
        enqueue_local(dest, std::move(const_cast<Outbound*>(out)->event));
      for (Shard& src : shards_) src.outbox[dest.id].clear();
    }
    for (Shard& shard : shards_) shard.outbound_count = 0;
  }
  flush_traces();
}

void Fabric::flush_traces() {
  if (!trace_) {
    for (Shard& shard : shards_)
      if (!shard.trace.empty()) shard.trace.clear();
    return;
  }
  trace_scratch_.clear();
  for (Shard& shard : shards_) {
    trace_scratch_.insert(trace_scratch_.end(), shard.trace.begin(),
                          shard.trace.end());
    shard.trace.clear();
  }
  if (trace_scratch_.empty()) return;
  // Stable: same-time records keep shard-major order, so the merged stream
  // is deterministic and identical at any thread count.
  std::stable_sort(trace_scratch_.begin(), trace_scratch_.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.cycles < b.cycles;
                   });
  for (const TraceRecord& record : trace_scratch_) trace_(record);
}

void Fabric::advance_and_release(Shard& shard, Pe& pe, ColorMask mask, f64 t) {
  pe.router.advance(mask);
  for (Color color = 0; color < kNumRoutableColors; ++color) {
    if ((mask & color_bit(color)) == 0) continue;
    auto& parked = pe.stalled[color];
    if (parked.empty()) continue;
    // Flits the new position accepts re-dispatch in FIFO order; the rest
    // re-park directly — never through the event queue — so a switch
    // program cycling through rejecting positions cannot inflate
    // events_processed or the trace volume.
    std::deque<Pe::StalledFlit> retry;
    retry.swap(parked);
    while (!retry.empty()) {
      Pe::StalledFlit entry = std::move(retry.front());
      retry.pop_front();
      if (!pe.router.accepts(color, entry.from)) {
        parked.push_back(std::move(entry));
        continue;
      }
      FVDF_TELEM(collector.activity(pe_index(pe.coord.x, pe.coord.y))
                     .stall_cycles += t - entry.parked_at);
      dispatch_flit(shard, pe, entry.from, std::move(entry.flit), t);
    }
  }
}

void Fabric::handle_flit_arrive(Shard& shard, Event&& event) {
  Pe& pe = at(event.pe_index);
  Flit& flit = event.flit;
  // Backpressure: a wavelet whose arrival link is not in the color's
  // current rx set waits on that link until the switch advances.
  if (!pe.router.accepts(flit.color, event.from)) {
    ++shard.stats.flits_stalled;
    emit_trace(shard, TraceEvent::FlitStalled, event.t, pe.coord, flit.color,
               flit.data ? static_cast<u32>(flit.data->size()) : 0);
    FVDF_TELEM(++collector.activity(event.pe_index).stalls);
    pe.stalled[flit.color].push_back(
        Pe::StalledFlit{event.from, std::move(flit), event.t});
    return;
  }
  dispatch_flit(shard, pe, event.from, std::move(flit), event.t);
}

void Fabric::dispatch_flit(Shard& shard, Pe& pe, Dir from, Flit&& flit, f64 t) {
  const DirMask tx = pe.router.route(flit.color, from);
  const u64 words = flit.data ? flit.data->size() : 0;
  const f64 batch_cycles = static_cast<f64>(words) / timing_.words_per_cycle_link;

  if (tx.contains(Dir::Ramp)) deliver_to_ramp(shard, pe, flit, t);

  // A null route (empty tx, the edge-clipped form of an off-fabric
  // transmit) sinks the wavelet here; account its words like an edge drop
  // so traffic identities (delivered + dropped) are route-shape agnostic.
  if (tx.empty()) shard.stats.words_dropped += words;

  for (Dir dir : kCardinalDirs) {
    if (!tx.contains(dir)) continue;
    const auto nb = neighbor(pe.coord, dir, width_, height_);
    if (!nb) {
      shard.stats.words_dropped += words;
      continue;
    }
    f64& free_at = pe.link_free_at[link_slot(dir)];
    const f64 start = std::max(t, free_at);
    free_at = start + batch_cycles;
    Event forward;
    forward.kind = EventKind::FlitArrive;
    forward.pe_index = pe_index(nb->x, nb->y);
    forward.from = arrival_side(dir);
    forward.flit = flit; // payload refcount bump, no copy of the words
    forward.t = start + timing_.hop_latency_cycles + batch_cycles;
    push_event(shard, std::move(forward));
    ++shard.stats.wavelet_hops;
    shard.stats.word_hops += words;
    FVDF_TELEM({
      telemetry::PeActivity& a =
          collector.activity(pe_index(pe.coord.x, pe.coord.y));
      a.tx_words[link_slot(dir)] += words;
      ++a.tx_messages[link_slot(dir)];
    });
    emit_trace(shard, TraceEvent::LinkHop, t, pe.coord, flit.color,
               static_cast<u32>(words));
  }

  // The trailing control wavelet advances this router *after* the data was
  // routed under the pre-advance switch position — and may release flits
  // that were stalled waiting for exactly this advance.
  if (flit.advance_after != 0) {
    const ColorMask advance = flit.advance_after;
    const Color color = flit.color;
    flit = Flit{}; // release the payload before re-dispatching parked flits
    advance_and_release(shard, pe, advance, t);
    ++shard.stats.control_wavelets;
    emit_trace(shard, TraceEvent::SwitchAdvance, t, pe.coord, color, 0);
  }
}

void Fabric::deliver_to_ramp(Shard& shard, Pe& pe, const Flit& flit, f64 t) {
  if (!flit.data) return; // control-only wavelets carry no payload
  const std::vector<f32>& words = *flit.data;
  pe.inbox[flit.color].append(words.data(), words.size());
  emit_trace(shard, TraceEvent::RampDelivery, t, pe.coord, flit.color,
             static_cast<u32>(words.size()));
  feed_recv_descriptors(shard, pe, flit.color, t);
}

void Fabric::feed_recv_descriptors(Shard& shard, Pe& pe, Color color, f64 t) {
  auto& inbox = pe.inbox[color];
  auto& queue = pe.recv_queues[color];
  while (!queue.empty() && !inbox.empty()) {
    RecvDesc& desc = queue.front();
    const u32 want = desc.dst.length - desc.filled;
    const u32 take = static_cast<u32>(
        std::min<std::size_t>(want, inbox.size()));
    if (take > 0) {
      const f32* words = inbox.data();
      if (desc.dst.stride == 1) {
        pe.memory.store_words(desc.dst.offset + desc.filled, words, take);
      } else {
        for (u32 i = 0; i < take; ++i) {
          const i64 word = static_cast<i64>(desc.dst.offset) +
                           static_cast<i64>(desc.filled + i) * desc.dst.stride;
          pe.memory.store(static_cast<u32>(word), words[i]);
        }
      }
      inbox.consume(take);
      desc.filled += take;
      pe.counters.record(Opcode::FMOV, take, /*fabric_loads=*/take, 0);
      shard.stats.words_delivered += take;
      FVDF_TELEM(collector.activity(pe_index(pe.coord.x, pe.coord.y)).rx_words +=
                 take);
    }
    if (desc.filled == desc.dst.length) {
      Event event;
      event.kind = EventKind::TaskStart;
      event.pe_index = pe_index(pe.coord.x, pe.coord.y);
      event.color = desc.completion;
      event.t = t;
      push_event(shard, std::move(event));
      queue.pop_front();
    } else {
      break; // inbox drained, descriptor still hungry
    }
  }
}

void Fabric::handle_task_start(Shard& shard, const Event& event) {
  Pe& pe = at(event.pe_index);
  if (pe.halted) return;
  if (pe.busy_until > event.t) {
    Event retry = event;
    retry.t = pe.busy_until;
    push_event(shard, std::move(retry));
    return;
  }
  run_task(shard, pe, event.color, event.t);
}

void Fabric::run_task(Shard& shard, Pe& pe, Color color, f64 t) {
  f64 cursor = t + timing_.task_dispatch_cycles;
  FabricPeContext ctx(*this, shard, pe, cursor);
  ++shard.stats.tasks_run;
  emit_trace(shard, TraceEvent::TaskRun, t, pe.coord, color, 0);
  if (color == kInvalidColor) {
    pe.program->on_start(ctx);
  } else {
    pe.program->on_task(ctx, color);
  }
  pe.busy_until = cursor;
  shard.now = std::max(shard.now, cursor);
  FVDF_TELEM({
    telemetry::PeActivity& a =
        collector.activity(pe_index(pe.coord.x, pe.coord.y));
    ++a.tasks;
    a.busy_cycles += cursor - t;
    collector.observe_task_cycles(shard.id, cursor - t);
  });
}

void Fabric::ctx_send(Shard& shard, Pe& pe, Color color, Dsd src,
                      ColorMask advance_after, Color completion, f64& cursor) {
  check_routable(color);
  FVDF_CHECK_MSG(src.length > 0, "empty send");
  PayloadRef payload = payload_pool_.acquire(src.length);
  {
    std::vector<f32>& words = payload.mutate();
    if (src.stride == 1) {
      words.resize(src.length);
      pe.memory.load_words(src.offset, words.data(), src.length);
    } else {
      for (u32 i = 0; i < src.length; ++i) {
        const i64 word =
            static_cast<i64>(src.offset) + static_cast<i64>(i) * src.stride;
        words.push_back(pe.memory.load(static_cast<u32>(word)));
      }
    }
  }
  pe.counters.record(Opcode::FMOV, src.length, 0, /*fabric_stores=*/src.length);

  // Fault injection (deterministic, counted over data messages; runs with
  // a single worker — see run()).
  if (faults_.drop_message_index != 0 || faults_.corrupt_message_index != 0) {
    ++injected_data_messages_;
    if (injected_data_messages_ == faults_.drop_message_index) {
      emit_trace(shard, TraceEvent::FaultDrop, cursor, pe.coord, color, src.length);
      // The message vanishes on the link; the send "completes" locally (the
      // sender cannot tell), but no receiver will ever see the data.
      cursor += timing_.send_setup_cycles;
      ++shard.stats.messages_sent;
      if (completion != kInvalidColor) ctx_activate(shard, pe, completion, cursor);
      return;
    }
    if (injected_data_messages_ == faults_.corrupt_message_index) {
      emit_trace(shard, TraceEvent::FaultCorrupt, cursor, pe.coord, color,
                 src.length);
      std::vector<f32>& words = payload.mutate();
      if (!words.empty()) {
        u32 bits;
        std::memcpy(&bits, words.data(), 4);
        bits ^= (1u << (faults_.corrupt_bit & 31));
        std::memcpy(words.data(), &bits, 4);
      }
    }
  }

  emit_trace(shard, TraceEvent::MessageInjected, cursor, pe.coord, color,
             src.length);
  cursor += timing_.send_setup_cycles;
  f64& ramp_free = pe.link_free_at[link_slot(Dir::Ramp)];
  const f64 start = std::max(cursor, ramp_free);
  const f64 batch_cycles = static_cast<f64>(src.length) / timing_.words_per_cycle_link;
  ramp_free = start + batch_cycles;

  Event event;
  event.kind = EventKind::FlitArrive;
  event.pe_index = pe_index(pe.coord.x, pe.coord.y);
  event.from = Dir::Ramp;
  event.flit = Flit{color, std::move(payload), advance_after};
  event.t = start + batch_cycles;
  push_event(shard, std::move(event));
  ++shard.stats.messages_sent;
  if (advance_after != 0) ++shard.stats.control_wavelets;
  FVDF_TELEM({
    telemetry::PeActivity& a =
        collector.activity(pe_index(pe.coord.x, pe.coord.y));
    a.tx_words[link_slot(Dir::Ramp)] += src.length;
    ++a.tx_messages[link_slot(Dir::Ramp)];
  });

  if (completion != kInvalidColor) {
    Event done;
    done.kind = EventKind::TaskStart;
    done.pe_index = pe_index(pe.coord.x, pe.coord.y);
    done.color = completion;
    done.t = start + batch_cycles;
    push_event(shard, std::move(done));
  }
}

void Fabric::ctx_send_control(Shard& shard, Pe& pe, Color color, ColorMask advance,
                              f64& cursor) {
  check_routable(color);
  FVDF_CHECK(advance != 0);
  cursor += timing_.send_setup_cycles;
  f64& ramp_free = pe.link_free_at[link_slot(Dir::Ramp)];
  const f64 start = std::max(cursor, ramp_free);
  ramp_free = start + 1.0;

  Event event;
  event.kind = EventKind::FlitArrive;
  event.pe_index = pe_index(pe.coord.x, pe.coord.y);
  event.from = Dir::Ramp;
  event.flit = Flit{color, PayloadRef{}, advance};
  event.t = start + 1.0;
  push_event(shard, std::move(event));
  ++shard.stats.messages_sent;
  FVDF_TELEM(++collector.activity(pe_index(pe.coord.x, pe.coord.y))
                   .tx_messages[link_slot(Dir::Ramp)]);
}

void Fabric::ctx_recv(Shard& shard, Pe& pe, Color color, Dsd dst, Color completion,
                      f64 cursor) {
  check_routable(color);
  check_valid(completion);
  FVDF_CHECK_MSG(dst.length > 0, "empty receive");
  pe.recv_queues[color].push_back(RecvDesc{dst, 0, completion});
  // Words that raced ahead of the descriptor are sitting in the inbox.
  feed_recv_descriptors(shard, pe, color, cursor);
}

void Fabric::ctx_activate(Shard& shard, Pe& pe, Color color, f64 cursor) {
  check_valid(color);
  Event event;
  event.kind = EventKind::TaskStart;
  event.pe_index = pe_index(pe.coord.x, pe.coord.y);
  event.color = color;
  event.t = cursor;
  push_event(shard, std::move(event));
}

void Fabric::ctx_mark_phase(Shard& shard, Pe& pe, u8 phase, f64 cursor) {
  (void)shard;
  (void)pe;
  (void)phase;
  (void)cursor;
  FVDF_TELEM({
    const i64 idx = pe_index(pe.coord.x, pe.coord.y);
    if (collector.samples_pe(idx)) collector.mark_phase(shard.id, idx, phase, cursor);
  });
}

void Fabric::ctx_note_progress(Shard& shard, Pe& pe, u64 iteration, f64 value,
                               f64 cursor) {
  (void)shard;
  (void)pe;
  (void)iteration;
  (void)value;
  (void)cursor;
  FVDF_TELEM(collector.note_progress(shard.id, pe_index(pe.coord.x, pe.coord.y),
                                     iteration, value, cursor));
}

void Fabric::check_host_coord(i64 x, i64 y) const {
  FVDF_CHECK_MSG(x >= 0 && x < width_ && y >= 0 && y < height_,
                 "PE coordinate (" << x << ", " << y << ") outside the "
                                   << width_ << "x" << height_ << " fabric");
}

PeMemory& Fabric::pe_memory(i64 x, i64 y) {
  check_host_coord(x, y);
  return at(pe_index(x, y)).memory;
}

const Router& Fabric::pe_router(i64 x, i64 y) const {
  check_host_coord(x, y);
  return pes_[static_cast<std::size_t>(y * width_ + x)]->router;
}

const OpCounters& Fabric::pe_counters(i64 x, i64 y) const {
  check_host_coord(x, y);
  return pes_[static_cast<std::size_t>(y * width_ + x)]->counters;
}

OpCounters Fabric::total_counters() const {
  OpCounters total;
  for (const auto& pe : pes_) total += pe->counters;
  return total;
}

} // namespace fvdf::wse
