#pragma once
// Fabric geometry: PE coordinates and router link directions.
//
// Orientation follows the paper (Sec. III-B): the *northbound* neighbor of
// PE (x, y) is (x, y-1) and the southbound neighbor is (x, y+1) — screen
// coordinates with row 0 at the top. East is +x.

#include <array>
#include <optional>

#include "common/types.hpp"

namespace fvdf::wse {

/// Router link. Ramp connects the router to its own PE; the four cardinal
/// links connect to neighboring routers.
enum class Dir : u8 { Ramp = 0, North = 1, East = 2, South = 3, West = 4 };

constexpr std::array<Dir, 5> kAllDirs = {Dir::Ramp, Dir::North, Dir::East,
                                         Dir::South, Dir::West};
constexpr std::array<Dir, 4> kCardinalDirs = {Dir::North, Dir::East, Dir::South,
                                              Dir::West};

const char* to_string(Dir dir);

/// The cardinal direction a wavelet leaving through `dir` *arrives from* at
/// the neighboring router (East exit -> arrives from West).
Dir arrival_side(Dir dir);

/// Index of a cardinal direction in kCardinalDirs (N=0, E=1, S=2, W=3).
/// Ramp has no cardinal index.
constexpr std::size_t cardinal_index(Dir dir) {
  return static_cast<std::size_t>(dir) - 1;
}

/// The opposite side, as a cardinal index (N <-> S, E <-> W).
constexpr std::size_t opposite_cardinal(std::size_t side) { return side ^ 2u; }

/// Bitmask over Dir used in switch positions (rx / tx sets).
class DirMask {
public:
  constexpr DirMask() = default;
  constexpr explicit DirMask(u8 bits) : bits_(bits) {}

  static constexpr DirMask of(Dir dir) { return DirMask(static_cast<u8>(1u << static_cast<u8>(dir))); }
  template <typename... Dirs> static constexpr DirMask of(Dir first, Dirs... rest) {
    return DirMask(static_cast<u8>(of(first).bits() | of(rest...).bits()));
  }

  constexpr bool contains(Dir dir) const {
    return (bits_ & (1u << static_cast<u8>(dir))) != 0;
  }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr u8 bits() const { return bits_; }
  constexpr bool operator==(const DirMask&) const = default;

private:
  u8 bits_ = 0;
};

/// PE coordinate on the 2D fabric.
struct PeCoord {
  i64 x = 0;
  i64 y = 0;
  bool operator==(const PeCoord&) const = default;
};

/// Neighbor coordinate in the given cardinal direction, or nullopt when it
/// would fall outside a width x height fabric.
std::optional<PeCoord> neighbor(const PeCoord& at, Dir dir, i64 width, i64 height);

/// Drops from `mask` every cardinal direction whose neighbor falls outside
/// a width x height fabric at `at`; Ramp always survives. Used to edge-clip
/// a switch position's tx set — the result may be empty (a null route that
/// deliberately discards, see SwitchPosition::tx).
DirMask clip_to_fabric(DirMask mask, const PeCoord& at, i64 width, i64 height);

} // namespace fvdf::wse
