#pragma once
// Cycle-approximate timing parameters of the simulated fabric.
//
// All times are in clock cycles (f64 so sub-cycle per-element costs like a
// dual-SIMD 0.5 cycles/element are expressible). The defaults model a
// WSE-2-like PE: single-ported SRAM at one 32-bit access per cycle per
// bank pair, so an element-wise op's throughput is bounded by its memory
// operand count divided by two ports; one word per cycle per fabric link;
// a couple of cycles per router hop.

#include "common/types.hpp"
#include "perf/opcount.hpp"

namespace fvdf::wse {

struct TimingParams {
  f64 clock_hz = 1.1e9;

  // Fabric.
  f64 hop_latency_cycles = 2.0;   // router traversal latency per hop
  f64 words_per_cycle_link = 1.0; // link throughput (32-bit words)
  f64 send_setup_cycles = 10.0;   // ramp injection setup per message

  // PE task machinery.
  f64 task_dispatch_cycles = 12.0; // activation -> first instruction

  // DSD vector engine.
  f64 op_issue_cycles = 15.0; // fixed cost to configure/issue one DSD op

  // Per-element throughput per opcode (cycles / element).
  f64 cycles_per_element(Opcode op) const {
    const MemTraffic mem = memory_traffic_per_element(op);
    const f64 accesses = static_cast<f64>(mem.loads + mem.stores);
    return accesses / mem_ports;
  }
  f64 mem_ports = 2.0; // concurrent 32-bit SRAM accesses per cycle

  // Scales all compute costs; 0 reproduces the paper's communication-only
  // experiment (Table IV: "exclude all floating-point operations").
  f64 compute_scale = 1.0;

  f64 seconds(f64 cycles) const { return cycles / clock_hz; }
};

} // namespace fvdf::wse
