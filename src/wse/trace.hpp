#pragma once
// Fabric event tracing and fault injection.
//
// TraceSink receives one record per simulator event (message injection,
// link hop, ramp delivery, task execution, switch advance) — the
// observability a hardware fabric gives through performance counters,
// plus full payload visibility only a simulator can offer. Traces are the
// debugging story for device programs: a deadlocked schedule is diagnosed
// by replaying who sent what where.
//
// FaultPlan injects the failure modes a distributed machine fears:
// dropped messages (a link that eats a wavelet) and corrupted payloads
// (a flipped bit in one word). The test suite uses these to show the
// system *detects* such faults — dropped halo data deadlocks the
// completion-callback protocol rather than silently computing garbage,
// and corrupted data is caught by the host-side numerical validation.

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "wse/color.hpp"
#include "wse/geometry.hpp"

namespace fvdf::wse {

enum class TraceEvent : u8 {
  MessageInjected, // PE pushed a message into its router
  LinkHop,         // message crossed a router-to-router link
  RampDelivery,    // words landed in a PE's inbox
  TaskRun,         // a task color executed on a PE
  SwitchAdvance,   // a router advanced switch positions
  FlitStalled,     // backpressure parked a flit
  FaultDrop,       // fault injection removed a message
  FaultCorrupt,    // fault injection flipped a payload bit
};

const char* to_string(TraceEvent event);

struct TraceRecord {
  TraceEvent event = TraceEvent::MessageInjected;
  f64 cycles = 0;
  PeCoord at{};
  Color color = kInvalidColor;
  u32 words = 0;
};

/// Receives every record as it happens. Keep it cheap: it runs inside the
/// event loop.
using TraceSink = std::function<void(const TraceRecord&)>;

/// A bounded in-memory sink with simple querying, for tests and tools.
///
/// Thread-safety: appends through sink() are serialized by an internal
/// mutex, so one buffer may back several fabrics running on different
/// host threads. Within a single fabric the engine already guarantees the
/// sink only runs at window merge barriers, in deterministic order —
/// records are gathered per shard during a window and merge-sorted before
/// delivery (see wse/fabric.hpp) — so the lock is uncontended there. The
/// records()/total()/count()/summary() accessors take the same lock;
/// records() returns a snapshot copy for that reason.
class TraceBuffer {
public:
  explicit TraceBuffer(std::size_t capacity = 1 << 20) : capacity_(capacity) {}

  TraceBuffer(const TraceBuffer& other);
  TraceBuffer& operator=(const TraceBuffer& other);

  TraceSink sink() {
    return [this](const TraceRecord& record) { push(record); };
  }

  void push(const TraceRecord& record);

  std::vector<TraceRecord> records() const;
  u64 total() const;
  u64 count(TraceEvent event) const;
  std::string summary() const;

private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<TraceRecord> records_;
  u64 total_ = 0;
};

/// Deterministic fault schedule, applied at message injection time.
struct FaultPlan {
  /// Drop the n-th injected data message (1-based); 0 disables.
  u64 drop_message_index = 0;
  /// Flip one bit of word 0 of the n-th injected data message; 0 disables.
  u64 corrupt_message_index = 0;
  u32 corrupt_bit = 12; // which bit of the fp32 word to flip
};

} // namespace fvdf::wse
