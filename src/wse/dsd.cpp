#include "wse/dsd.hpp"

#include "common/error.hpp"
#include "wse/dsd_simd.hpp"

namespace fvdf::wse {

namespace {

// The batched kernels (wse/dsd_simd.hpp) require each source range to be
// either exactly the destination or disjoint from it; a shifted overlap
// must keep the element-ordered streaming semantics of `elementwise`.
inline bool same_or_disjoint(const Dsd& dst, const Dsd& src) {
  return src.offset == dst.offset ||
         static_cast<u64>(src.offset) + src.length <= dst.offset ||
         static_cast<u64>(dst.offset) + dst.length <= src.offset;
}

inline bool batchable(const Dsd& dst, const Dsd& src) {
  return dst.stride == 1 && src.stride == 1 && dst.length == src.length &&
         same_or_disjoint(dst, src);
}

} // namespace

Dsd Dsd::drop(u32 first) const {
  FVDF_CHECK(first <= length);
  Dsd out = *this;
  out.offset = static_cast<u32>(static_cast<i64>(offset) + static_cast<i64>(first) * stride);
  out.length = length - first;
  return out;
}

Dsd Dsd::take(u32 count) const {
  FVDF_CHECK(count <= length);
  Dsd out = *this;
  out.length = count;
  return out;
}

Dsd dsd(MemSpan span, u32 first, u32 count) {
  FVDF_CHECK(first + count <= span.length);
  return Dsd{span.offset_words + first, count, 1};
}

DsdEngine::DsdEngine(PeMemory& memory, OpCounters& counters,
                     const TimingParams& timing, f64& cycles)
    : memory_(memory), counters_(counters), timing_(timing), cycles_(cycles) {}

u32 DsdEngine::idx(Dsd d, u32 i) const {
  const i64 word = static_cast<i64>(d.offset) + static_cast<i64>(i) * d.stride;
  FVDF_CHECK(word >= 0);
  return static_cast<u32>(word);
}

void DsdEngine::charge(Opcode op, u32 elements) {
  counters_.record(op, elements);
  cycles_ += timing_.compute_scale *
             (timing_.op_issue_cycles +
              static_cast<f64>(elements) * timing_.cycles_per_element(op));
}

template <typename Fn>
void DsdEngine::elementwise(Opcode op, Dsd dst, u32 length, Fn&& fn) {
  FVDF_CHECK_MSG(dst.length == length, "DSD length mismatch: dst " << dst.length
                                                                   << " vs " << length);
  for (u32 i = 0; i < length; ++i) memory_.store(idx(dst, i), fn(i));
  charge(op, length);
}

void DsdEngine::fmovs(Dsd dst, Dsd src) {
  if (batchable(dst, src)) {
    simd::kernels().mov(memory_.span_ptr(dst.offset, dst.length),
                        memory_.span_ptr(src.offset, src.length), dst.length);
    charge(Opcode::FMOV, dst.length);
    return;
  }
  elementwise(Opcode::FMOV, dst, src.length,
              [&](u32 i) { return memory_.load(idx(src, i)); });
}

void DsdEngine::fmovs_imm(Dsd dst, f32 value) {
  if (dst.stride == 1) {
    simd::kernels().fill(memory_.span_ptr(dst.offset, dst.length), value, dst.length);
    charge(Opcode::FMOV, dst.length);
    return;
  }
  elementwise(Opcode::FMOV, dst, dst.length, [&](u32) { return value; });
}

void DsdEngine::fadds(Dsd dst, Dsd a, Dsd b) {
  FVDF_CHECK(a.length == b.length);
  if (batchable(dst, a) && batchable(dst, b)) {
    simd::kernels().add(memory_.span_ptr(dst.offset, dst.length),
                        memory_.span_ptr(a.offset, a.length),
                        memory_.span_ptr(b.offset, b.length), dst.length);
    charge(Opcode::FADD, dst.length);
    return;
  }
  elementwise(Opcode::FADD, dst, a.length,
              [&](u32 i) { return memory_.load(idx(a, i)) + memory_.load(idx(b, i)); });
}

void DsdEngine::fsubs(Dsd dst, Dsd a, Dsd b) {
  FVDF_CHECK(a.length == b.length);
  if (batchable(dst, a) && batchable(dst, b)) {
    simd::kernels().sub(memory_.span_ptr(dst.offset, dst.length),
                        memory_.span_ptr(a.offset, a.length),
                        memory_.span_ptr(b.offset, b.length), dst.length);
    charge(Opcode::FSUB, dst.length);
    return;
  }
  elementwise(Opcode::FSUB, dst, a.length,
              [&](u32 i) { return memory_.load(idx(a, i)) - memory_.load(idx(b, i)); });
}

void DsdEngine::fmuls(Dsd dst, Dsd a, Dsd b) {
  FVDF_CHECK(a.length == b.length);
  if (batchable(dst, a) && batchable(dst, b)) {
    simd::kernels().mul(memory_.span_ptr(dst.offset, dst.length),
                        memory_.span_ptr(a.offset, a.length),
                        memory_.span_ptr(b.offset, b.length), dst.length);
    charge(Opcode::FMUL, dst.length);
    return;
  }
  elementwise(Opcode::FMUL, dst, a.length,
              [&](u32 i) { return memory_.load(idx(a, i)) * memory_.load(idx(b, i)); });
}

void DsdEngine::fmuls_imm(Dsd dst, Dsd a, f32 value) {
  if (batchable(dst, a)) {
    simd::kernels().mul_imm(memory_.span_ptr(dst.offset, dst.length),
                            memory_.span_ptr(a.offset, a.length), value, dst.length);
    charge(Opcode::FMUL, dst.length);
    return;
  }
  elementwise(Opcode::FMUL, dst, a.length,
              [&](u32 i) { return memory_.load(idx(a, i)) * value; });
}

void DsdEngine::fnegs(Dsd dst, Dsd a) {
  if (batchable(dst, a)) {
    simd::kernels().neg(memory_.span_ptr(dst.offset, dst.length),
                        memory_.span_ptr(a.offset, a.length), dst.length);
    charge(Opcode::FNEG, dst.length);
    return;
  }
  elementwise(Opcode::FNEG, dst, a.length,
              [&](u32 i) { return -memory_.load(idx(a, i)); });
}

void DsdEngine::fmacs(Dsd dst, Dsd acc, Dsd a, Dsd b) {
  FVDF_CHECK(acc.length == a.length && a.length == b.length);
  if (batchable(dst, acc) && batchable(dst, a) && batchable(dst, b)) {
    simd::kernels().mac(memory_.span_ptr(dst.offset, dst.length),
                        memory_.span_ptr(acc.offset, acc.length),
                        memory_.span_ptr(a.offset, a.length),
                        memory_.span_ptr(b.offset, b.length), dst.length);
    charge(Opcode::FMA, dst.length);
    return;
  }
  elementwise(Opcode::FMA, dst, a.length, [&](u32 i) {
    return memory_.load(idx(acc, i)) + memory_.load(idx(a, i)) * memory_.load(idx(b, i));
  });
}

void DsdEngine::fmacs_imm(Dsd dst, Dsd acc, Dsd a, f32 value) {
  FVDF_CHECK(acc.length == a.length);
  if (batchable(dst, acc) && batchable(dst, a)) {
    simd::kernels().mac_imm(memory_.span_ptr(dst.offset, dst.length),
                            memory_.span_ptr(acc.offset, acc.length),
                            memory_.span_ptr(a.offset, a.length), value, dst.length);
    charge(Opcode::FMA, dst.length);
    return;
  }
  elementwise(Opcode::FMA, dst, a.length, [&](u32 i) {
    return memory_.load(idx(acc, i)) + memory_.load(idx(a, i)) * value;
  });
}

f32 DsdEngine::fadds_scalar(f32 a, f32 b) {
  charge(Opcode::FADD, 1);
  return a + b;
}

f32 DsdEngine::fmuls_scalar(f32 a, f32 b) {
  charge(Opcode::FMUL, 1);
  return a * b;
}

f32 DsdEngine::fdots(Dsd a, Dsd b) {
  FVDF_CHECK(a.length == b.length);
  f32 acc = 0.0f;
  if (a.stride == 1 && b.stride == 1) {
    // Raw pointers, but still a strictly sequential accumulation: the fp32
    // summation order is observable and must match the device semantics.
    const f32* pa = memory_.span_ptr(a.offset, a.length);
    const f32* pb = memory_.span_ptr(b.offset, b.length);
    for (u32 i = 0; i < a.length; ++i) acc += pa[i] * pb[i];
  } else {
    for (u32 i = 0; i < a.length; ++i)
      acc += memory_.load(idx(a, i)) * memory_.load(idx(b, i));
  }
  charge(Opcode::FMA, a.length);
  return acc;
}

f32 DsdEngine::load(u32 word_offset) {
  charge(Opcode::FMOV, 1);
  return memory_.load(word_offset);
}

void DsdEngine::store(u32 word_offset, f32 value) {
  charge(Opcode::FMOV, 1);
  memory_.store(word_offset, value);
}

u8 DsdEngine::load_byte(u32 byte_offset) {
  charge(Opcode::FMOV, 1);
  return memory_.load_byte(byte_offset);
}

void DsdEngine::store_byte(u32 byte_offset, u8 value) {
  charge(Opcode::FMOV, 1);
  memory_.store_byte(byte_offset, value);
}

} // namespace fvdf::wse
