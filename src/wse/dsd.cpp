#include "wse/dsd.hpp"

#include "common/error.hpp"

namespace fvdf::wse {

Dsd Dsd::drop(u32 first) const {
  FVDF_CHECK(first <= length);
  Dsd out = *this;
  out.offset = static_cast<u32>(static_cast<i64>(offset) + static_cast<i64>(first) * stride);
  out.length = length - first;
  return out;
}

Dsd Dsd::take(u32 count) const {
  FVDF_CHECK(count <= length);
  Dsd out = *this;
  out.length = count;
  return out;
}

Dsd dsd(MemSpan span, u32 first, u32 count) {
  FVDF_CHECK(first + count <= span.length);
  return Dsd{span.offset_words + first, count, 1};
}

DsdEngine::DsdEngine(PeMemory& memory, OpCounters& counters,
                     const TimingParams& timing, f64& cycles)
    : memory_(memory), counters_(counters), timing_(timing), cycles_(cycles) {}

u32 DsdEngine::idx(Dsd d, u32 i) const {
  const i64 word = static_cast<i64>(d.offset) + static_cast<i64>(i) * d.stride;
  FVDF_CHECK(word >= 0);
  return static_cast<u32>(word);
}

void DsdEngine::charge(Opcode op, u32 elements) {
  counters_.record(op, elements);
  cycles_ += timing_.compute_scale *
             (timing_.op_issue_cycles +
              static_cast<f64>(elements) * timing_.cycles_per_element(op));
}

template <typename Fn>
void DsdEngine::elementwise(Opcode op, Dsd dst, u32 length, Fn&& fn) {
  FVDF_CHECK_MSG(dst.length == length, "DSD length mismatch: dst " << dst.length
                                                                   << " vs " << length);
  for (u32 i = 0; i < length; ++i) memory_.store(idx(dst, i), fn(i));
  charge(op, length);
}

void DsdEngine::fmovs(Dsd dst, Dsd src) {
  elementwise(Opcode::FMOV, dst, src.length,
              [&](u32 i) { return memory_.load(idx(src, i)); });
}

void DsdEngine::fmovs_imm(Dsd dst, f32 value) {
  elementwise(Opcode::FMOV, dst, dst.length, [&](u32) { return value; });
}

void DsdEngine::fadds(Dsd dst, Dsd a, Dsd b) {
  FVDF_CHECK(a.length == b.length);
  elementwise(Opcode::FADD, dst, a.length,
              [&](u32 i) { return memory_.load(idx(a, i)) + memory_.load(idx(b, i)); });
}

void DsdEngine::fsubs(Dsd dst, Dsd a, Dsd b) {
  FVDF_CHECK(a.length == b.length);
  elementwise(Opcode::FSUB, dst, a.length,
              [&](u32 i) { return memory_.load(idx(a, i)) - memory_.load(idx(b, i)); });
}

void DsdEngine::fmuls(Dsd dst, Dsd a, Dsd b) {
  FVDF_CHECK(a.length == b.length);
  elementwise(Opcode::FMUL, dst, a.length,
              [&](u32 i) { return memory_.load(idx(a, i)) * memory_.load(idx(b, i)); });
}

void DsdEngine::fmuls_imm(Dsd dst, Dsd a, f32 value) {
  elementwise(Opcode::FMUL, dst, a.length,
              [&](u32 i) { return memory_.load(idx(a, i)) * value; });
}

void DsdEngine::fnegs(Dsd dst, Dsd a) {
  elementwise(Opcode::FNEG, dst, a.length,
              [&](u32 i) { return -memory_.load(idx(a, i)); });
}

void DsdEngine::fmacs(Dsd dst, Dsd acc, Dsd a, Dsd b) {
  FVDF_CHECK(acc.length == a.length && a.length == b.length);
  elementwise(Opcode::FMA, dst, a.length, [&](u32 i) {
    return memory_.load(idx(acc, i)) + memory_.load(idx(a, i)) * memory_.load(idx(b, i));
  });
}

void DsdEngine::fmacs_imm(Dsd dst, Dsd acc, Dsd a, f32 value) {
  FVDF_CHECK(acc.length == a.length);
  elementwise(Opcode::FMA, dst, a.length, [&](u32 i) {
    return memory_.load(idx(acc, i)) + memory_.load(idx(a, i)) * value;
  });
}

f32 DsdEngine::fadds_scalar(f32 a, f32 b) {
  charge(Opcode::FADD, 1);
  return a + b;
}

f32 DsdEngine::fmuls_scalar(f32 a, f32 b) {
  charge(Opcode::FMUL, 1);
  return a * b;
}

f32 DsdEngine::fdots(Dsd a, Dsd b) {
  FVDF_CHECK(a.length == b.length);
  f32 acc = 0.0f;
  for (u32 i = 0; i < a.length; ++i)
    acc += memory_.load(idx(a, i)) * memory_.load(idx(b, i));
  charge(Opcode::FMA, a.length);
  return acc;
}

f32 DsdEngine::load(u32 word_offset) {
  charge(Opcode::FMOV, 1);
  return memory_.load(word_offset);
}

void DsdEngine::store(u32 word_offset, f32 value) {
  charge(Opcode::FMOV, 1);
  memory_.store(word_offset, value);
}

u8 DsdEngine::load_byte(u32 byte_offset) {
  charge(Opcode::FMOV, 1);
  return memory_.load_byte(byte_offset);
}

void DsdEngine::store_byte(u32 byte_offset, u8 value) {
  charge(Opcode::FMOV, 1);
  memory_.store_byte(byte_offset, value);
}

} // namespace fvdf::wse
