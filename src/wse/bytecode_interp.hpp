#pragma once
// The bytecode interpreter loop.
//
// Header-only template so the fabric can instantiate it against its
// concrete (final) PeContext implementation — every ctx.dsd()/ctx.send()
// call devirtualizes — while the analysis layer instantiates the same
// loop against the generic PeContext for recorded (static) execution.
// One source of truth for instruction semantics, two specializations.
//
// Charged instructions map 1:1 onto the DsdEngine calls the legacy C++
// programs made, in identical order, so cycle cursors, op counters and
// scheduled events — and therefore solver results — are bitwise equal
// between the interpreter and the legacy dispatch path.

#include <cstddef>
#include <type_traits>

#include "common/error.hpp"
#include "wse/bytecode.hpp"

namespace fvdf::wse::bc {

/// Interprets `program` starting at `pc` until RET (or a DECRET join
/// that has not reached zero). Call with the handler pc for the task
/// color being activated, or with `program.entry` at startup.
///
/// `Sampler` is the host profiler's pc-sampling hook (see
/// telemetry/host_profiler.hpp): any type with `u32 countdown`, `u32
/// period` and `record(const void* program, std::size_t code_size, u32
/// pc)`. The default std::nullptr_t instantiation — the one every
/// unprofiled call site gets — contains no sampling code at all, so the
/// hot dispatch loop is unchanged unless a profiler is attached.
template <typename Ctx, typename Sampler = std::nullptr_t>
void run(Ctx& ctx, VmState& st, const Program& program, u16 pc,
         Sampler* sampler = nullptr) {
  auto& e = ctx.dsd();
  const Instr* const code = program.code.data();
  const Dsd* const D = program.dsds.data();
  for (;;) {
    if constexpr (!std::is_same_v<Sampler, std::nullptr_t>) {
      if (sampler != nullptr && --sampler->countdown == 0) {
        sampler->countdown = sampler->period;
        sampler->record(&program, program.code.size(), pc);
      }
    }
    const Instr& ins = code[pc++];
    switch (ins.op) {
    case Op::VMOV: e.fmovs(D[ins.a], D[ins.b]); break;
    case Op::VMOVI: e.fmovs_imm(D[ins.a], ins.imm.f); break;
    case Op::VADD: e.fadds(D[ins.a], D[ins.b], D[ins.c]); break;
    case Op::VSUB: e.fsubs(D[ins.a], D[ins.b], D[ins.c]); break;
    case Op::VMUL: e.fmuls(D[ins.a], D[ins.b], D[ins.c]); break;
    case Op::VMULI: e.fmuls_imm(D[ins.a], D[ins.b], ins.imm.f); break;
    case Op::VMULR: e.fmuls_imm(D[ins.a], D[ins.b], st.f[ins.d]); break;
    case Op::VNEG: e.fnegs(D[ins.a], D[ins.b]); break;
    case Op::VMAC: e.fmacs(D[ins.a], D[ins.b], D[ins.c], D[ins.d]); break;
    case Op::VMACI: e.fmacs_imm(D[ins.a], D[ins.b], D[ins.c], ins.imm.f); break;
    case Op::VMACR: e.fmacs_imm(D[ins.a], D[ins.b], D[ins.c], st.f[ins.d]); break;
    case Op::VDOT: st.f[ins.a] = e.fdots(D[ins.b], D[ins.c]); break;

    case Op::SADD: st.f[ins.a] = e.fadds_scalar(st.f[ins.b], st.f[ins.c]); break;
    case Op::SMUL: st.f[ins.a] = e.fmuls_scalar(st.f[ins.b], st.f[ins.c]); break;
    case Op::SMULI: st.f[ins.a] = e.fmuls_scalar(st.f[ins.b], ins.imm.f); break;
    case Op::LODS: st.f[ins.a] = e.load(ins.imm.u); break;
    case Op::STOS: e.store(ins.imm.u, st.f[ins.a]); break;

    case Op::MOVR: st.f[ins.a] = st.f[ins.b]; break;
    case Op::UMOVI: st.f[ins.a] = ins.imm.f; break;
    case Op::UMUL: st.f[ins.a] = st.f[ins.b] * st.f[ins.c]; break;
    case Op::UMULI: st.f[ins.a] = ins.imm.f * st.f[ins.b]; break;
    case Op::USUB: st.f[ins.a] = st.f[ins.b] - st.f[ins.c]; break;
    case Op::UNEG: st.f[ins.a] = -st.f[ins.b]; break;
    case Op::URCP: st.f[ins.a] = 1.0f / st.f[ins.b]; break;
    case Op::UDIVI: st.f[ins.a] = st.f[ins.b] / ins.imm.f; break;
    case Op::UK2F: st.f[ins.a] = static_cast<f32>(st.k); break;
    case Op::RSTORE: ctx.memory().store(ins.imm.u, st.f[ins.a]); break;

    case Op::FIXD: {
      const Dsd x = D[ins.a];
      const Dsd q = D[ins.b];
      const u32 list = ins.imm.u;
      for (u32 i = 0; i < ins.d; ++i) {
        const u32 lo = e.load_byte(list + 2 * i);
        const u32 hi = e.load_byte(list + 2 * i + 1);
        const u32 z = lo | (hi << 8);
        const f32 v = e.load(x.offset + z);
        e.store(q.offset + z, v);
      }
      break;
    }
    case Op::ZDIR: {
      const Dsd span = D[ins.a];
      const u32 list = ins.imm.u;
      for (u32 i = 0; i < ins.d; ++i) {
        const u32 lo = e.load_byte(list + 2 * i);
        const u32 hi = e.load_byte(list + 2 * i + 1);
        e.store(span.offset + (lo | (hi << 8)), 0.0f);
      }
      break;
    }

    case Op::SEND: ctx.send(ins.a, D[ins.b], ins.imm.u, ins.c); break;
    case Op::SENDC: ctx.send_control(ins.a, ins.imm.u); break;
    case Op::RECV: ctx.recv(ins.a, D[ins.b], ins.c); break;
    case Op::ACT: ctx.activate(ins.a); break;
    case Op::ADVL: ctx.advance_local(ins.imm.u); break;
    case Op::HALT: ctx.halt(); break;

    case Op::PHASE: ctx.mark_phase(ins.a); break;
    case Op::PROG:
      ctx.note_progress(st.k + ins.b, static_cast<f64>(st.f[ins.a]));
      break;

    case Op::JMP: pc = static_cast<u16>(ins.d); break;
    case Op::JTOL:
      if (st.f[ins.a] < ins.imm.f || st.f[ins.a] == 0.0f) {
        pc = static_cast<u16>(ins.d);
      }
      break;
    case Op::JGTR:
      if (st.f[ins.a] > st.f[ins.b]) pc = static_cast<u16>(ins.d);
      break;
    case Op::JKGE:
      if (st.k >= program.consts[ins.imm.u]) pc = static_cast<u16>(ins.d);
      break;
    case Op::DECJNZ:
      if (--st.u[ins.a] != 0) pc = static_cast<u16>(ins.d);
      break;
    case Op::DECRET:
      if (--st.u[ins.a] != 0) return;
      break;
    case Op::SETU: st.u[ins.a] = ins.imm.u; break;
    case Op::KINC: ++st.k; break;
    case Op::CHKPOS:
      FVDF_CHECK_MSG(st.f[ins.a] > 0.0f,
                     "x^T Jx = " << st.f[ins.a] << " is not positive");
      break;
    case Op::SETH: st.handler[ins.a] = static_cast<u16>(ins.d); break;
    case Op::SETC: st.cont[ins.a] = static_cast<u16>(ins.d); break;
    case Op::JIND: pc = st.cont[ins.a]; break;
    case Op::RET: return;

    case Op::kCount:
      FVDF_CHECK_MSG(false, "bytecode: invalid opcode at pc " << (pc - 1));
    }
  }
}

} // namespace fvdf::wse::bc
