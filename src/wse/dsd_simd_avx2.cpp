// AVX2 implementations of the batched DSD kernels. This translation unit is
// the ONLY one compiled with -mavx2, and deliberately without -mfma: AVX2
// does not imply FMA3, so the compiler cannot contract the explicit
// multiply+add pairs below into fused ops. Every element therefore goes
// through the same two-rounding mul-then-add sequence as the scalar
// fallback, keeping the two implementations bitwise-identical.
//
// Pointers may be unaligned (the PE memory arena only guarantees 4-byte
// alignment), so all accesses use loadu/storeu. Sources either equal dst
// exactly or are disjoint from it (the DSD engine enforces this), which
// makes load-all-then-store-per-lane-block safe.

#include "wse/dsd_simd.hpp"

#include <immintrin.h>

namespace fvdf::wse::simd {

namespace {

constexpr u32 kLanes = 8;

void v_fill(f32* dst, f32 value, u32 n) {
  const __m256 v = _mm256_set1_ps(value);
  u32 i = 0;
  for (; i + kLanes <= n; i += kLanes) _mm256_storeu_ps(dst + i, v);
  for (; i < n; ++i) dst[i] = value;
}

void v_mov(f32* dst, const f32* src, u32 n) {
  u32 i = 0;
  for (; i + kLanes <= n; i += kLanes)
    _mm256_storeu_ps(dst + i, _mm256_loadu_ps(src + i));
  for (; i < n; ++i) dst[i] = src[i];
}

void v_add(f32* dst, const f32* a, const f32* b, u32 n) {
  u32 i = 0;
  for (; i + kLanes <= n; i += kLanes)
    _mm256_storeu_ps(dst + i,
                     _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) dst[i] = a[i] + b[i];
}

void v_sub(f32* dst, const f32* a, const f32* b, u32 n) {
  u32 i = 0;
  for (; i + kLanes <= n; i += kLanes)
    _mm256_storeu_ps(dst + i,
                     _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) dst[i] = a[i] - b[i];
}

void v_mul(f32* dst, const f32* a, const f32* b, u32 n) {
  u32 i = 0;
  for (; i + kLanes <= n; i += kLanes)
    _mm256_storeu_ps(dst + i,
                     _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  for (; i < n; ++i) dst[i] = a[i] * b[i];
}

void v_mul_imm(f32* dst, const f32* a, f32 value, u32 n) {
  const __m256 v = _mm256_set1_ps(value);
  u32 i = 0;
  for (; i + kLanes <= n; i += kLanes)
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), v));
  for (; i < n; ++i) dst[i] = a[i] * value;
}

void v_neg(f32* dst, const f32* a, u32 n) {
  // IEEE negation is a sign-bit flip; XOR with -0.0f matches scalar -x
  // bit-for-bit, including for NaNs and zeros.
  const __m256 sign = _mm256_set1_ps(-0.0f);
  u32 i = 0;
  for (; i + kLanes <= n; i += kLanes)
    _mm256_storeu_ps(dst + i, _mm256_xor_ps(_mm256_loadu_ps(a + i), sign));
  for (; i < n; ++i) dst[i] = -a[i];
}

void v_mac(f32* dst, const f32* acc, const f32* a, const f32* b, u32 n) {
  u32 i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(acc + i), prod));
  }
  for (; i < n; ++i) {
    const f32 prod = a[i] * b[i];
    dst[i] = acc[i] + prod;
  }
}

void v_mac_imm(f32* dst, const f32* acc, const f32* a, f32 value, u32 n) {
  const __m256 v = _mm256_set1_ps(value);
  u32 i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(a + i), v);
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(acc + i), prod));
  }
  for (; i < n; ++i) {
    const f32 prod = a[i] * value;
    dst[i] = acc[i] + prod;
  }
}

constexpr Kernels kAvx2{v_fill, v_mov,  v_add, v_sub,    v_mul,
                        v_mul_imm, v_neg, v_mac, v_mac_imm};

} // namespace

const Kernels& avx2_kernels() { return kAvx2; }

} // namespace fvdf::wse::simd
