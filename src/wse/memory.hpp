#pragma once
// Per-PE local memory: a 48 KiB arena with named, aligned, bump-pointer
// allocations. There is no free(): like the real CSL programs, device
// kernels statically lay out their buffers once; the allocator exists to
// *account* for every byte so that out-of-memory is a first-class,
// testable failure (the paper's Sec. III-E1 is entirely about fitting the
// largest possible Nz into 48 KiB).

#include <cstring>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fvdf::wse {

/// Handle to an fp32 array inside a PE's memory.
struct MemSpan {
  u32 offset_words = 0; // offset in 32-bit words
  u32 length = 0;       // number of fp32 elements
};

class PeMemory {
public:
  /// `capacity_bytes` models the PE's SRAM; `reserved_bytes` accounts for
  /// program text + stack (not individually simulated) and is subtracted
  /// from the allocatable budget.
  explicit PeMemory(u64 capacity_bytes = 48 * 1024, u64 reserved_bytes = 2048);

  /// Allocates `count` fp32 words. Throws fvdf::Error with a full
  /// allocation map when the arena would overflow.
  MemSpan alloc_f32(const std::string& name, u32 count);

  /// Allocates raw bytes (e.g. the Dirichlet mask), 4-byte aligned.
  MemSpan alloc_bytes(const std::string& name, u32 count);

  u64 capacity_bytes() const { return capacity_; }
  u64 reserved_bytes() const { return reserved_; }
  u64 used_bytes() const { return used_; }
  u64 free_bytes() const { return capacity_ - reserved_ - used_; }

  // fp32 view of the arena. All accessors are bounds-checked and inline —
  // they sit under every simulated DSD element and every ramp word, so the
  // failure path (diagnostic string building) lives out of line.
  f32 load(u32 word_offset) const {
    check_words(word_offset, 1);
    f32 value;
    std::memcpy(&value, storage_.data() + word_offset * 4u, 4);
    return value;
  }
  void store(u32 word_offset, f32 value) {
    check_words(word_offset, 1);
    std::memcpy(storage_.data() + word_offset * 4u, &value, 4);
  }

  /// Bulk fp32 access for contiguous (stride-1) transfers: one bounds
  /// check and one memcpy instead of a load/store per word. The fabric's
  /// ramp delivery and send-gather paths live on these.
  void load_words(u32 word_offset, f32* dst, u32 count) const {
    check_words(word_offset, count);
    std::memcpy(dst, storage_.data() + static_cast<u64>(word_offset) * 4u,
                static_cast<std::size_t>(count) * 4u);
  }
  void store_words(u32 word_offset, const f32* src, u32 count) {
    check_words(word_offset, count);
    std::memcpy(storage_.data() + static_cast<u64>(word_offset) * 4u, src,
                static_cast<std::size_t>(count) * 4u);
  }
  f32* word_ptr(u32 word_offset) {
    check_words(word_offset, 1);
    return reinterpret_cast<f32*>(storage_.data() + word_offset * 4u);
  }
  const f32* word_ptr(u32 word_offset) const {
    check_words(word_offset, 1);
    return reinterpret_cast<const f32*>(storage_.data() + word_offset * 4u);
  }
  /// Pointer to a whole [offset, offset+count) word range, bounds-checked
  /// once — the entry point of the vectorized DSD fast path.
  f32* span_ptr(u32 word_offset, u32 count) {
    check_words(word_offset, count);
    return reinterpret_cast<f32*>(storage_.data() + word_offset * 4u);
  }
  const f32* span_ptr(u32 word_offset, u32 count) const {
    check_words(word_offset, count);
    return reinterpret_cast<const f32*>(storage_.data() + word_offset * 4u);
  }

  /// Byte view (for mask arrays).
  u8 load_byte(u32 byte_offset) const {
    if (byte_offset >= used_) bounds_fail(byte_offset / 4, 1);
    return storage_[byte_offset];
  }
  void store_byte(u32 byte_offset, u8 value) {
    if (byte_offset >= used_) bounds_fail(byte_offset / 4, 1);
    storage_[byte_offset] = value;
  }

  /// Human-readable allocation map (used in OOM diagnostics and tests).
  std::string allocation_map() const;

private:
  struct Allocation {
    std::string name;
    u32 offset_bytes;
    u32 size_bytes;
  };

  u32 alloc_raw(const std::string& name, u32 bytes);

  void check_words(u32 word_offset, u32 count) const {
    if ((static_cast<u64>(word_offset) + count) * 4 > used_)
      bounds_fail(word_offset, count);
  }
  [[noreturn]] void bounds_fail(u32 word_offset, u32 count) const;

  u64 capacity_;
  u64 reserved_;
  u64 used_ = 0;
  std::vector<u8> storage_;
  std::vector<Allocation> allocations_;
};

} // namespace fvdf::wse
