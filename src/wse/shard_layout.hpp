#pragma once
// Shard layout planning for the parallel fabric engine: how a width x
// height PE grid is partitioned into rectangular tiles.
//
// The partition is a tensor product of a row split and a column split
// (tile_rows x tile_cols rectangles), so every tile has at most four
// neighbors and the shard adjacency graph is a grid — which is what lets
// the engine's per-boundary channels, merge order and min-plus horizon
// propagation stay simple (wse/fabric.hpp). The layout is a pure function
// of the fabric geometry (and an optional explicit override), never of the
// thread count: that is the engine's determinism invariant.
//
// Cost model (choose_shard_layout): among all (tile_rows, tile_cols) with
// enough PEs per tile to amortize the per-round window bookkeeping, take
// the most tiles (parallelism first) and break ties by the smallest total
// boundary cut — (tile_rows-1)*width + (tile_cols-1)*height internal link
// columns/rows — i.e. the best area/perimeter ratio. Square-ish fabrics
// get square-ish tiles (128x128 -> 4x4 tiles of 32x32); narrow fabrics
// degenerate to the 1D strip layouts (1xN -> row strips, Nx1 -> column
// strips); tiny fabrics collapse to a single serial shard.

#include <vector>

#include "common/types.hpp"

namespace fvdf::wse {

/// Explicit shard-grid override for Fabric's constructor. A zero dimension
/// means "choose by the cost model"; a nonzero one is clamped to the
/// fabric extent but otherwise honored (tests and benchmarks use this to
/// force the 1D layout {0 rows, 1 col}, a serial run {1, 1}, or a specific
/// tile grid). {0, 0} — the default — is the full cost-model choice.
struct ShardGrid {
  u32 rows = 0;
  u32 cols = 0;
};

/// A planned tile partition: row_splits/col_splits are the band edges
/// (size tile_rows+1 / tile_cols+1, starting at 0 and ending at
/// height / width; every band is non-empty). Tile (r, c) — shard id
/// r * tile_cols + c — owns rows [row_splits[r], row_splits[r+1]) x
/// cols [col_splits[c], col_splits[c+1]).
struct ShardLayout {
  u32 tile_rows = 1;
  u32 tile_cols = 1;
  std::vector<i64> row_splits;
  std::vector<i64> col_splits;

  u32 tiles() const { return tile_rows * tile_cols; }
};

/// Upper bound on the spatial decomposition (and so on useful workers).
constexpr u32 kMaxShards = 16;

/// A tile must own at least this many PEs to be worth a window round's
/// bookkeeping; smaller fabrics get proportionally fewer shards, down to
/// one (serial). This is what makes shard_count() the *useful* worker
/// count the engine clamps to.
constexpr u32 kMinTilePes = 16;

/// Chooses the tile partition for a width x height fabric (see the cost
/// model above). Deterministic; never returns empty bands.
ShardLayout choose_shard_layout(i64 width, i64 height, ShardGrid grid = {});

} // namespace fvdf::wse
