#include "analysis/abstract_interp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "wse/memory.hpp"

namespace fvdf::analysis {

using wse::Dsd;
using wse::TimingParams;
using wse::bc::Instr;
using wse::bc::Op;
using wse::bc::Program;

namespace {

constexpr f64 kInf = std::numeric_limits<f64>::infinity();

void push_unique(std::vector<u32>& v, u32 value) {
  if (std::find(v.begin(), v.end(), value) == v.end()) v.push_back(value);
}

// ---------------------------------------------------------------------------
// Charged-cost model. Mirrors what bytecode_interp.hpp charges through
// DsdEngine for one execution of the instruction: vector ops charge once
// with the destination length, charged scalars charge a length-1 op,
// FIXD charges 4 unit FMOVs per pinned entry (2 byte loads + load +
// store) and ZDIR 3. Everything else (register math, fabric calls,
// control flow) is uncharged on the task cursor.
// ---------------------------------------------------------------------------

struct InstrCost {
  f64 cycles = 0;
  u64 charged = 0; // number of DsdEngine charge calls
};

f64 one_charge(const TimingParams& t, Opcode op, u64 elements) {
  return t.compute_scale *
         (t.op_issue_cycles +
          static_cast<f64>(elements) * t.cycles_per_element(op));
}

InstrCost instr_cost(const Program& p, const Instr& ins,
                     const TimingParams& t) {
  auto len = [&](u32 idx) -> u64 {
    return idx < p.dsds.size() ? p.dsds[idx].length : 0;
  };
  switch (ins.op) {
  case Op::VMOV: case Op::VMOVI:
    return {one_charge(t, Opcode::FMOV, len(ins.a)), 1};
  case Op::VADD:
    return {one_charge(t, Opcode::FADD, len(ins.a)), 1};
  case Op::VSUB:
    return {one_charge(t, Opcode::FSUB, len(ins.a)), 1};
  case Op::VMUL: case Op::VMULI: case Op::VMULR:
    return {one_charge(t, Opcode::FMUL, len(ins.a)), 1};
  case Op::VNEG:
    return {one_charge(t, Opcode::FNEG, len(ins.a)), 1};
  case Op::VMAC: case Op::VMACI: case Op::VMACR:
    return {one_charge(t, Opcode::FMA, len(ins.a)), 1};
  case Op::VDOT:
    return {one_charge(t, Opcode::FMA, len(ins.b)), 1};
  case Op::SADD:
    return {one_charge(t, Opcode::FADD, 1), 1};
  case Op::SMUL: case Op::SMULI:
    return {one_charge(t, Opcode::FMUL, 1), 1};
  case Op::LODS: case Op::STOS:
    return {one_charge(t, Opcode::FMOV, 1), 1};
  case Op::FIXD:
    return {static_cast<f64>(ins.d) * 4.0 * one_charge(t, Opcode::FMOV, 1),
            4ull * ins.d};
  case Op::ZDIR:
    return {static_cast<f64>(ins.d) * 3.0 * one_charge(t, Opcode::FMOV, 1),
            3ull * ins.d};
  default:
    return {0, 0};
  }
}

// ---------------------------------------------------------------------------
// Word spans.
// ---------------------------------------------------------------------------

struct Span {
  i64 lo = 0;
  i64 hi = -1; // inclusive; hi < lo means empty
  bool empty() const { return hi < lo; }
  bool overlaps(const Span& o) const {
    return !empty() && !o.empty() && lo <= o.hi && o.lo <= hi;
  }
};

Span dsd_span(const Program& p, u32 idx) {
  if (idx >= p.dsds.size()) return {};
  const Dsd& d = p.dsds[idx];
  if (d.length == 0) return {};
  const i64 first = static_cast<i64>(d.offset);
  const i64 last =
      first + static_cast<i64>(d.length - 1) * static_cast<i64>(d.stride);
  return {std::min(first, last), std::max(first, last)};
}

/// Words touched by a FIXD/ZDIR index list of `count` u16 entries at
/// byte offset `byte_off`.
Span list_span(u32 byte_off, u32 count) {
  if (count == 0) return {};
  return {static_cast<i64>(byte_off) / 4,
          static_cast<i64>(byte_off + 2ull * count - 1) / 4};
}

struct Analyzer {
  Analyzer(const Program& program, const AnalysisParams& params_,
           ProgramAnalysis& out_)
      : p(program), params(params_), out(out_) {}

  const Program& p;
  const AnalysisParams& params;
  ProgramAnalysis& out;
  u32 limit = 0; // arena size in words

  std::vector<InstrCost> block_cost;   // full cost per block
  std::vector<std::vector<u32>> preds; // predecessor block ids

  void defect(BcAnalysis analysis, BcSeverity sev, u32 pc,
              const std::string& message) {
    out.defects.push_back(BcDefect{analysis, sev, pc, message});
  }

  // --- pass 1: structural -------------------------------------------------

  void check_control_flow() {
    for (const CfgBlock& b : out.cfg.blocks) {
      if (b.reachable && b.falls_off_end) {
        std::ostringstream os;
        os << "execution can run past the end of the "
           << p.code.size() << "-instruction stream (no RET on this path)";
        defect(BcAnalysis::ControlFlow, BcSeverity::Error, b.last, os.str());
      }
    }
  }

  // --- pass 2: register liveness -------------------------------------------

  void check_liveness() {
    std::array<bool, wse::bc::kNumFRegs> f_def{}, f_read{};
    std::array<bool, wse::bc::kNumURegs> u_set{}, u_dec{};
    std::array<bool, wse::bc::kNumCRegs> c_jind{};
    auto def = [&](u32 r) { if (r < wse::bc::kNumFRegs) f_def[r] = true; };
    auto read = [&](u32 r) { if (r < wse::bc::kNumFRegs) f_read[r] = true; };

    for (u32 pc = 0; pc < p.code.size(); ++pc) {
      if (!out.cfg.pc_reachable(pc)) continue;
      const Instr& ins = p.code[pc];
      switch (ins.op) {
      case Op::VMULR: case Op::VMACR: read(ins.d); break;
      case Op::VDOT: def(ins.a); break;
      case Op::SADD: case Op::SMUL: case Op::UMUL: case Op::USUB:
        def(ins.a); read(ins.b); read(ins.c); break;
      case Op::SMULI: case Op::MOVR: case Op::UMULI: case Op::UNEG:
      case Op::URCP: case Op::UDIVI:
        def(ins.a); read(ins.b); break;
      case Op::LODS: case Op::UMOVI: case Op::UK2F: def(ins.a); break;
      case Op::STOS: case Op::RSTORE: case Op::CHKPOS: case Op::PROG:
      case Op::JTOL:
        read(ins.a); break;
      case Op::JGTR: read(ins.a); read(ins.b); break;
      case Op::SETU:
        if (ins.a < wse::bc::kNumURegs) u_set[ins.a] = true;
        break;
      case Op::DECJNZ: case Op::DECRET:
        if (ins.a < wse::bc::kNumURegs) u_dec[ins.a] = true;
        break;
      case Op::JIND:
        if (ins.a < wse::bc::kNumCRegs) c_jind[ins.a] = true;
        break;
      default: break;
      }
    }

    // pc-accurate use-before-def errors, and def-site dead stores.
    for (u32 pc = 0; pc < p.code.size(); ++pc) {
      if (!out.cfg.pc_reachable(pc)) continue;
      const Instr& ins = p.code[pc];
      std::ostringstream os;
      switch (ins.op) {
      case Op::JIND:
        if (ins.a < wse::bc::kNumCRegs &&
            out.cfg.cont_targets[ins.a].empty()) {
          os << "JIND through continuation cont" << static_cast<u32>(ins.a)
             << " that no reachable SETC ever arms (jumps to pc 0)";
          defect(BcAnalysis::RegisterLiveness, BcSeverity::Error, pc,
                 os.str());
        }
        break;
      case Op::DECJNZ: case Op::DECRET:
        if (ins.a < wse::bc::kNumURegs && !u_set[ins.a]) {
          os << wse::bc::to_string(ins.op) << " on counter u"
             << static_cast<u32>(ins.a)
             << " that no reachable SETU ever initializes (first decrement "
                "wraps the u32 to 0xffffffff)";
          defect(BcAnalysis::RegisterLiveness, BcSeverity::Error, pc,
                 os.str());
        }
        break;
      case Op::SETC:
        if (ins.a < wse::bc::kNumCRegs && !c_jind[ins.a]) {
          os << "dead store: continuation cont" << static_cast<u32>(ins.a)
             << " is armed but no reachable JIND ever jumps through it";
          defect(BcAnalysis::RegisterLiveness, BcSeverity::Warning, pc,
                 os.str());
        }
        break;
      case Op::SETU:
        if (ins.a < wse::bc::kNumURegs && !u_dec[ins.a]) {
          os << "dead store: counter u" << static_cast<u32>(ins.a)
             << " is initialized but never decremented by reachable code";
          defect(BcAnalysis::RegisterLiveness, BcSeverity::Warning, pc,
                 os.str());
        }
        break;
      default: break;
      }
    }
  }

  // --- pass 3: memory bounds ------------------------------------------------

  void check_span(u32 pc, const char* what, u32 idx) {
    const Span s = dsd_span(p, idx);
    if (s.empty()) return; // empty or out-of-table (lint reports the latter)
    if (s.lo < 0 || s.hi >= static_cast<i64>(limit)) {
      const Dsd& d = p.dsds[idx];
      std::ostringstream os;
      os << wse::bc::to_string(p.code[pc].op) << " " << what << " dsd" << idx
         << " covers words [" << s.lo << ".." << s.hi << "] (offset "
         << d.offset << ", length " << d.length << ", stride " << d.stride
         << "), outside the " << limit << "-word PE arena";
      defect(BcAnalysis::MemoryBounds, BcSeverity::Error, pc, os.str());
    }
  }

  void check_word(u32 pc, u32 word) {
    if (word >= limit) {
      std::ostringstream os;
      os << wse::bc::to_string(p.code[pc].op) << " word offset " << word
         << " outside the " << limit << "-word PE arena";
      defect(BcAnalysis::MemoryBounds, BcSeverity::Error, pc, os.str());
    }
  }

  void check_list(u32 pc, u32 byte_off, u32 count) {
    if (count == 0) return;
    if (static_cast<u64>(byte_off) + 2ull * count >
        static_cast<u64>(limit) * 4) {
      std::ostringstream os;
      os << wse::bc::to_string(p.code[pc].op) << " index list bytes ["
         << byte_off << ".." << byte_off + 2 * count - 1 << "] outside the "
         << limit * 4 << "-byte PE arena";
      defect(BcAnalysis::MemoryBounds, BcSeverity::Error, pc, os.str());
    }
  }

  void check_memory_bounds() {
    for (u32 pc = 0; pc < p.code.size(); ++pc) {
      if (!out.cfg.pc_reachable(pc)) continue;
      const Instr& ins = p.code[pc];
      switch (ins.op) {
      case Op::VMOVI:
        check_span(pc, "dst", ins.a);
        break;
      case Op::VMOV: case Op::VMULI: case Op::VMULR: case Op::VNEG:
        check_span(pc, "dst", ins.a);
        check_span(pc, "src", ins.b);
        break;
      case Op::VADD: case Op::VSUB: case Op::VMUL:
      case Op::VMACI: case Op::VMACR:
        check_span(pc, "dst", ins.a);
        check_span(pc, "src", ins.b);
        check_span(pc, "src", ins.c);
        break;
      case Op::VMAC:
        check_span(pc, "dst", ins.a);
        check_span(pc, "src", ins.b);
        check_span(pc, "src", ins.c);
        check_span(pc, "src", ins.d);
        break;
      case Op::VDOT:
        check_span(pc, "src", ins.b);
        check_span(pc, "src", ins.c);
        break;
      case Op::LODS: case Op::STOS: case Op::RSTORE:
        check_word(pc, ins.imm.u);
        break;
      case Op::FIXD:
        check_span(pc, "src", ins.a);
        check_span(pc, "dst", ins.b);
        check_list(pc, ins.imm.u, ins.d);
        break;
      case Op::ZDIR:
        check_span(pc, "span", ins.a);
        check_list(pc, ins.imm.u, ins.d);
        break;
      case Op::SEND: case Op::RECV:
        check_span(pc, "buffer", ins.b);
        break;
      default: break;
      }
    }
  }

  // --- pass 4: in-flight SEND/RECV overlap ----------------------------------
  //
  // Forward may-dataflow within an activation: after a SEND the modeled
  // hardware streams dsd[b] out asynchronously, so writing any word of
  // that span before the activation ends races the microthread (the
  // simulator gathers at send time and would silently diverge from
  // silicon). A registered RECV's buffer is likewise owned by the fabric
  // until its completion fires — which is necessarily a *later*
  // activation, so any same-activation access to it is a hazard. State
  // is a bitmask of in-flight send/recv sites, unioned over predecessor
  // blocks until fixed point, then reported in one deterministic pass.

  struct FlightSite {
    u32 pc = 0;
    u8 color = 0;
    Span span;
    bool is_recv = false;
  };

  void check_inflight_overlap() {
    std::vector<FlightSite> sites;
    std::vector<u32> site_of_pc(p.code.size(), 0xffffffffu);
    for (u32 pc = 0; pc < p.code.size(); ++pc) {
      if (!out.cfg.pc_reachable(pc)) continue;
      const Instr& ins = p.code[pc];
      if (ins.op != Op::SEND && ins.op != Op::RECV) continue;
      if (sites.size() >= 64) break; // mask width; far beyond shipped sizes
      site_of_pc[pc] = static_cast<u32>(sites.size());
      sites.push_back(FlightSite{pc, ins.a, dsd_span(p, ins.b),
                                 ins.op == Op::RECV});
    }
    if (sites.empty()) return;

    const auto nblocks = out.cfg.blocks.size();
    std::vector<u64> in(nblocks, 0);
    // Fixed point: transfer adds site bits; RET kills the state (no succ).
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = 0; b < nblocks; ++b) {
        const CfgBlock& block = out.cfg.blocks[b];
        if (!block.reachable) continue;
        u64 state = in[b];
        for (u32 pc = block.first; pc <= block.last; ++pc)
          if (site_of_pc[pc] != 0xffffffffu) state |= 1ull << site_of_pc[pc];
        for (u32 s : block.succ)
          if ((in[s] | state) != in[s]) { in[s] |= state; changed = true; }
      }
    }

    // Reporting pass: walk each block once with its stable entry state.
    // Only *writes* are hazards. Reads are deterministic in the simulator:
    // an activation runs to completion at one event instant, so a pending
    // RECV cannot land mid-activation and a read of a sent buffer sees the
    // gathered value. A write to a pending RECV span is an Error (the
    // arrival order decides which value survives); a write to an in-flight
    // SEND span is a Warning — the simulator gathers the payload at send
    // time so results are unaffected, but on the modeled hardware the
    // asynchronous send microthread would race the overwrite.
    std::set<std::pair<u32, u32>> reported; // (pc, site)
    auto report = [&](u32 pc, u64 state, const Span& written) {
      if (written.empty()) return;
      for (u32 s = 0; s < sites.size(); ++s) {
        if (!(state & (1ull << s))) continue;
        const FlightSite& site = sites[s];
        if (site.pc == pc || !written.overlaps(site.span)) continue;
        if (!reported.insert({pc, s}).second) continue;
        std::ostringstream os;
        os << "write to words [" << written.lo << ".." << written.hi << "] ";
        if (site.is_recv)
          os << "overlaps the buffer registered by the RECV at pc " << site.pc
             << " (color " << static_cast<u32>(site.color)
             << ") before its completion: the arrival order decides which "
                "value survives";
        else
          os << "overlaps the in-flight buffer of the SEND at pc " << site.pc
             << " (color " << static_cast<u32>(site.color)
             << "): on hardware the asynchronous send microthread races the "
                "overwrite (the simulator gathers at send time)";
        defect(BcAnalysis::MemoryBounds,
               site.is_recv ? BcSeverity::Error : BcSeverity::Warning, pc,
               os.str());
      }
    };

    for (std::size_t b = 0; b < nblocks; ++b) {
      const CfgBlock& block = out.cfg.blocks[b];
      if (!block.reachable) continue;
      u64 state = in[b];
      for (u32 pc = block.first; pc <= block.last; ++pc) {
        const Instr& ins = p.code[pc];
        auto wr = [&](u32 idx) { report(pc, state, dsd_span(p, idx)); };
        switch (ins.op) {
        case Op::VMOV: case Op::VMOVI: case Op::VADD: case Op::VSUB:
        case Op::VMUL: case Op::VMULI: case Op::VMULR: case Op::VNEG:
        case Op::VMAC: case Op::VMACI: case Op::VMACR:
          wr(ins.a); break;
        case Op::STOS: case Op::RSTORE:
          report(pc, state, Span{ins.imm.u, ins.imm.u});
          break;
        case Op::FIXD: wr(ins.b); break;
        case Op::ZDIR: wr(ins.a); break;
        default: break;
        }
        if (site_of_pc[pc] != 0xffffffffu) state |= 1ull << site_of_pc[pc];
      }
    }
  }

  // --- pass 5: per-entry cost bounds + color flow ---------------------------

  void analyze_costs() {
    const auto nblocks = out.cfg.blocks.size();
    block_cost.assign(nblocks, InstrCost{});
    preds.assign(nblocks, {});
    for (std::size_t b = 0; b < nblocks; ++b) {
      const CfgBlock& block = out.cfg.blocks[b];
      for (u32 pc = block.first; pc <= block.last; ++pc) {
        const InstrCost c = instr_cost(p, p.code[pc], params.timing);
        block_cost[b].cycles += c.cycles;
        block_cost[b].charged += c.charged;
      }
      for (u32 s : block.succ) preds[s].push_back(static_cast<u32>(b));
    }

    // Per-color minimum charged cycles before the first SEND, minimized
    // over every entry point.
    std::array<f64, wse::kNumColors> best_pre{};
    best_pre.fill(kInf);

    std::set<u32> reported_loops;
    for (const CfgEntry& entry : out.cfg.entries)
      out.handlers.push_back(
          entry_cost(entry, best_pre, reported_loops));

    collect_color_flow(best_pre);
  }

  /// DFS from the entry block: classifies back edges, returns reverse
  /// postorder of the forward (DAG) subgraph.
  struct EntryGraph {
    std::vector<u32> order;                      // topological over DAG
    std::vector<std::pair<u32, u32>> back_edges; // (from, to)
    std::vector<u8> in_walk; // block visited from this entry
  };

  EntryGraph walk_entry(u32 entry_block) const {
    EntryGraph g;
    const auto nblocks = out.cfg.blocks.size();
    g.in_walk.assign(nblocks, 0);
    enum : u8 { White, Gray, Black };
    std::vector<u8> color(nblocks, White);
    struct Frame { u32 block; u32 next; };
    std::vector<Frame> stack{{entry_block, 0}};
    color[entry_block] = Gray;
    g.in_walk[entry_block] = 1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const CfgBlock& block = out.cfg.blocks[f.block];
      if (f.next < block.succ.size()) {
        const u32 s = block.succ[f.next++];
        if (color[s] == White) {
          color[s] = Gray;
          g.in_walk[s] = 1;
          stack.push_back({s, 0});
        } else if (color[s] == Gray) {
          g.back_edges.push_back({f.block, s});
        }
      } else {
        color[f.block] = Black;
        g.order.push_back(f.block);
        stack.pop_back();
      }
    }
    std::reverse(g.order.begin(), g.order.end());
    return g;
  }

  /// Natural loop body of back edge latch->head: head plus every block
  /// that reaches the latch without passing through head.
  std::vector<u32> loop_body(u32 latch, u32 head) const {
    std::vector<u8> in_body(out.cfg.blocks.size(), 0);
    in_body[head] = 1;
    std::vector<u32> work;
    if (!in_body[latch]) { in_body[latch] = 1; work.push_back(latch); }
    while (!work.empty()) {
      const u32 b = work.back();
      work.pop_back();
      for (u32 q : preds[b])
        if (!in_body[q]) { in_body[q] = 1; work.push_back(q); }
    }
    std::vector<u32> body;
    for (u32 b = 0; b < in_body.size(); ++b)
      if (in_body[b]) body.push_back(b);
    return body;
  }

  /// Trip count of a DECJNZ back edge, provable only from a single
  /// positive SETU immediate outside the loop body. Returns 0 when the
  /// loop cannot be bounded (a defect is emitted at the latch pc).
  u64 bound_loop(u32 latch, u32 head, std::set<u32>& reported) {
    const CfgBlock& lb = out.cfg.blocks[latch];
    const Instr& term = p.code[lb.last];
    const auto fail = [&](const std::string& why) {
      if (reported.insert(lb.last).second)
        defect(BcAnalysis::CostBounds, BcSeverity::Error, lb.last, why);
      return 0ull;
    };
    if (term.op != Op::DECJNZ) {
      std::ostringstream os;
      os << "loop closed by " << wse::bc::to_string(term.op)
         << " cannot be statically bounded";
      return fail(os.str());
    }
    const u32 reg = term.a;
    const std::vector<u32> body = loop_body(latch, head);
    std::vector<u32> setu_values;
    bool setu_in_body = false;
    for (u32 pc = 0; pc < p.code.size(); ++pc) {
      if (!out.cfg.pc_reachable(pc)) continue;
      const Instr& ins = p.code[pc];
      if (ins.op != Op::SETU || ins.a != reg) continue;
      push_unique(setu_values, ins.imm.u);
      if (std::find(body.begin(), body.end(), out.cfg.block_of[pc]) !=
          body.end())
        setu_in_body = true;
    }
    std::ostringstream os;
    os << "unbounded DECJNZ loop on counter u" << reg << ": ";
    if (setu_values.empty()) {
      // Already an error from the liveness pass; still unbounded here.
      os << "no reachable SETU initializes it";
      return fail(os.str());
    }
    if (setu_in_body) {
      os << "a SETU inside the loop body re-initializes it every iteration";
      return fail(os.str());
    }
    if (setu_values.size() > 1) {
      os << setu_values.size()
         << " distinct SETU immediates reach it; trip count is not provable";
      return fail(os.str());
    }
    if (setu_values[0] == 0) {
      os << "SETU immediate 0 wraps to 0xffffffff on the first decrement";
      return fail(os.str());
    }
    return setu_values[0];
  }

  HandlerCost entry_cost(const CfgEntry& entry,
                         std::array<f64, wse::kNumColors>& best_pre,
                         std::set<u32>& reported_loops) {
    HandlerCost cost;
    cost.label = entry.label();
    cost.entry_pc = entry.pc;
    if (entry.block == kNoBlock) return cost;

    const EntryGraph g = walk_entry(entry.block);
    std::set<u64> back; // encoded back edges, skipped in DAG propagation
    f64 loop_extra_cycles = 0;
    u64 loop_extra_ops = 0;
    for (const auto& [latch, head] : g.back_edges) {
      back.insert(static_cast<u64>(latch) << 32 | head);
      const u64 trips = bound_loop(latch, head, reported_loops);
      if (trips == 0) {
        cost.bounded = false;
        continue;
      }
      for (u32 b : loop_body(latch, head)) {
        loop_extra_cycles +=
            static_cast<f64>(trips - 1) * block_cost[b].cycles;
        loop_extra_ops += (trips - 1) * block_cost[b].charged;
      }
    }

    // Shortest/longest-path over the forward DAG in topological order.
    const auto nblocks = out.cfg.blocks.size();
    std::vector<f64> min_in(nblocks, kInf), max_in(nblocks, -kInf);
    std::vector<u64> ops_min(nblocks, 0), ops_max(nblocks, 0);
    min_in[entry.block] = max_in[entry.block] = 0;
    f64 exit_min = kInf, exit_max = -kInf;
    u64 exit_ops_min = 0, exit_ops_max = 0;
    bool any_exit = false;
    for (u32 b : g.order) {
      if (min_in[b] == kInf) continue;
      const CfgBlock& block = out.cfg.blocks[b];
      const f64 out_min = min_in[b] + block_cost[b].cycles;
      const f64 out_max = max_in[b] + block_cost[b].cycles;
      const u64 out_ops_min = ops_min[b] + block_cost[b].charged;
      const u64 out_ops_max = ops_max[b] + block_cost[b].charged;

      // min_cycles_before_send: charged prefix inside the block.
      f64 prefix = 0;
      u64 prefix_ops = 0;
      f64 decret_prefix = kInf;
      u64 decret_prefix_ops = 0;
      for (u32 pc = block.first; pc <= block.last; ++pc) {
        const Instr& ins = p.code[pc];
        if (ins.op == Op::SEND || ins.op == Op::SENDC) {
          const u8 c = ins.a;
          if (c < wse::kNumColors)
            best_pre[c] = std::min(best_pre[c], min_in[b] + prefix);
        }
        const InstrCost ic = instr_cost(p, ins, params.timing);
        prefix += ic.cycles;
        prefix_ops += ic.charged;
        if (ins.op == Op::DECRET && decret_prefix == kInf) {
          decret_prefix = prefix;
          decret_prefix_ops = ops_min[b] + prefix_ops;
        }
      }

      const bool exits = block.ends_activation || block.falls_off_end ||
                         (p.code[block.last].op == Op::JIND &&
                          block.succ.empty());
      if (exits) {
        any_exit = true;
        if (out_min < exit_min) { exit_min = out_min; exit_ops_min = out_ops_min; }
        if (out_max > exit_max) { exit_max = out_max; exit_ops_max = out_ops_max; }
      }
      if (block.may_return && decret_prefix != kInf) {
        any_exit = true;
        const f64 early = min_in[b] + decret_prefix;
        if (early < exit_min) { exit_min = early; exit_ops_min = decret_prefix_ops; }
      }
      for (u32 s : block.succ) {
        if (back.count(static_cast<u64>(b) << 32 | s)) continue;
        if (out_min < min_in[s]) { min_in[s] = out_min; ops_min[s] = out_ops_min; }
        if (out_max > max_in[s]) { max_in[s] = out_max; ops_max[s] = out_ops_max; }
      }
    }

    if (any_exit) {
      cost.min_cycles = exit_min;
      cost.min_charged_ops = exit_ops_min;
      if (cost.bounded) {
        cost.max_cycles = exit_max + loop_extra_cycles;
        cost.max_charged_ops = exit_ops_max + loop_extra_ops;
      }
    } else {
      cost.bounded = false; // every path loops forever (defect already filed)
    }
    return cost;
  }

  void collect_color_flow(const std::array<f64, wse::kNumColors>& best_pre) {
    std::array<u32, wse::kNumColors> min_words{};
    min_words.fill(0xffffffffu);
    for (u32 pc = 0; pc < p.code.size(); ++pc) {
      if (!out.cfg.pc_reachable(pc)) continue;
      const Instr& ins = p.code[pc];
      if (ins.a >= wse::kNumColors) continue;
      ColorFlow& flow = out.colors[ins.a];
      switch (ins.op) {
      case Op::SEND: {
        flow.sends = true;
        const u32 words =
            ins.b < p.dsds.size() ? p.dsds[ins.b].length : 0;
        push_unique(flow.send_lengths, words);
        flow.send_sites += 1;
        flow.send_words_total += words;
        min_words[ins.a] = std::min(min_words[ins.a], words);
        break;
      }
      case Op::SENDC:
        flow.sends_control = true;
        min_words[ins.a] = 0; // control wavelet: weakest word bound
        break;
      case Op::RECV: {
        flow.recvs = true;
        const u32 words =
            ins.b < p.dsds.size() ? p.dsds[ins.b].length : 0;
        push_unique(flow.recv_lengths, words);
        break;
      }
      case Op::SETH:
        flow.task_handler = true;
        break;
      default: break;
      }
    }
    for (u32 c = 0; c < wse::kNumColors; ++c) {
      ColorFlow& flow = out.colors[c];
      if (flow.sends || flow.sends_control) {
        flow.min_send_words = min_words[c] == 0xffffffffu ? 0 : min_words[c];
        flow.min_cycles_before_send =
            best_pre[c] == kInf ? 0 : best_pre[c];
      }
    }
  }

  void run() {
    out.cfg = build_cfg(p);
    limit = params.memory_limit_words;
    if (limit == 0) {
      const wse::PeMemory probe;
      limit = static_cast<u32>(
          (probe.capacity_bytes() - probe.reserved_bytes()) / 4);
    }
    check_control_flow();
    check_liveness();
    check_memory_bounds();
    check_inflight_overlap();
    analyze_costs();
    std::stable_sort(out.defects.begin(), out.defects.end(),
                     [](const BcDefect& a, const BcDefect& b) {
                       return a.pc < b.pc;
                     });
  }
};

} // namespace

const char* to_string(BcAnalysis analysis) {
  switch (analysis) {
  case BcAnalysis::ControlFlow: return "bytecode-control-flow";
  case BcAnalysis::MemoryBounds: return "bytecode-memory";
  case BcAnalysis::RegisterLiveness: return "bytecode-liveness";
  case BcAnalysis::CostBounds: return "bytecode-cost";
  }
  return "?";
}

const char* to_string(BcSeverity severity) {
  return severity == BcSeverity::Error ? "error" : "warning";
}

std::string BcDefect::format() const {
  std::ostringstream os;
  os << to_string(severity) << " [" << to_string(analysis) << "] pc " << pc
     << ": " << message;
  return os.str();
}

u64 ProgramAnalysis::error_count() const {
  u64 n = 0;
  for (const BcDefect& d : defects)
    if (d.severity == BcSeverity::Error) ++n;
  return n;
}

u64 ProgramAnalysis::warning_count() const {
  return defects.size() - error_count();
}

std::string ProgramAnalysis::summary(const std::string& program_name) const {
  std::ostringstream os;
  os << "bytecode \"" << program_name << "\": " << cfg.blocks.size()
     << " block(s), " << cfg.entries.size() << " entry point(s), "
     << cfg.reachable_instructions << " reachable instruction(s); "
     << error_count() << " error(s), " << warning_count() << " warning(s)\n";
  for (const HandlerCost& h : handlers) {
    os << "  " << h.label << " @ pc " << h.entry_pc << ": cycles ["
       << h.min_cycles << ", ";
    if (h.bounded)
      os << h.max_cycles;
    else
      os << "unbounded";
    os << "], charged ops [" << h.min_charged_ops << ", ";
    if (h.bounded)
      os << h.max_charged_ops;
    else
      os << "unbounded";
    os << "]\n";
  }
  for (u32 c = 0; c < wse::kNumColors; ++c) {
    const ColorFlow& flow = colors[c];
    if (!flow.sends && !flow.sends_control && !flow.recvs &&
        !flow.task_handler)
      continue;
    os << "  c" << c << ":";
    if (flow.sends)
      os << " send >=" << flow.min_send_words << "w (>="
         << flow.min_cycles_before_send << " cycles to first send)";
    if (flow.sends_control) os << " send-control";
    if (flow.recvs) {
      os << " recv {";
      for (std::size_t i = 0; i < flow.recv_lengths.size(); ++i)
        os << (i ? "," : "") << flow.recv_lengths[i];
      os << "}";
    }
    if (flow.task_handler) os << " handler";
    os << "\n";
  }
  for (const BcDefect& d : defects) os << "  " << d.format() << "\n";
  return os.str();
}

ProgramAnalysis analyze_program(const Program& program,
                                const AnalysisParams& params) {
  ProgramAnalysis out;
  Analyzer analyzer{program, params, out};
  analyzer.run();
  return out;
}

} // namespace fvdf::analysis
