#include "analysis/fixtures.hpp"

#include <array>
#include <memory>

#include "csl/allreduce.hpp"
#include "csl/any_source.hpp"
#include "csl/broadcast.hpp"
#include "csl/halo.hpp"
#include "wse/dsd.hpp"
#include "wse/router.hpp"

namespace fvdf::analysis::fixtures {

using wse::Color;
using wse::ColorConfig;
using wse::Dir;
using wse::DirMask;
using wse::Dsd;
using wse::MemSpan;
using wse::PeContext;
using wse::PeCoord;
using wse::PeProgram;
using wse::ProgramFactory;
using wse::ProgramManifest;
using wse::SwitchPosition;

namespace {

// ---------- known-good collective drivers ----------

class HaloProgram final : public PeProgram {
public:
  explicit HaloProgram(u32 nz) : nz_(nz) {}

  void on_start(PeContext& ctx) override {
    halo_.configure(ctx);
    column_ = ctx.memory().alloc_f32("column", nz_);
    for (auto& buf : halos_) buf = ctx.memory().alloc_f32("halo", nz_);
    halo_.start(
        ctx, wse::dsd(column_), wse::dsd(halos_[0]), wse::dsd(halos_[1]),
        wse::dsd(halos_[2]), wse::dsd(halos_[3]), nullptr,
        [](PeContext& c) { c.halt(); });
  }

  void on_task(PeContext& ctx, Color color) override { halo_.on_task(ctx, color); }

  ProgramManifest manifest(PeCoord coord, i64 width, i64 height) const override {
    return halo_.manifest(coord, width, height);
  }

private:
  u32 nz_;
  csl::HaloExchange halo_;
  MemSpan column_{};
  std::array<MemSpan, 4> halos_{};
};

class AllReduceProgram final : public PeProgram {
public:
  void on_start(PeContext& ctx) override {
    reduce_.configure(ctx);
    reduce_.start(ctx, 1.0f, [](PeContext& c, f32) { c.halt(); });
  }

  void on_task(PeContext& ctx, Color color) override { reduce_.on_task(ctx, color); }

  ProgramManifest manifest(PeCoord coord, i64 width, i64 height) const override {
    return reduce_.manifest(coord, width, height);
  }

private:
  csl::AllReduce reduce_;
};

class EastwardProgram final : public PeProgram {
public:
  explicit EastwardProgram(u32 block) : block_(block) {}

  void on_start(PeContext& ctx) override {
    exchange_.configure(ctx);
    mine_ = ctx.memory().alloc_f32("mine", block_);
    from_west_ = ctx.memory().alloc_f32("from_west", block_);
    exchange_.start(ctx, wse::dsd(mine_), wse::dsd(from_west_),
                    [](PeContext& c) { c.halt(); });
  }

  void on_task(PeContext& ctx, Color color) override {
    exchange_.on_task(ctx, color);
  }

  ProgramManifest manifest(PeCoord coord, i64 width, i64 height) const override {
    return exchange_.manifest(coord, width, height);
  }

private:
  u32 block_;
  csl::EastwardExchange exchange_;
  MemSpan mine_{};
  MemSpan from_west_{};
};

class AnySourceProgram final : public PeProgram {
public:
  AnySourceProgram(PeCoord source, u32 block) : source_(source), block_(block) {}

  void on_start(PeContext& ctx) override {
    broadcast_.configure(ctx, source_);
    block_span_ = ctx.memory().alloc_f32("block", block_);
    broadcast_.start(ctx, wse::dsd(block_span_), [](PeContext& c) { c.halt(); });
  }

  void on_task(PeContext& ctx, Color color) override {
    broadcast_.on_task(ctx, color);
  }

  ProgramManifest manifest(PeCoord coord, i64 width, i64 height) const override {
    return broadcast_.manifest(coord, width, height);
  }

private:
  PeCoord source_;
  u32 block_;
  csl::AnySourceBroadcast broadcast_;
  MemSpan block_span_{};
};

// ---------- seeded defects ----------

constexpr Color kDefectColor = 5;

ColorConfig one_position(DirMask rx, DirMask tx) {
  ColorConfig config;
  config.positions = {SwitchPosition{rx, tx}};
  return config;
}

/// Eastward chain that deliberately skips the edge clip: the right-most
/// PE's transmit points off the fabric.
class EdgeRouteProgram final : public PeProgram {
public:
  void on_start(PeContext& ctx) override {
    ctx.configure_router(kDefectColor,
                         one_position(DirMask::of(Dir::Ramp, Dir::West),
                                      DirMask::of(Dir::East)));
  }
  void on_task(PeContext&, Color) override {}
  ProgramManifest manifest(PeCoord coord, i64, i64) const override {
    ProgramManifest m;
    if (coord.x == 0 && coord.y == 0)
      m.injects |= wse::color_set_bit(kDefectColor);
    return m;
  }
};

/// PE (0,0) forwards east, PE (1,0) forwards straight back: the channel
/// dependency graph has the cycle (1,0)@West -> (0,0)@East -> (1,0)@West.
class CreditCycleProgram final : public PeProgram {
public:
  void on_start(PeContext& ctx) override {
    if (ctx.coord().x % 2 == 0) {
      ctx.configure_router(kDefectColor,
                           one_position(DirMask::of(Dir::Ramp, Dir::East),
                                        DirMask::of(Dir::East)));
    } else {
      ctx.configure_router(kDefectColor, one_position(DirMask::of(Dir::West),
                                                      DirMask::of(Dir::West)));
    }
  }
  void on_task(PeContext&, Color) override {}
  ProgramManifest manifest(PeCoord coord, i64, i64) const override {
    ProgramManifest m;
    if (coord.x == 0 && coord.y == 0)
      m.injects |= wse::color_set_bit(kDefectColor);
    return m;
  }
};

/// The sender's wavelet lands on PE (1,0)'s ramp, but that program neither
/// arms a recv nor declares a task handler for the color.
class MissingHandlerProgram final : public PeProgram {
public:
  void on_start(PeContext& ctx) override {
    if (ctx.coord().x % 2 == 0) {
      ctx.configure_router(kDefectColor, one_position(DirMask::of(Dir::Ramp),
                                                      DirMask::of(Dir::East)));
    } else {
      ctx.configure_router(kDefectColor, one_position(DirMask::of(Dir::West),
                                                      DirMask::of(Dir::Ramp)));
    }
  }
  void on_task(PeContext&, Color) override {}
  ProgramManifest manifest(PeCoord coord, i64, i64) const override {
    ProgramManifest m;
    if (coord.x % 2 == 0) m.injects |= wse::color_set_bit(kDefectColor);
    return m;
  }
};

/// One allocation larger than the entire arena: alloc_f32 throws the
/// "PE memory overflow" Error the verifier maps to a memory-budget
/// diagnostic (with the full allocation map).
class ArenaOverflowProgram final : public PeProgram {
public:
  void on_start(PeContext& ctx) override {
    const u64 words = ctx.memory().capacity_bytes() / 4 + 1;
    ctx.memory().alloc_f32("overflow", static_cast<u32>(words));
  }
  void on_task(PeContext&, Color) override {}
};

} // namespace

ProgramFactory halo_program(u32 nz) {
  return [nz](PeCoord) { return std::make_unique<HaloProgram>(nz); };
}

ProgramFactory allreduce_program() {
  return [](PeCoord) { return std::make_unique<AllReduceProgram>(); };
}

ProgramFactory eastward_program(u32 block) {
  return [block](PeCoord) { return std::make_unique<EastwardProgram>(block); };
}

ProgramFactory any_source_program(PeCoord source, u32 block) {
  return [source, block](PeCoord) {
    return std::make_unique<AnySourceProgram>(source, block);
  };
}

ProgramFactory edge_route_defect() {
  return [](PeCoord) { return std::make_unique<EdgeRouteProgram>(); };
}

ProgramFactory credit_cycle_defect() {
  return [](PeCoord) { return std::make_unique<CreditCycleProgram>(); };
}

ProgramFactory missing_handler_defect() {
  return [](PeCoord) { return std::make_unique<MissingHandlerProgram>(); };
}

ProgramFactory arena_overflow_defect() {
  return [](PeCoord) { return std::make_unique<ArenaOverflowProgram>(); };
}

} // namespace fvdf::analysis::fixtures
