#include "analysis/fixtures.hpp"

#include <array>
#include <functional>
#include <memory>
#include <utility>

#include "csl/allreduce.hpp"
#include "csl/any_source.hpp"
#include "csl/broadcast.hpp"
#include "csl/halo.hpp"
#include "wse/bytecode.hpp"
#include "wse/dsd.hpp"
#include "wse/router.hpp"

namespace fvdf::analysis::fixtures {

using wse::Color;
using wse::ColorConfig;
using wse::Dir;
using wse::DirMask;
using wse::Dsd;
using wse::MemSpan;
using wse::PeContext;
using wse::PeCoord;
using wse::PeProgram;
using wse::ProgramFactory;
using wse::ProgramManifest;
using wse::SwitchPosition;

namespace {

// ---------- known-good collective drivers ----------

class HaloProgram final : public PeProgram {
public:
  explicit HaloProgram(u32 nz) : nz_(nz) {}

  void on_start(PeContext& ctx) override {
    halo_.configure(ctx);
    column_ = ctx.memory().alloc_f32("column", nz_);
    for (auto& buf : halos_) buf = ctx.memory().alloc_f32("halo", nz_);
    halo_.start(
        ctx, wse::dsd(column_), wse::dsd(halos_[0]), wse::dsd(halos_[1]),
        wse::dsd(halos_[2]), wse::dsd(halos_[3]), nullptr,
        [](PeContext& c) { c.halt(); });
  }

  void on_task(PeContext& ctx, Color color) override { halo_.on_task(ctx, color); }

  ProgramManifest manifest(PeCoord coord, i64 width, i64 height) const override {
    return halo_.manifest(coord, width, height);
  }

private:
  u32 nz_;
  csl::HaloExchange halo_;
  MemSpan column_{};
  std::array<MemSpan, 4> halos_{};
};

class AllReduceProgram final : public PeProgram {
public:
  void on_start(PeContext& ctx) override {
    reduce_.configure(ctx);
    reduce_.start(ctx, 1.0f, [](PeContext& c, f32) { c.halt(); });
  }

  void on_task(PeContext& ctx, Color color) override { reduce_.on_task(ctx, color); }

  ProgramManifest manifest(PeCoord coord, i64 width, i64 height) const override {
    return reduce_.manifest(coord, width, height);
  }

private:
  csl::AllReduce reduce_;
};

class EastwardProgram final : public PeProgram {
public:
  explicit EastwardProgram(u32 block) : block_(block) {}

  void on_start(PeContext& ctx) override {
    exchange_.configure(ctx);
    mine_ = ctx.memory().alloc_f32("mine", block_);
    from_west_ = ctx.memory().alloc_f32("from_west", block_);
    exchange_.start(ctx, wse::dsd(mine_), wse::dsd(from_west_),
                    [](PeContext& c) { c.halt(); });
  }

  void on_task(PeContext& ctx, Color color) override {
    exchange_.on_task(ctx, color);
  }

  ProgramManifest manifest(PeCoord coord, i64 width, i64 height) const override {
    return exchange_.manifest(coord, width, height);
  }

private:
  u32 block_;
  csl::EastwardExchange exchange_;
  MemSpan mine_{};
  MemSpan from_west_{};
};

class AnySourceProgram final : public PeProgram {
public:
  AnySourceProgram(PeCoord source, u32 block) : source_(source), block_(block) {}

  void on_start(PeContext& ctx) override {
    broadcast_.configure(ctx, source_);
    block_span_ = ctx.memory().alloc_f32("block", block_);
    broadcast_.start(ctx, wse::dsd(block_span_), [](PeContext& c) { c.halt(); });
  }

  void on_task(PeContext& ctx, Color color) override {
    broadcast_.on_task(ctx, color);
  }

  ProgramManifest manifest(PeCoord coord, i64 width, i64 height) const override {
    return broadcast_.manifest(coord, width, height);
  }

private:
  PeCoord source_;
  u32 block_;
  csl::AnySourceBroadcast broadcast_;
  MemSpan block_span_{};
};

// ---------- seeded defects ----------

constexpr Color kDefectColor = 5;

ColorConfig one_position(DirMask rx, DirMask tx) {
  ColorConfig config;
  config.positions = {SwitchPosition{rx, tx}};
  return config;
}

/// Eastward chain that deliberately skips the edge clip: the right-most
/// PE's transmit points off the fabric.
class EdgeRouteProgram final : public PeProgram {
public:
  void on_start(PeContext& ctx) override {
    ctx.configure_router(kDefectColor,
                         one_position(DirMask::of(Dir::Ramp, Dir::West),
                                      DirMask::of(Dir::East)));
  }
  void on_task(PeContext&, Color) override {}
  ProgramManifest manifest(PeCoord coord, i64, i64) const override {
    ProgramManifest m;
    if (coord.x == 0 && coord.y == 0)
      m.injects |= wse::color_set_bit(kDefectColor);
    return m;
  }
};

/// PE (0,0) forwards east, PE (1,0) forwards straight back: the channel
/// dependency graph has the cycle (1,0)@West -> (0,0)@East -> (1,0)@West.
class CreditCycleProgram final : public PeProgram {
public:
  void on_start(PeContext& ctx) override {
    if (ctx.coord().x % 2 == 0) {
      ctx.configure_router(kDefectColor,
                           one_position(DirMask::of(Dir::Ramp, Dir::East),
                                        DirMask::of(Dir::East)));
    } else {
      ctx.configure_router(kDefectColor, one_position(DirMask::of(Dir::West),
                                                      DirMask::of(Dir::West)));
    }
  }
  void on_task(PeContext&, Color) override {}
  ProgramManifest manifest(PeCoord coord, i64, i64) const override {
    ProgramManifest m;
    if (coord.x == 0 && coord.y == 0)
      m.injects |= wse::color_set_bit(kDefectColor);
    return m;
  }
};

/// The sender's wavelet lands on PE (1,0)'s ramp, but that program neither
/// arms a recv nor declares a task handler for the color.
class MissingHandlerProgram final : public PeProgram {
public:
  void on_start(PeContext& ctx) override {
    if (ctx.coord().x % 2 == 0) {
      ctx.configure_router(kDefectColor, one_position(DirMask::of(Dir::Ramp),
                                                      DirMask::of(Dir::East)));
    } else {
      ctx.configure_router(kDefectColor, one_position(DirMask::of(Dir::West),
                                                      DirMask::of(Dir::Ramp)));
    }
  }
  void on_task(PeContext&, Color) override {}
  ProgramManifest manifest(PeCoord coord, i64, i64) const override {
    ProgramManifest m;
    if (coord.x % 2 == 0) m.injects |= wse::color_set_bit(kDefectColor);
    return m;
  }
};

/// One allocation larger than the entire arena: alloc_f32 throws the
/// "PE memory overflow" Error the verifier maps to a memory-budget
/// diagnostic (with the full allocation map).
class ArenaOverflowProgram final : public PeProgram {
public:
  void on_start(PeContext& ctx) override {
    const u64 words = ctx.memory().capacity_bytes() / 4 + 1;
    ctx.memory().alloc_f32("overflow", static_cast<u32>(words));
  }
  void on_task(PeContext&, Color) override {}
};

// ---------- seeded bytecode defects ----------

/// Minimal bytecode-program wrapper: exposes a prebuilt flat instruction
/// stream (the factory closure keeps the Program alive, so the verifier's
/// per-pointer analysis cache stays valid) and runs an optional on_start
/// setup for router configuration. The manifest is derived from the
/// stream itself, the same contract the solver's bytecode wrappers keep.
class BcFixtureProgram final : public PeProgram {
public:
  BcFixtureProgram(std::shared_ptr<const wse::bc::Program> program,
                   std::function<void(PeContext&)> setup)
      : program_(std::move(program)), setup_(std::move(setup)) {}

  void on_start(PeContext& ctx) override {
    if (setup_) setup_(ctx);
  }
  void on_task(PeContext&, Color) override {}
  const wse::bc::Program* bytecode() const override { return program_.get(); }
  wse::bc::VmState* bytecode_state() override { return &vm_; }
  ProgramManifest manifest(PeCoord, i64, i64) const override {
    return wse::bc::derive_manifest(*program_);
  }

private:
  std::shared_ptr<const wse::bc::Program> program_;
  std::function<void(PeContext&)> setup_;
  wse::bc::VmState vm_;
};

} // namespace

ProgramFactory halo_program(u32 nz) {
  return [nz](PeCoord) { return std::make_unique<HaloProgram>(nz); };
}

ProgramFactory allreduce_program() {
  return [](PeCoord) { return std::make_unique<AllReduceProgram>(); };
}

ProgramFactory eastward_program(u32 block) {
  return [block](PeCoord) { return std::make_unique<EastwardProgram>(block); };
}

ProgramFactory any_source_program(PeCoord source, u32 block) {
  return [source, block](PeCoord) {
    return std::make_unique<AnySourceProgram>(source, block);
  };
}

ProgramFactory edge_route_defect() {
  return [](PeCoord) { return std::make_unique<EdgeRouteProgram>(); };
}

ProgramFactory credit_cycle_defect() {
  return [](PeCoord) { return std::make_unique<CreditCycleProgram>(); };
}

ProgramFactory missing_handler_defect() {
  return [](PeCoord) { return std::make_unique<MissingHandlerProgram>(); };
}

ProgramFactory arena_overflow_defect() {
  return [](PeCoord) { return std::make_unique<ArenaOverflowProgram>(); };
}

ProgramFactory bc_oob_span_defect() {
  wse::bc::Builder b("bc-oob-span");
  const u8 bad = b.dsd(Dsd{/*offset=*/100000, /*length=*/4, /*stride=*/1});
  b.vmovi(bad, 0.0f); // pc 0: span [100000..100003] vs a 16-word arena
  b.ret();
  auto program =
      std::make_shared<const wse::bc::Program>(b.finish());
  return [program](PeCoord) {
    return std::make_unique<BcFixtureProgram>(program, [](PeContext& ctx) {
      ctx.memory().alloc_f32("buf", 16);
    });
  };
}

ProgramFactory bc_unset_continuation_defect() {
  wse::bc::Builder b("bc-unset-continuation");
  b.jind(0); // pc 0: no reachable SETC ever arms cont0
  auto program = std::make_shared<const wse::bc::Program>(b.finish());
  return [program](PeCoord) {
    return std::make_unique<BcFixtureProgram>(program, nullptr);
  };
}

ProgramFactory bc_unbounded_loop_defect() {
  wse::bc::Builder b("bc-unbounded-loop");
  b.setu(0, 0); // pc 0: first DECJNZ decrement wraps u0 to 0xffffffff
  const auto loop = b.make_label();
  b.bind(loop);
  b.sadd(0, 0, 0); // pc 1: a charged op, so the loop body has a cost
  b.decjnz(0, loop); // pc 2
  b.ret();
  auto program = std::make_shared<const wse::bc::Program>(b.finish());
  return [program](PeCoord) {
    return std::make_unique<BcFixtureProgram>(program, nullptr);
  };
}

ProgramFactory bc_send_overlap_defect() {
  wse::bc::Builder b("bc-send-overlap");
  const u8 buf = b.dsd(Dsd{0, 4, 1});
  const auto handler = b.make_label();
  b.seth(kDefectColor, handler); // pc 0
  b.send(kDefectColor, buf);     // pc 1: words [0..3] now in flight
  b.umovi(0, 1.0f);              // pc 2
  b.stos(0, 2);                  // pc 3: overwrites word 2 of the payload
  b.ret();
  b.bind(handler);
  b.ret();
  auto program = std::make_shared<const wse::bc::Program>(b.finish());
  return [program](PeCoord) {
    return std::make_unique<BcFixtureProgram>(program, [](PeContext& ctx) {
      ctx.memory().alloc_f32("buf", 16);
      // Self-delivery loop: inject from the ramp, deliver to the ramp.
      ctx.configure_router(kDefectColor,
                           one_position(DirMask::of(Dir::Ramp),
                                        DirMask::of(Dir::Ramp)));
    });
  };
}

ProgramFactory bc_unbalanced_send_defect() {
  wse::bc::Builder tx("bc-unbalanced-send-tx");
  tx.send(kDefectColor, tx.dsd(Dsd{0, 8, 1})); // 8-word messages east
  tx.ret();
  wse::bc::Builder rx("bc-unbalanced-send-rx");
  rx.recv(kDefectColor, rx.dsd(Dsd{0, 6, 1}), wse::kInvalidColor); // 6 words
  rx.ret();
  auto tx_program = std::make_shared<const wse::bc::Program>(tx.finish());
  auto rx_program = std::make_shared<const wse::bc::Program>(rx.finish());
  return [tx_program, rx_program](PeCoord coord) {
    if (coord.x == 0) {
      return std::make_unique<BcFixtureProgram>(
          tx_program, [](PeContext& ctx) {
            ctx.memory().alloc_f32("buf", 16);
            ctx.configure_router(kDefectColor,
                                 one_position(DirMask::of(Dir::Ramp),
                                              DirMask::of(Dir::East)));
          });
    }
    return std::make_unique<BcFixtureProgram>(
        rx_program, [](PeContext& ctx) {
          ctx.memory().alloc_f32("buf", 16);
          ctx.configure_router(kDefectColor,
                               one_position(DirMask::of(Dir::West),
                                            DirMask::of(Dir::Ramp)));
        });
  };
}

} // namespace fvdf::analysis::fixtures
