#pragma once
// Verification fixtures: complete device programs for the static verifier
// (src/analysis/verifier.hpp) and its tests.
//
// The known-good programs drive the four shipped CSL collectives exactly
// the way the solver does — configure in on_start, declare the rest via
// ProgramManifest — and must verify clean on any fabric shape. Each
// seeded-defect program violates exactly one check and exists so tests
// (and fabric_lint demos) can assert the verifier rejects it with the
// right diagnostic.

#include "wse/geometry.hpp"
#include "wse/program.hpp"

namespace fvdf::analysis::fixtures {

// --- known-good: one driver per shipped CSL collective ---

/// Table-I four-step halo exchange, one round, nz-word columns.
wse::ProgramFactory halo_program(u32 nz = 4);

/// Three-phase whole-fabric all-reduce contributing 1.0 per PE.
wse::ProgramFactory allreduce_program();

/// Fig.-4 eastward exchange (single color, two-position ring).
wse::ProgramFactory eastward_program(u32 block = 4);

/// Any-source broadcast rooted at `source`.
wse::ProgramFactory any_source_program(wse::PeCoord source, u32 block = 4);

// --- seeded defects (each trips exactly one verifier check) ---

/// Chain route whose final transmit exits the east fabric edge
/// (route-completeness error). Any width >= 1.
wse::ProgramFactory edge_route_defect();

/// Two-PE credit cycle: PE (0,0) forwards east, PE (1,0) forwards the same
/// color back west (deadlock-freedom error). Use on a 2x1 fabric.
wse::ProgramFactory credit_cycle_defect();

/// PE (0,0) sends to PE (1,0)'s ramp, which has no recv or task handler
/// (delivery-liveness error). Use on a 2x1 fabric.
wse::ProgramFactory missing_handler_defect();

/// Allocates one f32 array larger than the whole PE arena
/// (memory-budget error on every PE).
wse::ProgramFactory arena_overflow_defect();

// --- seeded bytecode defects (each trips one abstract-interpreter pass
// or the send/recv balance check; see abstract_interp.hpp and
// verifier.hpp check 6). Every program lints clean at the encoding level
// — the defects are semantic, visible only to the abstract interpreter.

/// 1x1: the program's only DSD span ends far outside the PE arena
/// (bytecode-memory error at pc 0).
wse::ProgramFactory bc_oob_span_defect();

/// 1x1: entry JINDs through a continuation register no reachable SETC
/// ever arms (bytecode-liveness error at pc 0).
wse::ProgramFactory bc_unset_continuation_defect();

/// 1x1: a DECJNZ loop whose counter is initialized to 0 — the first
/// decrement wraps the u32, an effectively unbounded loop
/// (bytecode-cost error).
wse::ProgramFactory bc_unbounded_loop_defect();

/// 1x1 self-delivery: the program overwrites a word of a buffer whose
/// SEND is still in flight in the same activation (bytecode-memory
/// warning: the simulator gathers at send time; hardware would race).
wse::ProgramFactory bc_send_overlap_defect();

/// 2x1: PE (0,0) sends 8-word messages east, PE (1,0)'s only reachable
/// RECV on that color takes 6 words (send-recv-balance error).
wse::ProgramFactory bc_unbalanced_send_defect();

} // namespace fvdf::analysis::fixtures
