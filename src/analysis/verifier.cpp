#include "analysis/verifier.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string_view>
#include <utility>

#include "analysis/abstract_interp.hpp"
#include "analysis/static_context.hpp"
#include "common/error.hpp"
#include "wse/bytecode.hpp"
#include "wse/dsd.hpp"
#include "wse/memory.hpp"
#include "wse/router.hpp"
#include "wse/timing.hpp"

namespace fvdf::analysis {

using wse::Color;
using wse::ColorConfig;
using wse::ColorSet;
using wse::Dir;
using wse::PeCoord;
using wse::ProgramManifest;

namespace {

std::string pe_str(PeCoord pe) {
  std::ostringstream os;
  os << "PE (" << pe.x << ", " << pe.y << ")";
  return os.str();
}

/// Everything the checks need per PE, after instantiation.
struct PeModel {
  PeCoord coord{};
  wse::Router router;
  ProgramManifest manifest{};
  u64 used_bytes = 0;
  bool usable = false; // factory + on_start succeeded
  // Abstract-interpretation result for this PE's bytecode (owned by the
  // Verifier's per-program cache), nullptr for legacy programs.
  const ProgramAnalysis* bytecode = nullptr;
};

class Verifier {
public:
  Verifier(i64 width, i64 height, const wse::ProgramFactory& factory,
           wse::PeMemoryParams mem, const VerifyOptions& options)
      : width_(width), height_(height), factory_(factory), mem_(mem),
        options_(options) {
    FVDF_CHECK_MSG(width >= 1 && height >= 1, "fabric dims must be positive");
    report_.width = width;
    report_.height = height;
    report_.memory_capacity_bytes = mem.capacity_bytes;
    report_.memory_reserved_bytes = mem.reserved_bytes;
  }

  VerifyReport run() {
    instantiate();
    for (Color c = 0; c < wse::kNumRoutableColors; ++c) {
      trace_routes(c);
      find_cycles(c);
    }
    check_delivery();
    check_switch_liveness();
    if (options_.balance) check_balance();
    return std::move(report_);
  }

private:
  std::size_t index(PeCoord pe) const {
    return static_cast<std::size_t>(pe.y * width_ + pe.x);
  }
  std::size_t state_id(std::size_t pe, Dir from) const {
    return pe * 5 + static_cast<std::size_t>(from);
  }

  void diag(Check check, Severity severity, PeCoord pe, Color color,
            std::string message, i64 pc = -1) {
    report_.diagnostics.push_back(
        Diagnostic{check, severity, pe, color, pc, std::move(message)});
  }

  // --- instantiation (and check 5: memory budget) ---

  void instantiate() {
    pes_.resize(static_cast<std::size_t>(width_ * height_));
    for (i64 y = 0; y < height_; ++y) {
      for (i64 x = 0; x < width_; ++x) {
        const PeCoord coord{x, y};
        PeModel& model = pes_[index(coord)];
        model.coord = coord;
        model.router.set_coord(coord);
        wse::PeMemory memory(mem_.capacity_bytes, mem_.reserved_bytes);
        StaticPeContext ctx(coord, width_, height_, model.router, memory,
                            timing_);
        std::unique_ptr<wse::PeProgram> program;
        try {
          program = factory_(coord);
          FVDF_CHECK_MSG(program != nullptr, "program factory returned null");
          program->on_start(ctx);
        } catch (const Error& e) {
          const std::string_view what(e.what());
          const bool oom = what.find("PE memory overflow") !=
                           std::string_view::npos;
          // First line only: the allocator appends a multi-line allocation
          // map that belongs in a debugger, not a lint report.
          diag(oom ? Check::MemoryBudget : Check::Instantiation,
               Severity::Error, coord, wse::kInvalidColor,
               std::string(what.substr(0, what.find('\n'))));
          model.used_bytes = memory.used_bytes();
          continue;
        }
        model.manifest = ctx.observed();
        model.manifest |= program->manifest(coord, width_, height_);
        model.used_bytes = memory.used_bytes();
        model.usable = true;
        if (model.used_bytes > report_.memory_high_water_bytes) {
          report_.memory_high_water_bytes = model.used_bytes;
          report_.memory_high_water_pe = coord;
        }
        if (options_.bytecode_analysis)
          if (const wse::bc::Program* bytecode = program->bytecode())
            model.bytecode = analyze_bytecode(*bytecode, model);
      }
    }
  }

  /// Runs the abstract interpreter once per distinct Program (PEs with the
  /// same lowering share one instruction stream through the factory's
  /// program cache, so the pointer is a stable identity for the factory's
  /// lifetime) and reports its defects at the first PE that loads it.
  const ProgramAnalysis* analyze_bytecode(const wse::bc::Program& program,
                                          const PeModel& model) {
    auto [it, fresh] = analyses_.try_emplace(&program);
    if (fresh) {
      AnalysisParams params;
      // The interpreter's load/store bounds check against the bytes the
      // program actually allocated, not the arena capacity.
      params.memory_limit_words = static_cast<u32>(model.used_bytes / 4);
      it->second = analyze_program(program, params);
      ++report_.bytecode_programs;
      for (const BcDefect& defect : it->second.defects) {
        Check check = Check::BytecodeMemory;
        switch (defect.analysis) {
        case BcAnalysis::ControlFlow: check = Check::BytecodeControlFlow; break;
        case BcAnalysis::MemoryBounds: check = Check::BytecodeMemory; break;
        case BcAnalysis::RegisterLiveness: check = Check::BytecodeLiveness; break;
        case BcAnalysis::CostBounds: check = Check::BytecodeCost; break;
        }
        diag(check,
             defect.severity == BcSeverity::Error ? Severity::Error
                                                  : Severity::Warning,
             model.coord, wse::kInvalidColor,
             "program \"" + program.name + "\": " + defect.message,
             static_cast<i64>(defect.pc));
      }
    }
    return &it->second;
  }

  // --- check 1: route completeness (BFS over (PE, arrival link) states) ---

  /// Switch positions whose rx accepts `from`. Per the documented
  /// approximation, every configured position is considered reachable.
  static void accepting_positions(const ColorConfig& config, Dir from,
                                  std::vector<const wse::SwitchPosition*>& out) {
    out.clear();
    for (const auto& pos : config.positions)
      if (pos.rx.contains(from)) out.push_back(&pos);
  }

  void trace_routes(Color color) {
    std::vector<std::size_t> sources;
    for (std::size_t i = 0; i < pes_.size(); ++i)
      if (pes_[i].usable && wse::color_set_contains(pes_[i].manifest.injects, color))
        sources.push_back(i);
    if (sources.empty()) return;
    ++report_.colors_traced;

    std::vector<u8> visited(pes_.size() * 5, 0);
    std::deque<std::pair<std::size_t, Dir>> queue;
    std::vector<const wse::SwitchPosition*> accepting;

    for (std::size_t src : sources) {
      const PeModel& pe = pes_[src];
      if (!pe.router.is_configured(color)) {
        diag(Check::RouteCompleteness, Severity::Error, pe.coord, color,
             "program injects on color " + std::to_string(color) +
                 " but no route is installed at " + pe_str(pe.coord));
        continue;
      }
      accepting_positions(pe.router.config(color), Dir::Ramp, accepting);
      if (accepting.empty()) {
        diag(Check::RouteCompleteness, Severity::Error, pe.coord, color,
             "program injects on color " + std::to_string(color) + " at " +
                 pe_str(pe.coord) +
                 " but no switch position accepts the ramp");
        continue;
      }
      if (!visited[state_id(src, Dir::Ramp)]) {
        visited[state_id(src, Dir::Ramp)] = 1;
        queue.emplace_back(src, Dir::Ramp);
      }
    }

    while (!queue.empty()) {
      const auto [pe_idx, from] = queue.front();
      queue.pop_front();
      ++report_.routes_checked;
      const PeModel& pe = pes_[pe_idx];
      accepting_positions(pe.router.config(color), from, accepting);
      if (accepting.empty()) {
        // A wavelet parked on this link stalls until a switch advance, but
        // no position of this color ever accepts the link: permanent stall.
        diag(Check::RouteCompleteness, Severity::Error, pe.coord, color,
             "wavelet on color " + std::to_string(color) + " arriving from " +
                 wse::to_string(from) + " at " + pe_str(pe.coord) +
                 " is accepted by no switch position (permanent stall)");
        continue;
      }
      for (const wse::SwitchPosition* pos : accepting) {
        if (pos->tx.empty()) ++report_.null_route_sinks;
        for (Dir dir : wse::kCardinalDirs) {
          if (!pos->tx.contains(dir)) continue;
          const auto nb = wse::neighbor(pe.coord, dir, width_, height_);
          if (!nb) {
            diag(Check::RouteCompleteness, Severity::Error, pe.coord, color,
                 "route for color " + std::to_string(color) + " exits the " +
                     wse::to_string(dir) + " fabric edge at " +
                     pe_str(pe.coord) +
                     " (clip the tx set to a null route if the drop is "
                     "intentional)");
            continue;
          }
          const std::size_t nb_idx = index(*nb);
          if (!pes_[nb_idx].router.is_configured(color)) {
            diag(Check::RouteCompleteness, Severity::Error, *nb, color,
                 "wavelet on color " + std::to_string(color) +
                     " arrives from " +
                     wse::to_string(wse::arrival_side(dir)) + " at " +
                     pe_str(*nb) + " which has no route installed (sent by " +
                     pe_str(pe.coord) + ")");
            continue;
          }
          const std::size_t state = state_id(nb_idx, wse::arrival_side(dir));
          if (!visited[state]) {
            visited[state] = 1;
            queue.emplace_back(nb_idx, wse::arrival_side(dir));
          }
        }
      }
    }
  }

  // --- check 2: deadlock freedom (Dally & Seitz channel-dependency graph).
  // Nodes are (PE, arrival link) channels of one color; an edge A -> B
  // means a wavelet occupying channel A requires channel B to drain. A
  // cycle is a credit deadlock the event loop could reach; the diagnostic
  // prints the full cycle walk. ---

  void find_cycles(Color color) {
    // Channel nodes: arrival links only (injection can always wait on the
    // ramp; it never holds fabric buffering).
    const std::size_t n = pes_.size() * 5;
    std::vector<u8> mark(n, 0); // 0 unvisited, 1 on stack, 2 done
    std::vector<const wse::SwitchPosition*> accepting;
    bool reported = false;
    u64 nodes_seen = 0;

    // Successors of channel (pe, from): every channel the wavelet may be
    // forwarded into under some reachable switch position.
    auto successors = [&](std::size_t pe_idx, Dir from,
                          std::vector<std::pair<std::size_t, Dir>>& out) {
      out.clear();
      const PeModel& pe = pes_[pe_idx];
      accepting_positions(pe.router.config(color), from, accepting);
      for (const wse::SwitchPosition* pos : accepting) {
        for (Dir dir : wse::kCardinalDirs) {
          if (!pos->tx.contains(dir)) continue;
          const auto nb = wse::neighbor(pe.coord, dir, width_, height_);
          if (!nb || !pes_[index(*nb)].router.is_configured(color)) continue;
          out.emplace_back(index(*nb), wse::arrival_side(dir));
        }
      }
    };

    struct Frame {
      std::size_t pe_idx;
      Dir from;
      std::vector<std::pair<std::size_t, Dir>> next;
      std::size_t cursor = 0;
    };

    // Builds the human-readable cycle walk when the DFS finds a back edge
    // from the top of `stack` to the on-stack channel (back_pe, back_from):
    // "PE (1, 0) --West--> PE (0, 0) --East--> PE (1, 0)".
    auto report_cycle = [&](const std::vector<Frame>& stack,
                            std::size_t back_pe, Dir back_from) {
      std::size_t start = 0;
      while (start < stack.size() &&
             !(stack[start].pe_idx == back_pe && stack[start].from == back_from))
        ++start;
      std::ostringstream walk;
      walk << "credit deadlock: channel-dependency cycle on color "
           << static_cast<int>(color) << ": ";
      for (std::size_t i = start; i < stack.size(); ++i) {
        // The exit link toward the next channel is the mirror of that
        // channel's arrival side.
        const Dir next_from =
            i + 1 < stack.size() ? stack[i + 1].from : back_from;
        walk << pe_str(pes_[stack[i].pe_idx].coord) << " --"
             << wse::to_string(wse::arrival_side(next_from)) << "--> ";
      }
      walk << pe_str(pes_[back_pe].coord);
      diag(Check::DeadlockFreedom, Severity::Error,
           pes_[back_pe].coord, color, walk.str());
    };

    std::vector<Frame> stack;
    for (std::size_t root = 0; root < pes_.size() && !reported; ++root) {
      if (!pes_[root].router.is_configured(color)) continue;
      for (Dir from : wse::kAllDirs) {
        const std::size_t root_state = state_id(root, from);
        if (mark[root_state] != 0) continue;
        // Only consider channels some position actually accepts.
        accepting_positions(pes_[root].router.config(color), from, accepting);
        if (accepting.empty()) continue;

        mark[root_state] = 1;
        stack.push_back(Frame{root, from, {}, 0});
        successors(root, from, stack.back().next);
        ++nodes_seen;
        while (!stack.empty()) {
          Frame& top = stack.back();
          if (top.cursor >= top.next.size()) {
            mark[state_id(top.pe_idx, top.from)] = 2;
            stack.pop_back();
            continue;
          }
          const auto [nb_idx, nb_from] = top.next[top.cursor++];
          ++report_.cdg_edges;
          const std::size_t nb_state = state_id(nb_idx, nb_from);
          if (mark[nb_state] == 1) {
            if (!reported) {
              report_cycle(stack, nb_idx, nb_from);
              reported = true;
            }
            continue;
          }
          if (mark[nb_state] != 0) continue;
          mark[nb_state] = 1;
          stack.push_back(Frame{nb_idx, nb_from, {}, 0});
          successors(nb_idx, nb_from, stack.back().next);
          ++nodes_seen;
        }
        if (reported) break;
      }
    }
    report_.cdg_nodes += nodes_seen;
  }

  // --- check 3: delivery liveness ---

  void check_delivery() {
    // Re-trace deliveries: cheap compared to keeping per-color bitsets
    // alive, and it keeps trace_routes single-purpose.
    for (Color c = 0; c < wse::kNumRoutableColors; ++c) {
      std::vector<u8> delivered(pes_.size(), 0);
      collect_deliveries(c, delivered);
      for (std::size_t i = 0; i < pes_.size(); ++i) {
        if (!delivered[i] || !pes_[i].usable) continue;
        if (!wse::color_set_contains(pes_[i].manifest.handles, c))
          diag(Check::DeliveryLiveness, Severity::Error, pes_[i].coord, c,
               "color " + std::to_string(c) + " is delivered to the ramp at " +
                   pe_str(pes_[i].coord) +
                   " but no recv or task handler consumes it");
      }
    }
    // Activated task colors must be handled on the activating PE (local
    // activation never crosses the fabric), and a handled local-only task
    // color with no activation source can never run.
    for (const PeModel& pe : pes_) {
      if (!pe.usable) continue;
      for (Color c = 0; c < wse::kNumColors; ++c) {
        const bool activated = wse::color_set_contains(pe.manifest.activates, c);
        const bool handled = wse::color_set_contains(pe.manifest.handles, c);
        if (activated && !handled)
          diag(Check::DeliveryLiveness, Severity::Error, pe.coord, c,
               "task color " + std::to_string(c) + " is activated at " +
                   pe_str(pe.coord) + " but has no handler");
        if (handled && !activated && wse::is_local_only(c))
          diag(Check::DeliveryLiveness, Severity::Warning, pe.coord, c,
               "local task color " + std::to_string(c) + " is handled at " +
                   pe_str(pe.coord) + " but nothing ever activates it");
      }
    }
  }

  void collect_deliveries(Color color, std::vector<u8>& delivered) {
    std::vector<u8> visited(pes_.size() * 5, 0);
    std::deque<std::pair<std::size_t, Dir>> queue;
    std::vector<const wse::SwitchPosition*> accepting;
    for (std::size_t i = 0; i < pes_.size(); ++i) {
      if (!pes_[i].usable ||
          !wse::color_set_contains(pes_[i].manifest.injects, color))
        continue;
      if (!pes_[i].router.is_configured(color)) continue;
      visited[state_id(i, Dir::Ramp)] = 1;
      queue.emplace_back(i, Dir::Ramp);
    }
    while (!queue.empty()) {
      const auto [pe_idx, from] = queue.front();
      queue.pop_front();
      const PeModel& pe = pes_[pe_idx];
      accepting_positions(pe.router.config(color), from, accepting);
      for (const wse::SwitchPosition* pos : accepting) {
        if (pos->tx.contains(Dir::Ramp)) delivered[pe_idx] = 1;
        for (Dir dir : wse::kCardinalDirs) {
          if (!pos->tx.contains(dir)) continue;
          const auto nb = wse::neighbor(pe.coord, dir, width_, height_);
          if (!nb || !pes_[index(*nb)].router.is_configured(color)) continue;
          const std::size_t state = state_id(index(*nb), wse::arrival_side(dir));
          if (!visited[state]) {
            visited[state] = 1;
            queue.emplace_back(index(*nb), wse::arrival_side(dir));
          }
        }
      }
    }
  }

  // --- check 4: switch-position liveness ---

  void check_switch_liveness() {
    wse::ColorMask advanced_anywhere = 0;
    for (const PeModel& pe : pes_)
      advanced_anywhere |= pe.manifest.advances;

    for (const PeModel& pe : pes_) {
      for (Color c = 0; c < wse::kNumRoutableColors; ++c) {
        if (!pe.router.is_configured(c)) continue;
        const ColorConfig& config = pe.router.config(c);
        const bool multi = config.positions.size() > 1;
        const bool advanced = (advanced_anywhere & wse::color_bit(c)) != 0;
        if (multi && !advanced)
          diag(Check::SwitchLiveness, Severity::Error, pe.coord, c,
               "color " + std::to_string(c) + " has " +
                   std::to_string(config.positions.size()) +
                   " switch positions at " + pe_str(pe.coord) +
                   " but no program ever advances it: positions past 0 are "
                   "unreachable");
        if (multi && advanced && !config.ring_mode)
          diag(Check::SwitchLiveness, Severity::Warning, pe.coord, c,
               "color " + std::to_string(c) + " at " + pe_str(pe.coord) +
                   " saturates at switch position " +
                   std::to_string(config.positions.size() - 1) +
                   ": advanced without ring_mode, so it never returns to "
                   "position 0");
      }
    }
  }

  // --- check 6: whole-fabric send/recv balance ---
  //
  // Per routable color: every routed delivery site must consume every
  // message length its injectors send (a reachable RECV of that exact
  // length, or a SETH-bound task handler, which is wavelet-granular).
  // Alongside the conservation proof, the pass computes the exact static
  // traffic volume: one full pass over each injector's reachable code
  // sends `send_words_total` words, each crossing `route_hops` links —
  // the telemetry `word_hops` counter per round.

  void check_balance() {
    const bool totals = static_cast<u64>(width_) * static_cast<u64>(height_) <=
                        options_.volume_pe_cap;
    for (Color c = 0; c < wse::kNumRoutableColors; ++c) {
      std::vector<std::size_t> injectors;
      for (std::size_t i = 0; i < pes_.size(); ++i)
        if (pes_[i].usable &&
            wse::color_set_contains(pes_[i].manifest.injects, c))
          injectors.push_back(i);
      if (injectors.empty()) continue;

      std::vector<u8> delivered(pes_.size(), 0);
      collect_deliveries(c, delivered);

      ColorBalance bal;
      bal.color = c;
      bal.injectors = static_cast<u32>(injectors.size());

      // Distinct data-message lengths proven from the injectors' bytecode.
      std::vector<u32> lengths;
      bool senders_proven = true;
      for (std::size_t i : injectors) {
        const PeModel& tx = pes_[i];
        if (!tx.bytecode) {
          senders_proven = false;
          continue;
        }
        const ColorFlow& flow = tx.bytecode->colors[c];
        for (u32 len : flow.send_lengths)
          if (std::find(lengths.begin(), lengths.end(), len) == lengths.end())
            lengths.push_back(len);
      }

      for (std::size_t d = 0; d < pes_.size(); ++d) {
        if (!delivered[d]) continue;
        ++bal.delivery_sites;
        const PeModel& rx = pes_[d];
        if (!rx.usable || !rx.bytecode) continue;
        const ColorFlow& flow = rx.bytecode->colors[c];
        if (flow.task_handler) continue; // consumes any wavelet volume
        for (u32 len : lengths) {
          if (std::find(flow.recv_lengths.begin(), flow.recv_lengths.end(),
                        len) != flow.recv_lengths.end())
            continue;
          std::ostringstream os;
          os << "color " << static_cast<int>(c) << " delivers " << len
             << "-word messages to " << pe_str(rx.coord) << " but no "
             << "reachable RECV of that length (registered lengths: {";
          for (std::size_t k = 0; k < flow.recv_lengths.size(); ++k)
            os << (k ? "," : "") << flow.recv_lengths[k];
          os << "}) and no task handler consumes it";
          diag(Check::SendRecvBalance, Severity::Error, rx.coord, c, os.str());
        }
        // Control-only traffic (lengths empty) advances switches without
        // needing a consumer: nothing further to prove at this site.
      }

      if (!senders_proven) bal.exact = false;
      if (totals) {
        for (std::size_t i : injectors) {
          const PeModel& tx = pes_[i];
          if (!tx.bytecode) continue;
          const ColorFlow& flow = tx.bytecode->colors[c];
          if (flow.send_words_total == 0) continue;
          bool exact = true;
          const u64 hops = route_hops(i, c, exact);
          bal.words_per_round += flow.send_words_total;
          bal.word_hops_per_round += hops * flow.send_words_total;
          bal.exact = bal.exact && exact;
        }
      } else {
        bal.exact = false;
      }
      report_.balance.push_back(bal);
    }
  }

  /// Number of fabric links one injector's routed multicast on `color`
  /// crosses. Each (PE, arrival-link) channel is expanded once; multiple
  /// accepting positions with identical tx sets forward once (teardown
  /// switch schedules), diverging tx sets make the count an upper bound
  /// and clear `exact`.
  u64 route_hops(std::size_t src, Color color, bool& exact) {
    if (!pes_[src].router.is_configured(color)) return 0;
    u64 hops = 0;
    std::vector<u8> visited(pes_.size() * 5, 0);
    std::deque<std::pair<std::size_t, Dir>> queue;
    std::vector<const wse::SwitchPosition*> accepting;
    visited[state_id(src, Dir::Ramp)] = 1;
    queue.emplace_back(src, Dir::Ramp);
    while (!queue.empty()) {
      const auto [pe_idx, from] = queue.front();
      queue.pop_front();
      const PeModel& pe = pes_[pe_idx];
      accepting_positions(pe.router.config(color), from, accepting);
      if (accepting.empty()) continue; // stall: route check already errored
      for (std::size_t k = 1; k < accepting.size(); ++k) {
        for (Dir dir : wse::kAllDirs)
          if (accepting[k]->tx.contains(dir) !=
              accepting[0]->tx.contains(dir)) {
            exact = false;
            break;
          }
      }
      for (Dir dir : wse::kCardinalDirs) {
        bool forwards = false;
        for (const wse::SwitchPosition* pos : accepting)
          forwards |= pos->tx.contains(dir);
        if (!forwards) continue;
        const auto nb = wse::neighbor(pe.coord, dir, width_, height_);
        if (!nb || !pes_[index(*nb)].router.is_configured(color)) continue;
        ++hops;
        const std::size_t state = state_id(index(*nb), wse::arrival_side(dir));
        if (!visited[state]) {
          visited[state] = 1;
          queue.emplace_back(index(*nb), wse::arrival_side(dir));
        }
      }
    }
    return hops;
  }

  i64 width_;
  i64 height_;
  const wse::ProgramFactory& factory_;
  wse::PeMemoryParams mem_;
  VerifyOptions options_;
  wse::TimingParams timing_{};
  std::vector<PeModel> pes_;
  std::map<const wse::bc::Program*, ProgramAnalysis> analyses_;
  VerifyReport report_;
};

} // namespace

const char* to_string(Check check) {
  switch (check) {
  case Check::Instantiation: return "instantiation";
  case Check::RouteCompleteness: return "route-completeness";
  case Check::DeadlockFreedom: return "deadlock-freedom";
  case Check::DeliveryLiveness: return "delivery-liveness";
  case Check::SwitchLiveness: return "switch-liveness";
  case Check::MemoryBudget: return "memory-budget";
  case Check::BytecodeControlFlow: return "bytecode-control-flow";
  case Check::BytecodeMemory: return "bytecode-memory";
  case Check::BytecodeLiveness: return "bytecode-liveness";
  case Check::BytecodeCost: return "bytecode-cost";
  case Check::SendRecvBalance: return "send-recv-balance";
  }
  return "?";
}

std::string Diagnostic::format() const {
  std::ostringstream os;
  os << (severity == Severity::Error ? "error" : "warning") << '['
     << to_string(check) << "] ";
  if (color != wse::kInvalidColor) os << "color " << static_cast<int>(color) << ' ';
  if (pc >= 0) os << "pc " << pc << ' ';
  os << "at PE (" << pe.x << ", " << pe.y << "): " << message;
  return os.str();
}

u64 VerifyReport::error_count() const {
  u64 n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::Error) ++n;
  return n;
}

u64 VerifyReport::warning_count() const {
  u64 n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::Warning) ++n;
  return n;
}

std::string VerifyReport::summary() const {
  std::ostringstream os;
  os << "fabric verify " << width << "x" << height << ": "
     << (ok() ? "OK" : "FAIL") << " (" << error_count() << " error(s), "
     << warning_count() << " warning(s))\n";
  os << "  routes: " << colors_traced << " color(s) traced, "
     << routes_checked << " (PE, link) state(s), " << null_route_sinks
     << " null-route sink(s)\n";
  os << "  channel-dependency graph: " << cdg_nodes << " node(s), "
     << cdg_edges << " edge(s), acyclic unless reported\n";
  os << "  memory: high water " << memory_high_water_bytes << " / "
     << (memory_capacity_bytes - memory_reserved_bytes)
     << " allocatable bytes (capacity " << memory_capacity_bytes
     << ", reserved " << memory_reserved_bytes << ") at PE ("
     << memory_high_water_pe.x << ", " << memory_high_water_pe.y << ")\n";
  if (bytecode_programs > 0)
    os << "  bytecode: " << bytecode_programs
       << " distinct program(s) abstractly interpreted\n";
  for (const ColorBalance& b : balance) {
    os << "  balance: color " << static_cast<int>(b.color) << ": "
       << b.injectors << " injector(s) -> " << b.delivery_sites
       << " delivery site(s)";
    if (b.words_per_round > 0) {
      os << ", " << b.words_per_round << " word(s)/round, "
         << b.word_hops_per_round << " word-hop(s)/round";
      if (!b.exact) os << " (upper bound)";
    }
    os << '\n';
  }
  for (const Diagnostic& d : diagnostics) os << "  " << d.format() << '\n';
  return os.str();
}

VerifyReport verify_program(i64 width, i64 height,
                            const wse::ProgramFactory& factory,
                            wse::PeMemoryParams mem,
                            const VerifyOptions& options) {
  return Verifier(width, height, factory, mem, options).run();
}

} // namespace fvdf::analysis

namespace fvdf::wse {

analysis::VerifyReport Fabric::verify(const ProgramFactory& factory) const {
  return analysis::verify_program(width_, height_, factory, mem_params_);
}

} // namespace fvdf::wse
