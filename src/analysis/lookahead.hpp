#pragma once
// Static channel-lookahead planner for the parallel fabric engine.
//
// The engine partitions the PE grid into rectangular tile shards and, each
// window round, lets a shard run ahead of its neighbors up to the earliest
// cycle a neighbor could place a wavelet across their shared boundary.
// The dynamic half of that bound (per-event boundary distance x hop
// latency) the engine computes itself; this pass supplies the static half:
// for every *directed* tile boundary (shard s leaving through cardinal
// side d), *can* any configured route carry a wavelet across at all, and
// if so, what is the smallest link batch any crossing message can occupy?
//
// The pass instantiates every PE's routing configuration the same way the
// verifier does — on_start runs against a recording context, never the
// event loop — and combines three facts:
//   1. which colors the boundary-row (or boundary-column) routers can
//      transmit across the boundary (Router::may_transmit over all switch
//      positions),
//   2. which colors any PE ever injects (observed on_start sends plus the
//      declared ProgramManifest), and
//   3. the declared minimum words per injected color
//      (ProgramManifest::min_inject_words; observed sends record their
//      actual lengths).
// A boundary no injected color can cross is marked non-crossing, which
// decouples the two shards entirely. Soundness rests on the same contract
// the verifier documents: routes are fully installed by on_start and
// task-time sends are declared in the manifest. Programs that break the
// contract must not install the resulting table (the fabric's default —
// every boundary crossing-capable at zero cost — is always safe).
//
// See docs/simulator.md ("Parallel execution model") for how the engine
// consumes the table and the full safety argument.

#include <vector>

#include "wse/fabric.hpp"
#include "wse/program.hpp"
#include "wse/timing.hpp"

namespace fvdf::analysis {

/// One shard's PE rectangle, rows [row_begin, row_end) x cols
/// [col_begin, col_end). Passed row-major in tile order (shard id
/// r * tile_cols + c), matching Fabric's layout.
struct ShardTile {
  i64 row_begin = 0;
  i64 row_end = 0;
  i64 col_begin = 0;
  i64 col_end = 0;
};

/// Computes the lookahead table for `factory` on the given tile layout
/// (`tiles.size() == tile_rows * tile_cols`, row-major). Falls back to the
/// fully conservative table (every existing boundary crossing at zero
/// minimum batch) if any PE fails to instantiate — the planner never
/// throws for program bugs; load()/verify() surface those.
///
/// With the default `source` (LookaheadSource::Bytecode), a program that
/// exposes its flat instruction stream contributes the injected colors and
/// minimum message words of its *reachable* SEND/SENDC instructions (from
/// the abstract interpreter's per-color dataflow summary) instead of its
/// declared manifest; on_start-observed sends and legacy programs still
/// contribute their manifests. The resulting table is never looser than
/// the manifest-derived one.
wse::ChannelLookahead
plan_channel_lookahead(i64 width, i64 height,
                       const std::vector<ShardTile>& tiles, u32 tile_rows,
                       u32 tile_cols, const wse::ProgramFactory& factory,
                       const wse::TimingParams& timing,
                       wse::PeMemoryParams mem = {},
                       wse::LookaheadSource source =
                           wse::LookaheadSource::Bytecode);

} // namespace fvdf::analysis
