#pragma once
// Recording PeContext shared by the static analyses (verifier, channel
// lookahead planner): backs configure_router / memory with the real Router
// and PeMemory so on_start produces exactly the state the fabric would
// hold at cycle 0, while sends/recvs/activations are *recorded* into an
// observed manifest instead of generating events. advance_local is
// recorded but not applied: the analyses reason about the freshly
// configured switch positions.

#include "perf/opcount.hpp"
#include "wse/dsd.hpp"
#include "wse/memory.hpp"
#include "wse/program.hpp"
#include "wse/router.hpp"
#include "wse/timing.hpp"

namespace fvdf::analysis {

class StaticPeContext final : public wse::PeContext {
public:
  StaticPeContext(wse::PeCoord coord, i64 width, i64 height,
                  wse::Router& router, wse::PeMemory& memory,
                  const wse::TimingParams& timing)
      : coord_(coord), width_(width), height_(height), router_(router),
        memory_(memory), engine_(memory, counters_, timing, cycles_) {}

  wse::PeCoord coord() const override { return coord_; }
  i64 fabric_width() const override { return width_; }
  i64 fabric_height() const override { return height_; }
  wse::PeMemory& memory() override { return memory_; }
  wse::DsdEngine& dsd() override { return engine_; }

  void configure_router(wse::Color color, wse::ColorConfig config) override {
    router_.configure(color, std::move(config));
  }

  void send(wse::Color color, wse::Dsd src, wse::ColorMask advance_after,
            wse::Color completion) override {
    observed_.declare_inject(color, src.length);
    observed_.advances |= advance_after;
    if (completion != wse::kInvalidColor)
      observed_.activates |= wse::color_set_bit(completion);
  }

  void send_control(wse::Color color, wse::ColorMask advance) override {
    observed_.declare_inject(color, 0);
    observed_.advances |= advance;
  }

  void recv(wse::Color color, wse::Dsd, wse::Color completion) override {
    observed_.handles |= wse::color_set_bit(color);
    if (completion != wse::kInvalidColor)
      observed_.activates |= wse::color_set_bit(completion);
  }

  void activate(wse::Color color) override {
    observed_.activates |= wse::color_set_bit(color);
  }

  void advance_local(wse::ColorMask mask) override {
    observed_.advances |= mask;
  }

  void halt() override {}
  f64 now() const override { return cycles_; }

  const wse::ProgramManifest& observed() const { return observed_; }

private:
  wse::PeCoord coord_;
  i64 width_;
  i64 height_;
  wse::Router& router_;
  wse::PeMemory& memory_;
  OpCounters counters_{};
  f64 cycles_ = 0;
  wse::DsdEngine engine_;
  wse::ProgramManifest observed_{};
};

} // namespace fvdf::analysis
