#pragma once
// Static fabric-program verifier (docs/static_verification.md).
//
// Given the fabric geometry and a ProgramFactory, the verifier instantiates
// every PE's router, memory and task configuration — running each program's
// on_start against a recording PeContext, never the event loop — and proves
// five properties of the resulting device program:
//
//   1. Route completeness  — every injected wavelet reaches switch
//      positions that accept it at every hop, and no route exits the
//      fabric edge (an off-edge transmit must be an explicit null route).
//   2. Deadlock freedom    — the per-color channel-dependency graph over
//      (PE, arrival link) nodes is acyclic (Dally & Seitz); a violation is
//      reported as a human-readable cycle walk.
//   3. Delivery liveness   — every color a traced route delivers to a ramp
//      has a recv/task handler on that PE, and every activated task color
//      is handled.
//   4. Switch liveness     — multi-position colors have an advance source,
//      and advance targets that saturate without ring_mode are flagged.
//   5. Memory budget       — every PE's static allocations fit the 48 KiB
//      arena; the report carries the fabric-wide high-water mark.
//   6. Bytecode semantics  — when a program exposes its flat instruction
//      stream (PeProgram::bytecode), the abstract interpreter
//      (abstract_interp.hpp) proves memory bounds, register liveness and
//      static cost bounds per distinct program, and a whole-fabric
//      send/recv balance pass proves per-color conservation: every
//      routed delivery site consumes exactly the message lengths its
//      injectors send, with exact per-round word and word-hop volumes
//      cross-checkable against telemetry.
//
// A program's routing tables are fully installed by on_start, but sends and
// receives happen over its whole lifetime; the verifier unions what the
// recorded on_start reveals with the program's declared ProgramManifest
// (wse/program.hpp). Approximation, documented and deliberate: every
// configured switch position is considered reachable, and declared
// injections are traced regardless of when the program would issue them.

#include <string>
#include <vector>

#include "common/types.hpp"
#include "wse/color.hpp"
#include "wse/fabric.hpp"
#include "wse/geometry.hpp"
#include "wse/program.hpp"

namespace fvdf::analysis {

enum class Check : u8 {
  Instantiation,     // factory / on_start threw (other than memory overflow)
  RouteCompleteness, // check 1
  DeadlockFreedom,   // check 2
  DeliveryLiveness,  // check 3
  SwitchLiveness,    // check 4
  MemoryBudget,      // check 5
  // Bytecode abstract interpretation (abstract_interp.hpp), one check
  // per analysis; diagnostics carry the pc and the program name.
  BytecodeControlFlow,
  BytecodeMemory,
  BytecodeLiveness,
  BytecodeCost,
  // Whole-fabric per-color send/recv conservation (check 6): every word
  // injected on a color is consumed at every routed delivery site.
  SendRecvBalance,
};

const char* to_string(Check check);

enum class Severity : u8 { Warning, Error };

struct Diagnostic {
  Check check = Check::Instantiation;
  Severity severity = Severity::Error;
  wse::PeCoord pe{};                    // primary location
  wse::Color color = wse::kInvalidColor; // kInvalidColor when not color-specific
  i64 pc = -1; // bytecode pc for Bytecode* checks, -1 otherwise
  std::string message;

  /// "error[deadlock-freedom] color 5 at PE (1, 0): ..." one-liner.
  std::string format() const;
};

/// Per-routable-color static traffic summary from the balance check.
/// `words_per_round` is the exact number of data words all injectors send
/// in one full pass over their reachable code; `word_hops_per_round`
/// multiplies each injector's volume by its routed link-hop count — the
/// static prediction of the telemetry `word_hops` counter per round.
/// `exact` is false when a router's accepting positions diverge (the
/// position over-approximation makes hop totals an upper bound) or some
/// program on the color has no bytecode.
struct ColorBalance {
  wse::Color color = 0;
  u32 injectors = 0;
  u32 delivery_sites = 0;
  u64 words_per_round = 0;
  u64 word_hops_per_round = 0;
  bool exact = true;
};

struct VerifyOptions {
  bool bytecode_analysis = true; // run abstract_interp over each program
  bool balance = true;           // whole-fabric send/recv balance check
  // Skip the O(P^2) per-injector hop-volume totals beyond this many PEs
  // (the length-matching balance errors are still checked).
  u32 volume_pe_cap = 4096;
};

struct VerifyReport {
  i64 width = 0;
  i64 height = 0;
  std::vector<Diagnostic> diagnostics;
  std::vector<ColorBalance> balance; // colors with traffic, ascending

  // Coverage / scale counters.
  u64 colors_traced = 0;     // routable colors with at least one injection
  u64 routes_checked = 0;    // (PE, arrival-link) states visited by the trace
  u64 null_route_sinks = 0;  // traced positions that deliberately discard
  u64 cdg_nodes = 0;         // channel-dependency graph size, all colors
  u64 cdg_edges = 0;
  u64 bytecode_programs = 0; // distinct bytecode programs abstractly interpreted

  // Memory budget summary (check 5).
  u64 memory_capacity_bytes = 0;   // per-PE arena capacity
  u64 memory_reserved_bytes = 0;   // program text + stack model
  u64 memory_high_water_bytes = 0; // largest per-PE static allocation total
  wse::PeCoord memory_high_water_pe{};

  u64 error_count() const;
  u64 warning_count() const;
  bool ok() const { return error_count() == 0; }

  /// Multi-line human-readable report (fabric_lint's output).
  std::string summary() const;
};

/// Verifies `factory` against a width x height fabric without running it.
/// Never throws on program defects — they become diagnostics; throws only
/// on misuse (non-positive dimensions).
VerifyReport verify_program(i64 width, i64 height,
                            const wse::ProgramFactory& factory,
                            wse::PeMemoryParams mem = {},
                            const VerifyOptions& options = {});

} // namespace fvdf::analysis
