#include "analysis/cfg.hpp"

#include <algorithm>
#include <sstream>

namespace fvdf::analysis {

using wse::bc::Instr;
using wse::bc::Op;
using wse::bc::Program;

namespace {

bool is_cond_branch(Op op) {
  return op == Op::JTOL || op == Op::JGTR || op == Op::JKGE ||
         op == Op::DECJNZ;
}

/// Ops after which control does not simply fall to pc+1.
bool is_transfer(Op op) {
  return op == Op::JMP || op == Op::RET || op == Op::JIND ||
         is_cond_branch(op);
}

void push_unique(std::vector<u32>& v, u32 value) {
  if (std::find(v.begin(), v.end(), value) == v.end()) v.push_back(value);
}

} // namespace

std::string CfgEntry::label() const {
  std::ostringstream os;
  switch (kind) {
  case Kind::Start: os << "entry"; break;
  case Kind::Handler: os << "handler c" << static_cast<u32>(id); break;
  case Kind::Continuation: os << "cont" << static_cast<u32>(id); break;
  }
  return os.str();
}

Cfg build_cfg(const Program& program) {
  Cfg cfg;
  const auto n = static_cast<u32>(program.code.size());
  cfg.reachable.assign(n, 0);
  cfg.block_of.assign(n, kNoBlock);
  if (n == 0) return cfg;

  // --- reachability closure over both control-flow layers. A SETC target
  // feeds every JIND of that register, so the edge set itself grows as the
  // closure discovers SETC sites: a plain worklist reaches the fixed point.
  std::vector<u32> worklist;
  auto mark = [&](u32 pc) {
    if (pc < n && !cfg.reachable[pc]) {
      cfg.reachable[pc] = 1;
      worklist.push_back(pc);
    }
  };
  mark(program.entry);
  while (!worklist.empty()) {
    const u32 pc = worklist.back();
    worklist.pop_back();
    const Instr& ins = program.code[pc];
    switch (ins.op) {
    case Op::JMP:
      mark(ins.d);
      break;
    case Op::JTOL: case Op::JGTR: case Op::JKGE: case Op::DECJNZ:
      mark(ins.d);
      mark(pc + 1);
      break;
    case Op::RET:
      break;
    case Op::JIND:
      // Successors are the SETC targets discovered so far; targets found
      // later are marked directly at their SETC site below.
      if (ins.a < wse::bc::kNumCRegs)
        for (u32 t : cfg.cont_targets[ins.a]) mark(t);
      break;
    case Op::SETH:
      if (ins.a < wse::kNumColors && ins.d < n) {
        push_unique(cfg.handler_targets[ins.a], ins.d);
        mark(ins.d); // activation entry
      }
      mark(pc + 1);
      break;
    case Op::SETC:
      if (ins.a < wse::bc::kNumCRegs && ins.d < n) {
        push_unique(cfg.cont_targets[ins.a], ins.d);
        mark(ins.d); // continuation entry (and every JIND's successor)
      }
      mark(pc + 1);
      break;
    default:
      mark(pc + 1);
      break;
    }
  }

  // --- leaders: entry points, branch/binding targets, and the
  // instruction after any control transfer. Computed over the whole
  // stream (not just reachable code) so unreachable regions still get
  // blocks in the dump.
  std::vector<u8> leader(n, 0);
  leader[0] = 1;
  if (program.entry < n) leader[program.entry] = 1;
  for (u32 pc = 0; pc < n; ++pc) {
    const Instr& ins = program.code[pc];
    if ((ins.op == Op::JMP || is_cond_branch(ins.op) || ins.op == Op::SETH ||
         ins.op == Op::SETC) &&
        ins.d < n)
      leader[ins.d] = 1;
    if (is_transfer(ins.op) && pc + 1 < n) leader[pc + 1] = 1;
  }

  for (u32 pc = 0; pc < n; ++pc) {
    if (leader[pc]) {
      cfg.blocks.push_back(CfgBlock{pc, pc, {}, false, false, false, false});
    }
    CfgBlock& block = cfg.blocks.back();
    block.last = pc;
    cfg.block_of[pc] = static_cast<u32>(cfg.blocks.size() - 1);
    if (program.code[pc].op == Op::DECRET) block.may_return = true;
  }

  // --- successor edges per block terminator.
  for (CfgBlock& block : cfg.blocks) {
    const Instr& term = program.code[block.last];
    auto edge = [&](u32 pc) {
      if (pc < n) push_unique(block.succ, cfg.block_of[pc]);
    };
    switch (term.op) {
    case Op::JMP:
      edge(term.d);
      break;
    case Op::JTOL: case Op::JGTR: case Op::JKGE: case Op::DECJNZ:
      edge(term.d);
      if (block.last + 1 < n) edge(block.last + 1);
      else block.falls_off_end = true;
      break;
    case Op::RET:
      block.ends_activation = true;
      break;
    case Op::JIND:
      if (term.a < wse::bc::kNumCRegs)
        for (u32 t : cfg.cont_targets[term.a]) edge(t);
      break;
    default:
      if (block.last + 1 < n) edge(block.last + 1);
      else block.falls_off_end = true;
      break;
    }
    block.reachable = cfg.reachable[block.first] != 0;
  }

  // --- entry points (deduplicated; handler/cont target lists already are).
  auto add_entry = [&](CfgEntry::Kind kind, u8 id, u32 pc) {
    cfg.entries.push_back(CfgEntry{kind, id, pc, cfg.block_of[pc]});
  };
  if (program.entry < n)
    add_entry(CfgEntry::Kind::Start, 0, program.entry);
  for (wse::Color c = 0; c < wse::kNumColors; ++c)
    for (u32 t : cfg.handler_targets[c])
      add_entry(CfgEntry::Kind::Handler, c, t);
  for (u8 r = 0; r < wse::bc::kNumCRegs; ++r)
    for (u32 t : cfg.cont_targets[r])
      add_entry(CfgEntry::Kind::Continuation, r, t);

  for (u32 pc = 0; pc < n; ++pc)
    if (cfg.reachable[pc]) ++cfg.reachable_instructions;
  return cfg;
}

std::string dump_cfg(const Cfg& cfg, const Program& program) {
  std::ostringstream os;
  os << "cfg \"" << program.name << "\": " << cfg.blocks.size()
     << " block(s), " << cfg.entries.size() << " entry point(s), "
     << cfg.reachable_instructions << "/" << program.code.size()
     << " instruction(s) reachable\n";
  for (const CfgEntry& entry : cfg.entries)
    os << "  " << entry.label() << " @ pc " << entry.pc << " (block "
       << entry.block << ")\n";
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const CfgBlock& block = cfg.blocks[b];
    os << "  block " << b << ": pc " << block.first << ".." << block.last
       << "  " << wse::bc::to_string(program.code[block.last].op) << " -> {";
    for (std::size_t i = 0; i < block.succ.size(); ++i)
      os << (i ? ", " : "") << block.succ[i];
    os << "}";
    if (block.ends_activation) os << " ret";
    if (block.may_return) os << " may-return";
    if (block.falls_off_end) os << " falls-off-end";
    if (!block.reachable) os << " unreachable";
    os << "\n";
  }
  return os.str();
}

} // namespace fvdf::analysis
