#pragma once
// Control-flow graph over a flat bytecode program (wse/bytecode.hpp).
//
// The bytecode's control flow has two layers. Within one task activation,
// execution walks basic blocks connected by fallthrough, JMP and the
// conditional branches (JTOL/JGTR/JKGE/DECJNZ), ends at RET (or a DECRET
// join that has not reached zero), and may jump indirectly through a
// continuation register (JIND) — whose possible targets are exactly the
// SETC targets for that register. Across activations, SETH binds a task
// color to a handler pc and SETC arms a continuation: both targets are
// activation entry points the fabric (not the interpreter) transfers to.
//
// build_cfg materializes both layers: basic blocks with intra-activation
// successor edges (JIND edges fan out to every reachable SETC target of
// the register), the entry-point list (program entry + every reachable
// SETH/SETC target), and the reachable-instruction closure — a fixed
// point, since a handler only becomes an entry once some reachable SETH
// binds it. The abstract interpreter (abstract_interp.hpp) runs its
// analyses over this graph; fabric_lint --dump-cfg prints it.

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "wse/bytecode.hpp"

namespace fvdf::analysis {

constexpr u32 kNoBlock = 0xffffffff;

struct CfgBlock {
  u32 first = 0; // pc of the first instruction
  u32 last = 0;  // pc of the last instruction (inclusive)
  std::vector<u32> succ; // intra-activation successor block ids
  bool ends_activation = false; // terminates in RET
  bool may_return = false;      // contains a DECRET (early activation exit)
  bool falls_off_end = false;   // execution can run past the last pc
  bool reachable = false;       // from any entry point
};

struct CfgEntry {
  enum class Kind : u8 { Start, Handler, Continuation };
  Kind kind = Kind::Start;
  u8 id = 0;    // task color (Handler) or continuation register (Continuation)
  u32 pc = 0;   // entry pc
  u32 block = kNoBlock;

  std::string label() const; // "entry", "handler c5", "cont2"
};

struct Cfg {
  std::vector<CfgBlock> blocks;   // in ascending pc order
  std::vector<u32> block_of;      // pc -> block id (every pc is covered)
  std::vector<CfgEntry> entries;  // deduplicated by (kind, id, pc)
  std::vector<u8> reachable;      // per pc, from the entry closure
  // Reachable SETC targets per continuation register: the JIND successor
  // set, and the continuation entry points.
  std::array<std::vector<u32>, wse::bc::kNumCRegs> cont_targets;
  // Reachable SETH targets per task color (empty vector = never bound).
  std::array<std::vector<u32>, wse::kNumColors> handler_targets;

  u32 reachable_instructions = 0;

  bool pc_reachable(u32 pc) const {
    return pc < reachable.size() && reachable[pc] != 0;
  }
};

/// Builds the CFG. Never throws on malformed programs — out-of-range
/// branch targets simply contribute no edge (lint_program reports them);
/// an empty program yields an empty graph.
Cfg build_cfg(const wse::bc::Program& program);

/// Human-readable dump (fabric_lint --dump-cfg): entry points, then one
/// line per block with its pc range, flags and successor list.
std::string dump_cfg(const Cfg& cfg, const wse::bc::Program& program);

} // namespace fvdf::analysis
