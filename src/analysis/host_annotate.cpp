#include "analysis/host_annotate.hpp"

#include <deque>
#include <string>

#include "analysis/cfg.hpp"
#include "telemetry/host_profiler.hpp"
#include "telemetry/phase.hpp"
#include "wse/bytecode.hpp"
#include "wse/fabric.hpp"

namespace fvdf::analysis {

namespace {

// Meet over the phase lattice: kPhaseInherited is bottom (no information),
// kPhaseMixed is top, concrete phases are incomparable with each other.
u8 meet(u8 a, u8 b) {
  if (a == kPhaseInherited) return b;
  if (b == kPhaseInherited) return a;
  if (a == b) return a;
  return kPhaseMixed;
}

} // namespace

const char* phase_label(u8 value) {
  if (value == kPhaseInherited) return "inherited";
  if (value == kPhaseMixed) return "mixed";
  if (value < telemetry::kNumPhases)
    return telemetry::to_string(static_cast<telemetry::Phase>(value));
  return "?";
}

std::vector<u8> bytecode_phase_map(const wse::bc::Program& program) {
  std::vector<u8> per_pc(program.code.size(), kPhaseInherited);
  if (program.code.empty()) return per_pc;
  const Cfg cfg = build_cfg(program);
  if (cfg.blocks.empty()) return per_pc;

  std::vector<u8> block_in(cfg.blocks.size(), kPhaseInherited);
  std::vector<bool> queued(cfg.blocks.size(), false);
  std::deque<u32> worklist;
  const auto enqueue = [&](u32 block) {
    if (!queued[block]) {
      queued[block] = true;
      worklist.push_back(block);
    }
  };

  // Entry seeds: program start runs under Setup until told otherwise;
  // handler/continuation entries inherit whatever phase the previous
  // activation left active (bottom here). Seeding is a meet so an entry
  // block that is also a join target keeps both contributions.
  for (const CfgEntry& entry : cfg.entries) {
    if (entry.block == kNoBlock) continue;
    if (entry.kind == CfgEntry::Kind::Start)
      block_in[entry.block] =
          meet(block_in[entry.block],
               static_cast<u8>(telemetry::Phase::Setup));
    enqueue(entry.block);
  }

  while (!worklist.empty()) {
    const u32 id = worklist.front();
    worklist.pop_front();
    queued[id] = false;
    const CfgBlock& block = cfg.blocks[id];
    if (!block.reachable) continue;
    u8 cur = block_in[id];
    for (u32 pc = block.first; pc <= block.last; ++pc) {
      const wse::bc::Instr& ins = program.code[pc];
      // A PHASE instruction belongs to the phase it switches to.
      if (ins.op == wse::bc::Op::PHASE &&
          ins.a < telemetry::kNumPhases)
        cur = ins.a;
      per_pc[pc] = meet(per_pc[pc], cur);
    }
    for (u32 succ : block.succ) {
      const u8 joined = meet(block_in[succ], cur);
      if (joined != block_in[succ]) {
        block_in[succ] = joined;
        enqueue(succ);
      }
    }
  }
  return per_pc;
}

void annotate_host_profile(telemetry::HostProfiler& profiler,
                           const wse::Fabric& fabric) {
  if (!profiler.captured()) return;
  for (const wse::bc::Program* program : fabric.distinct_bytecode_programs()) {
    std::vector<std::string> ops;
    ops.reserve(program->code.size());
    for (const wse::bc::Instr& ins : program->code)
      ops.emplace_back(wse::bc::to_string(ins.op));
    const std::vector<u8> phases = bytecode_phase_map(*program);
    std::vector<std::string> labels;
    labels.reserve(phases.size());
    for (u8 value : phases) labels.emplace_back(phase_label(value));
    profiler.annotate_program(program, program->name, std::move(ops),
                              std::move(labels));
  }
}

} // namespace fvdf::analysis
