#pragma once
// Post-run annotation of host-profiler pc histograms.
//
// The host profiler (telemetry/host_profiler.hpp) samples bytecode pcs
// keyed by program address — telemetry sits below wse in the link order,
// so it cannot name a program or know what an Op is. This analysis-layer
// pass closes the loop after a run: it walks the fabric's distinct loaded
// bytecode programs and attaches to each sampled key the program name, the
// per-pc opcode mnemonic, and a per-pc *solver phase* label obtained by
// propagating the Op::PHASE markers forward over the control-flow graph
// (analysis/cfg.hpp). The profiler's hot-spot table then reads
// "cg_fused pc 112 VMAC flux" instead of a bare address.
//
// core::solve_dataflow* runs this automatically when
// DataflowConfig::host_profiler is set; tools driving a raw Fabric call it
// by hand after run().

#include <vector>

#include "common/types.hpp"

namespace fvdf::telemetry {
class HostProfiler;
}

namespace fvdf::wse {
class Fabric;
namespace bc {
struct Program;
}
} // namespace fvdf::wse

namespace fvdf::analysis {

/// Per-pc phase labels that are not concrete telemetry::Phase ids:
/// a pc executed before any PHASE marker of its activation runs under
/// whatever phase the previous activation left active (the phase register
/// survives across task activations, which a per-program analysis cannot
/// see) — "inherited"; a pc whose joining paths carry different phases is
/// "mixed".
constexpr u8 kPhaseInherited = 0xff;
constexpr u8 kPhaseMixed = 0xfe;

/// Forward dataflow of the Op::PHASE marker over build_cfg(program):
/// the program entry seeds Phase::Setup, handler/continuation entries seed
/// "inherited", PHASE instructions overwrite, and joins meet (equal keeps,
/// unequal degrades to kPhaseMixed; "inherited" is the meet identity).
/// Returns one value per pc: a telemetry::Phase id, kPhaseInherited or
/// kPhaseMixed. Unreachable pcs read kPhaseInherited.
std::vector<u8> bytecode_phase_map(const wse::bc::Program& program);

/// Human-readable label for a bytecode_phase_map value.
const char* phase_label(u8 value);

/// Annotates every program key the profiler sampled with name, opcode
/// mnemonics and CFG-propagated phase labels, reading the fabric's loaded
/// programs (wse::Fabric::distinct_bytecode_programs — populated once the
/// run has executed on_start). No-op when the profiler captured nothing.
void annotate_host_profile(telemetry::HostProfiler& profiler,
                           const wse::Fabric& fabric);

} // namespace fvdf::analysis
