#include "analysis/lookahead.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>

#include "analysis/abstract_interp.hpp"
#include "analysis/static_context.hpp"
#include "common/error.hpp"
#include "wse/bytecode.hpp"

namespace fvdf::analysis {

namespace {

using wse::ChannelLookahead;
using wse::Color;

/// Per-fabric injection summary: which colors carry traffic at all, and
/// the weakest declared word bound per color.
struct InjectSummary {
  wse::ColorSet injected = 0;
  std::array<u32, wse::kNumRoutableColors> min_words{};

  void add(Color c, u32 words) {
    min_words[c] = wse::color_set_contains(injected, c)
                       ? std::min(min_words[c], words)
                       : words;
    injected |= wse::color_set_bit(c);
  }

  void absorb(const wse::ProgramManifest& manifest) {
    for (Color c = 0; c < wse::kNumRoutableColors; ++c) {
      if (wse::color_set_contains(manifest.injects, c))
        add(c, manifest.min_inject_words[c]);
    }
  }

  /// Bytecode-derived injections: only colors a *reachable* SEND/SENDC can
  /// inject, at the smallest reachable message length. Never weaker than
  /// the derived manifest, which scans unreachable code too.
  void absorb(const ProgramAnalysis& analysis) {
    for (Color c = 0; c < wse::kNumRoutableColors; ++c) {
      const ColorFlow& flow = analysis.colors[c];
      if (flow.sends) add(c, flow.min_send_words);
      if (flow.sends_control) add(c, 0); // control wavelet, like the manifest
    }
  }
};

ChannelLookahead conservative_table(std::size_t edges) {
  ChannelLookahead table;
  table.south.assign(edges, {});
  table.north.assign(edges, {});
  return table;
}

} // namespace

wse::ChannelLookahead
plan_channel_lookahead(i64 width, i64 height,
                       const std::vector<ShardBand>& shards,
                       const wse::ProgramFactory& factory,
                       const wse::TimingParams& timing,
                       wse::PeMemoryParams mem, wse::LookaheadSource source) {
  FVDF_CHECK_MSG(width >= 1 && height >= 1, "fabric dims must be positive");
  FVDF_CHECK_MSG(!shards.empty(), "empty shard layout");
  const std::size_t edges = shards.size() - 1;
  if (edges == 0) return conservative_table(0);

  // Instantiate every PE statically: real routers (for the crossing scan)
  // plus the injection summary from observed sends and either the
  // abstract interpreter's reachable-SEND facts (bytecode programs) or
  // the declared manifest. Analyses are cached per distinct program —
  // factories hand out shared lowered streams, so pointer identity holds
  // for the lifetime of this pass.
  std::vector<wse::Router> routers(static_cast<std::size_t>(width * height));
  std::map<const wse::bc::Program*, ProgramAnalysis> analyses;
  AnalysisParams analysis_params;
  analysis_params.timing = timing;
  InjectSummary injects;
  for (i64 y = 0; y < height; ++y) {
    for (i64 x = 0; x < width; ++x) {
      const wse::PeCoord coord{x, y};
      wse::Router& router = routers[static_cast<std::size_t>(y * width + x)];
      router.set_coord(coord);
      wse::PeMemory memory(mem.capacity_bytes, mem.reserved_bytes);
      StaticPeContext ctx(coord, width, height, router, memory, timing);
      try {
        std::unique_ptr<wse::PeProgram> program = factory(coord);
        if (program == nullptr) return conservative_table(edges);
        program->on_start(ctx);
        const wse::bc::Program* bytecode =
            source == wse::LookaheadSource::Bytecode ? program->bytecode()
                                                     : nullptr;
        if (bytecode != nullptr) {
          auto it = analyses.find(bytecode);
          if (it == analyses.end()) {
            it = analyses
                     .emplace(bytecode,
                              analyze_program(*bytecode, analysis_params))
                     .first;
          }
          injects.absorb(ctx.observed()); // on_start sends are real traffic
          injects.absorb(it->second);
        } else {
          wse::ProgramManifest manifest = ctx.observed();
          manifest |= program->manifest(coord, width, height);
          injects.absorb(manifest);
        }
      } catch (const Error&) {
        // A PE that cannot instantiate leaves its routes unknown; claim
        // nothing (load()/verify() report the actual failure).
        return conservative_table(edges);
      }
    }
  }

  // A wavelet crosses boundary b southward iff some router on the last row
  // of shard b can transmit South on a color somebody injects (and
  // mirrored for northward). The smallest possible crossing batch is the
  // weakest word bound over those colors.
  ChannelLookahead table;
  table.south.assign(edges, ChannelLookahead::Edge{false, 0});
  table.north.assign(edges, ChannelLookahead::Edge{false, 0});
  const f64 wpc = timing.words_per_cycle_link;
  for (std::size_t b = 0; b < edges; ++b) {
    FVDF_CHECK_MSG(shards[b].row_end == shards[b + 1].row_begin &&
                       shards[b].row_end > shards[b].row_begin,
                   "shard layout is not a partition into row bands");
    const i64 row_south = shards[b].row_end - 1; // last row of shard b
    const i64 row_north = shards[b].row_end;     // first row of shard b+1
    u32 min_words_south = std::numeric_limits<u32>::max();
    u32 min_words_north = std::numeric_limits<u32>::max();
    bool crosses_south = false;
    bool crosses_north = false;
    for (i64 x = 0; x < width; ++x) {
      const wse::Router& south_tx =
          routers[static_cast<std::size_t>(row_south * width + x)];
      const wse::Router& north_tx =
          routers[static_cast<std::size_t>(row_north * width + x)];
      for (Color c = 0; c < wse::kNumRoutableColors; ++c) {
        if (!wse::color_set_contains(injects.injected, c)) continue;
        if (south_tx.may_transmit(c, wse::Dir::South)) {
          crosses_south = true;
          min_words_south = std::min(min_words_south, injects.min_words[c]);
        }
        if (north_tx.may_transmit(c, wse::Dir::North)) {
          crosses_north = true;
          min_words_north = std::min(min_words_north, injects.min_words[c]);
        }
      }
    }
    if (crosses_south)
      table.south[b] = ChannelLookahead::Edge{
          true, wpc > 0 ? static_cast<f64>(min_words_south) / wpc : 0};
    if (crosses_north)
      table.north[b] = ChannelLookahead::Edge{
          true, wpc > 0 ? static_cast<f64>(min_words_north) / wpc : 0};
  }
  return table;
}

} // namespace fvdf::analysis

namespace fvdf::wse {

ChannelLookahead
Fabric::plan_channel_lookahead(const ProgramFactory& factory,
                               LookaheadSource source) const {
  std::vector<analysis::ShardBand> bands;
  bands.reserve(shards_.size());
  for (const Shard& shard : shards_)
    bands.push_back(analysis::ShardBand{shard.row_begin, shard.row_end});
  return analysis::plan_channel_lookahead(width_, height_, bands, factory,
                                          timing_, mem_params_, source);
}

} // namespace fvdf::wse
