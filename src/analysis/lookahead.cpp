#include "analysis/lookahead.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>

#include "analysis/abstract_interp.hpp"
#include "analysis/static_context.hpp"
#include "common/error.hpp"
#include "wse/bytecode.hpp"

namespace fvdf::analysis {

namespace {

using wse::ChannelLookahead;
using wse::Color;

/// Per-fabric injection summary: which colors carry traffic at all, and
/// the weakest declared word bound per color.
struct InjectSummary {
  wse::ColorSet injected = 0;
  std::array<u32, wse::kNumRoutableColors> min_words{};

  void add(Color c, u32 words) {
    min_words[c] = wse::color_set_contains(injected, c)
                       ? std::min(min_words[c], words)
                       : words;
    injected |= wse::color_set_bit(c);
  }

  void absorb(const wse::ProgramManifest& manifest) {
    for (Color c = 0; c < wse::kNumRoutableColors; ++c) {
      if (wse::color_set_contains(manifest.injects, c))
        add(c, manifest.min_inject_words[c]);
    }
  }

  /// Bytecode-derived injections: only colors a *reachable* SEND/SENDC can
  /// inject, at the smallest reachable message length. Never weaker than
  /// the derived manifest, which scans unreachable code too.
  void absorb(const ProgramAnalysis& analysis) {
    for (Color c = 0; c < wse::kNumRoutableColors; ++c) {
      const ColorFlow& flow = analysis.colors[c];
      if (flow.sends) add(c, flow.min_send_words);
      if (flow.sends_control) add(c, 0); // control wavelet, like the manifest
    }
  }
};

/// Neighboring shard id across cardinal side `d`, or -1 at the tile-grid
/// edge (mirrors Fabric::neighbor_shard for row-major tile ids).
i64 tile_neighbor(u32 s, std::size_t d, u32 tile_rows, u32 tile_cols) {
  const u32 r = s / tile_cols;
  const u32 c = s % tile_cols;
  switch (d) {
  case wse::cardinal_index(wse::Dir::North):
    return r > 0 ? static_cast<i64>(s - tile_cols) : -1;
  case wse::cardinal_index(wse::Dir::East):
    return c + 1 < tile_cols ? static_cast<i64>(s + 1) : -1;
  case wse::cardinal_index(wse::Dir::South):
    return r + 1 < tile_rows ? static_cast<i64>(s + tile_cols) : -1;
  default:
    return c > 0 ? static_cast<i64>(s - 1) : -1;
  }
}

/// Every existing directed boundary crossing-capable at zero minimum
/// batch; absent sides non-crossing. Always safe to install.
ChannelLookahead conservative_table(u32 tile_rows, u32 tile_cols) {
  ChannelLookahead table;
  table.out.assign(static_cast<std::size_t>(tile_rows) * tile_cols, {});
  for (u32 s = 0; s < table.out.size(); ++s)
    for (std::size_t d = 0; d < 4; ++d)
      if (tile_neighbor(s, d, tile_rows, tile_cols) < 0)
        table.out[s][d] = ChannelLookahead::Edge{false, 0};
  return table;
}

} // namespace

wse::ChannelLookahead
plan_channel_lookahead(i64 width, i64 height,
                       const std::vector<ShardTile>& tiles, u32 tile_rows,
                       u32 tile_cols, const wse::ProgramFactory& factory,
                       const wse::TimingParams& timing,
                       wse::PeMemoryParams mem, wse::LookaheadSource source) {
  FVDF_CHECK_MSG(width >= 1 && height >= 1, "fabric dims must be positive");
  FVDF_CHECK_MSG(tile_rows >= 1 && tile_cols >= 1 &&
                     tiles.size() ==
                         static_cast<std::size_t>(tile_rows) * tile_cols,
                 "tile layout does not match its grid dimensions");
  if (tiles.size() == 1) return conservative_table(1, 1);

  // Instantiate every PE statically: real routers (for the crossing scan)
  // plus the injection summary from observed sends and either the
  // abstract interpreter's reachable-SEND facts (bytecode programs) or
  // the declared manifest. Analyses are cached per distinct program —
  // factories hand out shared lowered streams, so pointer identity holds
  // for the lifetime of this pass.
  std::vector<wse::Router> routers(static_cast<std::size_t>(width * height));
  std::map<const wse::bc::Program*, ProgramAnalysis> analyses;
  AnalysisParams analysis_params;
  analysis_params.timing = timing;
  InjectSummary injects;
  for (i64 y = 0; y < height; ++y) {
    for (i64 x = 0; x < width; ++x) {
      const wse::PeCoord coord{x, y};
      wse::Router& router = routers[static_cast<std::size_t>(y * width + x)];
      router.set_coord(coord);
      wse::PeMemory memory(mem.capacity_bytes, mem.reserved_bytes);
      StaticPeContext ctx(coord, width, height, router, memory, timing);
      try {
        std::unique_ptr<wse::PeProgram> program = factory(coord);
        if (program == nullptr) return conservative_table(tile_rows, tile_cols);
        program->on_start(ctx);
        const wse::bc::Program* bytecode =
            source == wse::LookaheadSource::Bytecode ? program->bytecode()
                                                     : nullptr;
        if (bytecode != nullptr) {
          auto it = analyses.find(bytecode);
          if (it == analyses.end()) {
            it = analyses
                     .emplace(bytecode,
                              analyze_program(*bytecode, analysis_params))
                     .first;
          }
          injects.absorb(ctx.observed()); // on_start sends are real traffic
          injects.absorb(it->second);
        } else {
          wse::ProgramManifest manifest = ctx.observed();
          manifest |= program->manifest(coord, width, height);
          injects.absorb(manifest);
        }
      } catch (const Error&) {
        // A PE that cannot instantiate leaves its routes unknown; claim
        // nothing (load()/verify() report the actual failure).
        return conservative_table(tile_rows, tile_cols);
      }
    }
  }

  // A wavelet leaves tile s through side d iff some router on the tile's
  // boundary row/column for that side can transmit toward d on a color
  // somebody injects. The smallest possible crossing batch is the weakest
  // word bound over those colors.
  ChannelLookahead table = conservative_table(tile_rows, tile_cols);
  const f64 wpc = timing.words_per_cycle_link;
  for (u32 s = 0; s < static_cast<u32>(tiles.size()); ++s) {
    const ShardTile& tile = tiles[s];
    FVDF_CHECK_MSG(tile.row_end > tile.row_begin &&
                       tile.col_end > tile.col_begin,
                   "empty tile " << s << " in shard layout");
    for (std::size_t d = 0; d < 4; ++d) {
      if (tile_neighbor(s, d, tile_rows, tile_cols) < 0) continue;
      const wse::Dir dir = wse::kCardinalDirs[d];
      // The strip of routers whose `dir` link crosses the boundary.
      i64 r0 = tile.row_begin;
      i64 r1 = tile.row_end;
      i64 c0 = tile.col_begin;
      i64 c1 = tile.col_end;
      switch (d) {
      case wse::cardinal_index(wse::Dir::North): r1 = r0 + 1; break;
      case wse::cardinal_index(wse::Dir::South): r0 = r1 - 1; break;
      case wse::cardinal_index(wse::Dir::East): c0 = c1 - 1; break;
      default: c1 = c0 + 1; break; // West
      }
      u32 min_words = std::numeric_limits<u32>::max();
      bool crosses = false;
      for (i64 y = r0; y < r1; ++y)
        for (i64 x = c0; x < c1; ++x) {
          const wse::Router& router =
              routers[static_cast<std::size_t>(y * width + x)];
          for (Color c = 0; c < wse::kNumRoutableColors; ++c) {
            if (!wse::color_set_contains(injects.injected, c)) continue;
            if (router.may_transmit(c, dir)) {
              crosses = true;
              min_words = std::min(min_words, injects.min_words[c]);
            }
          }
        }
      table.out[s][d] =
          crosses ? ChannelLookahead::Edge{
                        true, wpc > 0 ? static_cast<f64>(min_words) / wpc : 0}
                  : ChannelLookahead::Edge{false, 0};
    }
  }
  return table;
}

} // namespace fvdf::analysis

namespace fvdf::wse {

ChannelLookahead
Fabric::plan_channel_lookahead(const ProgramFactory& factory,
                               LookaheadSource source) const {
  std::vector<analysis::ShardTile> tiles;
  tiles.reserve(shards_.size());
  for (const Shard& shard : shards_)
    tiles.push_back(analysis::ShardTile{shard.row_begin, shard.row_end,
                                        shard.col_begin, shard.col_end});
  return analysis::plan_channel_lookahead(width_, height_, tiles, tile_rows_,
                                          tile_cols_, factory, timing_,
                                          mem_params_, source);
}

} // namespace fvdf::wse
