#pragma once
// Fixed-point abstract interpretation over a flat bytecode program.
//
// analyze_program runs three analyses over the CFG built by cfg.hpp and
// returns pc-accurate defects plus exported summaries:
//
//  1. Memory bounds — interval analysis: every DSD operand's
//     base+stride×length word span, every LODS/STOS/RSTORE word offset,
//     and every FIXD/ZDIR byte-list span is checked against the PE
//     memory budget; a forward may-dataflow pass additionally flags
//     writes that overlap a buffer registered by a pending asynchronous
//     RECV (an Error: the arrival order decides which value survives)
//     or referenced by an in-flight SEND (a Warning: the simulator
//     gathers the payload at send time so results are unaffected, but
//     the modeled hardware streams the buffer out asynchronously and
//     would race the overwrite). Reads are never hazards — an
//     activation runs to completion at one event instant, so they are
//     deterministic.
//  2. Register liveness / use-before-def — JIND through a continuation
//     register that no reachable SETC ever arms, DECJNZ/DECRET on a
//     counter no reachable SETU ever initializes (the first decrement
//     wraps the u32 to 0xffffffff: an effectively unbounded loop), f
//     registers read before any reachable definition, and dead stores.
//  3. Static cost bounds — per entry point (program start, every task
//     handler, every continuation) an interval of charged DSD-engine
//     cycles and charged-op counts for one activation, with loop trip
//     counts bounded through SETU immediates; loops that cannot be
//     statically bounded are defects. Per-color minimum send words and
//     minimum charged cycles before the first SEND are exported so the
//     lookahead planner can derive its batch floors from the bytecode
//     instead of trusting manifest declarations.
//
// The lattice is deliberately simple: reachability is the only
// fixed-point component shared by all analyses (build_cfg computes it);
// the send-overlap pass iterates a union lattice of in-flight
// send/recv sites per basic block until stable. All analyses are
// conservative: a clean report proves the property for every execution
// the interpreter (bytecode_interp.hpp) can take.

#include <array>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "common/types.hpp"
#include "wse/timing.hpp"

namespace fvdf::analysis {

enum class BcAnalysis : u8 {
  ControlFlow,      // execution can fall off the end of the stream
  MemoryBounds,     // span/offset outside the PE arena, send overlap
  RegisterLiveness, // use-before-def, dead stores
  CostBounds,       // statically unbounded loops
};

const char* to_string(BcAnalysis analysis);

enum class BcSeverity : u8 { Warning, Error };

const char* to_string(BcSeverity severity);

struct BcDefect {
  BcAnalysis analysis = BcAnalysis::MemoryBounds;
  BcSeverity severity = BcSeverity::Error;
  u32 pc = 0;
  std::string message;

  std::string format() const; // "error [bytecode-memory] pc 12: ..."
};

/// Charged-cost interval for one activation from one entry point.
struct HandlerCost {
  std::string label;    // CfgEntry::label()
  u32 entry_pc = 0;
  bool bounded = true;  // false when a loop trip count is not provable
  f64 min_cycles = 0;   // charged DSD-engine cycles, shortest activation
  f64 max_cycles = 0;   // longest activation (valid only when bounded)
  u64 min_charged_ops = 0;
  u64 max_charged_ops = 0;
};

/// Per-color static dataflow summary, derived from reachable code only.
struct ColorFlow {
  bool sends = false;         // some reachable SEND injects on this color
  bool sends_control = false; // some reachable SENDC (control wavelet)
  bool recvs = false;         // some reachable RECV registers a sink
  bool task_handler = false;  // some reachable SETH binds a handler
  u32 min_send_words = 0;     // smallest reachable SEND span (words)
  u32 send_sites = 0;         // number of reachable SEND instructions
  u64 send_words_total = 0;   // sum of their lengths: the exact data-word
                              // volume of one full pass over the code
  f64 min_cycles_before_send = 0; // least charged cycles on any path from
                                  // an entry to the first SEND on color
  std::vector<u32> send_lengths;  // distinct reachable SEND lengths
  std::vector<u32> recv_lengths;  // distinct reachable RECV lengths
};

struct ProgramAnalysis {
  Cfg cfg;
  std::vector<BcDefect> defects;
  std::vector<HandlerCost> handlers; // one per CFG entry point
  std::array<ColorFlow, wse::kNumColors> colors{};

  u64 error_count() const;
  u64 warning_count() const;
  bool ok() const { return error_count() == 0; }
  /// Multi-line human-readable report (fabric_lint --deep).
  std::string summary(const std::string& program_name) const;
};

struct AnalysisParams {
  /// Word budget for span checks; 0 means the allocatable words of a
  /// default-parameter PeMemory (48 KiB minus the reserved arena).
  u32 memory_limit_words = 0;
  /// Timing model used to price charged ops (must match the engine's).
  wse::TimingParams timing{};
};

ProgramAnalysis analyze_program(const wse::bc::Program& program,
                                const AnalysisParams& params = {});

} // namespace fvdf::analysis
