// Unit tests for the common utilities: RNG determinism and distributions,
// streaming statistics, table/CSV rendering, CLI parsing, unit formatting,
// thread pool semantics, image output.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/image.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

namespace fvdf {
namespace {

// ---------- Rng ----------

TEST(Rng, IsDeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const f64 u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const f64 u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::array<int, 7> histogram{};
  constexpr int kDraws = 70'000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.uniform_index(7)];
  for (int count : histogram) {
    EXPECT_GT(count, kDraws / 7 - 800);
    EXPECT_LT(count, kDraws / 7 + 800);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 2.0), 0.0);
}

TEST(Rng, JumpProducesIndependentStream) {
  Rng a(23);
  Rng b(23);
  b.jump();
  std::set<u64> first;
  for (int i = 0; i < 100; ++i) first.insert(a.next_u64());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(first.count(b.next_u64()), 0u);
}

// ---------- RunningStats ----------

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats stats;
  const std::vector<f64> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (f64 v : values) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 4.0, 1e-12); // population variance
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_EQ(stats.count(), values.size());
}

TEST(RunningStats, SingleSampleHasZeroStddev) {
  RunningStats stats;
  stats.add(42.0);
  EXPECT_EQ(stats.stddev(), 0.0);
  EXPECT_EQ(stats.mean(), 42.0);
}

TEST(RunningStats, IsNumericallyStableForLargeOffsets) {
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) stats.add(1e9 + (i % 2));
  EXPECT_NEAR(stats.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(stats.stddev(), 0.5, 1e-3);
}

TEST(RunningStats, ClearResets) {
  RunningStats stats;
  stats.add(1.0);
  stats.clear();
  EXPECT_EQ(stats.count(), 0u);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<f64> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 2.5);
}

TEST(Percentile, RejectsEmptyAndOutOfRange) {
  EXPECT_THROW(percentile({}, 50.0), Error);
  EXPECT_THROW(percentile({1.0}, 101.0), Error);
}

// ---------- StreamingHistogram ----------

TEST(StreamingHistogram, EmptyIsZero) {
  StreamingHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_TRUE(h.buckets().empty());
}

TEST(StreamingHistogram, QuantilesWithinRelativeErrorBound) {
  // 2^-5 relative bucket resolution at the default subbucket_bits.
  StreamingHistogram h;
  for (int i = 1; i <= 10'000; ++i) h.add(static_cast<f64>(i));
  const f64 tol = 1.0 / 32.0;
  EXPECT_NEAR(h.p50(), 5000.0, 5000.0 * tol);
  EXPECT_NEAR(h.p95(), 9500.0, 9500.0 * tol);
  EXPECT_NEAR(h.p99(), 9900.0, 9900.0 * tol);
  // The extremes are exact, not bucket-resolved.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10'000.0);
  EXPECT_DOUBLE_EQ(h.sum(), 10'000.0 * 10'001.0 / 2.0);
}

TEST(StreamingHistogram, MergeEqualsSingleStream) {
  StreamingHistogram a, b, whole;
  for (int i = 1; i <= 1000; ++i) {
    ((i % 2 == 0) ? a : b).add(static_cast<f64>(i * 3));
    whole.add(static_cast<f64>(i * 3));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  // Bucketed populations are identical, so every quantile matches exactly.
  for (const f64 q : {0.1, 0.5, 0.9, 0.95, 0.99})
    EXPECT_DOUBLE_EQ(a.quantile(q), whole.quantile(q));
}

TEST(StreamingHistogram, MergeOrderDoesNotMatter) {
  StreamingHistogram ab, ba, a1, b1;
  for (int i = 0; i < 500; ++i) a1.add(1.5 * i + 1);
  for (int i = 0; i < 500; ++i) b1.add(7.0 * i + 2);
  ab = a1;
  ab.merge(b1);
  ba = b1;
  ba.merge(a1);
  EXPECT_DOUBLE_EQ(ab.p50(), ba.p50());
  EXPECT_DOUBLE_EQ(ab.p99(), ba.p99());
  EXPECT_EQ(ab.buckets().size(), ba.buckets().size());
}

TEST(StreamingHistogram, SubUnitAndZeroValuesLandInFirstBucket) {
  StreamingHistogram h;
  h.add(0.0);
  h.add(0.25);
  h.add(1e-9);
  EXPECT_EQ(h.count(), 3u);
  ASSERT_EQ(h.buckets().size(), 1u);
  EXPECT_EQ(h.buckets()[0].count, 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(StreamingHistogram, ClearResets) {
  StreamingHistogram h;
  h.add(5.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(h.buckets().empty());
}

// ---------- Table ----------

TEST(Table, RendersAlignedColumns) {
  Table table("demo");
  table.set_header({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table;
  table.set_header({"a", "b"});
  table.add_row({"x,y", "quote\"inside"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, CellAccessorIsBoundsChecked) {
  Table table;
  table.set_header({"a"});
  table.add_row({"v"});
  EXPECT_EQ(table.cell(0, 0), "v");
  EXPECT_THROW(table.cell(1, 0), Error);
}

TEST(TableFormat, FixedAndScientific) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_sci(12345.0, 2), "1.23e+04");
}

// ---------- CLI ----------

TEST(Cli, ParsesAllValueForms) {
  i64 n = 1;
  f64 tol = 0.5;
  std::string name = "x";
  bool flag = false;
  CliParser cli("prog", "test");
  cli.add_i64("n", &n, "count");
  cli.add_f64("tol", &tol, "tolerance");
  cli.add_string("name", &name, "label");
  cli.add_flag("verbose", &flag, "chatty");
  const char* argv[] = {"prog", "--n", "42", "--tol=1e-3", "--name", "abc", "--verbose"};
  ASSERT_TRUE(cli.parse(7, argv));
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(tol, 1e-3);
  EXPECT_EQ(name, "abc");
  EXPECT_TRUE(flag);
}

TEST(Cli, RejectsUnknownOption) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, RejectsMalformedInteger) {
  i64 n = 0;
  CliParser cli("prog", "test");
  cli.add_i64("n", &n, "count");
  const char* argv[] = {"prog", "--n", "12abc"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, MissingValueThrows) {
  i64 n = 0;
  CliParser cli("prog", "test");
  cli.add_i64("n", &n, "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

// ---------- Units ----------

TEST(Units, FormatsSeconds) {
  EXPECT_EQ(fmt_seconds(0.0), "0 s");
  EXPECT_NE(fmt_seconds(1.5e-9).find("ns"), std::string::npos);
  EXPECT_NE(fmt_seconds(2.5e-6).find("us"), std::string::npos);
  EXPECT_NE(fmt_seconds(3.5e-3).find("ms"), std::string::npos);
  EXPECT_NE(fmt_seconds(4.2).find(" s"), std::string::npos);
}

TEST(Units, FormatsBytesWithBinaryPrefixes) {
  EXPECT_NE(fmt_bytes(48.0 * 1024).find("KiB"), std::string::npos);
  EXPECT_NE(fmt_bytes(3.0 * 1024 * 1024).find("MiB"), std::string::npos);
}

TEST(Units, FormatsFlops) {
  EXPECT_NE(fmt_flops(1.217e15).find("PFLOP/s"), std::string::npos);
  EXPECT_NE(fmt_flops(2.5e9).find("GFLOP/s"), std::string::npos);
}

TEST(Units, FormatsGcells) {
  EXPECT_EQ(fmt_gcells(2855.48e9), "2855.48 Gcell/s");
}

TEST(Units, FormatsPercent) { EXPECT_EQ(fmt_percent(0.6818), "68.18%"); }

TEST(Units, FormatsCounts) {
  EXPECT_EQ(fmt_count(687351000), "687,351,000");
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
}

// ---------- ThreadPool ----------

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t begin, std::size_t) {
                                   if (begin == 0) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, ForEachIndexCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257); // not a multiple of the pool size
  pool.for_each_index(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ForEachIndexZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.for_each_index(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ForEachIndexPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.for_each_index(64,
                                   [&](std::size_t i) {
                                     if (i == 13) throw Error("boom");
                                   }),
               Error);
  // The pool stays usable after a failed batch.
  std::atomic<int> counter{0};
  pool.for_each_index(8, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

// ---------- Image ----------

TEST(Image, ColormapEndpointsAreOrdered) {
  u8 r0, g0, b0, r1, g1, b1;
  colormap(0.0, r0, g0, b0);
  colormap(1.0, r1, g1, b1);
  EXPECT_NE(std::tie(r0, g0, b0), std::tie(r1, g1, b1));
}

TEST(Image, AsciiHeatmapHasRequestedShape) {
  ScalarImage image;
  image.nx = 100;
  image.ny = 50;
  image.values.resize(5000);
  for (i64 y = 0; y < 50; ++y)
    for (i64 x = 0; x < 100; ++x)
      image.values[static_cast<std::size_t>(y * 100 + x)] = static_cast<f64>(x + y);
  const std::string art = ascii_heatmap(image, 40, 10);
  const auto lines = std::count(art.begin(), art.end(), '\n');
  EXPECT_EQ(lines, 10);
}

TEST(Image, ConstantFieldRendersWithoutDivisionByZero) {
  ScalarImage image;
  image.nx = 4;
  image.ny = 4;
  image.values.assign(16, 3.0);
  EXPECT_NO_THROW(ascii_heatmap(image));
}

TEST(Image, WritesPpmAndCsv) {
  ScalarImage image;
  image.nx = 8;
  image.ny = 4;
  image.values.resize(32);
  std::iota(image.values.begin(), image.values.end(), 0.0);
  const auto dir = std::filesystem::temp_directory_path();
  const std::string ppm = (dir / "fvdf_test.ppm").string();
  const std::string csv = (dir / "fvdf_test.csv").string();
  write_ppm(image, ppm);
  write_csv(image, csv);
  std::ifstream ppm_in(ppm, std::ios::binary);
  std::string magic;
  ppm_in >> magic;
  EXPECT_EQ(magic, "P6");
  std::ifstream csv_in(csv);
  std::string header;
  std::getline(csv_in, header);
  EXPECT_EQ(header, "x,y,value");
  std::filesystem::remove(ppm);
  std::filesystem::remove(csv);
}

// ---------- Checkpointing ----------

TEST(Serialize, RoundTripsFieldsExactly) {
  FieldCheckpoint checkpoint;
  checkpoint.nx = 4;
  checkpoint.ny = 3;
  checkpoint.nz = 2;
  Rng rng(9);
  std::vector<f64> pressure(24), saturation(24);
  for (auto& v : pressure) v = rng.uniform(-10, 10);
  for (auto& v : saturation) v = rng.uniform(0, 1);
  checkpoint.fields["pressure"] = pressure;
  checkpoint.fields["saturation"] = saturation;

  const auto path =
      (std::filesystem::temp_directory_path() / "fvdf_ckpt_test.bin").string();
  save_checkpoint(path, checkpoint);
  const auto loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.nx, 4);
  EXPECT_EQ(loaded.ny, 3);
  EXPECT_EQ(loaded.nz, 2);
  ASSERT_EQ(loaded.fields.size(), 2u);
  EXPECT_EQ(loaded.field("pressure"), pressure); // bitwise
  EXPECT_EQ(loaded.field("saturation"), saturation);
  EXPECT_THROW(loaded.field("missing"), Error);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsCorruptAndTruncatedFiles) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto bad = (dir / "fvdf_ckpt_bad.bin").string();
  {
    std::ofstream out(bad, std::ios::binary);
    out << "NOPE this is not a checkpoint";
  }
  EXPECT_THROW(load_checkpoint(bad), Error);

  // Truncate a valid checkpoint mid-field.
  FieldCheckpoint checkpoint;
  checkpoint.fields["x"] = std::vector<f64>(100, 1.0);
  const auto good = (dir / "fvdf_ckpt_good.bin").string();
  save_checkpoint(good, checkpoint);
  const auto truncated = (dir / "fvdf_ckpt_trunc.bin").string();
  {
    std::ifstream in(good, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::ofstream out(truncated, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(load_checkpoint(truncated), Error);
  EXPECT_THROW(load_checkpoint((dir / "fvdf_ckpt_missing.bin").string()), Error);
  std::filesystem::remove(bad);
  std::filesystem::remove(good);
  std::filesystem::remove(truncated);
}

TEST(Serialize, EmptyCheckpointIsValid) {
  const auto path =
      (std::filesystem::temp_directory_path() / "fvdf_ckpt_empty.bin").string();
  save_checkpoint(path, FieldCheckpoint{});
  const auto loaded = load_checkpoint(path);
  EXPECT_TRUE(loaded.fields.empty());
  std::filesystem::remove(path);
}

TEST(Serialize, DetectsSingleBitFlip) {
  // The v2 payload checksum must catch a corruption that still parses
  // structurally — flip one bit in the middle of a field's data and the
  // load must throw with an actionable message, not return wrong values.
  FieldCheckpoint checkpoint;
  checkpoint.nx = 5;
  checkpoint.ny = 5;
  checkpoint.nz = 1;
  checkpoint.fields["pressure"] = std::vector<f64>(25, 3.25);
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "fvdf_ckpt_bitflip.bin").string();
  save_checkpoint(path, checkpoint);

  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x10; // one bit, mid-payload
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    load_checkpoint(path);
    FAIL() << "bit-flipped checkpoint loaded silently";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("checksum"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
  std::filesystem::remove(path);
}

TEST(Serialize, TruncationMessageNamesThePath) {
  FieldCheckpoint checkpoint;
  checkpoint.fields["x"] = std::vector<f64>(64, 2.0);
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "fvdf_ckpt_truncmsg.bin").string();
  save_checkpoint(path, checkpoint);
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 7));
  }
  try {
    load_checkpoint(path);
    FAIL() << "truncated checkpoint loaded silently";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
  std::filesystem::remove(path);
}

TEST(Serialize, RequireGridRejectsMismatchedShape) {
  FieldCheckpoint checkpoint;
  checkpoint.nx = 8;
  checkpoint.ny = 4;
  checkpoint.nz = 2;
  checkpoint.require_grid(8, 4, 2, "test"); // matching shape passes
  try {
    checkpoint.require_grid(16, 4, 2, "scenario resume");
    FAIL() << "mismatched grid accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    // The message must name both shapes and the consumer so the user can
    // see which checkpoint went where.
    EXPECT_NE(what.find("8x4x2"), std::string::npos) << what;
    EXPECT_NE(what.find("16x4x2"), std::string::npos) << what;
    EXPECT_NE(what.find("scenario resume"), std::string::npos) << what;
  }
}

TEST(Serialize, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors (64-bit).
  EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ull);
  EXPECT_EQ(hash_hex(0xcbf29ce484222325ull), "cbf29ce484222325");
}

// ---------- Error machinery ----------

TEST(Check, ThrowsWithLocationAndMessage) {
  try {
    FVDF_CHECK_MSG(1 == 2, "math is broken: " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken: 42"), std::string::npos);
  }
}

} // namespace
} // namespace fvdf
