// Performance-model tests: op-count ledger arithmetic (the Table V
// bookkeeping), roofline math (Fig. 6), machine specs, and the calibrated
// CS-2 analytic model reproducing the paper's own numbers.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "perf/analytic.hpp"
#include "perf/machine.hpp"
#include "perf/opcount.hpp"
#include "perf/roofline.hpp"

namespace fvdf {
namespace {

// ---------- OpCounters ----------

TEST(OpCounters, FlopsPerElementMatchPaperAccounting) {
  // Table V: FMA counts 2 FLOPs, FMOV 0, everything else 1.
  EXPECT_EQ(flops_per_element(Opcode::FMA), 2u);
  EXPECT_EQ(flops_per_element(Opcode::FMOV), 0u);
  EXPECT_EQ(flops_per_element(Opcode::FMUL), 1u);
  EXPECT_EQ(flops_per_element(Opcode::FSUB), 1u);
  EXPECT_EQ(flops_per_element(Opcode::FADD), 1u);
  EXPECT_EQ(flops_per_element(Opcode::FNEG), 1u);
}

TEST(OpCounters, MemoryTrafficMatchesTableV) {
  // "FMUL: 2 loads, 1 store ... FNEG: 1 load, 1 store ... FMA: 3 loads,
  // 1 store" (Table V).
  EXPECT_EQ(memory_traffic_per_element(Opcode::FMUL).loads, 2u);
  EXPECT_EQ(memory_traffic_per_element(Opcode::FMUL).stores, 1u);
  EXPECT_EQ(memory_traffic_per_element(Opcode::FNEG).loads, 1u);
  EXPECT_EQ(memory_traffic_per_element(Opcode::FMA).loads, 3u);
  EXPECT_EQ(memory_traffic_per_element(Opcode::FADD).stores, 1u);
}

TEST(OpCounters, RecordAccumulates) {
  OpCounters counters;
  counters.record(Opcode::FMUL, 10);
  counters.record(Opcode::FMA, 5);
  EXPECT_EQ(counters.count(Opcode::FMUL), 10u);
  EXPECT_EQ(counters.total_flops(), 10u + 2 * 5);
  EXPECT_EQ(counters.memory_loads(), 2u * 10 + 3 * 5);
  EXPECT_EQ(counters.memory_stores(), 15u);
  EXPECT_EQ(counters.memory_bytes(), 4 * (35u + 15u));
}

TEST(OpCounters, FabricMovesChargeOneMemorySide) {
  OpCounters counters;
  counters.record(Opcode::FMOV, 8, /*fabric_loads=*/8, 0); // receive
  EXPECT_EQ(counters.memory_stores(), 8u);
  EXPECT_EQ(counters.memory_loads(), 0u);
  EXPECT_EQ(counters.fabric_loads(), 8u);
  counters.record(Opcode::FMOV, 4, 0, /*fabric_stores=*/4); // send
  EXPECT_EQ(counters.memory_loads(), 4u);
  EXPECT_EQ(counters.fabric_stores(), 4u);
  EXPECT_EQ(counters.fabric_bytes(), 4u * 12);
}

TEST(OpCounters, PlusAndMinusCompose) {
  OpCounters a, b;
  a.record(Opcode::FADD, 10);
  b.record(Opcode::FADD, 4);
  b.record(Opcode::FMA, 2);
  a += b;
  EXPECT_EQ(a.count(Opcode::FADD), 14u);
  const OpCounters diff = a - b;
  EXPECT_EQ(diff.count(Opcode::FADD), 10u);
  EXPECT_EQ(diff.count(Opcode::FMA), 0u);
}

TEST(OpCounters, MinusUnderflowThrows) {
  OpCounters a, b;
  b.record(Opcode::FADD, 1);
  EXPECT_THROW(a - b, Error);
}

TEST(OpCounters, SummaryListsNonZeroOps) {
  OpCounters counters;
  counters.record(Opcode::FNEG, 3);
  const std::string summary = counters.summary();
  EXPECT_NE(summary.find("FNEG=3"), std::string::npos);
  EXPECT_EQ(summary.find("FMUL"), std::string::npos);
}

// ---------- Roofline ----------

TEST(Roofline, AttainableIsMinOfPeakAndBandwidthLine) {
  RooflineModel model("test", 1e12);
  model.add_ceiling({"mem", 1e11}); // ridge at AI = 10
  EXPECT_DOUBLE_EQ(model.attainable(1.0, 0), 1e11);
  EXPECT_DOUBLE_EQ(model.attainable(100.0, 0), 1e12);
  EXPECT_FALSE(model.compute_bound(1.0, 0));
  EXPECT_TRUE(model.compute_bound(10.0, 0));
}

TEST(Roofline, TightestCeilingWins) {
  RooflineModel model("test", 1e12);
  model.add_ceiling({"fast", 1e11});
  model.add_ceiling({"slow", 1e9});
  EXPECT_DOUBLE_EQ(model.attainable(1.0), 1e9);
}

TEST(Roofline, EfficiencyAgainstAttainable) {
  RooflineModel model("test", 1e12);
  model.add_ceiling({"mem", 1e11});
  RooflinePoint point{"kernel", 100.0, 0.68e12}; // compute-bound region
  EXPECT_NEAR(model.efficiency(point), 0.68, 1e-12);
}

TEST(Roofline, PaperCs2NumbersAreConsistent) {
  // Fig. 6 top: AI 0.0895 F/B (memory) and 3 F/B (fabric); the kernel is
  // compute-bound for both and reaches 68% of peak.
  const Cs2Spec spec;
  RooflineModel model(spec.name, spec.peak_flops_fp32);
  model.add_ceiling({"memory", spec.peak_mem_bw_bytes});
  model.add_ceiling({"fabric", spec.peak_fabric_bw_bytes});
  EXPECT_TRUE(model.compute_bound(0.0895, 0));
  EXPECT_TRUE(model.compute_bound(3.0, 1));
  RooflinePoint point{"matrix-free FV", 0.0895, 1.217e15, 0};
  EXPECT_NEAR(model.efficiency(point), 0.6818, 0.01);
}

TEST(Roofline, PaperA100IsMemoryBound) {
  const GpuSpec a100 = GpuSpec::a100();
  RooflineModel model(a100.name, a100.peak_flops_fp32);
  model.add_ceiling({"HBM", a100.mem_bw_bytes});
  // The matrix-free kernel's AI on the GPU sits well below the ridge.
  const f64 ridge = a100.peak_flops_fp32 / a100.mem_bw_bytes;
  EXPECT_GT(ridge, 2.0);
  EXPECT_FALSE(model.compute_bound(0.5, 0));
}

TEST(Roofline, AsciiChartRendersCeilingsAndPoints) {
  RooflineModel model("demo", 1e12);
  model.add_ceiling({"mem", 1e11});
  model.add_point({"k1", 0.5, 4e10});
  model.add_point({"k2", 50.0, 6e11});
  const std::string chart = model.ascii_chart();
  EXPECT_NE(chart.find('-'), std::string::npos); // flat roof
  EXPECT_NE(chart.find('/'), std::string::npos); // slanted ceiling
  EXPECT_NE(chart.find('o'), std::string::npos); // first point
  EXPECT_NE(chart.find('*'), std::string::npos); // second point
  EXPECT_NE(chart.find("k1"), std::string::npos);
}

TEST(Roofline, InputValidation) {
  EXPECT_THROW(RooflineModel("bad", 0.0), Error);
  RooflineModel model("ok", 1.0);
  EXPECT_THROW(model.add_ceiling({"zero", 0.0}), Error);
  EXPECT_THROW(model.attainable(1.0, 0), Error); // no ceilings yet
}

// ---------- CS-2 analytic model ----------

TEST(Cs2Model, ReproducesPaperAlg2Time) {
  const Cs2AnalyticModel model;
  // Table III: Algorithm 2 takes 0.0122 s for 225 steps at every fabric
  // size (perfect weak scaling), Nz = 922.
  EXPECT_NEAR(model.alg2_time(922, 225), 0.0122, 0.0002);
  EXPECT_DOUBLE_EQ(model.alg2_time(922, 225), model.alg2_time(922, 225));
}

TEST(Cs2Model, Alg2TimeIsIndependentOfFabricSize) {
  const Cs2AnalyticModel model;
  // Weak scaling: Jx time depends only on the column depth.
  EXPECT_DOUBLE_EQ(model.alg2_time(922, 225), model.alg2_time(922, 225));
}

TEST(Cs2Model, ReproducesPaperAlg1Endpoints) {
  const Cs2AnalyticModel model;
  // The two calibration rows of Table III.
  EXPECT_NEAR(model.alg1_time(200, 200, 922, 226), 0.0251, 0.0005);
  EXPECT_NEAR(model.alg1_time(750, 994, 922, 225), 0.0542, 0.0005);
}

TEST(Cs2Model, PredictsInterpolatedRowsWithin10Percent) {
  const Cs2AnalyticModel model;
  // Out-of-sample rows of Table III (Alg. 1 column).
  struct Row {
    i64 nx, ny;
    u64 steps;
    f64 time;
  };
  const Row rows[] = {{400, 400, 225, 0.0337},
                      {600, 600, 225, 0.0423},
                      {750, 600, 225, 0.0456},
                      {750, 800, 225, 0.0500},
                      {750, 950, 225, 0.0532}};
  for (const auto& row : rows) {
    const f64 predicted = model.alg1_time(row.nx, row.ny, 922, row.steps);
    EXPECT_NEAR(predicted, row.time, 0.1 * row.time)
        << row.nx << "x" << row.ny;
  }
}

TEST(Cs2Model, ThroughputMatchesPaperConvention) {
  // Table III: 687,351,000 cells, 225 steps, 0.0542 s -> 2855.48 Gcell/s.
  const f64 thr = Cs2AnalyticModel::throughput(687'351'000, 225, 0.0542);
  EXPECT_NEAR(thr / 1e9, 2853.0, 10.0);
}

TEST(Cs2Model, PaperConventionPflopsNear1217) {
  const Cs2AnalyticModel model;
  const f64 pflops = model.paper_convention_pflops(750, 994, 922, 225);
  EXPECT_NEAR(pflops / 1e15, 1.217, 0.03);
}

TEST(Cs2Model, Alg1GrowsWithFabricPerimeter) {
  const Cs2AnalyticModel model;
  EXPECT_GT(model.alg1_time(750, 994, 922, 225), model.alg1_time(200, 200, 922, 225));
}

TEST(Cs2Spec, DerivedQuantitiesAreSane) {
  const Cs2Spec spec;
  EXPECT_EQ(spec.usable_pes(), 750 * 994);
  EXPECT_NEAR(spec.per_pe_peak_flops(), 1.785e15 / 745500.0, 1.0);
  EXPECT_GT(spec.per_pe_mem_bw(), spec.per_pe_fabric_bw());
}

TEST(GpuSpecs, PresetsAreOrdered) {
  EXPECT_GT(GpuSpec::h100().mem_bw_bytes, GpuSpec::a100().mem_bw_bytes);
  EXPECT_GT(GpuSpec::a100().mem_bw_bytes, 1e12);
}

} // namespace
} // namespace fvdf
