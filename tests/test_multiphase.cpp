// Two-phase IMPES tests: constitutive relations (Corey curves, fractional
// flow), exact mass conservation of the transport scheme, saturation
// bounds (monotone upwind + CFL), Buckley-Leverett front behavior, and
// the coupling back into the implicit pressure solve.

#include <gtest/gtest.h>

#include <cmath>

#include "core/multiphase_backend.hpp"
#include "multiphase/impes.hpp"
#include "multiphase/relperm.hpp"

namespace fvdf::multiphase {
namespace {

// ---------- Corey curves ----------

TEST(RelPerm, EndpointsAndMonotonicity) {
  CoreyRelPerm relperm;
  relperm.srw = 0.1;
  relperm.srn = 0.2;
  EXPECT_DOUBLE_EQ(relperm.krw(0.1), 0.0);  // at residual water: immobile
  EXPECT_DOUBLE_EQ(relperm.krn(0.8), 0.0);  // at residual gas: immobile
  EXPECT_DOUBLE_EQ(relperm.krw(0.8), 1.0);  // fully flooded
  EXPECT_DOUBLE_EQ(relperm.krn(0.1), 1.0);
  f64 prev_w = -1, prev_n = 2;
  for (f64 sw = 0.1; sw <= 0.8; sw += 0.05) {
    EXPECT_GE(relperm.krw(sw), prev_w);
    EXPECT_LE(relperm.krn(sw), prev_n);
    prev_w = relperm.krw(sw);
    prev_n = relperm.krn(sw);
  }
}

TEST(RelPerm, ClampsOutOfRangeSaturations) {
  CoreyRelPerm relperm;
  relperm.srw = 0.2;
  EXPECT_DOUBLE_EQ(relperm.krw(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(relperm.krw(1.5), 1.0);
}

TEST(RelPerm, NoMobileRangeThrows) {
  CoreyRelPerm relperm;
  relperm.srw = 0.6;
  relperm.srn = 0.5;
  EXPECT_THROW(relperm.krw(0.5), Error);
}

TEST(FractionalFlow, IsMonotoneSShape) {
  CoreyRelPerm relperm; // quadratic Corey
  Fluids fluids;        // unit viscosity ratio
  f64 prev = -1;
  for (f64 sw = 0.0; sw <= 1.0; sw += 0.05) {
    const f64 fw = mobilities(relperm, fluids, sw).fw();
    EXPECT_GE(fw, prev - 1e-14);
    EXPECT_GE(fw, 0.0);
    EXPECT_LE(fw, 1.0);
    prev = fw;
  }
  EXPECT_DOUBLE_EQ(mobilities(relperm, fluids, 0.0).fw(), 0.0);
  EXPECT_DOUBLE_EQ(mobilities(relperm, fluids, 1.0).fw(), 1.0);
  // Unit-mobility-ratio quadratic Corey: fw(0.5) = 0.5 by symmetry.
  EXPECT_NEAR(mobilities(relperm, fluids, 0.5).fw(), 0.5, 1e-12);
}

TEST(FractionalFlow, ViscosityRatioShiftsTheCurve) {
  CoreyRelPerm relperm;
  Fluids favorable{/*mu_w=*/10.0, /*mu_n=*/1.0};   // viscous water: lower fw
  Fluids unfavorable{/*mu_w=*/0.1, /*mu_n=*/1.0};  // thin water: higher fw
  const f64 fw_fav = mobilities(relperm, favorable, 0.5).fw();
  const f64 fw_unf = mobilities(relperm, unfavorable, 0.5).fw();
  EXPECT_LT(fw_fav, 0.5);
  EXPECT_GT(fw_unf, 0.5);
}

TEST(FractionalFlow, WaveSpeedIsPositiveAndBounded) {
  CoreyRelPerm relperm;
  Fluids fluids;
  const f64 speed = max_wave_speed(relperm, fluids);
  EXPECT_GT(speed, 1.0);  // BL flux steepens: max df/ds > 1
  EXPECT_LT(speed, 10.0); // sane magnitude for quadratic Corey, M=1
}

// ---------- IMPES scheme ----------

ImpesOptions quick_options() {
  ImpesOptions options;
  options.dt = 0.05;
  options.steps = 10;
  options.cg.tolerance = 1e-22;
  return options;
}

struct Scenario {
  CartesianMesh3D mesh;
  CellField<f64> perm;
  DirichletSet bc;
  std::vector<CellIndex> injectors;
};

Scenario five_spot(i64 nx, i64 ny, i64 nz = 1) {
  CartesianMesh3D mesh(nx, ny, nz);
  auto perm = perm::homogeneous(mesh, 1.0);
  auto bc = DirichletSet::injector_producer(mesh, 2.0, 0.0);
  std::vector<CellIndex> injectors;
  for (i64 z = 0; z < nz; ++z) injectors.push_back(mesh.index(0, 0, z));
  return {mesh, std::move(perm), std::move(bc), std::move(injectors)};
}

TEST(Impes, ConservesMassExactly) {
  const Scenario setup = five_spot(8, 8);
  const auto result =
      run_impes(setup.mesh, setup.perm, setup.bc, setup.injectors, quick_options());
  ASSERT_TRUE(result.all_converged);
  EXPECT_GT(result.injected, 0.0);
  EXPECT_LT(result.mass_balance_error, 1e-10 * std::max(1.0, result.injected));
}

TEST(Impes, SaturationStaysInPhysicalBounds) {
  const Scenario setup = five_spot(10, 6);
  ImpesOptions options = quick_options();
  options.relperm.srw = 0.1;
  options.relperm.srn = 0.15;
  options.steps = 15;
  const auto result =
      run_impes(setup.mesh, setup.perm, setup.bc, setup.injectors, options);
  for (f64 sw : result.saturation) {
    EXPECT_GE(sw, options.relperm.srw - 1e-9);
    EXPECT_LE(sw, 1.0 - options.relperm.srn + 1e-9);
  }
}

TEST(Impes, FrontAdvancesMonotonicallyInTime) {
  // 1D Buckley-Leverett column: saturation at a probe rises over time, and
  // the front reaches farther cells at later times.
  CartesianMesh3D mesh(24, 1, 1);
  auto perm = perm::homogeneous(mesh, 1.0);
  DirichletSet bc;
  bc.pin(mesh, {0, 0, 0}, 10.0); // strong drive so the front crosses several cells
  bc.pin(mesh, {23, 0, 0}, 0.0);
  const std::vector<CellIndex> injectors = {mesh.index(0, 0, 0)};

  ImpesOptions options = quick_options();
  options.steps = 20;
  options.dt = 0.25;
  options.record_history = true;
  const auto result = run_impes(mesh, perm, bc, injectors, options);
  ASSERT_TRUE(result.all_converged);

  const auto probe = static_cast<std::size_t>(mesh.index(6, 0, 0));
  for (std::size_t s = 1; s < result.saturation_history.size(); ++s)
    EXPECT_GE(result.saturation_history[s][probe],
              result.saturation_history[s - 1][probe] - 1e-12);
  EXPECT_GT(result.saturation[probe], 0.2); // the front has arrived
}

TEST(Impes, SaturationProfileIsMonotoneBehindTheFront) {
  // Donor-cell BL solutions are monotone in x: no spurious oscillations.
  CartesianMesh3D mesh(30, 1, 1);
  auto perm = perm::homogeneous(mesh, 1.0);
  DirichletSet bc;
  bc.pin(mesh, {0, 0, 0}, 12.0);
  bc.pin(mesh, {29, 0, 0}, 0.0);
  ImpesOptions options = quick_options();
  options.steps = 25;
  options.dt = 0.15;
  const auto result = run_impes(mesh, perm, bc, {mesh.index(0, 0, 0)}, options);
  for (i64 x = 1; x < 29; ++x)
    EXPECT_LE(result.saturation[static_cast<std::size_t>(mesh.index(x + 1, 0, 0))],
              result.saturation[static_cast<std::size_t>(mesh.index(x, 0, 0))] + 1e-9)
        << "oscillation at x=" << x;
}

TEST(Impes, MobilityCouplingChangesPressureOverTime) {
  // As water floods in, total mobility rises near the injector and the
  // pressure field relaxes: per-step CG iteration counts and the pressure
  // solution must respond to the saturation (true two-way coupling).
  const Scenario setup = five_spot(10, 10);
  ImpesOptions options = quick_options();
  options.steps = 12;
  options.dt = 0.3;
  options.fluids.mu_n = 5.0; // resident fluid more viscous: strong coupling
  options.record_history = true;
  const auto result =
      run_impes(setup.mesh, setup.perm, setup.bc, setup.injectors, options);
  ASSERT_TRUE(result.all_converged);
  // Saturation changed substantially somewhere.
  f64 moved = 0;
  for (std::size_t i = 0; i < result.saturation.size(); ++i)
    moved = std::max(moved, result.saturation[i] -
                                result.saturation_history.front()[i]);
  EXPECT_GT(moved, 0.3);
}

TEST(Impes, ViscousWaterFloodsMoreEfficiently) {
  // Favorable mobility ratio (viscous injectant) gives a sharper front:
  // at equal injected volume the flooded region is more saturated.
  auto run_with_viscosity = [&](f64 mu_w) {
    const Scenario setup = five_spot(12, 12);
    ImpesOptions options = quick_options();
    options.steps = 12;
    options.dt = 0.25;
    options.fluids.mu_w = mu_w;
    return run_impes(setup.mesh, setup.perm, setup.bc, setup.injectors, options);
  };
  const auto favorable = run_with_viscosity(5.0);
  const auto unfavorable = run_with_viscosity(0.2);
  // Compare mean saturation of the swept zone normalized by injected
  // volume: favorable displacement uses pore space more efficiently.
  auto efficiency = [](const ImpesResult& result) {
    f64 swept = 0;
    for (f64 sw : result.saturation) swept += sw;
    return swept / std::max(result.injected, 1e-12);
  };
  EXPECT_GT(efficiency(favorable), efficiency(unfavorable));
}

TEST(Impes, ZeroStepsRejected) {
  const Scenario setup = five_spot(4, 4);
  ImpesOptions options = quick_options();
  options.steps = 0;
  EXPECT_THROW(
      run_impes(setup.mesh, setup.perm, setup.bc, setup.injectors, options), Error);
}

TEST(Impes, InjectorMustBeDirichlet) {
  const Scenario setup = five_spot(4, 4);
  EXPECT_THROW(run_impes(setup.mesh, setup.perm, setup.bc,
                         {setup.mesh.index(2, 2, 0)}, quick_options()),
               Error);
}

TEST(Impes, DataflowBackendMatchesHostBackend) {
  // Every IMPES pressure step solved on the simulated wafer-scale device:
  // the two-phase fields must track the host-solved run to fp32 accuracy.
  const Scenario setup = five_spot(6, 6);
  ImpesOptions host_options = quick_options();
  host_options.steps = 4;
  host_options.dt = 0.4;
  const auto host = run_impes(setup.mesh, setup.perm, setup.bc, setup.injectors,
                              host_options);
  ASSERT_TRUE(host.all_converged);

  ImpesOptions device_options = host_options;
  core::DataflowConfig df;
  df.tolerance = 1e-15f;
  df.jacobi_precondition = true;
  f64 device_seconds = 0;
  device_options.backend = core::make_dataflow_pressure_backend(df, &device_seconds);
  const auto device = run_impes(setup.mesh, setup.perm, setup.bc, setup.injectors,
                                device_options);
  ASSERT_TRUE(device.all_converged);
  EXPECT_GT(device_seconds, 0.0);
  EXPECT_EQ(device.pressure_iterations.size(), host.pressure_iterations.size());

  for (std::size_t i = 0; i < host.saturation.size(); ++i)
    EXPECT_NEAR(device.saturation[i], host.saturation[i], 5e-4);
  EXPECT_LT(device.mass_balance_error, 1e-10 * std::max(1.0, device.injected));
}

TEST(Impes, CflSubstepsIncreaseWithTimeStep) {
  const Scenario setup = five_spot(8, 8);
  ImpesOptions small = quick_options();
  small.steps = 2;
  small.dt = 0.01;
  ImpesOptions big = quick_options();
  big.steps = 2;
  big.dt = 2.0;
  const auto a = run_impes(setup.mesh, setup.perm, setup.bc, setup.injectors, small);
  const auto b = run_impes(setup.mesh, setup.perm, setup.bc, setup.injectors, big);
  EXPECT_GT(b.total_substeps, a.total_substeps);
}

} // namespace
} // namespace fvdf::multiphase
